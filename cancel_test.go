package idaflash_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"idaflash"
)

// The exported run entry points honor an already-dead context without
// touching the device: the contract a service layer builds on. (Mid-run
// cancellation with simulated-time bounds is pinned deterministically in the
// ssd and array package tests, where the engine clock is reachable.)

func TestRunWorkloadContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := smallProfile(t, "proj_3")
	if _, err := idaflash.RunWorkloadContext(ctx, p, idaflash.IDA(0.2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunWorkloadContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	p := smallProfile(t, "proj_3")
	if _, err := idaflash.RunWorkloadContext(ctx, p, idaflash.Baseline()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunArrayWorkloadContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := smallProfile(t, "proj_3")
	sys := idaflash.Baseline()
	sys.Devices = 3
	if _, err := idaflash.RunArrayWorkloadContext(ctx, p, sys); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunWorkloadContextBackgroundUnchanged: a Background context must be
// free — RunWorkload and RunWorkloadContext(Background) produce identical
// scalar results.
func TestRunWorkloadContextBackgroundUnchanged(t *testing.T) {
	p := smallProfile(t, "proj_3")
	a, err := idaflash.RunWorkload(p, idaflash.IDA(0.2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := idaflash.RunWorkloadContext(context.Background(), p, idaflash.IDA(0.2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Scalars() != b.Scalars() {
		t.Error("RunWorkloadContext(Background) diverged from RunWorkload")
	}
}

// TestIsInvariantError: the facade predicate recognizes contained invariant
// violations through wrapping, and rejects ordinary errors. (The injection
// path itself — a panic inside the simulation surfacing as *sim.InvariantError
// from the run, with siblings surviving — is pinned in the ssd and array
// package tests, which share the exact code path RunWorkload uses.)
func TestIsInvariantError(t *testing.T) {
	ie := &idaflash.InvariantError{Value: "bad", At: 7}
	if !idaflash.IsInvariantError(ie) {
		t.Error("bare InvariantError not recognized")
	}
	if !idaflash.IsInvariantError(fmt.Errorf("array: device 2: %w", ie)) {
		t.Error("wrapped InvariantError not recognized")
	}
	if idaflash.IsInvariantError(errors.New("plain failure")) {
		t.Error("plain error misclassified as invariant")
	}
	if idaflash.IsInvariantError(nil) {
		t.Error("nil misclassified as invariant")
	}
	if msg := ie.Error(); !strings.Contains(msg, "bad") {
		t.Errorf("InvariantError message %q does not name the panic value", msg)
	}
}
