module idaflash

go 1.22
