// Codingdemo walks the cell-coding model underlying the paper: the
// conventional TLC coding of Figure 2, the IDA state merging of Figure 5,
// the Table I wordline planning, and the QLC generalization of Figure 6 —
// all computed from the library's coding engine rather than hard-coded.
//
//	go run ./examples/codingdemo
package main

import (
	"fmt"

	"idaflash"
)

func main() {
	tlc := idaflash.NewGrayCoding(3)

	fmt.Println("Conventional TLC coding (Figure 2):")
	fmt.Println(" state  MSB CSB LSB")
	for s := 0; s < tlc.States(); s++ {
		fmt.Printf("  S%d     %d   %d   %d\n", s+1,
			tlc.Value(s, idaflash.MSB), tlc.Value(s, idaflash.CSB), tlc.Value(s, idaflash.LSB))
	}
	fmt.Printf("sensings per read: LSB=%d CSB=%d MSB=%d\n\n",
		tlc.Senses(idaflash.LSB), tlc.Senses(idaflash.CSB), tlc.Senses(idaflash.MSB))

	fmt.Println("IDA merging with the LSB invalidated (Figure 5):")
	m := tlc.Merge(idaflash.MaskAll(3).Without(idaflash.LSB))
	for s := 0; s < tlc.States(); s++ {
		if m.Target(s) != s {
			fmt.Printf("  S%d -> S%d (ISPP adds charge)\n", s+1, m.Target(s)+1)
		}
	}
	fmt.Printf("sensings after merge: CSB=%d MSB=%d\n\n", m.Senses(idaflash.CSB), m.Senses(idaflash.MSB))

	fmt.Println("Table I wordline planning:")
	scenarios := []struct {
		name string
		mask idaflash.ValidMask
	}{
		{"case 1 (all valid)", idaflash.MaskAll(3)},
		{"case 2 (LSB invalid)", idaflash.MaskAll(3).Without(idaflash.LSB)},
		{"case 3 (CSB invalid)", idaflash.MaskAll(3).Without(idaflash.CSB)},
		{"case 4 (LSB+CSB invalid)", idaflash.ValidMask(0).With(idaflash.MSB)},
		{"case 5 (MSB invalid)", idaflash.MaskAll(3).Without(idaflash.MSB)},
		{"case 8 (all invalid)", 0},
	}
	for _, sc := range scenarios {
		p := tlc.PlanWordline(sc.mask)
		switch {
		case p.Apply:
			fmt.Printf("  %-26s adjust; move %v; kept sensings %v\n", sc.name, p.Move, p.KeptSenses)
		case len(p.Move) > 0:
			fmt.Printf("  %-26s relocate %v (no adjustment)\n", sc.name, p.Move)
		default:
			fmt.Printf("  %-26s nothing to do\n", sc.name)
		}
	}

	fmt.Println("\nQLC generalization (Figure 6): two lower bits invalid")
	qlc := idaflash.NewGrayCoding(4)
	qm := qlc.Merge(idaflash.ValidMask(0).With(2).With(3))
	fmt.Printf("  bit3: %d -> %d sensings\n", qlc.Senses(2), qm.Senses(2))
	fmt.Printf("  bit4: %d -> %d sensings\n", qlc.Senses(3), qm.Senses(3))
	fmt.Printf("  reachable states: %d of %d\n", len(qm.Reachable()), qlc.States())

	fmt.Println("\nVendor 2-3-2 TLC coding (Section III-B):")
	v := idaflash.Vendor232TLC()
	fmt.Printf("  sensings: LSB=%d CSB=%d MSB=%d\n",
		v.Senses(idaflash.LSB), v.Senses(idaflash.CSB), v.Senses(idaflash.MSB))
	vm := v.Merge(idaflash.ValidMask(0).With(idaflash.MSB))
	fmt.Printf("  IDA with only MSB valid: MSB=%d sensing(s)\n", vm.Senses(idaflash.MSB))

	fmt.Println("\nCoding lab: every registered scheme, TLC geometry:")
	fmt.Println(" scheme  senses(LSB/CSB/MSB)  worst  mean level  programmed")
	for _, name := range idaflash.CodingNames() {
		c, err := idaflash.NewCoding(name, 3)
		if err != nil {
			panic(err)
		}
		cost := c.ProgramCost()
		fmt.Printf("  %-7s %d/%d/%d                %d      %.3f       %.1f%%\n",
			c.Name(),
			c.Senses(idaflash.LSB), c.Senses(idaflash.CSB), c.Senses(idaflash.MSB),
			c.MaxSenses(), cost.MeanLevel, 100*cost.ProgrammedFrac)
	}
	fmt.Println("randio flattens the worst page; ilwc keeps Gray senses but")
	fmt.Println("programs fewer, lower voltage cells (the power/wear proxies).")
}
