// Tracereplay demonstrates the trace I/O path: generate a synthetic trace,
// serialize it in the MSR Cambridge CSV format, parse it back, and replay
// it on a custom-configured SSD — the workflow for users replaying real
// MSR traces.
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"idaflash"
	"idaflash/internal/ssd"
	"idaflash/internal/workload"
)

func main() {
	// 1. Generate a synthetic workload and serialize it as MSR CSV.
	profile, err := idaflash.ProfileByName("hm_1", 8000)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := profile.Generate()
	if err != nil {
		log.Fatal(err)
	}
	var csv bytes.Buffer
	if err := workload.WriteMSR(&csv, trace); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized %d requests to %d bytes of MSR CSV\n", len(trace.Requests), csv.Len())

	// 2. Parse it back, exactly as one would parse a downloaded trace.
	parsed, err := workload.ParseMSR("hm_1-replay", &csv)
	if err != nil {
		log.Fatal(err)
	}
	stats := parsed.Stats()
	fmt.Printf("parsed: %.1f%% reads, mean read %.1f KB, footprint %.0f MB, span %v\n",
		stats.ReadRatio*100, stats.MeanReadKB, stats.FootprintMB, stats.Span.Round(time.Second))

	// 3. Build a custom device by hand (rather than via RunWorkload) and
	// replay the parsed trace on it, with and without IDA coding.
	for _, useIDA := range []bool{false, true} {
		sys := idaflash.Baseline()
		if useIDA {
			sys = idaflash.IDA(0.20)
		}
		cfg, _, err := idaflash.BuildConfig(profile, sys)
		if err != nil {
			log.Fatal(err)
		}
		dev, err := idaflash.NewSSD(cfg)
		if err != nil {
			log.Fatal(err)
		}
		pre, err := profile.AgingPreamble()
		if err != nil {
			log.Fatal(err)
		}
		res, err := dev.Run(parsed, ssd.RunOptions{Preamble: pre})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s mean read response %v, p99 %v\n", sys.Name,
			res.MeanReadResponse.Round(time.Microsecond),
			res.P99ReadResponse.Round(time.Microsecond))
	}
}
