// Sensitivity explores how the IDA benefit changes with the device: the
// delta-tR sweep of Figure 9, the MLC device of Table V, the QLC extension,
// and the late-lifetime read-retry regime of Figure 11, all on a single
// workload so it runs in seconds.
//
//	go run ./examples/sensitivity
package main

import (
	"fmt"
	"log"
	"time"

	"idaflash"
)

func improvement(p idaflash.Profile, base, sys idaflash.System) float64 {
	b, err := idaflash.RunWorkload(p, base)
	if err != nil {
		log.Fatal(err)
	}
	i, err := idaflash.RunWorkload(p, sys)
	if err != nil {
		log.Fatal(err)
	}
	return 1 - i.MeanReadResponse.Seconds()/b.MeanReadResponse.Seconds()
}

func main() {
	profile, err := idaflash.ProfileByName("stg_1", 12000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s\n\n", profile.Name)

	fmt.Println("delta-tR sweep (Figure 9; improvement of IDA-E20 over baseline):")
	for _, d := range []time.Duration{30, 50, 70} {
		base := idaflash.Baseline()
		base.DeltaTR = d * time.Microsecond
		ida := idaflash.IDA(0.20)
		ida.DeltaTR = d * time.Microsecond
		fmt.Printf("  delta-tR %2dus: %5.1f%%\n", d, improvement(profile, base, ida)*100)
	}

	fmt.Println("\nbit density (Table V and the QLC future-work extension):")
	for _, bits := range []int{2, 3, 4} {
		base := idaflash.Baseline()
		base.BitsPerCell = bits
		ida := idaflash.IDA(0.20)
		ida.BitsPerCell = bits
		label := map[int]string{2: "MLC", 3: "TLC", 4: "QLC"}[bits]
		fmt.Printf("  %s: %5.1f%%\n", label, improvement(profile, base, ida)*100)
	}

	fmt.Println("\nlifetime phase (Figure 11):")
	for _, phase := range []idaflash.LifetimePhase{idaflash.PhaseEarly, idaflash.PhaseLate} {
		base := idaflash.Baseline()
		base.Lifetime = phase
		ida := idaflash.IDA(0.20)
		ida.Lifetime = phase
		fmt.Printf("  %-5v: %5.1f%%\n", phase, improvement(profile, base, ida)*100)
	}
}
