// Quickstart: run one read-intensive workload on the baseline SSD and on
// the same device with IDA coding (20% adjustment error rate), and report
// the read response time improvement — the paper's headline experiment in
// miniature.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"idaflash"
)

func main() {
	profile, err := idaflash.ProfileByName("usr_1", 15000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s: %.1f%% reads, mean read %.1f KB\n\n",
		profile.Name, profile.ReadRatio*100, profile.MeanReadKB)

	base, err := idaflash.RunWorkload(profile, idaflash.Baseline())
	if err != nil {
		log.Fatal(err)
	}
	ida, err := idaflash.RunWorkload(profile, idaflash.IDA(0.20))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("baseline  mean read response: %8v   throughput: %6.1f MB/s\n",
		base.MeanReadResponse.Round(time.Microsecond), base.ThroughputMBps)
	fmt.Printf("IDA-E20   mean read response: %8v   throughput: %6.1f MB/s\n",
		ida.MeanReadResponse.Round(time.Microsecond), ida.ThroughputMBps)

	imp := 1 - ida.MeanReadResponse.Seconds()/base.MeanReadResponse.Seconds()
	fmt.Printf("\nread response improvement: %.1f%% (paper reports 28%% on average)\n", imp*100)
	fmt.Printf("reads served from IDA-reprogrammed wordlines: %d of %d\n",
		ida.FTL.ReadsFromIDA, ida.FTL.HostReads)
	fmt.Printf("wordlines voltage-adjusted during refresh: %d across %d refreshes\n",
		ida.FTL.IDAAdjustedWLs, ida.FTL.IDARefreshes)
}
