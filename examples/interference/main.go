// Interference demonstrates the paper's Section III-C concern in two
// phases on one device: a read-intensive phase that leaves IDA-reprogrammed
// blocks behind, followed by a write-intensive phase sharing the same
// space — measuring what the IDA coding's retained blocks cost later
// writers in garbage collection.
//
//	go run ./examples/interference
package main

import (
	"fmt"
	"log"
	"time"

	"idaflash"
)

func main() {
	profile, err := idaflash.ProfileByName("proj_1", 10000)
	if err != nil {
		log.Fatal(err)
	}
	flush := idaflash.Profile{
		Name:          "flush",
		ReadRatio:     0.30,
		MeanReadKB:    16,
		ReadDataRatio: 0.30,
		Requests:      5000,
		Seed:          42,
	}

	fmt.Printf("phase 1: %s (%.0f%% reads); phase 2: write-heavy flush on the same space\n\n",
		profile.Name, profile.ReadRatio*100)

	for _, useIDA := range []bool{false, true} {
		sys := idaflash.Baseline()
		if useIDA {
			sys = idaflash.IDA(0.20)
		}
		sys.TightSpace = true // the paper's "fully utilized + 15% OP" condition

		first, second, err := idaflash.RunWithFollowup(profile, sys, flush)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", sys.Name)
		fmt.Printf("  phase 1 mean read response: %v (%d reads from IDA wordlines)\n",
			first.MeanReadResponse.Round(time.Microsecond), first.FTL.ReadsFromIDA)
		fmt.Printf("  phase 1 peak IDA blocks:    %d of %d in use\n", first.PeakIDA, first.PeakInUse)
		fmt.Printf("  phase 2 erases:             %d\n", second.FTL.Erases)
		fmt.Printf("  phase 2 relocations:        %d (GC %d + refresh %d)\n",
			second.FTL.GCMoves+second.FTL.RefreshMoves, second.FTL.GCMoves, second.FTL.RefreshMoves)
		fmt.Printf("  phase 2 write amplification: %.2f\n\n", second.WriteAmplification)
	}
	fmt.Println("The paper reports the write-phase GC toll stays within ~3%;")
	fmt.Println("here the erase counts match while the IDA device relocates less.")
}
