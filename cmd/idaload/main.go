// Command idaload drives a running idaserver with an open-loop, ramped
// request stream and reports the latency distribution, shed rate, and
// result-cache hit ratio — the numbers the CI load job gates on.
//
// Usage:
//
//	idaload -url http://127.0.0.1:8080 [-rate 20] [-ramp 2s] [-duration 10s]
//	        [-concurrency 32] [-profiles usr_1,proj_3] [-requests 2000]
//	        [-wait-ready 15s] [-prime] [-json]
//	        [-max-p99 500ms] [-max-shed-rate 0] [-min-hit-rate 0.9]
//
// The generator cycles over a small point set (each profile as Baseline and
// as IDA-E20) and fires POST /v1/run arrivals at a rate that ramps linearly
// over -ramp to the target -rate, independent of response latency (open
// loop): a slow server faces the same arrival pressure a fast one does,
// which is what makes shed behavior observable. -concurrency caps in-flight
// requests; arrivals beyond it are counted as local drops, not sent.
//
// -wait-ready polls GET /healthz with backoff until the server answers (or
// the window expires), so idaserver and idaload can be launched together —
// in CI or a chaos script — without sleeps; connection refusals during
// server boot are part of the wait, never counted as load errors.
//
// With -prime, every distinct point is run once, serially, before the timed
// phase, so the measured traffic is served from the result cache — the
// regime the P99 gate is calibrated for.
//
// Exit status: 0 on success, 1 on setup or transport failure, 2 when a
// -max-p99 / -max-shed-rate / -min-hit-rate gate fails.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type point struct {
	name string
	body []byte
}

// statz mirrors the server's GET /statz payload (the fields idaload reads).
type statz struct {
	Server struct {
		Shed uint64 `json:"shed"`
	} `json:"server"`
	Results struct {
		Hits   uint64 `json:"hits"`
		Misses uint64 `json:"misses"`
	} `json:"results"`
}

// report is the -json output and the source of the text summary.
type report struct {
	Sent       int64   `json:"sent"`
	OK         int64   `json:"ok"`
	Shed       int64   `json:"shed"`
	Errors     int64   `json:"errors"`
	Dropped    int64   `json:"dropped"` // local concurrency-cap drops, never sent
	P50Ms      float64 `json:"p50_ms"`
	P90Ms      float64 `json:"p90_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MaxMs      float64 `json:"max_ms"`
	ShedRate   float64 `json:"shed_rate"`
	HitRate    float64 `json:"hit_rate"`    // result-store Δhits/(Δhits+Δmisses)
	CachedResp int64   `json:"cached_resp"` // responses with "cached":true
}

func main() {
	var (
		url         = flag.String("url", "http://127.0.0.1:8080", "idaserver base URL")
		rate        = flag.Float64("rate", 20, "target arrivals per second at full ramp")
		ramp        = flag.Duration("ramp", 2*time.Second, "linear ramp-up of the arrival rate")
		duration    = flag.Duration("duration", 10*time.Second, "total load duration (including the ramp)")
		concurrency = flag.Int("concurrency", 32, "max in-flight requests; arrivals beyond it are dropped locally")
		profiles    = flag.String("profiles", "usr_1", "comma-separated workload profiles to cycle")
		requests    = flag.Int("requests", 2000, "per-trace request budget sent with every run")
		timeoutMs   = flag.Int64("timeout-ms", 60_000, "per-run timeout sent with every run")
		waitReady   = flag.Duration("wait-ready", 15*time.Second, "poll /healthz with backoff for up to this long before starting; 0 skips the wait")
		prime       = flag.Bool("prime", false, "run every distinct point once, serially, before the timed phase")
		asJSON      = flag.Bool("json", false, "emit the report as JSON")
		maxP99      = flag.Duration("max-p99", 0, "fail (exit 2) when the OK-response P99 exceeds this; 0 disables")
		maxShed     = flag.Float64("max-shed-rate", -1, "fail (exit 2) when shed/(sent) exceeds this; negative disables")
		minHitRate  = flag.Float64("min-hit-rate", -1, "fail (exit 2) when the result-cache hit rate is below this; negative disables")
	)
	flag.Parse()

	points := buildPoints(strings.Split(*profiles, ","), *requests, *timeoutMs)
	if len(points) == 0 {
		fmt.Fprintln(os.Stderr, "idaload: no profiles")
		os.Exit(1)
	}
	client := &http.Client{Timeout: time.Duration(*timeoutMs+30_000) * time.Millisecond}

	if *waitReady > 0 {
		if err := waitForServer(client, *url, *waitReady); err != nil {
			fmt.Fprintln(os.Stderr, "idaload:", err)
			os.Exit(1)
		}
	}

	if *prime {
		for _, pt := range points {
			code, _, err := post(client, *url, pt.body)
			if err != nil || code != http.StatusOK {
				fmt.Fprintf(os.Stderr, "idaload: priming %s: status %d err %v\n", pt.name, code, err)
				os.Exit(1)
			}
		}
	}

	before, err := readStatz(client, *url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "idaload:", err)
		os.Exit(1)
	}

	rep := drive(client, *url, points, *rate, *ramp, *duration, *concurrency)

	after, err := readStatz(client, *url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "idaload:", err)
		os.Exit(1)
	}
	dh := after.Results.Hits - before.Results.Hits
	dm := after.Results.Misses - before.Results.Misses
	if dh+dm > 0 {
		rep.HitRate = float64(dh) / float64(dh+dm)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	} else {
		fmt.Printf("sent %d  ok %d  shed %d  errors %d  dropped %d\n",
			rep.Sent, rep.OK, rep.Shed, rep.Errors, rep.Dropped)
		fmt.Printf("latency ms  p50 %.1f  p90 %.1f  p99 %.1f  max %.1f\n",
			rep.P50Ms, rep.P90Ms, rep.P99Ms, rep.MaxMs)
		fmt.Printf("shed rate %.3f  cache hit rate %.3f  cached responses %d\n",
			rep.ShedRate, rep.HitRate, rep.CachedResp)
	}

	fail := false
	if *maxP99 > 0 && rep.P99Ms > float64(maxP99.Milliseconds()) {
		fmt.Fprintf(os.Stderr, "idaload: P99 %.1fms exceeds gate %v\n", rep.P99Ms, *maxP99)
		fail = true
	}
	if *maxShed >= 0 && rep.ShedRate > *maxShed {
		fmt.Fprintf(os.Stderr, "idaload: shed rate %.3f exceeds gate %.3f\n", rep.ShedRate, *maxShed)
		fail = true
	}
	if *minHitRate >= 0 && rep.HitRate < *minHitRate {
		fmt.Fprintf(os.Stderr, "idaload: cache hit rate %.3f below gate %.3f\n", rep.HitRate, *minHitRate)
		fail = true
	}
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "idaload: %d requests errored\n", rep.Errors)
		fail = true
	}
	if fail {
		os.Exit(2)
	}
}

// waitForServer polls /healthz until the server answers 200, backing off
// from 25ms to 500ms between attempts. A booting server's connection
// refusals are expected here — the whole point is launching server and
// client together without sleeps — so only the deadline turns them into an
// error.
func waitForServer(client *http.Client, url string, window time.Duration) error {
	deadline := time.Now().Add(window)
	delay := 25 * time.Millisecond
	var lastErr error
	for {
		resp, err := client.Get(url + "/healthz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("status %d", code)
		} else {
			lastErr = err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server not ready after %v: %v", window, lastErr)
		}
		time.Sleep(delay)
		if delay *= 2; delay > 500*time.Millisecond {
			delay = 500 * time.Millisecond
		}
	}
}

// buildPoints expands each profile into its Baseline and IDA-E20 run bodies.
func buildPoints(profiles []string, requests int, timeoutMs int64) []point {
	var pts []point
	for _, p := range profiles {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		base := fmt.Sprintf(`{"profile":%q,"requests":%d,"timeout_ms":%d,"system":{}}`, p, requests, timeoutMs)
		ida := fmt.Sprintf(`{"profile":%q,"requests":%d,"timeout_ms":%d,"system":{"ida":true,"error_rate":0.2}}`, p, requests, timeoutMs)
		pts = append(pts,
			point{name: p + "/Baseline", body: []byte(base)},
			point{name: p + "/IDA-E20", body: []byte(ida)})
	}
	return pts
}

// drive fires the open-loop arrival process and collects the outcome.
func drive(client *http.Client, url string, points []point, rate float64, ramp, duration time.Duration, concurrency int) report {
	var (
		rep       report
		mu        sync.Mutex
		latencies []float64 // OK responses only, milliseconds
		wg        sync.WaitGroup
		inflight  = make(chan struct{}, concurrency)
		sent      atomic.Int64
	)
	start := time.Now()
	next := start
	for i := 0; ; i++ {
		now := time.Now()
		elapsed := now.Sub(start)
		if elapsed >= duration {
			break
		}
		// Linear ramp: 10% of the target at t=0 to 100% at t=ramp.
		r := rate
		if ramp > 0 && elapsed < ramp {
			r = rate * (0.1 + 0.9*float64(elapsed)/float64(ramp))
		}
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		next = next.Add(time.Duration(float64(time.Second) / r))
		select {
		case inflight <- struct{}{}:
		default:
			rep.Dropped++
			continue
		}
		pt := points[i%len(points)]
		wg.Add(1)
		go func() {
			defer func() { <-inflight; wg.Done() }()
			sent.Add(1)
			t0 := time.Now()
			code, cached, err := post(client, url, pt.body)
			ms := float64(time.Since(t0).Microseconds()) / 1000
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				rep.Errors++
			case code == http.StatusOK:
				rep.OK++
				latencies = append(latencies, ms)
				if cached {
					rep.CachedResp++
				}
			case code == http.StatusTooManyRequests:
				rep.Shed++
			default:
				rep.Errors++
			}
		}()
	}
	wg.Wait()
	rep.Sent = sent.Load()
	if rep.Sent > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Sent)
	}
	sort.Float64s(latencies)
	rep.P50Ms = percentile(latencies, 50)
	rep.P90Ms = percentile(latencies, 90)
	rep.P99Ms = percentile(latencies, 99)
	if n := len(latencies); n > 0 {
		rep.MaxMs = latencies[n-1]
	}
	return rep
}

// post sends one run request, returning the status and the response's
// cached flag.
func post(client *http.Client, url string, body []byte) (code int, cached bool, err error) {
	resp, err := client.Post(url+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	var rr struct {
		Cached bool `json:"cached"`
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return resp.StatusCode, false, err
	}
	_ = json.Unmarshal(b, &rr)
	return resp.StatusCode, rr.Cached, nil
}

func readStatz(client *http.Client, url string) (statz, error) {
	var z statz
	resp, err := client.Get(url + "/statz")
	if err != nil {
		return z, fmt.Errorf("reading /statz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return z, fmt.Errorf("reading /statz: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&z); err != nil {
		return z, fmt.Errorf("decoding /statz: %w", err)
	}
	return z, nil
}

// percentile reads the p-th percentile from sorted values (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
