// Command idaserver serves the experiment runner over HTTP: named workload
// profiles run on simulated devices with bounded concurrency, admission
// control, per-request deadlines, and graceful drain on SIGTERM.
//
// Usage:
//
//	idaserver [-listen :8080] [-workers N] [-queue N] [-requests N]
//	          [-timeout 2m] [-max-timeout 10m] [-drain-timeout 30s]
//	          [-store-dir dir] [-store-sync] [-pprof-listen addr]
//
// Endpoints:
//
//	POST /v1/run       {"profile":"usr_1","system":{"ida":true,"error_rate":0.2}}
//	POST /v1/batch     whole sweeps; streams per-point progress (SSE/ndjson)
//	GET  /v1/jobs/{id} poll a batch job, or resume its stream (?watch=sse&from=N)
//	GET  /v1/profiles  list runnable profile names
//	GET  /v1/stats     admission/completion counters
//	GET  /statz        per-endpoint counters, job/runtime/arena gauges, cache stats
//	GET  /healthz      liveness (always 200 while the process serves)
//	GET  /readyz       readiness (503 once draining)
//
// With -store-dir, aged-device snapshots and simulation result payloads are
// persisted content-addressed under one directory with a shared eviction
// budget, so identical runs and whole batches are served from disk across
// restarts, byte for byte. Batch jobs become durable too: each submission
// writes a CRC-checked write-ahead journal under <store-dir>/jobs, and a
// restarted server resumes unfinished jobs under their original IDs,
// re-running only the points whose results are not already stored.
// -store-sync additionally fsyncs every blob write (the journal always
// syncs), trading write latency for power-loss durability.
//
// On SIGTERM or interrupt the server stops accepting work (/readyz flips to
// 503, queued runs are rejected), gives in-flight runs the drain timeout to
// finish, cancels whatever remains, and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	// Registers the profiling endpoints on http.DefaultServeMux. The API
	// server runs its own mux, so the profiles are reachable only through
	// the separate, opt-in -pprof-listen listener.
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"idaflash"
	"idaflash/internal/farm"
	"idaflash/internal/server"
)

func main() {
	var (
		listen       = flag.String("listen", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "max concurrent simulations; 0 means GOMAXPROCS")
		queue        = flag.Int("queue", 0, "admission queue depth beyond the workers; 0 means 2x workers")
		requests     = flag.Int("requests", 0, "default per-trace request budget; 0 uses the experiments default")
		timeout      = flag.Duration("timeout", 2*time.Minute, "default per-run deadline")
		maxTimeout   = flag.Duration("max-timeout", 10*time.Minute, "largest per-run deadline a client may request")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long in-flight runs get to finish on shutdown")
		storeDir     = flag.String("store-dir", "", "persist snapshots, result payloads, and the batch-job journal under this directory")
		storeSync    = flag.Bool("store-sync", false, "fsync every store blob write so the cache survives power loss (the job journal always syncs)")
		snapDir      = flag.String("snapshot-dir", "", "deprecated alias for -store-dir")
		pprofListen  = flag.String("pprof-listen", "", "serve net/http/pprof debug endpoints on this address (e.g. localhost:6060); empty disables them")
	)
	flag.Parse()
	dir, warn := idaflash.ResolveStoreDir(*storeDir, *snapDir)
	if warn != "" {
		fmt.Fprintln(os.Stderr, "idaserver:", warn)
	}
	logger := log.New(os.Stderr, "idaserver: ", log.LstdFlags)
	var journal *farm.Journal
	if dir != "" {
		if err := idaflash.SetStoreDirSync(dir, *storeSync); err != nil {
			fmt.Fprintln(os.Stderr, "idaserver:", err)
			os.Exit(1)
		}
		j, err := farm.OpenJournal(filepath.Join(dir, "jobs"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "idaserver:", err)
			os.Exit(1)
		}
		j.Logf = logger.Printf
		journal = j
	}
	if *pprofListen != "" {
		// The profiling listener is deliberately separate from the API
		// listener: exposing pprof is opt-in, and an operator can bind it
		// to localhost while the API serves a wider network.
		go func(addr string) {
			log.Printf("idaserver: pprof listening on %s", addr)
			if err := http.ListenAndServe(addr, nil); err != nil {
				log.Printf("idaserver: pprof listener: %v", err)
			}
		}(*pprofListen)
	}
	if err := run(*listen, server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		Requests:       *requests,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Log:            logger,
		Journal:        journal,
	}, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "idaserver:", err)
		os.Exit(1)
	}
}

func run(listen string, cfg server.Config, drainTimeout time.Duration) error {
	srv := server.New(cfg)
	if d := idaflash.StoreDisk(); d != nil {
		// Result payloads share the snapshot store's disk root (and its
		// eviction budget), so a repeated batch survives a restart.
		srv.ResultStore().SetBlobs(d.Sub(idaflash.ExtResult))
	}
	// Recover after the blob tier is attached, so a resumed job's
	// already-computed points are store hits, not fresh simulations.
	if n := srv.RecoverJobs(); n > 0 {
		cfg.Log.Printf("resumed %d unfinished job(s) from the journal", n)
	}
	hs := &http.Server{Addr: listen, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		cfg.Log.Printf("listening on %s", listen)
		errCh <- hs.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err // bind failure or unexpected server exit
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second SIGTERM kills us

	// Drain order matters: flip readiness and reject queued work first,
	// then give in-flight runs their deadline, then close the listener.
	// Closing the listener first would drop the /readyz endpoint while
	// orchestrators still probe it.
	cfg.Log.Printf("draining (up to %v)", drainTimeout)
	srv.BeginDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		cfg.Log.Printf("drain deadline hit; remaining runs cancelled")
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	cfg.Log.Printf("drained; exiting")
	return nil
}
