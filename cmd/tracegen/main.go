// Command tracegen emits synthetic workload traces in the MSR Cambridge
// CSV format, so they can be inspected, archived, or replayed with
// idasim -trace.
//
// Usage:
//
//	tracegen -workload proj_1 [-requests N] [-seed S] [-o trace.csv]
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"idaflash"
	"idaflash/internal/workload"
)

func main() {
	var (
		name     = flag.String("workload", "proj_1", "profile name (see -list)")
		requests = flag.Int("requests", 40000, "number of requests")
		seed     = flag.Int64("seed", 0, "override the profile's seed (0 keeps the default)")
		out      = flag.String("o", "", "output file (default stdout)")
		list     = flag.Bool("list", false, "list available profiles and exit")
		stat     = flag.String("stats", "", "print Table III-style statistics of an MSR CSV file and exit")
	)
	flag.Parse()

	if *list {
		for _, p := range append(idaflash.PaperProfiles(0), idaflash.ExtraProfiles(0)...) {
			fmt.Printf("%-8s read-ratio %.1f%%  mean-read %.1f KB\n", p.Name, p.ReadRatio*100, p.MeanReadKB)
		}
		return
	}
	if *stat != "" {
		if err := printStats(*stat); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	p, err := idaflash.ProfileByName(*name, *requests)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	tr, err := p.Generate()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := workload.WriteMSR(w, tr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s := tr.Stats()
	fmt.Fprintf(os.Stderr, "%s: %d requests, read ratio %.1f%%, mean read %.1f KB, footprint %.0f MB, span %v\n",
		tr.Name, s.Requests, s.ReadRatio*100, s.MeanReadKB, s.FootprintMB, s.Span)
}

// printStats parses an MSR CSV file and prints its Table III-style
// characteristics.
func printStats(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := workload.ParseMSR(path, f)
	if err != nil {
		return err
	}
	s := tr.Stats()
	fmt.Printf("trace:           %s\n", path)
	fmt.Printf("requests:        %d\n", s.Requests)
	fmt.Printf("read ratio:      %.2f%%\n", s.ReadRatio*100)
	fmt.Printf("mean read size:  %.2f KB\n", s.MeanReadKB)
	fmt.Printf("mean write size: %.2f KB\n", s.MeanWriteKB)
	fmt.Printf("read data ratio: %.2f%%\n", s.ReadDataRatio*100)
	fmt.Printf("footprint:       %.1f MB\n", s.FootprintMB)
	fmt.Printf("span:            %v\n", s.Span)
	return nil
}
