// Command idasim runs one workload on one simulated SSD configuration and
// prints the measurements.
//
// Usage:
//
//	idasim -workload usr_1 [-requests N] [-ida] [-error 0.2]
//	       [-deltatr 50us] [-bits 3] [-late]
//	idasim -trace trace.csv [-ida] ...
//
// With -trace, the file is parsed in the MSR Cambridge CSV format
// (Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"idaflash"
	"idaflash/internal/ssd"
	"idaflash/internal/workload"
)

func main() {
	var (
		name      = flag.String("workload", "usr_1", "paper workload profile name (see Table III)")
		tracePath = flag.String("trace", "", "replay an MSR-format CSV trace instead of a synthetic profile")
		requests  = flag.Int("requests", 40000, "host requests for the synthetic trace")
		ida       = flag.Bool("ida", false, "enable the IDA coding")
		errRate   = flag.Float64("error", 0.2, "voltage-adjustment error rate (with -ida)")
		deltaTR   = flag.Duration("deltatr", 0, "override delta-tR (e.g. 70us); 0 keeps the device default")
		bits      = flag.Int("bits", 3, "bits per cell: 2 (MLC), 3 (TLC), 4 (QLC)")
		late      = flag.Bool("late", false, "simulate the late SSD lifetime (LDPC read retries)")
		asJSON    = flag.Bool("json", false, "emit the full Results struct as JSON")
	)
	flag.Parse()

	sys := idaflash.Baseline()
	if *ida {
		sys = idaflash.IDA(*errRate)
	}
	sys.DeltaTR = *deltaTR
	sys.BitsPerCell = *bits
	if *late {
		sys.Lifetime = idaflash.PhaseLate
	}

	var res idaflash.Results
	var err error
	if *tracePath != "" {
		res, err = runTrace(*tracePath, sys)
	} else {
		var p idaflash.Profile
		p, err = idaflash.ProfileByName(*name, *requests)
		if err == nil {
			res, err = idaflash.RunWorkload(p, sys)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			System string
			idaflash.Results
		}{sys.Name, res}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	report(sys, res)
}

// runTrace replays an MSR CSV file on a device sized for it.
func runTrace(path string, sys idaflash.System) (idaflash.Results, error) {
	f, err := os.Open(path)
	if err != nil {
		return idaflash.Results{}, err
	}
	defer f.Close()
	tr, err := workload.ParseMSR(path, f)
	if err != nil {
		return idaflash.Results{}, err
	}
	stats := tr.Stats()
	// Build the device around the trace footprint; BuildConfig handles
	// timing, refresh period, and the ECC regime.
	p := idaflash.Profile{
		Name:        "trace",
		ReadRatio:   stats.ReadRatio,
		MeanReadKB:  stats.MeanReadKB,
		FootprintMB: stats.FootprintMB + 1,
		Requests:    stats.Requests,
		Duration:    stats.Span + time.Second,
	}
	if p.MeanReadKB == 0 {
		p.MeanReadKB = 8
	}
	cfg, _, err := idaflash.BuildConfig(p, sys)
	if err != nil {
		return idaflash.Results{}, err
	}
	dev, err := idaflash.NewSSD(cfg)
	if err != nil {
		return idaflash.Results{}, err
	}
	return dev.Run(tr, ssd.RunOptions{})
}

func report(sys idaflash.System, r idaflash.Results) {
	fmt.Printf("system:               %s\n", sys.Name)
	fmt.Printf("trace:                %s\n", r.Trace)
	fmt.Printf("read requests:        %d\n", r.ReadRequests)
	fmt.Printf("write requests:       %d\n", r.WriteRequests)
	fmt.Printf("mean read response:   %v\n", r.MeanReadResponse.Round(time.Microsecond))
	fmt.Printf("p99 read response:    %v\n", r.P99ReadResponse.Round(time.Microsecond))
	fmt.Printf("mean write response:  %v\n", r.MeanWriteResponse.Round(time.Microsecond))
	fmt.Printf("throughput:           %.1f MB/s (reads %.1f MB/s)\n", r.ThroughputMBps, r.ReadMBps)
	fmt.Printf("makespan:             %v\n", r.Makespan.Round(time.Millisecond))
	fmt.Printf("refreshes:            %d (%d with IDA, %d WLs adjusted)\n",
		r.FTL.Refreshes, r.FTL.IDARefreshes, r.FTL.IDAAdjustedWLs)
	fmt.Printf("reads from IDA WLs:   %d of %d\n", r.FTL.ReadsFromIDA, r.FTL.HostReads)
	fmt.Printf("GC jobs:              %d (%d erases)\n", r.FTL.GCJobs, r.FTL.Erases)
	fmt.Printf("in-use blocks (peak): %d of %d (%d IDA at peak)\n", r.PeakInUse, r.Usage.Total, r.PeakIDA)
	fmt.Printf("simulated events:     %d\n", r.Events)
}
