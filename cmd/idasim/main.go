// Command idasim runs one workload on one simulated SSD configuration — or
// a striped multi-device array of them — and prints the measurements.
//
// Usage:
//
//	idasim -workload usr_1 [-requests N] [-ida] [-error 0.2]
//	       [-deltatr 50us] [-bits 3] [-late | -pe-cycles N -retention-days D]
//	       [-sched read-first|fifo|age-aware] [-devices N] [-stripekb K]
//	       [-parity] [-faults scenario.json]
//	       [-store-dir dir | -no-snapshot] [-no-pool]
//	       [-trace-out t.json] [-metrics-out m.csv] [-metrics-interval 100ms]
//	       [-trace-sample N] [-pprof cpu.out]
//	idasim -trace trace.csv [-ida] ...
//
// With -trace, the file is parsed in the MSR Cambridge CSV format
// (Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime).
//
// -faults loads a deterministic fault scenario (JSON; see internal/faults
// and examples/faults/) injecting wear-dependent program/erase failures,
// die/channel outages, and transient read faults; the run reports the
// recovery counters. -parity (with -devices >= 3) rotates a RAID-5-style
// parity stripe so reads failed by the scenario are rebuilt from peer
// devices in a degraded-mode pass. -pe-cycles/-retention-days derive the
// ECC read-retry regime from the RBER wear curve instead of -late's coarse
// phase label.
//
// -trace-out writes the sampled request lifecycles as Chrome trace-event
// JSON, loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing;
// -metrics-out writes a fixed-interval time series of queue depths,
// utilization, and block populations as CSV. Both are deterministic:
// identical invocations produce byte-identical files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"idaflash"
	"idaflash/internal/array"
	"idaflash/internal/ssd"
	"idaflash/internal/workload"
)

func main() {
	var (
		name      = flag.String("workload", "usr_1", "paper workload profile name (see Table III)")
		tracePath = flag.String("trace", "", "replay an MSR-format CSV trace instead of a synthetic profile")
		requests  = flag.Int("requests", 40000, "host requests for the synthetic trace")
		ida       = flag.Bool("ida", false, "enable the IDA coding")
		codeName  = flag.String("coding", "", "cell coding scheme: ida (default), randio, or ilwc")
		errRate   = flag.Float64("error", 0.2, "voltage-adjustment error rate (with -ida)")
		deltaTR   = flag.Duration("deltatr", 0, "override delta-tR (e.g. 70us); 0 keeps the device default")
		bits      = flag.Int("bits", 3, "bits per cell: 2 (MLC), 3 (TLC), 4 (QLC)")
		late      = flag.Bool("late", false, "simulate the late SSD lifetime (LDPC read retries)")
		peCycles  = flag.Int("pe-cycles", 0, "derive the ECC retry regime from this many P/E cycles of wear (RBER curve; excludes -late)")
		retention = flag.Float64("retention-days", 0, "retention age in days for the RBER-derived ECC regime (with -pe-cycles)")
		sched     = flag.String("sched", "", "die/channel scheduler: read-first (default), fifo, or age-aware")
		maxWait   = flag.Duration("sched-maxwait", 0, "age-aware starvation bound; 0 uses the built-in default")
		devices   = flag.Int("devices", 1, "stripe the workload across this many independent devices")
		stripeKB  = flag.Int("stripekb", 0, "array stripe unit in KiB; 0 uses the default (64)")
		parity    = flag.Bool("parity", false, "rotate a RAID-5-style parity stripe across the array (needs -devices >= 3)")
		faultsIn  = flag.String("faults", "", "run under the fault scenario in this JSON file (see examples/faults/)")
		perDevice = flag.Bool("per-device", false, "with -devices > 1, print one summary per member device")
		asJSON    = flag.Bool("json", false, "emit the full Results struct as JSON")

		storeDir    = flag.String("store-dir", "", "persist aged device-state snapshots content-addressed in this directory, restoring the aging preamble in O(state) on later runs")
		storeSync   = flag.Bool("store-sync", false, "fsync every store blob write so the snapshot cache survives power loss")
		snapDir     = flag.String("snapshot-dir", "", "deprecated alias for -store-dir")
		noSnapshot  = flag.Bool("no-snapshot", false, "replay the aging preamble from scratch instead of reusing device-state snapshots")
		noPool      = flag.Bool("no-pool", false, "build a fresh device per run instead of reusing pooled simulation state")
		traceOut    = flag.String("trace-out", "", "write sampled request spans as Chrome/Perfetto trace-event JSON to this file")
		metricsOut  = flag.String("metrics-out", "", "write the telemetry time series as CSV to this file")
		metricsIval = flag.Duration("metrics-interval", 100*time.Millisecond, "simulated-time sampling period for -metrics-out")
		traceSample = flag.Int("trace-sample", 1, "with -trace-out, record every Nth request's span")
		pprofOut    = flag.String("pprof", "", "write a CPU profile of the run to this file")
	)
	flag.Parse()

	sys := idaflash.Baseline()
	if *ida {
		sys = idaflash.IDA(*errRate)
	}
	coding, err := idaflash.ParseCoding(*codeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sys.Coding = coding
	if coding != idaflash.CodingIDA {
		sys.Name += "-" + coding
	}
	sys.DeltaTR = *deltaTR
	sys.BitsPerCell = *bits
	if *late {
		sys.Lifetime = idaflash.PhaseLate
	}
	if *peCycles < 0 || *retention < 0 {
		fmt.Fprintln(os.Stderr, "-pe-cycles and -retention-days must be non-negative")
		os.Exit(1)
	}
	if *late && (*peCycles > 0 || *retention > 0) {
		fmt.Fprintln(os.Stderr, "-late and -pe-cycles/-retention-days are mutually exclusive")
		os.Exit(1)
	}
	sys.PECycles = *peCycles
	sys.RetentionDays = *retention
	policy, err := idaflash.ParseSchedulerPolicy(*sched)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sys.Scheduler = policy
	sys.SchedulerMaxWait = *maxWait
	if *devices < 1 {
		fmt.Fprintf(os.Stderr, "-devices %d: must be at least 1\n", *devices)
		os.Exit(1)
	}
	sys.Devices = *devices
	sys.StripeKB = *stripeKB
	if *parity && *devices < 3 {
		fmt.Fprintf(os.Stderr, "-parity needs -devices >= 3, have %d\n", *devices)
		os.Exit(1)
	}
	sys.Parity = *parity
	sys.NoSnapshot = *noSnapshot
	sys.NoPool = *noPool
	dir, warn := idaflash.ResolveStoreDir(*storeDir, *snapDir)
	if warn != "" {
		fmt.Fprintln(os.Stderr, warn)
	}
	if dir != "" {
		if *noSnapshot {
			fmt.Fprintln(os.Stderr, "-store-dir and -no-snapshot are mutually exclusive")
			os.Exit(1)
		}
		if err := idaflash.SetStoreDirSync(dir, *storeSync); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *faultsIn != "" {
		sc, err := idaflash.LoadFaultScenario(*faultsIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sys.Faults = sc
	}
	if *traceOut != "" || *metricsOut != "" {
		tc := idaflash.TelemetryConfig{SampleEvery: *traceSample}
		if *metricsOut != "" {
			if *metricsIval <= 0 {
				fmt.Fprintf(os.Stderr, "-metrics-interval %v: must be positive\n", *metricsIval)
				os.Exit(1)
			}
			tc.MetricsInterval = *metricsIval
		}
		sys.Telemetry = &tc
	}
	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	var res idaflash.Results
	var per []idaflash.Results
	var deg *idaflash.DegradedStats
	if *tracePath != "" {
		res, per, deg, err = runTrace(*tracePath, sys)
	} else {
		var p idaflash.Profile
		p, err = idaflash.ProfileByName(*name, *requests)
		if err == nil {
			if sys.Devices > 1 {
				var ar idaflash.ArrayResults
				ar, err = idaflash.RunArrayWorkload(p, sys)
				res, per = ar.Combined, ar.PerDevice
				if ar.Parity {
					deg = &ar.Degraded
				}
			} else {
				res, err = idaflash.RunWorkload(p, sys)
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if res.Telemetry != nil {
		if *traceOut != "" {
			if err := res.Telemetry.WriteTraceFile(*traceOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *metricsOut != "" {
			if err := res.Telemetry.WriteCSVFile(*metricsOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		out := struct {
			System    string
			Scheduler string
			Devices   int
			idaflash.Results
			Degraded  *idaflash.DegradedStats `json:",omitempty"`
			PerDevice []idaflash.Results      `json:",omitempty"`
		}{sys.Name, string(policy), max(1, sys.Devices), res, deg, nil}
		if *perDevice {
			out.PerDevice = per
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	report(sys, policy, res)
	if deg != nil {
		fmt.Printf("degraded reads:       %d rebuilt, %d lost (%d rebuild requests)\n",
			deg.DegradedExtents, deg.LostExtents, deg.ReconRequests)
	}
	if *perDevice {
		for d, r := range per {
			fmt.Printf("\n--- device %d ---\n", d)
			report(sys, policy, r)
		}
	}
}

// runTrace replays an MSR CSV file on a device (or array) sized for it.
func runTrace(path string, sys idaflash.System) (idaflash.Results, []idaflash.Results, *idaflash.DegradedStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return idaflash.Results{}, nil, nil, err
	}
	defer f.Close()
	tr, err := workload.ParseMSR(path, f)
	if err != nil {
		return idaflash.Results{}, nil, nil, err
	}
	stats := tr.Stats()
	// Build the device around the trace footprint; BuildConfig handles
	// timing, refresh period, and the ECC regime.
	p := idaflash.Profile{
		Name:        "trace",
		ReadRatio:   stats.ReadRatio,
		MeanReadKB:  stats.MeanReadKB,
		FootprintMB: stats.FootprintMB + 1,
		Requests:    stats.Requests,
		Duration:    stats.Span + time.Second,
	}
	if p.MeanReadKB == 0 {
		p.MeanReadKB = 8
	}
	if sys.Devices > 1 {
		// Size each member for its stripe share of the footprint (its
		// data share plus rotated parity comes to 1/(devices-1) with
		// parity enabled).
		shares := sys.Devices
		if sys.Parity {
			shares = sys.Devices - 1
		}
		pdev := p
		pdev.FootprintMB = p.FootprintMB/float64(shares) + 1
		cfg, _, err := idaflash.BuildConfig(pdev, sys)
		if err != nil {
			return idaflash.Results{}, nil, nil, err
		}
		arr, err := array.New(array.Config{
			Devices: sys.Devices, StripeKB: sys.StripeKB, Parity: sys.Parity, Device: cfg,
		})
		if err != nil {
			return idaflash.Results{}, nil, nil, err
		}
		res, err := arr.Run(tr, ssd.RunOptions{})
		var deg *idaflash.DegradedStats
		if res.Parity {
			deg = &res.Degraded
		}
		return res.Combined, res.PerDevice, deg, err
	}
	cfg, _, err := idaflash.BuildConfig(p, sys)
	if err != nil {
		return idaflash.Results{}, nil, nil, err
	}
	dev, err := idaflash.NewSSD(cfg)
	if err != nil {
		return idaflash.Results{}, nil, nil, err
	}
	res, err := dev.Run(tr, ssd.RunOptions{})
	return res, nil, nil, err
}

func report(sys idaflash.System, policy idaflash.SchedulerPolicy, r idaflash.Results) {
	fmt.Printf("system:               %s\n", sys.Name)
	fmt.Printf("coding:               %s\n", r.Coding)
	fmt.Printf("scheduler:            %s\n", policy)
	if sys.Faults != nil {
		label := sys.Faults.Name
		if label == "" {
			label = "(unnamed)"
		}
		fmt.Printf("fault scenario:       %s\n", label)
	}
	if sys.Devices > 1 {
		stripe := sys.StripeKB
		if stripe == 0 {
			stripe = array.DefaultStripeKB
		}
		fmt.Printf("array:                %d devices, %d KiB stripe\n", sys.Devices, stripe)
	}
	fmt.Printf("trace:                %s\n", r.Trace)
	fmt.Printf("read requests:        %d\n", r.ReadRequests)
	fmt.Printf("write requests:       %d\n", r.WriteRequests)
	fmt.Printf("mean read response:   %v\n", r.MeanReadResponse.Round(time.Microsecond))
	fmt.Printf("p99 read response:    %v\n", r.P99ReadResponse.Round(time.Microsecond))
	fmt.Printf("mean write response:  %v\n", r.MeanWriteResponse.Round(time.Microsecond))
	fmt.Printf("throughput:           %.1f MB/s (reads %.1f MB/s)\n", r.ThroughputMBps, r.ReadMBps)
	fmt.Printf("makespan:             %v\n", r.Makespan.Round(time.Millisecond))
	fmt.Printf("host-queued requests: %d (max depth %d, total wait %v)\n",
		r.Stages.Admission.HostQueued, r.Stages.Admission.MaxHostQueue,
		r.Stages.Admission.HostQueueWait.Round(time.Microsecond))
	fmt.Printf("refreshes:            %d (%d with IDA, %d WLs adjusted)\n",
		r.FTL.Refreshes, r.FTL.IDARefreshes, r.FTL.IDAAdjustedWLs)
	fmt.Printf("reads from IDA WLs:   %d of %d\n", r.FTL.ReadsFromIDA, r.FTL.HostReads)
	fmt.Printf("GC jobs:              %d (%d erases)\n", r.FTL.GCJobs, r.FTL.Erases)
	fmt.Printf("in-use blocks (peak): %d of %d (%d IDA at peak)\n", r.PeakInUse, r.Usage.Total, r.PeakIDA)
	fmt.Printf("program power proxy:  %.1f (%.2f per program, %.1f cells programmed)\n",
		r.PowerProxy, r.MeanProgramPower, r.FTL.ProgrammedCells)
	fmt.Printf("wear:                 mean %.2f erases/block (spread %d)\n", r.Wear.MeanErase, r.Wear.Spread)
	if sys.Faults != nil {
		fmt.Printf("fault retries:        %d read, %d write (%d timeouts, %d latency spikes)\n",
			r.Faults.ReadRetries, r.Faults.WriteRetries, r.Faults.ReadTimeouts, r.Faults.LatencySpikes)
		fmt.Printf("failed pages:         %d read, %d write (%d/%d host requests affected)\n",
			r.Faults.FailedReadPages, r.Faults.FailedWritePages,
			r.Faults.FailedReadRequests, r.Faults.FailedWriteRequests)
		fmt.Printf("grown bad blocks:     %d retired (%d program failures remapped, %d erase failures)\n",
			r.FTL.RetiredBlocks, r.FTL.ProgramFailures, r.FTL.EraseFailures)
	}
	fmt.Printf("simulated events:     %d\n", r.Events)
}
