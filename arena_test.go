package idaflash_test

import (
	"math/rand"
	"testing"

	"idaflash"
	"idaflash/internal/runpool"
)

// withFreshArena swaps the process-wide device arena for an empty one so a
// test observes its own hit/miss transitions, restoring the shared arena
// afterwards.
func withFreshArena(t testing.TB) *runpool.Arena {
	t.Helper()
	old := idaflash.DefaultArena
	fresh := runpool.New(0)
	idaflash.DefaultArena = fresh
	t.Cleanup(func() { idaflash.DefaultArena = old })
	return fresh
}

// arenaCases is the pool of (profile, system) points the reuse tests
// interleave: different workloads, codings, schedulers, IDA settings, and a
// fault scenario. Points sharing a device geometry share pooled devices, so
// a checkout routinely reuses a device that last ran a *different*
// configuration — the state-bleed scenario pooling must survive.
func arenaCases(t testing.TB) []struct {
	name    string
	profile idaflash.Profile
	sys     idaflash.System
} {
	t.Helper()
	profile := func(name string) idaflash.Profile {
		p, err := idaflash.ProfileByName(name, 1200)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	wearout, err := idaflash.LoadFaultScenario("examples/faults/wearout.json")
	if err != nil {
		t.Fatal(err)
	}
	alter := func(sys idaflash.System, f func(*idaflash.System)) idaflash.System {
		f(&sys)
		return sys
	}
	return []struct {
		name    string
		profile idaflash.Profile
		sys     idaflash.System
	}{
		{"baseline-hm", profile("hm_1"), idaflash.Baseline()},
		{"ida-hm", profile("hm_1"), idaflash.IDA(0.2)},
		{"ida-usr", profile("usr_1"), idaflash.IDA(0.4)},
		{"randio", profile("hm_1"), alter(idaflash.Baseline(), func(s *idaflash.System) {
			s.Coding = idaflash.CodingRandIO
		})},
		{"ilwc-fifo", profile("hm_1"), alter(idaflash.Baseline(), func(s *idaflash.System) {
			s.Coding = idaflash.CodingILWC
			s.Scheduler = "fifo"
		})},
		{"faults", profile("usr_1"), alter(idaflash.IDA(0.2), func(s *idaflash.System) {
			s.Faults = wearout
		})},
	}
}

// TestArenaReuseInterleaved is the state-bleed gate for device pooling: it
// interleaves runs of different profiles, codings, schedulers, and fault
// scenarios on the shared arena, in a seeded-random order over several
// rounds, and requires every pooled run to match the fresh-device (NoPool)
// reference scalar for scalar.
func TestArenaReuseInterleaved(t *testing.T) {
	cases := arenaCases(t)
	arena := withFreshArena(t)

	// Fresh-device references, outside the arena.
	want := make([]idaflash.Results, len(cases))
	for i, tc := range cases {
		sys := tc.sys
		sys.NoPool = true
		res, err := idaflash.RunWorkload(tc.profile, sys)
		if err != nil {
			t.Fatalf("%s (fresh): %v", tc.name, err)
		}
		want[i] = res.Scalars()
	}
	if got := arena.Stats(); got.Hits != 0 || got.Returns != 0 {
		t.Fatalf("NoPool runs touched the arena: %+v", got)
	}

	rng := rand.New(rand.NewSource(9))
	for round := 0; round < 3; round++ {
		order := rng.Perm(len(cases))
		for _, i := range order {
			tc := cases[i]
			res, err := idaflash.RunWorkload(tc.profile, tc.sys)
			if err != nil {
				t.Fatalf("round %d %s (pooled): %v", round, tc.name, err)
			}
			if res.Scalars() != want[i] {
				t.Errorf("round %d %s: pooled run diverged from fresh device:\nfresh  %+v\npooled %+v",
					round, tc.name, want[i], res.Scalars())
			}
		}
	}
	st := arena.Stats()
	if st.Hits == 0 {
		t.Fatalf("interleaved rounds never reused a device: %+v", st)
	}
	if st.Returns == 0 {
		t.Fatalf("clean runs never returned a device: %+v", st)
	}
}

// TestArenaReuseArray checks pooling across the array path: member devices
// are checked out of and released back into the shared arena, and pooled
// array runs match fresh-device ones merged and per device.
func TestArenaReuseArray(t *testing.T) {
	p, err := idaflash.ProfileByName("hm_1", 1200)
	if err != nil {
		t.Fatal(err)
	}
	sys := idaflash.IDA(0.2)
	sys.Devices = 4
	arena := withFreshArena(t)

	fresh := sys
	fresh.NoPool = true
	want, err := idaflash.RunArrayWorkload(p, fresh)
	if err != nil {
		t.Fatal(err)
	}
	// Two pooled runs: the first parks four devices, the second reuses them.
	for round := 0; round < 2; round++ {
		got, err := idaflash.RunArrayWorkload(p, sys)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got.Combined.Scalars() != want.Combined.Scalars() {
			t.Errorf("round %d: pooled combined results diverged from fresh", round)
		}
		for d := range got.PerDevice {
			if got.PerDevice[d].Scalars() != want.PerDevice[d].Scalars() {
				t.Errorf("round %d: pooled device %d diverged from fresh", round, d)
			}
		}
	}
	st := arena.Stats()
	if st.Returns < uint64(2*sys.Devices) || st.Hits < uint64(sys.Devices) {
		t.Fatalf("array runs did not cycle member devices through the arena: %+v", st)
	}
}

// FuzzArenaReuse drives arbitrary interleavings of the case pool through
// one arena: each input byte picks the next configuration to run on a
// pooled device, and every run must match its fresh-device reference. The
// seed corpus covers repeats, round-trips, and alternations; the fuzzer
// explores orderings beyond them.
func FuzzArenaReuse(f *testing.F) {
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{5, 5})
	f.Add([]byte{3, 1, 3, 1})
	f.Add([]byte{2, 4, 0, 5, 1, 3})

	cases := arenaCases(f)
	// One shared reference table and one long-lived arena across fuzz
	// executions: later executions reuse devices parked by earlier ones,
	// which is exactly the exposure the fuzz is after.
	old := idaflash.DefaultArena
	idaflash.DefaultArena = runpool.New(0)
	f.Cleanup(func() { idaflash.DefaultArena = old })
	want := make([]idaflash.Results, len(cases))
	for i, tc := range cases {
		sys := tc.sys
		sys.NoPool = true
		res, err := idaflash.RunWorkload(tc.profile, sys)
		if err != nil {
			f.Fatalf("%s (fresh): %v", tc.name, err)
		}
		want[i] = res.Scalars()
	}

	f.Fuzz(func(t *testing.T, seq []byte) {
		if len(seq) > 8 {
			seq = seq[:8] // bound the per-input simulation budget
		}
		for step, b := range seq {
			i := int(b) % len(cases)
			tc := cases[i]
			res, err := idaflash.RunWorkload(tc.profile, tc.sys)
			if err != nil {
				t.Fatalf("step %d %s: %v", step, tc.name, err)
			}
			if res.Scalars() != want[i] {
				t.Fatalf("step %d %s: pooled run diverged from fresh device:\nfresh  %+v\npooled %+v",
					step, tc.name, want[i], res.Scalars())
			}
		}
	})
}
