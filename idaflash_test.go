package idaflash_test

import (
	"errors"
	"testing"
	"time"

	"idaflash"
)

func smallProfile(t *testing.T, name string) idaflash.Profile {
	t.Helper()
	p, err := idaflash.ProfileByName(name, 4000)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSystemConstructors(t *testing.T) {
	b := idaflash.Baseline()
	if b.Name != "Baseline" || b.IDA {
		t.Errorf("Baseline() = %+v", b)
	}
	i := idaflash.IDA(0.2)
	if i.Name != "IDA-E20" || !i.IDA || i.ErrorRate != 0.2 {
		t.Errorf("IDA(0.2) = %+v", i)
	}
	if idaflash.IDA(0).Name != "IDA-E0" {
		t.Errorf("IDA(0) name = %s", idaflash.IDA(0).Name)
	}
	if idaflash.IDA(0.8).Name != "IDA-E80" {
		t.Errorf("IDA(0.8) name = %s", idaflash.IDA(0.8).Name)
	}
}

func TestBuildConfig(t *testing.T) {
	p := smallProfile(t, "proj_3")
	cfg, np, err := idaflash.BuildConfig(p, idaflash.IDA(0.2))
	if err != nil {
		t.Fatal(err)
	}
	if np.FootprintMB <= 0 {
		t.Error("normalized profile lacks footprint")
	}
	if !cfg.FTL.IDAEnabled || cfg.FTL.ErrorRate != 0.2 {
		t.Errorf("FTL options = %+v", cfg.FTL)
	}
	if cfg.FTL.RefreshPeriod <= 0 || cfg.FTL.MaxOpenBlockAge <= 0 {
		t.Error("refresh knobs not set")
	}
	if cfg.Geometry.BitsPerCell != 3 {
		t.Errorf("bits = %d", cfg.Geometry.BitsPerCell)
	}
	// Device must comfortably hold the footprint.
	if cfg.Geometry.CapacityBytes() < int64(np.FootprintMB*1.5*(1<<20)) {
		t.Error("device undersized")
	}
	// MLC timing kicks in for 2 bits/cell.
	mlc := idaflash.Baseline()
	mlc.BitsPerCell = 2
	cfg2, _, err := idaflash.BuildConfig(p, mlc)
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.Timing.ReadBase != 65*time.Microsecond {
		t.Errorf("MLC ReadBase = %v", cfg2.Timing.ReadBase)
	}
	// delta-tR override.
	d70 := idaflash.Baseline()
	d70.DeltaTR = 70 * time.Microsecond
	cfg3, _, err := idaflash.BuildConfig(p, d70)
	if err != nil {
		t.Fatal(err)
	}
	if cfg3.Timing.ReadDelta != 70*time.Microsecond {
		t.Errorf("ReadDelta = %v", cfg3.Timing.ReadDelta)
	}
	// Unsupported densities are rejected.
	bad := idaflash.Baseline()
	bad.BitsPerCell = 5
	if _, _, err := idaflash.BuildConfig(p, bad); err == nil {
		t.Error("5 bits/cell accepted")
	}
}

func TestRunWorkloadEndToEnd(t *testing.T) {
	p := smallProfile(t, "hm_1")
	base, err := idaflash.RunWorkload(p, idaflash.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	ida, err := idaflash.RunWorkload(p, idaflash.IDA(0.2))
	if err != nil {
		t.Fatal(err)
	}
	if base.ReadRequests == 0 || ida.ReadRequests == 0 {
		t.Fatal("no reads measured")
	}
	if ida.MeanReadResponse >= base.MeanReadResponse {
		t.Errorf("IDA %v not faster than baseline %v", ida.MeanReadResponse, base.MeanReadResponse)
	}
	if ida.FTL.IDARefreshes == 0 || ida.FTL.ReadsFromIDA == 0 {
		t.Error("IDA machinery idle")
	}
	if base.FTL.IDARefreshes != 0 {
		t.Error("baseline ran IDA refreshes")
	}
}

func TestRunWorkloadDeterminism(t *testing.T) {
	p := smallProfile(t, "proj_3")
	a, err := idaflash.RunWorkload(p, idaflash.IDA(0.2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := idaflash.RunWorkload(p, idaflash.IDA(0.2))
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanReadResponse != b.MeanReadResponse || a.FTL != b.FTL || a.Events != b.Events {
		t.Error("identical RunWorkload calls diverged")
	}
}

func TestCodingFacade(t *testing.T) {
	tlc := idaflash.NewGrayCoding(3)
	if tlc.Senses(idaflash.MSB) != 4 {
		t.Errorf("MSB senses = %d", tlc.Senses(idaflash.MSB))
	}
	m := tlc.Merge(idaflash.MaskAll(3).Without(idaflash.LSB))
	if m.Senses(idaflash.CSB) != 1 || m.Senses(idaflash.MSB) != 2 {
		t.Error("merge through facade wrong")
	}
	v := idaflash.Vendor232TLC()
	if v.Senses(idaflash.CSB) != 3 {
		t.Errorf("2-3-2 CSB senses = %d", v.Senses(idaflash.CSB))
	}
	if idaflash.PaperGeometry().TotalBlocks() != 350208 {
		t.Error("paper geometry wrong")
	}
	if idaflash.PaperTiming().ReadLatency(4) != 150*time.Microsecond {
		t.Error("paper timing wrong")
	}
	if idaflash.PaperMLCTiming().ReadLatency(2) != 115*time.Microsecond {
		t.Error("MLC timing wrong")
	}
	if len(idaflash.PaperProfiles(0)) != 11 || len(idaflash.ExtraProfiles(0)) != 9 {
		t.Error("profile registries wrong")
	}
}

func TestRunWithFollowup(t *testing.T) {
	p := smallProfile(t, "proj_3")
	follow := idaflash.Profile{
		Name:          "flush",
		ReadRatio:     0.3,
		MeanReadKB:    16,
		ReadDataRatio: 0.3,
		Requests:      1500,
		Seed:          9,
	}
	sys := idaflash.IDA(0.2)
	sys.TightSpace = true
	first, second, err := idaflash.RunWithFollowup(p, sys, follow)
	if err != nil {
		t.Fatal(err)
	}
	if first.ReadRequests == 0 || second.WriteRequests == 0 {
		t.Fatalf("phases empty: %d reads / %d writes", first.ReadRequests, second.WriteRequests)
	}
	// Phase 2 counters cover phase 2 only.
	if second.FTL.HostWrites == 0 || second.FTL.HostWrites >= first.FTL.HostWrites+second.FTL.HostWrites+1 {
		t.Error("phase accounting wrong")
	}
	// The write-heavy follow-up erases blocks.
	if second.FTL.Erases == 0 {
		t.Error("follow-up phase never erased")
	}
	if second.Makespan <= 0 {
		t.Errorf("phase-2 makespan = %v", second.Makespan)
	}
}

func TestAblationKnobs(t *testing.T) {
	p := smallProfile(t, "hm_1")
	only := idaflash.IDA(0.2)
	only.Name = "IDA-onlyinv"
	only.OnlyInvalid = true
	res, err := idaflash.RunWorkload(p, only)
	if err != nil {
		t.Fatal(err)
	}
	if res.FTL.IDARefreshes == 0 {
		t.Error("only-invalid mode never adjusted anything")
	}
	fast := idaflash.IDA(0.2)
	fast.Name = "IDA-fast"
	fast.FastAdjust = true
	cfg, _, err := idaflash.BuildConfig(p, fast)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Timing.VoltAdjust != cfg.Timing.Program/2 {
		t.Errorf("fast adjust = %v, want %v", cfg.Timing.VoltAdjust, cfg.Timing.Program/2)
	}
	tight := idaflash.Baseline()
	tight.TightSpace = true
	cfgT, np, err := idaflash.BuildConfig(p, tight)
	if err != nil {
		t.Fatal(err)
	}
	cfgL, _, err := idaflash.BuildConfig(p, idaflash.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if cfgT.Geometry.CapacityBytes() > cfgL.Geometry.CapacityBytes() {
		t.Error("tight space not smaller than default")
	}
	if cfgT.Geometry.CapacityBytes() < int64(np.FootprintMB*(1<<20)) {
		t.Error("tight space below footprint")
	}
}

func TestResultsUtilizationPopulated(t *testing.T) {
	p := smallProfile(t, "proj_3")
	res, err := idaflash.RunWorkload(p, idaflash.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanChannelUtilization <= 0 || res.MeanChannelUtilization > 1 {
		t.Errorf("channel utilization = %v", res.MeanChannelUtilization)
	}
	if res.MeanDieUtilization < 0 || res.MeanDieUtilization > 1 {
		t.Errorf("die utilization = %v", res.MeanDieUtilization)
	}
	if res.BusySpan <= 0 {
		t.Errorf("busy span = %v", res.BusySpan)
	}
}

// TestCodingSelection exercises the facade's coding-scheme plumbing: name
// validation, geometry cross-checks, the typed *ConfigError contract, and
// the selected code reaching the FTL and the run's Results.
func TestCodingSelection(t *testing.T) {
	p := smallProfile(t, "proj_3")

	names := idaflash.CodingNames()
	if len(names) != 3 {
		t.Fatalf("CodingNames() = %v, want 3 schemes", names)
	}
	if got, err := idaflash.ParseCoding(""); err != nil || got != idaflash.CodingIDA {
		t.Fatalf("ParseCoding(\"\") = %q, %v", got, err)
	}
	if _, err := idaflash.ParseCoding("gray"); !idaflash.IsConfigError(err) {
		t.Fatalf("ParseCoding(gray) err = %v, want a *ConfigError", err)
	}

	sys := idaflash.IDA(0.2)
	sys.Coding = idaflash.CodingRandIO
	cfg, _, err := idaflash.BuildConfig(p, sys)
	if err != nil {
		t.Fatal(err)
	}
	// The balanced TLC map reads the MSB in 2 and the LSB in 3 sensings.
	if cfg.FTL.Code == nil || cfg.FTL.Code.Name() != idaflash.CodingRandIO || cfg.FTL.Code.MaxSenses() != 3 {
		t.Errorf("randio code not wired into the FTL: %+v", cfg.FTL.Code)
	}

	// Geometry cross-check: randio is capped at 4 bits/cell, so it works
	// on QLC but an unknown name never does.
	qlc := sys
	qlc.BitsPerCell = 4
	if _, _, err := idaflash.BuildConfig(p, qlc); err != nil {
		t.Errorf("randio on QLC rejected: %v", err)
	}
	bad := sys
	bad.Coding = "bogus"
	if _, _, err := idaflash.BuildConfig(p, bad); !idaflash.IsConfigError(err) {
		t.Errorf("unknown coding err = %v, want a *ConfigError", err)
	}
	// Vendor232 pins the state map, so it conflicts with non-ida codings.
	conflict := sys
	conflict.Vendor232 = true
	if _, _, err := idaflash.BuildConfig(p, conflict); !idaflash.IsConfigError(err) {
		t.Errorf("Vendor232+randio err = %v, want a *ConfigError", err)
	}
	// Plain simulation failures are not config errors.
	if idaflash.IsConfigError(errFake) {
		t.Error("IsConfigError matched a generic error")
	}

	res, err := idaflash.RunWorkload(p, sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coding != idaflash.CodingRandIO {
		t.Errorf("Results.Coding = %q, want %q", res.Coding, idaflash.CodingRandIO)
	}
	if res.PowerProxy <= 0 || res.MeanProgramPower <= 0 {
		t.Errorf("power proxies not accumulated: total %v, mean %v", res.PowerProxy, res.MeanProgramPower)
	}

	// ilwc shares the Gray map but must report a cheaper per-program
	// power on the identical workload.
	ida := idaflash.IDA(0.2)
	idaRes, err := idaflash.RunWorkload(p, ida)
	if err != nil {
		t.Fatal(err)
	}
	ilwc := idaflash.IDA(0.2)
	ilwc.Coding = idaflash.CodingILWC
	ilwcRes, err := idaflash.RunWorkload(p, ilwc)
	if err != nil {
		t.Fatal(err)
	}
	if ilwcRes.MeanReadResponse != idaRes.MeanReadResponse {
		t.Errorf("ilwc read response %v differs from ida %v (same state map)", ilwcRes.MeanReadResponse, idaRes.MeanReadResponse)
	}
	if ilwcRes.MeanProgramPower >= idaRes.MeanProgramPower {
		t.Errorf("ilwc power %v not below ida %v", ilwcRes.MeanProgramPower, idaRes.MeanProgramPower)
	}
}

var errFake = errors.New("fake simulation failure")

func TestVendor232System(t *testing.T) {
	p := smallProfile(t, "proj_3")
	sys := idaflash.IDA(0.2)
	sys.Vendor232 = true
	cfg, _, err := idaflash.BuildConfig(p, sys)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.FTL.Code == nil || cfg.FTL.Code.Senses(idaflash.CSB) != 3 {
		t.Error("vendor scheme not wired into the FTL")
	}
	// Vendor coding requires TLC.
	bad := sys
	bad.BitsPerCell = 2
	if _, _, err := idaflash.BuildConfig(p, bad); err == nil {
		t.Error("vendor 2-3-2 on MLC accepted")
	}
	res, err := idaflash.RunWorkload(p, sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.FTL.IDARefreshes == 0 || res.FTL.ReadsFromIDA == 0 {
		t.Error("IDA idle under the vendor coding")
	}
}

func TestSchedulerKnobPlumbing(t *testing.T) {
	p := smallProfile(t, "proj_3")
	sys := idaflash.Baseline()
	sys.Scheduler = idaflash.SchedAgeAware
	sys.SchedulerMaxWait = 5 * time.Millisecond
	cfg, _, err := idaflash.BuildConfig(p, sys)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scheduler != idaflash.SchedAgeAware || cfg.SchedulerMaxWait != 5*time.Millisecond {
		t.Errorf("scheduler knobs not plumbed: %v / %v", cfg.Scheduler, cfg.SchedulerMaxWait)
	}
	bad := sys
	bad.Scheduler = "bogus"
	badCfg, _, err := idaflash.BuildConfig(p, bad)
	if err == nil {
		if _, err := idaflash.NewSSD(badCfg); err == nil {
			t.Error("bogus scheduler survived BuildConfig and NewSSD")
		}
	}
	if _, err := idaflash.ParseSchedulerPolicy("fifo"); err != nil {
		t.Error(err)
	}
	if got := len(idaflash.SchedulerPolicies()); got != 3 {
		t.Errorf("SchedulerPolicies() has %d entries", got)
	}
	// Every policy runs end to end through the facade.
	for _, pol := range idaflash.SchedulerPolicies() {
		s := idaflash.Baseline()
		s.Scheduler = pol
		res, err := idaflash.RunWorkload(p, s)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.ReadRequests == 0 {
			t.Errorf("%s: no reads served", pol)
		}
	}
}

func TestRunWorkloadTelemetry(t *testing.T) {
	p := smallProfile(t, "usr_1")
	sys := idaflash.IDA(0.2)
	sys.Telemetry = &idaflash.TelemetryConfig{MetricsInterval: 100 * time.Millisecond}
	res, err := idaflash.RunWorkload(p, sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil {
		t.Fatal("System.Telemetry set but Results.Telemetry is nil")
	}
	if len(res.Telemetry.Spans) == 0 || len(res.Telemetry.Samples) == 0 {
		t.Fatalf("empty telemetry export: %d spans, %d samples",
			len(res.Telemetry.Spans), len(res.Telemetry.Samples))
	}
	// The array path tags and merges per-device streams.
	sys.Devices = 2
	ar, err := idaflash.RunArrayWorkload(p, sys)
	if err != nil {
		t.Fatal(err)
	}
	e := ar.Combined.Telemetry
	if e == nil || e.Device != -1 {
		t.Fatalf("array telemetry not merged: %+v", e)
	}
	// The shared System config must not have been mutated by device
	// tagging (each device gets its own copy).
	if sys.Telemetry.Device != 0 {
		t.Errorf("array run mutated the caller's TelemetryConfig: Device = %d", sys.Telemetry.Device)
	}
}

func TestRunArrayWorkload(t *testing.T) {
	p := smallProfile(t, "usr_1")
	sys := idaflash.IDA(0.2)
	sys.Devices = 4
	single, err := idaflash.RunWorkload(p, idaflash.IDA(0.2))
	if err != nil {
		t.Fatal(err)
	}
	ar, err := idaflash.RunArrayWorkload(p, sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(ar.PerDevice) != 4 || ar.Devices != 4 {
		t.Fatalf("array shape: %d devices, %d per-device results", ar.Devices, len(ar.PerDevice))
	}
	if ar.Combined.ThroughputMBps <= single.ThroughputMBps {
		t.Errorf("4-device throughput %.1f MB/s not above single device %.1f MB/s",
			ar.Combined.ThroughputMBps, single.ThroughputMBps)
	}
	// RunWorkload routes through the array when Devices > 1 and returns
	// the merged view.
	merged, err := idaflash.RunWorkload(p, sys)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Scalars() != ar.Combined.Scalars() {
		t.Error("RunWorkload(Devices=4) diverged from RunArrayWorkload().Combined")
	}
	// Array runs are reproducible end to end.
	again, err := idaflash.RunArrayWorkload(p, sys)
	if err != nil {
		t.Fatal(err)
	}
	if again.Combined.Scalars() != ar.Combined.Scalars() {
		t.Error("array workload not deterministic")
	}
}

// TestResolveStoreDir pins the -store-dir / -snapshot-dir arbitration both
// command-line tools share: -store-dir wins deterministically, and the
// alias always produces exactly one warning.
func TestResolveStoreDir(t *testing.T) {
	cases := []struct {
		name, store, snap string
		wantDir           string
		wantWarn          bool
	}{
		{"neither", "", "", "", false},
		{"store only", "/a", "", "/a", false},
		{"alias only", "", "/b", "/b", true},
		{"both, store wins", "/a", "/b", "/a", true},
		{"both equal, still warns", "/a", "/a", "/a", true},
	}
	for _, tc := range cases {
		dir, warn := idaflash.ResolveStoreDir(tc.store, tc.snap)
		if dir != tc.wantDir {
			t.Errorf("%s: dir %q, want %q", tc.name, dir, tc.wantDir)
		}
		if (warn != "") != tc.wantWarn {
			t.Errorf("%s: warning %q, want warning=%v", tc.name, warn, tc.wantWarn)
		}
	}
}
