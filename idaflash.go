// Package idaflash is a discrete-event SSD simulator reproducing "Invalid
// Data-Aware Coding to Enhance the Read Performance of High-Density Flash
// Memories" (Choi, Jung, Kandemir; MICRO 2018).
//
// High-density (MLC/TLC/QLC) flash stores several logical pages per
// wordline, and the slower pages need more wordline sensings to read. The
// paper's observation: once the fast (LSB) page of a wordline is
// invalidated by an overwrite, the conventional coding keeps paying the
// full sensing cost for the remaining pages. Its IDA coding merges the
// now-duplicated voltage states during the periodic data refresh, cutting
// CSB reads from two sensings to one and MSB reads from four to two (or
// one), at no reliability cost because refresh already holds an error-free
// copy of every page.
//
// This package is the public facade: device construction, workload
// profiles matching the paper's Table III, and a one-call experiment
// runner. The substrates live in internal/ packages (coding, flash, sim,
// ecc, ftl, ssd, workload) and are re-exported here as type aliases where
// users need them.
//
// Quick start:
//
//	profile, _ := idaflash.ProfileByName("usr_1", 20000)
//	base, _ := idaflash.RunWorkload(profile, idaflash.Baseline())
//	ida, _ := idaflash.RunWorkload(profile, idaflash.IDA(0.20))
//	fmt.Printf("read response: %v -> %v\n",
//		base.MeanReadResponse, ida.MeanReadResponse)
package idaflash

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"idaflash/internal/array"
	"idaflash/internal/coding"
	"idaflash/internal/ecc"
	"idaflash/internal/faults"
	"idaflash/internal/flash"
	"idaflash/internal/ftl"
	"idaflash/internal/results"
	"idaflash/internal/runpool"
	"idaflash/internal/sim"
	"idaflash/internal/snapshot"
	"idaflash/internal/ssd"
	"idaflash/internal/telemetry"
	"idaflash/internal/workload"
)

// Re-exported building blocks. These are aliases, so values flow freely
// between the facade and the internal packages.
type (
	// Profile parameterizes the synthetic workload generator.
	Profile = workload.Profile
	// Trace is an ordered host request stream.
	Trace = workload.Trace
	// Request is one host I/O.
	Request = workload.Request
	// TraceStats are Table III-style trace characteristics.
	TraceStats = workload.TraceStats
	// Geometry is the physical device shape.
	Geometry = flash.Geometry
	// TimingSpec is the device timing (reads, program, erase, bus, ECC).
	TimingSpec = flash.TimingSpec
	// Scheme is a cell coding (state-to-bits assignment).
	Scheme = coding.Scheme
	// Code is the pluggable coding-scheme interface every simulator layer
	// programs against: state map, sensing counts, IDA merge rules, and
	// per-program power/wear cost hooks.
	Code = coding.Code
	// CellCost is a code's per-program power/wear proxy.
	CellCost = coding.CellCost
	// PageType identifies a page within a wordline (LSB/CSB/MSB/...).
	PageType = coding.PageType
	// ValidMask records which pages of a wordline are still valid.
	ValidMask = coding.ValidMask
	// Merged is the result of the IDA voltage adjustment on a wordline.
	Merged = coding.Merged
	// Plan is the per-wordline Table I refresh decision.
	Plan = coding.Plan
	// SSD is a simulated device instance.
	SSD = ssd.SSD
	// SSDConfig fully describes a device.
	SSDConfig = ssd.Config
	// FTLOptions configures the translation layer.
	FTLOptions = ftl.Options
	// ECCParams configures the decode/read-retry model.
	ECCParams = ecc.Params
	// LifetimePhase selects the early or late device-age regime.
	LifetimePhase = ecc.LifetimePhase
	// Results carries everything one simulation run measures.
	Results = ssd.Results
	// RunOptions controls warmup and prefill.
	RunOptions = ssd.RunOptions
	// SchedulerPolicy names a die/channel scheduling discipline.
	SchedulerPolicy = sim.Policy
	// Array is a striped multi-device set of SSDs.
	Array = array.Array
	// ArrayConfig describes a striped array topology.
	ArrayConfig = array.Config
	// ArrayResults pairs merged and per-device array measurements.
	ArrayResults = array.Results
	// FaultScenario is a declarative, replayable fault campaign (wear
	// failures, die/channel outages, transient read faults).
	FaultScenario = faults.Scenario
	// FaultStats accounts the host-path fault recovery of one device.
	FaultStats = ssd.FaultStats
	// DegradedStats accounts an array's post-run parity reconstruction.
	DegradedStats = array.DegradedStats
	// TelemetryConfig parameterizes the request-lifecycle recorder (span
	// sampling, ring capacity, time-series interval).
	TelemetryConfig = telemetry.Config
	// TelemetryExport is a recorded span/time-series snapshot, writable
	// as Chrome/Perfetto trace JSON or metrics CSV.
	TelemetryExport = telemetry.Export
	// InvariantError is a contained simulation invariant violation: the
	// recovered panic value plus the engine position and stack at capture.
	InvariantError = sim.InvariantError
)

// Scheduling policies for System.Scheduler and SSDConfig.Scheduler.
const (
	// SchedReadFirst is the paper's policy: reads overtake writes, both
	// overtake background work. The default.
	SchedReadFirst = sim.PolicyReadFirst
	// SchedFIFO serves die/channel queues strictly in arrival order.
	SchedFIFO = sim.PolicyFIFO
	// SchedAgeAware is read-first with a starvation bound for writes and
	// background work.
	SchedAgeAware = sim.PolicyAgeAware
)

// SchedulerPolicies lists the selectable policies.
func SchedulerPolicies() []SchedulerPolicy { return sim.Policies() }

// ParseSchedulerPolicy validates a policy name ("" means read-first).
func ParseSchedulerPolicy(s string) (SchedulerPolicy, error) { return sim.ParsePolicy(s) }

// NewArray builds a striped multi-device array.
func NewArray(cfg ArrayConfig) (*Array, error) { return array.New(cfg) }

// LoadFaultScenario parses a fault scenario from a JSON file (the format
// behind cmd/idasim's -faults flag). Unknown fields are rejected.
func LoadFaultScenario(path string) (*FaultScenario, error) { return faults.Load(path) }

// Lifetime phases (Figure 11).
const (
	PhaseEarly = ecc.PhaseEarly
	PhaseLate  = ecc.PhaseLate
)

// Conventional TLC page names.
const (
	LSB = coding.LSB
	CSB = coding.CSB
	MSB = coding.MSB
)

// MaskAll returns the wordline validity mask with the lowest n pages valid.
func MaskAll(n int) ValidMask { return coding.MaskAll(n) }

// NewSSD builds a simulated device.
func NewSSD(cfg SSDConfig) (*SSD, error) { return ssd.New(cfg) }

// NewGrayCoding returns the standard Gray coding for the given bits/cell
// (Figure 2 for TLC, Figure 6 for QLC).
func NewGrayCoding(bits int) *Scheme { return coding.NewGray(bits) }

// Vendor232TLC returns the alternative 2-3-2 TLC coding from Section III-B.
func Vendor232TLC() *Scheme { return coding.Vendor232TLC() }

// Registered coding-scheme names for System.Coding, idasim -coding, and the
// server's "coding" request field.
const (
	// CodingIDA is the paper's Gray (or vendor 2-3-2) map with IDA merges.
	CodingIDA = coding.CodeIDA
	// CodingRandIO is Sharon/Alrod random-I/O coding: balanced per-page
	// sensing counts, no page pays the Gray MSB's worst case.
	CodingRandIO = coding.CodeRandIO
	// CodingILWC is inverted limited-weight coding: Gray latency with a
	// programmed-cell population biased toward low voltage states.
	CodingILWC = coding.CodeILWC
)

// CodingNames lists the selectable coding schemes, sorted.
func CodingNames() []string { return coding.Names() }

// ParseCoding validates a coding-scheme name ("" selects the default,
// CodingIDA) without needing a bit density. The returned name is the
// canonical registry name.
func ParseCoding(s string) (string, error) {
	if s == "" {
		return coding.DefaultCode, nil
	}
	for _, name := range coding.Names() {
		if s == name {
			return s, nil
		}
	}
	return "", &ConfigError{Field: "Coding", Reason: fmt.Sprintf("unknown coding %q (known: %v)", s, coding.Names())}
}

// NewCoding builds a registered coding scheme for the given bits per cell.
func NewCoding(name string, bits int) (Code, error) { return coding.New(name, bits) }

// ConfigError is a typed, fielded rejection of a System/Profile combination:
// every validation failure BuildConfig can produce (unknown coding scheme,
// coding/geometry mismatch, conflicting knobs, out-of-range rates) is one of
// these, so callers can distinguish "your request is wrong" from "the
// simulation failed" with IsConfigError and surface Field/Reason
// structurally (the HTTP server maps them to 400s).
type ConfigError struct {
	// Field names the System or Profile field that was rejected.
	Field string
	// Reason says what was wrong with it.
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("idaflash: invalid %s: %s", e.Field, e.Reason)
}

// IsConfigError reports whether err is (or wraps) a configuration
// validation failure rather than a simulation failure.
func IsConfigError(err error) bool {
	var ce *ConfigError
	return errors.As(err, &ce)
}

// PaperGeometry returns the Table II 512 GB TLC device shape.
func PaperGeometry() Geometry { return flash.PaperTLC() }

// PaperTiming returns the Table II TLC timing values.
func PaperTiming() TimingSpec { return flash.PaperTLCTiming() }

// PaperMLCTiming returns the Section V-G MLC timing values.
func PaperMLCTiming() TimingSpec { return flash.PaperMLCTiming() }

// PaperProfiles returns the eleven synthetic stand-ins for the paper's MSR
// Cambridge workloads (Table III).
func PaperProfiles(requests int) []Profile { return workload.PaperProfiles(requests) }

// ExtraProfiles returns the nine additional read-ratio-categorized
// workloads of Figure 4 (right).
func ExtraProfiles(requests int) []Profile { return workload.ExtraProfiles(requests) }

// ProfileByName looks up a paper or extra profile.
func ProfileByName(name string, requests int) (Profile, error) {
	return workload.ProfileByName(name, requests)
}

// System describes one of the evaluated device configurations (Section
// IV-C): the baseline, or IDA coding under an error rate, possibly with
// modified timing, bit density, or lifetime phase.
type System struct {
	// Name labels the system in reports ("Baseline", "IDA-E20", ...).
	Name string
	// IDA enables the invalid-data-aware refresh.
	IDA bool
	// ErrorRate is the voltage-adjustment corruption probability
	// (0.20 for the paper's IDA-Coding-E20).
	ErrorRate float64
	// DeltaTR overrides the read-latency step between page types
	// (Figure 9); zero keeps the device default (50 us).
	DeltaTR time.Duration
	// BitsPerCell selects the density: 0 or 3 for TLC, 2 for MLC
	// (Table V), 4 for QLC (the paper's future-work extension).
	BitsPerCell int
	// Lifetime selects the ECC regime (Figure 11); default early.
	// Mutually exclusive with PECycles/RetentionDays.
	Lifetime LifetimePhase
	// PECycles and RetentionDays, when either is positive, derive the ECC
	// retry regime from the RBER wear curve (ecc.RBERCurve.ParamsAt)
	// instead of the coarse early/late phase label: the hard-decode
	// failure probability grows as the modeled raw bit error rate at this
	// wear level and retention age crosses the hard-decode limit. Cannot
	// be combined with Lifetime = PhaseLate.
	PECycles      int
	RetentionDays float64
	// OnlyInvalid restricts IDA to wordlines that already lost a lower
	// page (Table I cases 2-4, skipping the case-1 conversion of
	// fully-valid wordlines). Ablation knob.
	OnlyInvalid bool
	// FastAdjust charges the voltage adjustment at half a program
	// latency — the paper's Section III-B estimate — instead of the
	// conservative full program the evaluation uses. Ablation knob.
	FastAdjust bool
	// TightSpace sizes the device with only ~30% headroom over the
	// workload footprint instead of the default 100%, approximating the
	// paper's "user space fully utilized plus 15% over-provisioning"
	// condition for the write-interference analysis (Section III-C).
	TightSpace bool
	// Coding selects the cell coding scheme by registry name: CodingIDA
	// (default), CodingRandIO, or CodingILWC. The name is validated
	// against the registry and the device geometry (randio is capped at
	// 4 bits/cell) by BuildConfig, which rejects mismatches with a
	// *ConfigError.
	Coding string
	// Vendor232 uses the alternative vendor TLC coding from Section
	// III-B (2/3/2 sensings for LSB/CSB/MSB) instead of the standard
	// Gray coding, exercising the paper's claim that IDA combines with
	// any coding scheme. Only valid with 3 bits/cell and the default
	// (ida) coding.
	Vendor232 bool
	// Scheduler selects the die/channel arbitration policy: SchedReadFirst
	// (default, the paper's), SchedFIFO, or SchedAgeAware.
	Scheduler SchedulerPolicy
	// SchedulerMaxWait bounds write/background starvation under
	// SchedAgeAware; zero uses the built-in default. Ignored otherwise.
	SchedulerMaxWait time.Duration
	// Devices stripes the workload RAID-0-style across this many
	// independent devices, each sized for its share of the footprint.
	// 0 or 1 means a single device.
	Devices int
	// StripeKB is the array stripe unit in KiB; zero uses the array
	// default (64). Only meaningful with Devices > 1.
	StripeKB int
	// Parity rotates a RAID-5-style parity stripe across the array so
	// reads that fail outright under a fault scenario are reconstructed
	// from the surviving devices in a degraded-mode pass after the run.
	// Requires Devices >= 3.
	Parity bool
	// Faults, when non-nil, runs the workload under a deterministic fault
	// scenario: wear-dependent program/erase failures (grown bad blocks,
	// remapped and retired by the FTL), die/channel outages, and transient
	// read faults, all recovered through bounded host-path retries.
	// Results.Faults and Results.FTL carry the recovery accounting.
	Faults *FaultScenario
	// Telemetry, when non-nil, attaches the request-lifecycle recorder
	// to every device built for this system: sampled per-request spans
	// (exportable as Perfetto trace JSON) and, with a positive
	// MetricsInterval, a time series of queue depths, utilization, and
	// merge-state populations (exportable as CSV). Results.Telemetry
	// carries the export; for arrays, the per-device streams are merged.
	// Nil (the default) keeps the simulation hot path allocation-free.
	Telemetry *TelemetryConfig
	// NoSnapshot opts this run out of device-state snapshot reuse: the
	// aging preamble, prefill, and warmup are replayed from scratch
	// instead of restored from DefaultSnapshots. Snapshots are on by
	// default because restored runs are byte-identical to replayed ones
	// (the CI snapshot-equivalence job gates that); the knob exists for
	// A/B-verifying exactly that, and for callers who want a sweep's
	// memory back.
	NoSnapshot bool
	// NoPool opts this run out of the device arena (DefaultArena): the
	// simulation runs on a freshly constructed device and the device is
	// not parked for reuse afterwards. Pooled runs are byte-identical to
	// unpooled ones (the reuse-equivalence tests gate that); the knob
	// exists for A/B-verifying exactly that and for one-off runs that
	// should not retain a device's memory.
	NoPool bool
}

// Baseline returns the paper's baseline system.
func Baseline() System { return System{Name: "Baseline"} }

// IDA returns the IDA-coding system with the given voltage-adjustment error
// rate (e.g. 0.20 for IDA-Coding-E20).
func IDA(errorRate float64) System {
	return System{Name: fmt.Sprintf("IDA-E%d", int(errorRate*100+0.5)), IDA: true, ErrorRate: errorRate}
}

// BuildConfig assembles the full SSD configuration for a workload profile
// under a system description: trace-sized geometry, bit-density-specific
// timing and coding, refresh period, and the ECC regime.
func BuildConfig(p Profile, sys System) (SSDConfig, Profile, error) {
	p, err := p.Normalize()
	if err != nil {
		return SSDConfig{}, p, err
	}
	bits := sys.BitsPerCell
	if bits == 0 {
		bits = 3
	}
	if bits < 2 || bits > 4 {
		return SSDConfig{}, p, &ConfigError{Field: "BitsPerCell", Reason: fmt.Sprintf("%d unsupported (2-4)", bits)}
	}
	codingName, err := ParseCoding(sys.Coding)
	if err != nil {
		return SSDConfig{}, p, err
	}
	var code Code
	if sys.Vendor232 {
		if codingName != CodingIDA {
			return SSDConfig{}, p, &ConfigError{Field: "Vendor232",
				Reason: fmt.Sprintf("only combines with the %q coding, not %q", CodingIDA, codingName)}
		}
		if bits != 3 {
			return SSDConfig{}, p, &ConfigError{Field: "Vendor232", Reason: fmt.Sprintf("needs 3 bits/cell, got %d", bits)}
		}
		code = coding.Vendor232TLC()
	} else {
		code, err = coding.New(codingName, bits)
		if err != nil {
			// The registry rejects codes that cannot cover the
			// geometry (e.g. randio beyond 4 bits/cell).
			return SSDConfig{}, p, &ConfigError{Field: "Coding", Reason: err.Error()}
		}
	}

	// Parallelism is scaled down 4x from the paper's 64-plane device
	// (the trace request budget is scaled down correspondingly), keeping
	// the 4-channel topology and the 192-page block shape; the block
	// count then scales with the workload footprint.
	base := flash.PaperTLC()
	base.BitsPerCell = bits
	base.ChipsPerChannel = 2
	base.PlanesPerDie = 1
	headroom := 2.0
	if sys.TightSpace {
		headroom = 1.3
	}
	geom := ssd.ScaledGeometry(base, int64(p.FootprintMB*(1<<20)), headroom)

	timing := flash.PaperTLCTiming()
	if bits == 2 {
		timing = flash.PaperMLCTiming()
	}
	if sys.DeltaTR != 0 {
		timing = timing.WithReadDelta(sys.DeltaTR)
	}
	if sys.FastAdjust {
		timing.VoltAdjust = timing.Program / 2
	}

	if sys.PECycles < 0 {
		return SSDConfig{}, p, &ConfigError{Field: "PECycles", Reason: fmt.Sprintf("%d must be non-negative", sys.PECycles)}
	}
	if sys.RetentionDays < 0 {
		return SSDConfig{}, p, &ConfigError{Field: "RetentionDays", Reason: fmt.Sprintf("%v must be non-negative", sys.RetentionDays)}
	}
	var eccParams ECCParams
	if sys.PECycles > 0 || sys.RetentionDays > 0 {
		if sys.Lifetime != PhaseEarly {
			return SSDConfig{}, p, &ConfigError{Field: "PECycles",
				Reason: fmt.Sprintf("PECycles/RetentionDays and Lifetime=%v are mutually exclusive", sys.Lifetime)}
		}
		// Derive the retry regime from the wear curve instead of the
		// early/late phase label; zero hard limit means the Table II
		// default (0.004).
		eccParams = ecc.DefaultRBERCurve().ParamsAt(
			sys.PECycles, sys.RetentionDays, 0, timing.ECCDecode)
	} else {
		eccParams = ecc.PaperParams(sys.Lifetime)
		eccParams.DecodeLatency = timing.ECCDecode
	}

	cfg := SSDConfig{
		Geometry: geom,
		Timing:   timing,
		FTL: ftl.Options{
			Code:           code,
			IDAEnabled:     sys.IDA,
			IDAOnlyInvalid: sys.OnlyInvalid,
			ErrorRate:      sys.ErrorRate,
			// Many refresh cycles per measured window, standing in
			// for the paper's "3 days to 3 months" scaled to the
			// trace span, so the IDA/conventional block rotation
			// reaches steady state well inside the measurement.
			RefreshPeriod:  p.Duration / 6,
			RefreshStagger: true,
			// Slow planes must still rotate their open blocks so
			// recently-written (hot) wordlines reach the refresher.
			MaxOpenBlockAge: p.Duration / 12,
			Seed:            p.Seed,
		},
		ECC:                 eccParams,
		RefreshScanInterval: p.Duration / 300,
		Scheduler:           sys.Scheduler,
		SchedulerMaxWait:    sys.SchedulerMaxWait,
		Seed:                p.Seed,
		Faults:              sys.Faults,
	}
	if sys.Telemetry != nil {
		// Copy so callers can reuse one System across runs without the
		// devices aliasing (and mutating) the same config.
		tc := *sys.Telemetry
		cfg.Telemetry = &tc
	}
	return cfg, p, nil
}

// DefaultSnapshots is the process-wide device-state snapshot store behind
// RunWorkload and RunArrayWorkload: the aged pre-measurement state of every
// (profile, device-shape) combination is captured once and restored in
// O(state) by every later run sharing it, so a sweep pays for prefill, the
// aging preamble, and warmup once per profile instead of once per system
// variant. The in-memory tier is always on (bounded, FIFO-evicted); attach
// a persistent on-disk tier with SetStoreDir. Restored runs are
// byte-identical to replayed ones, and corrupt or version-skewed snapshots
// fall back to replay silently.
var DefaultSnapshots = snapshot.NewStore(0)

// DefaultArena pools fully-built simulation devices between runs, keyed by
// geometry: a sweep worker's next point resets the previous point's device
// in place (engine heap, dense L2P, block tables, histograms, op pools all
// reused) instead of reallocating them. Checkout and return are automatic
// in RunWorkload/RunArrayWorkload; System.NoPool opts a run out. Devices
// are only parked after cleanly completed runs, so a failed or cancelled
// run can never leak mid-run state into a later one.
var DefaultArena = runpool.New(0)

// PoolStats is the device arena's traffic counters (see runpool.Stats).
type PoolStats = runpool.Stats

// ArenaStats returns a snapshot of DefaultArena's reuse counters, for
// service-mode observability (/statz) and tests.
func ArenaStats() PoolStats { return DefaultArena.Stats() }

// ExtSnapshot and ExtResult are the blob kinds the shared store root
// serves: aged device states and canonical simulation result payloads,
// content-addressed side by side under one eviction budget.
const (
	ExtSnapshot = ".snap"
	ExtResult   = ".json"
)

var (
	storeMu   sync.Mutex
	storeDisk *results.Disk
)

// SetStoreDir attaches the process-wide content-addressed store root
// (idasim/idaserver -store-dir): one LRU-bounded directory holding both
// aged device-state snapshots (wired into DefaultSnapshots) and — when the
// HTTP service runs — simulation result payloads, under a single shared
// eviction budget. Blobs are written atomically, survive the process, and
// every corruption or version-skew failure mode degrades to a cache miss.
// An empty dir detaches the root.
func SetStoreDir(dir string) error { return SetStoreDirSync(dir, false) }

// SetStoreDirSync is SetStoreDir with an explicit durability policy: with
// sync, every blob write fsyncs the file and its directory, so committed
// blobs survive power loss instead of just process death. The default stays
// off — blobs are a cache, and a lost one is a miss — behind the
// -store-sync flag on idasim and idaserver for deployments where the
// store's warmth is worth a sync per write. (The farm's job journal always
// syncs, regardless of this setting: jobs are promises, not caches.)
func SetStoreDirSync(dir string, sync bool) error {
	storeMu.Lock()
	defer storeMu.Unlock()
	if dir == "" {
		storeDisk = nil
		DefaultSnapshots.SetBlobs(nil)
		return nil
	}
	d, err := results.OpenDiskOptions(dir, results.DiskOptions{Sync: sync})
	if err != nil {
		return err
	}
	storeDisk = d
	DefaultSnapshots.SetBlobs(d.Sub(ExtSnapshot))
	return nil
}

// StoreDisk returns the shared store root attached by SetStoreDir (nil when
// detached), for callers — the HTTP server's result store — that layer
// further blob kinds onto the same budget.
func StoreDisk() *results.Disk {
	storeMu.Lock()
	defer storeMu.Unlock()
	return storeDisk
}

// SetSnapshotDir names the store root by its original, snapshot-only role.
//
// Deprecated: use SetStoreDir — the directory now also serves result
// payloads under the shared eviction budget.
func SetSnapshotDir(dir string) error { return SetStoreDir(dir) }

// ResolveStoreDir arbitrates between the -store-dir flag and its deprecated
// -snapshot-dir alias for the command-line tools: -store-dir always wins,
// and exactly one warning is returned whenever the alias was set — naming
// the precedence when both flags were given, or just the deprecation when
// only the alias was. An empty warning means the alias was not used.
func ResolveStoreDir(storeDir, snapshotDir string) (dir, warning string) {
	switch {
	case snapshotDir == "":
		return storeDir, ""
	case storeDir == "":
		return snapshotDir, "-snapshot-dir is deprecated; use -store-dir"
	default:
		return storeDir, "-snapshot-dir is deprecated and ignored because -store-dir is set"
	}
}

// snapshotKeyData is everything the aged pre-measurement device state is a
// function of. Deliberately absent: the coding scheme, IDA knobs, error
// rate, scheduler, timing, ECC, and telemetry — none of them influence the
// zero-time phases (refresh and IDA only engage in the timed phase, the
// engine never runs before the boundary, and the code-dependent power
// accumulators are wiped by the post-boundary stats reset) — so the
// baseline, every IDA error-rate point, and every coding/scheduler variant
// of one profile share a single snapshot.
type snapshotKeyData struct {
	Codec           uint32
	Profile         Profile
	Geometry        Geometry
	Order           flash.OrderKind
	Allocation      string
	GCFreeBlocks    int
	RefreshPeriod   time.Duration
	RefreshStagger  bool
	MaxOpenBlockAge time.Duration
	FTLSeed         int64
	Seed            int64
	Faults          *FaultScenario
	Warmup          float64
	SkipPrefill     bool
}

// snapshotKey builds the cache key for one device's aged state. It fails
// soft like the trace-cache key: an unencodable scenario yields "" and the
// run simply replays uncached.
func snapshotKey(p Profile, cfg SSDConfig, opts RunOptions) string {
	b, err := json.Marshal(snapshotKeyData{
		Codec:           snapshot.CodecVersion,
		Profile:         p,
		Geometry:        cfg.Geometry,
		Order:           cfg.FTL.Order,
		Allocation:      cfg.FTL.Allocation,
		GCFreeBlocks:    cfg.FTL.GCFreeBlocks,
		RefreshPeriod:   cfg.FTL.RefreshPeriod,
		RefreshStagger:  cfg.FTL.RefreshStagger,
		MaxOpenBlockAge: cfg.FTL.MaxOpenBlockAge,
		FTLSeed:         cfg.FTL.Seed,
		Seed:            cfg.Seed,
		Faults:          cfg.Faults,
		Warmup:          opts.WarmupFraction,
		SkipPrefill:     opts.SkipPrefill,
	})
	if err != nil {
		return ""
	}
	return string(b)
}

// RunWorkload generates the profile's trace and runs it on a device — or,
// when sys.Devices > 1, a striped array of devices — built for the system
// description, returning the measurements. Two calls with identical
// arguments produce identical results.
func RunWorkload(p Profile, sys System) (Results, error) {
	return RunWorkloadContext(context.Background(), p, sys)
}

// RunWorkloadContext is RunWorkload with cooperative cancellation: when ctx
// is cancelled (or its deadline passes) the simulation stops within the
// engine's polling bounds — a few thousand events or a millisecond of
// simulated progress — and the context's error is returned together with
// the partial-progress stats accumulated so far. Cancellation never corrupts
// shared state: the trace cache and experiment memo are cancellation-safe,
// so an identical rerun after a cancel produces the same bytes as an
// uninterrupted run. Like every exported entry point it never panics; an
// invariant violation in the simulation surfaces as a *sim.InvariantError
// (see IsInvariantError).
func RunWorkloadContext(ctx context.Context, p Profile, sys System) (Results, error) {
	if sys.Devices > 1 || sys.Parity {
		res, err := RunArrayWorkloadContext(ctx, p, sys)
		return res.Combined, err
	}
	r, dev, err := runWorkload(ctx, p, sys)
	// Results share no memory with the device, so a cleanly finished
	// device goes back to the arena for the sweep's next point. Failed or
	// cancelled runs drop the device: its engine may hold undrained events.
	if err == nil && !sys.NoPool {
		DefaultArena.Put(dev)
	}
	return r, err
}

// RunArrayWorkload runs the profile on a striped array of sys.Devices
// devices, each sized for its share of the workload footprint, and returns
// both the merged and the per-device measurements. sys.Devices of 0 or 1
// runs a one-device array.
func RunArrayWorkload(p Profile, sys System) (ArrayResults, error) {
	return RunArrayWorkloadContext(context.Background(), p, sys)
}

// RunArrayWorkloadContext is RunArrayWorkload with cooperative cancellation
// and failure isolation: cancelling ctx stops every member device, and one
// member's failure cancels its siblings instead of letting them run on. The
// merged partial stats accompany any error.
func RunArrayWorkloadContext(ctx context.Context, p Profile, sys System) (ArrayResults, error) {
	devices := sys.Devices
	if devices < 1 {
		devices = 1
	}
	np, err := p.Normalize()
	if err != nil {
		return ArrayResults{}, err
	}
	// Each member device holds ~1/devices of the striped footprint — or,
	// with parity, 1/(devices-1) of it, since the rotated parity units
	// bring every member's share up to a data stripe's worth. Size the
	// geometry for that share (plus a stripe of rounding slack).
	pdev := np
	shares := devices
	if sys.Parity {
		if devices < 3 {
			return ArrayResults{}, &ConfigError{Field: "Parity", Reason: fmt.Sprintf("needs Devices >= 3, have %d", devices)}
		}
		shares = devices - 1
	}
	pdev.FootprintMB = np.FootprintMB/float64(shares) + 1
	cfg, _, err := BuildConfig(pdev, sys)
	if err != nil {
		return ArrayResults{}, err
	}
	tr, pre, err := workload.DefaultTraceCache.Traces(np)
	if err != nil {
		return ArrayResults{}, err
	}
	ac := array.Config{
		Devices: devices, StripeKB: sys.StripeKB, Parity: sys.Parity, Device: cfg,
	}
	if !sys.NoPool {
		ac.Pool = DefaultArena
	}
	arr, err := array.New(ac)
	if err != nil {
		return ArrayResults{}, err
	}
	opts := RunOptions{Preamble: pre}
	if !sys.NoSnapshot {
		// The base key covers the full profile (the trace every member's
		// split derives from) and the member template config; the array
		// layer suffixes each member's index and the stripe topology.
		if key := snapshotKey(np, cfg, opts); key != "" {
			opts.Snapshots, opts.SnapshotKey = DefaultSnapshots, key
		}
	}
	res, err := arr.RunContext(ctx, tr, opts)
	if err == nil {
		arr.Release()
	}
	return res, err
}

func runWorkload(ctx context.Context, p Profile, sys System) (Results, *SSD, error) {
	cfg, p, err := BuildConfig(p, sys)
	if err != nil {
		return Results{}, nil, err
	}
	// The trace depends only on the (normalized) profile, never on the
	// system, so one cached generation backs every system evaluated on
	// this profile. The simulator replays the shared trace through a
	// cursor without mutating it.
	tr, pre, err := workload.DefaultTraceCache.Traces(p)
	if err != nil {
		return Results{}, nil, err
	}
	var dev *SSD
	if sys.NoPool {
		dev, err = ssd.New(cfg)
	} else {
		dev, err = DefaultArena.Get(cfg)
	}
	if err != nil {
		return Results{}, nil, err
	}
	opts := RunOptions{Preamble: pre}
	if !sys.NoSnapshot {
		if key := snapshotKey(p, cfg, opts); key != "" {
			opts.Snapshots, opts.SnapshotKey = DefaultSnapshots, key
		}
	}
	res, err := dev.RunContext(ctx, tr, opts)
	return res, dev, err
}

// IsInvariantError reports whether err is (or wraps) a contained simulation
// invariant violation — a panic in the sim/FTL hot path that the run
// boundary recovered into a failed run. The full capture (engine time, event
// count, stack) is available via errors.As against *sim.InvariantError's
// re-export, InvariantError.
func IsInvariantError(err error) bool {
	var ie *InvariantError
	return errors.As(err, &ie)
}

// RunWithFollowup runs the profile under the system, then continues on the
// same (now aged, possibly IDA-reprogrammed) device with a second workload
// sharing the first one's address space, returning both phases'
// measurements. It reproduces the paper's Section III-C analysis: after a
// read-intensive phase that leaves IDA blocks behind, how much extra
// garbage collection does a write-intensive phase pay to reclaim them?
func RunWithFollowup(p Profile, sys System, followup Profile) (Results, Results, error) {
	first, dev, err := runWorkload(context.Background(), p, sys)
	if err != nil {
		return Results{}, Results{}, err
	}
	np, err := p.Normalize()
	if err != nil {
		return Results{}, Results{}, err
	}
	// The follow-up shares the first phase's footprint and time base so
	// its writes overwrite (and its GC reclaims) the same space.
	followup.FootprintMB = np.FootprintMB
	if followup.Duration == 0 {
		followup.Duration = np.Duration
	}
	tr, err := followup.Generate()
	if err != nil {
		return Results{}, Results{}, err
	}
	second, err := dev.RunMore(tr)
	if err != nil {
		return Results{}, Results{}, err
	}
	return first, second, nil
}
