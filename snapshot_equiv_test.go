package idaflash_test

import (
	"testing"

	"idaflash"
	"idaflash/internal/snapshot"
)

// withFreshSnapshotStore swaps the process-wide snapshot store for an empty
// one so a test observes its own cold/warm transitions, restoring the shared
// store afterwards.
func withFreshSnapshotStore(t *testing.T) *snapshot.Store {
	t.Helper()
	old := idaflash.DefaultSnapshots
	fresh := snapshot.NewStore(0)
	idaflash.DefaultSnapshots = fresh
	t.Cleanup(func() { idaflash.DefaultSnapshots = old })
	return fresh
}

// TestSnapshotRunsMatchReplay is the facade-level equivalence gate: for every
// configuration class the snapshot path serves — single device, striped
// array, fault scenario (which exercises the injector stream fast-forward),
// and the non-default coding schemes — a run that replays its aging preamble
// (NoSnapshot), a cold run that captures the snapshot, and a warm run that
// restores it must produce identical measurements, scalar for scalar.
func TestSnapshotRunsMatchReplay(t *testing.T) {
	profile := func(name string) idaflash.Profile {
		p, err := idaflash.ProfileByName(name, 1500)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	wearout, err := idaflash.LoadFaultScenario("examples/faults/wearout.json")
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		profile idaflash.Profile
		sys     idaflash.System
	}{
		{"single-ida", profile("hm_1"), idaflash.IDA(0.2)},
		{"faults", profile("usr_1"), func() idaflash.System {
			sys := idaflash.IDA(0.2)
			sys.Faults = wearout
			return sys
		}()},
		{"randio", profile("hm_1"), func() idaflash.System {
			sys := idaflash.Baseline()
			sys.Coding = idaflash.CodingRandIO
			return sys
		}()},
		{"ilwc", profile("hm_1"), func() idaflash.System {
			sys := idaflash.Baseline()
			sys.Coding = idaflash.CodingILWC
			return sys
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			store := withFreshSnapshotStore(t)

			replaySys := tc.sys
			replaySys.NoSnapshot = true
			replay, err := idaflash.RunWorkload(tc.profile, replaySys)
			if err != nil {
				t.Fatal(err)
			}
			if store.Len() != 0 {
				t.Fatal("NoSnapshot run populated the snapshot store")
			}

			cold, err := idaflash.RunWorkload(tc.profile, tc.sys)
			if err != nil {
				t.Fatal(err)
			}
			if store.Len() == 0 {
				t.Fatal("cold run did not capture a snapshot")
			}
			warm, err := idaflash.RunWorkload(tc.profile, tc.sys)
			if err != nil {
				t.Fatal(err)
			}

			if cold.Scalars() != replay.Scalars() {
				t.Errorf("cold snapshot run diverged from replay:\nreplay %+v\ncold   %+v", replay.Scalars(), cold.Scalars())
			}
			if warm.Scalars() != replay.Scalars() {
				t.Errorf("warm (restored) run diverged from replay:\nreplay %+v\nwarm   %+v", replay.Scalars(), warm.Scalars())
			}
		})
	}
}

// TestSnapshotArrayRunsMatchReplay is the array variant of the gate: every
// member device has its own per-device snapshot key, and the merged and
// per-device results must match the replay path on cold and warm runs alike.
func TestSnapshotArrayRunsMatchReplay(t *testing.T) {
	p, err := idaflash.ProfileByName("hm_1", 1500)
	if err != nil {
		t.Fatal(err)
	}
	sys := idaflash.IDA(0.2)
	sys.Devices = 4

	store := withFreshSnapshotStore(t)

	replaySys := sys
	replaySys.NoSnapshot = true
	replay, err := idaflash.RunArrayWorkload(p, replaySys)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := idaflash.RunArrayWorkload(p, sys)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != sys.Devices {
		t.Fatalf("cold array run captured %d snapshots, want one per device (%d)", store.Len(), sys.Devices)
	}
	warm, err := idaflash.RunArrayWorkload(p, sys)
	if err != nil {
		t.Fatal(err)
	}

	for name, got := range map[string]idaflash.ArrayResults{"cold": cold, "warm": warm} {
		if got.Combined.Scalars() != replay.Combined.Scalars() {
			t.Errorf("%s combined results diverged from replay", name)
		}
		if len(got.PerDevice) != len(replay.PerDevice) {
			t.Fatalf("%s has %d per-device results, replay has %d", name, len(got.PerDevice), len(replay.PerDevice))
		}
		for d := range got.PerDevice {
			if got.PerDevice[d].Scalars() != replay.PerDevice[d].Scalars() {
				t.Errorf("%s device %d diverged from replay", name, d)
			}
		}
	}
}
