package idaflash_test

import (
	"fmt"

	"idaflash"
)

// ExampleScheme_Merge reproduces the paper's Figure 5: invalidating the LSB
// of a TLC wordline merges the eight voltage states into four, cutting the
// CSB read to one sensing and the MSB read to two.
func ExampleScheme_Merge() {
	tlc := idaflash.NewGrayCoding(3)
	m := tlc.Merge(idaflash.MaskAll(3).Without(idaflash.LSB))
	fmt.Println("reachable states:", len(m.Reachable()))
	fmt.Println("CSB sensings:", m.Senses(idaflash.CSB))
	fmt.Println("MSB sensings:", m.Senses(idaflash.MSB))
	// Output:
	// reachable states: 4
	// CSB sensings: 1
	// MSB sensings: 2
}

// ExampleScheme_PlanWordline shows the Table I refresh decision for a
// wordline whose LSB and CSB were invalidated (case 4): adjust the voltage
// and keep only the MSB, now readable with a single sensing.
func ExampleScheme_PlanWordline() {
	tlc := idaflash.NewGrayCoding(3)
	plan := tlc.PlanWordline(idaflash.ValidMask(0).With(idaflash.MSB))
	fmt.Println("apply:", plan.Apply)
	fmt.Println("moves:", len(plan.Move))
	fmt.Println("MSB sensings after:", plan.KeptSenses[idaflash.MSB])
	// Output:
	// apply: true
	// moves: 0
	// MSB sensings after: 1
}

// ExampleNewGrayCoding shows the QLC generalization of Figure 6: a 4-bit
// cell's pages need 1/2/4/8 sensings under the conventional Gray coding.
func ExampleNewGrayCoding() {
	qlc := idaflash.NewGrayCoding(4)
	for j := idaflash.PageType(0); j < 4; j++ {
		fmt.Printf("bit%d: %d\n", int(j)+1, qlc.Senses(j))
	}
	// Output:
	// bit1: 1
	// bit2: 2
	// bit3: 4
	// bit4: 8
}

// ExamplePaperTiming shows the Table II read-latency model recovering the
// Micron TLC datapoints from the sensing counts.
func ExamplePaperTiming() {
	t := idaflash.PaperTiming()
	fmt.Println("LSB:", t.ReadLatency(1))
	fmt.Println("CSB:", t.ReadLatency(2))
	fmt.Println("MSB:", t.ReadLatency(4))
	// Output:
	// LSB: 50µs
	// CSB: 100µs
	// MSB: 150µs
}

// ExampleProfileByName looks up one of the paper's Table III workloads.
func ExampleProfileByName() {
	p, err := idaflash.ProfileByName("stg_1", 10000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %.2f%% reads, %.1f KB mean read\n", p.Name, p.ReadRatio*100, p.MeanReadKB)
	// Output:
	// stg_1: 63.74% reads, 59.7 KB mean read
}
