package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.Min() != 0 || r.Max() != 0 {
		t.Error("empty accumulator should be all zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("n = %d", r.N())
	}
	if got := r.Mean(); got != 5 {
		t.Errorf("mean = %v, want 5", got)
	}
	if got := r.Stddev(); math.Abs(got-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", got)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("min/max = %v/%v", r.Min(), r.Max())
	}
	if r.String() == "" {
		t.Error("String() empty")
	}
}

func TestRunningDuration(t *testing.T) {
	var r Running
	r.AddDuration(100 * time.Microsecond)
	r.AddDuration(300 * time.Microsecond)
	got := r.MeanDuration()
	if diff := got - 200*time.Microsecond; diff < -10*time.Nanosecond || diff > 10*time.Nanosecond {
		t.Errorf("mean duration = %v, want ~200us", got)
	}
}

func TestRunningMergeEqualsSequential(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(7))}
	prop := func(a, b []float64) bool {
		var all, left, right Running
		// Skip pathological magnitudes; latencies live well below 1e12.
		for _, x := range append(append([]float64(nil), a...), b...) {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
		}
		for _, x := range a {
			all.Add(x)
			left.Add(x)
		}
		for _, x := range b {
			all.Add(x)
			right.Add(x)
		}
		left.Merge(right)
		if left.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(all.Mean()))
		return math.Abs(left.Mean()-all.Mean()) < 1e-9*scale &&
			left.Min() == all.Min() && left.Max() == all.Max()
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(5)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 5 {
		t.Error("merge with empty changed accumulator")
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 5 {
		t.Error("merge into empty did not copy")
	}
}

func TestLatencyHist(t *testing.T) {
	var h LatencyHist
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty hist should be zero")
	}
	for i := 1; i <= 1000; i++ {
		h.Add(time.Duration(i) * time.Microsecond)
	}
	if h.N() != 1000 {
		t.Errorf("n = %d", h.N())
	}
	if got, want := h.Mean(), 500500*time.Nanosecond; got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}
	// The median should land near 500 us (within bucket tolerance).
	med := h.Quantile(0.5)
	if med < 450*time.Microsecond || med > 560*time.Microsecond {
		t.Errorf("median = %v, want ~500us", med)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900*time.Microsecond || p99 > 1100*time.Microsecond {
		t.Errorf("p99 = %v, want ~990us", p99)
	}
	if h.Quantile(-1) > h.Quantile(2) {
		t.Error("clamped quantiles inverted")
	}
}

func TestLatencyHistExtremes(t *testing.T) {
	var h LatencyHist
	h.Add(0)                // below floor
	h.Add(24 * time.Hour)   // above ceiling
	h.Add(time.Nanosecond)  // below floor
	h.Add(30 * time.Minute) // above ceiling
	if h.N() != 4 {
		t.Errorf("n = %d", h.N())
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Error("quantiles inverted")
	}
}

func TestLatencyHistMerge(t *testing.T) {
	var a, b LatencyHist
	for i := 0; i < 100; i++ {
		a.Add(100 * time.Microsecond)
		b.Add(300 * time.Microsecond)
	}
	a.Merge(&b)
	a.Merge(nil) // no-op
	if a.N() != 200 {
		t.Errorf("merged n = %d", a.N())
	}
	if got := a.Mean(); got != 200*time.Microsecond {
		t.Errorf("merged mean = %v", got)
	}
	var c LatencyHist
	c.Merge(&a) // merge into empty
	if c.N() != 200 {
		t.Errorf("merge into empty n = %d", c.N())
	}
}
