// Package stats provides the small statistics primitives the simulator
// uses to aggregate latencies and counters: a numerically-stable running
// mean/variance and a log-bucketed duration histogram for percentiles.
package stats

import (
	"fmt"
	"math"
	"time"
)

// Running accumulates a stream of float64 samples with Welford's algorithm,
// giving mean and variance without storing the samples.
type Running struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one sample.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// AddDuration records a duration sample in seconds.
func (r *Running) AddDuration(d time.Duration) { r.Add(d.Seconds()) }

// N returns the sample count.
func (r *Running) N() uint64 { return r.n }

// Mean returns the sample mean (0 with no samples).
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.mean
}

// MeanDuration returns the mean interpreted as seconds.
func (r *Running) MeanDuration() time.Duration {
	return time.Duration(r.Mean() * float64(time.Second))
}

// Var returns the population variance (0 with fewer than two samples).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// Stddev returns the population standard deviation.
func (r *Running) Stddev() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest sample (0 with no samples).
func (r *Running) Min() float64 {
	if r.n == 0 {
		return 0
	}
	return r.min
}

// Max returns the largest sample (0 with no samples).
func (r *Running) Max() float64 {
	if r.n == 0 {
		return 0
	}
	return r.max
}

// Merge folds another accumulator into this one (parallel Welford merge).
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	r.m2 += o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	r.mean += d * float64(o.n) / float64(n)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n = n
}

// String summarizes the accumulator.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.3g min=%.6g max=%.6g", r.n, r.Mean(), r.Stddev(), r.Min(), r.Max())
}

// LatencyHist is a log-bucketed histogram of durations, 1 us floor, ~5%
// bucket width, suitable for storage latencies from microseconds to minutes.
type LatencyHist struct {
	buckets []uint64
	total   uint64
	sum     time.Duration
}

const (
	histFloor  = time.Microsecond
	histGrowth = 1.05
	histMax    = 1024
)

func histBucket(d time.Duration) int {
	if d <= histFloor {
		return 0
	}
	b := int(math.Log(float64(d)/float64(histFloor)) / math.Log(histGrowth))
	if b >= histMax {
		return histMax - 1
	}
	return b
}

func histValue(b int) time.Duration {
	return time.Duration(float64(histFloor) * math.Pow(histGrowth, float64(b)+0.5))
}

// Add records one duration.
func (h *LatencyHist) Add(d time.Duration) {
	if h.buckets == nil {
		h.buckets = make([]uint64, histMax)
	}
	h.buckets[histBucket(d)]++
	h.total++
	h.sum += d
}

// Reset empties the histogram for reuse, zeroing the bucket array in place
// instead of dropping it, so a pooled histogram records its next run without
// reallocating.
func (h *LatencyHist) Reset() {
	clear(h.buckets)
	h.total = 0
	h.sum = 0
}

// N returns the number of recorded durations.
func (h *LatencyHist) N() uint64 { return h.total }

// Mean returns the exact mean of the recorded durations.
func (h *LatencyHist) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Quantile returns an approximation of the q-quantile (q in [0,1]).
func (h *LatencyHist) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.total))
	if target >= h.total {
		target = h.total - 1
	}
	var cum uint64
	for b, c := range h.buckets {
		cum += c
		if cum > target {
			return histValue(b)
		}
	}
	return histValue(histMax - 1)
}

// Clone returns an independent copy, so a results snapshot stays stable
// when the source histogram keeps accumulating (and so array drivers can
// merge per-device copies without aliasing device state).
func (h *LatencyHist) Clone() *LatencyHist {
	c := &LatencyHist{total: h.total, sum: h.sum}
	if h.buckets != nil {
		c.buckets = append([]uint64(nil), h.buckets...)
	}
	return c
}

// Merge folds another histogram into this one.
func (h *LatencyHist) Merge(o *LatencyHist) {
	if o == nil || o.total == 0 {
		return
	}
	if h.buckets == nil {
		h.buckets = make([]uint64, histMax)
	}
	for b, c := range o.buckets {
		h.buckets[b] += c
	}
	h.total += o.total
	h.sum += o.sum
}
