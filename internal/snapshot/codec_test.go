package snapshot

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"idaflash/internal/coding"
	"idaflash/internal/flash"
	"idaflash/internal/ftl"
	"idaflash/internal/sim"
)

// randState builds a structurally plausible random device state: mixed
// present/absent blocks, optional dense and sparse L2P sides, buffered GC
// jobs with and without moves, and every flag combination the codec packs.
func randState(rng *rand.Rand) *DeviceState {
	g := flash.Geometry{
		Channels: 1 + rng.Intn(2), ChipsPerChannel: 1, DiesPerChip: 1,
		PlanesPerDie: 1 + rng.Intn(2), BlocksPerPlane: 2 + rng.Intn(6),
		WordlinesPerBlock: 2 + rng.Intn(4), PageSizeBytes: 8192,
		BitsPerCell: 3,
	}
	pages := g.WordlinesPerBlock * g.BitsPerCell
	st := &ftl.State{
		Geometry:    g,
		AllocCursor: rng.Intn(16),
		RNGDraws:    rng.Uint64(),
		Stats: ftl.Stats{
			HostWrites:      rng.Uint64(),
			Erases:          rng.Uint64(),
			ProgramPower:    rng.Float64() * 1e6,
			ProgrammedCells: rng.Float64() * 1e6,
			RetiredBlocks:   uint64(rng.Intn(4)),
		},
		Refreshing:       flash.BlockAddr{Plane: flash.PlaneID(rng.Intn(4)), Block: rng.Intn(8)},
		RefreshingActive: rng.Intn(2) == 0,
	}
	for i := range st.Stats.ReadsByClass {
		st.Stats.ReadsByClass[i] = rng.Uint64()
	}
	if rng.Intn(4) > 0 {
		st.DenseL2P = make([]uint64, g.TotalPages())
		for i := range st.DenseL2P {
			st.DenseL2P[i] = rng.Uint64()
		}
	}
	if rng.Intn(2) == 0 {
		st.SparseL2P = map[int64]uint64{}
		for i := 0; i < rng.Intn(8)+1; i++ {
			st.SparseL2P[rng.Int63()] = rng.Uint64()
		}
	}
	st.L2PCount = rng.Intn(100)
	st.Planes = make([]ftl.PlaneState, g.Planes())
	for pl := range st.Planes {
		ps := ftl.PlaneState{Active: rng.Intn(g.BlocksPerPlane+1) - 1, Blocks: make([]ftl.BlockState, g.BlocksPerPlane)}
		if n := rng.Intn(3); n > 0 {
			ps.Free = make([]int, n)
			for i := range ps.Free {
				ps.Free[i] = rng.Intn(g.BlocksPerPlane)
			}
		}
		for blk := range ps.Blocks {
			if rng.Intn(3) == 0 {
				continue // lazily-unallocated entry
			}
			bs := ftl.BlockState{
				Present:      true,
				EraseCount:   rng.Intn(100),
				OpenedAt:     sim.Time(rng.Int63n(1 << 40)),
				ProgrammedAt: sim.Time(rng.Int63n(1 << 40)),
				NextStep:     rng.Intn(pages + 1),
				ValidCount:   rng.Intn(pages),
				Valid:        make([]bool, pages),
				RMap:         make([]ftl.LPN, pages),
				WLKeep:       make([]coding.ValidMask, g.WordlinesPerBlock),
				IDA:          rng.Intn(2) == 0,
				Refreshed:    rng.Intn(2) == 0,
				Bad:          rng.Intn(4) == 0,
				Retired:      rng.Intn(4) == 0,
			}
			for i := range bs.Valid {
				bs.Valid[i] = rng.Intn(2) == 0
				bs.RMap[i] = ftl.LPN(rng.Int63n(1 << 30))
			}
			for i := range bs.WLKeep {
				bs.WLKeep[i] = coding.ValidMask(rng.Intn(8))
			}
			ps.Blocks[blk] = bs
		}
		st.Planes[pl] = ps
	}
	for i := 0; i < rng.Intn(3); i++ {
		job := ftl.GCJob{
			Victim:       flash.BlockAddr{Plane: flash.PlaneID(rng.Intn(4)), Block: rng.Intn(8)},
			VictimWasIDA: rng.Intn(2) == 0,
		}
		if n := rng.Intn(4); n > 0 {
			job.Moves = make([]ftl.MoveOp, n)
			for m := range job.Moves {
				job.Moves[m] = ftl.MoveOp{
					From:       flash.PageAddr{BlockAddr: flash.BlockAddr{Plane: 0, Block: rng.Intn(8)}, Page: rng.Intn(pages)},
					To:         flash.PageAddr{BlockAddr: flash.BlockAddr{Plane: 0, Block: rng.Intn(8)}, Page: rng.Intn(pages)},
					FromSenses: 1 + rng.Intn(7),
					LPN:        ftl.LPN(rng.Int63n(1 << 30)),
				}
			}
		}
		st.PendingGC = append(st.PendingGC, job)
	}
	return &DeviceState{FTL: st, InjectorDraws: rng.Uint64()}
}

func TestCodecRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		st := randState(rand.New(rand.NewSource(seed)))
		b, err := Encode(st)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if !reflect.DeepEqual(got, st) {
			t.Fatalf("seed %d: round trip mismatch", seed)
		}
	}
}

func TestCodecDeterministic(t *testing.T) {
	st := randState(rand.New(rand.NewSource(7)))
	// The sparse map must be written in sorted order; ensure it has entries.
	if st.FTL.SparseL2P == nil {
		st.FTL.SparseL2P = map[int64]uint64{}
	}
	for i := int64(0); i < 64; i++ {
		st.FTL.SparseL2P[i*977] = uint64(i)
	}
	a, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same state differ")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	full, err := Encode(randState(rand.New(rand.NewSource(3))))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(full); n++ {
		if _, err := Decode(full[:n]); err == nil {
			t.Fatalf("decode accepted a %d/%d-byte truncation", n, len(full))
		}
	}
}

func TestDecodeRejectsBitFlips(t *testing.T) {
	full, err := Encode(randState(rand.New(rand.NewSource(4))))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), full...)
		mut[rng.Intn(len(mut))] ^= 1 << rng.Intn(8)
		if st, err := Decode(mut); err == nil {
			// The only byte a flip may go unnoticed in does not exist:
			// header fields are validated, the payload is checksummed.
			_ = st
			t.Fatalf("trial %d: decode accepted a corrupted file", trial)
		}
	}
}

func TestDecodeErrorKinds(t *testing.T) {
	full, err := Encode(randState(rand.New(rand.NewSource(6))))
	if err != nil {
		t.Fatal(err)
	}

	notSnap := append([]byte(nil), full...)
	notSnap[0] = 'X'
	if _, err := Decode(notSnap); !errors.Is(err, ErrNotSnapshot) {
		t.Errorf("bad magic: got %v, want ErrNotSnapshot", err)
	}
	if _, err := Decode([]byte("short")); !errors.Is(err, ErrNotSnapshot) {
		t.Errorf("junk: got %v, want ErrNotSnapshot", err)
	}

	wrongVer := append([]byte(nil), full...)
	wrongVer[len(magic)] = CodecVersion + 1
	if _, err := Decode(wrongVer); !errors.Is(err, ErrVersion) {
		t.Errorf("version bump: got %v, want ErrVersion", err)
	}

	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := Decode(flipped); !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrCorrupt) {
		t.Errorf("payload flip: got %v, want ErrChecksum or ErrCorrupt", err)
	}

	truncated := full[:len(full)-3]
	if _, err := Decode(truncated); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncation: got %v, want ErrCorrupt", err)
	}
}

// FuzzDecode asserts Decode never panics and never allocates unboundedly on
// arbitrary input, and that anything it accepts re-encodes to the same bytes.
func FuzzDecode(f *testing.F) {
	for seed := int64(0); seed < 4; seed++ {
		b, err := Encode(randState(rand.New(rand.NewSource(seed))))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		f.Add(b[:len(b)/2])
	}
	f.Add([]byte{})
	f.Add(magic[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			return
		}
		again, err := Encode(st)
		if err != nil {
			t.Fatalf("accepted state failed to re-encode: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatal("accepted input is not canonical")
		}
	})
}
