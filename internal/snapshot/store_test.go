package snapshot

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func mustMiss(t *testing.T, s *Store, key string) func(*DeviceState) {
	t.Helper()
	st, publish, err := s.Get(context.Background(), key)
	if err != nil {
		t.Fatalf("Get(%q): %v", key, err)
	}
	if st != nil {
		t.Fatalf("Get(%q) hit, want miss", key)
	}
	if publish == nil {
		t.Fatalf("Get(%q) miss returned no claim", key)
	}
	return publish
}

func mustHit(t *testing.T, s *Store, key string) *DeviceState {
	t.Helper()
	st, publish, err := s.Get(context.Background(), key)
	if err != nil {
		t.Fatalf("Get(%q): %v", key, err)
	}
	if st == nil || publish != nil {
		t.Fatalf("Get(%q) missed, want hit", key)
	}
	return st
}

func TestStoreMemoryTier(t *testing.T) {
	s := NewStore(0)
	want := randState(rand.New(rand.NewSource(1)))
	mustMiss(t, s, "k")(want)
	if got := mustHit(t, s, "k"); got != want {
		t.Fatal("memory tier returned a different pointer than published")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	s.Drop("k")
	if s.Len() != 0 {
		t.Fatalf("Len after Drop = %d, want 0", s.Len())
	}
	mustMiss(t, s, "k")(nil) // abandon the fresh claim
}

func TestStoreFIFOEviction(t *testing.T) {
	s := NewStore(2)
	mustMiss(t, s, "a")(randState(rand.New(rand.NewSource(1))))
	mustMiss(t, s, "b")(randState(rand.New(rand.NewSource(2))))
	mustMiss(t, s, "c")(randState(rand.New(rand.NewSource(3))))
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want limit 2", s.Len())
	}
	// "a" is evicted; a new Get claims it afresh.
	mustMiss(t, s, "a")(nil)
	mustHit(t, s, "c")
}

func TestStoreDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := randState(rand.New(rand.NewSource(2)))

	s1 := NewStore(0)
	if err := s1.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	mustMiss(t, s1, "k")(want)

	// A fresh store (fresh process) over the same directory hits via disk.
	s2 := NewStore(0)
	if err := s2.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	got := mustHit(t, s2, "k")
	if !reflect.DeepEqual(got, want) {
		t.Fatal("disk round trip altered the state")
	}
	// And the state is now memory-resident: deleting the file does not
	// un-cache it.
	if err := os.Remove(s2.fileFor(dir, "k")); err != nil {
		t.Fatal(err)
	}
	mustHit(t, s2, "k")
}

func TestStoreCorruptDiskFileFailsSoft(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(0)
	if err := s.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	var logged int
	s.Logf = func(string, ...any) { logged++ }

	path := s.fileFor(dir, "k")
	if err := os.WriteFile(path, []byte("IDASNAP\x00garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	publish := mustMiss(t, s, "k") // corrupt file is a miss, not an error
	if logged == 0 {
		t.Error("corrupt file was not logged")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt file was not deleted")
	}
	publish(randState(rand.New(rand.NewSource(3))))
	if _, err := os.Stat(path); err != nil {
		t.Errorf("published state was not persisted: %v", err)
	}
}

func TestStoreDropRemovesDiskFile(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(0)
	if err := s.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	mustMiss(t, s, "k")(randState(rand.New(rand.NewSource(4))))
	path := s.fileFor(dir, "k")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("state not persisted: %v", err)
	}
	s.Drop("k")
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("Drop left the disk file behind")
	}
	mustMiss(t, s, "k")(nil)
}

func TestStoreSingleflight(t *testing.T) {
	s := NewStore(0)
	publish := mustMiss(t, s, "k")

	// Concurrent getters of the claimed key block until the publish.
	const waiters = 8
	results := make(chan *DeviceState, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, pub, err := s.Get(context.Background(), "k")
			if err != nil || pub != nil {
				t.Errorf("waiter: err=%v claimed=%t", err, pub != nil)
				return
			}
			results <- st
		}()
	}
	want := randState(rand.New(rand.NewSource(5)))
	time.Sleep(10 * time.Millisecond) // let the waiters block
	publish(want)
	wg.Wait()
	close(results)
	for st := range results {
		if st != want {
			t.Fatal("waiter observed a different state than published")
		}
	}
}

func TestStoreAbandonedClaimWakesWaiter(t *testing.T) {
	s := NewStore(0)
	publish := mustMiss(t, s, "k")

	claimed := make(chan func(*DeviceState), 1)
	go func() {
		_, pub, err := s.Get(context.Background(), "k")
		if err != nil {
			t.Errorf("waiter: %v", err)
		}
		claimed <- pub
	}()
	time.Sleep(10 * time.Millisecond)
	publish(nil) // abandon: the waiter must wake up holding a fresh claim

	select {
	case pub := <-claimed:
		if pub == nil {
			t.Fatal("waiter got a hit from an abandoned claim")
		}
		pub(nil)
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke after the claim was abandoned")
	}
}

func TestStoreGetHonorsContext(t *testing.T) {
	s := NewStore(0)
	publish := mustMiss(t, s, "k")
	defer publish(nil)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := s.Get(ctx, "k")
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled Get returned no error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Get never returned")
	}
}

func TestStoreDetachedDirIsMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(0)
	if err := s.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.SetDir(""); err != nil {
		t.Fatal(err)
	}
	mustMiss(t, s, "k")(randState(rand.New(rand.NewSource(6))))
	entries, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("detached store still wrote %d files", len(entries))
	}
}
