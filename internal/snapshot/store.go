package snapshot

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// defaultStoreLimit bounds the in-memory tier. A captured state is a few
// hundred KB for the experiment-scale devices; the paper's sweeps touch ~20
// distinct profiles (a handful of array variants each), so 64 keeps every
// realistic sweep resident.
const defaultStoreLimit = 64

// Store caches aged device states by an opaque caller-built key (the
// facade's normalized-profile + device-shape key). It has two tiers: a
// bounded in-memory map with FIFO eviction, always on, and an optional
// persistent tier whose blobs survive the process — either a store-owned
// directory (SetDir) or, preferred, the process-wide shared blob root
// (SetBlobs) that snapshots and result payloads split one eviction budget
// over — CI caches that directory across workflow runs.
//
// Get implements singleflight claims: the first caller of a missing key
// receives a publish callback and computes the state (by running the aging
// phases); concurrent callers of the same key block until it publishes.
// Publishing nil abandons the claim (the compute failed or was cancelled)
// and wakes one waiter to claim it afresh. Every failure mode — corrupt
// file, version skew, cancelled compute — degrades to a miss, never an
// error for the run.
type Store struct {
	mu      sync.Mutex
	entries map[string]*entry
	order   []string
	limit   int
	dir     string
	blobs   Blobs

	// Logf, when set, receives fail-soft diagnostics (corrupt files,
	// rejected restores). The default discards them.
	Logf func(format string, args ...any)
}

// Blobs is a content-addressed persistent blob tier. When attached with
// SetBlobs it supersedes the store-owned directory (SetDir): the facade
// wires the shared results.Disk root here so snapshot blobs and result
// payloads live under one directory with one eviction budget. Declared
// structurally so this package needs no import of the disk implementation.
type Blobs interface {
	// Get returns the blob stored under key, or nil on any miss.
	Get(key string) []byte
	// Put stores a blob under key atomically.
	Put(key string, b []byte)
	// Delete removes key's blob (a corrupt snapshot the decoder rejected).
	Delete(key string)
}

// entry is one key's memoized state. ready closes exactly once, after which
// st is immutable: non-nil for a published state, nil for an abandoned one.
type entry struct {
	ready chan struct{}
	once  sync.Once
	st    *DeviceState
}

// NewStore builds a store holding at most limit states in memory (<= 0 uses
// the default of 64).
func NewStore(limit int) *Store {
	if limit <= 0 {
		limit = defaultStoreLimit
	}
	return &Store{entries: make(map[string]*entry), limit: limit}
}

// SetDir attaches (or, with an empty dir, detaches) the on-disk tier,
// creating the directory if needed. Files are content-addressed by the
// SHA-256 of the key, so one directory serves any mix of profiles and
// codec versions without collisions.
func (s *Store) SetDir(dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
	}
	s.mu.Lock()
	s.dir = dir
	s.mu.Unlock()
	return nil
}

// SetBlobs attaches (or, with nil, detaches) a shared persistent blob tier.
// A non-nil tier takes precedence over a SetDir directory, so a process
// that wires the shared content-addressed root gets one disk layout — and
// one eviction budget — for snapshots and result payloads alike.
func (s *Store) SetBlobs(b Blobs) {
	s.mu.Lock()
	s.blobs = b
	s.mu.Unlock()
}

// Dir returns the on-disk tier's directory ("" when detached).
func (s *Store) Dir() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dir
}

// Len returns the number of in-memory entries (tests and diagnostics).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// logf dispatches to Logf when set.
func (s *Store) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Get resolves a key. On a hit (memory or disk) it returns the state and a
// nil publish. On a miss it claims the key and returns a nil state plus a
// publish callback the caller MUST invoke exactly once: with the computed
// state to fill the cache, or with nil to abandon the claim (use
// `defer publish(nil)` semantics around error paths — publish is idempotent
// against a second call only via its internal once, so call it once).
// Concurrent Gets of a claimed key wait for the publish, honoring ctx.
func (s *Store) Get(ctx context.Context, key string) (st *DeviceState, publish func(*DeviceState), err error) {
	for {
		s.mu.Lock()
		if e, ok := s.entries[key]; ok {
			s.mu.Unlock()
			select {
			case <-e.ready:
				if e.st != nil {
					return e.st, nil, nil
				}
				// Abandoned compute: loop to claim or wait afresh.
				continue
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
		}
		e := &entry{ready: make(chan struct{})}
		s.entries[key] = e
		s.order = append(s.order, key)
		for len(s.order) > s.limit {
			// FIFO eviction. Waiters on an evicted in-flight entry still
			// hold its pointer and resolve when it publishes.
			delete(s.entries, s.order[0])
			s.order = s.order[1:]
		}
		dir, blobs := s.dir, s.blobs
		s.mu.Unlock()

		if cached := s.loadDisk(dir, blobs, key); cached != nil {
			e.publish(cached)
			return cached, nil, nil
		}
		return nil, func(st *DeviceState) {
			if st != nil {
				e.publish(st)
				s.saveDisk(key, st)
				return
			}
			// Abandon: drop the claim so the next caller recomputes, then
			// wake the waiters to do exactly that.
			s.mu.Lock()
			if s.entries[key] == e {
				delete(s.entries, key)
				for i, k := range s.order {
					if k == key {
						s.order = append(s.order[:i], s.order[i+1:]...)
						break
					}
				}
			}
			s.mu.Unlock()
			e.publish(nil)
		}, nil
	}
}

// Drop forgets a key's in-memory entry (a restore rejected its state). The
// on-disk file, if any, is removed too so the next process does not reload
// the same bad state.
func (s *Store) Drop(key string) {
	s.mu.Lock()
	if _, ok := s.entries[key]; ok {
		delete(s.entries, key)
		for i, k := range s.order {
			if k == key {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	dir, blobs := s.dir, s.blobs
	s.mu.Unlock()
	if blobs != nil {
		blobs.Delete(key)
	} else if dir != "" {
		_ = os.Remove(s.fileFor(dir, key))
	}
}

// publish resolves the entry exactly once.
func (e *entry) publish(st *DeviceState) {
	e.once.Do(func() {
		e.st = st
		close(e.ready)
	})
}

// fileFor content-addresses a key inside dir.
func (s *Store) fileFor(dir, key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(dir, hex.EncodeToString(sum[:])+".snap")
}

// loadDisk reads and decodes a key's persisted state — from the shared blob
// tier when attached, the store-owned directory otherwise — failing soft:
// any problem (missing file, truncation, bad checksum, version skew) is a
// miss, and a structurally bad blob is deleted so it cannot cost a decode
// on every run.
func (s *Store) loadDisk(dir string, blobs Blobs, key string) *DeviceState {
	if blobs != nil {
		b := blobs.Get(key)
		if b == nil {
			return nil
		}
		st, err := Decode(b)
		if err != nil {
			s.logf("snapshot: discarding blob for %q: %v", key, err)
			blobs.Delete(key)
			return nil
		}
		return st
	}
	if dir == "" {
		return nil
	}
	path := s.fileFor(dir, key)
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	st, err := Decode(b)
	if err != nil {
		s.logf("snapshot: discarding %s: %v", path, err)
		_ = os.Remove(path)
		return nil
	}
	return st
}

// saveDisk encodes and persists a state atomically (the blob tier and the
// legacy directory path both write temp file + rename), so a crashed or
// concurrent writer can never leave a torn file for loadDisk to trip over.
// Errors are logged and swallowed: persistence is an optimization.
func (s *Store) saveDisk(key string, st *DeviceState) {
	s.mu.Lock()
	dir, blobs := s.dir, s.blobs
	s.mu.Unlock()
	if dir == "" && blobs == nil {
		return
	}
	b, err := Encode(st)
	if err != nil {
		s.logf("snapshot: encoding %q: %v", key, err)
		return
	}
	if blobs != nil {
		blobs.Put(key, b)
		return
	}
	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		s.logf("snapshot: %v", err)
		return
	}
	if _, err := tmp.Write(b); err == nil {
		err = tmp.Close()
		if err == nil {
			err = os.Rename(tmp.Name(), s.fileFor(dir, key))
		}
	} else {
		tmp.Close()
	}
	if err != nil {
		s.logf("snapshot: writing %q: %v", key, err)
		_ = os.Remove(tmp.Name())
	}
}
