package snapshot

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"idaflash/internal/results"
	"idaflash/internal/results/errfs"
)

// faultBlobs builds a snapshot blob tier over an errfs-wrapped results.Disk,
// the exact production wiring (idaflash.SetStoreDir) with a lying disk
// underneath.
func faultBlobs(t *testing.T, fs *errfs.FS) Blobs {
	t.Helper()
	d, err := results.OpenDiskOptions(t.TempDir(), results.DiskOptions{
		FS:    fs,
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d.Sub(".snap")
}

// TestSnapshotTornWriteIsAMiss: a torn .snap blob (prefix persisted, write
// reported OK) fails the codec's length/CRC checks and degrades to a miss —
// the aging preamble replays, the run never errors.
func TestSnapshotTornWriteIsAMiss(t *testing.T) {
	fs := errfs.New(nil, 1)
	want := randState(rand.New(rand.NewSource(3)))

	fs.FailAt(errfs.OpWrite, 1, errfs.Torn)
	blobs := faultBlobs(t, fs)
	s1 := NewStore(0)
	s1.SetBlobs(blobs)
	mustMiss(t, s1, "k")(want)

	s2 := NewStore(0)
	s2.SetBlobs(blobs)
	logged := 0
	s2.Logf = func(string, ...any) { logged++ }
	publish := mustMiss(t, s2, "k") // the torn blob must not decode to a hit
	if logged == 0 {
		t.Error("torn blob was not logged")
	}
	// Publishing repairs the blob; a third store gets a real hit.
	publish(want)
	s3 := NewStore(0)
	s3.SetBlobs(blobs)
	if got := mustHit(t, s3, "k"); !reflect.DeepEqual(got, want) {
		t.Fatal("repaired snapshot differs from the published state")
	}
}

// TestSnapshotShortReadIsAMiss: a read that drops the tail of a valid blob
// is caught by the codec (CRC over the full payload) and treated as a miss.
// The store deletes what it could not decode — it cannot tell a short read
// from a corrupt file — so the cost is one replayed preamble, never a bad
// restore.
func TestSnapshotShortReadIsAMiss(t *testing.T) {
	fs := errfs.New(nil, 1)
	want := randState(rand.New(rand.NewSource(4)))
	blobs := faultBlobs(t, fs)
	s1 := NewStore(0)
	s1.SetBlobs(blobs)
	mustMiss(t, s1, "k")(want)

	fs.FailNext(errfs.OpRead, 1, errfs.Short)
	s2 := NewStore(0)
	s2.SetBlobs(blobs)
	mustMiss(t, s2, "k")(want) // republish, as the preamble replay would

	// The republished blob round-trips again.
	s3 := NewStore(0)
	s3.SetBlobs(blobs)
	if got := mustHit(t, s3, "k"); !reflect.DeepEqual(got, want) {
		t.Fatal("snapshot differs after republish")
	}
}

// TestSnapshotEIOIsAMiss: injected EIO on the blob tier degrades to a miss
// and never surfaces as an error from Store.Get.
func TestSnapshotEIOIsAMiss(t *testing.T) {
	fs := errfs.New(nil, 1)
	want := randState(rand.New(rand.NewSource(5)))
	blobs := faultBlobs(t, fs)
	s1 := NewStore(0)
	s1.SetBlobs(blobs)
	mustMiss(t, s1, "k")(want)

	fs.FailNext(errfs.OpRead, 100, errfs.EIO)
	s2 := NewStore(0)
	s2.SetBlobs(blobs)
	st, publish, err := s2.Get(context.Background(), "k")
	if err != nil {
		t.Fatalf("EIO surfaced as an error: %v", err)
	}
	if st != nil {
		t.Fatal("EIO read produced a state")
	}
	publish(nil)
}
