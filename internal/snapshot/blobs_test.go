package snapshot

import (
	"math/rand"
	"os"
	"reflect"
	"testing"
)

// memBlobs is an in-memory Blobs tier recording traffic, standing in for
// the shared results.Disk root the facade wires in production.
type memBlobs struct {
	m       map[string][]byte
	deleted []string
}

func newMemBlobs() *memBlobs { return &memBlobs{m: map[string][]byte{}} }

func (b *memBlobs) Get(key string) []byte    { return b.m[key] }
func (b *memBlobs) Put(key string, p []byte) { b.m[key] = p }
func (b *memBlobs) Delete(key string) {
	delete(b.m, key)
	b.deleted = append(b.deleted, key)
}

// TestStoreBlobTierRoundTrip: a published state lands in the blob tier and
// a second store over the same blobs restores it — the shared-disk-root
// equivalent of the SetDir round-trip.
func TestStoreBlobTierRoundTrip(t *testing.T) {
	blobs := newMemBlobs()
	want := randState(rand.New(rand.NewSource(7)))

	s1 := NewStore(0)
	s1.SetBlobs(blobs)
	mustMiss(t, s1, "k")(want)
	if len(blobs.m) != 1 {
		t.Fatalf("blob tier holds %d blobs, want 1", len(blobs.m))
	}

	s2 := NewStore(0)
	s2.SetBlobs(blobs)
	got := mustHit(t, s2, "k")
	if !reflect.DeepEqual(got, want) {
		t.Fatal("state decoded from the blob tier differs from the published one")
	}
}

// TestStoreBlobTierCorruptFailsSoft: a corrupt blob is a miss, logged, and
// deleted so the next process does not re-decode it.
func TestStoreBlobTierCorruptFailsSoft(t *testing.T) {
	blobs := newMemBlobs()
	blobs.Put("k", []byte("IDASNAP\x00garbage"))
	s := NewStore(0)
	s.SetBlobs(blobs)
	logged := 0
	s.Logf = func(string, ...any) { logged++ }
	mustMiss(t, s, "k")(nil)
	if logged == 0 {
		t.Error("corrupt blob was not logged")
	}
	if len(blobs.deleted) != 1 || blobs.deleted[0] != "k" {
		t.Errorf("corrupt blob not deleted: %v", blobs.deleted)
	}
}

// TestStoreBlobTierSupersedesDir: with both tiers configured, the blob tier
// wins — states are neither written to nor read from the legacy directory.
func TestStoreBlobTierSupersedesDir(t *testing.T) {
	dir := t.TempDir()
	blobs := newMemBlobs()
	s := NewStore(0)
	if err := s.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	s.SetBlobs(blobs)
	mustMiss(t, s, "k")(randState(rand.New(rand.NewSource(9))))
	if len(blobs.m) != 1 {
		t.Fatalf("blob tier holds %d blobs, want 1", len(blobs.m))
	}
	if _, err := os.Stat(s.fileFor(dir, "k")); err == nil {
		t.Error("state was also written to the superseded directory")
	}
	// Drop routes to the blob tier as well.
	s.Drop("k")
	if len(blobs.m) != 0 {
		t.Errorf("Drop left %d blobs behind", len(blobs.m))
	}
}
