// Package snapshot serializes and restores aged device state so experiment
// sweeps pay for the aging preamble once per profile instead of once per
// (profile, system) point. A DeviceState captures everything the
// pre-measurement phases of ssd.Run produce — the FTL's L2P table, block
// populations, free lists, wear counters, wordline ages, GC/refresh
// bookkeeping, the accumulated stats, and the positions of the random
// streams — behind a versioned, checksummed binary codec and a
// content-addressed Store with an in-memory tier and an optional on-disk
// tier. Corruption, truncation, and version skew all fail soft: a bad
// snapshot is a cache miss, never a failed run.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"math"
	"sort"

	"idaflash/internal/coding"
	"idaflash/internal/flash"
	"idaflash/internal/ftl"
	"idaflash/internal/sim"
)

// CodecVersion is the on-disk format version. Bump it whenever the payload
// layout or the meaning of any captured field changes; the Store treats a
// version mismatch as a miss, and callers fold the version into their cache
// keys so stale fixture directories invalidate themselves.
const CodecVersion = 1

// magic brands snapshot files so arbitrary bytes are rejected before any
// length field is trusted.
var magic = [8]byte{'I', 'D', 'A', 'S', 'N', 'A', 'P', 0}

// Typed decode failures. All of them mean "treat as a cache miss"; the
// distinctions exist for logs and tests.
var (
	// ErrNotSnapshot means the bytes do not start with the snapshot magic.
	ErrNotSnapshot = errors.New("snapshot: not a snapshot file")
	// ErrVersion means the file was written by a different codec version.
	ErrVersion = errors.New("snapshot: codec version mismatch")
	// ErrChecksum means the payload failed its integrity checksum.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrCorrupt means the payload was structurally invalid (truncated,
	// impossible lengths) despite passing or not reaching the checksum.
	ErrCorrupt = errors.New("snapshot: corrupt payload")
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// DeviceState is one device's aged pre-measurement state: the FTL state at
// the snapshot boundary plus the fault injector's random-stream position
// (the only non-FTL state the zero-time phases consume).
type DeviceState struct {
	FTL           *ftl.State
	InjectorDraws uint64
}

// Encode serializes the state: magic, version, payload length, payload,
// CRC64-ECMA of the payload. The encoding is deterministic (sparse maps are
// written in sorted key order), so identical states produce identical bytes.
func Encode(st *DeviceState) ([]byte, error) {
	if st == nil || st.FTL == nil {
		return nil, fmt.Errorf("snapshot: encode of nil state")
	}
	var e encoder
	e.ftlState(st.FTL)
	e.u64(st.InjectorDraws)

	out := make([]byte, 0, len(magic)+4+8+len(e.buf)+8)
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, CodecVersion)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(e.buf)))
	out = append(out, e.buf...)
	out = binary.LittleEndian.AppendUint64(out, crc64.Checksum(e.buf, crcTable))
	return out, nil
}

// Decode parses bytes produced by Encode. It never panics on arbitrary
// input: every length is validated against the remaining payload before any
// allocation, and the checksum is verified before the payload is parsed.
func Decode(b []byte) (*DeviceState, error) {
	if len(b) < len(magic)+4+8+8 {
		if len(b) < len(magic) || string(b[:len(magic)]) != string(magic[:]) {
			return nil, ErrNotSnapshot
		}
		return nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if string(b[:len(magic)]) != string(magic[:]) {
		return nil, ErrNotSnapshot
	}
	off := len(magic)
	version := binary.LittleEndian.Uint32(b[off:])
	off += 4
	if version != CodecVersion {
		return nil, fmt.Errorf("%w: file has v%d, codec is v%d", ErrVersion, version, CodecVersion)
	}
	plen := binary.LittleEndian.Uint64(b[off:])
	off += 8
	if plen != uint64(len(b)-off-8) {
		return nil, fmt.Errorf("%w: payload length %d does not match file size", ErrCorrupt, plen)
	}
	payload := b[off : off+int(plen)]
	sum := binary.LittleEndian.Uint64(b[off+int(plen):])
	if crc64.Checksum(payload, crcTable) != sum {
		return nil, ErrChecksum
	}
	d := decoder{b: payload}
	st := &DeviceState{FTL: d.ftlState()}
	st.InjectorDraws = d.u64()
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(d.b)-d.off)
	}
	return st, nil
}

// encoder appends fixed-width little-endian fields to a growing buffer.
type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *encoder) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) geometry(g flash.Geometry) {
	e.i64(int64(g.Channels))
	e.i64(int64(g.ChipsPerChannel))
	e.i64(int64(g.DiesPerChip))
	e.i64(int64(g.PlanesPerDie))
	e.i64(int64(g.BlocksPerPlane))
	e.i64(int64(g.WordlinesPerBlock))
	e.i64(int64(g.PageSizeBytes))
	e.i64(int64(g.BitsPerCell))
}

func (e *encoder) pageAddr(a flash.PageAddr) {
	e.i64(int64(a.Plane))
	e.i64(int64(a.Block))
	e.i64(int64(a.Page))
}

func (e *encoder) stats(s ftl.Stats) {
	e.u64(s.HostReads)
	e.u64(s.HostWrites)
	e.u64(s.Invalidations)
	e.u64(s.Erases)
	e.u64(uint64(len(s.ReadsByClass)))
	for _, v := range s.ReadsByClass {
		e.u64(v)
	}
	e.u64(uint64(len(s.ReadsBySenses)))
	for _, v := range s.ReadsBySenses {
		e.u64(v)
	}
	e.u64(s.ReadsFromIDA)
	e.u64(s.GCJobs)
	e.u64(s.GCMoves)
	e.u64(s.GCIDAVictims)
	e.u64(s.Refreshes)
	e.u64(s.RefreshValidPages)
	e.u64(s.RefreshMoves)
	e.u64(s.IDARefreshes)
	e.u64(s.IDAAdjustedWLs)
	e.u64(s.IDAVerifyReads)
	e.u64(s.IDACorruptedWrites)
	e.u64(s.IDAKeptPages)
	e.f64(s.ProgramPower)
	e.f64(s.ProgrammedCells)
	e.u64(s.ProgramFailures)
	e.u64(s.EraseFailures)
	e.u64(s.RetiredBlocks)
}

func (e *encoder) ftlState(st *ftl.State) {
	e.geometry(st.Geometry)

	e.boolean(st.DenseL2P != nil)
	if st.DenseL2P != nil {
		e.u64(uint64(len(st.DenseL2P)))
		for _, v := range st.DenseL2P {
			e.u64(v)
		}
	}
	keys := make([]int64, 0, len(st.SparseL2P))
	for k := range st.SparseL2P {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.u64(uint64(len(keys)))
	for _, k := range keys {
		e.i64(k)
		e.u64(st.SparseL2P[k])
	}
	e.i64(int64(st.L2PCount))
	e.i64(int64(st.AllocCursor))

	e.u64(uint64(len(st.Planes)))
	for _, ps := range st.Planes {
		e.i64(int64(ps.Active))
		e.u64(uint64(len(ps.Free)))
		for _, idx := range ps.Free {
			e.i64(int64(idx))
		}
		e.u64(uint64(len(ps.Blocks)))
		for _, bs := range ps.Blocks {
			e.boolean(bs.Present)
			if !bs.Present {
				continue
			}
			e.i64(int64(bs.EraseCount))
			e.i64(int64(bs.OpenedAt))
			e.i64(int64(bs.ProgrammedAt))
			e.i64(int64(bs.NextStep))
			e.i64(int64(bs.ValidCount))
			var flags uint8
			if bs.IDA {
				flags |= 1
			}
			if bs.Refreshed {
				flags |= 2
			}
			if bs.Bad {
				flags |= 4
			}
			if bs.Retired {
				flags |= 8
			}
			e.u8(flags)
			e.u64(uint64(len(bs.Valid)))
			e.bitset(bs.Valid)
			e.u64(uint64(len(bs.RMap)))
			for _, lpn := range bs.RMap {
				e.i64(int64(lpn))
			}
			e.u64(uint64(len(bs.WLKeep)))
			for _, m := range bs.WLKeep {
				e.u32(uint32(m))
			}
		}
	}

	e.u64(uint64(len(st.PendingGC)))
	for _, job := range st.PendingGC {
		e.i64(int64(job.Victim.Plane))
		e.i64(int64(job.Victim.Block))
		e.boolean(job.VictimWasIDA)
		e.u64(uint64(len(job.Moves)))
		for _, m := range job.Moves {
			e.pageAddr(m.From)
			e.i64(int64(m.FromSenses))
			e.pageAddr(m.To)
			e.i64(int64(m.LPN))
			e.i64(int64(m.FailedPrograms))
		}
	}

	e.boolean(st.RefreshingActive)
	e.i64(int64(st.Refreshing.Plane))
	e.i64(int64(st.Refreshing.Block))
	e.stats(st.Stats)
	e.u64(st.RNGDraws)
}

// bitset packs a []bool eight entries per byte.
func (e *encoder) bitset(bits []bool) {
	var cur uint8
	for i, b := range bits {
		if b {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			e.u8(cur)
			cur = 0
		}
	}
	if len(bits)%8 != 0 {
		e.u8(cur)
	}
}

// decoder reads the encoder's fields back, tracking the first error and
// refusing any length that cannot fit in the remaining payload. After an
// error every read returns a zero value, so call sites need no per-field
// checks; Decode inspects d.err once at the end.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

// need reserves n bytes, failing the decode if they are not there.
func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || len(d.b)-d.off < n {
		d.fail("truncated at offset %d (need %d bytes)", d.off, n)
		return false
	}
	return true
}

func (d *decoder) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i64() int64    { return int64(d.u64()) }
func (d *decoder) f64() float64  { return math.Float64frombits(d.u64()) }
func (d *decoder) boolean() bool { return d.u8() != 0 }
func (d *decoder) intField() int { return int(d.i64()) }

// count reads a length prefix for elements of at least elemSize bytes and
// validates it against the remaining payload, so a corrupt length cannot
// trigger a giant allocation.
func (d *decoder) count(elemSize int) int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)-d.off)/uint64(elemSize) {
		d.fail("length %d exceeds remaining payload", n)
		return 0
	}
	return int(n)
}

func (d *decoder) geometry() flash.Geometry {
	return flash.Geometry{
		Channels:          d.intField(),
		ChipsPerChannel:   d.intField(),
		DiesPerChip:       d.intField(),
		PlanesPerDie:      d.intField(),
		BlocksPerPlane:    d.intField(),
		WordlinesPerBlock: d.intField(),
		PageSizeBytes:     d.intField(),
		BitsPerCell:       d.intField(),
	}
}

func (d *decoder) pageAddr() flash.PageAddr {
	var a flash.PageAddr
	a.Plane = flash.PlaneID(d.i64())
	a.Block = d.intField()
	a.Page = d.intField()
	return a
}

func (d *decoder) stats() ftl.Stats {
	var s ftl.Stats
	s.HostReads = d.u64()
	s.HostWrites = d.u64()
	s.Invalidations = d.u64()
	s.Erases = d.u64()
	if n := d.count(8); n != len(s.ReadsByClass) {
		d.fail("ReadsByClass has %d buckets, want %d", n, len(s.ReadsByClass))
	} else {
		for i := range s.ReadsByClass {
			s.ReadsByClass[i] = d.u64()
		}
	}
	if n := d.count(8); n != len(s.ReadsBySenses) {
		d.fail("ReadsBySenses has %d buckets, want %d", n, len(s.ReadsBySenses))
	} else {
		for i := range s.ReadsBySenses {
			s.ReadsBySenses[i] = d.u64()
		}
	}
	s.ReadsFromIDA = d.u64()
	s.GCJobs = d.u64()
	s.GCMoves = d.u64()
	s.GCIDAVictims = d.u64()
	s.Refreshes = d.u64()
	s.RefreshValidPages = d.u64()
	s.RefreshMoves = d.u64()
	s.IDARefreshes = d.u64()
	s.IDAAdjustedWLs = d.u64()
	s.IDAVerifyReads = d.u64()
	s.IDACorruptedWrites = d.u64()
	s.IDAKeptPages = d.u64()
	s.ProgramPower = d.f64()
	s.ProgrammedCells = d.f64()
	s.ProgramFailures = d.u64()
	s.EraseFailures = d.u64()
	s.RetiredBlocks = d.u64()
	return s
}

func (d *decoder) ftlState() *ftl.State {
	st := &ftl.State{}
	st.Geometry = d.geometry()

	if d.boolean() {
		n := d.count(8)
		st.DenseL2P = make([]uint64, n)
		for i := range st.DenseL2P {
			st.DenseL2P[i] = d.u64()
		}
	}
	if n := d.count(16); n > 0 {
		st.SparseL2P = make(map[int64]uint64, n)
		for i := 0; i < n; i++ {
			k := d.i64()
			st.SparseL2P[k] = d.u64()
		}
		if len(st.SparseL2P) != n {
			d.fail("sparse L2P repeats keys")
		}
	}
	st.L2PCount = d.intField()
	st.AllocCursor = d.intField()

	planes := d.count(24) // active + free length + blocks length minimum
	st.Planes = make([]ftl.PlaneState, 0, planes)
	for pl := 0; pl < planes && d.err == nil; pl++ {
		var ps ftl.PlaneState
		ps.Active = d.intField()
		// Zero-length slices decode as nil so a decoded state is
		// byte-for-byte re-encodable and deep-equal to its source.
		if nFree := d.count(8); nFree > 0 {
			ps.Free = make([]int, nFree)
			for i := range ps.Free {
				ps.Free[i] = d.intField()
			}
		}
		nBlocks := d.count(1)
		ps.Blocks = make([]ftl.BlockState, 0, nBlocks)
		for blk := 0; blk < nBlocks && d.err == nil; blk++ {
			var bs ftl.BlockState
			bs.Present = d.boolean()
			if bs.Present {
				bs.EraseCount = d.intField()
				bs.OpenedAt = sim.Time(d.i64())
				bs.ProgrammedAt = sim.Time(d.i64())
				bs.NextStep = d.intField()
				bs.ValidCount = d.intField()
				flags := d.u8()
				bs.IDA = flags&1 != 0
				bs.Refreshed = flags&2 != 0
				bs.Bad = flags&4 != 0
				bs.Retired = flags&8 != 0
				nValid := d.count(1)
				bs.Valid = d.bitset(nValid)
				nRMap := d.count(8)
				bs.RMap = make([]ftl.LPN, nRMap)
				for i := range bs.RMap {
					bs.RMap[i] = ftl.LPN(d.i64())
				}
				nKeep := d.count(4)
				bs.WLKeep = make([]coding.ValidMask, nKeep)
				for i := range bs.WLKeep {
					bs.WLKeep[i] = coding.ValidMask(d.u32())
				}
			}
			ps.Blocks = append(ps.Blocks, bs)
		}
		st.Planes = append(st.Planes, ps)
	}

	nJobs := d.count(25)
	if nJobs > 0 {
		st.PendingGC = make([]ftl.GCJob, 0, nJobs)
	}
	for j := 0; j < nJobs && d.err == nil; j++ {
		var job ftl.GCJob
		job.Victim.Plane = flash.PlaneID(d.i64())
		job.Victim.Block = d.intField()
		job.VictimWasIDA = d.boolean()
		if nMoves := d.count(72); nMoves > 0 {
			job.Moves = make([]ftl.MoveOp, nMoves)
			for i := range job.Moves {
				job.Moves[i].From = d.pageAddr()
				job.Moves[i].FromSenses = d.intField()
				job.Moves[i].To = d.pageAddr()
				job.Moves[i].LPN = ftl.LPN(d.i64())
				job.Moves[i].FailedPrograms = d.intField()
			}
		}
		st.PendingGC = append(st.PendingGC, job)
	}

	st.RefreshingActive = d.boolean()
	st.Refreshing.Plane = flash.PlaneID(d.i64())
	st.Refreshing.Block = d.intField()
	st.Stats = d.stats()
	st.RNGDraws = d.u64()
	return st
}

// bitset unpacks n bools written by encoder.bitset.
func (d *decoder) bitset(n int) []bool {
	bytes := (n + 7) / 8
	if !d.need(bytes) {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = d.b[d.off+i/8]&(1<<(i%8)) != 0
	}
	d.off += bytes
	return out
}
