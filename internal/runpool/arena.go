// Package runpool pools fully-constructed simulation devices between runs,
// so a farm worker sweeping thousands of points over a handful of device
// shapes rebuilds nothing: the engine's event heap, the FTL's dense L2P and
// block tables, the scheduler ring buffers, the latency-histogram buckets,
// and the op/request free lists all survive from run to run through
// ssd.Reset, which reinitializes them in place.
//
// Devices are pooled by geometry — the one configuration axis Reset cannot
// change, because every table is sized for it — and any other config field
// (seed, coding, scheduler, faults, telemetry) may differ freely between
// the run that returned a device and the run that reuses it. A reset device
// is observably identical to a freshly built one, so pooled and unpooled
// runs produce the same bytes; the facade's interleaved-reuse tests and the
// CI determinism gates hold the pool to that contract.
//
// Ownership rule: a device is either checked out (owned exclusively by one
// run) or idle in the pool — never both. Callers must only Put a device
// whose run completed cleanly; after an error or cancellation the device's
// engine may hold undrained events, so the device is simply dropped and
// garbage collected. Putting a device twice, or using it after Put, is a
// data race by construction.
package runpool

import (
	"sync"

	"idaflash/internal/flash"
	"idaflash/internal/ssd"
)

// DefaultIdlePerGeometry bounds how many idle devices one geometry keeps.
// A device pins its full table footprint (the dense L2P alone can be tens
// of MB), so the bound is sized for one device per plausible farm worker
// rather than for unbounded retention.
const DefaultIdlePerGeometry = 16

// Stats counts the arena's traffic. Idle is the current total of parked
// devices across all geometries; the counters are cumulative.
type Stats struct {
	// Hits is the number of Gets served by resetting an idle device.
	Hits uint64 `json:"hits"`
	// Misses is the number of Gets that built a fresh device (no idle
	// device of the geometry, or a failed in-place reset).
	Misses uint64 `json:"misses"`
	// Returns is the number of devices parked by Put.
	Returns uint64 `json:"returns"`
	// Dropped is the number of devices Put discarded over the idle bound.
	Dropped uint64 `json:"dropped"`
	// Idle is the current number of parked devices.
	Idle int `json:"idle"`
}

// Arena is a geometry-keyed pool of idle simulation devices. The zero value
// is not usable; call New. All methods are safe for concurrent use — the
// farm's worker slots share one arena.
type Arena struct {
	mu      sync.Mutex
	idle    map[flash.Geometry][]*ssd.SSD
	perGeom int
	stats   Stats
}

// New builds an arena keeping at most perGeom idle devices per geometry;
// zero or negative selects DefaultIdlePerGeometry.
func New(perGeom int) *Arena {
	if perGeom <= 0 {
		perGeom = DefaultIdlePerGeometry
	}
	return &Arena{idle: make(map[flash.Geometry][]*ssd.SSD), perGeom: perGeom}
}

// Get returns a device configured per cfg: an idle device of the same
// geometry reset in place when one is parked, a freshly built one
// otherwise. The caller owns the device exclusively until it either Puts it
// back (clean run) or drops it (failed run, or kept alive for follow-up
// runs like RunWithFollowup).
func (a *Arena) Get(cfg ssd.Config) (*ssd.SSD, error) {
	for {
		dev := a.take(cfg.Geometry)
		if dev == nil {
			a.count(func(s *Stats) { s.Misses++ })
			return ssd.New(cfg)
		}
		if err := dev.Reset(cfg); err != nil {
			// A failed reset leaves the device partially reinitialized;
			// discard it and try the next candidate. Config errors fail
			// again in ssd.New and surface there with the same message.
			continue
		}
		a.count(func(s *Stats) { s.Hits++ })
		return dev, nil
	}
}

// Put parks a device for reuse. Only devices whose run completed cleanly
// may be returned; the arena trusts the caller on that. A nil device is a
// no-op; devices over the per-geometry idle bound are dropped.
func (a *Arena) Put(dev *ssd.SSD) {
	if dev == nil {
		return
	}
	g := dev.Config().Geometry
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.idle[g]) >= a.perGeom {
		a.stats.Dropped++
		return
	}
	a.idle[g] = append(a.idle[g], dev)
	a.stats.Returns++
	a.stats.Idle++
}

// Stats returns a snapshot of the arena's counters.
func (a *Arena) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Drain discards every idle device, releasing their memory to the garbage
// collector. Checked-out devices are unaffected.
func (a *Arena) Drain() {
	a.mu.Lock()
	defer a.mu.Unlock()
	clear(a.idle)
	a.stats.Idle = 0
}

// take pops an idle device of the geometry, or nil.
func (a *Arena) take(g flash.Geometry) *ssd.SSD {
	a.mu.Lock()
	defer a.mu.Unlock()
	devs := a.idle[g]
	if len(devs) == 0 {
		return nil
	}
	dev := devs[len(devs)-1]
	devs[len(devs)-1] = nil
	a.idle[g] = devs[:len(devs)-1]
	a.stats.Idle--
	return dev
}

// count applies a counter update under the lock.
func (a *Arena) count(f func(*Stats)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	f(&a.stats)
}
