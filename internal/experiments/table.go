package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment artifact: a titled grid with optional
// footnotes, printable as aligned text or Markdown.
type Table struct {
	ID     string // experiment id, e.g. "F8" or "T4"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint writes the table as aligned plain text.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown writes the table as a GitHub-flavored Markdown section.
func (t *Table) Markdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (header row first).
// Cells containing commas or quotes are quoted per RFC 4180.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// pct renders a ratio as a percentage string.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }

// f2 renders a float with two decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// f1 renders a float with one decimal.
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
