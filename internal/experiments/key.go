package experiments

import (
	"encoding/json"
	"fmt"

	"idaflash"
	"idaflash/internal/workload"
)

// KeyVersion versions the canonical memo-key schema. It is embedded in
// every key, so bumping it changes every key's content address and stale
// disk entries — written under an older schema whose fields meant something
// else — read as misses instead of being served as current results. Bump it
// whenever the schema changes meaning: a Profile or System field is added,
// removed, or reinterpreted, or the payload a key points at (the canonical
// Results JSON) changes shape incompatibly.
const KeyVersion = 1

// Key builds the canonical, versioned cache key for one (profile, system)
// simulation point. It is the contract behind every cache layer the point
// flows through: the in-memory experiments memo, the server's singleflight,
// and the content-addressed disk store that survives restarts.
//
// Canonical means two requests describing the same simulation produce the
// same bytes: the profile is normalized first (derived fields filled, so a
// sparse profile and its default-filled form share one key), and both
// structs are marshaled by encoding/json in declaration order (so the field
// order of whatever wire JSON the values came from cannot leak in). A
// profile that fails normalization is keyed in its raw form — deterministic
// and collision-free, just without the sparse ≡ filled unification —
// because memoization and the singleflight on top of it must not depend on
// validity; the run itself reports the real error. An encoding failure is
// returned rather than panicked; callers fall back to an uncached
// execution.
func Key(p workload.Profile, sys idaflash.System) (string, error) {
	np, err := p.Normalize()
	if err != nil {
		np = p
	}
	b, err := json.Marshal(struct {
		V int
		P workload.Profile
		S idaflash.System
	}{KeyVersion, np, sys})
	if err != nil {
		return "", fmt.Errorf("experiments: encoding cache key: %w", err)
	}
	return string(b), nil
}
