package experiments

import (
	"fmt"
	"time"

	"idaflash"
	"idaflash/internal/coding"
)

// deltaTRs are the Figure 9 sweep points.
var deltaTRs = []time.Duration{
	30 * time.Microsecond,
	40 * time.Microsecond,
	50 * time.Microsecond,
	60 * time.Microsecond,
	70 * time.Microsecond,
}

// sensitivitySystems returns the Figure 9 sweep's systems: a (baseline,
// IDA-E20) pair per delta-tR point, in sweep order. Shared with the batch
// API's "sensitivity" sweep so the two enumerate identical memo keys.
func sensitivitySystems() []idaflash.System {
	var systems []idaflash.System
	for _, d := range deltaTRs {
		base := idaflash.Baseline()
		base.Name = fmt.Sprintf("Baseline-d%d", d/time.Microsecond)
		base.DeltaTR = d
		ida := idaflash.IDA(0.20)
		ida.Name = fmt.Sprintf("IDA-E20-d%d", d/time.Microsecond)
		ida.DeltaTR = d
		systems = append(systems, base, ida)
	}
	return systems
}

// Figure9 reproduces the device sensitivity study: IDA-Coding-E20 read
// response times normalized to a baseline with the same delta-tR, for
// delta-tR from 30 us to 70 us.
func Figure9(r *Runner) (*Table, error) {
	profiles := r.profiles()
	systems := sensitivitySystems()
	if err := r.RunAll(crossProduct(profiles, systems)); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "F9",
		Title:  "Normalized read response time of IDA-E20 vs delta-tR (lower is better)",
		Header: []string{"Name"},
		Notes: []string{
			"Paper: 14% improvement at delta-tR=30us rising to 49% at 70us (up to 83% for usr_1).",
		},
	}
	for _, d := range deltaTRs {
		t.Header = append(t.Header, fmt.Sprintf("%dus", d/time.Microsecond))
	}
	sums := make([]float64, len(deltaTRs))
	for _, p := range profiles {
		row := []string{p.Name}
		for i := range deltaTRs {
			base, err := r.Run(p, systems[2*i])
			if err != nil {
				return nil, err
			}
			ida, err := r.Run(p, systems[2*i+1])
			if err != nil {
				return nil, err
			}
			norm := ratio(ida.MeanReadResponse.Seconds(), base.MeanReadResponse.Seconds())
			sums[i] += norm
			row = append(row, f2(norm))
		}
		t.Rows = append(t.Rows, row)
	}
	avg := []string{"average"}
	for _, s := range sums {
		avg = append(avg, f2(s/float64(len(profiles))))
	}
	t.Rows = append(t.Rows, avg)
	return t, nil
}

// Figure11 reproduces the read-retry lifetime study: the IDA-E20
// improvement in the early lifetime (no read retries) versus the late
// lifetime (LDPC read retries re-sense wordlines, so IDA's cheaper
// sensings pay off more).
func Figure11(r *Runner) (*Table, error) {
	profiles := r.profiles()
	phase := func(ida bool, lt idaflash.LifetimePhase) idaflash.System {
		s := idaflash.Baseline()
		if ida {
			s = idaflash.IDA(0.20)
		}
		s.Name = s.Name + "-" + lt.String()
		s.Lifetime = lt
		return s
	}
	systems := []idaflash.System{
		phase(false, idaflash.PhaseEarly),
		phase(true, idaflash.PhaseEarly),
		phase(false, idaflash.PhaseLate),
		phase(true, idaflash.PhaseLate),
	}
	if err := r.RunAll(crossProduct(profiles, systems)); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "F11",
		Title:  "Normalized read response of IDA-E20 in early vs late SSD lifetime",
		Header: []string{"Name", "Early", "Late"},
		Notes: []string{
			"Paper: 28% average improvement early (no read retries) vs 42.3% late (read-retry phase).",
		},
	}
	var sumE, sumL float64
	for _, p := range profiles {
		be, err := r.Run(p, systems[0])
		if err != nil {
			return nil, err
		}
		ie, err := r.Run(p, systems[1])
		if err != nil {
			return nil, err
		}
		bl, err := r.Run(p, systems[2])
		if err != nil {
			return nil, err
		}
		il, err := r.Run(p, systems[3])
		if err != nil {
			return nil, err
		}
		early := ratio(ie.MeanReadResponse.Seconds(), be.MeanReadResponse.Seconds())
		late := ratio(il.MeanReadResponse.Seconds(), bl.MeanReadResponse.Seconds())
		sumE += early
		sumL += late
		t.Rows = append(t.Rows, []string{p.Name, f2(early), f2(late)})
	}
	n := float64(len(profiles))
	t.Rows = append(t.Rows, []string{"average", f2(sumE / n), f2(sumL / n)})
	return t, nil
}

// TableV reproduces the MLC device study: the read response improvement of
// IDA-Coding-E20 on a 2-bit device (65/115 us page reads).
func TableV(r *Runner) (*Table, error) {
	profiles := r.profiles()
	base := idaflash.Baseline()
	base.Name = "Baseline-MLC"
	base.BitsPerCell = 2
	ida := idaflash.IDA(0.20)
	ida.Name = "IDA-E20-MLC"
	ida.BitsPerCell = 2
	if err := r.RunAll(crossProduct(profiles, []idaflash.System{base, ida})); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "T5",
		Title:  "Read response improvement of IDA-E20 on an MLC device",
		Header: []string{"Name", "Improvement"},
		Notes: []string{
			"Paper: 14.9% average, smaller than TLC because MLC's latency asymmetry is milder.",
		},
	}
	sum := 0.0
	for _, p := range profiles {
		b, err := r.Run(p, base)
		if err != nil {
			return nil, err
		}
		i, err := r.Run(p, ida)
		if err != nil {
			return nil, err
		}
		imp := 1 - ratio(i.MeanReadResponse.Seconds(), b.MeanReadResponse.Seconds())
		sum += imp
		t.Rows = append(t.Rows, []string{p.Name, pct(imp)})
	}
	t.Rows = append(t.Rows, []string{"average", pct(sum / float64(len(profiles)))})
	return t, nil
}

// Figure6 reproduces the QLC illustration analytically from the coding
// model — the sensing counts before and after merging when the two lower
// bits are invalid — and extends the paper with a full QLC device
// simulation (its stated future work) on three representative workloads.
func Figure6(r *Runner) (*Table, error) {
	t := &Table{
		ID:     "F6",
		Title:  "QLC: sensing counts under IDA merging, plus device simulation (extension)",
		Header: []string{"Scenario", "Bit1", "Bit2", "Bit3", "Bit4"},
		Notes: []string{
			"Paper Figure 6: with Bits 1-2 invalid, Bits 3 and 4 drop from 4 and 8 sensings to 1 and 2.",
		},
	}
	qlc := coding.NewGray(4)
	conv := []string{"conventional"}
	for j := 0; j < 4; j++ {
		conv = append(conv, fmt.Sprintf("%d", qlc.Senses(coding.PageType(j))))
	}
	t.Rows = append(t.Rows, conv)
	merged := qlc.Merge(coding.ValidMask(0).With(2).With(3))
	row := []string{"IDA (bits 1-2 invalid)", "-", "-"}
	row = append(row, fmt.Sprintf("%d", merged.Senses(2)), fmt.Sprintf("%d", merged.Senses(3)))
	t.Rows = append(t.Rows, row)

	// Device-level extension on three representative workloads.
	profiles := r.profiles()
	reps := profiles[:0:0]
	for _, p := range profiles {
		switch p.Name {
		case "proj_1", "src1_1", "usr_1":
			reps = append(reps, p)
		}
	}
	base := idaflash.Baseline()
	base.Name = "Baseline-QLC"
	base.BitsPerCell = 4
	ida := idaflash.IDA(0.20)
	ida.Name = "IDA-E20-QLC"
	ida.BitsPerCell = 4
	if err := r.RunAll(crossProduct(reps, []idaflash.System{base, ida})); err != nil {
		return nil, err
	}
	for _, p := range reps {
		b, err := r.Run(p, base)
		if err != nil {
			return nil, err
		}
		i, err := r.Run(p, ida)
		if err != nil {
			return nil, err
		}
		imp := 1 - ratio(i.MeanReadResponse.Seconds(), b.MeanReadResponse.Seconds())
		t.Rows = append(t.Rows, []string{"QLC device, " + p.Name, "", "", "", pct(imp) + " faster"})
	}
	return t, nil
}
