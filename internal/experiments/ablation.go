package experiments

import (
	"idaflash"
)

// Ablations quantifies the design choices DESIGN.md calls out, all at the
// paper's E20 error rate and normalized to the same baseline:
//
//   - Full: the paper's policy (Table I cases 1-4 adjusted).
//   - OnlyInvalid: adjust only wordlines that already lost a lower page
//     (cases 2-4), relocating fully-valid wordlines conventionally. The gap
//     to Full shows how much the blanket case-1 conversion contributes.
//   - FastAdjust: charge the voltage adjustment at half a program latency
//     (the paper's Section III-B estimate) instead of the conservative full
//     program; the gap bounds how much the conservative charge costs.
func Ablations(r *Runner) (*Table, error) {
	profiles := r.profiles()
	full := idaflash.IDA(0.20)
	onlyInvalid := idaflash.IDA(0.20)
	onlyInvalid.Name = "IDA-E20-onlyinv"
	onlyInvalid.OnlyInvalid = true
	fastAdjust := idaflash.IDA(0.20)
	fastAdjust.Name = "IDA-E20-fastadj"
	fastAdjust.FastAdjust = true
	systems := []idaflash.System{idaflash.Baseline(), full, onlyInvalid, fastAdjust}
	if err := r.RunAll(crossProduct(profiles, systems)); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ABL",
		Title:  "Ablations: normalized read response time at E20 (lower is better)",
		Header: []string{"Name", "Full", "OnlyInvalid", "FastAdjust"},
		Notes: []string{
			"OnlyInvalid skips the case-1 conversion of fully-valid wordlines; FastAdjust halves the voltage-adjustment charge.",
		},
	}
	sums := make([]float64, 3)
	for _, p := range profiles {
		base, err := r.Run(p, idaflash.Baseline())
		if err != nil {
			return nil, err
		}
		row := []string{p.Name}
		for i, sys := range systems[1:] {
			res, err := r.Run(p, sys)
			if err != nil {
				return nil, err
			}
			norm := ratio(res.MeanReadResponse.Seconds(), base.MeanReadResponse.Seconds())
			sums[i] += norm
			row = append(row, f2(norm))
		}
		t.Rows = append(t.Rows, row)
	}
	avg := []string{"average"}
	for _, s := range sums {
		avg = append(avg, f2(s/float64(len(profiles))))
	}
	t.Rows = append(t.Rows, avg)
	return t, nil
}
