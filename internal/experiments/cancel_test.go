package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"idaflash"
	"idaflash/internal/workload"
)

// TestCancelledRunLeavesNoPartialResult is the memo-integrity gate: a sweep
// cancelled mid-run must purge its cache entry, so an identical rerun
// re-executes and produces byte-identical results to a runner that was
// never interrupted. A partial result leaking through the memo would make
// "cancel, then retry" silently corrupt every downstream figure.
func TestCancelledRunLeavesNoPartialResult(t *testing.T) {
	p, err := workload.ProfileByName("proj_3", 4000)
	if err != nil {
		t.Fatal(err)
	}
	sys := idaflash.IDA(0.2)

	// A cancelled context is the deterministic way to interrupt on any
	// machine (a wall-clock deadline shorter than the run may never be
	// delivered on a single-CPU box before the CPU-bound run completes);
	// the run still installs its memo entry first, so the purge path is
	// exercised exactly as in a mid-run cancel.
	interrupted := NewRunner(Options{Requests: 4000, Parallel: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := interrupted.RunContext(ctx, p, sys); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}

	// The rerun on the same runner must re-execute from scratch...
	rerun, err := interrupted.RunContext(context.Background(), p, sys)
	if err != nil {
		t.Fatal(err)
	}
	// ...and match a never-interrupted runner byte for byte.
	fresh, err := NewRunner(Options{Requests: 4000, Parallel: 2}).Run(p, sys)
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(rerun)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("rerun after cancellation diverged from an uninterrupted run:\n%s\nvs\n%s", a, b)
	}
}

// TestWaiterCancelDoesNotDisturbExecutor: a waiter that gives up on a
// singleflight entry must get its own context error while the executing run
// completes and is cached normally.
func TestWaiterCancelDoesNotDisturbExecutor(t *testing.T) {
	block := make(chan struct{})
	runs := 0
	r := &Runner{
		run: func(ctx context.Context, p workload.Profile, sys idaflash.System) (idaflash.Results, error) {
			runs++
			<-block
			return idaflash.Results{Trace: p.Name}, nil
		},
		cache: make(map[string]*runEntry),
		sem:   make(chan struct{}, 2),
	}
	p := workload.Profile{Name: "w", Requests: 10}
	sys := idaflash.System{Name: "S"}

	execDone := make(chan error, 1)
	go func() {
		_, err := r.RunContext(context.Background(), p, sys)
		execDone <- err
	}()
	// Wait until the executor has installed its entry.
	for {
		r.mu.Lock()
		n := len(r.cache)
		r.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	wctx, wcancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := r.RunContext(wctx, p, sys)
		waiterDone <- err
	}()
	wcancel()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	close(block)
	if err := <-execDone; err != nil {
		t.Fatalf("executor err = %v", err)
	}
	if runs != 1 {
		t.Errorf("simulation ran %d times, want 1", runs)
	}
	// The completed result is cached: a third call must not re-execute.
	if _, err := r.Run(p, sys); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Errorf("cached result was not reused: %d runs", runs)
	}
}
