package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"

	"idaflash"
)

// The tests share one memoizing runner so baseline runs are reused across
// experiments, exactly as cmd/idabench does.
var (
	sharedOnce   sync.Once
	sharedRunner *Runner
)

func runner(t *testing.T) *Runner {
	t.Helper()
	sharedOnce.Do(func() {
		sharedRunner = NewRunner(Options{Requests: 6000})
	})
	return sharedRunner
}

// cell parses a numeric table cell (possibly with a % suffix).
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSpace(s), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("unparseable cell %q: %v", s, err)
	}
	return v
}

// lastRow returns the table's final row (the "average" row by convention).
func lastRow(tb *Table) []string { return tb.Rows[len(tb.Rows)-1] }

func TestTableIIIShape(t *testing.T) {
	tb, err := TableIII(runner(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		measured := cell(t, row[1])
		paper := cell(t, row[2])
		if measured < paper-5 || measured > paper+5 {
			t.Errorf("%s: read ratio %.1f vs paper %.1f", row[0], measured, paper)
		}
		// The invalid-MSB fraction must be nonzero for every workload:
		// it is the paper's entire opportunity.
		if inv := cell(t, row[7]); inv <= 0 {
			t.Errorf("%s: measured invalid-MSB fraction %.1f%%", row[0], inv)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	tb, err := Figure4(runner(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 21 { // 11 + 9 workloads + average
		t.Fatalf("rows = %d, want 21", len(tb.Rows))
	}
	avg := lastRow(tb)
	msbInv := cell(t, avg[7])
	if msbInv < 5 || msbInv > 70 {
		t.Errorf("average MSB-invalid fraction = %.1f%%, want a material fraction", msbInv)
	}
	// Page types are roughly evenly distributed: LSB share near 1/3.
	for _, row := range tb.Rows[:len(tb.Rows)-1] {
		lsb := cell(t, row[1])
		if lsb < 15 || lsb > 55 {
			t.Errorf("%s: LSB read share %.1f%% implausible", row[0], lsb)
		}
	}
}

func TestFigure8Shape(t *testing.T) {
	tb, err := Figure8(runner(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(tb.Rows))
	}
	avg := lastRow(tb)
	e0 := cell(t, avg[1])
	e20 := cell(t, avg[3])
	e80 := cell(t, avg[9])
	if e0 >= 1.0 {
		t.Errorf("IDA-E0 normalized response %.2f, want < 1", e0)
	}
	if e20 >= 1.0 {
		t.Errorf("IDA-E20 normalized response %.2f, want < 1", e20)
	}
	if e0 > e20+0.02 {
		t.Errorf("E0 (%.2f) should be at least as good as E20 (%.2f)", e0, e20)
	}
	if e20 > e80+0.05 {
		t.Errorf("E20 (%.2f) should be better than E80 (%.2f)", e20, e80)
	}
	// Per-workload: every workload benefits at E0.
	for _, row := range tb.Rows[:11] {
		if v := cell(t, row[1]); v > 1.05 {
			t.Errorf("%s: IDA-E0 normalized %.2f, regression", row[0], v)
		}
	}
}

func TestTableIVShape(t *testing.T) {
	tb, err := TableIV(runner(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 11 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		valid := cell(t, strings.Split(row[1], "/")[0])
		reads := cell(t, row[2])
		writes := cell(t, row[3])
		if valid <= 0 || valid > 192 {
			t.Errorf("%s: valid pages %.1f out of range", row[0], valid)
		}
		if reads <= 0 || reads > valid {
			t.Errorf("%s: additional reads %.1f vs valid %.1f", row[0], reads, valid)
		}
		// At E20, write-backs are ~20% of verify reads.
		if reads > 5 {
			r := writes / reads
			if r < 0.05 || r > 0.40 {
				t.Errorf("%s: write/read ratio %.2f, want ~0.20", row[0], r)
			}
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	tb, err := Figure9(runner(t))
	if err != nil {
		t.Fatal(err)
	}
	avg := lastRow(tb)
	at30 := cell(t, avg[1])
	at70 := cell(t, avg[5])
	if at30 >= 1.0 {
		t.Errorf("delta-tR=30us normalized %.2f, want improvement", at30)
	}
	if at70 >= at30 {
		t.Errorf("larger delta-tR should amplify the benefit: 30us=%.2f 70us=%.2f", at30, at70)
	}
}

func TestFigure10Shape(t *testing.T) {
	tb, err := Figure10(runner(t))
	if err != nil {
		t.Fatal(err)
	}
	avg := lastRow(tb)
	if norm := cell(t, avg[3]); norm < 0.99 {
		t.Errorf("average normalized throughput %.2f, want >= ~1", norm)
	}
}

func TestFigure11Shape(t *testing.T) {
	tb, err := Figure11(runner(t))
	if err != nil {
		t.Fatal(err)
	}
	avg := lastRow(tb)
	early := cell(t, avg[1])
	late := cell(t, avg[2])
	if early >= 1.0 {
		t.Errorf("early improvement missing: %.2f", early)
	}
	if late >= early+0.02 {
		t.Errorf("late lifetime should benefit at least as much: early=%.2f late=%.2f", early, late)
	}
}

func TestTableVShape(t *testing.T) {
	tb, err := TableV(runner(t))
	if err != nil {
		t.Fatal(err)
	}
	avg := lastRow(tb)
	imp := cell(t, avg[1])
	if imp <= 0 {
		t.Errorf("MLC improvement %.1f%%, want positive", imp)
	}
	if imp > 60 {
		t.Errorf("MLC improvement %.1f%% implausibly large", imp)
	}
}

func TestFigure6Shape(t *testing.T) {
	tb, err := Figure6(runner(t))
	if err != nil {
		t.Fatal(err)
	}
	// Analytic rows are exact: conventional 1/2/4/8, merged -/-/1/2.
	conv := tb.Rows[0]
	for j, want := range []string{"1", "2", "4", "8"} {
		if conv[j+1] != want {
			t.Errorf("conventional QLC senses[%d] = %s, want %s", j, conv[j+1], want)
		}
	}
	merged := tb.Rows[1]
	if merged[3] != "1" || merged[4] != "2" {
		t.Errorf("merged QLC senses = %v, want bit3=1 bit4=2", merged)
	}
	if len(tb.Rows) < 5 {
		t.Errorf("missing QLC device extension rows: %d", len(tb.Rows))
	}
}

func TestBlockUsageShape(t *testing.T) {
	tb, err := BlockUsage(runner(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 11 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if growth := cell(t, row[3]); growth < -20 || growth > 40 {
			t.Errorf("%s: block growth %.1f%% implausible", row[0], growth)
		}
	}
}

func TestAllAndByID(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("experiments = %d, want 14", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Name == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, err := ByID("F8"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID:     "X",
		Title:  "test",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	var text, md bytes.Buffer
	if err := tb.Fprint(&text); err != nil {
		t.Fatal(err)
	}
	if err := tb.Markdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "333") || !strings.Contains(text.String(), "note:") {
		t.Errorf("text rendering missing content:\n%s", text.String())
	}
	if !strings.Contains(md.String(), "| 333 | 4 |") || !strings.Contains(md.String(), "### X") {
		t.Errorf("markdown rendering missing content:\n%s", md.String())
	}
}

func TestRunnerMemoizationAndDeterminism(t *testing.T) {
	r := runner(t)
	p, err := idaflash.ProfileByName("proj_3", r.Options().Requests)
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Run(p, idaflash.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(p, idaflash.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("memoized results differ")
	}
	// A fresh runner reproduces identical numbers.
	fresh := NewRunner(Options{Requests: r.Options().Requests})
	c, err := fresh.Run(p, idaflash.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanReadResponse != c.MeanReadResponse || a.FTL != c.FTL {
		t.Error("fresh runner diverged from cached results")
	}
}

func TestAblationsShape(t *testing.T) {
	tb, err := Ablations(runner(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(tb.Rows))
	}
	avg := lastRow(tb)
	full := cell(t, avg[1])
	onlyInvalid := cell(t, avg[2])
	fast := cell(t, avg[3])
	if full >= 1.0 {
		t.Errorf("full IDA normalized %.2f, want improvement", full)
	}
	// Restricting IDA to already-invalid wordlines converts fewer reads,
	// so it cannot beat the full policy by much; it should still help.
	if onlyInvalid < full-0.03 {
		t.Errorf("only-invalid (%.2f) outperformed full policy (%.2f)", onlyInvalid, full)
	}
	if onlyInvalid >= 1.02 {
		t.Errorf("only-invalid normalized %.2f, want some improvement", onlyInvalid)
	}
	// A cheaper adjustment can only help.
	if fast > full+0.03 {
		t.Errorf("fast-adjust (%.2f) worse than full charge (%.2f)", fast, full)
	}
}

func TestWriteInterferenceShape(t *testing.T) {
	tb, err := WriteInterference(runner(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		baseErases := cell(t, row[1])
		idaErases := cell(t, row[2])
		if baseErases <= 0 || idaErases <= 0 {
			t.Errorf("%s: phase 2 never erased (base %v, ida %v)", row[0], baseErases, idaErases)
		}
		// The IDA device pays at most a modest GC toll and never less
		// than ~none; wild swings would indicate broken accounting.
		if idaErases > baseErases*1.6 {
			t.Errorf("%s: IDA erases %.0f vs base %.0f, implausibly large toll", row[0], idaErases, baseErases)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{
		ID:     "X",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "two, quoted"}, {"3", "4"}},
	}
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "a,b\n") || !strings.Contains(got, `"two, quoted"`) {
		t.Errorf("csv output:\n%s", got)
	}
}

func TestCodingComparisonShape(t *testing.T) {
	tb, err := CodingComparison(runner(t))
	if err != nil {
		t.Fatal(err)
	}
	// Eleven profiles plus the average row; one name column plus three
	// metric columns per registered coding scheme.
	if len(tb.Rows) != 12 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	wantCols := 1 + 3*len(idaflash.CodingNames())
	if len(tb.Header) != wantCols {
		t.Fatalf("header has %d columns, want %d", len(tb.Header), wantCols)
	}
	avg := lastRow(tb)
	if len(avg) != wantCols {
		t.Fatalf("average row has %d columns, want %d", len(avg), wantCols)
	}
	// Column order follows sorted CodingNames(): ida, ilwc, randio.
	idaRead, idaPower := cell(t, avg[1]), cell(t, avg[3])
	ilwcRead, ilwcPower := cell(t, avg[4]), cell(t, avg[6])
	randioPower := cell(t, avg[9])
	// ilwc shares the Gray state map, so its latency matches ida's, but
	// its biased programmed-cell population must cost less power.
	if diff := ilwcRead - idaRead; diff > idaRead*0.01 || diff < -idaRead*0.01 {
		t.Errorf("ilwc read %.1f differs from ida %.1f beyond 1%%", ilwcRead, idaRead)
	}
	if ilwcPower >= idaPower {
		t.Errorf("ilwc power %.2f not below ida %.2f", ilwcPower, idaPower)
	}
	// Bijective maps under uniform data cost the same per page program,
	// but run-level power also folds in IDA voltage adjustments, whose
	// MeanMove comes from each scheme's own merge table — so randio only
	// lands near ida, not on it.
	if diff := randioPower - idaPower; diff > idaPower*0.2 || diff < -idaPower*0.2 {
		t.Errorf("randio power %.2f not within 20%% of ida %.2f", randioPower, idaPower)
	}
	for _, row := range tb.Rows {
		for i, c := range row[1:] {
			if v := cell(t, c); v < 0 {
				t.Fatalf("negative cell %d in row %s: %v", i, row[0], v)
			}
		}
	}
}

func TestVendor232Shape(t *testing.T) {
	tb, err := Vendor232(runner(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	avg := lastRow(tb)
	gray := cell(t, avg[1])
	vendor := cell(t, avg[2])
	if vendor >= 1.02 {
		t.Errorf("vendor-coding IDA normalized %.2f, want some improvement", vendor)
	}
	// Both codings benefit; the 2-3-2 layout has no 1-sensing page at
	// all, so merging (to 1-2 sensings) can help it even more than the
	// Gray coding despite its flatter variation.
	if gray >= 1.0 {
		t.Errorf("gray-coding IDA normalized %.2f, want improvement", gray)
	}
}
