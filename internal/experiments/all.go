package experiments

import "fmt"

// Experiment names one regenerable artifact.
type Experiment struct {
	ID   string
	Name string
	Run  func(*Runner) (*Table, error)
}

// All lists every experiment in the order the paper presents them.
func All() []Experiment {
	return []Experiment{
		{"T3", "Table III: workload characteristics", TableIII},
		{"F4", "Figure 4: read distribution across page types", Figure4},
		{"F8", "Figure 8: read response vs error rate", Figure8},
		{"T4", "Table IV: refresh overhead", TableIV},
		{"F9", "Figure 9: delta-tR sensitivity", Figure9},
		{"F10", "Figure 10: storage throughput", Figure10},
		{"F11", "Figure 11: early vs late lifetime", Figure11},
		{"T5", "Table V: MLC device", TableV},
		{"F6", "Figure 6: QLC coding and device extension", Figure6},
		{"AUX", "Section III-C: in-use block growth", BlockUsage},
		{"ABL", "Ablations: policy and adjustment-latency variants", Ablations},
		{"WRI", "Section III-C: write-intensive follow-up interference", WriteInterference},
		{"V232", "Section III-B: IDA on the vendor 2-3-2 TLC coding", Vendor232},
		{"CMP", "Coding lab: ida vs randio vs ilwc head-to-head", CodingComparison},
	}
}

// ByID finds one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
