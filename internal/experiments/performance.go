package experiments

import (
	"fmt"

	"idaflash"
)

// errorRates are the Figure 8 sweep points (IDA-E0 through IDA-E80).
var errorRates = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}

// Figure8 reproduces the headline result: mean read response time of the
// IDA systems at voltage-adjustment error rates 0%..80%, normalized to the
// baseline, per workload plus the geometric structure of the paper's bar
// chart (one row per workload, one column per error rate).
func Figure8(r *Runner) (*Table, error) {
	profiles := r.profiles()
	systems := []idaflash.System{idaflash.Baseline()}
	for _, e := range errorRates {
		systems = append(systems, idaflash.IDA(e))
	}
	if err := r.RunAll(crossProduct(profiles, systems)); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "F8",
		Title:  "Normalized read response time (lower is better; baseline = 1.00)",
		Header: []string{"Name"},
		Notes: []string{
			"Paper: IDA-E0 improves reads by 31% and IDA-E20 by 28% on average; E50 still ~20%, E80 under 7%.",
		},
	}
	for _, e := range errorRates {
		t.Header = append(t.Header, fmt.Sprintf("E%d", int(e*100)))
	}
	sums := make([]float64, len(errorRates))
	for _, p := range profiles {
		base, err := r.Run(p, idaflash.Baseline())
		if err != nil {
			return nil, err
		}
		row := []string{p.Name}
		for i, e := range errorRates {
			res, err := r.Run(p, idaflash.IDA(e))
			if err != nil {
				return nil, err
			}
			norm := ratio(res.MeanReadResponse.Seconds(), base.MeanReadResponse.Seconds())
			sums[i] += norm
			row = append(row, f2(norm))
		}
		t.Rows = append(t.Rows, row)
	}
	avg := []string{"average"}
	for _, s := range sums {
		avg = append(avg, f2(s/float64(len(profiles))))
	}
	t.Rows = append(t.Rows, avg)
	return t, nil
}

// TableIV reproduces the refresh overhead audit for IDA-Coding-E20: per
// refreshed 192-page block, the mean number of valid pages (the original
// refresh cost), plus the additional reads (post-adjustment verification)
// and additional writes (corruption write-backs) the IDA coding adds.
func TableIV(r *Runner) (*Table, error) {
	profiles := r.profiles()
	sys := idaflash.IDA(0.20)
	if err := r.RunAll(crossProduct(profiles, []idaflash.System{sys})); err != nil {
		return nil, err
	}
	pages := idaflash.PaperGeometry().PagesPerBlock()
	t := &Table{
		ID:     "T4",
		Title:  "Average per-block refresh overhead under IDA-Coding-E20",
		Header: []string{"Name", "ValidPages/Total", "AddReads", "AddWrites"},
		Notes: []string{
			fmt.Sprintf("Block = %d pages. Paper averages: 113 valid pages, 58 additional reads, 11.5 additional writes.", pages),
			"Additional reads are the post-adjustment verification reads; additional writes are corruption write-backs (~20% of reads at E20).",
		},
	}
	for _, p := range profiles {
		res, err := r.Run(p, sys)
		if err != nil {
			return nil, err
		}
		st := res.FTL
		if st.Refreshes == 0 {
			return nil, fmt.Errorf("experiments: %s never refreshed", p.Name)
		}
		// The scaled device keeps the paper's 192-page block shape, so
		// per-block figures are directly comparable.
		valid := float64(st.RefreshValidPages) / float64(st.Refreshes)
		var reads, writes float64
		if st.IDARefreshes > 0 {
			reads = float64(st.IDAVerifyReads) / float64(st.IDARefreshes)
			writes = float64(st.IDACorruptedWrites) / float64(st.IDARefreshes)
		}
		t.Rows = append(t.Rows, []string{
			p.Name,
			fmt.Sprintf("%s / %d", f1(valid), pages),
			f1(reads),
			f1(writes),
		})
	}
	return t, nil
}

// Figure10 reproduces the storage throughput comparison: IDA-Coding-E20
// throughput normalized to the baseline (higher is better).
func Figure10(r *Runner) (*Table, error) {
	profiles := r.profiles()
	sys := idaflash.IDA(0.20)
	if err := r.RunAll(crossProduct(profiles, []idaflash.System{idaflash.Baseline(), sys})); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "F10",
		Title:  "Normalized storage throughput under IDA-Coding-E20 (higher is better)",
		Header: []string{"Name", "Baseline MB/s", "IDA-E20 MB/s", "Normalized"},
		Notes:  []string{"Paper: all workloads gain, ~10% on average."},
	}
	sum := 0.0
	for _, p := range profiles {
		base, err := r.Run(p, idaflash.Baseline())
		if err != nil {
			return nil, err
		}
		res, err := r.Run(p, sys)
		if err != nil {
			return nil, err
		}
		norm := ratio(res.ThroughputMBps, base.ThroughputMBps)
		sum += norm
		t.Rows = append(t.Rows, []string{p.Name, f1(base.ThroughputMBps), f1(res.ThroughputMBps), f2(norm)})
	}
	t.Rows = append(t.Rows, []string{"average", "", "", f2(sum / float64(len(profiles)))})
	return t, nil
}

// BlockUsage reproduces the Section III-C accounting: the in-use block
// growth the IDA coding causes, relative to the device and to the workload
// footprint.
func BlockUsage(r *Runner) (*Table, error) {
	profiles := r.profiles()
	sys := idaflash.IDA(0.20)
	if err := r.RunAll(crossProduct(profiles, []idaflash.System{idaflash.Baseline(), sys})); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "AUX",
		Title:  "In-use block growth under IDA-Coding-E20 (Section III-C)",
		Header: []string{"Name", "Base peak", "IDA peak", "Growth/device", "PeakIDA", "IDA share"},
		Notes: []string{
			"Paper: in-use blocks grow by 2-4% of the device (14-30% of the workload footprint) and do not grow unboundedly.",
			"The scaled device is only ~2x the footprint (the paper's 512 GB device is 5-25x its workloads), so growth relative to the device reads higher here.",
			"IDA share is the peak fraction of in-use blocks that are IDA-reprogrammed; bounded because every IDA block is reclaimed on its next refresh cycle.",
		},
	}
	for _, p := range profiles {
		base, err := r.Run(p, idaflash.Baseline())
		if err != nil {
			return nil, err
		}
		res, err := r.Run(p, sys)
		if err != nil {
			return nil, err
		}
		growthBlocks := float64(res.PeakInUse - base.PeakInUse)
		share := 0.0
		if res.PeakInUse > 0 {
			share = float64(res.PeakIDA) / float64(res.PeakInUse)
		}
		t.Rows = append(t.Rows, []string{
			p.Name,
			fmt.Sprintf("%d", base.PeakInUse),
			fmt.Sprintf("%d", res.PeakInUse),
			pct(growthBlocks / float64(res.Usage.Total)),
			fmt.Sprintf("%d", res.PeakIDA),
			pct(share),
		})
	}
	return t, nil
}

// ratio guards against division by zero.
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
