package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"idaflash"
	"idaflash/internal/workload"
)

// TestKeyStableUnderDefaultFilling: a sparse profile and its normalized
// (default-filled) form must share one key, so a client that names only the
// base workload fields hits the same cache line as the experiment harness
// that runs pre-normalized profiles.
func TestKeyStableUnderDefaultFilling(t *testing.T) {
	sparse := workload.Profile{Name: "sparse", ReadRatio: 0.7, MeanReadKB: 16, ReadDataRatio: 0.6, TargetInvalidMSB: 0.3}
	normalized, err := sparse.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if normalized == sparse {
		t.Fatal("Normalize filled nothing; the test no longer exercises default-filling")
	}
	sys := idaflash.IDA(0.2)
	k1, err := Key(sparse, sys)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key(normalized, sys)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("sparse and normalized profiles key differently:\n%s\n%s", k1, k2)
	}
}

// TestKeyStableUnderFieldReordering: the same system arriving as wire JSON
// with its fields in different orders keys identically — the struct
// round-trip canonicalizes member order before the key is built.
func TestKeyStableUnderFieldReordering(t *testing.T) {
	profile, err := workload.ProfileByName("usr_1", 5000)
	if err != nil {
		t.Fatal(err)
	}
	var sysA, sysB idaflash.System
	if err := json.Unmarshal([]byte(`{"IDA":true,"ErrorRate":0.2,"BitsPerCell":3,"Name":"IDA-E20"}`), &sysA); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(`{"Name":"IDA-E20","BitsPerCell":3,"ErrorRate":0.2,"IDA":true}`), &sysB); err != nil {
		t.Fatal(err)
	}
	kA, err := Key(profile, sysA)
	if err != nil {
		t.Fatal(err)
	}
	kB, err := Key(profile, sysB)
	if err != nil {
		t.Fatal(err)
	}
	if kA != kB {
		t.Errorf("reordered wire JSON keys differently:\n%s\n%s", kA, kB)
	}
}

// TestKeyDistinguishesConfigurations: the key must be lossless — any field
// that changes the simulation changes the key.
func TestKeyDistinguishesConfigurations(t *testing.T) {
	profile, err := workload.ProfileByName("usr_1", 5000)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for _, sys := range []idaflash.System{
		idaflash.Baseline(),
		idaflash.IDA(0.2),
		idaflash.IDA(0.21),
		{Name: "IDA-E20-randio", IDA: true, ErrorRate: 0.2, Coding: idaflash.CodingRandIO},
		{Name: "arr", Devices: 4},
	} {
		k, err := Key(profile, sys)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("systems %q and %q collide on one key", prev, sys.Name)
		}
		seen[k] = sys.Name
	}
}

// TestKeyToleratesInvalidProfiles: a profile that fails normalization is
// keyed in its raw form rather than rejected — memoization must not depend
// on validity (the run itself reports the real error), and the runner's
// singleflight relies on every (profile, system) pair being keyable.
func TestKeyToleratesInvalidProfiles(t *testing.T) {
	stubA := workload.Profile{Name: "stub-a", Requests: 10}
	stubB := workload.Profile{Name: "stub-b", Requests: 10}
	if _, err := stubA.Normalize(); err == nil {
		t.Fatal("stub normalized cleanly; the test no longer exercises the fallback")
	}
	sys := idaflash.System{Name: "S"}
	kA, err := Key(stubA, sys)
	if err != nil {
		t.Fatalf("invalid profile was rejected: %v", err)
	}
	kB, err := Key(stubB, sys)
	if err != nil {
		t.Fatalf("invalid profile was rejected: %v", err)
	}
	if kA == kB {
		t.Error("distinct invalid profiles collide on one key")
	}
}

// TestKeyCarriesVersion: the schema version is part of every key, so a
// KeyVersion bump re-addresses the whole store and stale disk entries read
// as misses.
func TestKeyCarriesVersion(t *testing.T) {
	profile, err := workload.ProfileByName("usr_1", 5000)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Key(profile, idaflash.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct{ V int }
	if err := json.Unmarshal([]byte(k), &decoded); err != nil {
		t.Fatalf("key is not JSON: %v", err)
	}
	if decoded.V != KeyVersion {
		t.Errorf("key carries version %d, want %d", decoded.V, KeyVersion)
	}
	if !strings.Contains(k, `"usr_1"`) {
		t.Errorf("key does not name its profile: %s", k)
	}
}

// TestSweepEnumeratesExperimentPoints: the named sweeps cover every (paper
// profile x system) pair their experiment counterparts run, with distinct
// keys per point.
func TestSweepEnumeratesExperimentPoints(t *testing.T) {
	cases := map[string]int{
		"figure8":     11 * (1 + 9), // baseline + 9 error rates
		"sensitivity": 11 * (2 * 5), // (baseline, ida) x 5 delta-tRs
		"cmp":         11 * 3,       // three registered codings
	}
	for name, want := range cases {
		points, err := Sweep(name, 5000)
		if err != nil {
			t.Fatal(err)
		}
		if len(points) != want {
			t.Errorf("sweep %s: %d points, want %d", name, len(points), want)
		}
		keys := map[string]bool{}
		for _, pt := range points {
			k, err := Key(pt.Profile, pt.System)
			if err != nil {
				t.Fatalf("sweep %s: %v", name, err)
			}
			if keys[k] {
				t.Errorf("sweep %s: duplicate point key %s", name, k)
			}
			keys[k] = true
		}
	}
	if _, err := Sweep("no-such-sweep", 5000); err == nil {
		t.Error("unknown sweep accepted")
	}
	names := SweepNames()
	if len(names) != 3 || names[0] != "cmp" {
		t.Errorf("SweepNames = %v", names)
	}
}
