package experiments

import (
	"fmt"
	"sort"

	"idaflash"
	"idaflash/internal/workload"
)

// Point is one (profile, system) simulation of a sweep — the unit the
// batch endpoint accepts, the farm shards across workers, and the result
// store keys (see Key).
type Point struct {
	Profile workload.Profile `json:"profile"`
	System  idaflash.System  `json:"system"`
}

// sweeps maps the named whole-experiment sweeps the batch API accepts onto
// their system lists. Each named sweep is exactly the point set its table
// counterpart runs, so a batch warm-up makes the corresponding experiment
// (Figure8, Figure9, CodingComparison) free.
var sweeps = map[string]func() []idaflash.System{
	"figure8": func() []idaflash.System {
		systems := []idaflash.System{idaflash.Baseline()}
		for _, e := range errorRates {
			systems = append(systems, idaflash.IDA(e))
		}
		return systems
	},
	"sensitivity": sensitivitySystems,
	"cmp":         codingLabSystems,
}

// SweepNames lists the named sweeps, sorted.
func SweepNames() []string {
	names := make([]string, 0, len(sweeps))
	for name := range sweeps {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Sweep enumerates a named experiment as its explicit point list: every
// paper profile (at the given request budget) crossed with the experiment's
// system set.
func Sweep(name string, requests int) ([]Point, error) {
	mk, ok := sweeps[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown sweep %q (known: %v)", name, SweepNames())
	}
	profiles := workload.PaperProfiles(requests)
	systems := mk()
	points := make([]Point, 0, len(profiles)*len(systems))
	for _, p := range profiles {
		for _, s := range systems {
			points = append(points, Point{Profile: p, System: s})
		}
	}
	return points, nil
}
