package experiments

import (
	"fmt"

	"idaflash"
	"idaflash/internal/ftl"
	"idaflash/internal/workload"
)

// invalidMSBFraction extracts, from a run's Figure 4 classification
// counters, the fraction of MSB reads whose associated lower pages were
// invalid.
func invalidMSBFraction(res idaflash.Results) float64 {
	msb := res.FTL.ReadsByClass[ftl.ReadMSBAllValid] + res.FTL.ReadsByClass[ftl.ReadMSBLowerInvalid]
	if msb == 0 {
		return 0
	}
	return float64(res.FTL.ReadsByClass[ftl.ReadMSBLowerInvalid]) / float64(msb)
}

// TableIII reproduces the workload characterization: for each of the
// eleven synthetic workloads, the generated trace's read request ratio,
// mean read size, and read data ratio, plus the simulated fraction of MSB
// reads with invalid lower pages — each against the paper's published
// value.
func TableIII(r *Runner) (*Table, error) {
	profiles := r.profiles()
	if err := r.RunAll(crossProduct(profiles, []idaflash.System{idaflash.Baseline()})); err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "T3",
		Title: "Workload characteristics (measured vs paper)",
		Header: []string{"Name", "ReadRatio", "paper", "ReadKB", "paper",
			"ReadData", "paper", "MSBInvalid", "paper"},
		Notes: []string{
			"Synthetic traces matched to MSR Cambridge statistics; MSBInvalid is measured on the baseline simulation.",
		},
	}
	for i, p := range profiles {
		tr, err := p.Generate()
		if err != nil {
			return nil, err
		}
		s := tr.Stats()
		res, err := r.Run(p, idaflash.Baseline())
		if err != nil {
			return nil, err
		}
		paper := workload.PaperTableIII[i]
		t.Rows = append(t.Rows, []string{
			p.Name,
			pct(s.ReadRatio), f1(paper.ReadRatioPct) + "%",
			f1(s.MeanReadKB), f1(paper.ReadSizeKB),
			pct(s.ReadDataRatio), f1(paper.ReadDataPct) + "%",
			pct(invalidMSBFraction(res)), f1(paper.InvalidMSBPct) + "%",
		})
	}
	return t, nil
}

// Figure4 reproduces the read-distribution breakdown for the eleven paper
// workloads plus the nine read-ratio-categorized extras: the share of LSB,
// CSB, and MSB reads, and within CSB/MSB the share whose associated lower
// pages are invalid.
func Figure4(r *Runner) (*Table, error) {
	profiles := append(r.profiles(), workload.ExtraProfiles(r.opts.Requests)...)
	if err := r.RunAll(crossProduct(profiles, []idaflash.System{idaflash.Baseline()})); err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "F4",
		Title: "Distribution of reads across page types and validity scenarios (baseline)",
		Header: []string{"Name", "LSB", "CSB(valid)", "CSB(inv)", "MSB(valid)", "MSB(inv)",
			"CSBinv/CSB", "MSBinv/MSB"},
		Notes: []string{
			"Paper averages: ~1/3 of reads per page type; 18% of CSB reads and 30% of MSB reads find lower pages invalid.",
		},
	}
	var avgCSB, avgMSB float64
	for _, p := range profiles {
		res, err := r.Run(p, idaflash.Baseline())
		if err != nil {
			return nil, err
		}
		c := res.FTL.ReadsByClass
		total := float64(c[ftl.ReadLSB] + c[ftl.ReadCSBAllValid] + c[ftl.ReadCSBLowerInvalid] +
			c[ftl.ReadMSBAllValid] + c[ftl.ReadMSBLowerInvalid])
		if total == 0 {
			return nil, fmt.Errorf("experiments: %s classified no reads", p.Name)
		}
		csb := float64(c[ftl.ReadCSBAllValid] + c[ftl.ReadCSBLowerInvalid])
		msb := float64(c[ftl.ReadMSBAllValid] + c[ftl.ReadMSBLowerInvalid])
		csbInv, msbInv := 0.0, 0.0
		if csb > 0 {
			csbInv = float64(c[ftl.ReadCSBLowerInvalid]) / csb
		}
		if msb > 0 {
			msbInv = float64(c[ftl.ReadMSBLowerInvalid]) / msb
		}
		avgCSB += csbInv
		avgMSB += msbInv
		t.Rows = append(t.Rows, []string{
			p.Name,
			pct(float64(c[ftl.ReadLSB]) / total),
			pct(float64(c[ftl.ReadCSBAllValid]) / total),
			pct(float64(c[ftl.ReadCSBLowerInvalid]) / total),
			pct(float64(c[ftl.ReadMSBAllValid]) / total),
			pct(float64(c[ftl.ReadMSBLowerInvalid]) / total),
			pct(csbInv),
			pct(msbInv),
		})
	}
	n := float64(len(profiles))
	t.Rows = append(t.Rows, []string{"average", "", "", "", "", "", pct(avgCSB / n), pct(avgMSB / n)})
	return t, nil
}
