package experiments

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"idaflash"
	"idaflash/internal/workload"
)

func TestKeyDistinguishesConfigs(t *testing.T) {
	// A valid profile: the canonical key normalizes (default-fills) the
	// profile before encoding, so it must pass Normalize.
	p := workload.Profile{Name: "p", ReadRatio: 0.5, MeanReadKB: 8,
		ReadDataRatio: 0.5, TargetInvalidMSB: 0.3, Requests: 1000}
	base := idaflash.IDA(0.20)
	cases := []struct {
		label string
		a, b  idaflash.System
		pa    workload.Profile
		pb    workload.Profile
	}{
		// Sub-permille error rates truncated to the same key before.
		{label: "error-rate", a: func() idaflash.System { s := base; s.ErrorRate = 0.2001; return s }(),
			b: func() idaflash.System { s := base; s.ErrorRate = 0.2002; return s }(), pa: p, pb: p},
		// Fields omitted from the old hand-rolled key entirely.
		{label: "tight-space", a: base, b: func() idaflash.System { s := base; s.TightSpace = true; return s }(), pa: p, pb: p},
		{label: "scheduler", a: base, b: func() idaflash.System { s := base; s.Scheduler = idaflash.SchedFIFO; return s }(), pa: p, pb: p},
		{label: "devices", a: base, b: func() idaflash.System { s := base; s.Devices = 4; return s }(), pa: p, pb: p},
		{label: "stripe", a: func() idaflash.System { s := base; s.Devices = 4; return s }(),
			b: func() idaflash.System { s := base; s.Devices = 4; s.StripeKB = 128; return s }(), pa: p, pb: p},
		// Profile fields beyond Name/Requests.
		{label: "zipf", a: base, b: base, pa: p,
			pb: func() workload.Profile { q := p; q.ReadZipf = 0.9; return q }()},
		{label: "footprint", a: base, b: base, pa: p,
			pb: func() workload.Profile { q := p; q.FootprintMB = 64; return q }()},
	}
	mustKey := func(p workload.Profile, s idaflash.System) string {
		k, err := key(p, s)
		if err != nil {
			t.Fatalf("key: %v", err)
		}
		return k
	}
	for _, c := range cases {
		if mustKey(c.pa, c.a) == mustKey(c.pb, c.b) {
			t.Errorf("%s: distinct configs share a cache key", c.label)
		}
	}
	// Identical inputs must still collide (that is the cache's point).
	if mustKey(p, base) != mustKey(p, base) {
		t.Error("identical configs produced different keys")
	}
}

func TestRunAllReportsAllFailures(t *testing.T) {
	r := NewRunner(Options{Requests: 100})
	bad1 := workload.Profile{Name: "bad-one", ReadRatio: 2, MeanReadKB: 8, Requests: 100}
	bad2 := workload.Profile{Name: "bad-two", ReadRatio: -1, MeanReadKB: 8, Requests: 100}
	err := r.RunAll([]pair{
		{profile: bad1, sys: idaflash.Baseline()},
		{profile: bad2, sys: idaflash.Baseline()},
	})
	if err == nil {
		t.Fatal("RunAll swallowed the failures")
	}
	msg := err.Error()
	if !strings.Contains(msg, "bad-one") || !strings.Contains(msg, "bad-two") {
		t.Errorf("joined error missing a failure: %q", msg)
	}
}

func TestRunAllNoErrorOnSuccess(t *testing.T) {
	r := runner(t)
	p, err := idaflash.ProfileByName("usr_1", r.Options().Requests)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunAll([]pair{{profile: p, sys: idaflash.Baseline()}}); err != nil {
		t.Fatal(err)
	}
}

// TestRunSingleflight is the dedup regression test: concurrent Run calls on
// one (profile, system) key must invoke the underlying simulation exactly
// once, with every caller sharing the one result. Before the singleflight
// entries, concurrent misses raced past the completed-only cache and each
// ran the full simulation.
func TestRunSingleflight(t *testing.T) {
	r := NewRunner(Options{Requests: 100, Parallel: 8})
	var invocations int32
	started := make(chan struct{})
	release := make(chan struct{})
	r.run = func(_ context.Context, p workload.Profile, sys idaflash.System) (idaflash.Results, error) {
		if atomic.AddInt32(&invocations, 1) == 1 {
			close(started)
		}
		<-release // hold the first run open so every other call sees it in flight
		return idaflash.Results{Trace: p.Name + "/" + sys.Name}, nil
	}

	p := workload.Profile{Name: "sf", Requests: 100}
	sys := idaflash.Baseline()
	const callers = 16
	results := make(chan idaflash.Results, callers)
	errs := make(chan error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := r.Run(p, sys)
			results <- res
			errs <- err
		}()
	}
	<-started // the first caller is inside the simulation...
	close(release)
	wg.Wait()
	close(results)
	close(errs)

	if n := atomic.LoadInt32(&invocations); n != 1 {
		t.Fatalf("simulation ran %d times for one key, want 1", n)
	}
	for err := range errs {
		if err != nil {
			t.Fatalf("Run returned error: %v", err)
		}
	}
	for res := range results {
		if res.Trace != "sf/"+sys.Name {
			t.Fatalf("caller got wrong shared result: %q", res.Trace)
		}
	}

	// A later call on the same key must also reuse the finished entry.
	if _, err := r.Run(p, sys); err != nil {
		t.Fatalf("cached re-run errored: %v", err)
	}
	if n := atomic.LoadInt32(&invocations); n != 1 {
		t.Fatalf("cache hit re-ran the simulation (%d invocations)", n)
	}
}
