package experiments

import (
	"strings"
	"testing"

	"idaflash"
	"idaflash/internal/workload"
)

func TestKeyDistinguishesConfigs(t *testing.T) {
	p := workload.Profile{Name: "p", Requests: 1000}
	base := idaflash.IDA(0.20)
	cases := []struct {
		label string
		a, b  idaflash.System
		pa    workload.Profile
		pb    workload.Profile
	}{
		// Sub-permille error rates truncated to the same key before.
		{label: "error-rate", a: func() idaflash.System { s := base; s.ErrorRate = 0.2001; return s }(),
			b: func() idaflash.System { s := base; s.ErrorRate = 0.2002; return s }(), pa: p, pb: p},
		// Fields omitted from the old hand-rolled key entirely.
		{label: "tight-space", a: base, b: func() idaflash.System { s := base; s.TightSpace = true; return s }(), pa: p, pb: p},
		{label: "scheduler", a: base, b: func() idaflash.System { s := base; s.Scheduler = idaflash.SchedFIFO; return s }(), pa: p, pb: p},
		{label: "devices", a: base, b: func() idaflash.System { s := base; s.Devices = 4; return s }(), pa: p, pb: p},
		{label: "stripe", a: func() idaflash.System { s := base; s.Devices = 4; return s }(),
			b: func() idaflash.System { s := base; s.Devices = 4; s.StripeKB = 128; return s }(), pa: p, pb: p},
		// Profile fields beyond Name/Requests.
		{label: "zipf", a: base, b: base, pa: p,
			pb: func() workload.Profile { q := p; q.ReadZipf = 0.9; return q }()},
		{label: "footprint", a: base, b: base, pa: p,
			pb: func() workload.Profile { q := p; q.FootprintMB = 64; return q }()},
	}
	for _, c := range cases {
		if key(c.pa, c.a) == key(c.pb, c.b) {
			t.Errorf("%s: distinct configs share a cache key", c.label)
		}
	}
	// Identical inputs must still collide (that is the cache's point).
	if key(p, base) != key(p, base) {
		t.Error("identical configs produced different keys")
	}
}

func TestRunAllReportsAllFailures(t *testing.T) {
	r := NewRunner(Options{Requests: 100})
	bad1 := workload.Profile{Name: "bad-one", ReadRatio: 2, MeanReadKB: 8, Requests: 100}
	bad2 := workload.Profile{Name: "bad-two", ReadRatio: -1, MeanReadKB: 8, Requests: 100}
	err := r.RunAll([]pair{
		{profile: bad1, sys: idaflash.Baseline()},
		{profile: bad2, sys: idaflash.Baseline()},
	})
	if err == nil {
		t.Fatal("RunAll swallowed the failures")
	}
	msg := err.Error()
	if !strings.Contains(msg, "bad-one") || !strings.Contains(msg, "bad-two") {
		t.Errorf("joined error missing a failure: %q", msg)
	}
}

func TestRunAllNoErrorOnSuccess(t *testing.T) {
	r := runner(t)
	p, err := idaflash.ProfileByName("usr_1", r.Options().Requests)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunAll([]pair{{profile: p, sys: idaflash.Baseline()}}); err != nil {
		t.Fatal(err)
	}
}
