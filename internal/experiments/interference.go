package experiments

import (
	"fmt"
	"sync"

	"idaflash"
	"idaflash/internal/workload"
)

// WriteInterference reproduces the Section III-C analysis: after a
// read-intensive phase on an IDA-coded device (which leaves IDA blocks
// alive that the baseline would have emptied), a write-intensive phase
// shares the same space. The paper reports that the follow-up phase's GC
// invocations and block erases rise by at most ~3% compared to a device
// that never used IDA, and that the overhead shrinks as IDA blocks are
// reclaimed.
func WriteInterference(r *Runner) (*Table, error) {
	names := []string{"proj_1", "usr_1", "src2_0"}
	t := &Table{
		ID:     "WRI",
		Title:  "Write-intensive follow-up after IDA use: extra GC paid to reclaim IDA blocks",
		Header: []string{"Name", "Base erases", "IDA erases", "Erase growth", "Base moves", "IDA moves", "Move growth"},
		Notes: []string{
			"Phase 2 is a 30%-read workload over the same footprint on a tight-space device (~30% headroom, approximating the paper's 15% over-provisioning); counters cover phase 2 only.",
			"Moves count every page relocation phase 2 performs (GC plus refresh). The IDA device moves fewer pages because its refresh keeps most pages in place, while its erase count matches the baseline exactly -- comfortably inside the paper's <=3% bound.",
			"Paper: GC invocations and erases rise by up to ~3% (a small toll for the 28% read gain), shrinking as IDA blocks are reclaimed.",
		},
	}

	type outcome struct {
		erases, moves [2]uint64
	}
	outcomes := make([]outcome, len(names))
	errCh := make(chan error, len(names)*2)
	var wg sync.WaitGroup
	for i, name := range names {
		p, err := workload.ProfileByName(name, r.opts.Requests)
		if err != nil {
			return nil, err
		}
		baseSys := idaflash.Baseline()
		baseSys.TightSpace = true
		idaSys := idaflash.IDA(0.20)
		idaSys.TightSpace = true
		for j, sys := range []idaflash.System{baseSys, idaSys} {
			i, j, p, sys := i, j, p, sys
			wg.Add(1)
			go func() {
				defer wg.Done()
				r.sem <- struct{}{}
				defer func() { <-r.sem }()
				follow := workload.Profile{
					Name:          p.Name + "-flush",
					ReadRatio:     0.30,
					MeanReadKB:    16,
					ReadDataRatio: 0.30,
					Requests:      r.opts.Requests / 2,
					Seed:          p.Seed + 7,
				}
				_, second, err := idaflash.RunWithFollowup(p, sys, follow)
				if err != nil {
					errCh <- fmt.Errorf("%s/%s: %w", p.Name, sys.Name, err)
					return
				}
				outcomes[i].erases[j] = second.FTL.Erases
				outcomes[i].moves[j] = second.FTL.GCMoves + second.FTL.RefreshMoves
			}()
		}
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, err
	}

	growth := func(base, ida uint64) string {
		if base == 0 {
			return "n/a"
		}
		return pct(float64(ida)/float64(base) - 1)
	}
	for i, name := range names {
		o := outcomes[i]
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", o.erases[0]),
			fmt.Sprintf("%d", o.erases[1]),
			growth(o.erases[0], o.erases[1]),
			fmt.Sprintf("%d", o.moves[0]),
			fmt.Sprintf("%d", o.moves[1]),
			growth(o.moves[0], o.moves[1]),
		})
	}
	return t, nil
}
