package experiments

import (
	"math"
	"testing"

	"idaflash"
	"idaflash/internal/workload"
)

// TestCalibration verifies the synthetic workloads land near their paper
// targets for the fraction of MSB reads with invalid lower pages — the
// statistic the whole IDA opportunity rests on (Table III, column 5).
func TestCalibration(t *testing.T) {
	r := NewRunner(Options{Requests: 20000})
	for i, p := range r.profiles() {
		res, err := r.Run(p, idaflash.Baseline())
		if err != nil {
			t.Fatal(err)
		}
		target := workload.PaperTableIII[i].InvalidMSBPct
		measured := invalidMSBFraction(res) * 100
		if math.Abs(measured-target) > 12 {
			t.Errorf("%s: invalid-MSB fraction %.1f%%, paper %.1f%% (want +-12 points)",
				p.Name, measured, target)
		}
	}
}
