package experiments

import (
	"fmt"

	"idaflash"
)

// codingLabSystems returns the IDA-E20 system for each registered coding
// scheme, named so rows and memo keys stay distinct.
func codingLabSystems() []idaflash.System {
	var systems []idaflash.System
	for _, name := range idaflash.CodingNames() {
		sys := idaflash.IDA(0.20)
		sys.Name = "IDA-E20-" + name
		sys.Coding = name
		systems = append(systems, sys)
	}
	return systems
}

// CodingComparison runs the coding lab head-to-head: the same IDA-E20
// refresh policy under each registered coding scheme (ida's Gray map,
// randio's balanced map, ilwc's biased-data Gray map), reporting the three
// axes the schemes trade against each other — read latency, P/E wear, and
// the program power proxy. The paper's IDA machinery is scheme-agnostic
// (Section III-B); this table shows what each alternative map buys and
// pays: randio flattens read latency by balancing per-page sensings, ilwc
// keeps Gray's latency but programs fewer, lower voltage cells.
func CodingComparison(r *Runner) (*Table, error) {
	profiles := r.profiles()
	systems := codingLabSystems()
	if err := r.RunAll(crossProduct(profiles, systems)); err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "CMP",
		Title: "Coding lab: read latency, wear, and program power per coding scheme (IDA-E20)",
		Notes: []string{
			"Read: mean read response in us. Wear: mean block erase count. Power: mean per-program power proxy (expected per-cell voltage levels charged).",
			"randio balances per-page sensings (TLC worst page 3 instead of Gray's 4); ilwc keeps Gray latency but biases programmed cells toward low states, cutting the power proxy.",
		},
	}
	t.Header = []string{"Name"}
	for _, sys := range systems {
		scheme := sys.Coding
		t.Header = append(t.Header,
			scheme+" read(us)", scheme+" wear", scheme+" power")
	}
	sums := make([]float64, 3*len(systems))
	for _, p := range profiles {
		row := []string{p.Name}
		for i, sys := range systems {
			res, err := r.Run(p, sys)
			if err != nil {
				return nil, err
			}
			read := res.MeanReadResponse.Seconds() * 1e6
			wear := res.Wear.MeanErase
			power := res.MeanProgramPower
			sums[3*i] += read
			sums[3*i+1] += wear
			sums[3*i+2] += power
			row = append(row, f1(read), f2(wear), f2(power))
			if res.Coding != sys.Coding {
				return nil, fmt.Errorf("experiments: system %s reported coding %q", sys.Name, res.Coding)
			}
		}
		t.Rows = append(t.Rows, row)
	}
	n := float64(len(profiles))
	avg := []string{"average"}
	for i := range systems {
		avg = append(avg, f1(sums[3*i]/n), f2(sums[3*i+1]/n), f2(sums[3*i+2]/n))
	}
	t.Rows = append(t.Rows, avg)
	return t, nil
}
