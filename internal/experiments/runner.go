// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) on the simulator: the workload characterization
// (Table III, Figure 4), the headline read-response comparison across
// voltage-adjustment error rates (Figure 8), the refresh overhead audit
// (Table IV), the delta-tR sensitivity sweep (Figure 9), throughput
// (Figure 10), the lifetime/read-retry study (Figure 11), the MLC device
// (Table V), and the QLC extension (Figure 6).
//
// Runs are memoized per (profile, system) pair, so experiments that share
// configurations (e.g. Figure 8 and Figure 10 both need Baseline and
// IDA-E20) reuse simulations, and independent simulations execute in
// parallel.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"idaflash"
	"idaflash/internal/workload"
)

// Options tunes the experiment harness.
type Options struct {
	// Requests is the per-trace request budget. Larger is smoother but
	// slower; the default (40000) reproduces the paper's shapes in
	// minutes on a laptop.
	Requests int
	// Parallel caps concurrent simulations; defaults to GOMAXPROCS.
	Parallel int
	// Progress, when non-nil, receives one line per finished run.
	Progress io.Writer
}

func (o Options) withDefaults() Options {
	if o.Requests == 0 {
		o.Requests = 40000
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	return o
}

// Runner memoizes simulation runs across experiments.
type Runner struct {
	opts Options

	mu    sync.Mutex
	cache map[string]cached
	sem   chan struct{}
}

type cached struct {
	res idaflash.Results
	err error
}

// NewRunner builds a runner.
func NewRunner(opts Options) *Runner {
	opts = opts.withDefaults()
	return &Runner{
		opts:  opts,
		cache: make(map[string]cached),
		sem:   make(chan struct{}, opts.Parallel),
	}
}

// Options returns the effective options.
func (r *Runner) Options() Options { return r.opts }

type pair struct {
	profile workload.Profile
	sys     idaflash.System
}

func key(p workload.Profile, sys idaflash.System) string {
	return fmt.Sprintf("%s|%s|%d|%v|%d|%v|%d|%v|%v", p.Name, sys.Name, p.Requests,
		sys.DeltaTR, sys.BitsPerCell, sys.Lifetime, int(sys.ErrorRate*1000),
		sys.OnlyInvalid, sys.FastAdjust) + fmt.Sprintf("|%v", sys.Vendor232)
}

// Run executes (or recalls) one simulation.
func (r *Runner) Run(p workload.Profile, sys idaflash.System) (idaflash.Results, error) {
	k := key(p, sys)
	r.mu.Lock()
	if c, ok := r.cache[k]; ok {
		r.mu.Unlock()
		return c.res, c.err
	}
	r.mu.Unlock()

	r.sem <- struct{}{}
	start := time.Now()
	res, err := idaflash.RunWorkload(p, sys)
	<-r.sem

	r.mu.Lock()
	r.cache[k] = cached{res: res, err: err}
	r.mu.Unlock()
	if r.opts.Progress != nil {
		fmt.Fprintf(r.opts.Progress, "ran %-8s %-12s in %v\n", p.Name, sys.Name, time.Since(start).Round(time.Millisecond))
	}
	return res, err
}

// RunAll warms the cache for all pairs concurrently and returns the first
// error, if any.
func (r *Runner) RunAll(pairs []pair) error {
	var wg sync.WaitGroup
	errCh := make(chan error, len(pairs))
	for _, pr := range pairs {
		pr := pr
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Run(pr.profile, pr.sys); err != nil {
				errCh <- fmt.Errorf("%s/%s: %w", pr.profile.Name, pr.sys.Name, err)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

// profiles returns the 11 paper workloads at the configured request budget.
func (r *Runner) profiles() []workload.Profile {
	return workload.PaperProfiles(r.opts.Requests)
}

// crossProduct builds the pair list of every profile with every system.
func crossProduct(ps []workload.Profile, systems []idaflash.System) []pair {
	out := make([]pair, 0, len(ps)*len(systems))
	for _, p := range ps {
		for _, s := range systems {
			out = append(out, pair{profile: p, sys: s})
		}
	}
	return out
}
