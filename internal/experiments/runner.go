// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) on the simulator: the workload characterization
// (Table III, Figure 4), the headline read-response comparison across
// voltage-adjustment error rates (Figure 8), the refresh overhead audit
// (Table IV), the delta-tR sensitivity sweep (Figure 9), throughput
// (Figure 10), the lifetime/read-retry study (Figure 11), the MLC device
// (Table V), and the QLC extension (Figure 6).
//
// Runs are memoized per (profile, system) pair, so experiments that share
// configurations (e.g. Figure 8 and Figure 10 both need Baseline and
// IDA-E20) reuse simulations, and independent simulations execute in
// parallel.
package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"idaflash"
	"idaflash/internal/workload"
)

// Options tunes the experiment harness.
type Options struct {
	// Requests is the per-trace request budget. Larger is smoother but
	// slower; the default (40000) reproduces the paper's shapes in
	// minutes on a laptop.
	Requests int
	// Parallel caps concurrent simulations; defaults to GOMAXPROCS.
	Parallel int
	// Progress, when non-nil, receives one line per finished run.
	Progress io.Writer
}

func (o Options) withDefaults() Options {
	if o.Requests == 0 {
		o.Requests = 40000
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	return o
}

// Runner memoizes simulation runs across experiments.
type Runner struct {
	opts Options
	// run executes one simulation; idaflash.RunWorkload in production,
	// replaced by tests counting actual invocations.
	run func(workload.Profile, idaflash.System) (idaflash.Results, error)

	mu    sync.Mutex
	cache map[string]*runEntry
	sem   chan struct{}
}

// runEntry is one key's simulation, completed or in flight. The entry is
// installed before the simulation starts and done is closed when it
// finishes, giving Run singleflight semantics: concurrent misses on the
// same key wait for the first goroutine's result instead of re-simulating.
type runEntry struct {
	done chan struct{}
	res  idaflash.Results
	err  error
}

// NewRunner builds a runner.
func NewRunner(opts Options) *Runner {
	opts = opts.withDefaults()
	return &Runner{
		opts:  opts,
		run:   idaflash.RunWorkload,
		cache: make(map[string]*runEntry),
		sem:   make(chan struct{}, opts.Parallel),
	}
}

// Options returns the effective options.
func (r *Runner) Options() Options { return r.opts }

type pair struct {
	profile workload.Profile
	sys     idaflash.System
}

// key encodes the full (Profile, System) pair so distinct configurations
// can never collide in the cache. Both structs contain only exported
// scalar fields, and encoding/json emits them in declaration order, so the
// encoding is deterministic and lossless (an earlier hand-rolled key
// truncated ErrorRate to a permille and silently omitted newer fields).
func key(p workload.Profile, sys idaflash.System) string {
	b, err := json.Marshal(struct {
		P workload.Profile
		S idaflash.System
	}{p, sys})
	if err != nil {
		// Both types are plain data; failure here is a programming error.
		panic(fmt.Sprintf("experiments: encoding cache key: %v", err))
	}
	return string(b)
}

// Run executes (or recalls) one simulation. Concurrent calls with the same
// key run the simulation once: the first caller executes it, later callers
// block on its completion and share the result.
func (r *Runner) Run(p workload.Profile, sys idaflash.System) (idaflash.Results, error) {
	k := key(p, sys)
	r.mu.Lock()
	if e, ok := r.cache[k]; ok {
		r.mu.Unlock()
		<-e.done
		return e.res, e.err
	}
	e := &runEntry{done: make(chan struct{})}
	r.cache[k] = e
	r.mu.Unlock()

	r.sem <- struct{}{}
	start := time.Now()
	e.res, e.err = r.run(p, sys)
	<-r.sem
	close(e.done)

	if r.opts.Progress != nil {
		fmt.Fprintf(r.opts.Progress, "ran %-8s %-12s in %v\n", p.Name, sys.Name, time.Since(start).Round(time.Millisecond))
	}
	return e.res, e.err
}

// RunAll warms the cache for all pairs concurrently. Every failing pair is
// reported, joined with errors.Join, so one bad configuration cannot mask
// the others.
func (r *Runner) RunAll(pairs []pair) error {
	var wg sync.WaitGroup
	errCh := make(chan error, len(pairs))
	for _, pr := range pairs {
		pr := pr
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Run(pr.profile, pr.sys); err != nil {
				errCh <- fmt.Errorf("%s/%s: %w", pr.profile.Name, pr.sys.Name, err)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	errs := make([]error, 0, len(errCh))
	for err := range errCh {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// profiles returns the 11 paper workloads at the configured request budget.
func (r *Runner) profiles() []workload.Profile {
	return workload.PaperProfiles(r.opts.Requests)
}

// crossProduct builds the pair list of every profile with every system.
func crossProduct(ps []workload.Profile, systems []idaflash.System) []pair {
	out := make([]pair, 0, len(ps)*len(systems))
	for _, p := range ps {
		for _, s := range systems {
			out = append(out, pair{profile: p, sys: s})
		}
	}
	return out
}
