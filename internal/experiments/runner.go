// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) on the simulator: the workload characterization
// (Table III, Figure 4), the headline read-response comparison across
// voltage-adjustment error rates (Figure 8), the refresh overhead audit
// (Table IV), the delta-tR sensitivity sweep (Figure 9), throughput
// (Figure 10), the lifetime/read-retry study (Figure 11), the MLC device
// (Table V), and the QLC extension (Figure 6).
//
// Runs are memoized per (profile, system) pair, so experiments that share
// configurations (e.g. Figure 8 and Figure 10 both need Baseline and
// IDA-E20) reuse simulations, and independent simulations execute in
// parallel.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"idaflash"
	"idaflash/internal/workload"
)

// Options tunes the experiment harness.
type Options struct {
	// Requests is the per-trace request budget. Larger is smoother but
	// slower; the default (40000) reproduces the paper's shapes in
	// minutes on a laptop.
	Requests int
	// Parallel caps concurrent simulations; defaults to GOMAXPROCS.
	Parallel int
	// Progress, when non-nil, receives one line per finished run.
	Progress io.Writer
}

func (o Options) withDefaults() Options {
	if o.Requests == 0 {
		o.Requests = 40000
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	return o
}

// Runner memoizes simulation runs across experiments.
type Runner struct {
	opts Options
	// run executes one simulation; idaflash.RunWorkloadContext in
	// production, replaced by tests counting actual invocations.
	run func(context.Context, workload.Profile, idaflash.System) (idaflash.Results, error)

	mu    sync.Mutex
	cache map[string]*runEntry
	sem   chan struct{}
}

// runEntry is one key's simulation, completed or in flight. The entry is
// installed before the simulation starts and done is closed when it
// finishes, giving Run singleflight semantics: concurrent misses on the
// same key wait for the first goroutine's result instead of re-simulating.
//
// purged marks an entry whose execution was cancelled: its result reflects
// the executing caller's context, not the key, so the entry is removed from
// the cache before done closes and waiters retry against a fresh entry.
// This is what keeps the memo cancellation-safe — a cancelled sweep can
// never leave a partial result behind for an identical rerun to recall.
type runEntry struct {
	done   chan struct{}
	res    idaflash.Results
	err    error
	purged bool
}

// NewRunner builds a runner.
func NewRunner(opts Options) *Runner {
	opts = opts.withDefaults()
	return &Runner{
		opts:  opts,
		run:   idaflash.RunWorkloadContext,
		cache: make(map[string]*runEntry),
		sem:   make(chan struct{}, opts.Parallel),
	}
}

// Options returns the effective options.
func (r *Runner) Options() Options { return r.opts }

type pair struct {
	profile workload.Profile
	sys     idaflash.System
}

// key is the canonical, versioned memo key (see Key): distinct
// configurations can never collide, and equivalent descriptions of one
// simulation — a sparse profile and its normalized form, wire JSON with
// reordered fields — share a single entry across every cache layer.
func key(p workload.Profile, sys idaflash.System) (string, error) {
	return Key(p, sys)
}

// Run executes (or recalls) one simulation. Concurrent calls with the same
// key run the simulation once: the first caller executes it, later callers
// block on its completion and share the result.
func (r *Runner) Run(p workload.Profile, sys idaflash.System) (idaflash.Results, error) {
	return r.RunContext(context.Background(), p, sys)
}

// RunContext is Run with cooperative cancellation. The singleflight memo
// stays consistent under cancellation: a run stopped by its caller's
// context is purged from the cache before its waiters wake, so they (and
// any later identical request) re-execute instead of inheriting a partial
// result, and a waiter whose own context ends stops waiting without
// disturbing the executing run.
func (r *Runner) RunContext(ctx context.Context, p workload.Profile, sys idaflash.System) (idaflash.Results, error) {
	k, kerr := key(p, sys)
	if kerr != nil {
		// Uncacheable is not unrunnable: execute without memoizing.
		return r.execute(ctx, p, sys)
	}
	for {
		r.mu.Lock()
		if e, ok := r.cache[k]; ok {
			r.mu.Unlock()
			select {
			case <-e.done:
				if e.purged {
					continue // the executor was cancelled; retry fresh
				}
				return e.res, e.err
			case <-ctx.Done():
				return idaflash.Results{}, ctx.Err()
			}
		}
		e := &runEntry{done: make(chan struct{})}
		r.cache[k] = e
		r.mu.Unlock()

		e.res, e.err = r.execute(ctx, p, sys)
		if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
			r.mu.Lock()
			delete(r.cache, k)
			r.mu.Unlock()
			e.purged = true // published to waiters by close(e.done)
		}
		close(e.done)
		return e.res, e.err
	}
}

// execute runs one simulation under the concurrency cap, skipping the queue
// wait when ctx ends first.
func (r *Runner) execute(ctx context.Context, p workload.Profile, sys idaflash.System) (idaflash.Results, error) {
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		return idaflash.Results{}, ctx.Err()
	}
	start := time.Now()
	res, err := r.run(ctx, p, sys)
	<-r.sem

	if r.opts.Progress != nil {
		fmt.Fprintf(r.opts.Progress, "ran %-8s %-12s in %v\n", p.Name, sys.Name, time.Since(start).Round(time.Millisecond))
	}
	return res, err
}

// RunAll warms the cache for all pairs concurrently. Every failing pair is
// reported, joined with errors.Join, so one bad configuration cannot mask
// the others.
func (r *Runner) RunAll(pairs []pair) error {
	var wg sync.WaitGroup
	errCh := make(chan error, len(pairs))
	for _, pr := range pairs {
		pr := pr
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Run(pr.profile, pr.sys); err != nil {
				errCh <- fmt.Errorf("%s/%s: %w", pr.profile.Name, pr.sys.Name, err)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	errs := make([]error, 0, len(errCh))
	for err := range errCh {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// profiles returns the 11 paper workloads at the configured request budget.
func (r *Runner) profiles() []workload.Profile {
	return workload.PaperProfiles(r.opts.Requests)
}

// crossProduct builds the pair list of every profile with every system.
func crossProduct(ps []workload.Profile, systems []idaflash.System) []pair {
	out := make([]pair, 0, len(ps)*len(systems))
	for _, p := range ps {
		for _, s := range systems {
			out = append(out, pair{profile: p, sys: s})
		}
	}
	return out
}
