package experiments

import (
	"idaflash"
)

// Vendor232 exercises the paper's generality claim (Section III-B): "our
// IDA coding is general, which can be combined with any coding scheme in
// any high bit density flash". It repeats the E20 comparison on the
// alternative vendor TLC coding whose LSB/CSB/MSB reads need 2/3/2
// sensings — a flatter layout with much less read variation. IDA still
// helps, in fact strongly: the flat coding has no 1-sensing page at all,
// so merged wordlines (readable with 1-2 sensings) beat every conventional
// page type.
func Vendor232(r *Runner) (*Table, error) {
	profiles := r.profiles()
	base := idaflash.Baseline()
	base.Name = "Baseline-232"
	base.Vendor232 = true
	ida := idaflash.IDA(0.20)
	ida.Name = "IDA-E20-232"
	ida.Vendor232 = true
	systems := []idaflash.System{
		idaflash.Baseline(), idaflash.IDA(0.20), // Gray, for comparison
		base, ida,
	}
	if err := r.RunAll(crossProduct(profiles, systems)); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "V232",
		Title:  "IDA-E20 on the vendor 2-3-2 TLC coding vs the standard Gray coding",
		Header: []string{"Name", "Gray (1/2/4)", "Vendor (2/3/2)"},
		Notes: []string{
			"Normalized read response time at E20, each against its own coding's baseline; lower is better.",
			"Section III-B motivates 2-3-2 by its low read variation; IDA still helps substantially there because the flat coding has no 1-sensing page at all, so merged wordlines (1-2 sensings) beat every conventional page type.",
		},
	}
	var sumG, sumV float64
	for _, p := range profiles {
		bg, err := r.Run(p, idaflash.Baseline())
		if err != nil {
			return nil, err
		}
		ig, err := r.Run(p, idaflash.IDA(0.20))
		if err != nil {
			return nil, err
		}
		bv, err := r.Run(p, base)
		if err != nil {
			return nil, err
		}
		iv, err := r.Run(p, ida)
		if err != nil {
			return nil, err
		}
		g := ratio(ig.MeanReadResponse.Seconds(), bg.MeanReadResponse.Seconds())
		v := ratio(iv.MeanReadResponse.Seconds(), bv.MeanReadResponse.Seconds())
		sumG += g
		sumV += v
		t.Rows = append(t.Rows, []string{p.Name, f2(g), f2(v)})
	}
	n := float64(len(profiles))
	t.Rows = append(t.Rows, []string{"average", f2(sumG / n), f2(sumV / n)})
	return t, nil
}
