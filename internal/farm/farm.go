// Package farm turns the experiment service into a simulation farm: a batch
// job manager that accepts whole sweeps (many (profile, system) points at
// once), shards their points across the server's bounded worker pool with
// round-robin fairness between jobs — a huge sweep cannot starve a small
// one — and streams per-point results to any number of subscribers, each of
// which may attach late and replay from an arbitrary event offset (the
// resume contract behind GET /v1/jobs/{id}).
//
// The manager owns no workers of its own. It competes for the same slot
// channel the single-run endpoint uses, so the server's admission story
// stays one pool with one cap, and it runs points through a caller-supplied
// Run function — in production the content-addressed result store, so a
// repeated batch is served from disk without re-simulating.
package farm

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"idaflash/internal/experiments"
)

// Run executes one sweep point, returning the canonical result payload and
// whether it was served from cache rather than simulated.
type Run func(ctx context.Context, pt experiments.Point) (payload json.RawMessage, cached bool, err error)

// Submission errors, mapped by the server onto 429/503.
var (
	// ErrBusy means the active-job cap is hit; retry later.
	ErrBusy = errors.New("farm: too many active jobs")
	// ErrDraining means the manager's parent context ended; no new jobs.
	ErrDraining = errors.New("farm: draining")
)

// Config wires a Manager into its host.
type Config struct {
	// Slots is the shared worker-slot channel (acquire by send, release by
	// receive). Required.
	Slots chan struct{}
	// Run executes one point. Required.
	Run Run
	// Parent bounds every job: when it ends, pending points cancel and new
	// submissions are refused. Required (the server passes its runs
	// context, so the drain deadline reaches batch work too).
	Parent context.Context
	// MaxJobs caps concurrently active (unfinished) jobs; defaults to 8.
	MaxJobs int
	// Retain bounds finished jobs kept for GET /v1/jobs/{id}; defaults to
	// 32, evicting oldest-finished first.
	Retain int
	// Classify maps a non-context run error onto a wire kind ("invariant",
	// "internal", ...); nil classifies everything as "internal".
	Classify func(error) string
	// Journal, when set, makes jobs durable: every submission writes a
	// write-ahead log (spec, point completions, terminal state) that
	// Recover replays after a restart. Nil keeps jobs process-local.
	Journal *Journal
}

func (c Config) withDefaults() Config {
	if c.MaxJobs <= 0 {
		c.MaxJobs = 8
	}
	if c.Retain <= 0 {
		c.Retain = 32
	}
	return c
}

// PointResult is one point's outcome, streamed to subscribers and embedded
// in job status. Results holds the canonical stored payload verbatim, so a
// cached replay of a batch is byte-identical to its cold run.
type PointResult struct {
	Index     int             `json:"index"`
	Profile   string          `json:"profile"`
	System    string          `json:"system"`
	Cached    bool            `json:"cached"`
	ElapsedMs int64           `json:"elapsed_ms"`
	Results   json.RawMessage `json:"results,omitempty"`
	Error     string          `json:"error,omitempty"`
	Kind      string          `json:"kind,omitempty"`
}

// Job states.
const (
	StateRunning = "running"
	// StateRecovering marks a job rebuilt from its journal after a restart:
	// already-recorded points were replayed into the event log and the rest
	// are running again. It behaves like StateRunning everywhere and
	// resolves to done/cancelled the same way.
	StateRecovering = "recovering"
	StateDone       = "done"
	StateCancelled  = "cancelled"
)

// terminalState reports whether a job has finished (as opposed to running
// or recovering).
func terminalState(s string) bool { return s == StateDone || s == StateCancelled }

// Status is a job snapshot: the poll body of GET /v1/jobs/{id} and the
// payload of a stream's terminal event.
type Status struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	Cancelled int    `json:"cancelled"`
	CacheHits int    `json:"cache_hits"`
	// NextEvent is the offset to resume streaming from (the number of
	// point events emitted so far).
	NextEvent int           `json:"next_event"`
	Points    []PointResult `json:"points,omitempty"`
	// Recovered marks a job that survived a server restart via its journal.
	Recovered bool `json:"recovered,omitempty"`
}

// Event is one streamed message: exactly one of Point (a point finished) or
// Done (the job reached a terminal state; always the last event).
type Event struct {
	Point *PointResult `json:"point,omitempty"`
	Done  *Status      `json:"done,omitempty"`
}

// Job is one submitted batch. All state is guarded by the manager's mutex.
type Job struct {
	ID string

	m      *Manager
	ctx    context.Context
	cancel context.CancelFunc

	points  []experiments.Point
	timeout time.Duration // per-point deadline (0 = none)

	pending   []int // point indices not yet dispatched, in order
	running   int   // dispatched, result not yet recorded
	state     string
	events    []Event        // point events in completion order (replay log)
	results   []*PointResult // by point index, for Status(points)
	completed int
	failed    int
	cancelled int
	cacheHits int
	subs      []chan Event
	finishSeq uint64 // retention order among finished jobs
	doneCh    chan struct{}

	log       *JobLog // write-ahead log; nil when the manager has no journal
	recovered bool    // rebuilt from the journal after a restart
}

// SubmitOptions tune one job.
type SubmitOptions struct {
	// PointTimeout bounds each point's run (0 = only the job/parent
	// lifetime bounds it).
	PointTimeout time.Duration
}

// Gauges are the manager's instantaneous load numbers, exported at /statz.
type Gauges struct {
	ActiveJobs   int64 `json:"active_jobs"`
	QueuedPoints int64 `json:"queued_points"`
	// Recovered counts jobs rebuilt from the journal since startup.
	Recovered int64 `json:"recovered"`
}

// Manager owns the jobs and the single dispatcher goroutine.
type Manager struct {
	cfg Config

	mu        sync.Mutex
	jobs      map[string]*Job
	rr        []*Job // jobs with pending points, round-robin order
	cursor    int
	nextID    uint64
	finishSeq uint64
	active    int // unfinished jobs

	queued     atomic.Int64
	recoveredN atomic.Int64
	kick       chan struct{}
}

// New starts a manager and its dispatcher. The dispatcher exits after
// cfg.Parent ends and every queued point has been flushed.
func New(cfg Config) *Manager {
	m := &Manager{
		cfg:  cfg.withDefaults(),
		jobs: make(map[string]*Job),
		kick: make(chan struct{}, 1),
	}
	go m.dispatch()
	return m
}

// Gauges snapshots the load numbers.
func (m *Manager) Gauges() Gauges {
	m.mu.Lock()
	active := m.active
	m.mu.Unlock()
	return Gauges{ActiveJobs: int64(active), QueuedPoints: m.queued.Load(),
		Recovered: m.recoveredN.Load()}
}

// Submit enqueues one job over the given points. The job starts immediately
// (its points enter the round-robin rotation) and outlives the submitting
// request: streaming clients that disconnect may cancel it explicitly, poll
// clients pick it up again via Get.
func (m *Manager) Submit(points []experiments.Point, opts SubmitOptions) (*Job, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("farm: empty batch")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg.Parent.Err() != nil {
		return nil, ErrDraining
	}
	if m.active >= m.cfg.MaxJobs {
		return nil, ErrBusy
	}
	m.nextID++
	ctx, cancel := context.WithCancel(m.cfg.Parent)
	j := &Job{
		ID:      fmt.Sprintf("j%d", m.nextID),
		m:       m,
		ctx:     ctx,
		cancel:  cancel,
		points:  points,
		timeout: opts.PointTimeout,
		state:   StateRunning,
		results: make([]*PointResult, len(points)),
		doneCh:  make(chan struct{}),
	}
	j.pending = make([]int, len(points))
	for i := range points {
		j.pending[i] = i
	}
	if m.cfg.Journal != nil {
		// Fail soft: a job whose journal cannot be created still runs, it
		// just dies with the process like a pre-journal job would.
		log, err := m.cfg.Journal.Create(j.ID, JobSpec{
			Points:         points,
			PointTimeoutMs: opts.PointTimeout.Milliseconds(),
		})
		if err != nil {
			m.cfg.Journal.logf("farm: job %s not journaled: %v", j.ID, err)
		} else {
			j.log = log
		}
	}
	m.jobs[j.ID] = j
	m.rr = append(m.rr, j)
	m.active++
	m.queued.Add(int64(len(points)))
	m.wake()
	return j, nil
}

// Get returns a job by ID, or nil when unknown (never submitted, or evicted
// from the finished-job retention window).
func (m *Manager) Get(id string) *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// wake nudges the dispatcher without blocking.
func (m *Manager) wake() {
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

// next pops the next pending point, rotating fairly across jobs: each pick
// advances to the following job, so a 100-point job and a 2-point job
// alternate instead of queueing behind each other.
func (m *Manager) next() (*Job, int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.rr) == 0 {
		return nil, 0, false
	}
	if m.cursor >= len(m.rr) {
		m.cursor = 0
	}
	j := m.rr[m.cursor]
	idx := j.pending[0]
	j.pending = j.pending[1:]
	if len(j.pending) == 0 {
		m.rr = append(m.rr[:m.cursor], m.rr[m.cursor+1:]...)
	} else {
		m.cursor++
	}
	j.running++
	m.queued.Add(-1)
	return j, idx, true
}

// dispatch is the manager's only long-lived goroutine. It acquires a shared
// worker slot BEFORE choosing a point, so the round-robin pick happens at
// the moment work can actually start — choosing first and then waiting
// would run the rotation one point ahead and let a job sneak two
// consecutive points past a late-arriving peer.
func (m *Manager) dispatch() {
	for {
		if !m.waitPending() {
			return
		}
		select {
		case m.cfg.Slots <- struct{}{}:
		case <-m.cfg.Parent.Done():
			// Every job context is a child of Parent: flush the whole
			// queue as cancelled rather than waiting for slots.
			m.mu.Lock()
			for len(m.rr) > 0 {
				m.flushLocked(m.rr[0])
			}
			m.mu.Unlock()
			continue
		}
		j, idx, ok := m.next()
		if !ok {
			// The queue emptied (a cancel flushed it) while we waited.
			<-m.cfg.Slots
			continue
		}
		if j.ctx.Err() != nil {
			// Cancelled between the pick and here: record without running.
			<-m.cfg.Slots
			m.finishPoint(j, m.cancelledResult(j, idx))
			m.mu.Lock()
			m.flushLocked(j)
			m.mu.Unlock()
			continue
		}
		go m.runPoint(j, idx)
	}
}

// waitPending blocks until a point is queued; false means the parent ended
// with nothing queued — and since submissions are refused after that, the
// dispatcher's work is done.
func (m *Manager) waitPending() bool {
	for {
		m.mu.Lock()
		n := len(m.rr)
		m.mu.Unlock()
		if n > 0 {
			return true
		}
		select {
		case <-m.kick:
		case <-m.cfg.Parent.Done():
			m.mu.Lock()
			n := len(m.rr)
			m.mu.Unlock()
			return n > 0
		}
	}
}

// runPoint executes one point on an acquired slot. The slot release must
// not depend on Run's no-panic contract — a leaked slot would wedge the
// shared pool for the whole server — so it sits in a defer alongside a
// recover that records the panic as the point's failure.
func (m *Manager) runPoint(j *Job, idx int) {
	pt := j.points[idx]
	pr := PointResult{Index: idx, Profile: pt.Profile.Name, System: pt.System.Name}
	start := time.Now()
	defer func() {
		<-m.cfg.Slots
		if v := recover(); v != nil {
			pr.Error = fmt.Sprintf("panic: %v", v)
			pr.Kind = "internal"
			pr.ElapsedMs = time.Since(start).Milliseconds()
		}
		m.finishPoint(j, pr)
	}()

	ctx := j.ctx
	if j.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.timeout)
		defer cancel()
	}
	payload, cached, err := m.cfg.Run(ctx, pt)
	pr.ElapsedMs = time.Since(start).Milliseconds()
	switch {
	case err == nil:
		pr.Results = payload
		pr.Cached = cached
	case errors.Is(err, context.DeadlineExceeded):
		pr.Error = "point exceeded its deadline"
		pr.Kind = "deadline"
	case errors.Is(err, context.Canceled):
		pr.Error = "point cancelled"
		pr.Kind = "cancelled"
	default:
		pr.Error = err.Error()
		pr.Kind = "internal"
		if m.cfg.Classify != nil {
			pr.Kind = m.cfg.Classify(err)
		}
	}
}

// cancelledResult builds the record for a point flushed without running.
func (m *Manager) cancelledResult(j *Job, idx int) PointResult {
	pt := j.points[idx]
	return PointResult{Index: idx, Profile: pt.Profile.Name, System: pt.System.Name,
		Error: "point cancelled", Kind: "cancelled"}
}

// finishPoint records a dispatched point's outcome.
func (m *Manager) finishPoint(j *Job, pr PointResult) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.running--
	m.recordLocked(j, pr)
}

// flushLocked records every still-pending point of a cancelled job and
// removes it from the rotation, so cancellation never waits on — or
// consumes — worker slots. Caller holds m.mu; j's context must be done.
func (m *Manager) flushLocked(j *Job) {
	if len(j.pending) == 0 {
		return
	}
	for i, other := range m.rr {
		if other == j {
			m.rr = append(m.rr[:i], m.rr[i+1:]...)
			if i < m.cursor {
				m.cursor--
			}
			break
		}
	}
	m.queued.Add(-int64(len(j.pending)))
	pending := j.pending
	j.pending = nil
	for _, idx := range pending {
		m.recordLocked(j, m.cancelledResult(j, idx))
	}
}

// recordLocked appends one point's result to the job's event log, fans it
// out, and finishes the job when it was the last. Caller holds m.mu.
func (m *Manager) recordLocked(j *Job, pr PointResult) {
	j.results[pr.Index] = &pr
	switch pr.Kind {
	case "":
		j.completed++
		if pr.Cached {
			j.cacheHits++
		}
	case "cancelled", "deadline":
		j.cancelled++
	default:
		j.failed++
	}
	// Journal before fan-out: once a subscriber has seen event N, a
	// restarted server must be able to replay events 0..N, so the fsynced
	// append happens strictly before the event leaves the process.
	j.log.Point(pr)
	ev := Event{Point: &pr}
	j.events = append(j.events, ev)
	for _, ch := range j.subs {
		ch <- ev // buffered to total+1; never blocks
	}
	if j.running == 0 && len(j.pending) == 0 && len(j.events) == len(j.points) {
		m.finishLocked(j)
	}
}

// finishLocked moves a job to its terminal state: emits the Done event,
// closes every subscriber, releases the job's context, and evicts the
// oldest finished jobs beyond the retention window.
func (m *Manager) finishLocked(j *Job) {
	j.state = StateDone
	if j.ctx.Err() != nil || j.cancelled > 0 {
		j.state = StateCancelled
	}
	j.log.State(j.state)
	j.log.Close()
	done := j.statusLocked(false)
	for _, ch := range j.subs {
		ch <- Event{Done: &done}
		close(ch)
	}
	j.subs = nil
	j.cancel()
	close(j.doneCh)
	m.active--
	m.finishSeq++
	j.finishSeq = m.finishSeq

	finished := 0
	var oldest *Job
	for _, other := range m.jobs {
		if !terminalState(other.state) {
			continue
		}
		finished++
		if oldest == nil || other.finishSeq < oldest.finishSeq {
			oldest = other
		}
	}
	if finished > m.cfg.Retain && oldest != nil {
		delete(m.jobs, oldest.ID)
		m.cfg.Journal.Remove(oldest.ID)
	}
}

// Cancel stops the job: running points see their context end (the engine
// stops within its polling bounds), and queued points are flushed as
// cancelled immediately, without waiting on or consuming worker slots.
func (j *Job) Cancel() {
	j.cancel()
	j.m.mu.Lock()
	j.m.flushLocked(j)
	j.m.mu.Unlock()
}

// Done closes when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// Status snapshots the job; withPoints includes every recorded point (the
// poll body), withPoints=false just the counters (the stream terminal
// event).
func (j *Job) Status(withPoints bool) Status {
	j.m.mu.Lock()
	defer j.m.mu.Unlock()
	return j.statusLocked(withPoints)
}

func (j *Job) statusLocked(withPoints bool) Status {
	st := Status{
		ID:        j.ID,
		State:     j.state,
		Total:     len(j.points),
		Completed: j.completed,
		Failed:    j.failed,
		Cancelled: j.cancelled,
		CacheHits: j.cacheHits,
		NextEvent: len(j.events),
		Recovered: j.recovered,
	}
	if withPoints {
		for _, pr := range j.results {
			if pr != nil {
				st.Points = append(st.Points, *pr)
			}
		}
	}
	return st
}

// Subscribe attaches a stream starting at event offset from (0 replays the
// whole job; Status().NextEvent resumes after what a previous stream
// delivered). The channel is buffered for the job's full event volume, so
// the manager never blocks on a slow subscriber, and it closes after the
// terminal Done event. The returned stop function detaches early (a
// disconnected client) and closes the channel, so a reader ranging over it
// terminates; it is safe to call after the channel closed.
func (j *Job) Subscribe(from int) (<-chan Event, func()) {
	m := j.m
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan Event, len(j.points)+1)
	if from < 0 {
		from = 0
	}
	if from > len(j.events) {
		from = len(j.events)
	}
	for _, ev := range j.events[from:] {
		ch <- ev
	}
	if terminalState(j.state) {
		done := j.statusLocked(false)
		ch <- Event{Done: &done}
		close(ch)
		return ch, func() {}
	}
	j.subs = append(j.subs, ch)
	stop := func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		for i, sub := range j.subs {
			if sub == ch {
				// Sends and closes both happen under m.mu and only to
				// channels still in subs, so removing first makes this
				// close exactly-once: a finished job already closed the
				// channel and cleared the list, and this branch is skipped.
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				close(ch)
				return
			}
		}
	}
	return ch, stop
}
