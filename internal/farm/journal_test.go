package farm

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"idaflash/internal/experiments"
)

// journal builds a Journal over a temp dir.
func journal(t *testing.T) *Journal {
	t.Helper()
	jn, err := OpenJournal(filepath.Join(t.TempDir(), "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	return jn
}

// writeJournal authors a journal file directly: spec, the given completion
// records, and optionally a terminal state — the on-disk shape a crashed
// server leaves behind.
func writeJournal(t *testing.T, jn *Journal, id string, spec JobSpec, points []PointResult, terminal string) {
	t.Helper()
	l, err := jn.Create(id, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range points {
		l.Point(pr)
	}
	if terminal != "" {
		l.State(terminal)
	}
	l.Close()
}

func okPoint(idx int) PointResult {
	return PointResult{Index: idx, Profile: fmt.Sprintf("p%d", idx), System: "sys",
		Results: json.RawMessage(fmt.Sprintf(`{"i":%d}`, idx))}
}

func TestJournalRoundTrip(t *testing.T) {
	jn := journal(t)
	spec := JobSpec{Points: testPoints("a", 4), PointTimeoutMs: 1500}
	writeJournal(t, jn, "j3", spec, []PointResult{okPoint(2), okPoint(0)}, "")

	recs, maxID := jn.Scan()
	if len(recs) != 1 || maxID != 3 {
		t.Fatalf("Scan: %d jobs, maxID %d; want 1, 3", len(recs), maxID)
	}
	r := recs[0]
	r.Log.Close()
	if r.ID != "j3" || len(r.Spec.Points) != 4 || r.Spec.PointTimeoutMs != 1500 {
		t.Fatalf("recovered %q spec %+v", r.ID, r.Spec)
	}
	if r.Spec.Points[1].Profile.Name != "a-p1" {
		t.Errorf("point 1 profile %q", r.Spec.Points[1].Profile.Name)
	}
	if len(r.Completions) != 2 || r.Completions[0].Index != 2 || r.Completions[1].Index != 0 {
		t.Fatalf("completions %+v", r.Completions)
	}
	if string(r.Completions[0].Results) != `{"i":2}` {
		t.Errorf("payload %s", r.Completions[0].Results)
	}
}

func TestScanRemovesTerminalAndKeepsMaxID(t *testing.T) {
	jn := journal(t)
	writeJournal(t, jn, "j7", JobSpec{Points: testPoints("a", 1)}, []PointResult{okPoint(0)}, StateDone)
	recs, maxID := jn.Scan()
	if len(recs) != 0 {
		t.Fatalf("recovered %d jobs from a terminal journal", len(recs))
	}
	if maxID != 7 {
		t.Errorf("maxID %d, want 7 (terminal IDs must not be reissued)", maxID)
	}
	if _, err := os.Stat(jn.path("j7")); !os.IsNotExist(err) {
		t.Errorf("terminal journal not removed: %v", err)
	}
}

// TestScanTruncationAtEveryBoundary cuts a three-record journal at every
// byte length and asserts Scan never panics, never invents records, and
// recovers exactly the completions whose records survived intact.
func TestScanTruncationAtEveryBoundary(t *testing.T) {
	ref := journal(t)
	writeJournal(t, ref, "j1", JobSpec{Points: testPoints("a", 3)},
		[]PointResult{okPoint(0), okPoint(1)}, "")
	whole, err := os.ReadFile(ref.path("j1"))
	if err != nil {
		t.Fatal(err)
	}
	// Locate the record boundaries by re-parsing prefixes: a cut is "at a
	// boundary" when parsing the prefix loses nothing.
	full := parseJournal(whole)
	if !full.specOK || len(full.points) != 2 {
		t.Fatalf("reference journal did not parse: %+v", full)
	}
	for cut := 0; cut <= len(whole); cut++ {
		jn := journal(t)
		if err := os.WriteFile(jn.path("j1"), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, _ := jn.Scan()
		for _, r := range recs {
			r.Log.Close()
		}
		want := parseJournal(whole[:cut])
		if !want.specOK {
			if len(recs) != 0 {
				t.Fatalf("cut %d: recovered a job from a spec-less prefix", cut)
			}
			if _, err := os.Stat(jn.path("j1")); !os.IsNotExist(err) {
				t.Fatalf("cut %d: unrecoverable journal not removed", cut)
			}
			continue
		}
		if len(recs) != 1 {
			t.Fatalf("cut %d: recovered %d jobs, want 1", cut, len(recs))
		}
		if got := len(recs[0].Completions); got != len(want.points) {
			t.Fatalf("cut %d: %d completions, want %d", cut, got, len(want.points))
		}
		// The torn tail must be gone: the file ends at the valid prefix.
		fi, err := os.Stat(jn.path("j1"))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != want.valid {
			t.Errorf("cut %d: file %d bytes after scan, want %d", cut, fi.Size(), want.valid)
		}
	}
}

// TestScanBitFlips flips every byte of a journal in turn; recovery must
// never panic and never trust a record the flip touched.
func TestScanBitFlips(t *testing.T) {
	ref := journal(t)
	writeJournal(t, ref, "j1", JobSpec{Points: testPoints("a", 3)},
		[]PointResult{okPoint(0), okPoint(1)}, "")
	whole, err := os.ReadFile(ref.path("j1"))
	if err != nil {
		t.Fatal(err)
	}
	full := parseJournal(whole)
	for pos := 0; pos < len(whole); pos++ {
		mut := append([]byte(nil), whole...)
		mut[pos] ^= 0x40
		c := parseJournal(mut)
		// A flip can only shorten what parses — never add records — and the
		// valid prefix must stop at or before the flipped byte's record.
		if len(c.points) > len(full.points) || c.valid > int64(len(whole)) {
			t.Fatalf("pos %d: parse grew: %+v", pos, c)
		}
		jn := journal(t)
		if err := os.WriteFile(jn.path("j1"), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, _ := jn.Scan()
		for _, r := range recs {
			r.Log.Close()
		}
		if len(recs) > 1 {
			t.Fatalf("pos %d: %d jobs", pos, len(recs))
		}
	}
}

func TestParseJournalGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, []byte("x"), []byte("IDAJRNL\x00"), make([]byte, 64)} {
		c := parseJournal(b)
		if c.specOK || len(c.points) != 0 {
			t.Errorf("parsed %q: %+v", b, c)
		}
	}
}

// recoverManager builds a journaled manager, letting the test drive Submit
// or Recover against the same directory across "restarts".
func recoverManager(t *testing.T, jn *Journal, slots int, run Run) *Manager {
	t.Helper()
	return manager(t, slots, run, func(c *Config) { c.Journal = jn })
}

func TestRecoverRunsOnlyMissingPoints(t *testing.T) {
	jn := journal(t)
	// The "crashed" server completed points 1 and 3 of five.
	writeJournal(t, jn, "j2", JobSpec{Points: testPoints("a", 5)},
		[]PointResult{okPoint(1), okPoint(3)}, "")

	var ran int32
	var ranNames []string
	runs := make(chan string, 8)
	m := recoverManager(t, jn, 2, func(_ context.Context, pt experiments.Point) (json.RawMessage, bool, error) {
		atomic.AddInt32(&ran, 1)
		runs <- pt.Profile.Name
		return json.RawMessage(`{"fresh":true}`), true, nil
	})
	jobs := m.Recover()
	if len(jobs) != 1 {
		t.Fatalf("recovered %d jobs", len(jobs))
	}
	j := jobs[0]
	if j.ID != "j2" {
		t.Errorf("recovered ID %q", j.ID)
	}
	if st := j.Status(false); st.State != StateRecovering || !st.Recovered || st.NextEvent != 2 {
		t.Fatalf("recovered status %+v", st)
	}
	if g := m.Gauges(); g.Recovered != 1 {
		t.Errorf("gauges %+v", g)
	}

	// A subscriber resuming from its pre-crash offset sees exactly the
	// missing points, then Done — contiguous, no gaps, no duplicates.
	ch, _ := j.Subscribe(2)
	points, done := drain(ch)
	if len(points) != 3 {
		t.Fatalf("resumed stream delivered %d events, want 3", len(points))
	}
	if done == nil || done.State != StateDone || done.Completed != 5 {
		t.Fatalf("terminal %+v", done)
	}
	if n := atomic.LoadInt32(&ran); n != 3 {
		t.Fatalf("ran %d points, want 3 (completed points must not re-run)", n)
	}
	close(runs)
	for name := range runs {
		ranNames = append(ranNames, name)
	}
	for _, name := range ranNames {
		if name == "a-p1" || name == "a-p3" {
			t.Errorf("journaled point %s was re-run", name)
		}
	}

	// A full replay from zero serves the journaled payloads verbatim.
	ch2, _ := j.Subscribe(0)
	all, _ := drain(ch2)
	if len(all) != 5 {
		t.Fatalf("full replay delivered %d events", len(all))
	}
	if string(all[0].Results) != `{"i":1}` || string(all[1].Results) != `{"i":3}` {
		t.Errorf("journaled payloads not replayed verbatim: %s, %s", all[0].Results, all[1].Results)
	}

	// Finishing must have journaled the terminal state: a second restart
	// finds nothing to recover.
	recs, maxID := jn.Scan()
	if len(recs) != 0 || maxID != 2 {
		t.Errorf("after finish: %d recoverable jobs, maxID %d", len(recs), maxID)
	}
}

func TestRecoverFullyCompletedJobFinishesImmediately(t *testing.T) {
	jn := journal(t)
	// Every point recorded, terminal record missing: the crash landed
	// between the last completion and the state write.
	writeJournal(t, jn, "j1", JobSpec{Points: testPoints("a", 2)},
		[]PointResult{okPoint(0), okPoint(1)}, "")
	m := recoverManager(t, jn, 1, func(_ context.Context, _ experiments.Point) (json.RawMessage, bool, error) {
		t.Error("no point should run")
		return nil, false, nil
	})
	jobs := m.Recover()
	if len(jobs) != 1 {
		t.Fatalf("recovered %d jobs", len(jobs))
	}
	select {
	case <-jobs[0].Done():
	case <-time.After(2 * time.Second):
		t.Fatal("fully-completed job did not finish at recovery")
	}
	if st := jobs[0].Status(false); st.State != StateDone || st.Completed != 2 {
		t.Errorf("status %+v", st)
	}
}

func TestRecoverAdvancesJobIDs(t *testing.T) {
	jn := journal(t)
	writeJournal(t, jn, "j9", JobSpec{Points: testPoints("a", 1)}, nil, "")
	m := recoverManager(t, jn, 1, okRun("x"))
	jobs := m.Recover()
	if len(jobs) != 1 {
		t.Fatalf("recovered %d jobs", len(jobs))
	}
	<-jobs[0].Done()
	j, err := m.Submit(testPoints("b", 1), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "j10" {
		t.Errorf("post-recovery submission got ID %q, want j10", j.ID)
	}
	<-j.Done()
}

// TestRecoveredSubscribersDoNotLeak attaches subscribers to a recovered job
// and detaches one early; the manager-cleanup goroutine check in manager()
// catches any leak.
func TestRecoveredSubscribersDoNotLeak(t *testing.T) {
	jn := journal(t)
	writeJournal(t, jn, "j1", JobSpec{Points: testPoints("a", 4)},
		[]PointResult{okPoint(0)}, "")
	block := make(chan struct{})
	m := recoverManager(t, jn, 1, func(ctx context.Context, _ experiments.Point) (json.RawMessage, bool, error) {
		select {
		case <-block:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		return json.RawMessage(`{}`), false, nil
	})
	jobs := m.Recover()
	if len(jobs) != 1 {
		t.Fatal("no job recovered")
	}
	j := jobs[0]
	ch1, stop1 := j.Subscribe(0)
	ch2, _ := j.Subscribe(1)
	// Detach the first subscriber mid-job (a disconnected client).
	stop1()
	go func() {
		for range ch1 {
		}
	}()
	close(block)
	points, done := drain(ch2)
	if done == nil || done.State != StateDone {
		t.Fatalf("terminal %+v", done)
	}
	if len(points) != 3 {
		t.Errorf("subscriber from offset 1 got %d events, want 3", len(points))
	}
	// manager()'s cleanup asserts the goroutine count settles.
}

func TestSubmitJournalsAndFinishCleansUp(t *testing.T) {
	jn := journal(t)
	m := recoverManager(t, jn, 2, okRun("x"))
	j, err := m.Submit(testPoints("a", 3), SubmitOptions{PointTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	// The journal now carries a terminal record: a restart has nothing to
	// resume and removes the file.
	recs, maxID := jn.Scan()
	if len(recs) != 0 {
		t.Fatalf("finished job still recoverable: %d", len(recs))
	}
	if maxID != 1 {
		t.Errorf("maxID %d", maxID)
	}
}
