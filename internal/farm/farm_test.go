package farm

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"idaflash"
	"idaflash/internal/experiments"
	"idaflash/internal/workload"
)

// testPoints builds n distinguishable points; the fake runs never validate
// them, so sparse profiles are fine.
func testPoints(job string, n int) []experiments.Point {
	pts := make([]experiments.Point, n)
	for i := range pts {
		pts[i] = experiments.Point{
			Profile: workload.Profile{Name: fmt.Sprintf("%s-p%d", job, i)},
			System:  idaflash.System{Name: "sys"},
		}
	}
	return pts
}

// manager builds a Manager over a fresh slot pool and cancels it at test
// end, waiting for the dispatcher to exit so goroutine accounting between
// tests stays clean.
func manager(t *testing.T, slots int, run Run, tweak func(*Config)) *Manager {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{
		Slots:  make(chan struct{}, slots),
		Run:    run,
		Parent: ctx,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	m := New(cfg)
	t.Cleanup(func() {
		cancel()
		waitGoroutines(t)
	})
	return m
}

// waitGoroutines polls until the goroutine count settles back to the
// pre-suite ballpark, failing the test on a leak.
func waitGoroutines(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= baselineGoroutines+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Errorf("goroutines did not settle: %d running, baseline %d\n%s", n, baselineGoroutines, buf)
}

var baselineGoroutines = runtime.NumGoroutine()

// drain collects every event until the channel closes.
func drain(ch <-chan Event) (points []PointResult, done *Status) {
	for ev := range ch {
		if ev.Point != nil {
			points = append(points, *ev.Point)
		}
		if ev.Done != nil {
			done = ev.Done
		}
	}
	return points, done
}

func okRun(payload string) Run {
	return func(_ context.Context, pt experiments.Point) (json.RawMessage, bool, error) {
		return json.RawMessage(fmt.Sprintf(`{"p":%q,"v":%q}`, pt.Profile.Name, payload)), false, nil
	}
}

func TestBatchRunsEveryPointAndFinishes(t *testing.T) {
	m := manager(t, 2, okRun("x"), nil)
	j, err := m.Submit(testPoints("a", 5), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := j.Subscribe(0)
	points, done := drain(ch)
	if len(points) != 5 {
		t.Fatalf("streamed %d point events, want 5", len(points))
	}
	if done == nil || done.State != StateDone || done.Completed != 5 || done.Failed+done.Cancelled != 0 {
		t.Fatalf("terminal status %+v", done)
	}
	seen := map[int]bool{}
	for _, pr := range points {
		if pr.Error != "" {
			t.Errorf("point %d failed: %s", pr.Index, pr.Error)
		}
		seen[pr.Index] = true
	}
	if len(seen) != 5 {
		t.Errorf("duplicate point indices in stream: %v", seen)
	}
	st := j.Status(true)
	if len(st.Points) != 5 || st.NextEvent != 5 {
		t.Errorf("status %+v", st)
	}
	if g := m.Gauges(); g.ActiveJobs != 0 || g.QueuedPoints != 0 {
		t.Errorf("gauges after finish: %+v", g)
	}
}

// TestRoundRobinFairness: with one slot and two jobs, dispatch alternates
// between the jobs instead of finishing the first submission first.
func TestRoundRobinFairness(t *testing.T) {
	var mu sync.Mutex
	var order []string
	gate := make(chan struct{}) // each receive releases one run
	run := func(_ context.Context, pt experiments.Point) (json.RawMessage, bool, error) {
		mu.Lock()
		order = append(order, pt.Profile.Name)
		mu.Unlock()
		<-gate
		return json.RawMessage(`{}`), false, nil
	}
	m := manager(t, 1, run, nil)
	ja, err := m.Submit(testPoints("a", 3), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until a's first point holds the slot, then submit b: every
	// remaining pick must alternate a, b, a, b...
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(order) == 1 })
	jb, err := m.Submit(testPoints("b", 3), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		gate <- struct{}{}
	}
	<-ja.Done()
	<-jb.Done()
	mu.Lock()
	defer mu.Unlock()
	want := []string{"a-p0", "b-p0", "a-p1", "b-p1", "a-p2", "b-p2"}
	if len(order) != len(want) {
		t.Fatalf("ran %d points, want %d (%v)", len(order), len(want), order)
	}
	for i, name := range want {
		if order[i] != name {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never held")
}

// TestCancelFlushesPendingWithoutSlots: cancelling a job releases its
// running point via context and records the queued remainder as cancelled
// without consuming worker slots — the pool stays free for other jobs.
func TestCancelFlushesPendingWithoutSlots(t *testing.T) {
	started := make(chan struct{}, 16)
	run := func(ctx context.Context, _ experiments.Point) (json.RawMessage, bool, error) {
		started <- struct{}{}
		<-ctx.Done() // hold the slot until cancelled
		return nil, false, ctx.Err()
	}
	m := manager(t, 1, run, nil)
	j, err := m.Submit(testPoints("a", 4), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := j.Subscribe(0)
	<-started // first point occupies the only slot
	j.Cancel()
	points, done := drain(ch)
	if done == nil || done.State != StateCancelled {
		t.Fatalf("terminal status %+v", done)
	}
	if len(points) != 4 || done.Cancelled != 4 {
		t.Fatalf("recorded %d points, %d cancelled; want 4 and 4", len(points), done.Cancelled)
	}
	if len(started) != 0 {
		t.Errorf("%d extra points started after cancel", len(started))
	}
	// The slot pool must be fully released: a fresh job still runs.
	j2, err := m.Submit(testPoints("b", 1), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j2.Cancel()
	<-j2.Done()
}

// TestSubscribeResume: a late subscriber with a Status-provided offset sees
// only the events a first stream missed, and a subscriber to a finished job
// gets an immediate terminal event.
func TestSubscribeResume(t *testing.T) {
	release := make(chan struct{})
	run := func(_ context.Context, _ experiments.Point) (json.RawMessage, bool, error) {
		<-release
		return json.RawMessage(`{"ok":true}`), false, nil
	}
	m := manager(t, 1, run, nil)
	j, err := m.Submit(testPoints("a", 3), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	release <- struct{}{}
	waitFor(t, func() bool { return j.Status(false).NextEvent == 1 })

	st := j.Status(false)
	ch, _ := j.Subscribe(st.NextEvent)
	release <- struct{}{}
	release <- struct{}{}
	points, done := drain(ch)
	if len(points) != 2 {
		t.Fatalf("resumed stream delivered %d events, want 2", len(points))
	}
	if done == nil || done.State != StateDone || done.Completed != 3 {
		t.Fatalf("terminal status %+v", done)
	}

	late, _ := j.Subscribe(j.Status(false).NextEvent)
	points, done = drain(late)
	if len(points) != 0 || done == nil || done.State != StateDone {
		t.Fatalf("post-finish subscription: %d events, done %+v", len(points), done)
	}
	full, _ := j.Subscribe(0)
	points, _ = drain(full)
	if len(points) != 3 {
		t.Fatalf("full replay delivered %d events, want 3", len(points))
	}
}

// TestDetachedSubscriberDoesNotStallJob: a subscriber that stops reading
// and detaches leaves the job to finish for everyone else.
func TestDetachedSubscriberDoesNotStallJob(t *testing.T) {
	m := manager(t, 2, okRun("x"), nil)
	j, err := m.Submit(testPoints("a", 6), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ch, stop := j.Subscribe(0)
	stop() // reader never drains ch
	_ = ch
	other, _ := j.Subscribe(0)
	points, done := drain(other)
	if len(points) != 6 || done == nil || done.State != StateDone {
		t.Fatalf("surviving stream: %d events, done %+v", len(points), done)
	}
}

func TestSubmitLimitsAndErrors(t *testing.T) {
	release := make(chan struct{})
	run := func(_ context.Context, _ experiments.Point) (json.RawMessage, bool, error) {
		<-release
		return json.RawMessage(`{}`), false, nil
	}
	m := manager(t, 1, run, func(c *Config) { c.MaxJobs = 1 })
	if _, err := m.Submit(nil, SubmitOptions{}); err == nil {
		t.Error("empty batch accepted")
	}
	j, err := m.Submit(testPoints("a", 1), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(testPoints("b", 1), SubmitOptions{}); !errors.Is(err, ErrBusy) {
		t.Errorf("over-cap submit: %v, want ErrBusy", err)
	}
	close(release)
	<-j.Done()
	if _, err := m.Submit(testPoints("c", 1), SubmitOptions{}); err != nil {
		t.Errorf("submit after finish: %v", err)
	}
}

func TestSubmitAfterParentEndsIsRefused(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := New(Config{Slots: make(chan struct{}, 1), Run: okRun("x"), Parent: ctx})
	cancel()
	if _, err := m.Submit(testPoints("a", 1), SubmitOptions{}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after parent end: %v, want ErrDraining", err)
	}
	waitGoroutines(t)
}

// TestFailedPointsAreRecordedAndClassified: run errors become per-point
// failures with the classifier's kind; the job still completes.
func TestFailedPointsAreRecordedAndClassified(t *testing.T) {
	boom := errors.New("boom")
	run := func(_ context.Context, pt experiments.Point) (json.RawMessage, bool, error) {
		if pt.Profile.Name == "a-p1" {
			return nil, false, boom
		}
		return json.RawMessage(`{}`), false, nil
	}
	m := manager(t, 2, run, func(c *Config) {
		c.Classify = func(error) string { return "invariant" }
	})
	j, err := m.Submit(testPoints("a", 3), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := j.Subscribe(0)
	points, done := drain(ch)
	if done.State != StateDone || done.Completed != 2 || done.Failed != 1 {
		t.Fatalf("terminal status %+v", done)
	}
	for _, pr := range points {
		if pr.Index == 1 && (pr.Kind != "invariant" || pr.Error != "boom") {
			t.Errorf("failed point classified as %q (%q)", pr.Kind, pr.Error)
		}
	}
}

// TestRetentionEvictsOldestFinished: finished jobs stay resolvable up to
// the retention bound, then the oldest drops to a miss.
func TestRetentionEvictsOldestFinished(t *testing.T) {
	m := manager(t, 2, okRun("x"), func(c *Config) { c.Retain = 2 })
	var ids []string
	for i := 0; i < 3; i++ {
		j, err := m.Submit(testPoints(fmt.Sprintf("j%d", i), 1), SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		<-j.Done()
		ids = append(ids, j.ID)
	}
	if m.Get(ids[0]) != nil {
		t.Error("oldest finished job not evicted")
	}
	if m.Get(ids[1]) == nil || m.Get(ids[2]) == nil {
		t.Error("retained jobs evicted")
	}
}

// TestCachedPointsCounted: the cached flag from Run lands on the event and
// the job's CacheHits counter.
func TestCachedPointsCounted(t *testing.T) {
	run := func(_ context.Context, _ experiments.Point) (json.RawMessage, bool, error) {
		return json.RawMessage(`{}`), true, nil
	}
	m := manager(t, 2, run, nil)
	j, err := m.Submit(testPoints("a", 3), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := j.Subscribe(0)
	points, done := drain(ch)
	if done.CacheHits != 3 {
		t.Errorf("cache hits %d, want 3", done.CacheHits)
	}
	for _, pr := range points {
		if !pr.Cached {
			t.Errorf("point %d not marked cached", pr.Index)
		}
	}
}

// TestPointTimeout: a per-point deadline bounds each run without killing
// the job.
func TestPointTimeout(t *testing.T) {
	run := func(ctx context.Context, pt experiments.Point) (json.RawMessage, bool, error) {
		if pt.Profile.Name == "a-p0" {
			<-ctx.Done()
			return nil, false, ctx.Err()
		}
		return json.RawMessage(`{}`), false, nil
	}
	m := manager(t, 2, run, nil)
	j, err := m.Submit(testPoints("a", 2), SubmitOptions{PointTimeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := j.Subscribe(0)
	points, done := drain(ch)
	if done.Completed != 1 || done.Cancelled != 1 {
		t.Fatalf("terminal status %+v", done)
	}
	for _, pr := range points {
		if pr.Index == 0 && pr.Kind != "deadline" {
			t.Errorf("timed-out point classified as %q", pr.Kind)
		}
	}
}
