package farm

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"idaflash/internal/experiments"
	"idaflash/internal/results"
)

// The job journal is the farm's write-ahead log: one file per job under
// <store-dir>/jobs, recording the job's spec, every point completion, and
// the terminal state, in the order the event log emitted them. It follows
// the same codec discipline as internal/snapshot — magic, version,
// length-prefixed records, CRC64-ECMA — so a torn tail or a flipped bit is
// detected, truncated away, and recovery resumes from the last good record
// instead of panicking or trusting garbage.
//
// File layout:
//
//	header  = magic "IDAJRNL\x00" | version u32 LE
//	record  = kind u8 | len u32 LE | payload | crc u64 LE
//	crc     = CRC64-ECMA over kind byte + payload
//
// Record kinds: spec (JSON JobSpec, always first), point (JSON PointResult,
// one per completion, in event-log order), state (raw terminal state
// string, always last). Every append is fsynced before the manager fans the
// event out to subscribers, so a client's resume offset can never run ahead
// of what a restarted server can replay: after a crash, a subscriber's
// `from` is at most the journal's record count — duplicates are possible,
// gaps are not.

// JournalVersion is bumped on any incompatible layout change; a mismatched
// journal is discarded (fail soft to a fresh job), never misread.
const JournalVersion = 1

var journalMagic = [8]byte{'I', 'D', 'A', 'J', 'R', 'N', 'L', 0}

const (
	recSpec  byte = 1
	recPoint byte = 2
	recState byte = 3
)

// maxRecordLen bounds a single record payload; anything larger is corrupt
// length bytes, not data (the biggest real payloads are point results, a
// few KB of canonical JSON).
const maxRecordLen = 64 << 20

var crcTable = crc64.MakeTable(crc64.ECMA)

// JobSpec is the journal's replayable description of a submitted job.
type JobSpec struct {
	Points         []experiments.Point `json:"points"`
	PointTimeoutMs int64               `json:"point_timeout_ms,omitempty"`
}

// Journal owns the per-job log directory. All failure modes are soft: a
// journal that cannot be written stops being written (the job still runs,
// it just won't survive a crash), and a journal that cannot be parsed is
// removed.
type Journal struct {
	dir string
	// Logf receives fail-soft diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// OpenJournal opens (creating if needed) the journal directory — by
// convention <store-dir>/jobs.
func OpenJournal(dir string) (*Journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("farm: empty journal directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("farm: %w", err)
	}
	return &Journal{dir: dir}, nil
}

// Dir returns the journal directory.
func (jn *Journal) Dir() string { return jn.dir }

func (jn *Journal) logf(format string, args ...any) {
	if jn != nil && jn.Logf != nil {
		jn.Logf(format, args...)
	}
}

func (jn *Journal) path(id string) string {
	return filepath.Join(jn.dir, id+".jrnl")
}

// Create starts a job's log: header plus spec record, fsynced (file and
// directory) before returning, so a job that was acknowledged to a client
// is recoverable from that moment on.
func (jn *Journal) Create(id string, spec JobSpec) (*JobLog, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("farm: encoding job spec: %w", err)
	}
	f, err := os.OpenFile(jn.path(id), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("farm: creating journal: %w", err)
	}
	var hdr [12]byte
	copy(hdr[:8], journalMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], JournalVersion)
	_, err = f.Write(hdr[:])
	if err == nil {
		_, err = f.Write(encodeRecord(recSpec, payload))
	}
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		_ = f.Close()
		_ = os.Remove(jn.path(id))
		return nil, fmt.Errorf("farm: writing journal: %w", err)
	}
	if err := results.SyncDir(jn.dir); err != nil {
		jn.logf("farm: syncing journal dir: %v", err)
	}
	return &JobLog{f: f, path: jn.path(id), logf: jn.logf}, nil
}

// Remove deletes a job's log (the job was evicted from retention, or its
// journal proved unrecoverable).
func (jn *Journal) Remove(id string) {
	if jn == nil {
		return
	}
	_ = os.Remove(jn.path(id))
}

// JobLog is one job's open journal file. Appends are serialized and
// fsynced; the first write error marks the log broken and silences it — the
// job keeps running, it just loses crash durability.
type JobLog struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	broken bool
	logf   func(format string, args ...any)
}

func (l *JobLog) append(kind byte, payload []byte) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken || l.f == nil {
		return
	}
	_, err := l.f.Write(encodeRecord(kind, payload))
	if err == nil {
		err = l.f.Sync()
	}
	if err != nil {
		l.broken = true
		if l.logf != nil {
			l.logf("farm: journal %s broken, job loses crash durability: %v", filepath.Base(l.path), err)
		}
	}
}

// Point appends one completion record.
func (l *JobLog) Point(pr PointResult) {
	payload, err := json.Marshal(pr)
	if err != nil {
		return
	}
	l.append(recPoint, payload)
}

// State appends the terminal state record.
func (l *JobLog) State(state string) { l.append(recState, []byte(state)) }

// Close closes the underlying file.
func (l *JobLog) Close() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		_ = l.f.Close()
		l.f = nil
	}
}

func encodeRecord(kind byte, payload []byte) []byte {
	buf := make([]byte, 0, 1+4+len(payload)+8)
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	h := crc64.New(crcTable)
	_, _ = h.Write([]byte{kind})
	_, _ = h.Write(payload)
	return binary.LittleEndian.AppendUint64(buf, h.Sum64())
}

// journalContent is a parsed journal prefix: everything up to the first
// malformed byte.
type journalContent struct {
	spec     JobSpec
	specOK   bool
	points   []PointResult // in journal (= event log) order
	terminal string        // "" while the job was still unfinished
	valid    int64         // byte length of the well-formed prefix
}

// parseJournal walks records until the first torn, corrupt, or nonsensical
// one, keeping everything before it. It never panics on arbitrary bytes.
func parseJournal(b []byte) journalContent {
	var c journalContent
	if len(b) < 12 || [8]byte(b[:8]) != journalMagic ||
		binary.LittleEndian.Uint32(b[8:12]) != JournalVersion {
		return c
	}
	off := int64(12)
	c.valid = off
	seen := make(map[int]bool)
	for {
		rest := b[off:]
		if len(rest) < 5 {
			return c // torn or clean EOF
		}
		kind := rest[0]
		n := int64(binary.LittleEndian.Uint32(rest[1:5]))
		if n > maxRecordLen || int64(len(rest)) < 5+n+8 {
			return c // corrupt length or torn tail
		}
		payload := rest[5 : 5+n]
		h := crc64.New(crcTable)
		_, _ = h.Write([]byte{kind})
		_, _ = h.Write(payload)
		if binary.LittleEndian.Uint64(rest[5+n:5+n+8]) != h.Sum64() {
			return c // flipped bits
		}
		switch {
		case kind == recSpec && !c.specOK && len(c.points) == 0:
			var spec JobSpec
			if json.Unmarshal(payload, &spec) != nil || len(spec.Points) == 0 {
				return c
			}
			c.spec, c.specOK = spec, true
		case kind == recPoint && c.specOK && c.terminal == "":
			var pr PointResult
			if json.Unmarshal(payload, &pr) != nil {
				return c
			}
			if pr.Index < 0 || pr.Index >= len(c.spec.Points) || seen[pr.Index] {
				return c // index out of range or double-recorded: distrust the rest
			}
			seen[pr.Index] = true
			c.points = append(c.points, pr)
		case kind == recState && c.specOK && c.terminal == "":
			c.terminal = string(payload)
		default:
			return c // spec repeated, record after terminal, unknown kind...
		}
		off += 5 + n + 8
		c.valid = off
	}
}

// RecoveredJob is one unfinished job reconstructed from its journal: spec,
// the completions already recorded, and the reopened log ready for appends.
type RecoveredJob struct {
	ID          string
	Spec        JobSpec
	Completions []PointResult
	Log         *JobLog
}

// Scan reads every journal in the directory. Unfinished jobs come back as
// RecoveredJobs (their files truncated to the well-formed prefix and
// reopened for append); terminal and unrecoverable journals are removed.
// maxID is the highest numeric job ID seen — including removed ones — so
// the manager never reissues an ID a client may still hold. All errors are
// soft: a journal that cannot be read is skipped, never fatal.
func (jn *Journal) Scan() (recovered []RecoveredJob, maxID uint64) {
	entries, err := os.ReadDir(jn.dir)
	if err != nil {
		jn.logf("farm: scanning journals: %v", err)
		return nil, 0
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".jrnl") {
			continue
		}
		id := strings.TrimSuffix(name, ".jrnl")
		if n, ok := parseJobID(id); ok && n > maxID {
			maxID = n
		}
		b, err := os.ReadFile(jn.path(id))
		if err != nil {
			jn.logf("farm: reading journal %s: %v", name, err)
			continue
		}
		c := parseJournal(b)
		if !c.specOK || c.terminal != "" {
			// Finished, or too corrupt to trust: either way there is nothing
			// to resume. Fail soft to no job.
			if c.specOK {
				jn.Remove(id)
			} else {
				jn.logf("farm: journal %s unrecoverable, removing", name)
				jn.Remove(id)
			}
			continue
		}
		if int64(len(b)) > c.valid {
			// Torn tail: drop it so future appends extend a clean log.
			if err := os.Truncate(jn.path(id), c.valid); err != nil {
				jn.logf("farm: truncating journal %s: %v", name, err)
				jn.Remove(id)
				continue
			}
			jn.logf("farm: journal %s truncated %d -> %d bytes", name, len(b), c.valid)
		}
		f, err := os.OpenFile(jn.path(id), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			jn.logf("farm: reopening journal %s: %v", name, err)
			jn.Remove(id)
			continue
		}
		recovered = append(recovered, RecoveredJob{
			ID:          id,
			Spec:        c.spec,
			Completions: c.points,
			Log:         &JobLog{f: f, path: jn.path(id), logf: jn.logf},
		})
	}
	// Deterministic recovery order (ReadDir is sorted, but numeric IDs
	// should recover in submission order: j2 before j10).
	sort.Slice(recovered, func(i, j int) bool {
		a, _ := parseJobID(recovered[i].ID)
		b, _ := parseJobID(recovered[j].ID)
		return a < b
	})
	return recovered, maxID
}

// parseJobID extracts the numeric part of a "jN" job ID.
func parseJobID(id string) (uint64, bool) {
	if len(id) < 2 || id[0] != 'j' {
		return 0, false
	}
	n, err := strconv.ParseUint(id[1:], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Recover rebuilds every unfinished journaled job: journaled completions
// replay into the event log (so a subscriber's pre-crash resume offset
// lands inside it), the remaining points re-enter the dispatch rotation,
// and the job keeps its original ID in state "recovering" until it
// finishes. Points whose results are already in the content-addressed store
// cost a disk read, not a simulation. Call once, after the result store's
// disk tier is attached and before serving traffic.
func (m *Manager) Recover() []*Job {
	if m.cfg.Journal == nil {
		return nil
	}
	recs, maxID := m.cfg.Journal.Scan()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.nextID < maxID {
		m.nextID = maxID
	}
	var out []*Job
	for _, rec := range recs {
		if _, exists := m.jobs[rec.ID]; exists {
			rec.Log.Close()
			continue
		}
		ctx, cancel := context.WithCancel(m.cfg.Parent)
		j := &Job{
			ID:        rec.ID,
			m:         m,
			ctx:       ctx,
			cancel:    cancel,
			points:    rec.Spec.Points,
			timeout:   time.Duration(rec.Spec.PointTimeoutMs) * time.Millisecond,
			state:     StateRecovering,
			recovered: true,
			results:   make([]*PointResult, len(rec.Spec.Points)),
			doneCh:    make(chan struct{}),
			log:       rec.Log,
		}
		for _, pr := range rec.Completions {
			pr := pr
			j.results[pr.Index] = &pr
			switch pr.Kind {
			case "":
				j.completed++
				if pr.Cached {
					j.cacheHits++
				}
			case "cancelled", "deadline":
				j.cancelled++
			default:
				j.failed++
			}
			j.events = append(j.events, Event{Point: &pr})
		}
		for i := range j.points {
			if j.results[i] == nil {
				j.pending = append(j.pending, i)
			}
		}
		m.jobs[j.ID] = j
		m.active++
		m.recoveredN.Add(1)
		out = append(out, j)
		if len(j.pending) == 0 {
			// Every point was recorded but the terminal record is missing
			// (the crash landed between the last point and the state write):
			// finish now, durably this time.
			m.finishLocked(j)
			continue
		}
		m.rr = append(m.rr, j)
		m.queued.Add(int64(len(j.pending)))
	}
	if len(out) > 0 {
		m.wake()
	}
	return out
}
