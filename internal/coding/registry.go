package coding

import (
	"fmt"
	"sort"
)

// Registry names of the built-in codes. These are the values accepted by the
// idasim -coding flag and the server's "coding" request field.
const (
	// CodeIDA is the paper's coding: binary-reflected Gray state map
	// (or the vendor 2-3-2 TLC variant) with the IDA merge rules.
	CodeIDA = "ida"
	// CodeRandIO is Sharon/Alrod random-I/O coding (arXiv 1202.6481):
	// a state map whose per-bit transition counts are balanced so no
	// page pays the full 2^(b-1) sensings of the Gray MSB.
	CodeRandIO = "randio"
	// CodeILWC is inverted limited-weight coding (arXiv 1907.02622):
	// the Gray map fed bit-biased data so fewer cells leave the erased
	// state, trading nothing in latency for lower program power.
	CodeILWC = "ilwc"
)

// DefaultCode is the code used when none is requested.
const DefaultCode = CodeIDA

// Constructor builds a code for a given bits-per-cell geometry.
type Constructor func(bits int) (Code, error)

var registry = map[string]Constructor{
	CodeIDA: func(bits int) (Code, error) { return NewGray(bits), nil },
	CodeRandIO: func(bits int) (Code, error) {
		if bits > 4 {
			return nil, fmt.Errorf("coding: code %q supports 1..4 bits/cell, got %d", CodeRandIO, bits)
		}
		return NewRandIO(bits), nil
	},
	CodeILWC: func(bits int) (Code, error) { return NewILWC(bits), nil },
}

// Register adds a named code constructor. It panics on a duplicate name so
// collisions surface at init time rather than silently shadowing a code.
func Register(name string, ctor Constructor) {
	if name == "" || ctor == nil {
		panic("coding: Register with empty name or nil constructor")
	}
	if _, ok := registry[name]; ok {
		panic(fmt.Sprintf("coding: code %q registered twice", name))
	}
	registry[name] = ctor
}

// New builds the named code for the given bits-per-cell. The name must be
// registered and the bits must be in the code's supported range.
func New(name string, bits int) (Code, error) {
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("coding: unknown code %q (known: %v)", name, Names())
	}
	if bits < 1 || bits > 8 {
		return nil, fmt.Errorf("coding: code %q needs bits in [1,8], got %d", name, bits)
	}
	return ctor(bits)
}

// Default returns the default code for the given bits-per-cell.
func Default(bits int) Code {
	c, err := New(DefaultCode, bits)
	if err != nil {
		panic("coding: building default code: " + err.Error())
	}
	return c
}

// Names lists the registered code names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
