package coding

// Code is a pluggable cell coding: the contract every layer of the
// simulator programs against. A code supplies the state map (which bit
// tuple each ordered voltage state stores), the sensing counts that map
// implies per page kind, the IDA merge/adjust rules (how states collapse
// when pages are invalidated), and the per-program power/wear cost hooks
// that make schemes with identical latency but different programmed-cell
// populations (e.g. inverted limited-weight coding) comparable in the same
// harness.
//
// Implementations must be immutable after construction and safe for
// concurrent use; every slice- or pointer-returning method returns shared
// precomputed state that callers must not modify. Merge and PlanWordline
// are hot-path methods: they must be allocation-free lookups, not
// recomputations (see *Scheme, which precomputes all 2^bits masks).
type Code interface {
	// Name is the registry name of the code ("ida", "randio", "ilwc").
	Name() string

	// Bits returns the number of bits stored per cell; States returns the
	// number of voltage states (2^Bits); Value returns the value of bit j
	// when the cell is in voltage state s. Together they are the state map.
	Bits() int
	States() int
	Value(s int, j PageType) uint8

	// ReadLevels returns the read-voltage positions of page j under the
	// conventional (unmerged) coding, Senses the resulting sensing count,
	// and MaxSenses the cost of the slowest page.
	ReadLevels(j PageType) []int
	Senses(j PageType) int
	MaxSenses() int

	// Merge returns the IDA voltage-adjustment result for a validity mask;
	// PlanWordline is the Table I refresh decision generalized to the
	// code's state map. Both return precomputed shared state.
	Merge(mask ValidMask) *Merged
	PlanWordline(mask ValidMask) Plan

	// ProgramCost returns the power/wear proxies of programming host data
	// through this code.
	ProgramCost() CellCost
}

// CellCost is a code's per-program power/wear proxy, computed from the
// distribution of voltage states the code's codewords land on. Both fields
// are per-cell expectations over one full wordline program; a single page
// program accounts for 1/Bits of them.
type CellCost struct {
	// MeanLevel is the expected voltage-state index a cell is programmed
	// to (0 = erased, States-1 = highest). ISPP charge transferred — and
	// with it program power and cell stress — grows with the target
	// level, so this is the power/wear proxy the coding-lab experiments
	// compare. A uniform bijective code lands on (States-1)/2.
	MeanLevel float64
	// ProgrammedFrac is the expected fraction of cells moved off the
	// erased state at all. Inverted limited-weight coding exists to
	// shrink exactly this number.
	ProgrammedFrac float64
}

// uniformCost is the cost of a code whose codewords hit every state with
// equal probability — any bijective state map under uniform host data.
func uniformCost(states int) CellCost {
	return CellCost{
		MeanLevel:      float64(states-1) / 2,
		ProgrammedFrac: 1 - 1/float64(states),
	}
}

// biasedCost computes the cost of a state map whose stored bits are not
// uniform: each bit is 1 independently with probability pOne. Limited-weight
// codes shape exactly this distribution — inversion guarantees codewords
// carry more ones than zeros, and (with the erased state storing all ones)
// more ones means lower voltage states.
func biasedCost(c *Scheme, pOne float64) CellCost {
	var cost CellCost
	for s := 0; s < c.states; s++ {
		p := 1.0
		for j := 0; j < c.bits; j++ {
			if c.values[s][j] == 1 {
				p *= pOne
			} else {
				p *= 1 - pOne
			}
		}
		cost.MeanLevel += float64(s) * p
		if s != 0 {
			cost.ProgrammedFrac += p
		}
	}
	return cost
}
