package coding

import "fmt"

// NewRandIO builds the random-I/O coding of Sharon and Alrod
// (arXiv 1202.6481): a state map whose per-bit transition counts are as
// balanced as possible, so the worst page costs ceil((2^b-1)/b) sensings
// instead of the Gray MSB's 2^(b-1). For TLC the per-page counts are
// [3,2,2] (worst page 3 instead of 4); for QLC [4,4,4,3] (worst page 4
// instead of 8). The mean sensing count is unchanged — the code trades the
// Gray map's fast LSB for a flat latency profile, which is what makes it
// attractive for random small reads.
//
// The map is constructed as a Gray path (adjacent states differ in exactly
// one bit) through all 2^b tuples, starting at the all-ones erased tuple,
// where each bit is flipped exactly its target number of times. The path is
// found by a deterministic depth-first search that tries bits in ascending
// index order, so the same bits always yields the same map. The search is
// instantaneous up to QLC but backtracks exponentially beyond it, so the
// constructor is capped at 4 bits per cell — every real flash geometry.
func NewRandIO(bits int) *Scheme {
	if bits < 1 || bits > 4 {
		panic(fmt.Sprintf("coding: NewRandIO bits %d out of range [1,4]", bits))
	}
	states := 1 << bits
	// A Gray path over 2^b states has 2^b-1 single-bit transitions; split
	// them as evenly as possible, giving the remainder to the lowest bit
	// indexes (the pages that are fastest under Gray coding).
	budget := make([]int, bits)
	for j := 0; j < bits; j++ {
		budget[j] = (states - 1) / bits
		if j < (states-1)%bits {
			budget[j]++
		}
	}

	start := states - 1 // all-ones tuple: the erased state
	path := make([]int, 1, states)
	path[0] = start
	visited := make([]bool, states)
	visited[start] = true
	var dfs func(cur int) bool
	dfs = func(cur int) bool {
		if len(path) == states {
			return true
		}
		for j := 0; j < bits; j++ {
			if budget[j] == 0 {
				continue
			}
			next := cur ^ (1 << uint(j))
			if visited[next] {
				continue
			}
			visited[next] = true
			budget[j]--
			path = append(path, next)
			if dfs(next) {
				return true
			}
			path = path[:len(path)-1]
			budget[j]++
			visited[next] = false
		}
		return false
	}
	if !dfs(start) {
		panic(fmt.Sprintf("coding: no balanced Gray path for %d bits", bits))
	}

	values := make([][]uint8, states)
	for s, tuple := range path {
		values[s] = make([]uint8, bits)
		for j := 0; j < bits; j++ {
			values[s][j] = uint8((tuple >> uint(j)) & 1)
		}
	}
	sch, err := NewCustom(values)
	if err != nil {
		panic("coding: internal error building randio scheme: " + err.Error())
	}
	sch.name = CodeRandIO
	return sch
}
