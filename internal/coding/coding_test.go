package coding

import (
	"testing"
)

// tlcStates is the conventional TLC coding of Figure 2, written as
// (LSB, CSB, MSB) per state, S1 (erased) through S8.
var tlcStates = [][3]uint8{
	{1, 1, 1}, // S1
	{1, 1, 0}, // S2
	{1, 0, 0}, // S3
	{1, 0, 1}, // S4
	{0, 0, 1}, // S5
	{0, 0, 0}, // S6
	{0, 1, 0}, // S7
	{0, 1, 1}, // S8
}

func TestGrayTLCMatchesFigure2(t *testing.T) {
	c := NewGray(3)
	if c.Bits() != 3 || c.States() != 8 {
		t.Fatalf("got %d bits %d states, want 3/8", c.Bits(), c.States())
	}
	for s, want := range tlcStates {
		for j := 0; j < 3; j++ {
			if got := c.Value(s, PageType(j)); got != want[j] {
				t.Errorf("state S%d bit %v = %d, want %d", s+1, PageType(j), got, want[j])
			}
		}
	}
}

func TestGrayTLCReadVoltages(t *testing.T) {
	c := NewGray(3)
	// Figure 2: LSB uses V4; CSB uses V2,V6; MSB uses V1,V3,V5,V7.
	// Our levels are 0-based boundaries: Vk corresponds to level k-1.
	checks := []struct {
		page PageType
		want []int
	}{
		{LSB, []int{3}},
		{CSB, []int{1, 5}},
		{MSB, []int{0, 2, 4, 6}},
	}
	for _, ck := range checks {
		got := c.ReadLevels(ck.page)
		if len(got) != len(ck.want) {
			t.Fatalf("%v read levels = %v, want %v", ck.page, got, ck.want)
		}
		for i := range got {
			if got[i] != ck.want[i] {
				t.Errorf("%v read levels = %v, want %v", ck.page, got, ck.want)
				break
			}
		}
	}
}

func TestGraySenseCounts(t *testing.T) {
	for bitsPerCell := 1; bitsPerCell <= 4; bitsPerCell++ {
		c := NewGray(bitsPerCell)
		for j := 0; j < bitsPerCell; j++ {
			want := 1 << uint(j)
			if got := c.Senses(PageType(j)); got != want {
				t.Errorf("%d-bit cell page %d senses = %d, want %d", bitsPerCell, j, got, want)
			}
		}
		if got := c.MaxSenses(); got != 1<<uint(bitsPerCell-1) {
			t.Errorf("%d-bit cell max senses = %d, want %d", bitsPerCell, got, 1<<uint(bitsPerCell-1))
		}
	}
}

func TestGrayIsGrayCode(t *testing.T) {
	for bitsPerCell := 1; bitsPerCell <= 5; bitsPerCell++ {
		c := NewGray(bitsPerCell)
		for s := 0; s+1 < c.States(); s++ {
			diff := 0
			for j := 0; j < bitsPerCell; j++ {
				if c.Value(s, PageType(j)) != c.Value(s+1, PageType(j)) {
					diff++
				}
			}
			if diff != 1 {
				t.Errorf("%d-bit: states %d and %d differ in %d bits, want 1", bitsPerCell, s, s+1, diff)
			}
		}
	}
}

func TestErasedStateIsAllOnes(t *testing.T) {
	for bitsPerCell := 1; bitsPerCell <= 5; bitsPerCell++ {
		c := NewGray(bitsPerCell)
		for j := 0; j < bitsPerCell; j++ {
			if c.Value(0, PageType(j)) != 1 {
				t.Errorf("%d-bit erased state bit %d = 0, want 1", bitsPerCell, j)
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for bitsPerCell := 1; bitsPerCell <= 4; bitsPerCell++ {
		c := NewGray(bitsPerCell)
		for s := 0; s < c.States(); s++ {
			bits := c.Decode(s)
			back, err := c.Encode(bits)
			if err != nil {
				t.Fatalf("%d-bit encode(%v): %v", bitsPerCell, bits, err)
			}
			if back != s {
				t.Errorf("%d-bit encode(decode(%d)) = %d", bitsPerCell, s, back)
			}
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	c := NewGray(3)
	if _, err := c.Encode([]uint8{1, 0}); err == nil {
		t.Error("Encode with wrong length should fail")
	}
}

func TestSenseReadMatchesTable(t *testing.T) {
	for bitsPerCell := 1; bitsPerCell <= 4; bitsPerCell++ {
		c := NewGray(bitsPerCell)
		for s := 0; s < c.States(); s++ {
			for j := 0; j < bitsPerCell; j++ {
				want := c.Value(s, PageType(j))
				if got := c.SenseRead(s, PageType(j)); got != want {
					t.Errorf("%d-bit SenseRead(S%d, %v) = %d, want %d", bitsPerCell, s+1, PageType(j), got, want)
				}
			}
		}
	}
}

func TestVendor232TLC(t *testing.T) {
	c := Vendor232TLC()
	wantSenses := []int{2, 3, 2}
	for j, want := range wantSenses {
		if got := c.Senses(PageType(j)); got != want {
			t.Errorf("2-3-2 page %d senses = %d, want %d", j, got, want)
		}
	}
	for s := 0; s < c.States(); s++ {
		for j := 0; j < 3; j++ {
			if got, want := c.SenseRead(s, PageType(j)), c.Value(s, PageType(j)); got != want {
				t.Errorf("2-3-2 SenseRead(S%d,%d) = %d, want %d", s+1, j, got, want)
			}
		}
	}
}

func TestNewCustomValidation(t *testing.T) {
	cases := []struct {
		name   string
		values [][]uint8
	}{
		{"empty", nil},
		{"not power of two", [][]uint8{{0}, {1}, {0}}},
		{"ragged", [][]uint8{{0, 0}, {0, 1}, {1}, {1, 1}}},
		{"non binary", [][]uint8{{0}, {2}}},
		{"duplicate tuple", [][]uint8{{0, 0}, {0, 1}, {0, 0}, {1, 1}}},
	}
	for _, tc := range cases {
		if _, err := NewCustom(tc.values); err == nil {
			t.Errorf("NewCustom(%s) should fail", tc.name)
		}
	}
}

func TestNewGrayPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{0, -1, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGray(%d) should panic", n)
				}
			}()
			NewGray(n)
		}()
	}
}

func TestPageTypeString(t *testing.T) {
	names := map[PageType]string{0: "LSB", 1: "CSB", 2: "MSB", 3: "TSB", 7: "bit7"}
	for p, want := range names {
		if got := p.String(); got != want {
			t.Errorf("PageType(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestSchemeString(t *testing.T) {
	s := NewGray(1).String()
	if s == "" {
		t.Error("String() should not be empty")
	}
}
