package coding

import "fmt"

// WLCase is one of the eight wordline validity scenarios of Table I in the
// paper (TLC). Case numbers follow the table: cases 1-4 have a valid MSB and
// are IDA targets, cases 5-7 are plain relocations, case 8 needs nothing.
type WLCase int

// The eight Table I cases.
const (
	CaseInvalidWL     WLCase = 0 // not a Table I case (sentinel)
	Case1AllValid     WLCase = 1 // LSB valid, CSB valid, MSB valid
	Case2LSBInvalid   WLCase = 2 // LSB invalid, CSB valid, MSB valid
	Case3CSBInvalid   WLCase = 3 // LSB valid, CSB invalid, MSB valid
	Case4LowerInvalid WLCase = 4 // LSB+CSB invalid, MSB valid
	Case5MSBInvalid   WLCase = 5 // LSB valid, CSB valid, MSB invalid
	Case6OnlyCSBValid WLCase = 6 // CSB valid only
	Case7OnlyLSBValid WLCase = 7 // LSB valid only
	Case8AllInvalid   WLCase = 8 // nothing valid
)

// String names the case as in the paper's Table I.
func (c WLCase) String() string {
	if c >= 1 && c <= 8 {
		return fmt.Sprintf("case%d", int(c))
	}
	return "case?"
}

// ClassifyTLC maps a TLC wordline's validity mask to its Table I case.
func ClassifyTLC(mask ValidMask) WLCase {
	l, c, m := mask.Has(LSB), mask.Has(CSB), mask.Has(MSB)
	switch {
	case l && c && m:
		return Case1AllValid
	case !l && c && m:
		return Case2LSBInvalid
	case l && !c && m:
		return Case3CSBInvalid
	case !l && !c && m:
		return Case4LowerInvalid
	case l && c && !m:
		return Case5MSBInvalid
	case !l && c && !m:
		return Case6OnlyCSBValid
	case l && !c && !m:
		return Case7OnlyLSBValid
	default:
		return Case8AllInvalid
	}
}

// Plan is the per-wordline decision the modified data refresh makes
// (Section III-C): which valid pages to relocate to the new block, whether
// to apply the voltage adjustment, and which pages the reprogrammed wordline
// keeps.
type Plan struct {
	// Apply reports whether the IDA voltage adjustment is worthwhile for
	// this wordline (Table I cases 1-4 for TLC).
	Apply bool
	// Move lists the valid pages that must be relocated to the new block
	// before (or instead of) adjusting.
	Move []PageType
	// Keep is the mask of pages that stay in the wordline after the
	// adjustment. Zero when Apply is false.
	Keep ValidMask
	// KeptSenses[j] is the post-adjustment sensing count of each kept
	// page; nil when Apply is false.
	KeptSenses map[PageType]int
}

// PlanWordline generalizes Table I to any bits-per-cell scheme: the
// adjustment is applied when the slowest (top) page is still valid, keeping
// the maximal all-valid suffix of pages that excludes at least the fastest
// page, and relocating every other valid page. For TLC this reproduces
// Table I exactly: cases 1-2 keep CSB+MSB, cases 3-4 keep MSB only, cases
// 5-7 relocate, case 8 does nothing. The returned plan shares precomputed
// state (Move, KeptSenses); callers must treat it as read-only.
func (c *Scheme) PlanWordline(mask ValidMask) Plan {
	return c.plans[mask&MaskAll(c.bits)]
}

// computePlan builds the refresh plan for one mask (construction time
// only; hot-path callers go through the precomputed PlanWordline table).
func (c *Scheme) computePlan(mask ValidMask) Plan {
	var p Plan
	top := PageType(c.bits - 1)
	if c.bits == 1 || !mask.Has(top) {
		// Slowest page already invalid: adjusting cannot shorten any
		// remaining read below what relocation gives, so fall back to
		// the original refresh behaviour.
		for j := PageType(0); int(j) < c.bits; j++ {
			if mask.Has(j) {
				p.Move = append(p.Move, j)
			}
		}
		return p
	}
	// Find the start of the maximal all-valid suffix, clamped so the
	// fastest page is never kept (keeping it would pin all 2^bits states
	// and yield no merge).
	k := int(top)
	for k > 1 && mask.Has(PageType(k-1)) {
		k--
	}
	keep := ValidMask(0)
	for j := k; j <= int(top); j++ {
		keep = keep.With(PageType(j))
	}
	for j := PageType(0); int(j) < k; j++ {
		if mask.Has(j) {
			p.Move = append(p.Move, j)
		}
	}
	p.Apply = true
	p.Keep = keep
	m := c.Merge(keep)
	p.KeptSenses = make(map[PageType]int, keep.Count())
	for j := PageType(0); int(j) < c.bits; j++ {
		if keep.Has(j) {
			p.KeptSenses[j] = m.Senses(j)
		}
	}
	return p
}
