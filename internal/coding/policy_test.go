package coding

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func tlcMask(l, c, m bool) ValidMask {
	var v ValidMask
	if l {
		v = v.With(LSB)
	}
	if c {
		v = v.With(CSB)
	}
	if m {
		v = v.With(MSB)
	}
	return v
}

func TestClassifyTLCAllCases(t *testing.T) {
	cases := []struct {
		l, c, m bool
		want    WLCase
	}{
		{true, true, true, Case1AllValid},
		{false, true, true, Case2LSBInvalid},
		{true, false, true, Case3CSBInvalid},
		{false, false, true, Case4LowerInvalid},
		{true, true, false, Case5MSBInvalid},
		{false, true, false, Case6OnlyCSBValid},
		{true, false, false, Case7OnlyLSBValid},
		{false, false, false, Case8AllInvalid},
	}
	for _, tc := range cases {
		if got := ClassifyTLC(tlcMask(tc.l, tc.c, tc.m)); got != tc.want {
			t.Errorf("Classify(%v,%v,%v) = %v, want %v", tc.l, tc.c, tc.m, got, tc.want)
		}
	}
}

func TestWLCaseString(t *testing.T) {
	if Case3CSBInvalid.String() != "case3" {
		t.Errorf("Case3 string = %q", Case3CSBInvalid.String())
	}
	if CaseInvalidWL.String() != "case?" {
		t.Errorf("sentinel string = %q", CaseInvalidWL.String())
	}
}

// TestPlanWordlineTableI verifies that the generic planner reproduces the
// paper's Table I exactly for TLC.
func TestPlanWordlineTableI(t *testing.T) {
	c := NewGray(3)
	type want struct {
		apply      bool
		move       []PageType
		keep       ValidMask
		keptSenses map[PageType]int
	}
	cases := map[WLCase]want{
		// Case 1: move LSB; adjust for CSB/MSB (1 and 2 sensings).
		Case1AllValid: {true, []PageType{LSB}, tlcMask(false, true, true), map[PageType]int{CSB: 1, MSB: 2}},
		// Case 2: nothing to move; adjust for CSB/MSB.
		Case2LSBInvalid: {true, nil, tlcMask(false, true, true), map[PageType]int{CSB: 1, MSB: 2}},
		// Case 3: move LSB; adjust for MSB only (1 sensing).
		Case3CSBInvalid: {true, []PageType{LSB}, tlcMask(false, false, true), map[PageType]int{MSB: 1}},
		// Case 4: nothing to move; adjust for MSB only.
		Case4LowerInvalid: {true, nil, tlcMask(false, false, true), map[PageType]int{MSB: 1}},
		// Cases 5-7: plain relocation of the valid pages.
		Case5MSBInvalid:   {false, []PageType{LSB, CSB}, 0, nil},
		Case6OnlyCSBValid: {false, []PageType{CSB}, 0, nil},
		Case7OnlyLSBValid: {false, []PageType{LSB}, 0, nil},
		// Case 8: nothing to do.
		Case8AllInvalid: {false, nil, 0, nil},
	}
	masks := map[WLCase]ValidMask{
		Case1AllValid:     tlcMask(true, true, true),
		Case2LSBInvalid:   tlcMask(false, true, true),
		Case3CSBInvalid:   tlcMask(true, false, true),
		Case4LowerInvalid: tlcMask(false, false, true),
		Case5MSBInvalid:   tlcMask(true, true, false),
		Case6OnlyCSBValid: tlcMask(false, true, false),
		Case7OnlyLSBValid: tlcMask(true, false, false),
		Case8AllInvalid:   0,
	}
	for wc, w := range cases {
		p := c.PlanWordline(masks[wc])
		if p.Apply != w.apply {
			t.Errorf("%v: apply = %v, want %v", wc, p.Apply, w.apply)
		}
		if len(p.Move) != len(w.move) {
			t.Errorf("%v: move = %v, want %v", wc, p.Move, w.move)
		} else {
			for i := range p.Move {
				if p.Move[i] != w.move[i] {
					t.Errorf("%v: move = %v, want %v", wc, p.Move, w.move)
					break
				}
			}
		}
		if p.Keep != w.keep {
			t.Errorf("%v: keep = %b, want %b", wc, p.Keep, w.keep)
		}
		for pt, n := range w.keptSenses {
			if p.KeptSenses[pt] != n {
				t.Errorf("%v: kept senses[%v] = %d, want %d", wc, pt, p.KeptSenses[pt], n)
			}
		}
	}
}

func TestPlanWordlineQLC(t *testing.T) {
	c := NewGray(4)
	// All four pages valid: keep pages 1..3, move page 0; pages sense
	// with 1, 2, 4 sensings afterwards (like a TLC wordline).
	p := c.PlanWordline(MaskAll(4))
	if !p.Apply || len(p.Move) != 1 || p.Move[0] != 0 {
		t.Fatalf("QLC all-valid plan = %+v", p)
	}
	for j, want := range map[PageType]int{1: 1, 2: 2, 3: 4} {
		if p.KeptSenses[j] != want {
			t.Errorf("QLC kept senses[%d] = %d, want %d", j, p.KeptSenses[j], want)
		}
	}
	// Figure 6 scenario: lower two invalid, keep 2..3 with 1 and 2.
	p = c.PlanWordline(ValidMask(0).With(2).With(3))
	if !p.Apply || len(p.Move) != 0 {
		t.Fatalf("QLC fig6 plan = %+v", p)
	}
	if p.KeptSenses[2] != 1 || p.KeptSenses[3] != 2 {
		t.Errorf("QLC fig6 kept senses = %v", p.KeptSenses)
	}
}

// Property: the plan never keeps the fastest page, always keeps the slowest
// page when it applies, and every valid page is either kept or moved.
func TestPlanWordlineProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(4))}
	prop := func(bitsSeed uint8, maskSeed uint32) bool {
		bitsPerCell := int(bitsSeed)%4 + 1
		c := NewGray(bitsPerCell)
		mask := ValidMask(maskSeed) & MaskAll(bitsPerCell)
		p := c.PlanWordline(mask)
		top := PageType(bitsPerCell - 1)
		if p.Apply != (mask.Has(top) && bitsPerCell > 1) {
			return false
		}
		if p.Apply && bitsPerCell > 1 && p.Keep.Has(0) {
			return false // the fastest page must never be kept
		}
		moved := ValidMask(0)
		for _, j := range p.Move {
			if !mask.Has(j) {
				return false // can only move valid pages
			}
			moved = moved.With(j)
		}
		for j := PageType(0); int(j) < bitsPerCell; j++ {
			if mask.Has(j) && !moved.Has(j) && p.Apply && !p.Keep.Has(j) {
				return false // valid page neither kept nor moved
			}
			if !p.Apply && mask.Has(j) && !moved.Has(j) {
				return false
			}
		}
		// Kept pages must read at least as fast as before.
		for j, n := range p.KeptSenses {
			if n > c.Senses(j) || n < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
