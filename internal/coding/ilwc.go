package coding

// ilwcPOne is the probability that a stored bit is 1 after inverted
// limited-weight coding over 16-bit chunks (arXiv 1907.02622): each chunk is
// inverted when it carries more zeros than ones, so a uniform chunk stores
// max(k, 16-k) ones where k ~ Binomial(16, 1/2). E[max] = 8 + 8*C(16,8)/2^16
// ≈ 9.571 ones out of 16, i.e. p ≈ 0.598.
const ilwcPOne = 0.598

// ilwcCode is inverted limited-weight coding: the Gray state map (latency is
// identical to the ida code) fed bit-biased data. With the erased state
// storing all ones, biasing stored bits toward 1 shifts the programmed state
// distribution toward low voltages, which the cost hooks expose as lower
// MeanLevel and ProgrammedFrac. Everything except the name and cost is the
// embedded Scheme's behaviour.
type ilwcCode struct {
	*Scheme
	cost CellCost
}

var _ Code = (*ilwcCode)(nil)

// NewILWC builds the inverted limited-weight code for the given bits-per-cell.
func NewILWC(bits int) Code {
	g := NewGray(bits)
	return &ilwcCode{Scheme: g, cost: biasedCost(g, ilwcPOne)}
}

// Name identifies the code in the registry.
func (c *ilwcCode) Name() string { return CodeILWC }

// ProgramCost returns the biased-data power/wear proxy: the whole point of
// the code.
func (c *ilwcCode) ProgramCost() CellCost { return c.cost }
