package coding

import (
	"fmt"
	"testing"
)

// labCodes returns every registered code at every bit width it supports,
// so the property tests below cover the whole coding lab.
func labCodes(t *testing.T) []Code {
	t.Helper()
	var codes []Code
	for _, name := range Names() {
		for bits := 1; bits <= 4; bits++ {
			c, err := New(name, bits)
			if err != nil {
				t.Fatalf("New(%q, %d): %v", name, bits, err)
			}
			codes = append(codes, c)
		}
	}
	return codes
}

// TestRegistry checks the registry's surface: the three built-in codes are
// present, lookups are by exact name, and the default resolves to ida.
func TestRegistry(t *testing.T) {
	want := []string{CodeIDA, CodeILWC, CodeRandIO}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	if _, err := New("gray", 3); err == nil {
		t.Error("New with unknown name succeeded")
	}
	if _, err := New(CodeIDA, 0); err == nil {
		t.Error("New with 0 bits succeeded")
	}
	if _, err := New(CodeRandIO, 5); err == nil {
		t.Error("randio with 5 bits succeeded; it is capped at QLC")
	}
	if d := Default(3); d.Name() != CodeIDA {
		t.Errorf("Default(3).Name() = %q, want %q", d.Name(), CodeIDA)
	}
	for _, c := range labCodes(t) {
		if c.Name() == "" {
			t.Errorf("%T has empty Name()", c)
		}
	}
}

// TestLabStateMapBijective checks that every code's state map is a bijection
// between the 2^b voltage states and the 2^b bit tuples, and that the erased
// state stores all ones (the convention the whole IDA machinery relies on:
// invalid pages can be "reprogrammed" only by adding charge).
func TestLabStateMapBijective(t *testing.T) {
	for _, c := range labCodes(t) {
		name := fmt.Sprintf("%s/b%d", c.Name(), c.Bits())
		if c.States() != 1<<c.Bits() {
			t.Errorf("%s: States() = %d, want %d", name, c.States(), 1<<c.Bits())
		}
		seen := make(map[uint32]int)
		for s := 0; s < c.States(); s++ {
			var key uint32
			for j := 0; j < c.Bits(); j++ {
				v := c.Value(s, PageType(j))
				if v > 1 {
					t.Fatalf("%s: state %d bit %d has non-binary value %d", name, s, j, v)
				}
				key |= uint32(v) << uint(j)
			}
			if prev, dup := seen[key]; dup {
				t.Errorf("%s: states %d and %d store the same tuple %0*b", name, prev, s, c.Bits(), key)
			}
			seen[key] = s
		}
		for j := 0; j < c.Bits(); j++ {
			if c.Value(0, PageType(j)) != 1 {
				t.Errorf("%s: erased state stores bit %d = 0, want all ones", name, j)
			}
		}
	}
}

// TestLabSensesMatchTransitions recomputes each page's sensing count from
// the raw state map — the number of value changes of that bit along the
// voltage axis — and checks Senses, ReadLevels, and MaxSenses agree with it
// for every code.
func TestLabSensesMatchTransitions(t *testing.T) {
	for _, c := range labCodes(t) {
		name := fmt.Sprintf("%s/b%d", c.Name(), c.Bits())
		max := 0
		for j := 0; j < c.Bits(); j++ {
			p := PageType(j)
			transitions := 0
			for s := 0; s+1 < c.States(); s++ {
				if c.Value(s, p) != c.Value(s+1, p) {
					transitions++
				}
			}
			if got := c.Senses(p); got != transitions {
				t.Errorf("%s: Senses(%v) = %d, state map has %d transitions", name, p, got, transitions)
			}
			if got := len(c.ReadLevels(p)); got != transitions {
				t.Errorf("%s: len(ReadLevels(%v)) = %d, want %d", name, p, got, transitions)
			}
			if transitions > max {
				max = transitions
			}
		}
		if got := c.MaxSenses(); got != max {
			t.Errorf("%s: MaxSenses() = %d, want %d", name, got, max)
		}
	}
}

// TestLabRandIOBalanced checks the defining property of the random-I/O code:
// per-bit transition counts differ by at most one, and the worst page is
// strictly cheaper than the Gray MSB whenever balancing can help (b >= 3).
func TestLabRandIOBalanced(t *testing.T) {
	for bits := 1; bits <= 4; bits++ {
		c := NewRandIO(bits)
		min, max := c.States(), 0
		for j := 0; j < bits; j++ {
			n := c.Senses(PageType(j))
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if max-min > 1 {
			t.Errorf("b=%d: randio senses spread %d..%d, want within 1", bits, min, max)
		}
		if gray := NewGray(bits).MaxSenses(); bits >= 3 && max >= gray {
			t.Errorf("b=%d: randio worst page %d not cheaper than Gray's %d", bits, max, gray)
		}
	}
}

// TestLabMergeISPPLegal checks the physical legality of every merge of every
// code: targets only move cells toward higher voltages (ISPP can only add
// charge), merging is idempotent, targets are reachable, and cells that
// agree on all valid bits share a target.
func TestLabMergeISPPLegal(t *testing.T) {
	for _, c := range labCodes(t) {
		name := fmt.Sprintf("%s/b%d", c.Name(), c.Bits())
		for mask := ValidMask(0); int(mask) < c.States(); mask++ {
			m := c.Merge(mask)
			reach := make(map[int]bool)
			for _, s := range m.Reachable() {
				reach[s] = true
			}
			for s := 0; s < c.States(); s++ {
				tgt := m.Target(s)
				if tgt < s {
					t.Fatalf("%s mask %b: target(%d) = %d moves charge down", name, mask, s, tgt)
				}
				if !reach[tgt] {
					t.Fatalf("%s mask %b: target(%d) = %d not in Reachable()", name, mask, s, tgt)
				}
				if m.Target(tgt) != tgt {
					t.Fatalf("%s mask %b: merge not idempotent at state %d", name, mask, s)
				}
				for r := s + 1; r < c.States(); r++ {
					same := true
					for j := 0; j < c.Bits(); j++ {
						if mask.Has(PageType(j)) && c.Value(s, PageType(j)) != c.Value(r, PageType(j)) {
							same = false
							break
						}
					}
					if same != (m.Target(r) == tgt) {
						t.Fatalf("%s mask %b: states %d,%d agree-on-valid=%v but targets %d,%d",
							name, mask, s, r, same, tgt, m.Target(r))
					}
				}
			}
		}
	}
}

// TestLabPlansConsistent checks every code's refresh plans: kept pages form
// a subset of the mask (plus nothing), moved pages are exactly the valid
// pages not kept, and the advertised kept sensing counts match the merge.
func TestLabPlansConsistent(t *testing.T) {
	for _, c := range labCodes(t) {
		name := fmt.Sprintf("%s/b%d", c.Name(), c.Bits())
		for mask := ValidMask(0); int(mask) < c.States(); mask++ {
			p := c.PlanWordline(mask)
			if !p.Apply {
				if p.Keep != 0 || p.KeptSenses != nil {
					t.Fatalf("%s mask %b: non-applied plan keeps pages", name, mask)
				}
				if len(p.Move) != mask.Count() {
					t.Fatalf("%s mask %b: plan moves %d pages, mask has %d valid", name, mask, len(p.Move), mask.Count())
				}
				continue
			}
			moved := ValidMask(0)
			for _, j := range p.Move {
				moved = moved.With(j)
			}
			if moved&p.Keep != 0 {
				t.Fatalf("%s mask %b: pages both moved and kept", name, mask)
			}
			if want := mask &^ p.Keep; moved != want {
				t.Fatalf("%s mask %b: moved %b, want %b", name, mask, moved, want)
			}
			m := c.Merge(p.Keep)
			for j, senses := range p.KeptSenses {
				if !p.Keep.Has(j) {
					t.Fatalf("%s mask %b: KeptSenses lists unkept page %v", name, mask, j)
				}
				if senses != m.Senses(j) {
					t.Fatalf("%s mask %b: KeptSenses[%v] = %d, merge says %d", name, mask, j, senses, m.Senses(j))
				}
			}
		}
	}
}

// TestLabProgramCost checks the cost hooks: bijective codes under uniform
// data sit exactly at the uniform expectation, and the inverted
// limited-weight code strictly undercuts it on both proxies while keeping
// the Gray latency profile.
func TestLabProgramCost(t *testing.T) {
	for _, c := range labCodes(t) {
		name := fmt.Sprintf("%s/b%d", c.Name(), c.Bits())
		cost := c.ProgramCost()
		if cost.MeanLevel <= 0 && c.Bits() > 0 {
			t.Errorf("%s: MeanLevel = %v, want > 0", name, cost.MeanLevel)
		}
		if cost.ProgrammedFrac <= 0 || cost.ProgrammedFrac >= 1 {
			t.Errorf("%s: ProgrammedFrac = %v, want in (0,1)", name, cost.ProgrammedFrac)
		}
		uniform := uniformCost(c.States())
		switch c.Name() {
		case CodeIDA, CodeRandIO:
			if cost != uniform {
				t.Errorf("%s: cost %+v, want uniform %+v", name, cost, uniform)
			}
		case CodeILWC:
			if cost.MeanLevel >= uniform.MeanLevel {
				t.Errorf("%s: MeanLevel %v not below uniform %v", name, cost.MeanLevel, uniform.MeanLevel)
			}
			if cost.ProgrammedFrac >= uniform.ProgrammedFrac {
				t.Errorf("%s: ProgrammedFrac %v not below uniform %v", name, cost.ProgrammedFrac, uniform.ProgrammedFrac)
			}
		}
	}
	// ILWC keeps the Gray latency profile: same senses per page.
	for bits := 1; bits <= 4; bits++ {
		gray, ilwc := NewGray(bits), NewILWC(bits)
		for j := 0; j < bits; j++ {
			if gray.Senses(PageType(j)) != ilwc.Senses(PageType(j)) {
				t.Errorf("b=%d: ilwc Senses(%d) differs from Gray", bits, j)
			}
		}
	}
}

// TestLabMergeAllocationFree verifies the hot-path contract of the Code
// interface directly: Merge and PlanWordline perform zero allocations.
func TestLabMergeAllocationFree(t *testing.T) {
	for _, c := range labCodes(t) {
		c := c
		allocs := testing.AllocsPerRun(100, func() {
			for mask := ValidMask(0); int(mask) < c.States(); mask++ {
				if c.Merge(mask) == nil {
					t.Fatal("nil merge")
				}
				if p := c.PlanWordline(mask); p.Apply && p.Keep == 0 {
					t.Fatal("applied plan keeps nothing")
				}
			}
		})
		if allocs != 0 {
			t.Errorf("%s/b%d: Merge+PlanWordline allocate %v per run, want 0", c.Name(), c.Bits(), allocs)
		}
	}
}
