package coding

import (
	"fmt"
	"math/bits"
)

// ValidMask records which bits (pages) of a wordline still hold valid data.
// Bit j of the mask corresponds to PageType j.
type ValidMask uint32

// MaskAll returns the mask with the lowest n bits valid.
func MaskAll(n int) ValidMask { return ValidMask(1<<uint(n)) - 1 }

// Has reports whether page j is valid in the mask.
func (m ValidMask) Has(j PageType) bool { return m&(1<<uint(j)) != 0 }

// Without returns the mask with page j cleared.
func (m ValidMask) Without(j PageType) ValidMask { return m &^ (1 << uint(j)) }

// With returns the mask with page j set.
func (m ValidMask) With(j PageType) ValidMask { return m | (1 << uint(j)) }

// Count returns the number of valid pages in the mask.
func (m ValidMask) Count() int { return bits.OnesCount32(uint32(m)) }

// Merged is the result of applying the IDA voltage adjustment to a wordline
// whose valid pages are given by a mask: a mapping from every original state
// to its merged target state, the set of states reachable afterwards, and
// the reduced sensing counts of the remaining valid pages.
type Merged struct {
	scheme *Scheme
	mask   ValidMask
	// target[s] is the voltage state cell s is moved to. ISPP can only add
	// charge, so target[s] >= s always holds.
	target []int
	// reachable lists the states that remain in use after merging, in
	// ascending voltage order.
	reachable []int
	// senses[j] is the post-merge sensing count of bit j (0 for invalid
	// bits, which can no longer be read meaningfully).
	senses []int
	// readLevels[j] lists the read-voltage positions still needed for bit
	// j after merging.
	readLevels [][]int
}

// Merge returns the IDA voltage adjustment for the scheme under the given
// valid mask: states whose valid-bit projections coincide form an
// equivalence class, and every class collapses onto its highest-voltage
// member (the only member every other member can reach by adding charge).
// If the mask is empty or covers all bits, merging is still well defined: a
// full mask yields the identity transform, an empty mask collapses
// everything to the top state. Mask bits beyond the cell's bit count are
// ignored. The result is precomputed and shared; it must not be modified.
func (c *Scheme) Merge(mask ValidMask) *Merged {
	return c.merges[mask&MaskAll(c.bits)]
}

// computeMerge builds the merge result for one mask (construction time
// only; hot-path callers go through the precomputed Merge table).
func (c *Scheme) computeMerge(mask ValidMask) *Merged {
	m := &Merged{scheme: c, mask: mask}
	m.target = make([]int, c.states)

	// Group states by their projection onto the valid bits and find the
	// highest-voltage member of each class.
	top := make(map[uint32]int)
	for s := 0; s < c.states; s++ {
		key := c.projection(s, mask)
		if t, ok := top[key]; !ok || s > t {
			top[key] = s
		}
	}
	reach := make(map[int]bool, len(top))
	for s := 0; s < c.states; s++ {
		t := top[c.projection(s, mask)]
		m.target[s] = t
		reach[t] = true
	}
	for s := 0; s < c.states; s++ {
		if reach[s] {
			m.reachable = append(m.reachable, s)
		}
	}

	// Post-merge sensing counts: one read voltage at every boundary
	// between consecutive reachable states where the bit value changes.
	m.senses = make([]int, c.bits)
	m.readLevels = make([][]int, c.bits)
	for j := 0; j < c.bits; j++ {
		if !mask.Has(PageType(j)) {
			continue
		}
		for i := 0; i+1 < len(m.reachable); i++ {
			a, b := m.reachable[i], m.reachable[i+1]
			if c.values[a][j] != c.values[b][j] {
				m.senses[j]++
				// The physical read voltage can sit at any
				// boundary between a and b; use the boundary
				// just below b, as the paper's figures do.
				m.readLevels[j] = append(m.readLevels[j], b-1)
			}
		}
	}
	return m
}

// projection packs the values of the valid bits of state s into a key.
func (c *Scheme) projection(s int, mask ValidMask) uint32 {
	var key uint32 = 1 // sentinel so differing masks cannot alias
	for j := 0; j < c.bits; j++ {
		if mask.Has(PageType(j)) {
			key = key<<1 | uint32(c.values[s][j])
		}
	}
	return key
}

// Scheme returns the underlying conventional scheme.
func (m *Merged) Scheme() *Scheme { return m.scheme }

// Mask returns the valid mask the merge was computed for.
func (m *Merged) Mask() ValidMask { return m.mask }

// Target returns the merged state a cell in state s is moved to.
func (m *Merged) Target(s int) int { return m.target[s] }

// Reachable returns the states still in use after merging, ascending.
// The returned slice must not be modified.
func (m *Merged) Reachable() []int { return m.reachable }

// Senses returns the post-merge sensing count for page j. It returns 0 for
// pages that are invalid in the mask.
func (m *Merged) Senses(j PageType) int { return m.senses[j] }

// ReadLevels returns the read-voltage positions for page j after merging.
// The returned slice must not be modified.
func (m *Merged) ReadLevels(j PageType) []int { return m.readLevels[j] }

// MoveDistance returns the total and maximum number of states cells must be
// moved up, over all source states. The maximum bounds the ISPP voltage
// range the adjustment has to sweep, which is what makes the adjustment
// latency about half of an MSB page write (Section III-B).
func (m *Merged) MoveDistance() (total, max int) {
	for s := 0; s < m.scheme.states; s++ {
		d := m.target[s] - s
		total += d
		if d > max {
			max = d
		}
	}
	return total, max
}

// MeanMove returns the expected per-cell voltage-level distance the
// adjustment moves a cell, assuming the states are uniformly occupied. It
// is the power/wear proxy of one voltage adjustment, in the same units as
// CellCost.MeanLevel.
func (m *Merged) MeanMove() float64 {
	total, _ := m.MoveDistance()
	return float64(total) / float64(m.scheme.states)
}

// String summarizes the merge result.
func (m *Merged) String() string {
	return fmt.Sprintf("merged(mask=%b, reachable=%d)", m.mask, len(m.reachable))
}
