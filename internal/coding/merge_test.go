package coding

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMergeTLCLSBInvalid(t *testing.T) {
	// Figure 5: LSB invalid; S1..S4 move to S8..S5; CSB needs 1 sensing
	// (V6), MSB needs 2 sensings (V5, V7).
	c := NewGray(3)
	m := c.Merge(MaskAll(3).Without(LSB))

	wantTargets := []int{7, 6, 5, 4, 4, 5, 6, 7} // S1->S8, S2->S7, S3->S6, S4->S5, S5..S8 stay
	for s, want := range wantTargets {
		if got := m.Target(s); got != want {
			t.Errorf("target(S%d) = S%d, want S%d", s+1, got+1, want+1)
		}
	}
	if got := m.Reachable(); len(got) != 4 || got[0] != 4 || got[3] != 7 {
		t.Errorf("reachable = %v, want [4 5 6 7]", got)
	}
	if got := m.Senses(CSB); got != 1 {
		t.Errorf("CSB senses = %d, want 1", got)
	}
	if got := m.Senses(MSB); got != 2 {
		t.Errorf("MSB senses = %d, want 2", got)
	}
	if got := m.Senses(LSB); got != 0 {
		t.Errorf("LSB senses = %d, want 0 (invalid)", got)
	}
	// Figure 5 read voltages: CSB uses V6 (level 5); MSB uses V5,V7 (4,6).
	if lv := m.ReadLevels(CSB); len(lv) != 1 || lv[0] != 5 {
		t.Errorf("CSB read levels = %v, want [5]", lv)
	}
	if lv := m.ReadLevels(MSB); len(lv) != 2 || lv[0] != 4 || lv[1] != 6 {
		t.Errorf("MSB read levels = %v, want [4 6]", lv)
	}
}

func TestMergeTLCLowerTwoInvalid(t *testing.T) {
	// Table I cases 3-4: only the MSB kept; 8 states merge into 2 and
	// the MSB read needs a single sensing.
	c := NewGray(3)
	m := c.Merge(ValidMask(0).With(MSB))
	if got := len(m.Reachable()); got != 2 {
		t.Fatalf("reachable states = %d, want 2", got)
	}
	if got := m.Senses(MSB); got != 1 {
		t.Errorf("MSB senses = %d, want 1", got)
	}
}

func TestMergeQLCFigure6(t *testing.T) {
	// Figure 6: QLC with the two lower bits invalid. Bits 4 and 3 (our
	// pages 3 and 2) drop from 8 and 4 sensings to 2 and 1.
	c := NewGray(4)
	mask := ValidMask(0).With(2).With(3)
	m := c.Merge(mask)
	if got := len(m.Reachable()); got != 4 {
		t.Fatalf("reachable states = %d, want 4", got)
	}
	if got := m.Senses(3); got != 2 {
		t.Errorf("bit4 senses = %d, want 2 (was %d)", got, c.Senses(3))
	}
	if got := m.Senses(2); got != 1 {
		t.Errorf("bit3 senses = %d, want 1 (was %d)", got, c.Senses(2))
	}
}

func TestMergeFullMaskIsIdentity(t *testing.T) {
	for bitsPerCell := 1; bitsPerCell <= 4; bitsPerCell++ {
		c := NewGray(bitsPerCell)
		m := c.Merge(MaskAll(bitsPerCell))
		for s := 0; s < c.States(); s++ {
			if m.Target(s) != s {
				t.Errorf("%d-bit full-mask target(S%d) = S%d", bitsPerCell, s+1, m.Target(s)+1)
			}
		}
		for j := 0; j < bitsPerCell; j++ {
			if m.Senses(PageType(j)) != c.Senses(PageType(j)) {
				t.Errorf("%d-bit full-mask senses(%d) changed", bitsPerCell, j)
			}
		}
	}
}

func TestMergeEmptyMaskCollapsesToTop(t *testing.T) {
	c := NewGray(3)
	m := c.Merge(0)
	if got := len(m.Reachable()); got != 1 {
		t.Fatalf("reachable = %d states, want 1", got)
	}
	if m.Reachable()[0] != c.States()-1 {
		t.Errorf("empty-mask target = S%d, want top state", m.Reachable()[0]+1)
	}
}

func TestMergeOnlyCSBInvalid(t *testing.T) {
	// Keeping LSB pins many states: with only the CSB invalid, the MSB
	// still needs 3 sensings, which is why Table I case 3 moves the LSB
	// out instead of merging around it.
	c := NewGray(3)
	m := c.Merge(MaskAll(3).Without(CSB))
	if got := m.Senses(LSB); got != 1 {
		t.Errorf("LSB senses = %d, want 1", got)
	}
	if got := m.Senses(MSB); got != 3 {
		t.Errorf("MSB senses = %d, want 3", got)
	}
}

func TestMoveDistance(t *testing.T) {
	c := NewGray(3)
	m := c.Merge(MaskAll(3).Without(LSB))
	total, max := m.MoveDistance()
	// S1 moves 7, S2 moves 5, S3 moves 3, S4 moves 1; rest stay.
	if total != 16 || max != 7 {
		t.Errorf("move distance = (%d,%d), want (16,7)", total, max)
	}
	// Full mask: nothing moves.
	total, max = c.Merge(MaskAll(3)).MoveDistance()
	if total != 0 || max != 0 {
		t.Errorf("identity move distance = (%d,%d), want (0,0)", total, max)
	}
}

func TestMergedAccessors(t *testing.T) {
	c := NewGray(3)
	mask := MaskAll(3).Without(LSB)
	m := c.Merge(mask)
	if m.Scheme() != c {
		t.Error("Scheme() should return the source scheme")
	}
	if m.Mask() != mask {
		t.Error("Mask() should return the merge mask")
	}
	if m.String() == "" {
		t.Error("String() should not be empty")
	}
}

// Property: merging never moves a cell downward (ISPP can only add charge),
// and never changes the value of any valid bit.
func TestMergePropertyMonotoneAndValuePreserving(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(1)),
		Values:   nil,
	}
	prop := func(bitsSeed uint8, maskSeed uint32) bool {
		bitsPerCell := int(bitsSeed)%4 + 1
		c := NewGray(bitsPerCell)
		mask := ValidMask(maskSeed) & MaskAll(bitsPerCell)
		m := c.Merge(mask)
		for s := 0; s < c.States(); s++ {
			tgt := m.Target(s)
			if tgt < s {
				return false
			}
			for j := 0; j < bitsPerCell; j++ {
				if mask.Has(PageType(j)) && c.Value(tgt, PageType(j)) != c.Value(s, PageType(j)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: after merging, the sensing count of every valid bit never
// exceeds its conventional count, and the post-merge read levels recover the
// correct bit value for every reachable state.
func TestMergePropertySensesShrinkAndDecode(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}
	prop := func(bitsSeed uint8, maskSeed uint32) bool {
		bitsPerCell := int(bitsSeed)%4 + 1
		c := NewGray(bitsPerCell)
		mask := ValidMask(maskSeed) & MaskAll(bitsPerCell)
		m := c.Merge(mask)
		for j := 0; j < bitsPerCell; j++ {
			pt := PageType(j)
			if !mask.Has(pt) {
				continue
			}
			if m.Senses(pt) > c.Senses(pt) {
				return false
			}
			// Decode every reachable state using only the merged
			// read levels: count levels at/above the state and
			// toggle from the lowest reachable state's value.
			low := m.Reachable()[0]
			for _, s := range m.Reachable() {
				toggles := 0
				for _, v := range m.ReadLevels(pt) {
					if v >= low && v < s {
						toggles++
					}
				}
				want := c.Value(s, pt)
				got := c.Value(low, pt)
				if toggles%2 == 1 {
					got ^= 1
				}
				if got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the number of reachable states equals 2^(valid bits) for the
// Gray coding, so merging under k valid bits always reaches exactly the
// granularity of a k-bit cell.
func TestMergePropertyReachableCount(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	prop := func(bitsSeed uint8, maskSeed uint32) bool {
		bitsPerCell := int(bitsSeed)%4 + 1
		c := NewGray(bitsPerCell)
		mask := ValidMask(maskSeed) & MaskAll(bitsPerCell)
		m := c.Merge(mask)
		return len(m.Reachable()) == 1<<uint(mask.Count())
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestValidMaskOps(t *testing.T) {
	m := MaskAll(3)
	if m.Count() != 3 {
		t.Errorf("MaskAll(3).Count() = %d", m.Count())
	}
	m = m.Without(CSB)
	if m.Has(CSB) || !m.Has(LSB) || !m.Has(MSB) {
		t.Errorf("Without(CSB) wrong: %b", m)
	}
	m = m.With(CSB)
	if m != MaskAll(3) {
		t.Errorf("With(CSB) wrong: %b", m)
	}
}
