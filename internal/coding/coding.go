// Package coding models the bit-to-voltage-state coding of multi-level NAND
// flash cells and the Invalid Data-Aware (IDA) transformation from the paper
// "Invalid Data-Aware Coding to Enhance the Read Performance of High-Density
// Flash Memories" (MICRO 2018).
//
// A cell with b bits has 2^b threshold-voltage states, ordered from the
// erased state (index 0, lowest voltage) upward. A coding scheme assigns a
// b-bit tuple to every state. Reading one logical page (one bit position of
// every cell on a wordline) requires sensing the wordline once per read
// voltage of that bit; a read voltage sits at every boundary between two
// adjacent states whose values for that bit differ. The number of sensings
// therefore equals the number of transitions of the bit along the state
// axis, which is what makes LSB/CSB/MSB read latencies asymmetric.
//
// The IDA transformation merges states that have become indistinguishable
// because some bits were invalidated, moving cells only toward higher
// voltages (the only direction ISPP reprogramming can go), which shrinks the
// set of reachable states and with it the sensing counts of the remaining
// valid bits.
package coding

import (
	"fmt"
	"strings"
)

// PageType identifies a logical page (bit position) within a wordline.
// Page 0 is the fastest page of the conventional Gray coding (LSB for TLC);
// page b-1 is the slowest (MSB for TLC).
type PageType int

// Conventional TLC page names. They are plain PageType values, so they can
// index into per-bit tables directly.
const (
	LSB PageType = 0
	CSB PageType = 1
	MSB PageType = 2
)

// String returns the conventional name of the page type for cells of up to
// four bits, falling back to a numeric form.
func (p PageType) String() string {
	switch p {
	case 0:
		return "LSB"
	case 1:
		return "CSB"
	case 2:
		return "MSB"
	case 3:
		return "TSB"
	default:
		return fmt.Sprintf("bit%d", int(p))
	}
}

// Scheme is an immutable cell coding: an assignment of bit tuples to the
// ordered voltage states of a b-bit cell. It is the base implementation of
// the Code interface; the registered codes are either Schemes with
// different state maps (ida, randio) or thin wrappers overriding the cost
// hooks (ilwc).
type Scheme struct {
	name   string
	bits   int
	states int
	// values[s][j] is the value (0 or 1) of bit j when the cell is in
	// voltage state s. State 0 is the erased (lowest-voltage) state.
	values [][]uint8
	// readLevels[j] lists the read-voltage positions of bit j in
	// ascending order. Level v is the boundary between states v and v+1
	// (0 <= v < states-1).
	readLevels [][]int
	// cost is the per-program power/wear proxy (uniform over states for a
	// plain bijective map; constructors may override it).
	cost CellCost
	// merges[mask] and plans[mask] are the precomputed IDA merge results
	// and Table I refresh plans for every validity mask, built once at
	// construction so Merge and PlanWordline are allocation-free lookups
	// on the simulation hot path.
	merges []*Merged
	plans  []Plan
}

// Scheme implements Code.
var _ Code = (*Scheme)(nil)

// NewGray builds the standard binary-reflected Gray coding used by the paper
// (Figure 2 for TLC, Figure 6 for QLC): bit j has exactly 2^j transitions, so
// reading page j needs 2^j sensings. bits must be between 1 and 8.
func NewGray(bits int) *Scheme {
	if bits < 1 || bits > 8 {
		panic(fmt.Sprintf("coding: NewGray bits %d out of range [1,8]", bits))
	}
	states := 1 << bits
	values := make([][]uint8, states)
	for s := 0; s < states; s++ {
		values[s] = make([]uint8, bits)
		for j := 0; j < bits; j++ {
			// Bit j repeats with period P = 2^(bits-j), phase-shifted
			// by half a period so that the erased state is all ones.
			p := 1 << (bits - j)
			if ((s+p/2)/p)%2 == 0 {
				values[s][j] = 1
			}
		}
	}
	sch, err := NewCustom(values)
	if err != nil {
		panic("coding: internal error building Gray scheme: " + err.Error())
	}
	sch.name = CodeIDA
	return sch
}

// NewCustom builds a scheme from an explicit state-to-bits table, enabling
// vendor-specific codings such as the 2-3-2 TLC coding the paper mentions.
// values[s][j] is the value of bit j in state s; every row must have the same
// length, the number of states must be exactly 2^bits, and every state must
// carry a distinct bit tuple.
func NewCustom(values [][]uint8) (*Scheme, error) {
	states := len(values)
	if states == 0 {
		return nil, fmt.Errorf("coding: empty state table")
	}
	bits := len(values[0])
	if bits == 0 {
		return nil, fmt.Errorf("coding: zero bits per cell")
	}
	if states != 1<<bits {
		return nil, fmt.Errorf("coding: %d states does not match 2^%d bits", states, bits)
	}
	seen := make(map[uint32]bool, states)
	for s, row := range values {
		if len(row) != bits {
			return nil, fmt.Errorf("coding: state %d has %d bits, want %d", s, len(row), bits)
		}
		var key uint32
		for j, v := range row {
			if v > 1 {
				return nil, fmt.Errorf("coding: state %d bit %d has non-binary value %d", s, j, v)
			}
			key |= uint32(v) << uint(j)
		}
		if seen[key] {
			return nil, fmt.Errorf("coding: duplicate bit tuple %0*b", bits, key)
		}
		seen[key] = true
	}
	sch := &Scheme{bits: bits, states: states}
	sch.values = make([][]uint8, states)
	for s := range values {
		sch.values[s] = append([]uint8(nil), values[s]...)
	}
	sch.readLevels = make([][]int, bits)
	for j := 0; j < bits; j++ {
		for v := 0; v < states-1; v++ {
			if values[v][j] != values[v+1][j] {
				sch.readLevels[j] = append(sch.readLevels[j], v)
			}
		}
		if len(sch.readLevels[j]) == 0 {
			return nil, fmt.Errorf("coding: bit %d is constant across all states", j)
		}
	}
	sch.name = "custom"
	sch.cost = uniformCost(states)
	// Precompute the merge result and refresh plan of every validity mask
	// (there are only 2^bits of them), so the hot-path Merge and
	// PlanWordline calls are allocation-free table lookups.
	sch.merges = make([]*Merged, states)
	sch.plans = make([]Plan, states)
	for m := ValidMask(0); int(m) < states; m++ {
		sch.merges[m] = sch.computeMerge(m)
	}
	// Plans second: computePlan reads the merge table through Merge.
	for m := ValidMask(0); int(m) < states; m++ {
		sch.plans[m] = sch.computePlan(m)
	}
	return sch, nil
}

// Vendor232TLC returns the alternative vendor TLC coding mentioned in
// Section III-B of the paper, which needs 2, 3, and 2 sensings for the LSB,
// CSB, and MSB pages respectively (a flatter but still asymmetric layout).
func Vendor232TLC() *Scheme {
	// Built as a Gray sequence (adjacent states differ in one bit) whose
	// per-bit transition counts are 2, 3, and 2.
	values := [][]uint8{
		{1, 1, 1},
		{0, 1, 1},
		{0, 0, 1},
		{0, 0, 0},
		{0, 1, 0},
		{1, 1, 0},
		{1, 0, 0},
		{1, 0, 1},
	}
	sch, err := NewCustom(values)
	if err != nil {
		panic("coding: internal error building 2-3-2 scheme: " + err.Error())
	}
	sch.name = CodeIDA
	return sch
}

// Name returns the registry name of the code family this scheme belongs to
// ("ida" for the Gray and vendor maps, "randio" for the balanced map,
// "custom" for NewCustom schemes).
func (c *Scheme) Name() string { return c.name }

// ProgramCost returns the per-program power/wear proxy of the scheme.
func (c *Scheme) ProgramCost() CellCost { return c.cost }

// Bits returns the number of bits stored per cell.
func (c *Scheme) Bits() int { return c.bits }

// States returns the number of voltage states (2^Bits).
func (c *Scheme) States() int { return c.states }

// Value returns the value of bit j when the cell is in voltage state s.
func (c *Scheme) Value(s int, j PageType) uint8 {
	return c.values[s][j]
}

// Encode returns the voltage state that stores the given bit tuple.
// The tuple length must equal Bits.
func (c *Scheme) Encode(bits []uint8) (int, error) {
	if len(bits) != c.bits {
		return 0, fmt.Errorf("coding: encode got %d bits, want %d", len(bits), c.bits)
	}
outer:
	for s := 0; s < c.states; s++ {
		for j := 0; j < c.bits; j++ {
			if c.values[s][j] != bits[j] {
				continue outer
			}
		}
		return s, nil
	}
	return 0, fmt.Errorf("coding: no state encodes %v", bits)
}

// Decode returns the full bit tuple stored in voltage state s.
func (c *Scheme) Decode(s int) []uint8 {
	return append([]uint8(nil), c.values[s]...)
}

// ReadLevels returns the read-voltage positions used to read bit j under the
// conventional coding. Level v is the boundary between states v and v+1.
// The returned slice must not be modified.
func (c *Scheme) ReadLevels(j PageType) []int {
	return c.readLevels[j]
}

// Senses returns the number of wordline sensings needed to read page j under
// the conventional coding (the number of read voltages of that bit).
func (c *Scheme) Senses(j PageType) int {
	return len(c.readLevels[j])
}

// MaxSenses returns the largest sensing count across all page types, i.e.
// the cost of the slowest page.
func (c *Scheme) MaxSenses() int {
	max := 0
	for j := 0; j < c.bits; j++ {
		if n := len(c.readLevels[j]); n > max {
			max = n
		}
	}
	return max
}

// SenseRead simulates the sensing procedure for bit j on a cell in state s:
// it applies each read voltage of the bit and combines the on/off outcomes.
// A cell is "on" at level v when its state is at or below v. The bit value is
// recovered as the parity of the number of read levels at or above the
// cell's position, matched against the erased-state value. This is exactly
// the hardware procedure the paper describes for LSB/CSB/MSB reads.
func (c *Scheme) SenseRead(s int, j PageType) uint8 {
	on := 0
	for _, v := range c.readLevels[j] {
		if s <= v {
			on++
		}
	}
	// Starting from the erased-state value, every read level below the
	// cell's state toggles the bit once.
	toggles := len(c.readLevels[j]) - on
	v := c.values[0][j]
	if toggles%2 == 1 {
		v ^= 1
	}
	return v
}

// String renders the scheme as a compact table, states in voltage order.
func (c *Scheme) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "coding(%d bits):", c.bits)
	for s := 0; s < c.states; s++ {
		b.WriteString(" S")
		fmt.Fprintf(&b, "%d=", s+1)
		for j := c.bits - 1; j >= 0; j-- {
			fmt.Fprintf(&b, "%d", c.values[s][j])
		}
	}
	return b.String()
}
