package workload

import (
	"encoding/json"
	"fmt"
	"sync"
)

// TraceCache memoizes generated traces and aging preambles per normalized
// profile. Every (profile, system) pair of an experiment sweep replays the
// same profile trace — the system knobs change the device, never the host
// stream — so generating it once and sharing it across systems removes the
// largest repeated cost of a sweep. Cached traces are handed out as shared
// pointers: the simulator replays them through a cursor and never mutates
// them, and callers must do the same.
//
// Generation is deduplicated: two goroutines asking for the same profile
// concurrently generate it once (the second waits). The cache is safe for
// concurrent use and bounds itself to a fixed number of profiles with FIFO
// eviction, so long-lived processes sweeping many profiles do not pin every
// trace forever.
type TraceCache struct {
	mu      sync.Mutex
	entries map[string]*traceEntry
	order   []string // insertion order, for bounded FIFO eviction
	limit   int
}

// traceEntry is one profile's memoized generation; once provides the
// single-flight semantics.
type traceEntry struct {
	once     sync.Once
	trace    *Trace
	preamble *Trace
	err      error
}

// defaultTraceCacheLimit bounds the default cache: the paper's sweeps use
// ~20 distinct profiles, so 64 keeps every realistic sweep fully cached.
const defaultTraceCacheLimit = 64

// NewTraceCache builds a cache holding at most limit profiles (<= 0 uses
// the default of 64).
func NewTraceCache(limit int) *TraceCache {
	if limit <= 0 {
		limit = defaultTraceCacheLimit
	}
	return &TraceCache{entries: make(map[string]*traceEntry), limit: limit}
}

// DefaultTraceCache is the process-wide cache the idaflash run helpers use.
var DefaultTraceCache = NewTraceCache(0)

// profileKey encodes the normalized profile losslessly. Profile is plain
// data (scalars and a name) and encoding/json emits struct fields in
// declaration order, so the key is deterministic. An encoding failure is
// reported rather than panicked: the caller falls back to an uncached
// generation, trading the memoization for survival.
func profileKey(p Profile) (string, error) {
	b, err := json.Marshal(p)
	if err != nil {
		return "", fmt.Errorf("workload: encoding trace cache key: %w", err)
	}
	return string(b), nil
}

// Traces returns the profile's trace and aging preamble, generating them on
// the first request and recalling them afterwards. The returned traces are
// shared and must be treated as immutable.
func (c *TraceCache) Traces(p Profile) (trace, preamble *Trace, err error) {
	np, err := p.Normalize()
	if err != nil {
		return nil, nil, err
	}
	k, err := profileKey(np)
	if err != nil {
		// Uncacheable is not unrunnable: generate without memoizing.
		tr, gerr := np.Generate()
		if gerr != nil {
			return nil, nil, gerr
		}
		pre, gerr := np.AgingPreamble()
		if gerr != nil {
			return nil, nil, gerr
		}
		return tr, pre, nil
	}
	c.mu.Lock()
	e := c.entries[k]
	if e == nil {
		e = &traceEntry{}
		c.entries[k] = e
		c.order = append(c.order, k)
		for len(c.order) > c.limit {
			// FIFO eviction; goroutines already holding the evicted
			// entry still complete against their pointer.
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.trace, e.err = np.Generate()
		if e.err == nil {
			e.preamble, e.err = np.AgingPreamble()
		}
	})
	return e.trace, e.preamble, e.err
}

// Len returns the number of cached profiles (tests and diagnostics).
func (c *TraceCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
