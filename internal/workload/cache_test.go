package workload

import (
	"sync"
	"testing"
)

func cacheProfile(name string) Profile {
	return Profile{Name: name, ReadRatio: 0.7, MeanReadKB: 8, Requests: 500}
}

// TestTraceCacheSharesOneGeneration checks the cache's core contract:
// repeated and concurrent requests for one profile return the same shared
// trace pointers, generated once.
func TestTraceCacheSharesOneGeneration(t *testing.T) {
	c := NewTraceCache(0)
	p := cacheProfile("shared")

	type got struct {
		trace, preamble *Trace
		err             error
	}
	const callers = 8
	results := make([]got, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, pre, err := c.Traces(p)
			results[i] = got{tr, pre, err}
		}()
	}
	wg.Wait()
	first := results[0]
	if first.err != nil {
		t.Fatalf("Traces: %v", first.err)
	}
	if first.trace == nil || len(first.trace.Requests) == 0 {
		t.Fatal("cached trace is empty")
	}
	for i, r := range results[1:] {
		if r.trace != first.trace || r.preamble != first.preamble || r.err != nil {
			t.Fatalf("caller %d got a different generation: %p/%p vs %p/%p (err %v)",
				i+1, r.trace, r.preamble, first.trace, first.preamble, r.err)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}

	// The key is the normalized profile: a request-count default applied by
	// Normalize must hit the same entry, not duplicate it.
	tr2, _, err := c.Traces(p)
	if err != nil || tr2 != first.trace {
		t.Fatalf("repeat lookup regenerated the trace (err %v)", err)
	}
}

// TestTraceCacheDistinguishesProfiles checks that differing profiles never
// share a trace.
func TestTraceCacheDistinguishesProfiles(t *testing.T) {
	c := NewTraceCache(0)
	a, _, err := c.Traces(cacheProfile("a"))
	if err != nil {
		t.Fatal(err)
	}
	q := cacheProfile("a")
	q.ReadRatio = 0.3
	b, _, err := c.Traces(q)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("distinct profiles share one cached trace")
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
}

// TestTraceCacheEvicts checks the FIFO bound: the cache never holds more
// than its limit, and evicted profiles regenerate (to a fresh pointer) on
// the next request.
func TestTraceCacheEvicts(t *testing.T) {
	c := NewTraceCache(2)
	first, _, err := c.Traces(cacheProfile("p0"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		p := cacheProfile("p")
		p.Requests = 500 + i // distinct keys
		if _, _, err := c.Traces(p); err != nil {
			t.Fatal(err)
		}
		if c.Len() > 2 {
			t.Fatalf("cache exceeded its limit: %d entries", c.Len())
		}
	}
	again, _, err := c.Traces(cacheProfile("p0"))
	if err != nil {
		t.Fatal(err)
	}
	if again == first {
		t.Fatal("evicted entry still served the original pointer")
	}
	// Determinism: regeneration must reproduce the identical request stream.
	if len(again.Requests) != len(first.Requests) {
		t.Fatalf("regenerated trace has %d requests, original %d", len(again.Requests), len(first.Requests))
	}
	for i := range first.Requests {
		if first.Requests[i] != again.Requests[i] {
			t.Fatalf("request %d differs after regeneration: %+v vs %+v", i, first.Requests[i], again.Requests[i])
		}
	}
}
