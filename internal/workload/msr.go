package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// The MSR Cambridge block traces (SNIA IOTTA) are CSV lines of the form
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// where Timestamp is a Windows filetime (100 ns ticks), Type is "Read" or
// "Write", Offset and Size are bytes, and ResponseTime is in 100 ns ticks.
// ParseMSR reads that format; WriteMSR emits it (with a synthetic hostname),
// so synthetic traces can be stored and replayed interchangeably with the
// real ones.

const msrTick = 100 * time.Nanosecond

// ParseMSR parses an MSR Cambridge format trace. Arrival times are
// rebased so the first request arrives at zero. Blank lines are skipped;
// any malformed line aborts with an error naming the line number.
func ParseMSR(name string, r io.Reader) (*Trace, error) {
	t := &Trace{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var base int64
	haveBase := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) < 6 {
			return nil, fmt.Errorf("workload: %s line %d: %d fields, want >= 6", name, lineNo, len(f))
		}
		ts, err := strconv.ParseInt(strings.TrimSpace(f[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: %s line %d: bad timestamp: %v", name, lineNo, err)
		}
		var isRead bool
		switch strings.ToLower(strings.TrimSpace(f[3])) {
		case "read", "r":
			isRead = true
		case "write", "w":
			isRead = false
		default:
			return nil, fmt.Errorf("workload: %s line %d: bad type %q", name, lineNo, f[3])
		}
		off, err := strconv.ParseInt(strings.TrimSpace(f[4]), 10, 64)
		if err != nil || off < 0 {
			return nil, fmt.Errorf("workload: %s line %d: bad offset %q", name, lineNo, f[4])
		}
		size, err := strconv.Atoi(strings.TrimSpace(f[5]))
		if err != nil || size <= 0 {
			return nil, fmt.Errorf("workload: %s line %d: bad size %q", name, lineNo, f[5])
		}
		if !haveBase {
			base = ts
			haveBase = true
		}
		if ts < base {
			return nil, fmt.Errorf("workload: %s line %d: timestamp goes backwards", name, lineNo)
		}
		t.Requests = append(t.Requests, Request{
			At:     time.Duration(ts-base) * msrTick,
			Offset: off,
			Size:   size,
			Read:   isRead,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: %s: %v", name, err)
	}
	return t, nil
}

// WriteMSR serializes a trace in the MSR Cambridge CSV format. The hostname
// column carries the trace name and the disk number is 0; response times are
// written as 0 (they are an output of simulation, not an input).
func WriteMSR(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	host := strings.ReplaceAll(t.Name, ",", "_")
	if host == "" {
		host = "synthetic"
	}
	for _, r := range t.Requests {
		typ := "Write"
		if r.Read {
			typ = "Read"
		}
		if _, err := fmt.Fprintf(bw, "%d,%s,0,%s,%d,%d,0\n",
			int64(r.At/msrTick), host, typ, r.Offset, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}
