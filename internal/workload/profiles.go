package workload

import (
	"fmt"
	"time"
)

// PaperTableIII holds, for each of the paper's eleven MSR Cambridge
// workloads, the published characteristics the synthetic profiles are
// matched to (Table III): read request ratio (%), mean read size (KB), read
// data ratio (%), and the fraction of MSB reads whose associated LSB/CSB
// pages are invalid (%).
var PaperTableIII = []struct {
	Name          string
	ReadRatioPct  float64
	ReadSizeKB    float64
	ReadDataPct   float64
	InvalidMSBPct float64
}{
	{"proj_1", 89.43, 37.45, 96.71, 22.12},
	{"proj_2", 87.61, 41.64, 85.77, 32.47},
	{"proj_3", 94.82, 8.99, 87.41, 20.81},
	{"proj_4", 98.52, 23.72, 99.30, 24.63},
	{"hm_1", 95.34, 14.93, 93.83, 20.54},
	{"src1_0", 56.43, 36.47, 47.42, 33.31},
	{"src1_1", 95.26, 35.87, 98.00, 34.79},
	{"src2_0", 97.86, 60.32, 99.51, 21.27},
	{"stg_1", 63.74, 59.68, 92.99, 38.76},
	{"usr_1", 91.48, 52.72, 97.37, 45.44},
	{"usr_2", 81.13, 50.89, 94.01, 21.43},
}

// PaperProfiles returns the eleven synthetic profiles standing in for the
// paper's workloads, with the given request budget per trace (0 uses the
// default). Each profile embeds its Table III targets.
func PaperProfiles(requests int) []Profile {
	out := make([]Profile, 0, len(PaperTableIII))
	for i, w := range PaperTableIII {
		out = append(out, Profile{
			Name:             w.Name,
			ReadRatio:        w.ReadRatioPct / 100,
			MeanReadKB:       w.ReadSizeKB,
			ReadDataRatio:    w.ReadDataPct / 100,
			TargetInvalidMSB: w.InvalidMSBPct / 100,
			Requests:         requests,
			Seed:             int64(1000 + i),
		})
	}
	return out
}

// ExtraProfiles returns the nine additional workloads of Figure 4 (right),
// categorized by read ratio as in the paper: three groups of three, from
// very read-heavy to mixed.
func ExtraProfiles(requests int) []Profile {
	ratios := []float64{0.97, 0.93, 0.90, 0.85, 0.80, 0.75, 0.70, 0.65, 0.60}
	out := make([]Profile, 0, len(ratios))
	for i, rr := range ratios {
		out = append(out, Profile{
			Name:             fmt.Sprintf("rr%02d", int(rr*100)),
			ReadRatio:        rr,
			MeanReadKB:       32,
			ReadDataRatio:    rr, // data mix tracks the request mix
			TargetInvalidMSB: 0.20 + 0.02*float64(i%5),
			Requests:         requests,
			Seed:             int64(2000 + i),
		})
	}
	return out
}

// ProfileByName finds a paper or extra profile by name.
func ProfileByName(name string, requests int) (Profile, error) {
	for _, p := range PaperProfiles(requests) {
		if p.Name == name {
			return p, nil
		}
	}
	for _, p := range ExtraProfiles(requests) {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}

// ProfileNames lists the names of the paper profiles.
func ProfileNames() []string {
	names := make([]string, 0, len(PaperTableIII))
	for _, w := range PaperTableIII {
		names = append(names, w.Name)
	}
	return names
}

// ScaleForQuickRun shrinks a profile for fast tests and benchmarks:
// proportionally fewer requests and a shorter span, preserving rates.
func (p Profile) ScaleForQuickRun(factor int) Profile {
	if factor <= 1 {
		return p
	}
	q := p
	if q.Requests == 0 {
		q.Requests = 100000
	}
	q.Requests /= factor
	if q.Requests < 100 {
		q.Requests = 100
	}
	if q.Duration == 0 {
		q.Duration = 2 * time.Hour
	}
	q.Duration /= time.Duration(factor)
	if q.Duration < time.Minute {
		q.Duration = time.Minute
	}
	return q
}
