package workload

import (
	"math"
	"testing"
	"time"
)

func TestGenerateDeterministic(t *testing.T) {
	p := Profile{Name: "det", ReadRatio: 0.9, MeanReadKB: 32, ReadDataRatio: 0.95, Requests: 2000}
	a, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("lengths differ between runs")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a.Requests[i], b.Requests[i])
		}
	}
}

func TestGenerateSeedsAndNamesDiffer(t *testing.T) {
	base := Profile{Name: "a", ReadRatio: 0.9, MeanReadKB: 32, ReadDataRatio: 0.95, Requests: 500}
	a, _ := base.Generate()
	other := base
	other.Seed = 99
	b, _ := other.Generate()
	renamed := base
	renamed.Name = "b"
	c, _ := renamed.Generate()
	same := func(x, y *Trace) bool {
		for i := range x.Requests {
			if x.Requests[i] != y.Requests[i] {
				return false
			}
		}
		return true
	}
	if same(a, b) {
		t.Error("different seeds produced identical traces")
	}
	if same(a, c) {
		t.Error("different names produced identical traces")
	}
}

func TestGenerateMatchesProfileTargets(t *testing.T) {
	for _, p := range PaperProfiles(20000) {
		tr, err := p.Generate()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		s := tr.Stats()
		if math.Abs(s.ReadRatio-p.ReadRatio) > 0.02 {
			t.Errorf("%s: read ratio %.3f, want %.3f", p.Name, s.ReadRatio, p.ReadRatio)
		}
		if rel := math.Abs(s.MeanReadKB-p.MeanReadKB) / p.MeanReadKB; rel > 0.20 {
			t.Errorf("%s: mean read KB %.1f, want %.1f (+-20%%)", p.Name, s.MeanReadKB, p.MeanReadKB)
		}
		// Read data ratio tracks the target loosely: sizes are clamped
		// to [8KB, 512KB] which biases extreme profiles.
		if p.ReadDataRatio > 0.3 && p.ReadDataRatio < 0.995 {
			if math.Abs(s.ReadDataRatio-p.ReadDataRatio) > 0.12 {
				t.Errorf("%s: read data ratio %.3f, want %.3f (+-0.12)", p.Name, s.ReadDataRatio, p.ReadDataRatio)
			}
		}
	}
}

func TestGenerateAlignment(t *testing.T) {
	p := Profile{Name: "align", ReadRatio: 0.5, MeanReadKB: 20, ReadDataRatio: 0.5, Requests: 3000}
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	np, _ := p.Normalize()
	footprint := int64(np.FootprintMB * 1024 * 1024)
	for i, r := range tr.Requests {
		if r.Offset%alignBytes != 0 {
			t.Fatalf("request %d offset %d unaligned", i, r.Offset)
		}
		if r.Size%alignBytes != 0 || r.Size <= 0 {
			t.Fatalf("request %d size %d unaligned", i, r.Size)
		}
		if r.End() > footprint+alignBytes {
			t.Fatalf("request %d end %d beyond footprint %d", i, r.End(), footprint)
		}
	}
}

func TestNormalizeDefaultsAndErrors(t *testing.T) {
	p, err := Profile{Name: "d", ReadRatio: 0.9, MeanReadKB: 32, ReadDataRatio: 0.9}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if p.Requests == 0 || p.Duration == 0 || p.MeanWriteKB == 0 || p.FootprintMB == 0 {
		t.Errorf("defaults not filled: %+v", p)
	}
	bad := []Profile{
		{},
		{Name: "x", ReadRatio: -0.1, MeanReadKB: 8},
		{Name: "x", ReadRatio: 1.5, MeanReadKB: 8},
		{Name: "x", ReadRatio: 0.5, MeanReadKB: 0},
		{Name: "x", ReadRatio: 0.5, MeanReadKB: 8, Requests: -1},
		{Name: "x", ReadRatio: 0.5, MeanReadKB: 8, Duration: -time.Second},
		{Name: "x", ReadRatio: 0.5, MeanReadKB: 8, SeqProb: 1.5},
		{Name: "x", ReadRatio: 0.5, MeanReadKB: 8, TargetInvalidMSB: 1.5},
		{Name: "x", ReadRatio: 0.5, MeanReadKB: 8, FootprintMB: -3},
	}
	for i, b := range bad {
		if _, err := b.Normalize(); err == nil {
			t.Errorf("case %d should fail: %+v", i, b)
		}
	}
}

func TestDeriveWriteKBReproducesDataRatio(t *testing.T) {
	p := Profile{Name: "w", ReadRatio: 0.9, MeanReadKB: 40, ReadDataRatio: 0.9}
	w := p.deriveWriteKB()
	// With these sizes, read bytes fraction = rr*r / (rr*r + (1-rr)*w).
	got := (0.9 * 40) / (0.9*40 + 0.1*w)
	if math.Abs(got-0.9) > 1e-9 {
		t.Errorf("derived write size %v gives data ratio %v, want 0.9", w, got)
	}
	// Fully-read profiles fall back rather than dividing by zero.
	p100 := Profile{Name: "w", ReadRatio: 1.0, MeanReadKB: 40, ReadDataRatio: 0.9}
	if w := p100.deriveWriteKB(); w <= 0 {
		t.Errorf("fallback write size = %v", w)
	}
}

func TestScaleForQuickRun(t *testing.T) {
	p := Profile{Name: "s", ReadRatio: 0.9, MeanReadKB: 32, Requests: 100000, Duration: 2 * time.Hour}
	q := p.ScaleForQuickRun(10)
	if q.Requests != 10000 || q.Duration != 12*time.Minute {
		t.Errorf("scaled = %d reqs %v", q.Requests, q.Duration)
	}
	if same := p.ScaleForQuickRun(1); same.Requests != p.Requests {
		t.Error("factor 1 should be a no-op")
	}
	// Defaults and floors apply when fields are zero or tiny.
	z := Profile{Name: "z", ReadRatio: 0.9, MeanReadKB: 32}.ScaleForQuickRun(1000000)
	if z.Requests < 100 || z.Duration < time.Minute {
		t.Errorf("floors not applied: %d %v", z.Requests, z.Duration)
	}
}

func TestProfileRegistry(t *testing.T) {
	if len(PaperProfiles(0)) != 11 {
		t.Fatalf("paper profiles = %d, want 11", len(PaperProfiles(0)))
	}
	if len(ExtraProfiles(0)) != 9 {
		t.Fatalf("extra profiles = %d, want 9", len(ExtraProfiles(0)))
	}
	if len(ProfileNames()) != 11 {
		t.Fatalf("profile names = %d", len(ProfileNames()))
	}
	p, err := ProfileByName("usr_1", 5000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Requests != 5000 || math.Abs(p.ReadRatio-0.9148) > 1e-9 {
		t.Errorf("usr_1 = %+v", p)
	}
	if _, err := ProfileByName("rr85", 0); err != nil {
		t.Errorf("extra profile lookup failed: %v", err)
	}
	if _, err := ProfileByName("nope", 0); err == nil {
		t.Error("unknown profile should fail")
	}
	// Every registered profile must normalize cleanly.
	for _, p := range append(PaperProfiles(0), ExtraProfiles(0)...) {
		if _, err := p.Normalize(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestBurstStructure(t *testing.T) {
	p := Profile{Name: "burst", ReadRatio: 0.9, MeanReadKB: 32, ReadDataRatio: 0.9,
		Requests: 20000, BurstMean: 100, BurstGap: 100 * time.Microsecond}
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Count tight gaps (the intra-burst spacing) vs. loose gaps: with a
	// mean burst of 100, the vast majority of inter-arrival gaps must be
	// exactly the burst gap.
	tight, loose := 0, 0
	for i := 1; i < len(tr.Requests); i++ {
		if tr.Requests[i].At-tr.Requests[i-1].At <= 2*p.BurstGap {
			tight++
		} else {
			loose++
		}
	}
	if frac := float64(tight) / float64(tight+loose); frac < 0.90 {
		t.Errorf("tight-gap fraction = %.2f, want bursty (>= 0.90)", frac)
	}
	if loose < 20 {
		t.Errorf("only %d burst boundaries; arrivals not clustered", loose)
	}
	// Type homogeneity within bursts: transitions between read and write
	// requests should be far rarer than requests.
	trans := 0
	for i := 1; i < len(tr.Requests); i++ {
		if tr.Requests[i].Read != tr.Requests[i-1].Read {
			trans++
		}
	}
	if trans > len(tr.Requests)/20 {
		t.Errorf("%d type transitions in %d requests; bursts not homogeneous", trans, len(tr.Requests))
	}
}

func TestAgingPreamble(t *testing.T) {
	p := Profile{Name: "age", ReadRatio: 0.9, MeanReadKB: 32, ReadDataRatio: 0.9, Requests: 5000}
	pre, err := p.AgingPreamble()
	if err != nil {
		t.Fatal(err)
	}
	np, _ := p.Normalize()
	pages := int64(np.FootprintMB*1024*1024) / alignBytes
	if got, want := len(pre.Requests), int(float64(pages)*2.45); got != want {
		t.Errorf("preamble size = %d, want %d (2.45 rounds)", got, want)
	}
	for i, r := range pre.Requests {
		if r.Read {
			t.Fatalf("request %d is a read; preamble must be write-only", i)
		}
		if r.Size != alignBytes {
			t.Fatalf("request %d size %d; preamble writes single pages", i, r.Size)
		}
		if r.At != 0 {
			t.Fatalf("request %d at %v; preamble is instantaneous", i, r.At)
		}
		if r.End() > pages*alignBytes {
			t.Fatalf("request %d beyond footprint", i)
		}
	}
	// Deterministic.
	pre2, _ := p.AgingPreamble()
	for i := range pre.Requests {
		if pre.Requests[i] != pre2.Requests[i] {
			t.Fatal("preamble not deterministic")
		}
	}
}
