// Package workload models host I/O streams: the request/trace types, a
// deterministic synthetic generator with one profile per workload of the
// paper's Table III, and a parser/serializer for the MSR Cambridge block
// trace format so the real traces can be replayed when available.
//
// The paper evaluates on eleven read-intensive volumes of the MSR Cambridge
// suite. Those traces are not redistributable, so this package generates
// synthetic equivalents matched to the published per-workload statistics:
// read request ratio, mean read size, read data ratio (Table III), and an
// update pattern tuned to land the "MSB reads whose LSB/CSB are invalid"
// fraction in the paper's reported band.
package workload

import (
	"fmt"
	"sort"
	"time"
)

// Request is one host I/O.
type Request struct {
	// At is the arrival time, an offset from the trace start.
	At time.Duration
	// Offset is the starting byte address.
	Offset int64
	// Size is the transfer length in bytes.
	Size int
	// Read distinguishes reads from writes.
	Read bool
}

// End returns the first byte address past the request.
func (r Request) End() int64 { return r.Offset + int64(r.Size) }

// Trace is an ordered sequence of host requests.
type Trace struct {
	Name     string
	Requests []Request
}

// Span returns the arrival time of the last request.
func (t *Trace) Span() time.Duration {
	if len(t.Requests) == 0 {
		return 0
	}
	return t.Requests[len(t.Requests)-1].At
}

// Validate reports the first structural problem: unsorted arrivals,
// negative offsets, or non-positive sizes.
func (t *Trace) Validate() error {
	var prev time.Duration
	for i, r := range t.Requests {
		if r.At < prev {
			return fmt.Errorf("workload: request %d arrives at %v before %v", i, r.At, prev)
		}
		prev = r.At
		if r.Offset < 0 {
			return fmt.Errorf("workload: request %d has negative offset %d", i, r.Offset)
		}
		if r.Size <= 0 {
			return fmt.Errorf("workload: request %d has size %d", i, r.Size)
		}
	}
	return nil
}

// TraceStats are the Table III characteristics of a trace.
type TraceStats struct {
	Requests      int
	ReadRatio     float64 // fraction of requests that are reads
	MeanReadKB    float64 // mean read request size
	MeanWriteKB   float64 // mean write request size
	ReadDataRatio float64 // read bytes / total bytes
	FootprintMB   float64 // distinct byte range touched, in MB
	Span          time.Duration
}

// Stats computes the trace's characteristics. Footprint is measured as the
// union of touched intervals.
func (t *Trace) Stats() TraceStats {
	var s TraceStats
	s.Requests = len(t.Requests)
	s.Span = t.Span()
	var readBytes, writeBytes int64
	var reads, writes int
	type iv struct{ lo, hi int64 }
	ivs := make([]iv, 0, len(t.Requests))
	for _, r := range t.Requests {
		if r.Read {
			reads++
			readBytes += int64(r.Size)
		} else {
			writes++
			writeBytes += int64(r.Size)
		}
		ivs = append(ivs, iv{r.Offset, r.End()})
	}
	if s.Requests > 0 {
		s.ReadRatio = float64(reads) / float64(s.Requests)
	}
	if reads > 0 {
		s.MeanReadKB = float64(readBytes) / float64(reads) / 1024
	}
	if writes > 0 {
		s.MeanWriteKB = float64(writeBytes) / float64(writes) / 1024
	}
	if readBytes+writeBytes > 0 {
		s.ReadDataRatio = float64(readBytes) / float64(readBytes+writeBytes)
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var covered int64
	started := false
	var lo, hi int64
	for _, v := range ivs {
		switch {
		case !started:
			lo, hi = v.lo, v.hi
			started = true
		case v.lo > hi:
			covered += hi - lo
			lo, hi = v.lo, v.hi
		case v.hi > hi:
			hi = v.hi
		}
	}
	if started {
		covered += hi - lo
	}
	s.FootprintMB = float64(covered) / (1 << 20)
	return s
}
