package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// alignBytes is the address/size granule of generated requests. It matches
// the 8 KB flash page of the baseline device so generated requests map onto
// whole pages, as the MSR traces (4 KB sectors on 8 KB pages) effectively do
// after FTL alignment.
const alignBytes = 8 * 1024

// refreshPeriodsPerTrace is the number of data-refresh cycles the
// simulation drivers fit into one trace span (they use period = Duration/6).
// The footprint derivation below needs it: the steady-state fraction of
// wordlines with invalid siblings is set by the write volume of one refresh
// period relative to the footprint, because each refresh re-packs a block's
// surviving pages into fully-valid wordlines.
const refreshPeriodsPerTrace = 6

// Profile parameterizes the synthetic generator. Zero-valued optional
// fields are filled by Normalize.
type Profile struct {
	Name string

	// ReadRatio is the fraction of requests that are reads (Table III
	// column 2).
	ReadRatio float64
	// MeanReadKB is the mean read request size (Table III column 3).
	MeanReadKB float64
	// ReadDataRatio is the read share of transferred bytes (Table III
	// column 4); together with ReadRatio and MeanReadKB it determines the
	// mean write size.
	ReadDataRatio float64
	// MeanWriteKB is the mean write size; derived from ReadDataRatio
	// when zero.
	MeanWriteKB float64
	// TargetInvalidMSB is the paper-reported fraction of MSB reads whose
	// associated LSB/CSB pages are invalid (Table III column 5). The
	// generator sizes the footprint so the overwrite pressure lands the
	// simulation near this value.
	TargetInvalidMSB float64

	// FootprintMB is the working-set size; derived from the write volume
	// and TargetInvalidMSB when zero.
	FootprintMB float64
	// Requests is the number of requests to generate.
	Requests int
	// Duration is the simulated span of the trace.
	Duration time.Duration
	// ReadZipf is the skew of read addresses: 0 means uniform; larger
	// values concentrate reads on a hot set.
	ReadZipf float64
	// SeqProb is the probability that a request continues sequentially
	// after the previous one of the same kind.
	SeqProb float64
	// BurstMean is the mean number of requests per arrival burst.
	// Block-level traces are highly bursty (queued dependent I/Os,
	// scanner sweeps); bursts are what make device queueing — and
	// therefore the latency amplification the paper reports — visible.
	// Defaults to 150; 1 disables bursting.
	BurstMean float64
	// BurstGap is the intra-burst inter-arrival time; derived from the
	// mean read size when zero so bursts offer near-service-rate load.
	BurstGap time.Duration
	// Seed makes generation deterministic.
	Seed int64
}

// Normalize fills derived fields and validates ranges. It returns a copy.
func (p Profile) Normalize() (Profile, error) {
	if p.Name == "" {
		return p, fmt.Errorf("workload: profile needs a name")
	}
	if p.ReadRatio < 0 || p.ReadRatio > 1 {
		return p, fmt.Errorf("workload: %s ReadRatio %v out of [0,1]", p.Name, p.ReadRatio)
	}
	if p.MeanReadKB <= 0 {
		return p, fmt.Errorf("workload: %s MeanReadKB %v must be positive", p.Name, p.MeanReadKB)
	}
	if p.Requests == 0 {
		p.Requests = 100000
	}
	if p.Requests < 0 {
		return p, fmt.Errorf("workload: %s Requests %d must be positive", p.Name, p.Requests)
	}
	if p.Duration == 0 {
		p.Duration = 2 * time.Hour
	}
	if p.Duration < 0 {
		return p, fmt.Errorf("workload: %s Duration %v must be positive", p.Name, p.Duration)
	}
	if p.ReadZipf == 0 {
		p.ReadZipf = 1.1
	}
	if p.SeqProb == 0 {
		p.SeqProb = 0.3
	}
	if p.SeqProb < 0 || p.SeqProb >= 1 {
		return p, fmt.Errorf("workload: %s SeqProb %v out of [0,1)", p.Name, p.SeqProb)
	}
	if p.BurstMean == 0 {
		p.BurstMean = 150
	}
	if p.BurstMean < 1 {
		return p, fmt.Errorf("workload: %s BurstMean %v must be at least 1", p.Name, p.BurstMean)
	}
	if p.BurstGap == 0 {
		// Intra-burst spacing scales with the workload's mean read
		// size so that bursts offer near-service-rate load (the
		// sustained-queueing regime block traces exhibit): larger
		// requests need proportionally longer per-request service.
		gap := time.Duration(p.MeanReadKB*5) * time.Microsecond
		if gap < 60*time.Microsecond {
			gap = 60 * time.Microsecond
		}
		if gap > 500*time.Microsecond {
			gap = 500 * time.Microsecond
		}
		p.BurstGap = gap
	}
	if p.BurstGap < 0 {
		return p, fmt.Errorf("workload: %s BurstGap %v must be non-negative", p.Name, p.BurstGap)
	}
	if p.MeanWriteKB == 0 {
		p.MeanWriteKB = p.deriveWriteKB()
	}
	if p.TargetInvalidMSB == 0 {
		p.TargetInvalidMSB = 0.25
	}
	if p.TargetInvalidMSB < 0 || p.TargetInvalidMSB >= 1 {
		return p, fmt.Errorf("workload: %s TargetInvalidMSB %v out of [0,1)", p.Name, p.TargetInvalidMSB)
	}
	if p.FootprintMB == 0 {
		p.FootprintMB = p.deriveFootprintMB()
	}
	if p.FootprintMB <= 0 {
		return p, fmt.Errorf("workload: %s FootprintMB %v must be positive", p.Name, p.FootprintMB)
	}
	return p, nil
}

// deriveWriteKB computes the mean write size that reproduces the profile's
// ReadDataRatio given its ReadRatio and MeanReadKB.
func (p Profile) deriveWriteKB() float64 {
	if p.ReadRatio >= 1 || p.ReadDataRatio <= 0 || p.ReadDataRatio >= 1 {
		return p.MeanReadKB / 2
	}
	// readBytes/totalBytes = rdr with counts n*rr reads, n*(1-rr) writes:
	// w = r * (rr/(1-rr)) * ((1-rdr)/rdr)
	w := p.MeanReadKB * (p.ReadRatio / (1 - p.ReadRatio)) * ((1 - p.ReadDataRatio) / p.ReadDataRatio)
	if w < 4 {
		w = 4
	}
	if w > 512 {
		w = 512
	}
	return w
}

// writeVolumePages estimates the total pages the trace writes.
func (p Profile) writeVolumePages() float64 {
	return float64(p.Requests) * (1 - p.ReadRatio) * p.MeanWriteKB * 1024 / alignBytes
}

// deriveFootprintMB sizes the working set so the trace's overwrite pressure
// produces the wordline-invalidation density implied by TargetInvalidMSB.
// Each data-refresh cycle re-packs surviving pages into fully-valid
// wordlines, so at steady state the per-page invalidation probability per
// period is q = V_period / W, and an MSB read (two faster siblings) finds a
// dead sibling with probability about 1-(1-q/2)^2 averaged over the period.
// Solving for W with the small-q approximation T ~= q gives
// W = V / (periods * T). The paper's traces have exactly this property:
// their write volumes are a material fraction of their footprints per
// refresh period, which is why Table III's column 5 is as large as it is.
func (p Profile) deriveFootprintMB() float64 {
	volumeMB := p.writeVolumePages() * alignBytes / (1024 * 1024)
	t := p.TargetInvalidMSB
	if t < 0.02 {
		t = 0.02
	}
	fp := volumeMB / (refreshPeriodsPerTrace * t)
	if fp < 6 {
		fp = 6
	}
	if fp > 8192 {
		fp = 8192
	}
	return fp
}

// Generate produces the synthetic trace for the profile. The same profile
// (including Seed) always yields the identical trace.
func (p Profile) Generate() (*Trace, error) {
	p, err := p.Normalize()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed ^ int64(len(p.Name))<<32 ^ hashName(p.Name)))
	footprint := int64(p.FootprintMB*1024*1024) / alignBytes * alignBytes
	if footprint < alignBytes {
		footprint = alignBytes
	}
	pages := footprint / alignBytes

	// Zipf source for mild skew among the reads, as customary for
	// storage traces.
	var zipf *rand.Zipf
	if p.ReadZipf > 1 {
		zipf = rand.NewZipf(rng, p.ReadZipf, 8, uint64(pages-1))
	}
	// A fixed multiplicative hash spreads zipf ranks across the address
	// space so hotness is not address-contiguous.
	spread := func(rank uint64) int64 {
		h := rank*2654435761 + 97
		return int64(h % uint64(pages))
	}

	t := &Trace{Name: p.Name, Requests: make([]Request, 0, p.Requests)}
	interarrival := float64(p.Duration) / float64(p.Requests)
	now := 0.0
	burstLeft := 0
	burstIsRead := true
	readsAssigned := 0
	var lastReadEnd, lastWriteEnd int64
	for i := 0; i < p.Requests; i++ {
		// Bursty arrivals: requests cluster in geometric-sized bursts
		// with tight intra-burst spacing; burst gaps scale with the
		// burst size so the long-run rate still matches Duration.
		// Bursts are type-homogeneous — reads arrive in scan/dependent
		// chains, writes in flush batches — which is what block traces
		// show and what exposes read queueing to the coding change.
		if burstLeft == 0 {
			// Deficit-balanced type choice keeps the realized read
			// ratio tight around the target despite long bursts.
			// Write bursts (flushes) scale with the write share so
			// read-heavy workloads do not overshoot on one flush.
			burstIsRead = float64(readsAssigned) <= p.ReadRatio*float64(i)
			mean := p.BurstMean
			if !burstIsRead {
				mean = p.BurstMean * (1 - p.ReadRatio)
				if mean < 1 {
					mean = 1
				}
			}
			burstLeft = 1 + int(rng.ExpFloat64()*(mean-1))
			now += rng.ExpFloat64() * interarrival * float64(burstLeft)
		} else {
			now += float64(p.BurstGap)
		}
		burstLeft--
		isRead := burstIsRead
		if isRead {
			readsAssigned++
		}
		meanKB := p.MeanReadKB
		last := lastReadEnd
		if !isRead {
			meanKB = p.MeanWriteKB
			last = lastWriteEnd
		}
		size := sampleSize(rng, meanKB)
		var off int64
		switch {
		case rng.Float64() < p.SeqProb && last > 0 && last+int64(size) <= footprint:
			off = last
		case isRead && zipf != nil:
			off = spread(zipf.Uint64()) * alignBytes
		default:
			off = rng.Int63n(pages) * alignBytes
		}
		if off+int64(size) > footprint {
			off = footprint - int64(size)
			if off < 0 {
				off = 0
				size = int(footprint)
			}
		}
		if isRead {
			lastReadEnd = off + int64(size)
		} else {
			lastWriteEnd = off + int64(size)
		}
		t.Requests = append(t.Requests, Request{
			At:     time.Duration(now),
			Offset: off,
			Size:   size,
			Read:   isRead,
		})
	}
	return t, nil
}

// AgingPreamble builds a deterministic write-only request stream that ages
// the device into the steady state a long-running volume would be in: the
// footprint is rewritten a couple of times in random single-page order, the
// final pass partially, so pages of all ages coexist and roughly the
// steady-state share of wordlines already has dead siblings at time zero.
// Simulation drivers replay it in zero simulated time before the measured
// trace. The preamble is not part of the trace proper and must not be
// counted in workload statistics.
func (p Profile) AgingPreamble() (*Trace, error) {
	p, err := p.Normalize()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed ^ hashName(p.Name) ^ 0x41474547))
	footprint := int64(p.FootprintMB*1024*1024) / alignBytes * alignBytes
	if footprint < alignBytes {
		footprint = alignBytes
	}
	pages := footprint / alignBytes

	const rounds = 2.45 // two full rewrites plus a partial round
	n := int(float64(pages) * rounds)
	t := &Trace{Name: p.Name + "-aging", Requests: make([]Request, 0, n)}
	for i := 0; i < n; i++ {
		t.Requests = append(t.Requests, Request{
			At:     0,
			Offset: rng.Int63n(pages) * alignBytes,
			Size:   alignBytes,
			Read:   false,
		})
	}
	return t, nil
}

// singlePageProb is the fraction of requests that are single-page. Block
// traces are heavily skewed: most requests are small while a long tail of
// large scans carries the byte volume, which is why the Table III mean
// sizes are several times the median.
const singlePageProb = 0.6

// sampleSize draws a request size (bytes): single-page with probability
// singlePageProb, otherwise an exponential tail sized so the overall mean
// matches meanKB, clamped to [1 page, 512 KB].
func sampleSize(rng *rand.Rand, meanKB float64) int {
	if rng.Float64() < singlePageProb {
		return alignBytes
	}
	pageKB := float64(alignBytes) / 1024
	tailMean := (meanKB - singlePageProb*pageKB) / (1 - singlePageProb)
	if tailMean < pageKB {
		tailMean = pageKB
	}
	kb := rng.ExpFloat64() * tailMean
	b := int(kb*1024) / alignBytes * alignBytes
	if b < alignBytes {
		b = alignBytes
	}
	if b > 512*1024 {
		b = 512 * 1024
	}
	return b
}

// hashName folds a profile name into seed bits so differently-named
// profiles with the same Seed still produce distinct traces.
func hashName(s string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h & 0x7fffffffffffffff)
}
