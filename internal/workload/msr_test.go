package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestParseMSR(t *testing.T) {
	in := strings.Join([]string{
		"128166372003061629,web0,0,Read,7014609920,24576,41286",
		"",
		"128166372013061629,web0,0,Write,7014634496,8192,2910",
		"128166372023061629,web0,0,Read,0,4096,100",
	}, "\n")
	tr, err := ParseMSR("web0", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 3 {
		t.Fatalf("requests = %d", len(tr.Requests))
	}
	if tr.Requests[0].At != 0 {
		t.Errorf("first arrival = %v, want 0 (rebased)", tr.Requests[0].At)
	}
	// 10^7 ticks of 100ns = 1s.
	if tr.Requests[1].At != time.Second {
		t.Errorf("second arrival = %v, want 1s", tr.Requests[1].At)
	}
	if !tr.Requests[0].Read || tr.Requests[1].Read {
		t.Error("types wrong")
	}
	if tr.Requests[0].Offset != 7014609920 || tr.Requests[0].Size != 24576 {
		t.Errorf("first request = %+v", tr.Requests[0])
	}
}

func TestParseMSRShortTypeNames(t *testing.T) {
	in := "100,h,0,R,0,4096,0\n200,h,0,W,4096,4096,0\n"
	tr, err := ParseMSR("h", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Requests[0].Read || tr.Requests[1].Read {
		t.Error("short type names not accepted")
	}
}

func TestParseMSRErrors(t *testing.T) {
	cases := []string{
		"1,h,0,Read,0",                       // too few fields
		"x,h,0,Read,0,4096,0",                // bad timestamp
		"1,h,0,Banana,0,4096,0",              // bad type
		"1,h,0,Read,-5,4096,0",               // negative offset
		"1,h,0,Read,abc,4096,0",              // bad offset
		"1,h,0,Read,0,0,0",                   // zero size
		"1,h,0,Read,0,x,0",                   // bad size
		"5,h,0,Read,0,1,0\n1,h,0,Read,0,1,0", // time goes backwards
	}
	for i, in := range cases {
		if _, err := ParseMSR("t", strings.NewReader(in)); err == nil {
			t.Errorf("case %d should fail: %q", i, in)
		}
	}
}

func TestMSRRoundTrip(t *testing.T) {
	p := Profile{Name: "round", ReadRatio: 0.8, MeanReadKB: 24, ReadDataRatio: 0.8, Requests: 500}
	orig, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMSR(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseMSR("round", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != len(orig.Requests) {
		t.Fatalf("round trip lost requests: %d vs %d", len(back.Requests), len(orig.Requests))
	}
	for i := range orig.Requests {
		o, b := orig.Requests[i], back.Requests[i]
		if o.Offset != b.Offset || o.Size != b.Size || o.Read != b.Read {
			t.Fatalf("request %d mismatch: %+v vs %+v", i, o, b)
		}
		// ParseMSR rebases arrivals to the first request, and times
		// quantize to 100ns ticks.
		want := o.At - orig.Requests[0].At
		if d := want - b.At; d < -msrTick || d > msrTick {
			t.Fatalf("request %d time drift %v", i, d)
		}
	}
}

func TestWriteMSREmptyName(t *testing.T) {
	var buf bytes.Buffer
	tr := &Trace{Requests: []Request{{At: 0, Offset: 0, Size: 8192, Read: true}}}
	if err := WriteMSR(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "synthetic") {
		t.Errorf("empty name should become synthetic: %q", buf.String())
	}
}
