package workload

import (
	"testing"
	"time"
)

func TestTraceSpanAndValidate(t *testing.T) {
	tr := &Trace{Name: "t"}
	if tr.Span() != 0 {
		t.Error("empty trace span should be 0")
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("empty trace should validate: %v", err)
	}
	tr.Requests = []Request{
		{At: 0, Offset: 0, Size: 8192, Read: true},
		{At: time.Millisecond, Offset: 8192, Size: 8192, Read: false},
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("valid trace failed: %v", err)
	}
	if tr.Span() != time.Millisecond {
		t.Errorf("span = %v", tr.Span())
	}
}

func TestTraceValidateErrors(t *testing.T) {
	cases := []Trace{
		{Requests: []Request{{At: time.Second}, {At: 0, Size: 1}}},
		{Requests: []Request{{At: 0, Offset: -1, Size: 1}}},
		{Requests: []Request{{At: 0, Offset: 0, Size: 0}}},
	}
	for i := range cases {
		if err := cases[i].Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestTraceStats(t *testing.T) {
	tr := &Trace{
		Name: "t",
		Requests: []Request{
			{At: 0, Offset: 0, Size: 16384, Read: true},
			{At: time.Second, Offset: 32768, Size: 8192, Read: true},
			{At: 2 * time.Second, Offset: 0, Size: 8192, Read: false},
		},
	}
	s := tr.Stats()
	if s.Requests != 3 {
		t.Errorf("requests = %d", s.Requests)
	}
	if got, want := s.ReadRatio, 2.0/3.0; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("read ratio = %v", got)
	}
	if s.MeanReadKB != 12 {
		t.Errorf("mean read KB = %v, want 12", s.MeanReadKB)
	}
	if s.MeanWriteKB != 8 {
		t.Errorf("mean write KB = %v, want 8", s.MeanWriteKB)
	}
	if got, want := s.ReadDataRatio, 24.0/32.0; got != want {
		t.Errorf("read data ratio = %v, want %v", got, want)
	}
	// Footprint: [0,16384) + [32768,40960) = 24576 bytes; the write
	// overlaps the first read.
	if got, want := s.FootprintMB, 24576.0/(1<<20); got != want {
		t.Errorf("footprint = %v MB, want %v", got, want)
	}
	if s.Span != 2*time.Second {
		t.Errorf("span = %v", s.Span)
	}
}

func TestTraceStatsEmpty(t *testing.T) {
	s := (&Trace{}).Stats()
	if s.Requests != 0 || s.FootprintMB != 0 || s.ReadRatio != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestRequestEnd(t *testing.T) {
	r := Request{Offset: 100, Size: 28}
	if r.End() != 128 {
		t.Errorf("End() = %d", r.End())
	}
}
