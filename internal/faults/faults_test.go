package faults

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"idaflash/internal/flash"
	"idaflash/internal/sim"
)

func TestDurationJSON(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{`"1.5ms"`, 1500 * time.Microsecond},
		{`"2s"`, 2 * time.Second},
		{`1500000`, 1500 * time.Microsecond},
		{`0`, 0},
	}
	for _, c := range cases {
		var d Duration
		if err := json.Unmarshal([]byte(c.in), &d); err != nil {
			t.Fatalf("unmarshal %s: %v", c.in, err)
		}
		if d.D() != c.want {
			t.Errorf("unmarshal %s = %v, want %v", c.in, d.D(), c.want)
		}
	}
	var d Duration
	if err := json.Unmarshal([]byte(`"three seconds"`), &d); err == nil {
		t.Error("bad duration string accepted")
	}
	// Round trip: marshal writes the string form.
	b, err := json.Marshal(Duration(250 * time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	var back Duration
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.D() != 250*time.Microsecond {
		t.Errorf("round trip %s -> %v", b, back.D())
	}
}

func TestWearFailureAt(t *testing.T) {
	w := WearFailure{Base: 0.001, PerKCycle: 0.01, Max: 0.05}
	if got := w.At(0); got != 0.001 {
		t.Errorf("fresh block probability %v, want base", got)
	}
	if got := w.At(1000); math.Abs(got-0.011) > 1e-12 {
		t.Errorf("at 1000 cycles %v, want 0.011", got)
	}
	if got := w.At(100000); got != 0.05 {
		t.Errorf("cap %v, want Max", got)
	}
	if got := w.At(-5); got != 0.001 {
		t.Errorf("negative erase count %v, want clamp to base", got)
	}
	// Zero Max means no cap short of certainty.
	uncapped := WearFailure{Base: 0.5, PerKCycle: 1}
	if got := uncapped.At(1000); got != 1.0 {
		t.Errorf("uncapped %v, want 1.0", got)
	}
}

func TestOutageCovers(t *testing.T) {
	o := Outage{Device: 2, Unit: 1, After: Duration(time.Second), For: Duration(time.Second)}
	at := func(d time.Duration) sim.Time { return sim.Time(d) }
	if o.covers(2, 1, at(999*time.Millisecond)) {
		t.Error("covers before the window")
	}
	if !o.covers(2, 1, at(time.Second)) || !o.covers(2, 1, at(1999*time.Millisecond)) {
		t.Error("window start/interior not covered")
	}
	if o.covers(2, 1, at(2*time.Second)) {
		t.Error("covers after the window")
	}
	if o.covers(1, 1, at(time.Second)) || o.covers(2, 0, at(time.Second)) {
		t.Error("wrong device/unit covered")
	}
	all := Outage{Device: -1, Unit: 0, After: 0}
	if !all.covers(0, 0, 0) || !all.covers(7, 0, at(time.Hour)) {
		t.Error("device -1 should cover every device, permanently")
	}
}

func TestScenarioValidate(t *testing.T) {
	var nilSc *Scenario
	if err := nilSc.Validate(); err != nil {
		t.Errorf("nil scenario should validate: %v", err)
	}
	bad := []Scenario{
		{ProgramFail: WearFailure{Base: -0.1}},
		{EraseFail: WearFailure{Max: 1.5}},
		{Dies: []Outage{{Device: -2}}},
		{Dies: []Outage{{Unit: -1}}},
		{Channels: []Outage{{After: Duration(-time.Second)}}},
		{Read: ReadFaults{TimeoutProb: 0.7, SpikeProb: 0.7, Spike: Duration(time.Millisecond)}},
		{Read: ReadFaults{SpikeProb: 0.1}}, // spike prob without a spike
		{Retry: Retry{Max: -1}},
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("case %d: Validate() = nil, want error", i)
		}
	}
	ok := Scenario{
		ProgramFail: WearFailure{Base: 0.001, PerKCycle: 0.01, Max: 0.1},
		Dies:        []Outage{{Device: -1, Unit: 3, After: Duration(time.Minute)}},
		Read:        ReadFaults{TimeoutProb: 0.01, SpikeProb: 0.05, Spike: Duration(time.Millisecond)},
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
}

func TestLoad(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`{
		"name": "t",
		"seed": 7,
		"program_fail": {"base": 0.001},
		"dies": [{"device": 1, "unit": 0, "after": "10ms", "for": "5ms"}],
		"read_faults": {"timeout_prob": 0.01, "spike_prob": 0.02, "spike": "200us"},
		"retry": {"max": 2, "backoff": "25us"}
	}`), 0o644)
	sc, err := Load(good)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "t" || sc.Seed != 7 || sc.ProgramFail.Base != 0.001 {
		t.Errorf("scalar fields wrong: %+v", sc)
	}
	if len(sc.Dies) != 1 || sc.Dies[0].After.D() != 10*time.Millisecond || sc.Dies[0].For.D() != 5*time.Millisecond {
		t.Errorf("outage wrong: %+v", sc.Dies)
	}
	if sc.Retry.Max != 2 || sc.Retry.Backoff.D() != 25*time.Microsecond {
		t.Errorf("retry wrong: %+v", sc.Retry)
	}

	typo := filepath.Join(dir, "typo.json")
	os.WriteFile(typo, []byte(`{"programfail": {"base": 0.1}}`), 0o644)
	if _, err := Load(typo); err == nil {
		t.Error("unknown field accepted")
	}
	invalid := filepath.Join(dir, "invalid.json")
	os.WriteFile(invalid, []byte(`{"read_faults": {"timeout_prob": 2}}`), 0o644)
	if _, err := Load(invalid); err == nil {
		t.Error("invalid scenario accepted")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRetryDefaultsAndBackoff(t *testing.T) {
	r := Retry{}.withDefaults()
	if r.Max != DefaultMaxRetries || r.Backoff != DefaultBackoff || r.OpTimeout != DefaultOpTimeout {
		t.Errorf("defaults wrong: %+v", r)
	}
	r = Retry{Max: 5, Backoff: Duration(100 * time.Microsecond)}.withDefaults()
	if r.Max != 5 || r.Backoff.D() != 100*time.Microsecond {
		t.Error("explicit values overridden")
	}
	if got := r.BackoffAt(0); got != 100*time.Microsecond {
		t.Errorf("BackoffAt(0) = %v", got)
	}
	if got := r.BackoffAt(3); got != 800*time.Microsecond {
		t.Errorf("BackoffAt(3) = %v, want 800us", got)
	}
	// The doubling caps out instead of overflowing.
	if got := r.BackoffAt(80); got > 2*time.Second {
		t.Errorf("BackoffAt(80) = %v, want capped", got)
	}
}

func TestInjectorNilSafety(t *testing.T) {
	var inj *Injector
	if NewInjector(nil, 1, 0) != nil {
		t.Fatal("nil scenario should produce a nil injector")
	}
	if inj.ProgramFails(flash.PageAddr{}, 1000) || inj.EraseFails(flash.BlockAddr{}, 1000) {
		t.Error("nil injector injected a media failure")
	}
	if inj.DieDown(0, 0) || inj.ChannelDown(0, 0) {
		t.Error("nil injector reported an outage")
	}
	if extra, timeout := inj.ReadFault(); extra != 0 || timeout {
		t.Error("nil injector injected a read fault")
	}
	if inj.Scenario() != nil {
		t.Error("nil injector has a scenario")
	}
	if r := inj.Retry(); r.Max != DefaultMaxRetries {
		t.Error("nil injector retry policy not defaulted")
	}
}

func TestInjectorDeterminism(t *testing.T) {
	sc := &Scenario{
		Seed:        11,
		ProgramFail: WearFailure{Base: 0.3},
		EraseFail:   WearFailure{Base: 0.2},
		Read:        ReadFaults{TimeoutProb: 0.1, SpikeProb: 0.2, Spike: Duration(time.Millisecond)},
	}
	draw := func(inj *Injector) []bool {
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, inj.ProgramFails(flash.PageAddr{}, i))
			out = append(out, inj.EraseFails(flash.BlockAddr{}, i))
			_, to := inj.ReadFault()
			out = append(out, to)
		}
		return out
	}
	a := draw(NewInjector(sc, 5, 0))
	b := draw(NewInjector(sc, 5, 0))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identical injectors", i)
		}
	}
	// A different device seed draws a different stream.
	c := draw(NewInjector(sc, 6, 0))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault streams")
	}
}

func TestInjectorOutagesByDevice(t *testing.T) {
	sc := &Scenario{
		Dies:     []Outage{{Device: 2, Unit: 0, After: Duration(time.Second)}},
		Channels: []Outage{{Device: -1, Unit: 1, After: 0, For: Duration(time.Second)}},
	}
	d2 := NewInjector(sc, 1, 2)
	d0 := NewInjector(sc, 1, 0)
	late := sim.Time(2 * time.Second)
	if !d2.DieDown(0, late) {
		t.Error("device 2 die 0 should be down after the outage start")
	}
	if d2.DieDown(0, sim.Time(time.Millisecond)) {
		t.Error("outage active before its start")
	}
	if d2.DieDown(1, late) {
		t.Error("wrong die down")
	}
	if d0.DieDown(0, late) {
		t.Error("outage leaked to another device")
	}
	// The channel outage hits every device but expires.
	if !d0.ChannelDown(1, sim.Time(time.Millisecond)) || !d2.ChannelDown(1, sim.Time(time.Millisecond)) {
		t.Error("all-device channel outage missing")
	}
	if d0.ChannelDown(1, late) {
		t.Error("timed outage did not expire")
	}
}

func TestReadFaultExclusive(t *testing.T) {
	sc := &Scenario{Read: ReadFaults{TimeoutProb: 0.3, SpikeProb: 0.3, Spike: Duration(time.Millisecond)}}
	inj := NewInjector(sc, 3, 0)
	timeouts, spikes, clean := 0, 0, 0
	n := 20000
	for i := 0; i < n; i++ {
		extra, timeout := inj.ReadFault()
		switch {
		case timeout && extra != 0:
			t.Fatal("timeout and spike in one draw")
		case timeout:
			timeouts++
		case extra != 0:
			if extra != time.Millisecond {
				t.Fatalf("spike %v, want 1ms", extra)
			}
			spikes++
		default:
			clean++
		}
	}
	frac := func(k int) float64 { return float64(k) / float64(n) }
	if f := frac(timeouts); f < 0.25 || f > 0.35 {
		t.Errorf("timeout fraction %.3f, want ~0.3", f)
	}
	if f := frac(spikes); f < 0.25 || f > 0.35 {
		t.Errorf("spike fraction %.3f, want ~0.3", f)
	}
	if f := frac(clean); f < 0.35 || f > 0.45 {
		t.Errorf("clean fraction %.3f, want ~0.4", f)
	}
}
