// Package faults is the deterministic fault-injection subsystem of the
// simulated storage stack. A Scenario describes, declaratively, the failure
// modes a run must survive: program/erase failures whose probability grows
// with per-block wear, whole-die and channel outages (permanent or timed
// windows), and transient read timeouts or latency spikes. An Injector
// instantiates a scenario for one device with a seeded random stream, so
// two runs of the same scenario on the same workload draw identical faults
// — fault campaigns are replayable bit for bit, and the CI determinism gate
// covers them like any other run.
//
// The injector is consulted by the layers the scenario stresses: the FTL
// asks it whether a program or erase fails (grown-bad-block management,
// internal/ftl), and the SSD host path asks it whether a die or channel is
// down and whether a read transiently times out (bounded retry-with-backoff,
// internal/ssd). The array layer (internal/array) reconstructs reads that
// still fail from parity peers. The injector itself holds no device state;
// it only answers questions, which keeps every recovery decision in the
// layer that owns it.
package faults

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"idaflash/internal/flash"
	"idaflash/internal/sim"
)

// Duration is a time.Duration that unmarshals from JSON either as an
// integer nanosecond count or as a Go duration string ("1.5ms", "2s"), so
// scenario files stay human-readable.
type Duration time.Duration

// D returns the wrapped time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// UnmarshalJSON accepts both 1500000 and "1.5ms".
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("faults: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = Duration(n)
	return nil
}

// MarshalJSON writes the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// WearFailure is a wear-dependent failure probability: a program or erase
// of a block with e prior erase cycles fails with probability
//
//	min(Base + PerKCycle * e/1000, Max)
//
// matching the empirical observation that grown bad blocks appear at a rate
// that accelerates with P/E cycling.
type WearFailure struct {
	// Base is the failure probability of a fresh block.
	Base float64 `json:"base,omitempty"`
	// PerKCycle is the probability added per 1000 erase cycles.
	PerKCycle float64 `json:"per_k_cycle,omitempty"`
	// Max caps the probability; zero means 1.0.
	Max float64 `json:"max,omitempty"`
}

// At returns the failure probability at the given erase count.
func (w WearFailure) At(eraseCount int) float64 {
	if eraseCount < 0 {
		eraseCount = 0
	}
	p := w.Base + w.PerKCycle*float64(eraseCount)/1000.0
	limit := w.Max
	if limit == 0 {
		limit = 1.0
	}
	if p > limit {
		p = limit
	}
	if p < 0 {
		p = 0
	}
	return p
}

func (w WearFailure) validate(name string) error {
	if w.Base < 0 || w.Base > 1 {
		return fmt.Errorf("faults: %s.base %v out of [0,1]", name, w.Base)
	}
	if w.PerKCycle < 0 {
		return fmt.Errorf("faults: %s.per_k_cycle %v must be non-negative", name, w.PerKCycle)
	}
	if w.Max < 0 || w.Max > 1 {
		return fmt.Errorf("faults: %s.max %v out of [0,1]", name, w.Max)
	}
	return nil
}

// Outage takes one die or channel out of service. Outages are declarative:
// the window is fixed in simulated time, so the injector answers "is this
// unit down at instant t" purely from the scenario, with no random state.
type Outage struct {
	// Device selects the array member the outage applies to; -1 (or
	// omitted via the default 0 with single devices) applies to device 0.
	// Use -1 to hit every device.
	Device int `json:"device"`
	// Unit is the die index (for die outages) or channel index (for
	// channel outages) within the device.
	Unit int `json:"unit"`
	// After is the simulated instant (from the start of the measured
	// phase) the outage begins.
	After Duration `json:"after"`
	// For is the outage duration; zero means permanent.
	For Duration `json:"for,omitempty"`
}

// covers reports whether the outage applies to the device/unit at instant t.
func (o Outage) covers(device, unit int, t sim.Time) bool {
	if o.Device != -1 && o.Device != device {
		return false
	}
	if o.Unit != unit || t < sim.Time(o.After) {
		return false
	}
	return o.For == 0 || t < sim.Time(o.After)+sim.Time(o.For)
}

// ReadFaults injects transient read-path trouble: with TimeoutProb a read
// command hangs until the per-op timeout expires and must be retried; with
// SpikeProb it completes but takes Spike longer than normal (a one-off
// latency spike, e.g. a background calibration colliding with the read).
type ReadFaults struct {
	TimeoutProb float64  `json:"timeout_prob,omitempty"`
	SpikeProb   float64  `json:"spike_prob,omitempty"`
	Spike       Duration `json:"spike,omitempty"`
}

func (r ReadFaults) validate() error {
	if r.TimeoutProb < 0 || r.TimeoutProb > 1 {
		return fmt.Errorf("faults: read_faults.timeout_prob %v out of [0,1]", r.TimeoutProb)
	}
	if r.SpikeProb < 0 || r.SpikeProb > 1 {
		return fmt.Errorf("faults: read_faults.spike_prob %v out of [0,1]", r.SpikeProb)
	}
	if r.TimeoutProb+r.SpikeProb > 1 {
		return fmt.Errorf("faults: read_faults timeout_prob+spike_prob %v exceeds 1",
			r.TimeoutProb+r.SpikeProb)
	}
	if r.Spike < 0 {
		return fmt.Errorf("faults: read_faults.spike %v must be non-negative", r.Spike.D())
	}
	if r.SpikeProb > 0 && r.Spike == 0 {
		return fmt.Errorf("faults: read_faults.spike_prob set but spike is zero")
	}
	return nil
}

// Retry is the host-path recovery policy: how often a failed or timed-out
// flash operation is retried, how long the host backs off between attempts
// (doubling per attempt), and how long a command may run before the host
// declares it timed out.
type Retry struct {
	// Max is the retry budget per operation (attempts beyond the first).
	// Zero means DefaultMaxRetries.
	Max int `json:"max,omitempty"`
	// Backoff is the delay before the first retry; it doubles each
	// attempt. Zero means DefaultBackoff.
	Backoff Duration `json:"backoff,omitempty"`
	// OpTimeout is the per-operation timeout a hung command burns before
	// the host gives up on it. Zero means DefaultOpTimeout.
	OpTimeout Duration `json:"op_timeout,omitempty"`
}

// Default retry-policy values, chosen against the paper's Table II timing:
// the timeout comfortably covers a worst-case read (4 sensings + transfer +
// retries) and the backoff is one transfer time.
const (
	DefaultMaxRetries = 3
	DefaultBackoff    = Duration(50 * time.Microsecond)
	DefaultOpTimeout  = Duration(2 * time.Millisecond)
)

// withDefaults fills zero fields.
func (r Retry) withDefaults() Retry {
	if r.Max == 0 {
		r.Max = DefaultMaxRetries
	}
	if r.Backoff == 0 {
		r.Backoff = DefaultBackoff
	}
	if r.OpTimeout == 0 {
		r.OpTimeout = DefaultOpTimeout
	}
	return r
}

// BackoffAt returns the host-side delay before retry attempt k (0-based),
// doubling per attempt.
func (r Retry) BackoffAt(attempt int) time.Duration {
	b := r.Backoff.D()
	for i := 0; i < attempt && b < time.Second; i++ {
		b *= 2
	}
	return b
}

func (r Retry) validate() error {
	if r.Max < 0 {
		return fmt.Errorf("faults: retry.max %d must be non-negative", r.Max)
	}
	if r.Backoff < 0 {
		return fmt.Errorf("faults: retry.backoff %v must be non-negative", r.Backoff.D())
	}
	if r.OpTimeout < 0 {
		return fmt.Errorf("faults: retry.op_timeout %v must be non-negative", r.OpTimeout.D())
	}
	return nil
}

// Scenario is a complete declarative fault campaign, loadable from JSON
// (cmd/idasim -faults <file>).
type Scenario struct {
	// Name labels the scenario in reports.
	Name string `json:"name,omitempty"`
	// Seed decorrelates the scenario's random draws from the device's own
	// randomness; the injector mixes it with the device seed.
	Seed int64 `json:"seed,omitempty"`
	// ProgramFail and EraseFail are the wear-dependent media failures.
	ProgramFail WearFailure `json:"program_fail,omitempty"`
	EraseFail   WearFailure `json:"erase_fail,omitempty"`
	// Dies and Channels list the outage windows.
	Dies     []Outage `json:"dies,omitempty"`
	Channels []Outage `json:"channels,omitempty"`
	// Read injects transient read-path faults.
	Read ReadFaults `json:"read_faults,omitempty"`
	// Retry is the host recovery policy.
	Retry Retry `json:"retry,omitempty"`
}

// Validate reports the first problem with the scenario, or nil.
func (s *Scenario) Validate() error {
	if s == nil {
		return nil
	}
	if err := s.ProgramFail.validate("program_fail"); err != nil {
		return err
	}
	if err := s.EraseFail.validate("erase_fail"); err != nil {
		return err
	}
	for i, o := range s.Dies {
		if o.Device < -1 {
			return fmt.Errorf("faults: dies[%d].device %d invalid (-1 means all)", i, o.Device)
		}
		if o.Unit < 0 {
			return fmt.Errorf("faults: dies[%d].unit %d must be non-negative", i, o.Unit)
		}
		if o.After < 0 || o.For < 0 {
			return fmt.Errorf("faults: dies[%d] has a negative window", i)
		}
	}
	for i, o := range s.Channels {
		if o.Device < -1 {
			return fmt.Errorf("faults: channels[%d].device %d invalid (-1 means all)", i, o.Device)
		}
		if o.Unit < 0 {
			return fmt.Errorf("faults: channels[%d].unit %d must be non-negative", i, o.Unit)
		}
		if o.After < 0 || o.For < 0 {
			return fmt.Errorf("faults: channels[%d] has a negative window", i)
		}
	}
	if err := s.Read.validate(); err != nil {
		return err
	}
	return s.Retry.validate()
}

// Load parses a scenario from a JSON file. Unknown fields are rejected so
// typos in scenario files fail loudly.
func Load(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("faults: %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("faults: %s: %w", path, err)
	}
	return &s, nil
}

// Injector answers fault questions for one device. All methods are nil-safe
// so call sites need no enabled/disabled branches beyond the pointer check
// the compiler already emits. An Injector belongs to one device's
// simulation goroutine; its random stream is consumed in event order, which
// is deterministic.
type Injector struct {
	sc     *Scenario
	device int
	retry  Retry
	// src counts the source-level draws behind rng so device-state
	// snapshots can record the stream position and SkipTo can replay it.
	src *sim.CountedSource
	rng *rand.Rand
}

// NewInjector instantiates the scenario for one device. seed is the
// device's own seed (already decorrelated per array member); device is the
// array member index outages are filtered by. A nil scenario returns a nil
// injector, which disables all injection.
func NewInjector(sc *Scenario, seed int64, device int) *Injector {
	if sc == nil {
		return nil
	}
	src := sim.NewCountedSource(seed ^ sc.Seed ^ 0x4641554C)
	return &Injector{
		sc:     sc,
		device: device,
		retry:  sc.Retry.withDefaults(),
		src:    src,
		rng:    rand.New(src),
	}
}

// Draws returns the number of random draws the injector has consumed — its
// position in the seeded fault stream. Zero for a nil injector. Device-state
// snapshots record it so a restored run's fault draws continue exactly where
// the captured run's would have.
func (i *Injector) Draws() uint64 {
	if i == nil {
		return 0
	}
	return i.src.Draws()
}

// SkipTo fast-forwards the injector's random stream to the given draw
// position, as recorded by Draws on the run being restored. The stream can
// only move forward; asking a nil injector to reach a non-zero position (or
// any injector to rewind) reports an error, which snapshot restores treat as
// a mis-keyed snapshot and fail soft to replay.
func (i *Injector) SkipTo(draws uint64) error {
	if i == nil {
		if draws != 0 {
			return fmt.Errorf("faults: snapshot recorded %d fault draws but the run has no scenario", draws)
		}
		return nil
	}
	cur := i.src.Draws()
	if cur > draws {
		return fmt.Errorf("faults: injector already consumed %d draws, cannot rewind to %d", cur, draws)
	}
	i.src.Skip(draws - cur)
	return nil
}

// Scenario returns the underlying scenario (nil for a nil injector).
func (i *Injector) Scenario() *Scenario {
	if i == nil {
		return nil
	}
	return i.sc
}

// Retry returns the defaulted retry policy (the zero policy when nil).
func (i *Injector) Retry() Retry {
	if i == nil {
		return Retry{}.withDefaults()
	}
	return i.retry
}

// ProgramFails draws whether a page program into the block fails, given the
// block's erase count. Implements ftl.FaultModel.
func (i *Injector) ProgramFails(_ flash.PageAddr, eraseCount int) bool {
	if i == nil {
		return false
	}
	p := i.sc.ProgramFail.At(eraseCount)
	return p > 0 && i.rng.Float64() < p
}

// EraseFails draws whether an erase of the block fails, given its erase
// count. Implements ftl.FaultModel.
func (i *Injector) EraseFails(_ flash.BlockAddr, eraseCount int) bool {
	if i == nil {
		return false
	}
	p := i.sc.EraseFail.At(eraseCount)
	return p > 0 && i.rng.Float64() < p
}

// DieDown reports whether the die is out of service at instant t.
func (i *Injector) DieDown(die int, t sim.Time) bool {
	if i == nil {
		return false
	}
	for _, o := range i.sc.Dies {
		if o.covers(i.device, die, t) {
			return true
		}
	}
	return false
}

// ChannelDown reports whether the channel is out of service at instant t.
func (i *Injector) ChannelDown(ch int, t sim.Time) bool {
	if i == nil {
		return false
	}
	for _, o := range i.sc.Channels {
		if o.covers(i.device, ch, t) {
			return true
		}
	}
	return false
}

// ReadFault draws the transient fate of one read command: a latency spike
// (extra > 0), a hang that burns the per-op timeout (timeout true), or
// neither. At most one applies per draw.
func (i *Injector) ReadFault() (extra time.Duration, timeout bool) {
	if i == nil {
		return 0, false
	}
	r := i.sc.Read
	if r.TimeoutProb == 0 && r.SpikeProb == 0 {
		return 0, false
	}
	u := i.rng.Float64()
	if u < r.TimeoutProb {
		return 0, true
	}
	if u < r.TimeoutProb+r.SpikeProb {
		return r.Spike.D(), false
	}
	return 0, false
}
