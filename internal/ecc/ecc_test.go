package ecc

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestPaperParams(t *testing.T) {
	early := PaperParams(PhaseEarly)
	if err := early.Validate(); err != nil {
		t.Fatal(err)
	}
	if early.FirstFailProb != 0 {
		t.Error("early phase should never retry")
	}
	late := PaperParams(PhaseLate)
	if err := late.Validate(); err != nil {
		t.Fatal(err)
	}
	if late.FirstFailProb <= 0 || late.MaxRetries == 0 {
		t.Error("late phase should retry")
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{DecodeLatency: 0},
		{DecodeLatency: time.Microsecond, FirstFailProb: -0.1},
		{DecodeLatency: time.Microsecond, FirstFailProb: 1.1},
		{DecodeLatency: time.Microsecond, RetryDecay: -0.5},
		{DecodeLatency: time.Microsecond, RetryDecay: 1.5},
		{DecodeLatency: time.Microsecond, MaxRetries: -1},
		{DecodeLatency: time.Microsecond, FirstFailProb: 0.5, MaxRetries: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate() = nil, want error", i)
		}
	}
}

func TestSampleRetriesEarlyAlwaysZero(t *testing.T) {
	p := PaperParams(PhaseEarly)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if p.SampleRetries(rng) != 0 {
			t.Fatal("early phase sampled a retry")
		}
	}
}

func TestSampleRetriesDistribution(t *testing.T) {
	p := PaperParams(PhaseLate)
	rng := rand.New(rand.NewSource(2))
	n := 200000
	sum := 0
	maxSeen := 0
	for i := 0; i < n; i++ {
		r := p.SampleRetries(rng)
		if r < 0 || r > p.MaxRetries {
			t.Fatalf("retries %d out of range", r)
		}
		sum += r
		if r > maxSeen {
			maxSeen = r
		}
	}
	got := float64(sum) / float64(n)
	want := p.ExpectedRetries()
	if math.Abs(got-want) > 0.01 {
		t.Errorf("mean retries = %.4f, want %.4f", got, want)
	}
	if maxSeen == 0 {
		t.Error("late phase never retried across 200k samples")
	}
}

func TestExpectedRetriesClosedForm(t *testing.T) {
	// FirstFailProb f, decay d: E = f + f*(f*d) + f*(f*d)*(f*d^2) + ...
	p := Params{DecodeLatency: time.Microsecond, FirstFailProb: 0.4, RetryDecay: 0.25, MaxRetries: 4}
	want := 0.4 + 0.4*0.1 + 0.4*0.1*0.025 + 0.4*0.1*0.025*0.00625
	if got := p.ExpectedRetries(); math.Abs(got-want) > 1e-12 {
		t.Errorf("expected retries = %v, want %v", got, want)
	}
	if got := PaperParams(PhaseEarly).ExpectedRetries(); got != 0 {
		t.Errorf("early expected retries = %v", got)
	}
}

func TestRBERCurveMonotone(t *testing.T) {
	c := DefaultRBERCurve()
	prev := 0.0
	for pe := 0; pe <= 5000; pe += 500 {
		r := c.At(pe, 0)
		if r <= prev {
			t.Fatalf("RBER not increasing with wear at %d cycles", pe)
		}
		prev = r
	}
	prev = 0
	for days := 0.0; days <= 365; days += 30 {
		r := c.At(1000, days)
		if r <= prev {
			t.Fatalf("RBER not increasing with retention at %.0f days", days)
		}
		prev = r
	}
	// Negative inputs clamp rather than extrapolate.
	if c.At(-5, -10) != c.At(0, 0) {
		t.Error("negative wear/retention should clamp to zero")
	}
}

func TestRBERCurveRegimes(t *testing.T) {
	c := DefaultRBERCurve()
	if r := c.At(0, 1); r >= 0.004 {
		t.Errorf("fresh device RBER %.5f should be below the hard limit", r)
	}
	if r := c.At(3000, 90); r <= 0.004 {
		t.Errorf("worn device RBER %.5f should be above the hard limit", r)
	}
}

func TestParamsAt(t *testing.T) {
	c := DefaultRBERCurve()
	fresh := c.ParamsAt(0, 1, 0.004, 20*time.Microsecond)
	if err := fresh.Validate(); err != nil {
		t.Fatal(err)
	}
	if fresh.FirstFailProb != 0 {
		t.Errorf("fresh FirstFailProb = %v, want 0", fresh.FirstFailProb)
	}
	worn := c.ParamsAt(4000, 180, 0.004, 20*time.Microsecond)
	if err := worn.Validate(); err != nil {
		t.Fatal(err)
	}
	if worn.FirstFailProb <= 0.3 {
		t.Errorf("worn FirstFailProb = %v, want substantial", worn.FirstFailProb)
	}
	// Zero hard limit falls back to the default.
	if p := c.ParamsAt(0, 1, 0, 20*time.Microsecond); p.Validate() != nil {
		t.Error("zero hard limit should fall back cleanly")
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseEarly.String() != "early" || PhaseLate.String() != "late" {
		t.Error("phase names wrong")
	}
	if LifetimePhase(9).String() == "" {
		t.Error("unknown phase should render")
	}
}
