// Package ecc models the SSD's error-correction engine at the level the
// paper's evaluation needs: a fixed hardware decode latency per page, a raw
// bit error rate (RBER) that grows over the device lifetime, and an
// LDPC-style read-retry process in which a failed hard decode triggers
// re-sensing the wordline with adjusted read voltages (Section V-F, after
// Zhao et al., "LDPC-in-SSD", FAST 2013).
//
// A retry re-senses every read voltage of the page, so a page that needs
// fewer sensings (an IDA-reprogrammed page) also pays less per retry, which
// is exactly why the paper finds IDA more effective late in the device
// lifetime.
package ecc

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// LifetimePhase selects the device-age regime of Figure 11.
type LifetimePhase int

const (
	// PhaseEarly is the young-device regime: RBER is below the hard
	// decoder's limit and reads never retry.
	PhaseEarly LifetimePhase = iota
	// PhaseLate is the worn-device regime: hard decodes fail often
	// enough that read-retries dominate the read tail.
	PhaseLate
)

// String names the phase.
func (p LifetimePhase) String() string {
	switch p {
	case PhaseEarly:
		return "early"
	case PhaseLate:
		return "late"
	default:
		return fmt.Sprintf("LifetimePhase(%d)", int(p))
	}
}

// Params configures the decode/retry behaviour.
type Params struct {
	// DecodeLatency is the hardware decode time per page (Table II:
	// 20 us for an ultra-high-throughput LDPC engine).
	DecodeLatency time.Duration
	// FirstFailProb is the probability that the initial hard decode of a
	// page fails and a read-retry round is needed.
	FirstFailProb float64
	// RetryDecay multiplies the failure probability after every retry
	// round: round k fails with FirstFailProb * RetryDecay^k. Each round
	// uses finer-grained soft sensing, so decays below 1 model the
	// increasing success rate of deeper soft decoding.
	RetryDecay float64
	// MaxRetries caps the number of retry rounds; the final round always
	// succeeds (the paper's interest is latency, not data loss).
	MaxRetries int
}

// PaperParams returns the retry parameters used for Figure 11: no retries in
// the early phase; in the late phase 40% of hard decodes fail and each soft
// round succeeds with quickly-increasing probability.
func PaperParams(phase LifetimePhase) Params {
	p := Params{DecodeLatency: 20 * time.Microsecond}
	if phase == PhaseLate {
		p.FirstFailProb = 0.4
		p.RetryDecay = 0.25
		p.MaxRetries = 4
	}
	return p
}

// Validate reports the first problem with the parameters, or nil.
func (p Params) Validate() error {
	if p.DecodeLatency <= 0 {
		return fmt.Errorf("ecc: DecodeLatency %v must be positive", p.DecodeLatency)
	}
	if p.FirstFailProb < 0 || p.FirstFailProb > 1 {
		return fmt.Errorf("ecc: FirstFailProb %v out of [0,1]", p.FirstFailProb)
	}
	if p.RetryDecay < 0 || p.RetryDecay > 1 {
		return fmt.Errorf("ecc: RetryDecay %v out of [0,1]", p.RetryDecay)
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("ecc: MaxRetries %d must be non-negative", p.MaxRetries)
	}
	if p.FirstFailProb > 0 && p.MaxRetries == 0 {
		return fmt.Errorf("ecc: FirstFailProb %v needs MaxRetries > 0", p.FirstFailProb)
	}
	return nil
}

// WithFailScale returns a copy of the parameters with the hard-decode
// failure probability multiplied by s. The SSD model uses it for pages on
// IDA-reprogrammed wordlines: merging halves the number of occupied voltage
// states, roughly doubling the read margin between adjacent states, which
// cuts the raw bit error rate — and with it the decode failure probability —
// superlinearly.
func (p Params) WithFailScale(s float64) Params {
	if s < 0 {
		s = 0
	}
	p.FirstFailProb *= s
	if p.FirstFailProb > 1 {
		p.FirstFailProb = 1
	}
	return p
}

// SampleRetries draws the number of read-retry rounds a page read needs.
// Zero means the hard decode succeeded.
func (p Params) SampleRetries(rng *rand.Rand) int {
	if p.FirstFailProb == 0 || p.MaxRetries == 0 {
		return 0
	}
	fail := p.FirstFailProb
	for k := 0; k < p.MaxRetries; k++ {
		if rng.Float64() >= fail {
			return k
		}
		fail *= p.RetryDecay
	}
	return p.MaxRetries
}

// ExpectedRetries returns the mean of SampleRetries analytically; useful for
// tests and for sizing experiments.
func (p Params) ExpectedRetries() float64 {
	if p.FirstFailProb == 0 || p.MaxRetries == 0 {
		return 0
	}
	// E[R] = sum over k>=1 of P(R >= k); P(R >= k) = prod_{i<k} fail_i.
	e := 0.0
	reach := 1.0
	fail := p.FirstFailProb
	for k := 1; k <= p.MaxRetries; k++ {
		reach *= fail
		e += reach
		fail *= p.RetryDecay
	}
	return e
}

// RBERCurve models the raw bit error rate as a function of program/erase
// wear and retention time, the standard two-term exponential fit used in
// flash characterization studies (e.g. Cai et al., "Flash
// Correct-and-Refresh", ICCD 2012). It is exposed so extensions can derive
// retry parameters from a wear level instead of a phase label.
type RBERCurve struct {
	Base         float64 // RBER of a fresh block read immediately
	WearCoeff    float64 // multiplier per 1000 P/E cycles
	RetentionExp float64 // growth exponent per retention day
}

// DefaultRBERCurve returns a curve calibrated so that a fresh device sits
// well below the 0.004 hard-decode limit from Table II and a device at
// 3000 P/E cycles with 90-day retention sits well above it.
func DefaultRBERCurve() RBERCurve {
	return RBERCurve{Base: 2e-4, WearCoeff: 0.9e-3, RetentionExp: 0.012}
}

// At returns the RBER after peCycles program/erase cycles and retentionDays
// days of retention.
func (c RBERCurve) At(peCycles int, retentionDays float64) float64 {
	if peCycles < 0 {
		peCycles = 0
	}
	if retentionDays < 0 {
		retentionDays = 0
	}
	wear := c.Base + c.WearCoeff*float64(peCycles)/1000.0
	return wear * math.Exp(c.RetentionExp*retentionDays)
}

// ParamsAt derives retry parameters from the curve: the failure probability
// of the hard decode grows smoothly as RBER crosses the hard limit.
func (c RBERCurve) ParamsAt(peCycles int, retentionDays float64, hardLimit float64, decode time.Duration) Params {
	rber := c.At(peCycles, retentionDays)
	p := Params{DecodeLatency: decode, RetryDecay: 0.25, MaxRetries: 4}
	if hardLimit <= 0 {
		hardLimit = 0.004
	}
	// Logistic ramp centred on the hard limit: negligible below it,
	// saturating toward 0.9 far above it.
	x := (rber - hardLimit) / hardLimit
	p.FirstFailProb = 0.9 / (1 + math.Exp(-10*x))
	if p.FirstFailProb < 1e-3 {
		p.FirstFailProb = 0
		p.MaxRetries = 0
		p.RetryDecay = 0
	}
	return p
}
