package results

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestStoreSingleflight(t *testing.T) {
	s := NewStore(0)
	var computes atomic.Int64
	release := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	results := make([][]byte, waiters)
	cachedN := atomic.Int64{}
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, cached, err := s.GetOrCompute(context.Background(), "k", func(context.Context) ([]byte, error) {
				computes.Add(1)
				<-release
				return []byte("payload"), nil
			})
			if err != nil {
				t.Error(err)
			}
			if cached {
				cachedN.Add(1)
			}
			results[i] = b
		}()
	}
	// Let the waiters pile up behind the first claim, then release it.
	deadline := time.Now().Add(2 * time.Second)
	for computes.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("compute never started")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	if cachedN.Load() != waiters-1 {
		t.Errorf("%d callers reported cached, want %d", cachedN.Load(), waiters-1)
	}
	for i, b := range results {
		if !bytes.Equal(b, []byte("payload")) {
			t.Errorf("caller %d got %q", i, b)
		}
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != waiters-1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestStoreErrorNotCached: a failed compute is abandoned; the next call
// recomputes instead of inheriting the failure.
func TestStoreErrorNotCached(t *testing.T) {
	s := NewStore(0)
	boom := errors.New("boom")
	_, _, err := s.GetOrCompute(context.Background(), "k", func(context.Context) ([]byte, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	b, cached, err := s.GetOrCompute(context.Background(), "k", func(context.Context) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil || cached || !bytes.Equal(b, []byte("ok")) {
		t.Fatalf("retry = %q cached=%v err=%v", b, cached, err)
	}
}

// TestStoreWaiterRetriesAfterAbandon: a waiter on a cancelled compute
// re-claims the key and computes for itself.
func TestStoreWaiterRetriesAfterAbandon(t *testing.T) {
	s := NewStore(0)
	started := make(chan struct{})
	fail := make(chan struct{})
	go func() {
		_, _, _ = s.GetOrCompute(context.Background(), "k", func(context.Context) ([]byte, error) {
			close(started)
			<-fail
			return nil, context.Canceled
		})
	}()
	<-started
	done := make(chan []byte, 1)
	go func() {
		b, _, err := s.GetOrCompute(context.Background(), "k", func(context.Context) ([]byte, error) {
			return []byte("second"), nil
		})
		if err != nil {
			t.Error(err)
		}
		done <- b
	}()
	time.Sleep(10 * time.Millisecond) // let the second caller start waiting
	close(fail)
	if b := <-done; !bytes.Equal(b, []byte("second")) {
		t.Errorf("waiter got %q", b)
	}
}

// TestStoreWaiterHonorsContext: a waiter whose own context ends stops
// waiting without disturbing the executing compute.
func TestStoreWaiterHonorsContext(t *testing.T) {
	s := NewStore(0)
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _, _ = s.GetOrCompute(context.Background(), "k", func(context.Context) ([]byte, error) {
			close(started)
			<-release
			return []byte("late"), nil
		})
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, err := s.GetOrCompute(ctx, "k", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	close(release)
	// The original compute still published.
	b, cached, err := s.GetOrCompute(context.Background(), "k", nil)
	if err != nil || !cached || !bytes.Equal(b, []byte("late")) {
		t.Fatalf("after release: %q cached=%v err=%v", b, cached, err)
	}
}

// TestStoreDiskTierServesAcrossRestart: a fresh Store over the same blob
// root serves the payload without computing — the farm's restart contract.
func TestStoreDiskTierServesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	d1, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewStore(0)
	s1.SetBlobs(d1.Sub(".json"))
	cold, cached, err := s1.GetOrCompute(context.Background(), "k", func(context.Context) ([]byte, error) {
		return []byte(`{"point":1}`), nil
	})
	if err != nil || cached {
		t.Fatalf("cold: cached=%v err=%v", cached, err)
	}

	d2, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewStore(0)
	s2.SetBlobs(d2.Sub(".json"))
	warm, cached, err := s2.GetOrCompute(context.Background(), "k", func(context.Context) ([]byte, error) {
		t.Error("warm store recomputed")
		return nil, nil
	})
	if err != nil || !cached {
		t.Fatalf("warm: cached=%v err=%v", cached, err)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("warm bytes differ: %q vs %q", cold, warm)
	}
	if st := s2.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Errorf("warm stats = %+v", st)
	}
}

// TestStoreMemoryBound: the in-memory tier evicts its oldest published
// entries past the limit; evicted keys recompute (or re-read disk).
func TestStoreMemoryBound(t *testing.T) {
	s := NewStore(2)
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("k%d", i)
		_, _, err := s.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
			return []byte(key), nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
	// k0 was evicted: a re-request recomputes.
	var recomputed bool
	_, cached, err := s.GetOrCompute(context.Background(), "k0", func(context.Context) ([]byte, error) {
		recomputed = true
		return []byte("k0"), nil
	})
	if err != nil || cached || !recomputed {
		t.Errorf("evicted key: cached=%v recomputed=%v err=%v", cached, recomputed, err)
	}
	// k3 is still resident.
	_, cached, err = s.GetOrCompute(context.Background(), "k3", nil)
	if err != nil || !cached {
		t.Errorf("resident key: cached=%v err=%v", cached, err)
	}
}

// TestStorePanickingComputeAbandonsClaim: a panic unwinding out of compute
// releases the key's claim (the panic is re-raised), so a later caller
// computes afresh instead of waiting forever.
func TestStorePanickingComputeAbandonsClaim(t *testing.T) {
	s := NewStore(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic was swallowed")
			}
		}()
		_, _, _ = s.GetOrCompute(context.Background(), "k", func(context.Context) ([]byte, error) {
			panic("compute bug")
		})
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	b, cached, err := s.GetOrCompute(ctx, "k", func(context.Context) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil || cached || !bytes.Equal(b, []byte("ok")) {
		t.Fatalf("retry after panic = %q cached=%v err=%v", b, cached, err)
	}
}
