package results

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
)

// defaultMemEntries bounds the in-memory tier: result payloads are a few KB
// each, so 512 keeps the whole Figure 8 sweep and several sensitivity grids
// resident for about a megabyte.
const defaultMemEntries = 512

// Store memoizes simulation result payloads by their canonical memo key. It
// has the same two-tier, singleflighted shape as the snapshot store: a
// bounded in-memory map with LRU eviction, always on, and an optional
// content-addressed disk tier (SetBlobs) whose files survive the process.
//
// GetOrCompute is the only read path: concurrent callers of one missing key
// run the compute exactly once and share its bytes, a cancelled or failed
// compute is never cached (waiters retry afresh), and every disk failure
// mode degrades to a miss. The payload is opaque bytes — the canonical JSON
// of a Results value — so a cached point is served byte-identical to its
// cold run, across restarts and across clients.
type Store struct {
	mu      sync.Mutex
	entries map[string]*resEntry
	order   []string // LRU, front = oldest; only published keys
	limit   int
	blobs   blobTier
	disk    *Disk // health plumbing; nil when blobs is absent or synthetic

	hits, misses atomic.Uint64
}

// blobTier is the persistent layer (satisfied by *Blobs). Declared as an
// interface so tests can inject failures.
type blobTier interface {
	Get(key string) []byte
	Put(key string, b []byte)
	Delete(key string)
}

// resEntry is one key's payload, published or in flight. ready closes
// exactly once; b is immutable afterwards (nil = abandoned claim).
type resEntry struct {
	ready chan struct{}
	once  sync.Once
	b     []byte
}

func (e *resEntry) publish(b []byte) {
	e.once.Do(func() {
		e.b = b
		close(e.ready)
	})
}

// NewStore builds a store holding at most limit payloads in memory (<= 0
// uses the default of 512).
func NewStore(limit int) *Store {
	if limit <= 0 {
		limit = defaultMemEntries
	}
	return &Store{entries: make(map[string]*resEntry), limit: limit}
}

// SetBlobs attaches (or, with nil, detaches) the persistent tier.
func (s *Store) SetBlobs(b *Blobs) {
	s.mu.Lock()
	if b == nil {
		s.blobs = nil
		s.disk = nil
	} else {
		s.blobs = b
		s.disk = b.Disk()
	}
	s.mu.Unlock()
}

// Health reports the disk tier's failure state, or nil when the store is
// memory-only by configuration (no disk attached — nothing to degrade).
func (s *Store) Health() *DiskHealth {
	s.mu.Lock()
	d := s.disk
	s.mu.Unlock()
	if d == nil {
		return nil
	}
	h := d.Health()
	return &h
}

// Stats are the store's lifetime counters.
type Stats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Entries is the current in-memory population.
	Entries int `json:"entries"`
	// Disk is the disk tier's failure state; omitted when memory-only.
	Disk *DiskHealth `json:"disk,omitempty"`
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	n := len(s.entries)
	s.mu.Unlock()
	return Stats{Hits: s.hits.Load(), Misses: s.misses.Load(), Entries: n, Disk: s.Health()}
}

// GetOrCompute resolves key: from memory, from disk, or by running compute
// exactly once across all concurrent callers. cached reports whether this
// caller was served without executing compute (a memory/disk hit, or a wait
// on another caller's compute). A compute error or cancellation abandons
// the claim — errors are never cached — and wakes one waiter to retry.
func (s *Store) GetOrCompute(ctx context.Context, key string, compute func(context.Context) ([]byte, error)) (b []byte, cached bool, err error) {
	for {
		s.mu.Lock()
		if e, ok := s.entries[key]; ok {
			s.touchLocked(key)
			s.mu.Unlock()
			select {
			case <-e.ready:
				if e.b == nil {
					continue // abandoned compute: claim or wait afresh
				}
				s.hits.Add(1)
				return e.b, true, nil
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		e := &resEntry{ready: make(chan struct{})}
		s.entries[key] = e
		blobs := s.blobs
		s.mu.Unlock()

		if blobs != nil {
			if payload := blobs.Get(key); payload != nil {
				// Result payloads are canonical JSON and the blob files carry
				// no checksum, so a torn write shows up here as an invalid
				// document. Drop it and recompute rather than serve garbage.
				if json.Valid(payload) {
					s.publishLocked(key, e, payload)
					s.hits.Add(1)
					return payload, true, nil
				}
				blobs.Delete(key)
			}
		}
		s.misses.Add(1)
		payload, err := func() ([]byte, error) {
			// A panic unwinding out of compute must abandon the claim, or
			// every later caller of this key would wait on it forever.
			defer func() {
				if v := recover(); v != nil {
					s.abandon(key, e)
					panic(v)
				}
			}()
			return compute(ctx)
		}()
		if err != nil || payload == nil {
			s.abandon(key, e)
			if err == nil {
				err = context.Canceled
			}
			return nil, false, err
		}
		s.publishLocked(key, e, payload)
		if blobs != nil {
			blobs.Put(key, payload)
		}
		return payload, false, nil
	}
}

// publishLocked publishes a payload and applies the memory bound.
func (s *Store) publishLocked(key string, e *resEntry, b []byte) {
	e.publish(b)
	s.mu.Lock()
	if s.entries[key] == e {
		s.order = append(s.order, key)
		for len(s.order) > s.limit {
			// Evict the least-recently-touched published key. Waiters on
			// an evicted entry still hold its pointer and resolve.
			delete(s.entries, s.order[0])
			s.order = s.order[1:]
		}
	}
	s.mu.Unlock()
}

// abandon drops a failed claim so the next caller recomputes, then wakes
// the waiters to do exactly that.
func (s *Store) abandon(key string, e *resEntry) {
	s.mu.Lock()
	if s.entries[key] == e {
		delete(s.entries, key)
	}
	s.mu.Unlock()
	e.publish(nil)
}

// touchLocked moves key to the back of the LRU order. Called with s.mu held.
func (s *Store) touchLocked(key string) {
	for i, k := range s.order {
		if k == key {
			copy(s.order[i:], s.order[i+1:])
			s.order[len(s.order)-1] = key
			return
		}
	}
}
