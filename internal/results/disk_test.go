package results

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestDiskRoundTrip(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	res := d.Sub(".json")
	if got := res.Get("k"); got != nil {
		t.Fatalf("miss returned %q", got)
	}
	res.Put("k", []byte(`{"a":1}`))
	if got := res.Get("k"); !bytes.Equal(got, []byte(`{"a":1}`)) {
		t.Fatalf("Get = %q", got)
	}
	// A second kind under the same key is a distinct blob.
	snap := d.Sub(".snap")
	if got := snap.Get("k"); got != nil {
		t.Fatalf(".snap view sees .json blob: %q", got)
	}
	snap.Put("k", []byte("snapbytes"))
	if got := snap.Get("k"); !bytes.Equal(got, []byte("snapbytes")) {
		t.Fatalf("snap Get = %q", got)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

// TestDiskSurvivesReopen: blobs written by one Disk are served by a fresh
// one over the same directory — the restart path the farm relies on.
func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d1, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	d1.Sub(".json").Put("k", []byte("payload"))

	d2, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Sub(".json").Get("k"); !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("reopened Get = %q", got)
	}
	if d2.Bytes() != int64(len("payload")) {
		t.Errorf("reopened accounting = %d bytes", d2.Bytes())
	}
}

// TestDiskSharedBudgetEvictsOldestAcrossKinds: one byte budget covers .json
// and .snap blobs together, and the least-recently-used blob goes first no
// matter its kind.
func TestDiskSharedBudgetEvictsOldestAcrossKinds(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	pay := bytes.Repeat([]byte("x"), 30)
	d.Sub(".snap").Put("old", pay)
	d.Sub(".json").Put("mid", pay)
	// Touch "old" so "mid" is now the LRU victim.
	if d.Sub(".snap").Get("old") == nil {
		t.Fatal("old missing before eviction")
	}
	d.Sub(".json").Put("new", pay) // 90 bytes > 64: evict "mid"
	if got := d.Sub(".json").Get("mid"); got != nil {
		t.Errorf("mid survived eviction")
	}
	if d.Sub(".snap").Get("old") == nil {
		t.Errorf("recently-touched old was evicted")
	}
	if d.Sub(".json").Get("new") == nil {
		t.Errorf("just-written new was evicted")
	}
	if d.Bytes() > 64 && d.Len() > 1 {
		t.Errorf("over budget after eviction: %d bytes, %d blobs", d.Bytes(), d.Len())
	}
}

// TestDiskReopenEvictionOrderByModTime: a reopened Disk evicts the stalest
// pre-existing files first.
func TestDiskReopenEvictionOrderByModTime(t *testing.T) {
	dir := t.TempDir()
	d1, err := OpenDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	pay := bytes.Repeat([]byte("y"), 40)
	d1.Sub(".json").Put("a", pay)
	d1.Sub(".json").Put("b", pay)
	// Age "a" explicitly; mtime granularity alone is too coarse.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(dir, nameFor("a", ".json")), old, old); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDisk(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Sub(".json").Get("a") != nil {
		t.Errorf("stale blob a survived reopen under budget")
	}
	if d2.Sub(".json").Get("b") == nil {
		t.Errorf("fresh blob b evicted before stale a")
	}
}

// TestDiskIgnoresForeignFiles: files that are not content-addressed blobs
// are neither counted nor evicted.
func TestDiskIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), bytes.Repeat([]byte("z"), 100), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDisk(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d.Bytes() != 0 || d.Len() != 0 {
		t.Errorf("foreign file counted: %d bytes, %d blobs", d.Bytes(), d.Len())
	}
	d.Sub(".json").Put("k", bytes.Repeat([]byte("k"), 30))
	if _, err := os.Stat(filepath.Join(dir, "README.txt")); err != nil {
		t.Errorf("foreign file disturbed: %v", err)
	}
}

func TestDiskDelete(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	v := d.Sub(".json")
	v.Put("k", []byte("junk"))
	v.Delete("k")
	if v.Get("k") != nil {
		t.Error("blob survived Delete")
	}
	if d.Bytes() != 0 {
		t.Errorf("accounting after delete = %d", d.Bytes())
	}
}
