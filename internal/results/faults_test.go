// Fault-injection tests for the disk tier, driven through the errfs
// middleware. External test package: errfs imports results, so an
// in-package test would cycle.
package results_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"idaflash/internal/results"
	"idaflash/internal/results/errfs"
)

// faultDisk opens a Disk over an errfs-wrapped real filesystem with the
// retry/degradation knobs pinned for determinism: no real sleeping, a
// controllable clock, and a low failure threshold.
func faultDisk(t *testing.T, fs *errfs.FS, tweak func(*results.DiskOptions)) (*results.Disk, *time.Time) {
	t.Helper()
	now := time.Unix(1000, 0)
	opts := results.DiskOptions{
		FS:            fs,
		FailThreshold: 3,
		ReprobeAfter:  time.Minute,
		Sleep:         func(time.Duration) {},
		Now:           func() time.Time { return now },
	}
	if tweak != nil {
		tweak(&opts)
	}
	d, err := results.OpenDiskOptions(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return d, &now
}

// TestDiskEIODegradesAndReprobes: persistent read EIO flips the disk into
// memory-only mode at the threshold; after the reprobe interval one
// operation probes again and a healthy answer lifts the degradation.
func TestDiskEIODegradesAndReprobes(t *testing.T) {
	fs := errfs.New(nil, 1)
	d, now := faultDisk(t, fs, nil)
	blobs := d.Sub(".json")

	fs.FailNext(errfs.OpRead, 100, errfs.EIO)
	for i := 0; i < 3; i++ {
		if b := blobs.Get("k"); b != nil {
			t.Fatalf("get %d returned %q under EIO", i, b)
		}
	}
	h := d.Health()
	if !h.Degraded || h.Errors != 3 || h.Degradations != 1 {
		t.Fatalf("health after threshold: %+v", h)
	}
	if !strings.Contains(h.LastError, "input/output error") {
		t.Errorf("last error %q", h.LastError)
	}

	// Degraded: the filesystem is not touched at all.
	ops := fs.Ops(errfs.OpRead)
	blobs.Put("k", []byte(`{"v":1}`))
	if blobs.Get("k") != nil {
		t.Error("degraded disk served a blob")
	}
	if fs.Ops(errfs.OpRead) != ops || fs.Ops(errfs.OpWrite) != 0 {
		t.Fatal("degraded disk still touched the filesystem")
	}

	// Reprobe window passes and the disk heals: the next operation goes
	// through, succeeds, and lifts the degradation.
	fs.Reset()
	*now = now.Add(2 * time.Minute)
	blobs.Put("k", []byte(`{"v":2}`))
	if h := d.Health(); h.Degraded {
		t.Fatalf("still degraded after successful reprobe: %+v", h)
	}
	if string(blobs.Get("k")) != `{"v":2}` {
		t.Error("recovered disk did not serve the blob")
	}
}

// TestDiskRetriesTransientWrite: a single EIO on the first attempt is
// absorbed by the bounded retry loop — the blob lands, nothing degrades.
func TestDiskRetriesTransientWrite(t *testing.T) {
	fs := errfs.New(nil, 1)
	fs.FailAt(errfs.OpWrite, 1, errfs.EIO)
	d, _ := faultDisk(t, fs, nil)
	blobs := d.Sub(".json")
	blobs.Put("k", []byte(`{"v":1}`))
	if string(blobs.Get("k")) != `{"v":1}` {
		t.Fatal("blob lost to a transient write error")
	}
	h := d.Health()
	if h.Degraded || h.Errors != 0 || h.Retries == 0 {
		t.Fatalf("health %+v: want retries > 0, no errors, not degraded", h)
	}
}

// TestDiskENOSPCEvictsAndRetries: a full filesystem evicts the oldest blobs
// to make room before retrying the write.
func TestDiskENOSPCEvictsAndRetries(t *testing.T) {
	fs := errfs.New(nil, 1)
	d, _ := faultDisk(t, fs, nil)
	blobs := d.Sub(".json")
	blobs.Put("old1", []byte(`{"v":"old1"}`))
	blobs.Put("old2", []byte(`{"v":"old2"}`))

	fs.FailAt(errfs.OpWrite, 3, errfs.ENOSPC)
	blobs.Put("new", []byte(`{"v":"new"}`))
	if string(blobs.Get("new")) != `{"v":"new"}` {
		t.Fatal("blob lost to ENOSPC despite retry")
	}
	if h := d.Health(); h.Degraded || h.Retries == 0 {
		t.Fatalf("health %+v", h)
	}
	if blobs.Get("old1") != nil {
		t.Error("oldest blob not evicted to make room")
	}
}

// TestDiskMissIsNotAFault: reading absent keys is healthy traffic — it must
// clear the failure streak, not extend it.
func TestDiskMissIsNotAFault(t *testing.T) {
	fs := errfs.New(nil, 1)
	d, _ := faultDisk(t, fs, nil)
	blobs := d.Sub(".json")
	fs.FailAt(errfs.OpRead, 1, errfs.EIO)
	fs.FailAt(errfs.OpRead, 3, errfs.EIO)
	fs.FailAt(errfs.OpRead, 5, errfs.EIO)
	// Alternating fault / clean miss: the streak never reaches 3.
	for i := 0; i < 6; i++ {
		blobs.Get("absent")
	}
	if h := d.Health(); h.Degraded {
		t.Fatalf("alternating failures degraded the disk: %+v", h)
	}
}

// TestStoreTornWriteRecomputes: a torn result blob (half a JSON document,
// reported as a successful write) is rejected on read, deleted, and the
// point recomputes — a run never sees garbage.
func TestStoreTornWriteRecomputes(t *testing.T) {
	fs := errfs.New(nil, 1)
	dir := t.TempDir()
	d, err := results.OpenDiskOptions(dir, results.DiskOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"value":12345678}`)
	compute := func(context.Context) ([]byte, error) { return payload, nil }

	fs.FailAt(errfs.OpWrite, 1, errfs.Torn)
	s1 := results.NewStore(0)
	s1.SetBlobs(d.Sub(".json"))
	if _, _, err := s1.GetOrCompute(context.Background(), "k", compute); err != nil {
		t.Fatal(err)
	}

	// A fresh process over the same directory: the torn blob must not be
	// served. It is dropped and the compute runs again.
	d2, err := results.OpenDiskOptions(dir, results.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := results.NewStore(0)
	s2.SetBlobs(d2.Sub(".json"))
	computed := false
	b, cached, err := s2.GetOrCompute(context.Background(), "k", func(context.Context) ([]byte, error) {
		computed = true
		return payload, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !computed || cached {
		t.Fatalf("torn blob served as a hit (computed=%v cached=%v)", computed, cached)
	}
	if string(b) != string(payload) {
		t.Fatalf("payload %q", b)
	}
	// And the repaired blob now round-trips as a real hit.
	s3 := results.NewStore(0)
	s3.SetBlobs(d2.Sub(".json"))
	if _, cached, _ := s3.GetOrCompute(context.Background(), "k", compute); !cached {
		t.Error("repaired blob not served from disk")
	}
}

// TestStoreShortReadRecomputes: a short read that clips the payload is
// likewise rejected by JSON validation instead of being served.
func TestStoreShortReadRecomputes(t *testing.T) {
	fs := errfs.New(nil, 1)
	d, err := results.OpenDiskOptions(t.TempDir(), results.DiskOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	blobs := d.Sub(".json")
	payload := []byte(`{"value":12345678}`)
	blobs.Put("k", payload)

	fs.FailAt(errfs.OpRead, 1, errfs.Short)
	s := results.NewStore(0)
	s.SetBlobs(blobs)
	b, cached, err := s.GetOrCompute(context.Background(), "k", func(context.Context) ([]byte, error) {
		return payload, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("short read served as a hit")
	}
	if string(b) != string(payload) {
		t.Fatalf("payload %q", b)
	}
}

// TestStoreDegradedServesUncached: with the disk memory-only, GetOrCompute
// still answers — uncached across store instances — and Stats surfaces the
// degradation for /statz.
func TestStoreDegradedServesUncached(t *testing.T) {
	fs := errfs.New(nil, 1)
	fs.FailNext(errfs.OpRead, 1000, errfs.EIO)
	fs.FailNext(errfs.OpWrite, 1000, errfs.EIO)
	d, _ := faultDisk(t, fs, nil)
	s := results.NewStore(0)
	s.SetBlobs(d.Sub(".json"))
	for i := 0; i < 4; i++ {
		b, _, err := s.GetOrCompute(context.Background(), "k", func(context.Context) ([]byte, error) {
			return []byte(`{"v":1}`), nil
		})
		if err != nil || string(b) != `{"v":1}` {
			t.Fatalf("run %d: %q, %v", i, b, err)
		}
		// A fresh store each round defeats the memory tier, so every round
		// exercises the sick disk.
		s = results.NewStore(0)
		s.SetBlobs(d.Sub(".json"))
	}
	st := s.Stats()
	if st.Disk == nil || !st.Disk.Degraded {
		t.Fatalf("stats do not surface the degradation: %+v", st)
	}
}
