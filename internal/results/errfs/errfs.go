// Package errfs is a deterministic fault-injecting results.FS middleware.
// It wraps a real (or in-memory) filesystem and makes selected operations
// fail the way disks actually fail — EIO, ENOSPC, torn writes that persist
// a prefix while reporting success, short reads that drop the tail — under
// rules keyed by operation ordinal, stride, count, or seeded probability.
//
// Everything is deterministic: the probability rules draw from a rand.Rand
// seeded at construction, and the per-operation counters advance in program
// order, so a failing test reproduces from its seed alone. The package is
// used by the fault tests of both internal/results and internal/snapshot.
package errfs

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"syscall"

	"idaflash/internal/results"
)

// Op selects which filesystem operation a rule applies to.
type Op int

const (
	// OpRead targets FS.ReadFile.
	OpRead Op = iota
	// OpWrite targets FS.WriteFile.
	OpWrite
	// OpRemove targets FS.Remove.
	OpRemove
	// OpReadDir targets FS.ReadDir.
	OpReadDir
	numOps
)

// String names the op for test diagnostics.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpRemove:
		return "remove"
	case OpReadDir:
		return "readdir"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Mode selects how a matched operation fails.
type Mode int

const (
	// EIO fails the operation with an error wrapping syscall.EIO.
	EIO Mode = iota
	// ENOSPC fails the operation with an error wrapping syscall.ENOSPC.
	// Meaningful for writes; other ops treat it like EIO.
	ENOSPC
	// Torn applies to writes only: the inner filesystem persists the first
	// half of the payload, and the call reports success — the lying-disk
	// case that checksums and JSON validation exist to catch.
	Torn
	// Short applies to reads only: the call succeeds but returns the first
	// half of the file's bytes.
	Short
)

// String names the mode for test diagnostics.
func (m Mode) String() string {
	switch m {
	case EIO:
		return "eio"
	case ENOSPC:
		return "enospc"
	case Torn:
		return "torn"
	case Short:
		return "short"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

type rule struct {
	op    Op
	mode  Mode
	at    int     // fire when the op ordinal equals at (1-based); 0 = off
	every int     // fire when ordinal % every == 0; 0 = off
	left  int     // fire on the next `left` matching ops; decremented
	prob  float64 // fire with this probability; 0 = off
}

func (r *rule) fires(ordinal int, rng *rand.Rand) bool {
	switch {
	case r.at > 0:
		return ordinal == r.at
	case r.every > 0:
		return ordinal%r.every == 0
	case r.left > 0:
		r.left--
		return true
	case r.prob > 0:
		return rng.Float64() < r.prob
	}
	return false
}

// FS wraps an inner results.FS and injects faults per its rules. Safe for
// concurrent use; rule evaluation and the fault decision are serialized so
// op ordinals are well defined even under -race.
type FS struct {
	inner results.FS

	mu    sync.Mutex
	rng   *rand.Rand
	count [numOps]int
	rules []*rule
}

// New wraps inner with a fault injector whose probability rules draw from
// the given seed. With no rules installed it is a transparent passthrough.
func New(inner results.FS, seed int64) *FS {
	if inner == nil {
		inner = results.OSFS{}
	}
	return &FS{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// FailAt makes the at-th (1-based) operation of kind op fail with mode.
func (f *FS) FailAt(op Op, at int, mode Mode) *FS {
	return f.add(&rule{op: op, mode: mode, at: at})
}

// FailEvery makes every n-th operation of kind op fail with mode.
func (f *FS) FailEvery(op Op, n int, mode Mode) *FS {
	return f.add(&rule{op: op, mode: mode, every: n})
}

// FailNext makes the next n operations of kind op fail with mode.
func (f *FS) FailNext(op Op, n int, mode Mode) *FS {
	return f.add(&rule{op: op, mode: mode, left: n})
}

// FailProb makes each operation of kind op fail with mode at probability p,
// drawn from the constructor seed.
func (f *FS) FailProb(op Op, p float64, mode Mode) *FS {
	return f.add(&rule{op: op, mode: mode, prob: p})
}

func (f *FS) add(r *rule) *FS {
	f.mu.Lock()
	f.rules = append(f.rules, r)
	f.mu.Unlock()
	return f
}

// Reset clears all rules and operation counters (the RNG keeps its stream).
func (f *FS) Reset() {
	f.mu.Lock()
	f.rules = nil
	f.count = [numOps]int{}
	f.mu.Unlock()
}

// Ops reports how many operations of the given kind have been issued.
func (f *FS) Ops(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.count[op]
}

// decide advances op's ordinal and returns the firing mode, if any.
func (f *FS) decide(op Op) (Mode, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.count[op]++
	ordinal := f.count[op]
	for _, r := range f.rules {
		if r.op == op && r.fires(ordinal, f.rng) {
			return r.mode, true
		}
	}
	return 0, false
}

func faultErr(mode Mode, op Op, path string) error {
	errno := syscall.EIO
	if mode == ENOSPC {
		errno = syscall.ENOSPC
	}
	return fmt.Errorf("errfs: injected %v on %v %s: %w", mode, op, path, errno)
}

// ReadFile implements results.FS. EIO/ENOSPC fail the read; Short returns
// the first half of the real content as a success.
func (f *FS) ReadFile(path string) ([]byte, error) {
	mode, fire := f.decide(OpRead)
	if fire {
		switch mode {
		case Short:
			b, err := f.inner.ReadFile(path)
			if err != nil {
				return nil, err
			}
			return b[:len(b)/2], nil
		default:
			return nil, faultErr(mode, OpRead, path)
		}
	}
	return f.inner.ReadFile(path)
}

// WriteFile implements results.FS. EIO/ENOSPC fail the write; Torn persists
// the first half of the payload and reports success; Short degrades to Torn.
func (f *FS) WriteFile(dir, name string, data []byte, sync bool) error {
	mode, fire := f.decide(OpWrite)
	if fire {
		switch mode {
		case Torn, Short:
			// The lying disk: commit a prefix, report a win.
			_ = f.inner.WriteFile(dir, name, data[:len(data)/2], sync)
			return nil
		default:
			return faultErr(mode, OpWrite, name)
		}
	}
	return f.inner.WriteFile(dir, name, data, sync)
}

// Remove implements results.FS.
func (f *FS) Remove(path string) error {
	if mode, fire := f.decide(OpRemove); fire && mode != Torn && mode != Short {
		return faultErr(mode, OpRemove, path)
	}
	return f.inner.Remove(path)
}

// ReadDir implements results.FS.
func (f *FS) ReadDir(dir string) ([]os.DirEntry, error) {
	if mode, fire := f.decide(OpReadDir); fire && mode != Torn && mode != Short {
		return nil, faultErr(mode, OpReadDir, dir)
	}
	return f.inner.ReadDir(dir)
}
