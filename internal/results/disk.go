// Package results is the farm's durable memory: a content-addressed,
// LRU-bounded blob root on disk (Disk) shared by simulation result payloads
// (".json") and aged device-state snapshots (".snap"), plus a singleflighted
// result cache (Store) layered over it. Both tiers are keyed by the
// canonical experiments memo key — versioned JSON of the (Profile, System)
// pair hashed with SHA-256 — so identical simulation points are served from
// cache across process restarts and across clients, byte for byte.
package results

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
)

// DefaultDiskBudget bounds a Disk that was opened without an explicit
// budget: 2 GiB holds thousands of result payloads and hundreds of device
// snapshots — every realistic sweep — while keeping a CI cache or a
// developer's scratch directory from growing without bound.
const DefaultDiskBudget = 2 << 30

// blobName matches the content-addressed files a Disk owns: a SHA-256 hex
// digest plus a kind extension. Anything else in the directory (temp files,
// stray notes) is left alone and never counted against the budget.
var blobName = regexp.MustCompile(`^[0-9a-f]{64}\.[a-z]+$`)

// Disk is a content-addressed blob directory with a shared byte budget:
// files are named by the SHA-256 of their key plus a kind extension, writes
// are atomic (temp file + rename), reads and writes refresh recency, and
// when the directory grows past the budget the least-recently-used blobs —
// of any kind — are evicted. One Disk therefore serves result payloads and
// snapshot blobs out of a single eviction pool, so a snapshot-heavy sweep
// and a result-heavy one compete for the same bytes instead of each hoarding
// a private cap.
//
// All failure modes degrade to cache misses: a vanished file, a failed
// write, or a directory someone else cleaned underneath us never surfaces as
// an error to the simulation.
type Disk struct {
	mu     sync.Mutex
	dir    string
	budget int64
	files  map[string]*list.Element // blob name -> lru element
	lru    *list.List               // front = most recent; value: *blobInfo
	bytes  int64

	// Logf, when set, receives fail-soft diagnostics (eviction notices,
	// write failures). The default discards them.
	Logf func(format string, args ...any)
}

type blobInfo struct {
	name string
	size int64
}

// OpenDisk opens (creating if needed) a content-addressed blob root with the
// given byte budget (<= 0 uses DefaultDiskBudget). Existing blobs are
// inventoried by modification time so a freshly opened Disk evicts the
// stalest files first.
func OpenDisk(dir string, budget int64) (*Disk, error) {
	if dir == "" {
		return nil, fmt.Errorf("results: empty disk directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	if budget <= 0 {
		budget = DefaultDiskBudget
	}
	d := &Disk{
		dir:    dir,
		budget: budget,
		files:  make(map[string]*list.Element),
		lru:    list.New(),
	}
	d.scan()
	return d, nil
}

// Dir returns the root directory.
func (d *Disk) Dir() string { return d.dir }

// Bytes returns the accounted size of all owned blobs.
func (d *Disk) Bytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytes
}

// Len returns the number of owned blobs.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.files)
}

// Sub returns a view of the Disk that stores blobs of one kind (an
// extension like ".json" or ".snap"). Views share the Disk's budget and
// eviction order; they only partition the namespace.
func (d *Disk) Sub(ext string) *Blobs { return &Blobs{d: d, ext: ext} }

// scan inventories pre-existing blobs, oldest first, so eviction order
// survives the process boundary.
func (d *Disk) scan() {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	type aged struct {
		info blobInfo
		mod  int64
	}
	var found []aged
	for _, e := range entries {
		if e.IsDir() || !blobName.MatchString(e.Name()) {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, aged{blobInfo{e.Name(), fi.Size()}, fi.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mod < found[j].mod })
	d.mu.Lock()
	for _, f := range found {
		info := f.info
		d.files[info.name] = d.lru.PushFront(&info)
		d.bytes += info.size
	}
	d.evictLocked()
	d.mu.Unlock()
}

// nameFor content-addresses a key.
func nameFor(key, ext string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + ext
}

func (d *Disk) logf(format string, args ...any) {
	if d.Logf != nil {
		d.Logf(format, args...)
	}
}

// get reads a blob, refreshing its recency. A missing or unreadable file is
// a miss (nil); a file present on disk but unknown to the accounting — e.g.
// written by a previous process after this one scanned — is adopted.
func (d *Disk) get(name string) []byte {
	b, err := os.ReadFile(filepath.Join(d.dir, name))
	if err != nil {
		d.forget(name)
		return nil
	}
	d.mu.Lock()
	if el, ok := d.files[name]; ok {
		d.lru.MoveToFront(el)
	} else {
		d.files[name] = d.lru.PushFront(&blobInfo{name, int64(len(b))})
		d.bytes += int64(len(b))
		d.evictLocked()
	}
	d.mu.Unlock()
	return b
}

// put writes a blob atomically and evicts over-budget blobs, oldest first.
// Failures are logged and swallowed: persistence is an optimization.
func (d *Disk) put(name string, b []byte) {
	tmp, err := os.CreateTemp(d.dir, ".blob-*")
	if err != nil {
		d.logf("results: %v", err)
		return
	}
	if _, err := tmp.Write(b); err == nil {
		err = tmp.Close()
		if err == nil {
			err = os.Rename(tmp.Name(), filepath.Join(d.dir, name))
		}
	} else {
		tmp.Close()
	}
	if err != nil {
		d.logf("results: writing %s: %v", name, err)
		_ = os.Remove(tmp.Name())
		return
	}
	d.mu.Lock()
	if el, ok := d.files[name]; ok {
		info := el.Value.(*blobInfo)
		d.bytes += int64(len(b)) - info.size
		info.size = int64(len(b))
		d.lru.MoveToFront(el)
	} else {
		d.files[name] = d.lru.PushFront(&blobInfo{name, int64(len(b))})
		d.bytes += int64(len(b))
	}
	d.evictLocked()
	d.mu.Unlock()
}

// delete removes a blob (a corrupt payload a reader rejected).
func (d *Disk) delete(name string) {
	_ = os.Remove(filepath.Join(d.dir, name))
	d.forget(name)
}

// forget drops a blob from the accounting without touching the file.
func (d *Disk) forget(name string) {
	d.mu.Lock()
	if el, ok := d.files[name]; ok {
		d.bytes -= el.Value.(*blobInfo).size
		d.lru.Remove(el)
		delete(d.files, name)
	}
	d.mu.Unlock()
}

// evictLocked removes least-recently-used blobs until the budget holds.
// Called with d.mu held.
func (d *Disk) evictLocked() {
	for d.bytes > d.budget && d.lru.Len() > 1 {
		el := d.lru.Back()
		info := el.Value.(*blobInfo)
		d.lru.Remove(el)
		delete(d.files, info.name)
		d.bytes -= info.size
		_ = os.Remove(filepath.Join(d.dir, info.name))
		d.logf("results: evicted %s (%d bytes) over budget", info.name, info.size)
	}
}

// Blobs is one kind's view of a Disk (see Disk.Sub). It satisfies the
// snapshot store's blob-tier interface structurally, so the snapshot
// package never imports this one.
type Blobs struct {
	d   *Disk
	ext string
}

// Get returns the blob stored under key, or nil on any miss.
func (v *Blobs) Get(key string) []byte { return v.d.get(nameFor(key, v.ext)) }

// Put stores a blob under key, atomically, evicting over budget.
func (v *Blobs) Put(key string, b []byte) { v.d.put(nameFor(key, v.ext), b) }

// Delete removes key's blob (callers drop payloads they failed to decode).
func (v *Blobs) Delete(key string) { v.d.delete(nameFor(key, v.ext)) }
