// Package results is the farm's durable memory: a content-addressed,
// LRU-bounded blob root on disk (Disk) shared by simulation result payloads
// (".json") and aged device-state snapshots (".snap"), plus a singleflighted
// result cache (Store) layered over it. Both tiers are keyed by the
// canonical experiments memo key — versioned JSON of the (Profile, System)
// pair hashed with SHA-256 — so identical simulation points are served from
// cache across process restarts and across clients, byte for byte.
package results

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	iofs "io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// DefaultDiskBudget bounds a Disk that was opened without an explicit
// budget: 2 GiB holds thousands of result payloads and hundreds of device
// snapshots — every realistic sweep — while keeping a CI cache or a
// developer's scratch directory from growing without bound.
const DefaultDiskBudget = 2 << 30

// Retry and degradation defaults. A sick disk gets a small, bounded number
// of jittered retries per operation; once several operations in a row have
// exhausted their retries the Disk flips into memory-only degraded mode and
// stops touching the filesystem (every get is a miss, every put a no-op)
// until a reprobe interval passes.
const (
	defaultMaxRetries    = 2
	defaultRetryBase     = 2 * time.Millisecond
	defaultFailThreshold = 4
	defaultReprobeAfter  = 30 * time.Second
)

// FS abstracts the filesystem operations a Disk performs, so tests (see the
// errfs subpackage) can inject deterministic EIO/ENOSPC/torn-write/short-read
// faults under the exact code paths production runs.
type FS interface {
	// ReadFile reads the file at path.
	ReadFile(path string) ([]byte, error)
	// WriteFile atomically writes data under dir/name (temp file + rename).
	// With sync, the file is fsynced before the rename and the directory
	// after it, so a committed blob survives power loss.
	WriteFile(dir, name string, data []byte, sync bool) error
	// Remove deletes the file at path.
	Remove(path string) error
	// ReadDir lists dir.
	ReadDir(dir string) ([]os.DirEntry, error)
}

// OSFS is the production FS: the os package, with the atomic-write and
// fsync discipline WriteFile documents.
type OSFS struct{}

// ReadFile implements FS.
func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// WriteFile implements FS: temp file, optional fsync, rename, optional
// parent-directory fsync. Without sync the write is atomic against readers
// (rename) but not against power loss — the classic temp+rename hole this
// parameter exists to close.
func (OSFS) WriteFile(dir, name string, data []byte, sync bool) error {
	tmp, err := os.CreateTemp(dir, ".blob-*")
	if err != nil {
		return err
	}
	_, err = tmp.Write(data)
	if err == nil && sync {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), filepath.Join(dir, name))
	}
	if err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	if sync {
		return SyncDir(dir)
	}
	return nil
}

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]os.DirEntry, error) { return os.ReadDir(dir) }

// SyncDir fsyncs a directory, making a just-renamed entry durable. Shared
// with the farm's job journal, which uses the same commit discipline.
func SyncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// blobName matches the content-addressed files a Disk owns: a SHA-256 hex
// digest plus a kind extension. Anything else in the directory (temp files,
// stray notes) is left alone and never counted against the budget.
var blobName = regexp.MustCompile(`^[0-9a-f]{64}\.[a-z]+$`)

// DiskOptions tune OpenDiskOptions beyond the directory itself. The zero
// value means defaults everywhere.
type DiskOptions struct {
	// Budget bounds the directory in bytes (<= 0 uses DefaultDiskBudget).
	Budget int64
	// Sync makes every blob write fsync the file and its directory, so a
	// committed blob survives power loss. Off by default: blobs are an
	// optimization, and a lost one is a cache miss — turn it on (idaserver
	// -store-sync) when the store's warmth is worth a sync per write.
	Sync bool
	// FS overrides the filesystem implementation (fault-injection tests);
	// nil uses the real one.
	FS FS
	// MaxRetries bounds per-operation retries on I/O failure (< 0 disables
	// retries; 0 uses the default of 2).
	MaxRetries int
	// RetryBase is the first retry's backoff; later retries double it, and
	// each adds up to one base interval of seeded jitter (0 = default 2ms).
	RetryBase time.Duration
	// FailThreshold is how many consecutive operations must exhaust their
	// retries before the Disk degrades to memory-only mode (0 = default 4).
	FailThreshold int
	// ReprobeAfter is how long a degraded Disk waits before letting one
	// operation probe the filesystem again (0 = default 30s).
	ReprobeAfter time.Duration
	// Sleep replaces the retry backoff sleep (tests); nil sleeps for real.
	Sleep func(time.Duration)
	// Now replaces the clock behind the degraded-mode reprobe (tests).
	Now func() time.Time
}

func (o DiskOptions) withDefaults() DiskOptions {
	if o.Budget <= 0 {
		o.Budget = DefaultDiskBudget
	}
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = defaultMaxRetries
	} else if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = defaultRetryBase
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = defaultFailThreshold
	}
	if o.ReprobeAfter <= 0 {
		o.ReprobeAfter = defaultReprobeAfter
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Disk is a content-addressed blob directory with a shared byte budget:
// files are named by the SHA-256 of their key plus a kind extension, writes
// are atomic (temp file + rename, optionally fsynced), reads and writes
// refresh recency, and when the directory grows past the budget the
// least-recently-used blobs — of any kind — are evicted. One Disk therefore
// serves result payloads and snapshot blobs out of a single eviction pool,
// so a snapshot-heavy sweep and a result-heavy one compete for the same
// bytes instead of each hoarding a private cap.
//
// All failure modes degrade to cache misses, with graceful degradation on a
// sick disk: transient errors get bounded jittered-backoff retries, ENOSPC
// evicts old blobs before retrying, and persistent failure flips the Disk
// into memory-only degraded mode (gets miss, puts no-op) that reprobes the
// filesystem periodically. Nothing ever surfaces as an error to the
// simulation; Health exposes the state for /statz and /readyz.
type Disk struct {
	mu     sync.Mutex
	dir    string
	budget int64
	files  map[string]*list.Element // blob name -> lru element
	lru    *list.List               // front = most recent; value: *blobInfo
	bytes  int64

	fs   FS
	sync bool
	opts DiskOptions

	// Health state: consecutive-failure tracking and the degraded switch.
	hmu        sync.Mutex
	rng        *rand.Rand // backoff jitter; seeded for deterministic tests
	consec     int
	degraded   bool
	degradedAt time.Time
	lastErr    string
	errorsN    atomic.Uint64
	retriesN   atomic.Uint64
	degradedN  atomic.Uint64

	// Logf, when set, receives fail-soft diagnostics (eviction notices,
	// write failures, degradation flips). The default discards them.
	Logf func(format string, args ...any)
}

type blobInfo struct {
	name string
	size int64
}

// OpenDisk opens (creating if needed) a content-addressed blob root with the
// given byte budget (<= 0 uses DefaultDiskBudget) and default options.
func OpenDisk(dir string, budget int64) (*Disk, error) {
	return OpenDiskOptions(dir, DiskOptions{Budget: budget})
}

// OpenDiskOptions opens a blob root with explicit options (sync policy,
// retry/degradation knobs, fault-injectable FS).
func OpenDiskOptions(dir string, opts DiskOptions) (*Disk, error) {
	if dir == "" {
		return nil, fmt.Errorf("results: empty disk directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	opts = opts.withDefaults()
	d := &Disk{
		dir:    dir,
		budget: opts.Budget,
		files:  make(map[string]*list.Element),
		lru:    list.New(),
		fs:     opts.FS,
		sync:   opts.Sync,
		opts:   opts,
		rng:    rand.New(rand.NewSource(1)),
	}
	d.scan()
	return d, nil
}

// Dir returns the root directory.
func (d *Disk) Dir() string { return d.dir }

// Bytes returns the accounted size of all owned blobs.
func (d *Disk) Bytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytes
}

// Len returns the number of owned blobs.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.files)
}

// Sub returns a view of the Disk that stores blobs of one kind (an
// extension like ".json" or ".snap"). Views share the Disk's budget and
// eviction order; they only partition the namespace.
func (d *Disk) Sub(ext string) *Blobs { return &Blobs{d: d, ext: ext} }

// DiskHealth is the Disk's failure-visibility snapshot, exported through
// Store.Stats into /statz and summarized in /readyz.
type DiskHealth struct {
	// Degraded reports memory-only mode: the disk tier is being bypassed
	// after persistent I/O failure, and traffic is served uncached.
	Degraded bool `json:"degraded"`
	// Errors counts operations that failed after exhausting their retries.
	Errors uint64 `json:"errors"`
	// Retries counts individual retry attempts.
	Retries uint64 `json:"retries"`
	// Degradations counts flips into degraded mode.
	Degradations uint64 `json:"degradations"`
	// LastError is the most recent failure, for logs and dashboards.
	LastError string `json:"last_error,omitempty"`
}

// Health snapshots the failure counters and the degraded switch.
func (d *Disk) Health() DiskHealth {
	d.hmu.Lock()
	h := DiskHealth{Degraded: d.degraded, LastError: d.lastErr}
	d.hmu.Unlock()
	h.Errors = d.errorsN.Load()
	h.Retries = d.retriesN.Load()
	h.Degradations = d.degradedN.Load()
	return h
}

// scan inventories pre-existing blobs, oldest first, so eviction order
// survives the process boundary.
func (d *Disk) scan() {
	entries, err := d.fs.ReadDir(d.dir)
	if err != nil {
		return
	}
	type aged struct {
		info blobInfo
		mod  int64
	}
	var found []aged
	for _, e := range entries {
		if e.IsDir() || !blobName.MatchString(e.Name()) {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, aged{blobInfo{e.Name(), fi.Size()}, fi.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mod < found[j].mod })
	d.mu.Lock()
	for _, f := range found {
		info := f.info
		d.files[info.name] = d.lru.PushFront(&info)
		d.bytes += info.size
	}
	d.evictLocked()
	d.mu.Unlock()
}

// nameFor content-addresses a key.
func nameFor(key, ext string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + ext
}

func (d *Disk) logf(format string, args ...any) {
	if d.Logf != nil {
		d.Logf(format, args...)
	}
}

// ioAllowed gates every filesystem touch. In degraded mode it refuses
// until the reprobe interval has passed, then lets exactly one operation
// through per interval — the probe whose success flips the Disk back.
func (d *Disk) ioAllowed() bool {
	d.hmu.Lock()
	defer d.hmu.Unlock()
	if !d.degraded {
		return true
	}
	if d.opts.Now().Sub(d.degradedAt) >= d.opts.ReprobeAfter {
		// Push the window forward so a failing probe does not open the
		// floodgates for every caller behind it.
		d.degradedAt = d.opts.Now()
		return true
	}
	return false
}

// ioFailed records one operation that exhausted its retries, flipping into
// degraded mode at the consecutive-failure threshold.
func (d *Disk) ioFailed(err error) {
	d.errorsN.Add(1)
	d.hmu.Lock()
	d.consec++
	d.lastErr = err.Error()
	flip := !d.degraded && d.consec >= d.opts.FailThreshold
	if flip {
		d.degraded = true
		d.degradedAt = d.opts.Now()
		d.degradedN.Add(1)
	}
	stillDegraded := d.degraded
	d.hmu.Unlock()
	if flip {
		d.logf("results: disk degraded to memory-only mode after %d consecutive I/O failures (last: %v)", d.opts.FailThreshold, err)
	} else if stillDegraded {
		d.logf("results: disk reprobe failed, staying memory-only: %v", err)
	}
}

// ioOK records a successful filesystem touch, clearing the failure streak
// and leaving degraded mode if a reprobe just succeeded.
func (d *Disk) ioOK() {
	d.hmu.Lock()
	d.consec = 0
	recovered := d.degraded
	d.degraded = false
	d.hmu.Unlock()
	if recovered {
		d.logf("results: disk recovered, leaving memory-only mode")
	}
}

// backoff computes the attempt-th retry delay: base doubling per attempt
// plus up to one base interval of seeded jitter.
func (d *Disk) backoff(attempt int) time.Duration {
	base := d.opts.RetryBase << attempt
	d.hmu.Lock()
	j := time.Duration(d.rng.Int63n(int64(d.opts.RetryBase)))
	d.hmu.Unlock()
	return base + j
}

// readRetry reads path with bounded retries. A missing file returns
// immediately (a miss is not a sick disk).
func (d *Disk) readRetry(path string) ([]byte, error) {
	var b []byte
	var err error
	for attempt := 0; ; attempt++ {
		b, err = d.fs.ReadFile(path)
		if err == nil || errors.Is(err, iofs.ErrNotExist) {
			return b, err
		}
		if attempt >= d.opts.MaxRetries {
			return nil, err
		}
		d.retriesN.Add(1)
		d.opts.Sleep(d.backoff(attempt))
	}
}

// writeRetry writes a blob with bounded retries; ENOSPC evicts old blobs
// to make room before retrying, so a full disk sheds cache instead of
// failing writes forever.
func (d *Disk) writeRetry(name string, b []byte) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = d.fs.WriteFile(d.dir, name, b, d.sync)
		if err == nil {
			return nil
		}
		if attempt >= d.opts.MaxRetries {
			return err
		}
		if errors.Is(err, syscall.ENOSPC) {
			// Free the payload's worth plus slack; the oldest blobs go.
			d.evictBytes(int64(len(b)) + 1<<20)
		}
		d.retriesN.Add(1)
		d.opts.Sleep(d.backoff(attempt))
	}
}

// get reads a blob, refreshing its recency. A missing or unreadable file is
// a miss (nil); a file present on disk but unknown to the accounting — e.g.
// written by a previous process after this one scanned — is adopted.
func (d *Disk) get(name string) []byte {
	if !d.ioAllowed() {
		return nil
	}
	b, err := d.readRetry(filepath.Join(d.dir, name))
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			// A plain miss: the disk answered, there is just no blob.
			d.ioOK()
			d.forget(name)
			return nil
		}
		d.ioFailed(err)
		d.logf("results: reading %s: %v", name, err)
		return nil
	}
	d.ioOK()
	d.mu.Lock()
	if el, ok := d.files[name]; ok {
		d.lru.MoveToFront(el)
	} else {
		d.files[name] = d.lru.PushFront(&blobInfo{name, int64(len(b))})
		d.bytes += int64(len(b))
		d.evictLocked()
	}
	d.mu.Unlock()
	return b
}

// put writes a blob atomically and evicts over-budget blobs, oldest first.
// Failures are retried, then logged and swallowed: persistence is an
// optimization.
func (d *Disk) put(name string, b []byte) {
	if !d.ioAllowed() {
		return
	}
	if err := d.writeRetry(name, b); err != nil {
		d.ioFailed(err)
		d.logf("results: writing %s: %v", name, err)
		return
	}
	d.ioOK()
	d.mu.Lock()
	if el, ok := d.files[name]; ok {
		info := el.Value.(*blobInfo)
		d.bytes += int64(len(b)) - info.size
		info.size = int64(len(b))
		d.lru.MoveToFront(el)
	} else {
		d.files[name] = d.lru.PushFront(&blobInfo{name, int64(len(b))})
		d.bytes += int64(len(b))
	}
	d.evictLocked()
	d.mu.Unlock()
}

// delete removes a blob (a corrupt payload a reader rejected).
func (d *Disk) delete(name string) {
	if d.ioAllowed() {
		_ = d.fs.Remove(filepath.Join(d.dir, name))
	}
	d.forget(name)
}

// forget drops a blob from the accounting without touching the file.
func (d *Disk) forget(name string) {
	d.mu.Lock()
	if el, ok := d.files[name]; ok {
		d.bytes -= el.Value.(*blobInfo).size
		d.lru.Remove(el)
		delete(d.files, name)
	}
	d.mu.Unlock()
}

// evictLocked removes least-recently-used blobs until the budget holds.
// Called with d.mu held.
func (d *Disk) evictLocked() {
	for d.bytes > d.budget && d.lru.Len() > 1 {
		el := d.lru.Back()
		info := el.Value.(*blobInfo)
		d.lru.Remove(el)
		delete(d.files, info.name)
		d.bytes -= info.size
		_ = d.fs.Remove(filepath.Join(d.dir, info.name))
		d.logf("results: evicted %s (%d bytes) over budget", info.name, info.size)
	}
}

// evictBytes frees at least n bytes of the least-recently-used blobs (an
// ENOSPC response: the filesystem, not the budget, set the bound).
func (d *Disk) evictBytes(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	freed := int64(0)
	for freed < n && d.lru.Len() > 0 {
		el := d.lru.Back()
		info := el.Value.(*blobInfo)
		d.lru.Remove(el)
		delete(d.files, info.name)
		d.bytes -= info.size
		freed += info.size
		_ = d.fs.Remove(filepath.Join(d.dir, info.name))
		d.logf("results: evicted %s (%d bytes) for ENOSPC", info.name, info.size)
	}
}

// Blobs is one kind's view of a Disk (see Disk.Sub). It satisfies the
// snapshot store's blob-tier interface structurally, so the snapshot
// package never imports this one.
type Blobs struct {
	d   *Disk
	ext string
}

// Get returns the blob stored under key, or nil on any miss.
func (v *Blobs) Get(key string) []byte { return v.d.get(nameFor(key, v.ext)) }

// Put stores a blob under key, atomically, evicting over budget.
func (v *Blobs) Put(key string, b []byte) { v.d.put(nameFor(key, v.ext), b) }

// Delete removes key's blob (callers drop payloads they failed to decode).
func (v *Blobs) Delete(key string) { v.d.delete(nameFor(key, v.ext)) }

// Disk returns the underlying blob root (health plumbing for the server).
func (v *Blobs) Disk() *Disk { return v.d }
