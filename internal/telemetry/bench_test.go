package telemetry

import "testing"

// BenchmarkDisabledHooks measures the full per-request hook sequence with
// telemetry disabled (nil recorder), the configuration every non-telemetry
// run uses. Run with -benchmem: the contract is 0 allocs/op — the hooks
// must be free when nobody is watching. TestDisabledHooksAllocateNothing
// enforces the same property as a regular test.
func BenchmarkDisabledHooks(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		disabledRequest(r)
	}
}

// disabledRequest replays the hook calls one 2-page read makes on the hot
// path.
func disabledRequest(r *Recorder) {
	sp := r.StartRequest(0, true, 8192)
	sp.Admit(10)
	for p := 0; p < 2; p++ {
		r.CountRead(4, false)
		sp.AddPhase(StageQueue, 10, 20)
		sp.AddPhase(StageFlash, 20, 120)
		sp.AddPhase(StageECC, 120, 140)
	}
	r.FinishRequest(sp, 140, true)
}

func TestDisabledHooksAllocateNothing(t *testing.T) {
	var r *Recorder
	if allocs := testing.AllocsPerRun(1000, func() { disabledRequest(r) }); allocs != 0 {
		t.Fatalf("disabled telemetry hooks allocate %.1f times per request, want 0", allocs)
	}
}

// BenchmarkEnabledSpan is the enabled-path counterpart, for sizing the
// overhead a traced run accepts.
func BenchmarkEnabledSpan(b *testing.B) {
	r := New(Config{SpanCapacity: 1024})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		disabledRequest(r)
	}
}
