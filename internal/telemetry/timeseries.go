package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"
)

// Activity counts the device operations that happened within one sampling
// interval. All fields are per-interval deltas, not cumulative totals, so
// plotting a column directly shows activity over time.
type Activity struct {
	// ReadsDone and WritesDone count host requests completed.
	ReadsDone  uint64
	WritesDone uint64
	// ReadPages counts FTL host page reads; Senses sums their wordline
	// sensing counts (Senses/ReadPages is the interval's mean sensing
	// cost, the quantity IDA coding shrinks). IDAReadPages is the subset
	// served from IDA-reprogrammed wordlines.
	ReadPages    uint64
	Senses       uint64
	IDAReadPages uint64
	// WritePages counts FTL host page programs.
	WritePages uint64
	// GC and refresh job activity.
	GCJobs       uint64
	GCMoves      uint64
	Refreshes    uint64
	RefreshMoves uint64
	AdjustedWLs  uint64
	IDARefreshes uint64
	// FaultRetries counts host-path flash commands re-issued after an
	// injected fault (outage or transient timeout) within the interval.
	FaultRetries uint64
}

// Sample is one fixed-interval snapshot of device state. Gauges (queue
// depths, block populations) are instantaneous values at the sample
// instant; busy durations are deltas over the preceding interval.
type Sample struct {
	// At is the simulated instant of the snapshot.
	At time.Duration
	// Device tags the stream (stamped by Recorder.Record).
	Device int

	// Host interface occupancy.
	HostInFlight int // requests holding a submission-queue slot
	HostQueued   int // requests parked host-side

	// Die/channel scheduler state: busy server counts and summed queue
	// depths at the instant, plus busy-time accumulated over the
	// interval (summed across the resources of each kind).
	DiesBusy     int
	ChannelsBusy int
	DieQueued    int
	ChanQueued   int
	// DieMaxQueue and ChanMaxQueue are the deepest scheduler queues seen
	// during the interval (fed by the resource hooks, so bursts between
	// sampling instants are not missed); DieWait and ChanWait sum the
	// queueing delay of waiters granted service during the interval.
	DieMaxQueue  int
	ChanMaxQueue int
	DieWait      time.Duration
	ChanWait     time.Duration
	DieBusy      time.Duration
	ChanBusy     time.Duration
	// PerChannelBusy is the per-channel interval busy time, index =
	// channel number (per-channel utilization = value / interval).
	PerChannelBusy []time.Duration

	// Block populations (the merge-state census).
	FreeBlocks    int
	ActiveBlocks  int
	InUseBlocks   int
	EmptyBlocks   int
	IDABlocks     int
	IDAValidPages int // valid pages living on IDA-reprogrammed wordlines
	MappedPages   int
	// RetiredBlocks counts grown-bad blocks out of service (cumulative
	// census at the sample instant, like the other block populations).
	RetiredBlocks int

	// Background busy time over the interval.
	GCBusy      time.Duration
	RefreshBusy time.Duration

	Activity
}

// csvHeader returns the column names; nch is the per-channel column count.
func csvHeader(nch int) []string {
	h := []string{
		"at_ns", "dev",
		"host_inflight", "host_queued",
		"dies_busy", "channels_busy", "die_queued", "chan_queued",
		"die_max_queue", "chan_max_queue", "die_wait_ns", "chan_wait_ns",
		"die_busy_ns", "chan_busy_ns",
		"free_blocks", "active_blocks", "inuse_blocks", "empty_blocks",
		"ida_blocks", "ida_valid_pages", "mapped_pages", "retired_blocks",
		"gc_busy_ns", "refresh_busy_ns",
		"reads_done", "writes_done",
		"read_pages", "senses", "ida_read_pages", "write_pages",
		"gc_jobs", "gc_moves", "refreshes", "refresh_moves",
		"adjusted_wls", "ida_refreshes", "fault_retries",
	}
	for c := 0; c < nch; c++ {
		h = append(h, fmt.Sprintf("ch%d_busy_ns", c))
	}
	return h
}

// appendRow serializes one sample; nch pads or truncates the per-channel
// columns to the header width.
func (s *Sample) appendRow(row []string, nch int) []string {
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	i := func(v int) string { return strconv.Itoa(v) }
	d := func(v time.Duration) string { return strconv.FormatInt(int64(v), 10) }
	row = append(row,
		d(s.At), i(s.Device),
		i(s.HostInFlight), i(s.HostQueued),
		i(s.DiesBusy), i(s.ChannelsBusy), i(s.DieQueued), i(s.ChanQueued),
		i(s.DieMaxQueue), i(s.ChanMaxQueue), d(s.DieWait), d(s.ChanWait),
		d(s.DieBusy), d(s.ChanBusy),
		i(s.FreeBlocks), i(s.ActiveBlocks), i(s.InUseBlocks), i(s.EmptyBlocks),
		i(s.IDABlocks), i(s.IDAValidPages), i(s.MappedPages), i(s.RetiredBlocks),
		d(s.GCBusy), d(s.RefreshBusy),
		u(s.ReadsDone), u(s.WritesDone),
		u(s.ReadPages), u(s.Senses), u(s.IDAReadPages), u(s.WritePages),
		u(s.GCJobs), u(s.GCMoves), u(s.Refreshes), u(s.RefreshMoves),
		u(s.AdjustedWLs), u(s.IDARefreshes), u(s.FaultRetries),
	)
	for c := 0; c < nch; c++ {
		var v time.Duration
		if c < len(s.PerChannelBusy) {
			v = s.PerChannelBusy[c]
		}
		row = append(row, d(v))
	}
	return row
}

// WriteCSV serializes the export's time series. Every value is an integer
// (durations in nanoseconds), so two deterministic runs produce
// byte-identical files — the property the CI determinism gate compares.
func (e *Export) WriteCSV(w io.Writer) error {
	if e == nil {
		return fmt.Errorf("telemetry: nil export")
	}
	nch := 0
	for i := range e.Samples {
		if n := len(e.Samples[i].PerChannelBusy); n > nch {
			nch = n
		}
	}
	bw := bufio.NewWriter(w)
	writeRow := func(row []string) {
		for i, f := range row {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(f)
		}
		bw.WriteByte('\n')
	}
	writeRow(csvHeader(nch))
	row := make([]string, 0, 37+nch)
	for i := range e.Samples {
		row = e.Samples[i].appendRow(row[:0], nch)
		writeRow(row)
	}
	return bw.Flush()
}

// WriteCSVFile writes the time series to a file.
func (e *Export) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := e.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
