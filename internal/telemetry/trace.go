package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// This file serializes recorded spans in the Chrome trace-event format
// ("JSON Array Format" with complete events), which Perfetto and
// chrome://tracing load directly: each device is a process, each request a
// thread, and each request-path phase a complete ("X") slice. Timestamps
// are microseconds (the format's unit), emitted as shortest-round-trip
// floats so nanosecond simulation instants survive.

// traceEvent is one trace-event entry. Field order is fixed by the struct,
// so marshaling is deterministic.
type traceEvent struct {
	Name string     `json:"name"`
	Ph   string     `json:"ph"`
	Ts   float64    `json:"ts"`
	Dur  *float64   `json:"dur,omitempty"`
	Pid  int        `json:"pid"`
	Tid  uint64     `json:"tid"`
	Args *traceArgs `json:"args,omitempty"`
}

// traceArgs carries the per-event metadata; zero fields are omitted.
type traceArgs struct {
	Name  string `json:"name,omitempty"`
	Bytes int    `json:"bytes,omitempty"`
	ID    uint64 `json:"id,omitempty"`
}

// traceFile is the top-level trace-event JSON document.
type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// micros converts a simulated instant/duration to trace microseconds.
func micros(ns int64) float64 { return float64(ns) / 1e3 }

// TraceEventCount returns the number of trace events the export would
// serialize (tests and capacity planning).
func (e *Export) TraceEventCount() int {
	n := 0
	for i := range e.Spans {
		n += 1 + len(e.Spans[i].Phases)
	}
	return n
}

// WriteTrace serializes the export's spans as Chrome/Perfetto trace-event
// JSON. Each span becomes one request-level slice plus one slice per
// phase, all on thread span.ID of process span.Device; a metadata event
// names each device process. Output is deterministic for deterministic
// inputs.
func (e *Export) WriteTrace(w io.Writer) error {
	if e == nil {
		return fmt.Errorf("telemetry: nil export")
	}
	doc := traceFile{
		DisplayTimeUnit: "ms",
		TraceEvents:     make([]traceEvent, 0, e.TraceEventCount()+8),
	}
	seen := map[int]bool{}
	for i := range e.Spans {
		sp := &e.Spans[i]
		if !seen[sp.Device] {
			seen[sp.Device] = true
			doc.TraceEvents = append(doc.TraceEvents, traceEvent{
				Name: "process_name",
				Ph:   "M",
				Pid:  sp.Device,
				Args: &traceArgs{Name: fmt.Sprintf("dev%d", sp.Device)},
			})
		}
		name := "write"
		if sp.Read {
			name = "read"
		}
		dur := micros(int64(sp.Completed - sp.Arrived))
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: name,
			Ph:   "X",
			Ts:   micros(int64(sp.Arrived)),
			Dur:  &dur,
			Pid:  sp.Device,
			Tid:  sp.ID,
			Args: &traceArgs{Bytes: sp.Bytes, ID: sp.ID},
		})
		for _, ph := range sp.Phases {
			d := micros(int64(ph.End - ph.Start))
			doc.TraceEvents = append(doc.TraceEvents, traceEvent{
				Name: ph.Stage.String(),
				Ph:   "X",
				Ts:   micros(int64(ph.Start)),
				Dur:  &d,
				Pid:  sp.Device,
				Tid:  sp.ID,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteTraceFile writes the trace-event JSON to a file.
func (e *Export) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := e.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
