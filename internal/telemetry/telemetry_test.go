package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func ms(n int64) time.Duration { return time.Duration(n) * time.Millisecond }

// record builds a recorder with a few committed spans.
func record(t *testing.T, cfg Config, n int) *Recorder {
	t.Helper()
	r := New(cfg)
	for i := 0; i < n; i++ {
		at := ms(int64(i))
		sp := r.StartRequest(at, i%2 == 0, 4096)
		sp.Admit(at + ms(1))
		sp.AddPhase(StageQueue, at+ms(1), at+ms(2))
		sp.AddPhase(StageFlash, at+ms(2), at+ms(3))
		sp.AddPhase(StageECC, at+ms(3), at+ms(4))
		r.FinishRequest(sp, at+ms(4), i%2 == 0)
	}
	return r
}

func TestSpanLifecycleAndOrdering(t *testing.T) {
	r := record(t, Config{}, 5)
	e := r.Export()
	if len(e.Spans) != 5 {
		t.Fatalf("spans = %d, want 5", len(e.Spans))
	}
	for i, sp := range e.Spans {
		if sp.ID != uint64(i+1) {
			t.Errorf("span %d: ID = %d, want %d", i, sp.ID, i+1)
		}
		if !(sp.Arrived <= sp.Admitted && sp.Admitted <= sp.Completed) {
			t.Errorf("span %d: out-of-order instants %v %v %v", i, sp.Arrived, sp.Admitted, sp.Completed)
		}
		// Admission phase (1ms wait) + the three explicit phases.
		if len(sp.Phases) != 4 {
			t.Fatalf("span %d: phases = %d, want 4", i, len(sp.Phases))
		}
		if sp.Phases[0].Stage != StageAdmission {
			t.Errorf("span %d: first phase %v, want admission", i, sp.Phases[0].Stage)
		}
		for j, ph := range sp.Phases {
			if ph.End < ph.Start {
				t.Errorf("span %d phase %d: end %v before start %v", i, j, ph.End, ph.Start)
			}
		}
	}
}

func TestSamplingEveryNth(t *testing.T) {
	r := New(Config{SampleEvery: 3})
	var kept int
	for i := 0; i < 10; i++ {
		sp := r.StartRequest(ms(int64(i)), true, 512)
		if sp != nil {
			kept++
		}
		r.FinishRequest(sp, ms(int64(i)+1), true)
	}
	if kept != 4 { // arrivals 1, 4, 7, 10
		t.Fatalf("sampled %d spans of 10 with SampleEvery=3, want 4", kept)
	}
	if got := r.Export().Spans; len(got) != 4 {
		t.Fatalf("exported %d spans, want 4", len(got))
	}
	// Completions count even for unsampled requests.
	if a := r.TakeActivity(); a.ReadsDone != 10 {
		t.Fatalf("ReadsDone = %d, want 10", a.ReadsDone)
	}
}

func TestRingBufferOverwritesOldest(t *testing.T) {
	r := record(t, Config{SpanCapacity: 4}, 10)
	e := r.Export()
	if len(e.Spans) != 4 {
		t.Fatalf("spans = %d, want capacity 4", len(e.Spans))
	}
	if e.DroppedSpans != 6 {
		t.Fatalf("dropped = %d, want 6", e.DroppedSpans)
	}
	// Oldest-first order of the surviving newest spans: IDs 7..10.
	for i, sp := range e.Spans {
		if want := uint64(7 + i); sp.ID != want {
			t.Errorf("spans[%d].ID = %d, want %d", i, sp.ID, want)
		}
	}
}

// TestTraceRoundTrip exports spans as trace-event JSON and re-parses it,
// checking the schema Perfetto relies on: a traceEvents array of "X"
// events with name/ts/dur/pid/tid, plus process-name metadata.
func TestTraceRoundTrip(t *testing.T) {
	r := record(t, Config{Device: 2}, 3)
	var buf bytes.Buffer
	if err := r.Export().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  uint64  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	// 1 metadata + 3 spans * (1 request + 4 phases).
	if want := 1 + 3*5; len(doc.TraceEvents) != want {
		t.Fatalf("events = %d, want %d", len(doc.TraceEvents), want)
	}
	if doc.TraceEvents[0].Ph != "M" || doc.TraceEvents[0].Name != "process_name" {
		t.Fatalf("first event %+v, want process_name metadata", doc.TraceEvents[0])
	}
	stageNames := map[string]bool{"admission": true, "queue": true, "flash": true, "ecc": true}
	var lastRequestTs float64 = -1
	for _, ev := range doc.TraceEvents[1:] {
		if ev.Ph != "X" {
			t.Errorf("event %q: ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Pid != 2 {
			t.Errorf("event %q: pid = %d, want 2", ev.Name, ev.Pid)
		}
		if ev.Dur < 0 || ev.Ts < 0 {
			t.Errorf("event %q: negative ts/dur (%v, %v)", ev.Name, ev.Ts, ev.Dur)
		}
		switch {
		case ev.Name == "read" || ev.Name == "write":
			if ev.Ts < lastRequestTs {
				t.Errorf("request slices out of arrival order: ts %v after %v", ev.Ts, lastRequestTs)
			}
			lastRequestTs = ev.Ts
		case !stageNames[ev.Name]:
			t.Errorf("unexpected slice name %q", ev.Name)
		}
	}
}

func TestCSVSchemaAndDeterminism(t *testing.T) {
	build := func() *Export {
		r := New(Config{MetricsInterval: ms(10)})
		r.CountRead(4, false)
		r.CountRead(2, true)
		r.CountWrite()
		r.CountGC(7)
		r.CountRefresh(3, 2, true)
		r.Record(Sample{
			At: ms(10), HostInFlight: 3, HostQueued: 1,
			DiesBusy: 2, ChannelsBusy: 1, DieQueued: 4, ChanQueued: 2,
			DieMaxQueue: 6, ChanMaxQueue: 3, DieWait: ms(7), ChanWait: ms(2),
			DieBusy: ms(5), ChanBusy: ms(3),
			PerChannelBusy: []time.Duration{ms(1), ms(2)},
			FreeBlocks:     8, InUseBlocks: 4, IDABlocks: 1, IDAValidPages: 96,
			Activity: r.TakeActivity(),
		})
		r.Record(Sample{At: ms(20), PerChannelBusy: []time.Duration{0, ms(4)}, Activity: r.TakeActivity()})
		return r.Export()
	}
	var a, b bytes.Buffer
	if err := build().WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical recordings serialized differently")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2 rows", len(lines))
	}
	header := strings.Split(lines[0], ",")
	for _, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != len(header) {
			t.Fatalf("row has %d fields, header has %d", got, len(header))
		}
	}
	// Spot-check the activity columns landed where the header says.
	idx := map[string]int{}
	for i, name := range header {
		idx[name] = i
	}
	row1 := strings.Split(lines[1], ",")
	for col, want := range map[string]string{
		"at_ns":          "10000000",
		"read_pages":     "2",
		"senses":         "6",
		"ida_read_pages": "1",
		"gc_moves":       "7",
		"adjusted_wls":   "2",
		"die_max_queue":  "6",
		"die_wait_ns":    "7000000",
		"ch1_busy_ns":    "2000000",
	} {
		i, ok := idx[col]
		if !ok {
			t.Fatalf("missing column %q", col)
		}
		if row1[i] != want {
			t.Errorf("column %s = %s, want %s", col, row1[i], want)
		}
	}
	// The second TakeActivity must have been reset by the first.
	row2 := strings.Split(lines[2], ",")
	if row2[idx["read_pages"]] != "0" {
		t.Errorf("activity not reset between intervals: read_pages = %s", row2[idx["read_pages"]])
	}
}

func TestMergeExportsOrdersStreams(t *testing.T) {
	mk := func(dev int, base int64) *Export {
		r := New(Config{Device: dev, MetricsInterval: ms(10)})
		for i := int64(0); i < 3; i++ {
			sp := r.StartRequest(ms(base+10*i), true, 1024)
			r.FinishRequest(sp, ms(base+10*i+5), true)
			r.Record(Sample{At: ms(10 * (i + 1))})
		}
		return r.Export()
	}
	m := MergeExports(mk(1, 2), nil, mk(0, 0))
	if m.Device != -1 {
		t.Fatalf("merged device tag = %d, want -1", m.Device)
	}
	if len(m.Spans) != 6 || len(m.Samples) != 6 {
		t.Fatalf("merged %d spans / %d samples, want 6 / 6", len(m.Spans), len(m.Samples))
	}
	for i := 1; i < len(m.Spans); i++ {
		a, b := m.Spans[i-1], m.Spans[i]
		if a.Arrived > b.Arrived || (a.Arrived == b.Arrived && a.Device > b.Device) {
			t.Fatalf("spans unsorted at %d: %+v then %+v", i, a, b)
		}
	}
	for i := 1; i < len(m.Samples); i++ {
		a, b := m.Samples[i-1], m.Samples[i]
		if a.At > b.At || (a.At == b.At && a.Device > b.Device) {
			t.Fatalf("samples unsorted at %d: %+v then %+v", i, a, b)
		}
	}
	if MergeExports(nil, nil) != nil {
		t.Fatal("merging nothing should return nil")
	}
	single := mk(0, 0)
	if MergeExports(single, nil) != single {
		t.Fatal("merging one export should return it unchanged")
	}
}

// TestNilRecorderIsInert drives every hook through a nil recorder; the
// companion benchmark proves the path also does not allocate.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	sp := r.StartRequest(0, true, 4096)
	if sp != nil {
		t.Fatal("nil recorder returned a span")
	}
	sp.Admit(ms(1))
	sp.AddPhase(StageFlash, 0, ms(1))
	r.FinishRequest(sp, ms(2), true)
	r.CountRead(4, true)
	r.CountWrite()
	r.CountGC(3)
	r.CountRefresh(1, 1, false)
	r.Record(Sample{})
	if a := r.TakeActivity(); a != (Activity{}) {
		t.Fatalf("nil recorder accumulated activity %+v", a)
	}
	if r.Interval() != 0 || r.Device() != 0 {
		t.Fatal("nil recorder reported non-zero config")
	}
	if r.Export() != nil {
		t.Fatal("nil recorder exported something")
	}
}
