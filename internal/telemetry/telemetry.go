// Package telemetry records the lifecycle of host requests and the time
// evolution of device state inside the simulated SSD, the observability
// layer of the request path built in internal/ssd.
//
// It has two recording surfaces:
//
//   - A span recorder: every sampled host request gets a Span capturing its
//     transitions through the staged request path (arrival -> admission
//     wait -> scheduler queue -> flash sensing/transfer -> ECC decode ->
//     completion), kept in a bounded ring buffer and exportable as
//     Chrome/Perfetto trace-event JSON (trace.go).
//   - A time-series sampler: at a fixed simulated-time interval the device
//     snapshots queue depths, per-channel busy time, host-queue occupancy,
//     block and merge-state page populations, and GC/refresh activity into
//     Samples, exportable as CSV (timeseries.go).
//
// Both surfaces are driven through nil-safe hooks: every method on
// *Recorder and *Span checks for a nil receiver first, so a disabled
// recorder (the default) costs one predictable branch and zero allocations
// on the simulator's hot path. The benchmark in bench_test.go asserts the
// zero-allocation property.
//
// Recording is deterministic: span IDs and sample order are functions of
// the simulation's own event order, so two runs of the same seeded
// workload export byte-identical traces and CSVs. A Recorder is owned by
// one device (one goroutine); array drivers merge the per-device exports
// afterwards with MergeExports.
package telemetry

import (
	"fmt"
	"sort"
	"time"
)

// Stage identifies one segment of a request's path through the device.
type Stage uint8

// Request-path stages, in pipeline order.
const (
	// StageAdmission is the host-side wait for a submission-queue slot
	// (zero-width for requests admitted on arrival).
	StageAdmission Stage = iota
	// StageQueue is the wait in a die/channel scheduler queue before a
	// flash command is served.
	StageQueue
	// StageFlash is the sensing/transfer (reads) or transfer/program
	// (writes) hold on the die and channel.
	StageFlash
	// StageECC is the decode latency after a read transfer.
	StageECC
	numStages
)

// String names the stage (the trace-event name).
func (s Stage) String() string {
	switch s {
	case StageAdmission:
		return "admission"
	case StageQueue:
		return "queue"
	case StageFlash:
		return "flash"
	case StageECC:
		return "ecc"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Phase is one timed segment of a span. A multi-page request records one
// queue/flash/ecc phase sequence per page, so phases of the same stage may
// repeat and overlap within a span.
type Phase struct {
	Stage      Stage
	Start, End time.Duration // simulated instants
}

// Span is the recorded lifecycle of one sampled host request.
type Span struct {
	// ID is the 1-based arrival index of the request on its device, a
	// deterministic function of the workload.
	ID uint64
	// Device tags the originating device in a striped array (0 for a
	// single device).
	Device int
	Read   bool
	Bytes  int
	// Arrived, Admitted, and Completed are the simulated instants of
	// arrival, entry into service (end of host-side queueing), and
	// final page completion.
	Arrived   time.Duration
	Admitted  time.Duration
	Completed time.Duration
	Phases    []Phase
}

// Admit marks the end of the admission wait. Nil-safe.
func (s *Span) Admit(now time.Duration) {
	if s == nil {
		return
	}
	s.Admitted = now
	if now > s.Arrived {
		s.Phases = append(s.Phases, Phase{Stage: StageAdmission, Start: s.Arrived, End: now})
	}
}

// AddPhase appends one timed segment. Zero-width segments are kept: they mark
// instant transitions (e.g. a queue grant with no waiting). Nil-safe.
func (s *Span) AddPhase(st Stage, start, end time.Duration) {
	if s == nil {
		return
	}
	s.Phases = append(s.Phases, Phase{Stage: st, Start: start, End: end})
}

// Config parameterizes a Recorder.
type Config struct {
	// SampleEvery records every Nth request's span; 0 and 1 both mean
	// every request. Sampling is by arrival index, so it is
	// deterministic.
	SampleEvery int
	// SpanCapacity bounds the span ring buffer; when full, the oldest
	// span is overwritten (DroppedSpans counts the losses). Zero means
	// DefaultSpanCapacity.
	SpanCapacity int
	// MetricsInterval is the simulated-time period of the time-series
	// sampler; zero disables time-series recording (spans are still
	// recorded).
	MetricsInterval time.Duration
	// Device tags this recorder's streams with an array member index.
	Device int
}

// DefaultSpanCapacity is the span ring size when Config.SpanCapacity is 0.
const DefaultSpanCapacity = 1 << 14

// Recorder accumulates spans and samples for one device. All methods are
// nil-safe: a nil *Recorder disables recording at the cost of one branch
// per hook, with no allocations (see bench_test.go).
type Recorder struct {
	cfg      Config
	arrivals uint64 // requests seen (sampling base)

	spans   []Span // ring buffer
	next    int    // ring write cursor
	filled  bool   // ring has wrapped
	dropped uint64

	samples []Sample
	acc     Activity // activity accumulated since the last sample
}

// New builds a Recorder. The zero Config records every request's span and
// no time series.
func New(cfg Config) *Recorder {
	if cfg.SampleEvery < 0 {
		cfg.SampleEvery = 0
	}
	if cfg.SpanCapacity <= 0 {
		cfg.SpanCapacity = DefaultSpanCapacity
	}
	return &Recorder{cfg: cfg, spans: make([]Span, 0, cfg.SpanCapacity)}
}

// Interval returns the time-series period, or zero when disabled (or when
// the recorder itself is nil).
func (r *Recorder) Interval() time.Duration {
	if r == nil {
		return 0
	}
	return r.cfg.MetricsInterval
}

// Device returns the recorder's stream tag.
func (r *Recorder) Device() int {
	if r == nil {
		return 0
	}
	return r.cfg.Device
}

// StartRequest registers a host-request arrival and returns its span, or
// nil when the request is not sampled (or the recorder is nil). The span's
// ID is the 1-based arrival index.
func (r *Recorder) StartRequest(arrived time.Duration, read bool, bytes int) *Span {
	if r == nil {
		return nil
	}
	r.arrivals++
	if n := r.cfg.SampleEvery; n > 1 && (r.arrivals-1)%uint64(n) != 0 {
		return nil
	}
	return &Span{
		ID:       r.arrivals,
		Device:   r.cfg.Device,
		Read:     read,
		Bytes:    bytes,
		Arrived:  arrived,
		Admitted: arrived,
	}
}

// FinishRequest stamps the span's completion and commits it to the ring
// buffer. It also counts the completion into the current activity interval
// for every request, sampled or not. Nil-safe on both receiver and span.
func (r *Recorder) FinishRequest(sp *Span, now time.Duration, read bool) {
	if r == nil {
		return
	}
	if read {
		r.acc.ReadsDone++
	} else {
		r.acc.WritesDone++
	}
	if sp == nil {
		return
	}
	sp.Completed = now
	if len(r.spans) < cap(r.spans) {
		r.spans = append(r.spans, *sp)
		return
	}
	r.spans[r.next] = *sp
	r.next++
	if r.next == len(r.spans) {
		r.next = 0
	}
	r.filled = true
	r.dropped++
}

// CountRead accounts one FTL host page read into the current interval.
func (r *Recorder) CountRead(senses int, ida bool) {
	if r == nil {
		return
	}
	r.acc.ReadPages++
	r.acc.Senses += uint64(senses)
	if ida {
		r.acc.IDAReadPages++
	}
}

// CountWrite accounts one FTL host page program into the current interval.
func (r *Recorder) CountWrite() {
	if r == nil {
		return
	}
	r.acc.WritePages++
}

// CountGC accounts one garbage-collection job into the current interval.
func (r *Recorder) CountGC(moves int) {
	if r == nil {
		return
	}
	r.acc.GCJobs++
	r.acc.GCMoves += uint64(moves)
}

// CountRefresh accounts one refresh job into the current interval.
func (r *Recorder) CountRefresh(moves, adjustedWLs int, ida bool) {
	if r == nil {
		return
	}
	r.acc.Refreshes++
	r.acc.RefreshMoves += uint64(moves)
	r.acc.AdjustedWLs += uint64(adjustedWLs)
	if ida {
		r.acc.IDARefreshes++
	}
}

// CountFaultRetry accounts one host-path fault retry (a flash command
// re-issued after an injected outage or timeout) into the current interval.
func (r *Recorder) CountFaultRetry() {
	if r == nil {
		return
	}
	r.acc.FaultRetries++
}

// TakeActivity returns the activity accumulated since the previous call
// and resets the accumulator; the device's sampler calls it once per tick.
func (r *Recorder) TakeActivity() Activity {
	if r == nil {
		return Activity{}
	}
	a := r.acc
	r.acc = Activity{}
	return a
}

// Record appends one time-series sample. The caller supplies everything
// but the device tag, which the recorder stamps.
func (r *Recorder) Record(s Sample) {
	if r == nil {
		return
	}
	s.Device = r.cfg.Device
	r.samples = append(r.samples, s)
}

// orderedSpans returns the ring contents oldest-first.
func (r *Recorder) orderedSpans() []Span {
	if !r.filled {
		out := make([]Span, len(r.spans))
		copy(out, r.spans)
		return out
	}
	out := make([]Span, 0, len(r.spans))
	out = append(out, r.spans[r.next:]...)
	out = append(out, r.spans[:r.next]...)
	return out
}

// Export snapshots everything recorded so far. It returns nil for a nil
// recorder, so callers can unconditionally attach it to results.
func (r *Recorder) Export() *Export {
	if r == nil {
		return nil
	}
	return &Export{
		Device:         r.cfg.Device,
		Spans:          r.orderedSpans(),
		DroppedSpans:   r.dropped,
		Samples:        append([]Sample(nil), r.samples...),
		SampleInterval: r.cfg.MetricsInterval,
	}
}

// Export is an immutable snapshot of one or more recorders' streams,
// ready for serialization.
type Export struct {
	// Device is the stream tag, or -1 for a merged multi-device export.
	Device int
	// Spans is ordered by commit time per device; merged exports
	// re-sort by (Arrived, Device, ID).
	Spans        []Span
	DroppedSpans uint64
	// Samples is ordered by (At, Device).
	Samples        []Sample
	SampleInterval time.Duration
}

// MergeExports combines per-device exports into one: spans sorted by
// arrival instant (ties broken by device then ID), samples by sample
// instant then device. Nil exports are skipped; merging nothing returns
// nil. The merge is a pure function of its inputs, so a striped array's
// telemetry stays deterministic even though its devices run concurrently.
func MergeExports(exports ...*Export) *Export {
	live := exports[:0:0]
	for _, e := range exports {
		if e != nil {
			live = append(live, e)
		}
	}
	if len(live) == 0 {
		return nil
	}
	if len(live) == 1 {
		return live[0]
	}
	m := &Export{Device: -1, SampleInterval: live[0].SampleInterval}
	for _, e := range live {
		m.Spans = append(m.Spans, e.Spans...)
		m.Samples = append(m.Samples, e.Samples...)
		m.DroppedSpans += e.DroppedSpans
	}
	sortSpans(m.Spans)
	sortSamples(m.Samples)
	return m
}

// sortSpans orders spans by (Arrived, Device, ID).
func sortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := &spans[i], &spans[j]
		if a.Arrived != b.Arrived {
			return a.Arrived < b.Arrived
		}
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		return a.ID < b.ID
	})
}

// sortSamples orders samples by (At, Device).
func sortSamples(samples []Sample) {
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].At != samples[j].At {
			return samples[i].At < samples[j].At
		}
		return samples[i].Device < samples[j].Device
	})
}
