package ssd

import (
	"time"

	"idaflash/internal/sim"
	"idaflash/internal/telemetry"
	"idaflash/internal/workload"
)

// The request path through the device is a pipeline of named stages:
//
//	admission (host queue) -> scheduler (per-die/channel arbitration)
//	  -> FTL dispatch (dispatch.go) -> flash command issue (flashio.go)
//
// Each stage owns its state and statistics so it can be tested and
// instrumented on its own. This file is the first stage: host-side
// admission against the submission-queue depth.

// StageStats bundles the per-stage instrumentation for Results.
type StageStats struct {
	Admission AdmissionStats
	Dispatch  DispatchStats
	Flash     FlashStats
}

// Add returns the field-wise sum of two stage snapshots (array merging).
func (s StageStats) Add(o StageStats) StageStats {
	s.Admission.Admitted += o.Admission.Admitted
	s.Admission.HostQueued += o.Admission.HostQueued
	s.Admission.HostQueueWait += o.Admission.HostQueueWait
	if o.Admission.MaxHostQueue > s.Admission.MaxHostQueue {
		s.Admission.MaxHostQueue = o.Admission.MaxHostQueue
	}
	s.Dispatch.ReadPages += o.Dispatch.ReadPages
	s.Dispatch.WritePages += o.Dispatch.WritePages
	s.Dispatch.UnmappedPages += o.Dispatch.UnmappedPages
	s.Flash.ReadCommands += o.Flash.ReadCommands
	s.Flash.RetryRounds += o.Flash.RetryRounds
	s.Flash.ProgramCommands += o.Flash.ProgramCommands
	return s
}

// queuedRequest is a host request waiting for a submission-queue slot.
type queuedRequest struct {
	r       workload.Request
	arrived sim.Time
	sp      *telemetry.Span // nil when unsampled
}

// AdmissionStats instruments the admission stage.
type AdmissionStats struct {
	// Admitted counts requests that entered service (immediately or
	// after host-side queueing).
	Admitted uint64
	// HostQueued counts requests that had to wait host-side for a
	// submission-queue slot.
	HostQueued uint64
	// HostQueueWait is the total host-side queueing delay across all
	// admitted requests; it is part of their response time.
	HostQueueWait time.Duration
	// MaxHostQueue is the deepest the host-side queue ever got.
	MaxHostQueue int
}

// admission is the host-queue stage: it caps concurrently-serviced requests
// at the submission-queue depth and parks overflow in an arrival-ordered
// FIFO. It is pure bookkeeping — no engine dependency — so it is testable in
// isolation.
type admission struct {
	maxDepth int // 0 means unlimited
	inFlight int
	queue    []queuedRequest
	stats    AdmissionStats
}

// hasSlot reports whether a new request may enter service now.
func (a *admission) hasSlot() bool {
	return a.maxDepth == 0 || a.inFlight < a.maxDepth
}

// park queues a request host-side until a slot frees up.
func (a *admission) park(r workload.Request, arrived sim.Time, sp *telemetry.Span) {
	a.queue = append(a.queue, queuedRequest{r: r, arrived: arrived, sp: sp})
	a.stats.HostQueued++
	if len(a.queue) > a.stats.MaxHostQueue {
		a.stats.MaxHostQueue = len(a.queue)
	}
}

// admit accounts a request entering service at instant now; arrived is its
// original arrival (which may predate now if it was parked).
func (a *admission) admit(arrived, now sim.Time) {
	a.inFlight++
	a.stats.Admitted++
	a.stats.HostQueueWait += now - arrived
}

// release frees the slot of a completed request and returns the next parked
// request, if one can start.
func (a *admission) release() (next queuedRequest, ok bool) {
	a.inFlight--
	if len(a.queue) == 0 || !a.hasSlot() {
		return queuedRequest{}, false
	}
	next = a.queue[0]
	copy(a.queue, a.queue[1:])
	a.queue = a.queue[:len(a.queue)-1]
	return next, true
}
