package ssd

import (
	"testing"
	"time"

	"idaflash/internal/flash"
	"idaflash/internal/ftl"
	"idaflash/internal/sim"
	"idaflash/internal/workload"
)

// singleDieConfig funnels everything through one channel and one die so the
// scheduling policy is the only thing deciding service order.
func singleDieConfig(policy sim.Policy) Config {
	return Config{
		Geometry: flash.Geometry{
			Channels: 1, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1,
			BlocksPerPlane: 24, WordlinesPerBlock: 4, PageSizeBytes: 8192, BitsPerCell: 3,
		},
		Timing:              flash.PaperTLCTiming(),
		FTL:                 ftl.Options{Seed: 7},
		RefreshScanInterval: time.Minute,
		Scheduler:           policy,
		Seed:                7,
	}
}

// readBehindWriteBurst submits a burst of writes at t=0 and one read at
// t=400us — after every write's channel transfer has landed it in the die
// queue, so the die scheduler alone decides how long the read waits — and
// returns the read's response time under the policy.
func readBehindWriteBurst(t *testing.T, s *SSD) time.Duration {
	t.Helper()
	if _, err := s.FTL().Write(0, 0); err != nil {
		t.Fatal(err)
	}
	const writes = 8
	s.engine.At(0, func() {
		for i := int64(0); i < writes; i++ {
			s.submit(workload.Request{At: 0, Offset: (8 + i) * 8192, Size: 8192, Read: false})
		}
	})
	s.engine.At(400*time.Microsecond, func() {
		s.submit(workload.Request{At: 400 * time.Microsecond, Offset: 0, Size: 8192, Read: true})
	})
	s.engine.Run()
	if s.readReqs != 1 || s.writeReqs != writes {
		t.Fatalf("served %d reads / %d writes", s.readReqs, s.writeReqs)
	}
	return s.readResp.Mean()
}

func burstDevice(t *testing.T, policy sim.Policy) *SSD {
	t.Helper()
	s, err := New(singleDieConfig(policy))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// The behavioral contract of the three policies, observed end to end:
// read-first lets the read overtake the whole burst, FIFO makes it wait for
// every write, and age-aware stays near read-first while the writes are
// younger than the starvation bound.
func TestSchedulerPoliciesOrderReadBehindWriteBurst(t *testing.T) {
	rf := readBehindWriteBurst(t, burstDevice(t, sim.PolicyReadFirst))
	fifo := readBehindWriteBurst(t, burstDevice(t, sim.PolicyFIFO))
	aa := readBehindWriteBurst(t, burstDevice(t, sim.PolicyAgeAware))
	prog := flash.PaperTLCTiming().Program

	// FIFO does not reorder: the read pays for all eight writes.
	if fifo < 6*prog {
		t.Errorf("FIFO read response %v suspiciously low (no queueing behind burst?)", fifo)
	}
	if fifo <= rf {
		t.Errorf("FIFO read %v not slower than read-first %v", fifo, rf)
	}
	// Age-aware bounds the read's wait behind the burst: far below FIFO,
	// and no better than the pure read-first policy.
	if aa > fifo/3 {
		t.Errorf("age-aware read response %v not materially below FIFO %v", aa, fifo)
	}
	if aa < rf {
		t.Errorf("age-aware read %v beat read-first %v, impossible", aa, rf)
	}
	// Read-first: the read waits at most one in-service program.
	if rf > prog+2*time.Millisecond {
		t.Errorf("read-first read response %v, want ~ one program", rf)
	}
}

// With a tiny starvation bound the aged writes overtake the read, so the
// bound is really what separates age-aware from read-first.
func TestAgeAwareBoundActuallyPromotesWrites(t *testing.T) {
	cfg := singleDieConfig(sim.PolicyAgeAware)
	cfg.SchedulerMaxWait = 10 * time.Microsecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tight := readBehindWriteBurst(t, s)
	loose := readBehindWriteBurst(t, burstDevice(t, sim.PolicyAgeAware))
	if tight <= loose {
		t.Errorf("tight bound read response %v not above default-bound %v", tight, loose)
	}
}

// Same seed + same trace must give bit-identical Results under every
// scheduler, independently: the goroutine-free engine plus deterministic
// schedulers guarantee reproducibility regardless of policy.
func TestSchedulerDeterminismPerPolicy(t *testing.T) {
	tr := testTrace(t, "sched-det", 2000, 0.85)
	for _, policy := range sim.Policies() {
		policy := policy
		t.Run(string(policy), func(t *testing.T) {
			run := func() Results {
				cfg := testConfig(true, 0.2)
				cfg.Scheduler = policy
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Run(tr, RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(), run()
			if a.Scalars() != b.Scalars() {
				t.Errorf("%s: identical runs diverged:\n%+v\n%+v", policy, a, b)
			}
		})
	}
}

// The default (read-first) scheduler must reproduce seed behavior exactly:
// an explicitly-configured read-first run equals a zero-config run.
func TestDefaultSchedulerIsReadFirst(t *testing.T) {
	tr := testTrace(t, "default-sched", 1500, 0.9)
	run := func(policy sim.Policy) Results {
		cfg := testConfig(true, 0.2)
		cfg.Scheduler = policy
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if s.dies[0].Policy() != sim.PolicyReadFirst {
			t.Fatalf("resource policy = %s", s.dies[0].Policy())
		}
		res, err := s.Run(tr, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(""), run(sim.PolicyReadFirst); a.Scalars() != b.Scalars() {
		t.Errorf("empty policy diverged from explicit read-first:\n%+v\n%+v", a, b)
	}
}

func TestBadSchedulerRejected(t *testing.T) {
	cfg := testConfig(false, 0)
	cfg.Scheduler = "round-robin"
	if _, err := New(cfg); err == nil {
		t.Error("unknown scheduler accepted")
	}
	cfg = testConfig(false, 0)
	cfg.SchedulerMaxWait = -time.Second
	if _, err := New(cfg); err == nil {
		t.Error("negative MaxWait accepted")
	}
}
