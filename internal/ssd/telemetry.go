package ssd

// Telemetry wiring for the staged request path. The recorder itself lives
// in internal/telemetry; this file adapts the device's stages to it:
//
//   - resourceWatch turns sim.ResourceHook events (scheduler queueing and
//     grants on dies and channels) into per-interval aggregates.
//   - ftlHooks turns FTL operation callbacks (reads, programs, GC,
//     refresh) into activity counters.
//   - recordSample snapshots everything into one telemetry.Sample; the
//     engine's Pulse drives it at Config.Telemetry.MetricsInterval.
//
// All of it is inert when telemetry is disabled: s.tel is nil, the FTL
// hooks are never installed, and the sampler is never armed.

import (
	"time"

	"idaflash/internal/ftl"
	"idaflash/internal/sim"
	"idaflash/internal/telemetry"
)

// resourceWatch aggregates scheduler-queue pressure between samples: the
// deepest queue seen and the summed queueing delay of granted waiters.
// One instance watches all resources of a kind (all dies or all channels).
type resourceWatch struct {
	maxQueue int
	wait     time.Duration
}

func (w *resourceWatch) ResourceEnqueued(_ *sim.Resource, _ sim.Priority, depth int) {
	if depth > w.maxQueue {
		w.maxQueue = depth
	}
}

func (w *resourceWatch) ResourceGranted(_ *sim.Resource, _ sim.Priority, wait, _ time.Duration) {
	w.wait += wait
}

// take returns the interval's aggregates and resets them.
func (w *resourceWatch) take() (maxQueue int, wait time.Duration) {
	maxQueue, wait = w.maxQueue, w.wait
	w.maxQueue, w.wait = 0, 0
	return
}

// ftlHooks adapts the FTL's operation callbacks to the recorder's activity
// counters. Only called when telemetry is enabled.
func (s *SSD) ftlHooks() *ftl.Hooks {
	return &ftl.Hooks{
		Read:  func(info ftl.ReadInfo) { s.tel.CountRead(info.Senses, info.IDA) },
		Write: func(ftl.PageProgram) { s.tel.CountWrite() },
		GC:    func(job *ftl.GCJob) { s.tel.CountGC(len(job.Moves)) },
		Refresh: func(job *ftl.RefreshJob) {
			s.tel.CountRefresh(len(job.Moves), job.AdjustedWLs, job.IDAApplied)
		},
	}
}

// armSampler starts the fixed-interval time series for the timed phase
// beginning now. It discards activity accumulated during the untimed
// prefill/warmup replay and rebases the cumulative busy-time trackers so
// the first interval reports only its own deltas. No-op when the time
// series is disabled.
func (s *SSD) armSampler() {
	iv := s.tel.Interval()
	if iv <= 0 {
		return
	}
	s.tel.TakeActivity()
	var dieBusy, chanBusy time.Duration
	for _, d := range s.dies {
		dieBusy += d.Stats().BusyTime
	}
	s.lastPerChanBusy = make([]time.Duration, len(s.channels))
	for i, c := range s.channels {
		b := c.Stats().BusyTime
		s.lastPerChanBusy[i] = b
		chanBusy += b
	}
	s.lastDieBusy, s.lastChanBusy = dieBusy, chanBusy
	s.lastGCBusy, s.lastRefreshBusy = s.gcBusy, s.refreshBusy
	s.dieWatch.take()
	s.chanWatch.take()
	s.engine.Pulse(iv, s.recordSample)
}

// recordSample snapshots the device at one sampling instant: gauges read
// the current state, busy durations are deltas since the previous sample.
func (s *SSD) recordSample(now sim.Time) {
	u := s.f.Usage()
	sm := telemetry.Sample{
		At:            now,
		HostInFlight:  s.adm.inFlight,
		HostQueued:    len(s.adm.queue),
		FreeBlocks:    u.Free,
		ActiveBlocks:  u.Active,
		InUseBlocks:   u.InUse,
		EmptyBlocks:   u.Empty,
		IDABlocks:     u.IDABlocks,
		IDAValidPages: u.IDAValidPages,
		MappedPages:   s.f.MappedPages(),
		RetiredBlocks: u.Retired,
		Activity:      s.tel.TakeActivity(),
	}
	var dieBusy time.Duration
	for _, d := range s.dies {
		if d.Busy() {
			sm.DiesBusy++
		}
		sm.DieQueued += d.QueueLen()
		dieBusy += d.Stats().BusyTime
	}
	sm.DieBusy = dieBusy - s.lastDieBusy
	s.lastDieBusy = dieBusy

	sm.PerChannelBusy = make([]time.Duration, len(s.channels))
	var chanBusy time.Duration
	for i, c := range s.channels {
		if c.Busy() {
			sm.ChannelsBusy++
		}
		sm.ChanQueued += c.QueueLen()
		b := c.Stats().BusyTime
		chanBusy += b
		sm.PerChannelBusy[i] = b - s.lastPerChanBusy[i]
		s.lastPerChanBusy[i] = b
	}
	sm.ChanBusy = chanBusy - s.lastChanBusy
	s.lastChanBusy = chanBusy

	sm.DieMaxQueue, sm.DieWait = s.dieWatch.take()
	sm.ChanMaxQueue, sm.ChanWait = s.chanWatch.take()

	sm.GCBusy = s.gcBusy - s.lastGCBusy
	s.lastGCBusy = s.gcBusy
	sm.RefreshBusy = s.refreshBusy - s.lastRefreshBusy
	s.lastRefreshBusy = s.refreshBusy

	s.tel.Record(sm)
}
