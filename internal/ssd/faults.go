package ssd

import (
	"sort"

	"idaflash/internal/ftl"
	"idaflash/internal/sim"
)

// Host-path fault recovery: when a fault scenario (internal/faults) is
// attached, every flash command issue first consults the device's injector.
// Commands aimed at a die or channel that is out of service — and read
// commands the injector hangs — are retried with exponential backoff up to
// the scenario's budget; a command that exhausts the budget fails its page,
// and the request completes as failed instead of hanging. Failed read
// extents are recorded so a parity-enabled array (internal/array) can
// reconstruct them from peer devices afterwards.

// FaultStats instruments the host-path fault recovery. All counters are
// page-granular except the two request-level tallies.
type FaultStats struct {
	// ReadRetries and WriteRetries count flash commands re-issued after
	// backoff because of an outage or transient fault.
	ReadRetries  uint64
	WriteRetries uint64
	// ReadTimeouts counts read commands that hung and burned the per-op
	// timeout; LatencySpikes counts reads served with an injected latency
	// spike.
	ReadTimeouts  uint64
	LatencySpikes uint64
	// FailedReadPages and FailedWritePages count page operations that
	// exhausted the retry budget; FailedReadRequests and
	// FailedWriteRequests count the host requests containing them.
	FailedReadPages     uint64
	FailedWritePages    uint64
	FailedReadRequests  uint64
	FailedWriteRequests uint64
}

// Add returns the field-wise sum of two snapshots (array merging).
func (f FaultStats) Add(o FaultStats) FaultStats {
	f.ReadRetries += o.ReadRetries
	f.WriteRetries += o.WriteRetries
	f.ReadTimeouts += o.ReadTimeouts
	f.LatencySpikes += o.LatencySpikes
	f.FailedReadPages += o.FailedReadPages
	f.FailedWritePages += o.FailedWritePages
	f.FailedReadRequests += o.FailedReadRequests
	f.FailedWriteRequests += o.FailedWriteRequests
	return f
}

// FailedExtent is a device-local byte extent whose read exhausted the host
// retry budget during the run. Parity-enabled arrays reconstruct these from
// peer devices; without parity they are simply lost reads.
type FailedExtent struct {
	Offset int64
	Size   int
}

// FailedReadExtents returns the device-local extents of all failed page
// reads, sorted and with adjacent or overlapping pages coalesced. The list
// accumulates per measured phase (resetMetrics clears it).
func (s *SSD) FailedReadExtents() []FailedExtent {
	if len(s.failedReads) == 0 {
		return nil
	}
	ext := append([]FailedExtent(nil), s.failedReads...)
	sort.Slice(ext, func(i, j int) bool { return ext[i].Offset < ext[j].Offset })
	out := ext[:1]
	for _, e := range ext[1:] {
		last := &out[len(out)-1]
		if e.Offset <= last.Offset+int64(last.Size) {
			if end := e.Offset + int64(e.Size); end > last.Offset+int64(last.Size) {
				last.Size = int(end - last.Offset)
			}
			continue
		}
		out = append(out, e)
	}
	return out
}

// issueRead is the fault-aware front of the read issue path: it checks the
// target die and channel for outages and draws the command's transient fate
// before handing off to the ECC read-round chain. Only called with an
// injector attached.
func (s *SSD) issueRead(lpn ftl.LPN, info ftl.ReadInfo, req *request, attempt int) {
	now := s.engine.Now()
	die := s.cfg.Geometry.DieOf(info.Addr.Plane)
	ch := s.cfg.Geometry.ChannelOf(info.Addr.Plane)
	pol := s.inj.Retry()
	retry := func() {
		if attempt >= pol.Max {
			s.failReadPage(lpn, req)
			return
		}
		s.faultStats.ReadRetries++
		s.tel.CountFaultRetry()
		s.engine.After(pol.BackoffAt(attempt), func() {
			s.issueRead(lpn, info, req, attempt+1)
		})
	}
	if s.inj.DieDown(die, now) || s.inj.ChannelDown(ch, now) {
		retry()
		return
	}
	extra, timeout := s.inj.ReadFault()
	if timeout {
		// The command hangs mid-sense: the die is occupied until the
		// host's per-op timeout declares it dead, then the host backs
		// off and re-issues.
		s.faultStats.ReadTimeouts++
		s.dies[die].Acquire(sim.PrioHostRead, pol.OpTimeout.D(), retry)
		return
	}
	if extra > 0 {
		s.faultStats.LatencySpikes++
	}
	retries := s.eccParams(info).SampleRetries(s.rng)
	s.startRead(info, req, retries, extra)
}

// failReadPage gives up on a page read: the page completes as failed (the
// request never hangs) and its extent is recorded for reconstruction.
func (s *SSD) failReadPage(lpn ftl.LPN, req *request) {
	s.faultStats.FailedReadPages++
	s.failedReads = append(s.failedReads, FailedExtent{
		Offset: int64(lpn) * int64(s.pageSize),
		Size:   s.pageSize,
	})
	req.failed = true
	s.pageDone(req)
}

// checkWriteOutage consults the injector before a program issue. It returns
// true when the caller should stop: either a retry was scheduled or the
// page was failed.
func (s *SSD) checkWriteOutage(prog ftl.PageProgram, req *request, attempt int) bool {
	if s.inj == nil {
		return false
	}
	now := s.engine.Now()
	die := s.cfg.Geometry.DieOf(prog.Addr.Plane)
	ch := s.cfg.Geometry.ChannelOf(prog.Addr.Plane)
	if !s.inj.DieDown(die, now) && !s.inj.ChannelDown(ch, now) {
		return false
	}
	pol := s.inj.Retry()
	if attempt >= pol.Max {
		// The data cannot reach its die; the write completes as failed
		// rather than stalling the request forever. (Remapping around
		// outages is a controller design beyond this model: the FTL
		// remaps program failures, not interface outages.)
		s.faultStats.FailedWritePages++
		req.failed = true
		s.pageDone(req)
		return true
	}
	s.faultStats.WriteRetries++
	s.tel.CountFaultRetry()
	s.engine.After(pol.BackoffAt(attempt), func() {
		s.issueProgram(prog, req, attempt+1)
	})
	return true
}
