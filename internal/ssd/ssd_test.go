package ssd

import (
	"testing"
	"time"

	"idaflash/internal/ecc"
	"idaflash/internal/flash"
	"idaflash/internal/ftl"
	"idaflash/internal/workload"
)

// testGeom is a small but multi-die device: 2 channels x 1 chip x 2 dies x
// 1 plane = 4 planes, 24 blocks/plane, 4 WLs (12 pages) per block.
func testGeom() flash.Geometry {
	return flash.Geometry{
		Channels: 2, ChipsPerChannel: 1, DiesPerChip: 2, PlanesPerDie: 1,
		BlocksPerPlane: 24, WordlinesPerBlock: 4, PageSizeBytes: 8192, BitsPerCell: 3,
	}
}

func testConfig(ida bool, errorRate float64) Config {
	return Config{
		Geometry: testGeom(),
		Timing:   flash.PaperTLCTiming(),
		FTL: ftl.Options{
			IDAEnabled:     ida,
			ErrorRate:      errorRate,
			RefreshPeriod:  20 * time.Minute,
			RefreshStagger: true,
			Seed:           7,
		},
		RefreshScanInterval: time.Minute,
		Seed:                7,
	}
}

func testTrace(t *testing.T, name string, requests int, readRatio float64) *workload.Trace {
	t.Helper()
	p := workload.Profile{
		Name:          name,
		ReadRatio:     readRatio,
		MeanReadKB:    24,
		ReadDataRatio: 0.9,
		FootprintMB:   4, // 512 pages, ~45% of the 96-block test device
		Requests:      requests,
		Duration:      time.Hour,
		Seed:          3,
	}
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{},
		{Geometry: testGeom()},
		{Geometry: testGeom(), Timing: flash.PaperTLCTiming(), RefreshScanInterval: -time.Second},
		{Geometry: testGeom(), Timing: flash.PaperTLCTiming(), ECC: ecc.Params{DecodeLatency: time.Microsecond, FirstFailProb: 2}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New() should fail", i)
		}
	}
}

func TestSingleReadLatencyNoContention(t *testing.T) {
	s, err := New(testConfig(false, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Map one page directly, then submit a single 8 KB read for it.
	prog, err := s.FTL().Write(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = prog
	info, _ := s.FTL().Read(0)
	want := s.cfg.Timing.ReadLatency(info.Senses) + s.cfg.Timing.Transfer + s.cfg.ECC.DecodeLatency
	s.engine.At(0, func() {
		s.submit(workload.Request{At: 0, Offset: 0, Size: 8192, Read: true})
	})
	s.engine.Run()
	// The FTL counted the probe read too, but response stats only cover
	// the submitted request.
	if s.readReqs != 1 {
		t.Fatalf("read requests = %d", s.readReqs)
	}
	if got := s.readResp.Mean(); got != want {
		t.Errorf("single read response = %v, want %v", got, want)
	}
}

func TestSingleWriteLatencyNoContention(t *testing.T) {
	s, err := New(testConfig(false, 0))
	if err != nil {
		t.Fatal(err)
	}
	want := s.cfg.Timing.Transfer + s.cfg.Timing.Program
	s.engine.At(0, func() {
		s.submit(workload.Request{At: 0, Offset: 0, Size: 8192, Read: false})
	})
	s.engine.Run()
	if got := s.writeResp.Mean(); got != want {
		t.Errorf("single write response = %v, want %v", got, want)
	}
}

func TestMultiPageRequestCompletesOnce(t *testing.T) {
	s, err := New(testConfig(false, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := ftl.LPN(0); i < 4; i++ {
		if _, err := s.FTL().Write(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	s.engine.At(0, func() {
		s.submit(workload.Request{At: 0, Offset: 0, Size: 4 * 8192, Read: true})
	})
	s.engine.Run()
	if s.readReqs != 1 {
		t.Fatalf("read requests = %d, want 1 (single completion)", s.readReqs)
	}
	// Four pages across dies: response at least one page's full path.
	minWant := s.cfg.Timing.ReadLatency(1) + s.cfg.Timing.Transfer + s.cfg.ECC.DecodeLatency
	if got := s.readResp.Mean(); got < minWant {
		t.Errorf("multi-page response %v below single-page %v", got, minWant)
	}
}

func TestUnmappedReads(t *testing.T) {
	s, err := New(testConfig(false, 0))
	if err != nil {
		t.Fatal(err)
	}
	s.engine.At(0, func() {
		s.submit(workload.Request{At: 0, Offset: 0, Size: 8192, Read: true})
	})
	s.engine.Run()
	if s.unmapped != 1 {
		t.Errorf("unmapped reads = %d, want 1", s.unmapped)
	}
}

func TestRunBaselineEndToEnd(t *testing.T) {
	s, err := New(testConfig(false, 0))
	if err != nil {
		t.Fatal(err)
	}
	tr := testTrace(t, "e2e", 3000, 0.9)
	res, err := s.Run(tr, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadRequests == 0 || res.WriteRequests == 0 {
		t.Fatalf("requests not counted: %+v", res)
	}
	if res.MeanReadResponse <= 0 {
		t.Error("mean read response not positive")
	}
	// Response can never be below the raw device path.
	floor := s.cfg.Timing.ReadLatency(1) + s.cfg.Timing.Transfer + s.cfg.ECC.DecodeLatency
	if res.MeanReadResponse < floor {
		t.Errorf("mean read response %v below device floor %v", res.MeanReadResponse, floor)
	}
	if res.FTL.Refreshes == 0 {
		t.Error("no refreshes happened during the run")
	}
	if res.UnmappedReads != 0 {
		t.Errorf("unmapped reads = %d after prefill", res.UnmappedReads)
	}
	if res.ThroughputMBps <= 0 || res.Makespan <= 0 {
		t.Errorf("throughput/makespan = %v / %v", res.ThroughputMBps, res.Makespan)
	}
	// Figure 4 classification counters populated on the measured phase.
	var classed uint64
	for _, c := range res.FTL.ReadsByClass {
		classed += c
	}
	if classed == 0 {
		t.Error("no classified reads")
	}
}

func TestRunIDABeatsBaseline(t *testing.T) {
	tr := testTrace(t, "ida-vs-base", 6000, 0.9)
	base, err := New(testConfig(false, 0))
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := base.Run(tr, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	idaDev, err := New(testConfig(true, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	idaRes, err := idaDev.Run(tr, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if idaRes.FTL.IDARefreshes == 0 {
		t.Fatal("IDA refresh never ran")
	}
	if idaRes.FTL.ReadsFromIDA == 0 {
		t.Fatal("no reads ever hit an IDA wordline")
	}
	if idaRes.MeanReadResponse >= baseRes.MeanReadResponse {
		t.Errorf("IDA mean read response %v not better than baseline %v",
			idaRes.MeanReadResponse, baseRes.MeanReadResponse)
	}
}

func TestRunDeterminism(t *testing.T) {
	tr := testTrace(t, "det", 2000, 0.85)
	run := func() Results {
		s, err := New(testConfig(true, 0.2))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(tr, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MeanReadResponse != b.MeanReadResponse || a.Events != b.Events ||
		a.FTL != b.FTL || a.Makespan != b.Makespan {
		t.Errorf("identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestRunGuards(t *testing.T) {
	s, _ := New(testConfig(false, 0))
	tr := testTrace(t, "guard", 500, 0.9)
	if _, err := s.Run(tr, RunOptions{WarmupFraction: 1.5}); err == nil {
		t.Error("bad warmup fraction accepted")
	}
	if _, err := s.Run(tr, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(tr, RunOptions{}); err == nil {
		t.Error("second Run on the same device accepted")
	}
	// Footprint beyond capacity is rejected.
	tiny, _ := New(testConfig(false, 0))
	huge := &workload.Trace{Name: "huge", Requests: []workload.Request{
		{At: 0, Offset: tiny.cfg.Geometry.CapacityBytes() * 2, Size: 8192, Read: true},
	}}
	if _, err := tiny.Run(huge, RunOptions{WarmupFraction: 0.001}); err == nil {
		t.Error("oversized trace accepted")
	}
}

func TestScaledGeometry(t *testing.T) {
	base := flash.PaperTLC()
	g := ScaledGeometry(base, 1<<30, 1.6) // 1 GB footprint
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Channels != base.Channels || g.DiesPerChip != base.DiesPerChip {
		t.Error("scaling must preserve parallelism")
	}
	if g.CapacityBytes() < int64(1.5*float64(1<<30)) {
		t.Errorf("scaled capacity %.2f GB too small", float64(g.CapacityBytes())/(1<<30))
	}
	if g.BlocksPerPlane >= base.BlocksPerPlane {
		t.Error("scaling did not shrink the device")
	}
	// Tiny footprints get the floor; giant ones are capped at baseline.
	small := ScaledGeometry(base, 1, 1.6)
	if small.BlocksPerPlane != 8 {
		t.Errorf("floor = %d blocks/plane", small.BlocksPerPlane)
	}
	big := ScaledGeometry(base, base.CapacityBytes()*4, 1.6)
	if big.BlocksPerPlane != base.BlocksPerPlane {
		t.Error("cap at baseline not applied")
	}
	// Invalid headroom raised to a sane default.
	if g2 := ScaledGeometry(base, 1<<30, 0.5); g2.CapacityBytes() < g.CapacityBytes() {
		t.Error("headroom floor not applied")
	}
}

func TestLateLifetimeRetriesSlowReads(t *testing.T) {
	tr := testTrace(t, "retry", 2500, 0.95)
	early, _ := New(testConfig(false, 0))
	earlyRes, err := early.Run(tr, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lateCfg := testConfig(false, 0)
	lateCfg.ECC = ecc.PaperParams(ecc.PhaseLate)
	late, _ := New(lateCfg)
	lateRes, err := late.Run(tr, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lateRes.MeanReadResponse <= earlyRes.MeanReadResponse {
		t.Errorf("late-lifetime reads %v not slower than early %v",
			lateRes.MeanReadResponse, earlyRes.MeanReadResponse)
	}
}

func TestRunMore(t *testing.T) {
	s, err := New(testConfig(true, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	// RunMore before Run is rejected.
	extra := testTrace(t, "extra", 800, 0.3)
	if _, err := s.RunMore(extra); err == nil {
		t.Error("RunMore before Run accepted")
	}
	first, err := s.Run(testTrace(t, "first", 2000, 0.9), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.RunMore(extra)
	if err != nil {
		t.Fatal(err)
	}
	if second.ReadRequests+second.WriteRequests == 0 {
		t.Fatal("second phase served nothing")
	}
	// Phase metrics are independent: phase-2 totals reflect only the
	// extra trace's request count.
	if got := second.ReadRequests + second.WriteRequests; got != uint64(len(extra.Requests)) {
		t.Errorf("phase-2 requests = %d, want %d", got, len(extra.Requests))
	}
	if first.Makespan <= 0 || second.Makespan <= 0 {
		t.Error("phase makespans not positive")
	}
	// Empty or invalid traces are rejected.
	if _, err := s.RunMore(&workload.Trace{Name: "empty"}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestWriteAmplificationReported(t *testing.T) {
	s, err := New(testConfig(true, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(testTrace(t, "waf", 3000, 0.8), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteAmplification < 1.0 {
		t.Errorf("write amplification = %v, must be >= 1", res.WriteAmplification)
	}
	if res.WriteAmplification > 50 {
		t.Errorf("write amplification = %v, implausibly large", res.WriteAmplification)
	}
}

func TestMaxQueueDepthSerializes(t *testing.T) {
	cfg := testConfig(false, 0)
	cfg.MaxQueueDepth = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := ftl.LPN(0); i < 3; i++ {
		if _, err := s.FTL().Write(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Three single-page reads arrive simultaneously; with QD=1 they are
	// serviced one after another, so the third's response is about three
	// single-read latencies.
	single := s.cfg.Timing.ReadLatency(1) + s.cfg.Timing.Transfer + s.cfg.ECC.DecodeLatency
	s.engine.At(0, func() {
		for i := int64(0); i < 3; i++ {
			s.submit(workload.Request{At: 0, Offset: i * 8192, Size: 8192, Read: true})
		}
	})
	s.engine.Run()
	if s.readReqs != 3 {
		t.Fatalf("served %d requests", s.readReqs)
	}
	// Mean of (1x, 2x, 3x) = 2x single latency; allow sensing variation
	// (pages may be CSB/MSB) by requiring at least 1.5x the fastest.
	if got := s.readResp.Mean(); got < single*3/2 {
		t.Errorf("QD=1 mean response %v, want >= %v (serialized)", got, single*3/2)
	}
	if len(s.adm.queue) != 0 {
		t.Error("host queue not drained")
	}
	// Negative depth is rejected.
	bad := testConfig(false, 0)
	bad.MaxQueueDepth = -1
	if _, err := New(bad); err == nil {
		t.Error("negative queue depth accepted")
	}
}

func TestMaxQueueDepthEndToEnd(t *testing.T) {
	// A full run with a QD cap completes every request and never leaves
	// the host queue populated.
	cfg := testConfig(true, 0.2)
	cfg.MaxQueueDepth = 8
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := testTrace(t, "qd", 2500, 0.9)
	res, err := s.Run(tr, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ReadRequests + res.WriteRequests; got == 0 {
		t.Fatal("no requests served")
	}
	if len(s.adm.queue) != 0 {
		t.Errorf("host queue left with %d entries", len(s.adm.queue))
	}
}
