package ssd

import (
	"testing"

	"idaflash/internal/ftl"
	"idaflash/internal/sim"
	"idaflash/internal/workload"
)

// The admission stage is pure bookkeeping, so its FIFO ordering and slot
// accounting are testable without an engine.
func TestAdmissionStageFIFOUnderPressure(t *testing.T) {
	a := admission{maxDepth: 2}
	if !a.hasSlot() {
		t.Fatal("fresh stage must have a slot")
	}
	a.admit(0, 0)
	a.admit(0, 0)
	if a.hasSlot() {
		t.Fatal("depth-2 stage full after two admissions")
	}
	for i := 0; i < 3; i++ {
		a.park(workload.Request{Offset: int64(i)}, sim.Time(i), nil)
	}
	if a.stats.HostQueued != 3 || a.stats.MaxHostQueue != 3 {
		t.Fatalf("park stats = %+v", a.stats)
	}
	// Completions release slots; parked requests come back in FIFO order.
	for want := int64(0); want < 3; want++ {
		next, ok := a.release()
		if !ok {
			t.Fatalf("release %d: no parked request returned", want)
		}
		if next.r.Offset != want {
			t.Fatalf("release %d: got offset %d, want %d (FIFO violated)", want, next.r.Offset, want)
		}
		a.admit(next.arrived, 10)
	}
	if next, ok := a.release(); ok {
		t.Fatalf("empty queue released %+v", next)
	}
	if a.stats.Admitted != 5 {
		t.Errorf("admitted = %d, want 5", a.stats.Admitted)
	}
	// The three parked requests arrived at t=0,1,2 and entered at t=10.
	if a.stats.HostQueueWait != sim.Time(10-0)+sim.Time(10-1)+sim.Time(10-2) {
		t.Errorf("queue wait = %v", a.stats.HostQueueWait)
	}
}

func TestAdmissionUnlimitedDepthNeverParks(t *testing.T) {
	a := admission{} // maxDepth 0 = unlimited
	for i := 0; i < 100; i++ {
		if !a.hasSlot() {
			t.Fatal("unlimited stage ran out of slots")
		}
		a.admit(0, 0)
	}
	if len(a.queue) != 0 || a.stats.HostQueued != 0 {
		t.Errorf("unlimited stage parked requests: %+v", a.stats)
	}
}

// With QD=1, the second of two simultaneous reads waits host-side; its
// response must count from its arrival, so it is exactly the first's
// service plus its own.
func TestHostQueueArrivalTimeAccounting(t *testing.T) {
	cfg := testConfig(false, 0)
	cfg.MaxQueueDepth = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := ftl.LPN(0); i < 2; i++ {
		if _, err := s.FTL().Write(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Per-page service time depends on the page's sensing count.
	latency := func(lpn ftl.LPN) sim.Time {
		info, ok := s.FTL().Read(lpn)
		if !ok {
			t.Fatalf("lpn %d unmapped", lpn)
		}
		return s.cfg.Timing.ReadLatency(info.Senses) + s.cfg.Timing.Transfer + s.cfg.ECC.DecodeLatency
	}
	l0, l1 := latency(0), latency(1)
	s.engine.At(0, func() {
		s.submit(workload.Request{At: 0, Offset: 0, Size: 8192, Read: true})
		s.submit(workload.Request{At: 0, Offset: 8192, Size: 8192, Read: true})
	})
	s.engine.Run()
	if s.readReqs != 2 {
		t.Fatalf("served %d requests", s.readReqs)
	}
	want := (l0 + (l0 + l1)) / 2
	if got := s.readResp.Mean(); got != want {
		t.Errorf("mean response %v, want %v (second must count host-queue wait)", got, want)
	}
	st := s.adm.stats
	if st.Admitted != 2 || st.HostQueued != 1 || st.MaxHostQueue != 1 {
		t.Errorf("admission stats = %+v", st)
	}
	if st.HostQueueWait != l0 {
		t.Errorf("host queue wait = %v, want %v", st.HostQueueWait, l0)
	}
}

// Completions must release exactly one slot each: with QD=2 and four
// requests, the stage peaks at two in flight and drains completely.
func TestHostQueueSlotReleaseOnCompletion(t *testing.T) {
	cfg := testConfig(false, 0)
	cfg.MaxQueueDepth = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := ftl.LPN(0); i < 4; i++ {
		if _, err := s.FTL().Write(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	s.engine.At(0, func() {
		for i := int64(0); i < 4; i++ {
			s.submit(workload.Request{At: 0, Offset: i * 8192, Size: 8192, Read: true})
		}
		if s.adm.inFlight != 2 || len(s.adm.queue) != 2 {
			t.Errorf("at submit: inFlight=%d queued=%d, want 2/2", s.adm.inFlight, len(s.adm.queue))
		}
	})
	s.engine.Run()
	if s.readReqs != 4 {
		t.Fatalf("served %d requests, want 4", s.readReqs)
	}
	if s.adm.inFlight != 0 || len(s.adm.queue) != 0 {
		t.Errorf("stage not drained: inFlight=%d queued=%d", s.adm.inFlight, len(s.adm.queue))
	}
	if s.adm.stats.HostQueued != 2 {
		t.Errorf("host-queued = %d, want 2", s.adm.stats.HostQueued)
	}
}

// Stage stats surface in Results and reset between phases.
func TestStageStatsInResults(t *testing.T) {
	cfg := testConfig(false, 0)
	cfg.MaxQueueDepth = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(testTrace(t, "stages", 2000, 0.9), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages.Admission.Admitted != res.ReadRequests+res.WriteRequests {
		t.Errorf("admitted %d != served %d", res.Stages.Admission.Admitted, res.ReadRequests+res.WriteRequests)
	}
	if res.Stages.Dispatch.ReadPages == 0 || res.Stages.Dispatch.WritePages == 0 {
		t.Errorf("dispatch stage counted nothing: %+v", res.Stages.Dispatch)
	}
	if res.Stages.Flash.ReadCommands < res.Stages.Dispatch.ReadPages-res.Stages.Dispatch.UnmappedPages {
		t.Errorf("flash stage issued %d read commands for %d mapped pages",
			res.Stages.Flash.ReadCommands, res.Stages.Dispatch.ReadPages)
	}
	if res.Stages.Flash.ProgramCommands != res.Stages.Dispatch.WritePages {
		t.Errorf("programs %d != dispatched write pages %d",
			res.Stages.Flash.ProgramCommands, res.Stages.Dispatch.WritePages)
	}
}
