package ssd

import (
	"idaflash/internal/flash"
)

// ScaledGeometry shrinks a baseline geometry's per-plane block count so a
// device sized for the given workload footprint simulates quickly while
// keeping the paper's parallelism (channels, chips, dies, planes) and block
// shape intact. headroom multiplies the footprint to leave room for
// over-provisioning, the IDA coding's in-use block growth (Section III-C
// reports up to +30% of the workload footprint), and GC watermarks;
// values below 1.3 are raised to 1.6.
func ScaledGeometry(base flash.Geometry, footprintBytes int64, headroom float64) flash.Geometry {
	if headroom < 1.3 {
		headroom = 1.6
	}
	g := base
	blockBytes := int64(g.PagesPerBlock()) * int64(g.PageSizeBytes)
	needBlocks := (footprintBytes*int64(headroom*1000)/1000 + blockBytes - 1) / blockBytes
	perPlane := int(needBlocks)/g.Planes() + 1
	// Keep at least the GC watermark plus a handful of working blocks.
	if perPlane < 8 {
		perPlane = 8
	}
	if perPlane > base.BlocksPerPlane {
		perPlane = base.BlocksPerPlane
	}
	g.BlocksPerPlane = perPlane
	return g
}
