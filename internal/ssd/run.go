package ssd

import (
	"context"
	"fmt"
	"time"

	"idaflash/internal/ftl"
	"idaflash/internal/sim"
	"idaflash/internal/snapshot"
	"idaflash/internal/stats"
	"idaflash/internal/telemetry"
	"idaflash/internal/workload"
)

// RunOptions controls trace execution.
type RunOptions struct {
	// WarmupFraction is the fraction of the trace replayed in zero
	// simulated time before measurement starts, so the device reaches a
	// realistic valid/invalid mix. Defaults to 0.3.
	WarmupFraction float64
	// SkipPrefill leaves the device empty instead of pre-writing the
	// trace's whole footprint (reads of unwritten pages then count as
	// unmapped).
	SkipPrefill bool
	// Preamble, when non-nil, is an aging write stream (see
	// workload.Profile.AgingPreamble) replayed in zero simulated time
	// after the prefill and before the warmup.
	Preamble *workload.Trace
	// Snapshots, when non-nil together with a SnapshotKey, short-circuits
	// the zero-time aging phases: a cached device state for the key is
	// restored in O(state) instead of replaying prefill + preamble +
	// warmup, and a miss runs the phases once and publishes the boundary
	// state for every later run sharing the key. Restored runs are
	// byte-identical to replayed ones; any snapshot problem (corrupt,
	// version-skewed, mis-keyed) silently falls back to the replay.
	Snapshots *snapshot.Store
	// SnapshotKey identifies the aged state; the caller must fold in
	// everything the pre-measurement state depends on (profile, geometry,
	// seeds, fault scenario, warmup knobs — see the facade's key builder).
	SnapshotKey string
}

// Results is everything a single simulation run reports.
type Results struct {
	Trace string

	// Host-visible performance.
	ReadRequests      uint64
	WriteRequests     uint64
	MeanReadResponse  time.Duration
	P99ReadResponse   time.Duration
	MeanWriteResponse time.Duration
	Makespan          time.Duration
	// BusySpan is the simulated time during which at least one host
	// request was in flight. The storage throughput below divides by it,
	// so the metric reflects how fast the device serves offered load
	// rather than how sparse the trace's arrivals are.
	BusySpan       time.Duration
	ThroughputMBps float64 // host bytes per second of busy time
	ReadMBps       float64
	UnmappedReads  uint64

	// Coding names the cell coding scheme the device ran (the registry
	// name: "ida", "randio", "ilwc").
	Coding string

	// Device internals.
	FTL       ftl.Stats
	Usage     ftl.BlockUsage
	PeakInUse int
	PeakIDA   int

	// Wear is the end-of-run erase-count distribution across all blocks,
	// the per-scheme P/E endurance readout of the coding-lab comparison.
	Wear ftl.Wear
	// PowerProxy is the cumulative program power/wear proxy of the run:
	// the coding scheme's expected per-cell voltage levels charged over
	// every page program plus IDA voltage adjustments (FTL.ProgramPower).
	PowerProxy float64
	// MeanProgramPower is PowerProxy divided by the number of program
	// operations, i.e. the per-program charge the coding scheme costs;
	// lower is cheaper (ilwc undercuts ida here at identical latency).
	MeanProgramPower float64

	// Background load.
	GCBusy      time.Duration
	RefreshBusy time.Duration

	// Stages instruments the request-path stages (admission, FTL
	// dispatch, flash command issue).
	Stages StageStats

	// Faults instruments the host-path fault recovery (zero outside fault
	// scenarios); the FTL-level remap/retirement counters live in FTL.
	Faults FaultStats

	// WriteAmplification is (host page programs + GC moves + refresh
	// moves and write-backs) / host page programs for the measured
	// phase; 1.0 means no background rewriting.
	WriteAmplification float64

	// Resource pressure (cumulative over the device's lifetime, since
	// resources are not reset between phases).
	MeanDieUtilization     float64
	MeanChannelUtilization float64

	Events uint64

	// ReadHist and WriteHist are independent copies of the response-time
	// histograms behind the means and quantiles above; array drivers
	// merge them for true array-level percentiles. Excluded from JSON so
	// serialized results keep their pre-telemetry shape.
	ReadHist  *stats.LatencyHist `json:"-"`
	WriteHist *stats.LatencyHist `json:"-"`
	// Telemetry is the device's span and time-series export, nil when
	// telemetry is disabled. Excluded from JSON for the same reason;
	// drivers serialize it through WriteTraceFile/WriteCSVFile.
	Telemetry *telemetry.Export `json:"-"`
}

// Scalars returns a copy with the pointer-typed exports (histograms,
// telemetry) cleared, leaving only value fields. Determinism checks compare
// these copies with ==; the pointed-to exports are compared through their
// own serialized forms (the CSV/trace byte-equality gate in CI).
func (r Results) Scalars() Results {
	r.ReadHist, r.WriteHist, r.Telemetry = nil, nil, nil
	return r
}

// Run executes the trace on the device and returns the measurements. It
// may be called once per SSD instance.
func (s *SSD) Run(tr *workload.Trace, opts RunOptions) (Results, error) {
	return s.RunContext(context.Background(), tr, opts)
}

// RunContext is Run with cooperative cancellation: when ctx is cancelled the
// simulation stops within the engine's polling bounds and RunContext returns
// ctx's error together with the stats accumulated so far (partial progress,
// not a valid measurement). It is also the panic-containment boundary: an
// invariant violation anywhere in the sim/FTL hot path surfaces as a
// *sim.InvariantError return instead of killing the process — see contain.
func (s *SSD) RunContext(ctx context.Context, tr *workload.Trace, opts RunOptions) (res Results, err error) {
	if err := tr.Validate(); err != nil {
		return Results{}, err
	}
	if s.engine.Processed() != 0 || s.readReqs != 0 || s.f.Stats().HostWrites != 0 {
		return Results{}, fmt.Errorf("ssd: Run called on a used device")
	}
	if opts.WarmupFraction == 0 {
		opts.WarmupFraction = 0.3
	}
	if opts.WarmupFraction < 0 || opts.WarmupFraction >= 1 {
		return Results{}, fmt.Errorf("ssd: WarmupFraction %v out of [0,1)", opts.WarmupFraction)
	}
	s.engine.SetContext(ctx)
	defer s.contain(tr.Name, &res, &err)

	// Snapshot lookup: a cached aged state for the key replaces the
	// zero-time phases below entirely. On a miss, Get hands back a claim
	// this run publishes at the boundary; the deferred guard abandons the
	// claim on any early exit (error, cancel, contained panic) so waiters
	// wake up and compute for themselves.
	warmup := int(float64(len(tr.Requests)) * opts.WarmupFraction)
	var publish func(*snapshot.DeviceState)
	restored := false
	if opts.Snapshots != nil && opts.SnapshotKey != "" {
		st, claim, gerr := opts.Snapshots.Get(ctx, opts.SnapshotKey)
		if gerr != nil {
			return Results{}, gerr
		}
		switch {
		case st != nil:
			if rerr := s.restoreAged(st); rerr == nil {
				restored = true
			} else {
				// Fail soft: forget the bad state and replay.
				opts.Snapshots.Drop(opts.SnapshotKey)
				if opts.Snapshots.Logf != nil {
					opts.Snapshots.Logf("snapshot: restore rejected, replaying: %v", rerr)
				}
			}
		case claim != nil:
			publish = claim
			defer func() {
				if publish != nil {
					publish(nil)
				}
			}()
		}
	}

	if !restored {
		// Phase 0: prefill the footprint so every read hits mapped data.
		if !opts.SkipPrefill {
			if err := s.prefill(ctx, tr); err != nil {
				return Results{}, err
			}
		}

		// Phase 1: instant aging preamble and warmup replay. The untimed
		// phases poll ctx per request themselves — the engine is not
		// running yet, so its polling cannot cover them.
		replay := func(reqs []workload.Request, label string) error {
			for _, r := range reqs {
				if err := ctx.Err(); err != nil {
					return err
				}
				if r.Read {
					continue // reads have no state effect
				}
				first, count := s.lpnRange(r.Offset, r.Size)
				for i := ftl.LPN(0); i < count; i++ {
					if _, err := s.f.Write(first+i, 0); err != nil {
						return fmt.Errorf("ssd: %s: %w", label, err)
					}
				}
				if _, err := s.f.CollectGC(0); err != nil {
					return fmt.Errorf("ssd: %s: %w", label, err)
				}
			}
			return nil
		}
		if opts.Preamble != nil {
			if err := replay(opts.Preamble.Requests, "preamble"); err != nil {
				return Results{}, err
			}
		}
		if err := replay(tr.Requests[:warmup], "warmup"); err != nil {
			return Results{}, err
		}
		s.f.CloseActiveBlocks()
		if publish != nil {
			// The boundary: everything below (stagger, stats reset, the
			// timed phase) runs identically on restored devices, so this
			// state is what every sibling run needs.
			publish(s.captureAged())
			publish = nil
		}
	}
	s.f.StaggerBlockAges(0)
	s.f.ResetStats()

	// Phase 2: timed replay of the measured suffix.
	measured := tr.Requests[warmup:]
	if len(measured) == 0 {
		return Results{}, fmt.Errorf("ssd: nothing left to measure after warmup")
	}
	if err := s.replayTimed(measured); err != nil {
		return s.results(tr.Name), err
	}
	return s.results(tr.Name), nil
}

// contain is the deferred run-boundary recovery: an invariant panic from the
// simulation becomes the run's error, stamped with the engine position and
// stack, and the stats gathered so far are snapshotted best-effort (a nested
// recover guards the snapshot itself — the state that just violated an
// invariant may be too corrupt to summarize).
func (s *SSD) contain(trace string, res *Results, err *error) {
	v := recover()
	if v == nil {
		return
	}
	ie, ok := v.(*sim.InvariantError)
	if !ok {
		ie = sim.CapturePanic(v, s.engine)
	}
	*err = ie
	func() {
		defer func() { _ = recover() }()
		*res = s.results(trace)
	}()
}

// RunMore replays an additional trace on an already-run device, continuing
// from its current simulated time and device state (blocks, coding modes,
// ages). Metrics are reset first, so the returned Results cover only this
// phase. It backs the paper's Section III-C analysis: running a
// write-intensive workload on an SSD previously used with the IDA coding.
func (s *SSD) RunMore(tr *workload.Trace) (Results, error) {
	return s.RunMoreContext(context.Background(), tr)
}

// RunMoreContext is RunMore with the same cancellation and containment
// semantics as RunContext.
func (s *SSD) RunMoreContext(ctx context.Context, tr *workload.Trace) (res Results, err error) {
	if err := tr.Validate(); err != nil {
		return Results{}, err
	}
	if len(tr.Requests) == 0 {
		return Results{}, fmt.Errorf("ssd: empty trace")
	}
	if s.lastHostDone == 0 {
		return Results{}, fmt.Errorf("ssd: RunMore needs a prior Run")
	}
	s.engine.SetContext(ctx)
	defer s.contain(tr.Name, &res, &err)
	s.resetMetrics()
	s.f.ResetStats()
	if err := s.replayTimed(tr.Requests); err != nil {
		return s.results(tr.Name), err
	}
	return s.results(tr.Name), nil
}

// arrivalFeeder walks the measured trace as a single reusable engine
// Action: each firing submits one request and re-schedules itself for the
// next arrival, replaying the request slice through a cursor instead of
// allocating a closure per request. The slice is never mutated, so cached
// traces can back any number of runs.
type arrivalFeeder struct {
	s     *SSD
	reqs  []workload.Request
	next  int
	start sim.Time // engine time the replay began
	base  time.Duration
}

// Run submits the request under the cursor and re-arms for the next one.
func (a *arrivalFeeder) Run() {
	a.s.submit(a.reqs[a.next])
	a.next++
	if a.next < len(a.reqs) {
		a.s.engine.AtAction(a.start+sim.Time(a.reqs[a.next].At-a.base), a)
	}
}

// remaining returns the number of requests not yet submitted.
func (a *arrivalFeeder) remaining() int { return len(a.reqs) - a.next }

// replayTimed schedules the requests (rebased to the current simulated
// time), arms the refresh scan, and drains the engine. A non-nil error means
// the drain stopped early — cancellation, or a mid-simulation failure routed
// through fail — with events still queued.
func (s *SSD) replayTimed(reqs []workload.Request) error {
	start := s.engine.Now()
	feeder := &arrivalFeeder{s: s, reqs: reqs, start: start, base: reqs[0].At}
	s.engine.AtAction(start+sim.Time(reqs[0].At-feeder.base), feeder)
	s.scheduleRefreshScan(func() bool {
		return feeder.remaining() > 0 || s.adm.inFlight > 0 || len(s.adm.queue) > 0
	})
	s.armSampler()
	return s.engine.Run()
}

// resetMetrics zeroes the host-visible accumulators so a subsequent phase
// measures only itself. Device state and the simulated clock carry over.
func (s *SSD) resetMetrics() {
	s.readResp.Reset()
	s.writeResp.Reset()
	s.readBytes, s.writeBytes = 0, 0
	s.readReqs, s.writeReqs = 0, 0
	s.unmapped = 0
	s.busySpan = 0
	s.gcBusy, s.refreshBusy = 0, 0
	s.peakInUse, s.peakIDA = 0, 0
	s.adm.stats = AdmissionStats{}
	s.dispatchStats = DispatchStats{}
	s.flashStats = FlashStats{}
	s.faultStats = FaultStats{}
	s.failedReads = nil
	s.phaseStart = s.engine.Now()
}

// prefill writes every page of the trace's footprint once, in zero
// simulated time, polling ctx once per GC interval.
func (s *SSD) prefill(ctx context.Context, tr *workload.Trace) error {
	var maxEnd int64
	for _, r := range tr.Requests {
		if r.End() > maxEnd {
			maxEnd = r.End()
		}
	}
	pages := ftl.LPN((maxEnd + int64(s.pageSize) - 1) / int64(s.pageSize))
	capacity := ftl.LPN(s.cfg.Geometry.TotalPages())
	if pages > capacity {
		return fmt.Errorf("ssd: trace footprint %d pages exceeds device capacity %d", pages, capacity)
	}
	for lpn := ftl.LPN(0); lpn < pages; lpn++ {
		if _, err := s.f.Write(lpn, 0); err != nil {
			return fmt.Errorf("ssd: prefill: %w", err)
		}
		if lpn%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
			if _, err := s.f.CollectGC(0); err != nil {
				return fmt.Errorf("ssd: prefill: %w", err)
			}
		}
	}
	if _, err := s.f.CollectGC(0); err != nil {
		return fmt.Errorf("ssd: prefill: %w", err)
	}
	return nil
}

// results snapshots the run's measurements.
func (s *SSD) results(name string) Results {
	s.sampleUsage()
	r := Results{
		Trace:             name,
		ReadRequests:      s.readReqs,
		WriteRequests:     s.writeReqs,
		MeanReadResponse:  s.readResp.Mean(),
		P99ReadResponse:   s.readResp.Quantile(0.99),
		MeanWriteResponse: s.writeResp.Mean(),
		Makespan:          s.lastHostDone - s.phaseStart,
		UnmappedReads:     s.unmapped,
		FTL:               s.f.Stats(),
		Usage:             s.f.Usage(),
		PeakInUse:         s.peakInUse,
		PeakIDA:           s.peakIDA,
		GCBusy:            s.gcBusy,
		RefreshBusy:       s.refreshBusy,
		Stages: StageStats{
			Admission: s.adm.stats,
			Dispatch:  s.dispatchStats,
			Flash:     s.flashStats,
		},
		Faults:    s.faultStats,
		Events:    s.engine.Processed(),
		ReadHist:  s.readResp.Clone(),
		WriteHist: s.writeResp.Clone(),
		Telemetry: s.tel.Export(),
	}
	r.Coding = s.f.CellModel().Code().Name()
	r.Wear = s.f.WearStats()
	r.PowerProxy = r.FTL.ProgramPower
	if hw := r.FTL.HostWrites; hw > 0 {
		total := hw + r.FTL.GCMoves + r.FTL.RefreshMoves + r.FTL.IDACorruptedWrites
		r.WriteAmplification = float64(total) / float64(hw)
		if programs := total + r.FTL.ProgramFailures; programs > 0 {
			r.MeanProgramPower = r.PowerProxy / float64(programs)
		}
	}
	for _, d := range s.dies {
		r.MeanDieUtilization += d.Utilization()
	}
	r.MeanDieUtilization /= float64(len(s.dies))
	for _, c := range s.channels {
		r.MeanChannelUtilization += c.Utilization()
	}
	r.MeanChannelUtilization /= float64(len(s.channels))
	r.BusySpan = s.busySpan
	if s.busySpan > 0 {
		secs := s.busySpan.Seconds()
		r.ThroughputMBps = float64(s.readBytes+s.writeBytes) / (1 << 20) / secs
		r.ReadMBps = float64(s.readBytes) / (1 << 20) / secs
	}
	return r
}
