package ssd

import (
	"bytes"
	"testing"
	"time"

	"idaflash/internal/telemetry"
)

// telemetryConfig enables full-rate span recording and a 100ms time series
// on the small test device.
func telemetryConfig(ida bool) Config {
	cfg := testConfig(ida, 0.2)
	cfg.Telemetry = &telemetry.Config{MetricsInterval: 100 * time.Millisecond}
	return cfg
}

func TestTelemetryRecordsSpansAndSamples(t *testing.T) {
	tr := testTrace(t, "telemetry", 1200, 0.8)
	s, err := New(telemetryConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e := res.Telemetry
	if e == nil {
		t.Fatal("telemetry enabled but Results.Telemetry is nil")
	}
	measured := res.ReadRequests + res.WriteRequests
	if got := uint64(len(e.Spans)) + e.DroppedSpans; got != measured {
		t.Fatalf("spans+dropped = %d, want one per measured request (%d)", got, measured)
	}
	var phases int
	for i := range e.Spans {
		sp := &e.Spans[i]
		if sp.Completed < sp.Admitted || sp.Admitted < sp.Arrived {
			t.Fatalf("span %d: out-of-order instants %+v", i, sp)
		}
		phases += len(sp.Phases)
		for _, ph := range sp.Phases {
			if ph.Start < sp.Arrived || ph.End > sp.Completed {
				t.Fatalf("span %d: phase %+v escapes [%v, %v]",
					i, ph, sp.Arrived, sp.Completed)
			}
		}
	}
	if phases == 0 {
		t.Fatal("no phases recorded on any span")
	}

	if len(e.Samples) == 0 {
		t.Fatal("no time-series samples recorded")
	}
	iv := e.SampleInterval
	start := e.Samples[0].At
	var reads, writes uint64
	for i := range e.Samples {
		sm := &e.Samples[i]
		if want := start + time.Duration(i)*iv; sm.At != want {
			t.Fatalf("sample %d at %v, want exact boundary %v", i, sm.At, want)
		}
		if len(sm.PerChannelBusy) != s.cfg.Geometry.Channels {
			t.Fatalf("sample %d: %d per-channel columns, want %d",
				i, len(sm.PerChannelBusy), s.cfg.Geometry.Channels)
		}
		var per time.Duration
		for _, b := range sm.PerChannelBusy {
			per += b
		}
		if per != sm.ChanBusy {
			t.Fatalf("sample %d: per-channel busy sums to %v, ChanBusy %v", i, per, sm.ChanBusy)
		}
		if sm.ChanBusy > time.Duration(s.cfg.Geometry.Channels)*iv || sm.DieBusy > time.Duration(s.cfg.Geometry.Dies())*iv {
			t.Fatalf("sample %d: interval busy time exceeds capacity: %+v", i, sm)
		}
		reads += sm.ReadsDone
		writes += sm.WritesDone
	}
	// Completions between the last sample and the end of the run are not
	// sampled, so the time series can only undercount.
	if reads > res.ReadRequests || writes > res.WriteRequests {
		t.Fatalf("time series counted %d/%d completions, run had %d/%d",
			reads, writes, res.ReadRequests, res.WriteRequests)
	}
	if reads == 0 {
		t.Fatal("time series saw no read completions")
	}
}

// Two identical telemetry-enabled runs must export byte-identical CSV and
// trace files — the property the CI determinism job gates on.
func TestTelemetryDeterministicExports(t *testing.T) {
	tr := testTrace(t, "telemetry-det", 800, 0.85)
	export := func() (csv, trace []byte) {
		s, err := New(telemetryConfig(true))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(tr, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var c, j bytes.Buffer
		if err := res.Telemetry.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		if err := res.Telemetry.WriteTrace(&j); err != nil {
			t.Fatal(err)
		}
		return c.Bytes(), j.Bytes()
	}
	c1, t1 := export()
	c2, t2 := export()
	if !bytes.Equal(c1, c2) {
		t.Error("identical runs exported different metrics CSV")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("identical runs exported different trace JSON")
	}
}

// Telemetry must observe without perturbing: the simulation's outcome is
// bit-identical with and without the recorder attached.
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	tr := testTrace(t, "telemetry-inert", 800, 0.85)
	run := func(cfg Config) Results {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(tr, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := run(telemetryConfig(true))
	without := run(testConfig(true, 0.2))
	// The sampler adds engine events, so event counts differ; everything
	// host-visible and device-visible must not.
	with.Events, without.Events = 0, 0
	if with.Scalars() != without.Scalars() {
		t.Errorf("telemetry changed the simulation:\n%+v\n%+v", with.Scalars(), without.Scalars())
	}
	if without.Telemetry != nil {
		t.Error("disabled telemetry still exported")
	}
}

func TestTelemetrySpanSampling(t *testing.T) {
	tr := testTrace(t, "telemetry-sample", 600, 0.8)
	cfg := telemetryConfig(false)
	cfg.Telemetry.SampleEvery = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	measured := res.ReadRequests + res.WriteRequests
	want := (measured + 3) / 4
	if got := uint64(len(res.Telemetry.Spans)); got != want {
		t.Fatalf("sampled %d spans of %d requests with SampleEvery=4, want %d", got, measured, want)
	}
}

func TestTelemetryConfigValidation(t *testing.T) {
	cfg := testConfig(false, 0)
	cfg.Telemetry = &telemetry.Config{MetricsInterval: -time.Second}
	if _, err := New(cfg); err == nil {
		t.Fatal("negative MetricsInterval accepted")
	}
}
