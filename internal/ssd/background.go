package ssd

import (
	"time"

	"idaflash/internal/ftl"
	"idaflash/internal/sim"
)

// runGC collects any planes below the free-block watermark and charges the
// resulting moves and erases as background work.
func (s *SSD) runGC() {
	jobs, err := s.f.CollectGC(s.engine.Now())
	for _, job := range jobs {
		s.chargeGC(job)
	}
	if err != nil {
		s.fail(err)
	}
}

// chargeGC issues the timed operations of one GC job: each move is a read
// (die), two channel transfers (out and back in), and a program (die); the
// victim erase runs after the moves. Steps chain sequentially, as the
// controller executes one copy at a time per victim.
func (s *SSD) chargeGC(job ftl.GCJob) {
	steps := make([]func(next func()), 0, len(job.Moves)+1)
	for _, m := range job.Moves {
		m := m
		steps = append(steps, func(next func()) {
			readHold := s.cfg.Timing.ReadLatency(m.FromSenses) + s.cfg.Timing.Transfer
			program := s.cfg.Timing.Program * time.Duration(1+m.FailedPrograms)
			s.gcBusy += readHold + s.cfg.Timing.Transfer + program
			s.dieOf(m.From).Acquire(sim.PrioBackground, 0, func() {
				s.channelOf(m.From).Acquire(sim.PrioBackground, readHold, func() {
					s.channelOf(m.To).Acquire(sim.PrioBackground, s.cfg.Timing.Transfer, func() {
						s.dieOf(m.To).Acquire(sim.PrioBackground, program, next)
					})
				})
			})
		})
	}
	victim := job.Victim
	steps = append(steps, func(next func()) {
		s.gcBusy += s.cfg.Timing.Erase
		die := s.dies[s.cfg.Geometry.DieOf(victim.Plane)]
		die.Acquire(sim.PrioBackground, s.cfg.Timing.Erase, next)
	})
	runSteps(steps, func() {})
}

// scheduleRefreshScan arms the periodic refresh scan. The scan re-arms
// itself only while host work remains, so a finished simulation drains.
func (s *SSD) scheduleRefreshScan(moreWork func() bool) {
	if s.cfg.FTL.RefreshPeriod == 0 || s.scanning {
		return
	}
	s.scanning = true
	var tick func()
	tick = func() {
		jobs, err := s.f.DueRefreshes(s.engine.Now())
		for _, job := range jobs {
			s.chargeRefresh(job)
		}
		if err != nil {
			s.fail(err)
			s.scanning = false
			return
		}
		if len(jobs) > 0 {
			// Refresh moves may have drained free blocks, and
			// emptied blocks are reclaimable.
			s.runGC()
		}
		s.sampleUsage()
		if moreWork() {
			s.engine.After(s.cfg.RefreshScanInterval, tick)
		} else {
			s.scanning = false
		}
	}
	s.engine.After(s.cfg.RefreshScanInterval, tick)
}

// chargeRefresh issues the timed operations of one refresh job in the
// Figure 7 order: read all valid pages, relocate the moved pages, adjust
// the target wordlines, verify-read the kept pages, write back corrupted
// pages. Steps chain sequentially per job; jobs on different planes overlap
// naturally.
func (s *SSD) chargeRefresh(job ftl.RefreshJob) {
	var steps []func(next func())
	read := func(op ftl.ReadOp) func(next func()) {
		hold := s.cfg.Timing.ReadLatency(op.Senses) + s.cfg.Timing.Transfer
		return func(next func()) {
			s.refreshBusy += hold
			s.dieOf(op.Addr).Acquire(sim.PrioBackground, 0, func() {
				s.channelOf(op.Addr).Acquire(sim.PrioBackground, hold, next)
			})
		}
	}
	write := func(m ftl.MoveOp) func(next func()) {
		return func(next func()) {
			program := s.cfg.Timing.Program * time.Duration(1+m.FailedPrograms)
			s.refreshBusy += s.cfg.Timing.Transfer + program
			s.channelOf(m.To).Acquire(sim.PrioBackground, s.cfg.Timing.Transfer, func() {
				s.dieOf(m.To).Acquire(sim.PrioBackground, program, next)
			})
		}
	}
	// Steps 1-2: read and decode everything valid (decode runs inside
	// the 20 us ECC engine; charged as wall time after the transfer).
	for _, op := range job.Reads {
		steps = append(steps, read(op))
	}
	// Step 3: write the relocated pages to the new block.
	for _, m := range job.Moves {
		steps = append(steps, write(m))
	}
	// Step 4: voltage-adjust each target wordline on the die.
	if job.AdjustedWLs > 0 {
		target := job.Target
		adjusts := job.AdjustedWLs
		steps = append(steps, func(next func()) {
			die := s.dies[s.cfg.Geometry.DieOf(target.Plane)]
			total := time.Duration(adjusts) * s.cfg.Timing.VoltAdjust
			s.refreshBusy += total
			// One acquisition per wordline so host reads can slip
			// in between adjustments.
			var loop func(k int)
			loop = func(k int) {
				if k == 0 {
					next()
					return
				}
				die.Acquire(sim.PrioBackground, s.cfg.Timing.VoltAdjust, func() { loop(k - 1) })
			}
			loop(adjusts)
		})
	}
	// Steps 5-6: verify reads of kept pages.
	for _, op := range job.VerifyReads {
		steps = append(steps, read(op))
	}
	// Step 8: write back the corrupted pages.
	for _, m := range job.CorruptedMoves {
		steps = append(steps, write(m))
	}
	runSteps(steps, func() {})
}

// runSteps chains a sequence of callback-passing steps.
func runSteps(steps []func(next func()), done func()) {
	var run func(i int)
	run = func(i int) {
		if i == len(steps) {
			done()
			return
		}
		steps[i](func() { run(i + 1) })
	}
	run(0)
}

// sampleUsage records the block-usage peaks for the Section III-C numbers.
// Only blocks still holding valid data count as in use: emptied blocks
// awaiting GC are reclaimable at any moment and say nothing about the IDA
// coding's space retention.
func (s *SSD) sampleUsage() {
	u := s.f.Usage()
	inUse := u.InUse + u.Active
	if inUse > s.peakInUse {
		s.peakInUse = inUse
	}
	if u.IDABlocks > s.peakIDA {
		s.peakIDA = u.IDABlocks
	}
}
