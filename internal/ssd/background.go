package ssd

import (
	"time"

	"idaflash/internal/ftl"
	"idaflash/internal/sim"
)

// Background work (garbage collection and data refresh) used to be charged
// through per-step closure chains; profiling showed those closures were the
// single largest allocation source of a warm run (~80% of objects). The
// charging now runs on pooled state machines — gcOp and refreshOp — that
// implement sim.Action and issue exactly the same resource acquisitions, in
// the same order, with the same priorities and holds, at the same instants
// as the closure chains did, so runs stay byte-identical while the steady
// state allocates nothing.

// runGC collects any planes below the free-block watermark and charges the
// resulting moves and erases as background work.
func (s *SSD) runGC() {
	jobs, err := s.f.CollectGC(s.engine.Now())
	for _, job := range jobs {
		s.chargeGC(job)
	}
	if err != nil {
		s.fail(err)
	}
}

// gcOp charges the timed operations of one GC job: each move is a read
// (die), two channel transfers (out and back in), and a program (die); the
// victim erase runs after the moves. Steps chain sequentially, as the
// controller executes one copy at a time per victim. The op itself is the
// completion Action of every acquisition it issues.
type gcOp struct {
	s   *SSD
	job ftl.GCJob
	idx int   // current move; len(job.Moves) selects the erase step
	sub uint8 // acquisition stage within the current step
}

// GC acquisition stages.
const (
	gcStageDieRead uint8 = iota // die grant at the source (zero hold)
	gcStageChanOut              // read hold on the source channel
	gcStageChanIn               // transfer on the destination channel
	gcStageProgram              // program on the destination die
	gcStageErase                // victim erase
)

// chargeGC starts a pooled machine for the job.
func (s *SSD) chargeGC(job ftl.GCJob) {
	o := s.getGCOp()
	o.job = job
	o.idx, o.sub = 0, gcStageDieRead
	o.step()
}

// step enters the current move (or the erase once moves are done): it
// charges the step's busy time up front — as the closure chain did when the
// step began running — and issues the first acquisition.
func (o *gcOp) step() {
	s := o.s
	if o.idx < len(o.job.Moves) {
		m := o.job.Moves[o.idx]
		readHold := s.cfg.Timing.ReadLatency(m.FromSenses) + s.cfg.Timing.Transfer
		program := s.cfg.Timing.Program * time.Duration(1+m.FailedPrograms)
		s.gcBusy += readHold + s.cfg.Timing.Transfer + program
		o.sub = gcStageDieRead
		s.dieOf(m.From).AcquireAction(sim.PrioBackground, 0, o)
		return
	}
	s.gcBusy += s.cfg.Timing.Erase
	o.sub = gcStageErase
	die := s.dies[s.cfg.Geometry.DieOf(o.job.Victim.Plane)]
	die.AcquireAction(sim.PrioBackground, s.cfg.Timing.Erase, o)
}

// Run advances the machine at each acquisition completion.
func (o *gcOp) Run() {
	s := o.s
	switch o.sub {
	case gcStageDieRead:
		m := o.job.Moves[o.idx]
		readHold := s.cfg.Timing.ReadLatency(m.FromSenses) + s.cfg.Timing.Transfer
		o.sub = gcStageChanOut
		s.channelOf(m.From).AcquireAction(sim.PrioBackground, readHold, o)
	case gcStageChanOut:
		m := o.job.Moves[o.idx]
		o.sub = gcStageChanIn
		s.channelOf(m.To).AcquireAction(sim.PrioBackground, s.cfg.Timing.Transfer, o)
	case gcStageChanIn:
		m := o.job.Moves[o.idx]
		program := s.cfg.Timing.Program * time.Duration(1+m.FailedPrograms)
		o.sub = gcStageProgram
		s.dieOf(m.To).AcquireAction(sim.PrioBackground, program, o)
	case gcStageProgram:
		o.idx++
		o.step()
	case gcStageErase:
		s.putGCOp(o)
	}
}

// getGCOp pops a machine from the free list, or allocates the first time.
func (s *SSD) getGCOp() *gcOp {
	if n := len(s.gcOps); n > 0 {
		o := s.gcOps[n-1]
		s.gcOps[n-1] = nil
		s.gcOps = s.gcOps[:n-1]
		return o
	}
	return &gcOp{s: s}
}

// putGCOp recycles a finished machine, dropping the job reference so the
// FTL-owned move slices are not retained past the charge.
func (s *SSD) putGCOp(o *gcOp) {
	o.job = ftl.GCJob{}
	o.idx, o.sub = 0, 0
	s.gcOps = append(s.gcOps, o)
}

// refreshScan is the periodic refresh-scan tick as a reusable engine
// Action, so re-arming does not allocate a closure per interval.
type refreshScan struct {
	s        *SSD
	moreWork func() bool
}

// scheduleRefreshScan arms the periodic refresh scan. The scan re-arms
// itself only while host work remains, so a finished simulation drains.
func (s *SSD) scheduleRefreshScan(moreWork func() bool) {
	if s.cfg.FTL.RefreshPeriod == 0 || s.scanning {
		return
	}
	s.scanning = true
	if s.scan == nil {
		s.scan = &refreshScan{s: s}
	}
	s.scan.moreWork = moreWork
	s.engine.AfterAction(s.cfg.RefreshScanInterval, s.scan)
}

// Run executes one scan tick.
func (t *refreshScan) Run() {
	s := t.s
	jobs, err := s.f.DueRefreshes(s.engine.Now())
	for _, job := range jobs {
		s.chargeRefresh(job)
	}
	if err != nil {
		s.fail(err)
		s.scanning = false
		return
	}
	if len(jobs) > 0 {
		// Refresh moves may have drained free blocks, and
		// emptied blocks are reclaimable.
		s.runGC()
	}
	s.sampleUsage()
	if t.moreWork() {
		s.engine.AfterAction(s.cfg.RefreshScanInterval, t)
	} else {
		s.scanning = false
	}
}

// refreshOp charges the timed operations of one refresh job in the Figure 7
// order: read all valid pages, relocate the moved pages, adjust the target
// wordlines, verify-read the kept pages, write back corrupted pages. Steps
// chain sequentially per job; jobs on different planes overlap naturally.
type refreshOp struct {
	s          *SSD
	job        ftl.RefreshJob
	phase      uint8
	idx        int   // index into the current phase's op list
	sub        uint8 // acquisition stage within the current item
	adjustLeft int   // wordline adjustments still to issue
}

// Refresh phases, in charge order.
const (
	refPhaseReads uint8 = iota
	refPhaseMoves
	refPhaseAdjust
	refPhaseVerify
	refPhaseCorrupted
)

// Read/write acquisition stages within a phase item.
const (
	refStageFirst  uint8 = iota // die grant (reads) / channel transfer (writes)
	refStageSecond              // channel hold (reads) / die program (writes)
)

// chargeRefresh starts a pooled machine for the job.
func (s *SSD) chargeRefresh(job ftl.RefreshJob) {
	o := s.getRefreshOp()
	o.job = job
	o.phase, o.idx, o.sub = refPhaseReads, 0, refStageFirst
	o.step()
}

// step enters the first pending item at or after the current phase,
// charging its busy time up front like the closure chain did. A job with
// nothing to charge completes immediately.
func (o *refreshOp) step() {
	s := o.s
	for {
		switch o.phase {
		case refPhaseReads, refPhaseVerify:
			if op, ok := o.readAt(o.idx); ok {
				hold := s.cfg.Timing.ReadLatency(op.Senses) + s.cfg.Timing.Transfer
				s.refreshBusy += hold
				o.sub = refStageFirst
				s.dieOf(op.Addr).AcquireAction(sim.PrioBackground, 0, o)
				return
			}
		case refPhaseMoves, refPhaseCorrupted:
			if m, ok := o.moveAt(o.idx); ok {
				program := s.cfg.Timing.Program * time.Duration(1+m.FailedPrograms)
				s.refreshBusy += s.cfg.Timing.Transfer + program
				o.sub = refStageFirst
				s.channelOf(m.To).AcquireAction(sim.PrioBackground, s.cfg.Timing.Transfer, o)
				return
			}
		case refPhaseAdjust:
			if o.job.AdjustedWLs > 0 {
				s.refreshBusy += time.Duration(o.job.AdjustedWLs) * s.cfg.Timing.VoltAdjust
				o.adjustLeft = o.job.AdjustedWLs
				o.adjustDie().AcquireAction(sim.PrioBackground, s.cfg.Timing.VoltAdjust, o)
				return
			}
		default:
			s.putRefreshOp(o)
			return
		}
		o.phase++
		o.idx = 0
	}
}

// readAt resolves the idx-th read op of the current read phase.
func (o *refreshOp) readAt(i int) (ftl.ReadOp, bool) {
	ops := o.job.Reads
	if o.phase == refPhaseVerify {
		ops = o.job.VerifyReads
	}
	if i < len(ops) {
		return ops[i], true
	}
	return ftl.ReadOp{}, false
}

// moveAt resolves the idx-th move of the current write phase.
func (o *refreshOp) moveAt(i int) (ftl.MoveOp, bool) {
	ops := o.job.Moves
	if o.phase == refPhaseCorrupted {
		ops = o.job.CorruptedMoves
	}
	if i < len(ops) {
		return ops[i], true
	}
	return ftl.MoveOp{}, false
}

// adjustDie returns the die holding the refresh target block.
func (o *refreshOp) adjustDie() *sim.Resource {
	return o.s.dies[o.s.cfg.Geometry.DieOf(o.job.Target.Plane)]
}

// Run advances the machine at each acquisition completion.
func (o *refreshOp) Run() {
	s := o.s
	switch o.phase {
	case refPhaseReads, refPhaseVerify:
		if o.sub == refStageFirst {
			op, _ := o.readAt(o.idx)
			hold := s.cfg.Timing.ReadLatency(op.Senses) + s.cfg.Timing.Transfer
			o.sub = refStageSecond
			s.channelOf(op.Addr).AcquireAction(sim.PrioBackground, hold, o)
			return
		}
		o.idx++
		o.step()
	case refPhaseMoves, refPhaseCorrupted:
		if o.sub == refStageFirst {
			m, _ := o.moveAt(o.idx)
			program := s.cfg.Timing.Program * time.Duration(1+m.FailedPrograms)
			o.sub = refStageSecond
			s.dieOf(m.To).AcquireAction(sim.PrioBackground, program, o)
			return
		}
		o.idx++
		o.step()
	case refPhaseAdjust:
		o.adjustLeft--
		if o.adjustLeft > 0 {
			// One acquisition per wordline so host reads can slip in
			// between adjustments.
			o.adjustDie().AcquireAction(sim.PrioBackground, s.cfg.Timing.VoltAdjust, o)
			return
		}
		o.phase++
		o.idx = 0
		o.step()
	}
}

// getRefreshOp pops a machine from the free list, or allocates.
func (s *SSD) getRefreshOp() *refreshOp {
	if n := len(s.refreshOps); n > 0 {
		o := s.refreshOps[n-1]
		s.refreshOps[n-1] = nil
		s.refreshOps = s.refreshOps[:n-1]
		return o
	}
	return &refreshOp{s: s}
}

// putRefreshOp recycles a finished machine, dropping the job reference so
// the FTL-owned op slices are not retained past the charge.
func (s *SSD) putRefreshOp(o *refreshOp) {
	o.job = ftl.RefreshJob{}
	o.phase, o.idx, o.sub, o.adjustLeft = 0, 0, 0, 0
	s.refreshOps = append(s.refreshOps, o)
}

// sampleUsage records the block-usage peaks for the Section III-C numbers.
// Only blocks still holding valid data count as in use: emptied blocks
// awaiting GC are reclaimable at any moment and say nothing about the IDA
// coding's space retention.
func (s *SSD) sampleUsage() {
	u := s.f.Usage()
	inUse := u.InUse + u.Active
	if inUse > s.peakInUse {
		s.peakInUse = inUse
	}
	if u.IDABlocks > s.peakIDA {
		s.peakIDA = u.IDABlocks
	}
}
