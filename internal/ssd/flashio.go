package ssd

import (
	"time"

	"idaflash/internal/ecc"
	"idaflash/internal/ftl"
	"idaflash/internal/sim"
	"idaflash/internal/telemetry"
)

// Flash command issue stage: dispatched page operations become timed
// acquisitions of the die and channel resources. Which queued command a
// busy die or channel serves next is the scheduler's decision
// (sim.Scheduler); this stage only issues and chains the commands.

// FlashStats instruments the flash command issue stage.
type FlashStats struct {
	// ReadCommands counts sensing+transfer rounds issued for host reads,
	// including retry rounds.
	ReadCommands uint64
	// RetryRounds counts the subset of ReadCommands that were read
	// retries after a failed hard decode.
	RetryRounds uint64
	// ProgramCommands counts host page programs issued.
	ProgramCommands uint64
}

// readPage services one logical page read: memory access on the die (with
// the sensing count the wordline's current coding dictates), transfer on
// the channel, ECC decode, plus any read-retry rounds.
func (s *SSD) readPage(lpn ftl.LPN, req *request) {
	info, ok := s.f.Read(lpn)
	if !ok {
		// Reads of never-written data are served like a fastest-page
		// read (the controller returns zeroes after a mapping miss;
		// we charge a conservative full page read).
		s.unmapped++
		s.dispatchStats.UnmappedPages++
		now := s.engine.Now()
		flash := s.cfg.Timing.ReadLatency(1) + s.cfg.Timing.Transfer
		req.sp.AddPhase(telemetry.StageFlash, now, now+flash)
		req.sp.AddPhase(telemetry.StageECC, now+flash, now+flash+s.cfg.ECC.DecodeLatency)
		s.engine.After(flash+s.cfg.ECC.DecodeLatency, func() {
			s.pageDone(req)
		})
		return
	}
	if s.inj != nil {
		s.issueRead(lpn, info, req, 0)
		return
	}
	retries := s.eccParams(info).SampleRetries(s.rng)
	s.readRound(info, req, retries, true, 0)
}

// eccParams returns the decode/retry parameters for one resolved read.
func (s *SSD) eccParams(info ftl.ReadInfo) ecc.Params {
	params := s.cfg.ECC
	if info.IDA {
		// Merged wordlines occupy half the voltage states, widening
		// the read margins and cutting the raw bit error rate; their
		// hard decodes fail far less often.
		params = params.WithFailScale(idaRetryFailScale)
	}
	return params
}

// idaRetryFailScale scales the hard-decode failure probability for pages on
// IDA-reprogrammed wordlines: doubling the inter-state margin cuts RBER
// superlinearly (Cai et al. characterize roughly an order of magnitude per
// doubled margin; 0.25 is conservative).
const idaRetryFailScale = 0.25

// readRound performs one sensing+transfer+decode round; failed decodes
// trigger retry rounds that re-sense the wordline's read levels with
// adjusted voltages (Section V-F): a retry costs one extra pass over the
// page's read voltages plus a soft-bit transfer, so pages with fewer read
// levels — IDA-reprogrammed wordlines — also retry more cheaply.
//
// Following the DiskSim+SSD model the paper builds on, the channel is
// occupied for the whole memory access plus the data transfer (command
// issue, busy polling, data out — there is no cache-read pipelining), which
// is what couples queueing delay to the sensing count and lets a sensing
// reduction translate into response-time gains under load. The read first
// waits for its die to go idle (it cannot sense a die that is mid-program
// or mid-erase) without holding it.
// extra lengthens the first round's hold by an injected latency spike
// (zero outside fault scenarios).
func (s *SSD) readRound(info ftl.ReadInfo, req *request, retriesLeft int, first bool, extra time.Duration) {
	die := s.dieOf(info.Addr)
	ch := s.channelOf(info.Addr)
	var hold time.Duration
	if first {
		hold = s.cfg.Timing.ReadLatency(info.Senses) + s.cfg.Timing.Transfer + extra
	} else {
		hold = s.cfg.Timing.ExtraSenseLatency(info.Senses) + s.cfg.Timing.Transfer/2
		s.flashStats.RetryRounds++
	}
	s.flashStats.ReadCommands++
	issued := s.engine.Now()
	die.Acquire(sim.PrioHostRead, 0, func() {
		ch.Acquire(sim.PrioHostRead, hold, func() {
			// This callback runs at the completion instant; the
			// channel started serving hold earlier, and everything
			// before that was die/channel queueing.
			done := s.engine.Now()
			req.sp.AddPhase(telemetry.StageQueue, issued, done-hold)
			req.sp.AddPhase(telemetry.StageFlash, done-hold, done)
			req.sp.AddPhase(telemetry.StageECC, done, done+s.cfg.ECC.DecodeLatency)
			s.engine.After(s.cfg.ECC.DecodeLatency, func() {
				if retriesLeft > 0 {
					s.readRound(info, req, retriesLeft-1, false, 0)
					return
				}
				s.pageDone(req)
			})
		})
	})
}

// writePage services one logical page write: transfer to the chip on the
// channel, then the program on the die.
func (s *SSD) writePage(lpn ftl.LPN, req *request) {
	prog, err := s.f.Write(lpn, s.engine.Now())
	if err != nil {
		// Out of space mid-run: surface loudly, this is a sizing bug.
		panic("ssd: " + err.Error())
	}
	s.issueProgram(prog, req, 0)
}

// issueProgram issues one page program, retrying around die/channel outages
// (faults.go). A program the FTL had to remap (FailedPrograms > 0) charges
// the wasted pulses as extra die time.
func (s *SSD) issueProgram(prog ftl.PageProgram, req *request, attempt int) {
	if s.checkWriteOutage(prog, req, attempt) {
		return
	}
	s.flashStats.ProgramCommands++
	die := s.dieOf(prog.Addr)
	ch := s.channelOf(prog.Addr)
	issued := s.engine.Now()
	transfer := s.cfg.Timing.Transfer
	program := s.cfg.Timing.Program * time.Duration(1+prog.FailedPrograms)
	ch.Acquire(sim.PrioHostWrite, transfer, func() {
		sent := s.engine.Now()
		req.sp.AddPhase(telemetry.StageQueue, issued, sent-transfer)
		req.sp.AddPhase(telemetry.StageFlash, sent-transfer, sent)
		die.Acquire(sim.PrioHostWrite, program, func() {
			done := s.engine.Now()
			req.sp.AddPhase(telemetry.StageQueue, sent, done-program)
			req.sp.AddPhase(telemetry.StageFlash, done-program, done)
			s.pageDone(req)
		})
	})
}
