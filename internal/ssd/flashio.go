package ssd

import (
	"fmt"
	"time"

	"idaflash/internal/ecc"
	"idaflash/internal/ftl"
	"idaflash/internal/sim"
	"idaflash/internal/telemetry"
)

// Flash command issue stage: dispatched page operations become timed
// acquisitions of the die and channel resources. Which queued command a
// busy die or channel serves next is the scheduler's decision
// (sim.Scheduler); this stage only issues and chains the commands.
//
// Steady-state page flow runs on pooled operation structs (readOp/writeOp)
// that implement sim.Action: one struct carries a page operation through its
// die/channel/decode stages and returns to the device's free list when the
// page completes, so a sensing round costs no closure allocations. Only the
// cold fault-recovery paths (faults.go) still capture closures.

// FlashStats instruments the flash command issue stage.
type FlashStats struct {
	// ReadCommands counts sensing+transfer rounds issued for host reads,
	// including retry rounds.
	ReadCommands uint64
	// RetryRounds counts the subset of ReadCommands that were read
	// retries after a failed hard decode.
	RetryRounds uint64
	// ProgramCommands counts host page programs issued.
	ProgramCommands uint64
}

// readOp stages. A read round is die wait -> channel hold (sensing +
// transfer) -> ECC decode, looping back for retry rounds; unmapped reads
// shortcut straight to a fixed-latency completion.
const (
	readStageDie      = iota // die went idle; acquire the channel
	readStageChannel         // channel hold done; account phases, start decode
	readStageDecode          // decode done; retry or complete the page
	readStageUnmapped        // fixed-latency unmapped-read completion
)

// readOp carries one logical page read through its rounds. It is pooled on
// the SSD and recycled when the page completes.
type readOp struct {
	s           *SSD
	info        ftl.ReadInfo
	req         *request
	retriesLeft int
	first       bool
	extra       time.Duration // injected latency spike (fault scenarios)
	hold        time.Duration
	issued      sim.Time
	stage       int
}

// getReadOp pops a pooled readOp or allocates the pool's first few.
func (s *SSD) getReadOp() *readOp {
	if n := len(s.readOps); n > 0 {
		op := s.readOps[n-1]
		s.readOps = s.readOps[:n-1]
		return op
	}
	return &readOp{s: s}
}

// putReadOp recycles a completed readOp, dropping its references.
func (s *SSD) putReadOp(op *readOp) {
	op.info = ftl.ReadInfo{}
	op.req = nil
	s.readOps = append(s.readOps, op)
}

// readPage services one logical page read: memory access on the die (with
// the sensing count the wordline's current coding dictates), transfer on
// the channel, ECC decode, plus any read-retry rounds.
func (s *SSD) readPage(lpn ftl.LPN, req *request) {
	info, ok := s.f.Read(lpn)
	if !ok {
		// Reads of never-written data are served like a fastest-page
		// read (the controller returns zeroes after a mapping miss;
		// we charge a conservative full page read).
		s.unmapped++
		s.dispatchStats.UnmappedPages++
		now := s.engine.Now()
		flash := s.cfg.Timing.ReadLatency(1) + s.cfg.Timing.Transfer
		req.sp.AddPhase(telemetry.StageFlash, now, now+flash)
		req.sp.AddPhase(telemetry.StageECC, now+flash, now+flash+s.cfg.ECC.DecodeLatency)
		op := s.getReadOp()
		op.req = req
		op.stage = readStageUnmapped
		s.engine.AfterAction(flash+s.cfg.ECC.DecodeLatency, op)
		return
	}
	if s.inj != nil {
		s.issueRead(lpn, info, req, 0)
		return
	}
	retries := s.eccParams(info).SampleRetries(s.rng)
	s.startRead(info, req, retries, 0)
}

// startRead begins the first sensing round of a resolved page read.
func (s *SSD) startRead(info ftl.ReadInfo, req *request, retries int, extra time.Duration) {
	op := s.getReadOp()
	op.info = info
	op.req = req
	op.retriesLeft = retries
	op.first = true
	op.extra = extra
	op.round()
}

// eccParams returns the decode/retry parameters for one resolved read.
func (s *SSD) eccParams(info ftl.ReadInfo) ecc.Params {
	params := s.cfg.ECC
	if info.IDA {
		// Merged wordlines occupy half the voltage states, widening
		// the read margins and cutting the raw bit error rate; their
		// hard decodes fail far less often.
		params = params.WithFailScale(idaRetryFailScale)
	}
	return params
}

// idaRetryFailScale scales the hard-decode failure probability for pages on
// IDA-reprogrammed wordlines: doubling the inter-state margin cuts RBER
// superlinearly (Cai et al. characterize roughly an order of magnitude per
// doubled margin; 0.25 is conservative).
const idaRetryFailScale = 0.25

// round performs one sensing+transfer+decode round; failed decodes trigger
// retry rounds that re-sense the wordline's read levels with adjusted
// voltages (Section V-F): a retry costs one extra pass over the page's read
// voltages plus a soft-bit transfer, so pages with fewer read levels —
// IDA-reprogrammed wordlines — also retry more cheaply.
//
// Following the DiskSim+SSD model the paper builds on, the channel is
// occupied for the whole memory access plus the data transfer (command
// issue, busy polling, data out — there is no cache-read pipelining), which
// is what couples queueing delay to the sensing count and lets a sensing
// reduction translate into response-time gains under load. The read first
// waits for its die to go idle (it cannot sense a die that is mid-program
// or mid-erase) without holding it. op.extra lengthens the first round's
// hold by an injected latency spike (zero outside fault scenarios).
func (op *readOp) round() {
	s := op.s
	if op.first {
		op.hold = s.cfg.Timing.ReadLatency(op.info.Senses) + s.cfg.Timing.Transfer + op.extra
	} else {
		op.hold = s.cfg.Timing.ExtraSenseLatency(op.info.Senses) + s.cfg.Timing.Transfer/2
		s.flashStats.RetryRounds++
	}
	s.flashStats.ReadCommands++
	op.issued = s.engine.Now()
	op.stage = readStageDie
	s.dieOf(op.info.Addr).AcquireAction(sim.PrioHostRead, 0, op)
}

// Run advances the read through its next stage; the engine and the
// die/channel resources invoke it as the op's holds complete.
func (op *readOp) Run() {
	s := op.s
	switch op.stage {
	case readStageDie:
		op.stage = readStageChannel
		s.channelOf(op.info.Addr).AcquireAction(sim.PrioHostRead, op.hold, op)
	case readStageChannel:
		// This runs at the completion instant; the channel started
		// serving hold earlier, and everything before that was
		// die/channel queueing.
		done := s.engine.Now()
		op.req.sp.AddPhase(telemetry.StageQueue, op.issued, done-op.hold)
		op.req.sp.AddPhase(telemetry.StageFlash, done-op.hold, done)
		op.req.sp.AddPhase(telemetry.StageECC, done, done+s.cfg.ECC.DecodeLatency)
		op.stage = readStageDecode
		s.engine.AfterAction(s.cfg.ECC.DecodeLatency, op)
	case readStageDecode:
		if op.retriesLeft > 0 {
			op.retriesLeft--
			op.first = false
			op.extra = 0
			op.round()
			return
		}
		req := op.req
		s.putReadOp(op)
		s.pageDone(req)
	case readStageUnmapped:
		req := op.req
		s.putReadOp(op)
		s.pageDone(req)
	}
}

// writeOp stages: channel transfer to the chip, then the program on the die.
const (
	writeStageChannel = iota // transfer done; acquire the die
	writeStageDie            // program done; complete the page
)

// writeOp carries one page program through its channel and die holds. It is
// pooled on the SSD and recycled when the page completes.
type writeOp struct {
	s        *SSD
	prog     ftl.PageProgram
	req      *request
	transfer time.Duration
	program  time.Duration
	issued   sim.Time
	sent     sim.Time
	stage    int
}

func (s *SSD) getWriteOp() *writeOp {
	if n := len(s.writeOps); n > 0 {
		op := s.writeOps[n-1]
		s.writeOps = s.writeOps[:n-1]
		return op
	}
	return &writeOp{s: s}
}

func (s *SSD) putWriteOp(op *writeOp) {
	op.prog = ftl.PageProgram{}
	op.req = nil
	s.writeOps = append(s.writeOps, op)
}

// writePage services one logical page write: transfer to the chip on the
// channel, then the program on the die.
func (s *SSD) writePage(lpn ftl.LPN, req *request) {
	prog, err := s.f.Write(lpn, s.engine.Now())
	if err != nil {
		// Out of space mid-run: a sizing bug. Fail the run — the request
		// in flight never completes, but the engine stops after this
		// event and Run returns the error with partial stats.
		s.fail(fmt.Errorf("ssd: %w", err))
		return
	}
	s.issueProgram(prog, req, 0)
}

// issueProgram issues one page program, retrying around die/channel outages
// (faults.go). A program the FTL had to remap (FailedPrograms > 0) charges
// the wasted pulses as extra die time.
func (s *SSD) issueProgram(prog ftl.PageProgram, req *request, attempt int) {
	if s.checkWriteOutage(prog, req, attempt) {
		return
	}
	s.flashStats.ProgramCommands++
	op := s.getWriteOp()
	op.prog = prog
	op.req = req
	op.transfer = s.cfg.Timing.Transfer
	op.program = s.cfg.Timing.Program * time.Duration(1+prog.FailedPrograms)
	op.issued = s.engine.Now()
	op.stage = writeStageChannel
	s.channelOf(prog.Addr).AcquireAction(sim.PrioHostWrite, op.transfer, op)
}

// Run advances the program through its next stage.
func (op *writeOp) Run() {
	s := op.s
	switch op.stage {
	case writeStageChannel:
		op.sent = s.engine.Now()
		op.req.sp.AddPhase(telemetry.StageQueue, op.issued, op.sent-op.transfer)
		op.req.sp.AddPhase(telemetry.StageFlash, op.sent-op.transfer, op.sent)
		op.stage = writeStageDie
		s.dieOf(op.prog.Addr).AcquireAction(sim.PrioHostWrite, op.program, op)
	case writeStageDie:
		done := s.engine.Now()
		op.req.sp.AddPhase(telemetry.StageQueue, op.sent, done-op.program)
		op.req.sp.AddPhase(telemetry.StageFlash, done-op.program, done)
		req := op.req
		s.putWriteOp(op)
		s.pageDone(req)
	}
}
