package ssd

import (
	"idaflash/internal/ftl"
	"idaflash/internal/sim"
	"idaflash/internal/telemetry"
	"idaflash/internal/workload"
)

// FTL dispatch stage: an admitted host request is translated into per-page
// flash operations. The stage splits the byte extent into logical pages,
// consults the FTL for each, and hands the resulting flash commands to the
// issue stage (flashio.go). Writes additionally trigger garbage collection
// when they drain free blocks below the watermark.

// DispatchStats instruments the FTL dispatch stage.
type DispatchStats struct {
	// ReadPages and WritePages count the logical pages dispatched.
	ReadPages  uint64
	WritePages uint64
	// UnmappedPages counts read pages that had no mapping (reads of
	// never-written data).
	UnmappedPages uint64
}

// lpnRange converts a byte extent to the logical pages it covers.
func (s *SSD) lpnRange(offset int64, size int) (first, count ftl.LPN) {
	first = ftl.LPN(offset / int64(s.pageSize))
	last := ftl.LPN((offset + int64(size) - 1) / int64(s.pageSize))
	return first, last - first + 1
}

// startRequest begins servicing a host request; arrived is its original
// arrival time (which may predate now if it waited in the host queue).
func (s *SSD) startRequest(r workload.Request, arrived sim.Time, sp *telemetry.Span) {
	now := s.engine.Now()
	sp.Admit(now)
	first, count := s.lpnRange(r.Offset, r.Size)
	req := s.getRequest()
	req.arrived, req.pages, req.read, req.size, req.sp = arrived, int(count), r.Read, r.Size, sp
	if s.adm.inFlight == 0 {
		s.busyStart = now
	}
	s.adm.admit(arrived, now)
	for i := ftl.LPN(0); i < count; i++ {
		if r.Read {
			s.dispatchStats.ReadPages++
			s.readPage(first+i, req)
		} else {
			s.dispatchStats.WritePages++
			s.writePage(first+i, req)
		}
	}
	if !r.Read {
		// Writes may have drained free blocks below the watermark.
		s.runGC()
	}
}
