package ssd

import (
	"testing"
	"time"

	"idaflash/internal/faults"
	"idaflash/internal/ftl"
	"idaflash/internal/sim"
	"idaflash/internal/workload"
)

// The injector must satisfy the FTL's media-fault hook.
var _ ftl.FaultModel = (*faults.Injector)(nil)

func faultScenario(dies []faults.Outage) *faults.Scenario {
	return &faults.Scenario{
		Seed:  9,
		Dies:  dies,
		Read:  faults.ReadFaults{TimeoutProb: 0.002, SpikeProb: 0.01, Spike: faults.Duration(200 * time.Microsecond)},
		Retry: faults.Retry{Max: 2, Backoff: faults.Duration(25 * time.Microsecond), OpTimeout: faults.Duration(time.Millisecond)},
	}
}

// TestDieOutageFailsReadsWithoutHanging pins the core host-path recovery
// contract: with a die permanently out of service, every request still
// completes — reads targeting the dead die burn their retry budget and fail
// instead of stalling the run.
func TestDieOutageFailsReadsWithoutHanging(t *testing.T) {
	cfg := testConfig(false, 0)
	cfg.Faults = faultScenario([]faults.Outage{{Device: 0, Unit: 0, After: 0}})
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(testTrace(t, "die-out", 400, 0.8), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The prefill maps pages through the FTL directly, so a quarter of the
	// footprint lives on the dead die and its reads must fail.
	if res.Faults.FailedReadPages == 0 || res.Faults.FailedReadRequests == 0 {
		t.Fatalf("no failed reads recorded against a dead die: %+v", res.Faults)
	}
	if res.Faults.ReadRetries == 0 {
		t.Error("no read retries before giving up")
	}
	if res.Faults.FailedReadRequests > res.ReadRequests {
		t.Errorf("failed read requests %d exceed total %d",
			res.Faults.FailedReadRequests, res.ReadRequests)
	}
	exts := s.FailedReadExtents()
	if len(exts) == 0 {
		t.Fatal("no failed read extents recorded")
	}
	for i, e := range exts {
		if e.Size < s.pageSize || e.Size%s.pageSize != 0 || e.Offset%int64(s.pageSize) != 0 {
			t.Errorf("extent %d not page-aligned: %+v", i, e)
		}
		if i > 0 {
			prev := exts[i-1]
			if e.Offset <= prev.Offset+int64(prev.Size) {
				t.Errorf("extents %d and %d not sorted/coalesced: %+v %+v", i-1, i, prev, e)
			}
		}
	}
}

// TestTimedOutageRecovers exercises a transient outage window: a read issued
// mid-window backs off, retries past the window's end, and succeeds — no
// failed pages, just retries.
func TestTimedOutageRecovers(t *testing.T) {
	cfg := testConfig(false, 0)
	sc := faultScenario(nil)
	sc.Read = faults.ReadFaults{}
	// Die 0 is down for [1ms, 1.3ms); the read issued at 1ms backs off
	// 100us then 200us (doubling) and lands at 1.3ms, just as the window
	// closes.
	sc.Dies = []faults.Outage{{Device: 0, Unit: 0, After: faults.Duration(time.Millisecond), For: faults.Duration(300 * time.Microsecond)}}
	sc.Retry = faults.Retry{Max: 5, Backoff: faults.Duration(100 * time.Microsecond)}
	cfg.Faults = sc
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The first FTL write lands on plane 0, i.e. die 0.
	if _, err := s.FTL().Write(0, 0); err != nil {
		t.Fatal(err)
	}
	s.engine.At(sim.Time(time.Millisecond), func() {
		s.submit(workload.Request{At: time.Millisecond, Offset: 0, Size: 8192, Read: true})
	})
	s.engine.Run()
	if s.readReqs != 1 {
		t.Fatalf("read requests completed = %d, want 1", s.readReqs)
	}
	if s.faultStats.ReadRetries == 0 {
		t.Error("read never retried through the outage window")
	}
	if s.faultStats.FailedReadPages != 0 {
		t.Errorf("read failed instead of recovering: %+v", s.faultStats)
	}
	if len(s.FailedReadExtents()) != 0 {
		t.Error("recovered read left a failed extent behind")
	}
}

// TestReadFaultAccounting checks the transient-fault counters: injected
// latency spikes and hung reads are tallied, and hung reads come back
// through the retry path rather than hanging the request.
func TestReadFaultAccounting(t *testing.T) {
	cfg := testConfig(false, 0)
	sc := faultScenario(nil)
	sc.Read = faults.ReadFaults{TimeoutProb: 0.05, SpikeProb: 0.1, Spike: faults.Duration(300 * time.Microsecond)}
	cfg.Faults = sc
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(testTrace(t, "transient", 600, 0.9), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.ReadTimeouts == 0 || res.Faults.LatencySpikes == 0 {
		t.Fatalf("transient faults not drawn: %+v", res.Faults)
	}
	if res.Faults.ReadRetries < res.Faults.ReadTimeouts {
		t.Errorf("every timeout must retry or fail: retries %d < timeouts %d",
			res.Faults.ReadRetries, res.Faults.ReadTimeouts)
	}
	// A timeout holds the die for the full op-timeout, so the mean read
	// response must exceed the fault-free baseline.
	base, err := New(testConfig(false, 0))
	if err != nil {
		t.Fatal(err)
	}
	bres, err := base.Run(testTrace(t, "transient", 600, 0.9), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanReadResponse <= bres.MeanReadResponse {
		t.Errorf("faulty mean read %v not above fault-free %v",
			res.MeanReadResponse, bres.MeanReadResponse)
	}
}

// TestFaultRunDeterminism: identical configs and traces produce identical
// scalar results under an active fault scenario.
func TestFaultRunDeterminism(t *testing.T) {
	run := func() Results {
		cfg := testConfig(true, 1e-3)
		sc := faultScenario([]faults.Outage{{Device: 0, Unit: 0, After: faults.Duration(10 * time.Minute)}})
		sc.ProgramFail = faults.WearFailure{Base: 0.002}
		sc.EraseFail = faults.WearFailure{Base: 0.001}
		cfg.Faults = sc
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(testTrace(t, "det", 500, 0.7), RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Scalars() != b.Scalars() {
		t.Errorf("fault runs diverged:\n%+v\n%+v", a.Scalars(), b.Scalars())
	}
	if a.Faults == (FaultStats{}) {
		t.Error("scenario injected nothing; the determinism check is vacuous")
	}
}

// TestFaultDeviceFiltersOutages: an outage scoped to another array member
// must not touch this device.
func TestFaultDeviceFiltersOutages(t *testing.T) {
	cfg := testConfig(false, 0)
	cfg.Faults = faultScenario([]faults.Outage{{Device: 3, Unit: 0, After: 0}})
	cfg.Faults.Read = faults.ReadFaults{}
	cfg.FaultDevice = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(testTrace(t, "other-device", 300, 0.8), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != (FaultStats{}) {
		t.Errorf("outage for device 3 leaked into device 1: %+v", res.Faults)
	}
	if exts := s.FailedReadExtents(); len(exts) != 0 {
		t.Errorf("unexpected failed extents: %v", exts)
	}
}

// TestFailedWritesComplete: writes aimed at a dead die complete as failed
// requests instead of wedging the run.
func TestFailedWritesComplete(t *testing.T) {
	cfg := testConfig(false, 0)
	cfg.Faults = faultScenario([]faults.Outage{{Device: 0, Unit: 0, After: 0}})
	cfg.Faults.Read = faults.ReadFaults{}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(testTrace(t, "write-heavy", 400, 0.1), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.FailedWritePages == 0 || res.Faults.FailedWriteRequests == 0 {
		t.Fatalf("write-heavy trace against a dead die recorded no failed writes: %+v", res.Faults)
	}
	if res.WriteRequests == 0 || res.Faults.FailedWriteRequests > res.WriteRequests {
		t.Errorf("failed write requests %d out of %d", res.Faults.FailedWriteRequests, res.WriteRequests)
	}
}
