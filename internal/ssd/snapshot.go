package ssd

import (
	"fmt"

	"idaflash/internal/snapshot"
)

// The snapshot boundary sits inside RunContext after the zero-time aging
// phases (prefill, aging preamble, warmup replay, CloseActiveBlocks) and
// before StaggerBlockAges/ResetStats. Everything those phases mutate lives
// in exactly two places — the FTL state machine and the fault injector's
// random stream position — because the engine never runs (simulated time
// stays 0, no events process), the host-path accumulators are untouched
// (replay writes go straight through ftl.Write), and the telemetry sampler
// discards all pre-measurement activity when it arms. So a DeviceState of
// {ftl.State, injector draws} restored onto a freshly-built SSD is
// indistinguishable from having replayed the phases, and the timed phase
// that follows is byte-identical.

// captureAged snapshots the device at the boundary.
func (s *SSD) captureAged() *snapshot.DeviceState {
	return &snapshot.DeviceState{FTL: s.f.Snapshot(), InjectorDraws: s.inj.Draws()}
}

// restoreAged installs a captured boundary state onto this (fresh, unrun)
// device. An error means the state does not belong to this configuration (a
// mis-keyed or corrupt-but-checksummed snapshot) and guarantees the device
// was not touched, so the caller can fall back to an ordinary replay: the
// injector stream is validated before the FTL restore mutates anything, and
// ftl.Restore itself is all-or-nothing.
func (s *SSD) restoreAged(st *snapshot.DeviceState) error {
	if s.inj == nil && st.InjectorDraws > 0 {
		return fmt.Errorf("ssd: snapshot recorded %d fault draws but the run has no scenario", st.InjectorDraws)
	}
	if s.inj.Draws() > st.InjectorDraws {
		return fmt.Errorf("ssd: injector already past the snapshot's fault-stream position %d", st.InjectorDraws)
	}
	if err := s.f.Restore(st.FTL); err != nil {
		return err
	}
	return s.inj.SkipTo(st.InjectorDraws) // cannot fail after the checks above
}
