package ssd

import (
	"idaflash/internal/sim"
	"idaflash/internal/telemetry"
	"idaflash/internal/workload"
)

// This file wires the stage pipeline together for one host request: submit
// runs the admission stage (admission.go), admitted requests go to the FTL
// dispatch stage (dispatch.go), and pageDone closes the loop — response
// accounting and submission-queue slot release.

// request tracks one in-flight host request. Requests are pooled on the
// SSD: pageDone recycles the struct once its last page completes, so the
// steady-state request flow reuses a bounded set of them (one per in-flight
// request at the peak).
type request struct {
	arrived sim.Time
	pages   int // pages still outstanding
	read    bool
	size    int
	// failed marks a request at least one of whose pages exhausted the
	// fault-retry budget; it completes normally but counts as failed.
	failed bool
	// sp is the request's telemetry span; nil when telemetry is disabled
	// or the request is not sampled (all Span methods are nil-safe).
	sp *telemetry.Span
}

// getRequest pops a pooled request or allocates a fresh one.
func (s *SSD) getRequest() *request {
	if n := len(s.requests); n > 0 {
		req := s.requests[n-1]
		s.requests = s.requests[:n-1]
		return req
	}
	return &request{}
}

// putRequest recycles a completed request. Callers must not retain req.
func (s *SSD) putRequest(req *request) {
	*req = request{}
	s.requests = append(s.requests, req)
}

// submit admits a newly-arrived host request, queueing it host-side when
// the submission queue is full.
func (s *SSD) submit(r workload.Request) {
	now := s.engine.Now()
	sp := s.tel.StartRequest(now, r.Read, r.Size)
	if !s.adm.hasSlot() {
		s.adm.park(r, now, sp)
		return
	}
	s.startRequest(r, now, sp)
}

// pageDone accounts one finished page of the request and completes it when
// all pages are in.
func (s *SSD) pageDone(req *request) {
	req.pages--
	if req.pages > 0 {
		return
	}
	now := s.engine.Now()
	lat := now - req.arrived
	s.tel.FinishRequest(req.sp, now, req.read)
	if req.failed {
		if req.read {
			s.faultStats.FailedReadRequests++
		} else {
			s.faultStats.FailedWriteRequests++
		}
	}
	if req.read {
		s.readResp.Add(lat)
		s.readBytes += uint64(req.size)
		s.readReqs++
	} else {
		s.writeResp.Add(lat)
		s.writeBytes += uint64(req.size)
		s.writeReqs++
	}
	s.putRequest(req)
	s.lastHostDone = now
	// A completed request frees a submission-queue slot; the oldest
	// parked request (if any) enters service with its original arrival
	// time, so host-side waiting counts toward its response.
	next, ok := s.adm.release()
	if s.adm.inFlight == 0 {
		s.busySpan += now - s.busyStart
	}
	if ok {
		s.startRequest(next.r, next.arrived, next.sp)
	}
}
