package ssd

import (
	"time"

	"idaflash/internal/ftl"
	"idaflash/internal/sim"
	"idaflash/internal/workload"
)

// request tracks one in-flight host request.
type request struct {
	arrived sim.Time
	pages   int // pages still outstanding
	read    bool
	size    int
}

// lpnRange converts a byte extent to the logical pages it covers.
func (s *SSD) lpnRange(offset int64, size int) (first, count ftl.LPN) {
	first = ftl.LPN(offset / int64(s.pageSize))
	last := ftl.LPN((offset + int64(size) - 1) / int64(s.pageSize))
	return first, last - first + 1
}

// queuedRequest is a host request waiting for a submission-queue slot.
type queuedRequest struct {
	r       workload.Request
	arrived sim.Time
}

// submit admits a newly-arrived host request, queueing it host-side when
// the submission queue is full.
func (s *SSD) submit(r workload.Request) {
	now := s.engine.Now()
	if s.cfg.MaxQueueDepth > 0 && s.inFlight >= s.cfg.MaxQueueDepth {
		s.hostQueue = append(s.hostQueue, queuedRequest{r: r, arrived: now})
		return
	}
	s.start(r, now)
}

// start begins servicing a host request; arrived is its original arrival
// time (which may predate now if it waited in the host queue).
func (s *SSD) start(r workload.Request, arrived sim.Time) {
	first, count := s.lpnRange(r.Offset, r.Size)
	req := &request{arrived: arrived, pages: int(count), read: r.Read, size: r.Size}
	if s.inFlight == 0 {
		s.busyStart = s.engine.Now()
	}
	s.inFlight++
	for i := ftl.LPN(0); i < count; i++ {
		if r.Read {
			s.readPage(first+i, req)
		} else {
			s.writePage(first+i, req)
		}
	}
	if !r.Read {
		// Writes may have drained free blocks below the watermark.
		s.runGC()
	}
}

// pageDone accounts one finished page of the request and completes it when
// all pages are in.
func (s *SSD) pageDone(req *request) {
	req.pages--
	if req.pages > 0 {
		return
	}
	now := s.engine.Now()
	s.inFlight--
	if s.inFlight == 0 {
		s.busySpan += now - s.busyStart
	}
	s.lastHostDone = now
	lat := now - req.arrived
	if req.read {
		s.readResp.Add(lat)
		s.readBytes += uint64(req.size)
		s.readReqs++
	} else {
		s.writeResp.Add(lat)
		s.writeBytes += uint64(req.size)
		s.writeReqs++
	}
	// A completed request frees a submission-queue slot.
	if len(s.hostQueue) > 0 && (s.cfg.MaxQueueDepth == 0 || s.inFlight < s.cfg.MaxQueueDepth) {
		next := s.hostQueue[0]
		copy(s.hostQueue, s.hostQueue[1:])
		s.hostQueue = s.hostQueue[:len(s.hostQueue)-1]
		s.start(next.r, next.arrived)
	}
}

// readPage services one logical page read: memory access on the die (with
// the sensing count the wordline's current coding dictates), transfer on
// the channel, ECC decode, plus any read-retry rounds.
func (s *SSD) readPage(lpn ftl.LPN, req *request) {
	info, ok := s.f.Read(lpn)
	if !ok {
		// Reads of never-written data are served like a fastest-page
		// read (the controller returns zeroes after a mapping miss;
		// we charge a conservative full page read).
		s.unmapped++
		s.engine.After(s.cfg.Timing.ReadLatency(1)+s.cfg.Timing.Transfer+s.cfg.ECC.DecodeLatency, func() {
			s.pageDone(req)
		})
		return
	}
	params := s.cfg.ECC
	if info.IDA {
		// Merged wordlines occupy half the voltage states, widening
		// the read margins and cutting the raw bit error rate; their
		// hard decodes fail far less often.
		params = params.WithFailScale(idaRetryFailScale)
	}
	retries := params.SampleRetries(s.rng)
	s.readRound(info, req, retries, true)
}

// idaRetryFailScale scales the hard-decode failure probability for pages on
// IDA-reprogrammed wordlines: doubling the inter-state margin cuts RBER
// superlinearly (Cai et al. characterize roughly an order of magnitude per
// doubled margin; 0.25 is conservative).
const idaRetryFailScale = 0.25

// readRound performs one sensing+transfer+decode round; failed decodes
// trigger retry rounds that re-sense the wordline's read levels with
// adjusted voltages (Section V-F): a retry costs one extra pass over the
// page's read voltages plus a soft-bit transfer, so pages with fewer read
// levels — IDA-reprogrammed wordlines — also retry more cheaply.
//
// Following the DiskSim+SSD model the paper builds on, the channel is
// occupied for the whole memory access plus the data transfer (command
// issue, busy polling, data out — there is no cache-read pipelining), which
// is what couples queueing delay to the sensing count and lets a sensing
// reduction translate into response-time gains under load. The read first
// waits for its die to go idle (it cannot sense a die that is mid-program
// or mid-erase) without holding it.
func (s *SSD) readRound(info ftl.ReadInfo, req *request, retriesLeft int, first bool) {
	die := s.dieOf(info.Addr)
	ch := s.channelOf(info.Addr)
	var hold time.Duration
	if first {
		hold = s.cfg.Timing.ReadLatency(info.Senses) + s.cfg.Timing.Transfer
	} else {
		hold = s.cfg.Timing.ExtraSenseLatency(info.Senses) + s.cfg.Timing.Transfer/2
	}
	die.Acquire(sim.PrioHostRead, 0, func() {
		ch.Acquire(sim.PrioHostRead, hold, func() {
			s.engine.After(s.cfg.ECC.DecodeLatency, func() {
				if retriesLeft > 0 {
					s.readRound(info, req, retriesLeft-1, false)
					return
				}
				s.pageDone(req)
			})
		})
	})
}

// writePage services one logical page write: transfer to the chip on the
// channel, then the program on the die.
func (s *SSD) writePage(lpn ftl.LPN, req *request) {
	prog, err := s.f.Write(lpn, s.engine.Now())
	if err != nil {
		// Out of space mid-run: surface loudly, this is a sizing bug.
		panic("ssd: " + err.Error())
	}
	die := s.dieOf(prog.Addr)
	ch := s.channelOf(prog.Addr)
	ch.Acquire(sim.PrioHostWrite, s.cfg.Timing.Transfer, func() {
		die.Acquire(sim.PrioHostWrite, s.cfg.Timing.Program, func() {
			s.pageDone(req)
		})
	})
}
