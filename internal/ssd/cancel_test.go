package ssd

import (
	"context"
	"errors"
	"testing"
	"time"

	"idaflash/internal/faults"
	"idaflash/internal/sim"
)

// TestRunContextPreCancelled pins the cheapest exit: a context that is
// already dead must stop the run during the untimed phases, before the
// engine processes a single event.
func TestRunContextPreCancelled(t *testing.T) {
	s, err := New(testConfig(true, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = s.RunContext(ctx, testTrace(t, "pre", 400, 0.8), RunOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.Engine().Processed() != 0 {
		t.Errorf("engine processed %d events under a pre-cancelled context", s.Engine().Processed())
	}
}

// TestRunContextCancelMidRun cancels at a known simulated instant — an
// injected engine event — and checks the acceptance bound: the engine stops
// within 10 ms of simulated progress past the cancellation, and the partial
// stats cover only the work done so far.
func TestRunContextCancelMidRun(t *testing.T) {
	s, err := New(testConfig(true, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const cancelAt = sim.Time(2 * time.Millisecond)
	s.Engine().At(cancelAt, cancel)

	res, err := s.RunContext(ctx, testTrace(t, "midrun", 2000, 0.8), RunOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	now := s.Engine().Now()
	if now < cancelAt {
		t.Fatalf("engine stopped at %v, before the cancel event at %v", now, cancelAt)
	}
	if over := time.Duration(now - cancelAt); over > 10*time.Millisecond {
		t.Errorf("engine ran %v of simulated time past cancellation, want <= 10ms", over)
	}
	// Partial progress: the run started (some requests served) but did not
	// finish (a full run serves all measured requests).
	if res.Trace != "midrun" {
		t.Errorf("partial results lost the trace name: %q", res.Trace)
	}
	if res.ReadRequests+res.WriteRequests == 0 {
		t.Error("no requests completed before a 2ms-simulated cancel")
	}
	full, err := mustDevice(t).Run(testTrace(t, "midrun", 2000, 0.8), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.ReadRequests+res.WriteRequests, full.ReadRequests+full.WriteRequests; got >= want {
		t.Errorf("cancelled run completed %d requests, full run %d — cancellation did nothing", got, want)
	}
}

func mustDevice(t *testing.T) *SSD {
	t.Helper()
	s, err := New(testConfig(true, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRunContextDeadline runs under an already-expired wall-clock deadline
// (the deterministic form on any machine — a short live timeout may not be
// delivered on a single-CPU box before a CPU-bound run completes) and
// expects DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	s, err := New(testConfig(true, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	if _, err := s.RunContext(ctx, testTrace(t, "deadline", 2000, 0.8), RunOptions{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunContextCancelWithFaults cancels a fault-injection run mid-flight:
// the retry/timeout machinery must unwind cleanly under cancellation (this
// test is part of the -race suite).
func TestRunContextCancelWithFaults(t *testing.T) {
	cfg := testConfig(false, 0)
	cfg.Faults = faultScenario([]faults.Outage{{Device: 0, Unit: 0, After: 0}})
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Engine().At(sim.Time(2*time.Millisecond), cancel)
	res, err := s.RunContext(ctx, testTrace(t, "faults-cancel", 2000, 0.8), RunOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Trace != "faults-cancel" {
		t.Errorf("partial results lost the trace name: %q", res.Trace)
	}
}

// TestRunContextInvariantContained injects a panic into the middle of the
// simulation and expects it back as a typed *sim.InvariantError — stamped
// with the engine position — instead of a dead process, with the partial
// stats still snapshotted.
func TestRunContextInvariantContained(t *testing.T) {
	s, err := New(testConfig(true, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	const at = sim.Time(2 * time.Millisecond)
	s.Engine().At(at, func() { panic("injected corruption") })

	res, err := s.RunContext(context.Background(), testTrace(t, "invariant", 2000, 0.8), RunOptions{})
	var ie *sim.InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *sim.InvariantError", err, err)
	}
	if ie.At != at {
		t.Errorf("InvariantError.At = %v, want %v", ie.At, at)
	}
	if ie.Events == 0 {
		t.Error("InvariantError.Events = 0, want the engine's event count")
	}
	if len(ie.Stack) == 0 {
		t.Error("InvariantError carries no stack")
	}
	if res.Trace != "invariant" {
		t.Errorf("partial results lost the trace name: %q", res.Trace)
	}
}

// TestRunMoreContextCancel covers the follow-up phase: RunMore shares the
// cancellation plumbing with Run.
func TestRunMoreContextCancel(t *testing.T) {
	s, err := New(testConfig(true, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(testTrace(t, "phase1", 400, 0.8), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resume := s.Engine().Now()
	s.Engine().At(resume+sim.Time(2*time.Millisecond), cancel)
	if _, err := s.RunMoreContext(ctx, testTrace(t, "phase2", 2000, 0.5)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
