// Package ssd assembles the full simulated device: the FTL state machine,
// the discrete-event engine, per-die and per-channel resources with
// read-first scheduling, the ECC/read-retry stage, and background garbage
// collection and data refresh. It is the counterpart of the paper's
// DiskSim+SSD setup (Section IV-A) with the flash timing, data refresh, and
// IDA coding modules built in.
package ssd

import (
	"fmt"
	"math/rand"
	"time"

	"idaflash/internal/ecc"
	"idaflash/internal/faults"
	"idaflash/internal/flash"
	"idaflash/internal/ftl"
	"idaflash/internal/sim"
	"idaflash/internal/stats"
	"idaflash/internal/telemetry"
)

// Config describes a complete simulated SSD.
type Config struct {
	// Geometry is the physical shape. Required.
	Geometry flash.Geometry
	// Timing is the device timing. Required.
	Timing flash.TimingSpec
	// FTL carries the translation-layer options. Its Geometry field is
	// overwritten with Config.Geometry.
	FTL ftl.Options
	// ECC configures the decode/retry model; a zero value gets the
	// paper's early-lifetime parameters (20 us decode, no retries).
	ECC ecc.Params
	// RefreshScanInterval is how often the refresh manager scans for due
	// blocks; defaults to one simulated minute.
	RefreshScanInterval time.Duration
	// MaxQueueDepth caps concurrently-serviced host requests, as a host
	// interface's submission queue would; arrivals beyond the cap wait
	// in a host-side FIFO (their wait counts toward response time).
	// Zero means unlimited.
	MaxQueueDepth int
	// Scheduler selects the die/channel arbitration policy. Empty means
	// read-first, the paper's policy (and the only one that reproduces
	// its results bit for bit).
	Scheduler sim.Policy
	// SchedulerMaxWait bounds lower-class starvation under the age-aware
	// policy; zero uses sim.DefaultAgeAwareMaxWait. Ignored otherwise.
	SchedulerMaxWait time.Duration
	// Seed drives the device-level randomness (ECC retry draws).
	Seed int64
	// Faults, when non-nil, attaches a deterministic fault-injection
	// scenario (internal/faults): wear-dependent program/erase failures
	// handled by the FTL, die/channel outages and transient read faults
	// handled by the host issue path with bounded retry. The injector's
	// draws are seeded from Seed, so fault campaigns replay bit for bit.
	Faults *faults.Scenario
	// FaultDevice is this device's array member index, used to filter the
	// scenario's per-device outages (0 for a single device).
	FaultDevice int
	// Telemetry, when non-nil, attaches a lifecycle recorder: request
	// spans (sampled per Telemetry.SampleEvery) and, with a positive
	// MetricsInterval, a fixed-interval time series of queue depths,
	// utilization, and background activity. Results.Telemetry carries
	// the export. Nil keeps the hot path allocation-free.
	Telemetry *telemetry.Config
}

// schedulerConfig bundles the scheduling knobs for sim consumption.
func (c Config) schedulerConfig() sim.SchedulerConfig {
	return sim.SchedulerConfig{Policy: c.Scheduler, MaxWait: c.SchedulerMaxWait}
}

func (c Config) withDefaults() (Config, error) {
	if err := c.Geometry.Validate(); err != nil {
		return c, err
	}
	if err := c.Timing.Validate(); err != nil {
		return c, err
	}
	if c.ECC.DecodeLatency == 0 {
		c.ECC = ecc.PaperParams(ecc.PhaseEarly)
		c.ECC.DecodeLatency = c.Timing.ECCDecode
	}
	if err := c.ECC.Validate(); err != nil {
		return c, err
	}
	if c.RefreshScanInterval == 0 {
		c.RefreshScanInterval = time.Minute
	}
	if c.RefreshScanInterval < 0 {
		return c, fmt.Errorf("ssd: RefreshScanInterval %v must be positive", c.RefreshScanInterval)
	}
	if c.MaxQueueDepth < 0 {
		return c, fmt.Errorf("ssd: MaxQueueDepth %d must be non-negative", c.MaxQueueDepth)
	}
	if c.Scheduler == "" {
		c.Scheduler = sim.PolicyReadFirst
	}
	if err := c.schedulerConfig().Validate(); err != nil {
		return c, err
	}
	if c.Telemetry != nil && c.Telemetry.MetricsInterval < 0 {
		return c, fmt.Errorf("ssd: Telemetry.MetricsInterval %v must be non-negative", c.Telemetry.MetricsInterval)
	}
	if err := c.Faults.Validate(); err != nil {
		return c, err
	}
	if c.FaultDevice < 0 {
		return c, fmt.Errorf("ssd: FaultDevice %d must be non-negative", c.FaultDevice)
	}
	c.FTL.Geometry = c.Geometry
	return c, nil
}

// SSD is one simulated device instance. Like the engine it runs on, it is
// single-goroutine by design.
type SSD struct {
	cfg    Config
	engine *sim.Engine
	f      *ftl.FTL
	rng    *rand.Rand

	dies     []*sim.Resource
	channels []*sim.Resource

	pageSize int

	// Stage state and instrumentation (see admission.go for the pipeline
	// overview).
	adm           admission
	dispatchStats DispatchStats
	flashStats    FlashStats

	// Free lists for the hot-path state (flashio.go, host.go): page
	// operations and request records recycle through these instead of
	// allocating per page/request. Sized by the peak in-flight depth.
	readOps  []*readOp
	writeOps []*writeOp
	requests []*request

	// Free lists for background charging (background.go): GC and refresh
	// jobs run on pooled state machines instead of closure chains. The
	// scan tick is a single reusable Action.
	gcOps      []*gcOp
	refreshOps []*refreshOp
	scan       *refreshScan

	// Fault injection (nil injector when no scenario is attached; see
	// faults.go for the recovery path).
	inj         *faults.Injector
	faultStats  FaultStats
	failedReads []FailedExtent

	// Host-visible accounting.
	lastHostDone sim.Time
	busyStart    sim.Time
	busySpan     time.Duration
	phaseStart   sim.Time
	readResp     stats.LatencyHist
	writeResp    stats.LatencyHist
	readBytes    uint64
	writeBytes   uint64
	readReqs     uint64
	writeReqs    uint64
	unmapped     uint64

	// Background accounting.
	gcBusy      time.Duration
	refreshBusy time.Duration
	peakInUse   int
	peakIDA     int

	scanning bool

	// Telemetry (nil when disabled; see telemetry.go).
	tel                 *telemetry.Recorder
	dieWatch, chanWatch *resourceWatch
	lastDieBusy         time.Duration
	lastChanBusy        time.Duration
	lastPerChanBusy     []time.Duration
	lastGCBusy          time.Duration
	lastRefreshBusy     time.Duration
}

// New builds an SSD from the config.
func New(cfg Config) (*SSD, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &SSD{
		cfg:      cfg,
		engine:   sim.NewEngine(),
		rng:      rand.New(rand.NewSource(cfg.Seed ^ 0x53534421)),
		pageSize: cfg.Geometry.PageSizeBytes,
		adm:      admission{maxDepth: cfg.MaxQueueDepth},
	}
	// The telemetry recorder hangs off the FTL's operation hooks, so it
	// must exist before the FTL; hookFTL leaves cfg.FTL.Hooks nil when
	// telemetry is disabled.
	if cfg.Telemetry != nil {
		s.tel = telemetry.New(*cfg.Telemetry)
		s.dieWatch = &resourceWatch{}
		s.chanWatch = &resourceWatch{}
		cfg.FTL.Hooks = s.ftlHooks()
	}
	// The injector's media-failure draws feed the FTL through its
	// FaultModel seam. Only a non-nil injector is installed: a typed nil
	// in the interface would defeat the FTL's nil check.
	if cfg.Faults != nil {
		s.inj = faults.NewInjector(cfg.Faults, cfg.Seed, cfg.FaultDevice)
		cfg.FTL.Faults = s.inj
	}
	f, err := ftl.New(cfg.FTL)
	if err != nil {
		return nil, err
	}
	s.f = f
	// Every resource gets its own scheduler instance: schedulers hold the
	// queue state.
	sched := cfg.schedulerConfig()
	s.dies = make([]*sim.Resource, cfg.Geometry.Dies())
	for i := range s.dies {
		inst, err := sched.New()
		if err != nil {
			return nil, err // unreachable: withDefaults validated the config
		}
		s.dies[i] = sim.NewResourceScheduled(s.engine, fmt.Sprintf("die%d", i), inst)
		if s.dieWatch != nil {
			s.dies[i].SetHook(s.dieWatch)
		}
	}
	s.channels = make([]*sim.Resource, cfg.Geometry.Channels)
	for i := range s.channels {
		inst, err := sched.New()
		if err != nil {
			return nil, err
		}
		s.channels[i] = sim.NewResourceScheduled(s.engine, fmt.Sprintf("ch%d", i), inst)
		if s.chanWatch != nil {
			s.channels[i].SetHook(s.chanWatch)
		}
	}
	return s, nil
}

// Reset returns the device to the state New(cfg) would produce, reusing the
// structures that dominate construction cost: the engine's event heap, the
// FTL's dense L2P and block tables (via ftl.Reset's pool), the scheduler
// ring buffers, the latency-histogram buckets, and the op/request free
// lists all keep their backing storage. The geometry must match the one the
// device was built with — every table is sized for it — so pooled devices
// are keyed by geometry; any other config field may change between runs. A
// reset device is observably identical to a fresh one: same rng streams,
// same resource state, same zeroed accounting.
//
// Reset must not be called while a run is in progress. On error the device
// is partially reinitialized and must be discarded, not reused.
func (s *SSD) Reset(cfg Config) error {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return err
	}
	if cfg.Geometry != s.cfg.Geometry {
		return fmt.Errorf("ssd: reset geometry %+v does not match device %+v", cfg.Geometry, s.cfg.Geometry)
	}
	sameSched := s.cfg.Scheduler == cfg.Scheduler && s.cfg.SchedulerMaxWait == cfg.SchedulerMaxWait

	s.engine.Reset()
	s.rng = rand.New(rand.NewSource(cfg.Seed ^ 0x53534421))
	clear(s.adm.queue)
	s.adm = admission{maxDepth: cfg.MaxQueueDepth, queue: s.adm.queue[:0]}

	// The telemetry recorder is rebuilt per run (never pooled): exported
	// spans and series outlive the run, so they must not alias reused
	// storage. Same for the injector — it is cheap and seed-derived.
	s.tel, s.dieWatch, s.chanWatch = nil, nil, nil
	if cfg.Telemetry != nil {
		s.tel = telemetry.New(*cfg.Telemetry)
		s.dieWatch = &resourceWatch{}
		s.chanWatch = &resourceWatch{}
		cfg.FTL.Hooks = s.ftlHooks()
	}
	s.inj = nil
	if cfg.Faults != nil {
		s.inj = faults.NewInjector(cfg.Faults, cfg.Seed, cfg.FaultDevice)
		cfg.FTL.Faults = s.inj
	}
	if err := s.f.Reset(cfg.FTL); err != nil {
		return err
	}
	s.cfg = cfg
	s.pageSize = cfg.Geometry.PageSizeBytes

	// Resources reset in place when the scheduling discipline is unchanged;
	// a different discipline rebuilds the per-resource scheduler instances
	// exactly as New would.
	sched := cfg.schedulerConfig()
	for i := range s.dies {
		if sameSched {
			s.dies[i].Reset()
		} else {
			inst, err := sched.New()
			if err != nil {
				return err
			}
			s.dies[i] = sim.NewResourceScheduled(s.engine, fmt.Sprintf("die%d", i), inst)
		}
		if s.dieWatch != nil {
			s.dies[i].SetHook(s.dieWatch)
		}
	}
	for i := range s.channels {
		if sameSched {
			s.channels[i].Reset()
		} else {
			inst, err := sched.New()
			if err != nil {
				return err
			}
			s.channels[i] = sim.NewResourceScheduled(s.engine, fmt.Sprintf("ch%d", i), inst)
		}
		if s.chanWatch != nil {
			s.channels[i].SetHook(s.chanWatch)
		}
	}

	s.faultStats = FaultStats{}
	s.failedReads = nil
	s.lastHostDone = 0
	s.busyStart = 0
	s.busySpan = 0
	s.phaseStart = 0
	s.readResp.Reset()
	s.writeResp.Reset()
	s.readBytes, s.writeBytes = 0, 0
	s.readReqs, s.writeReqs = 0, 0
	s.unmapped = 0
	s.gcBusy, s.refreshBusy = 0, 0
	s.peakInUse, s.peakIDA = 0, 0
	s.scanning = false
	if s.scan != nil {
		s.scan.moreWork = nil
	}
	s.dispatchStats = DispatchStats{}
	s.flashStats = FlashStats{}
	s.lastDieBusy, s.lastChanBusy = 0, 0
	s.lastPerChanBusy = nil
	s.lastGCBusy, s.lastRefreshBusy = 0, 0
	return nil
}

// fail aborts the in-progress run: the engine's loop stops after the event
// in flight and the run returns err. First error wins; callbacks use it to
// turn mid-simulation FTL failures into a failed run instead of a panic.
func (s *SSD) fail(err error) { s.engine.Stop(err) }

// Telemetry exposes the device's recorder (nil when disabled).
func (s *SSD) Telemetry() *telemetry.Recorder { return s.tel }

// Engine exposes the simulation engine (tests and advanced drivers).
func (s *SSD) Engine() *sim.Engine { return s.engine }

// FTL exposes the translation layer (tests and experiments).
func (s *SSD) FTL() *ftl.FTL { return s.f }

// Config returns the configuration after defaulting.
func (s *SSD) Config() Config { return s.cfg }

// dieOf returns the die resource serving a flash address.
func (s *SSD) dieOf(a flash.PageAddr) *sim.Resource {
	return s.dies[s.cfg.Geometry.DieOf(a.Plane)]
}

// channelOf returns the channel resource serving a flash address.
func (s *SSD) channelOf(a flash.PageAddr) *sim.Resource {
	return s.channels[s.cfg.Geometry.ChannelOf(a.Plane)]
}
