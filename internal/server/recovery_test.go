package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"idaflash"
	"idaflash/internal/experiments"
	"idaflash/internal/farm"
	"idaflash/internal/results"
	"idaflash/internal/results/errfs"
	"idaflash/internal/workload"
)

// crashJournal authors the journal a SIGKILLed server leaves behind: a job
// spec plus the completions that were recorded before the crash, no
// terminal record.
func crashJournal(t *testing.T, dir string, id string, points []experiments.Point, done []farm.PointResult) *farm.Journal {
	t.Helper()
	jn, err := farm.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, err := jn.Create(id, farm.JobSpec{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range done {
		l.Point(pr)
	}
	l.Close()
	return jn
}

func specPoints(n int) []experiments.Point {
	pts := make([]experiments.Point, n)
	for i := range pts {
		pts[i] = experiments.Point{
			Profile: workload.Profile{Name: fmt.Sprintf("prof%d", i)},
			System:  idaflash.System{Name: "sys"},
		}
	}
	return pts
}

// TestServerResumesJournaledJob: a restarted server re-registers the
// crashed job under its original ID, re-runs only the unrecorded points,
// and both the poll and stream views show one contiguous event log.
func TestServerResumesJournaledJob(t *testing.T) {
	pts := specPoints(4)
	prerecorded := farm.PointResult{Index: 2, Profile: "prof2", System: "sys",
		Results: json.RawMessage(`{"trace":"prof2/sys","pre":true}`)}
	jn := crashJournal(t, t.TempDir(), "j5", pts, []farm.PointResult{prerecorded})

	var ran atomic.Int64
	s := stubServer(Config{Workers: 2, Journal: jn}, traceRun(&ran))
	if n := s.RecoverJobs(); n != 1 {
		t.Fatalf("RecoverJobs = %d, want 1", n)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The job answers under its pre-crash ID immediately, marked recovered.
	var st farm.Status
	getJSON(t, ts, "/v1/jobs/j5", &st)
	if !st.Recovered || st.Total != 4 {
		t.Fatalf("recovered status %+v", st)
	}

	deadline := time.Now().Add(5 * time.Second)
	for st.State != farm.StateDone {
		if time.Now().After(deadline) {
			t.Fatalf("job did not finish: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
		getJSON(t, ts, "/v1/jobs/j5", &st)
	}
	if st.Completed != 4 || st.Failed != 0 || st.NextEvent != 4 {
		t.Fatalf("final status %+v", st)
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("ran %d points, want 3 (the journaled one must not re-run)", got)
	}

	// A client resuming its pre-crash stream offset gets the missing
	// events and the terminal status — no gap, and the journaled point's
	// payload replays verbatim from offset 0.
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/j5?watch=ndjson&from=1")
	if err != nil {
		t.Fatal(err)
	}
	evs := readNDJSON(t, resp.Body)
	resp.Body.Close()
	var pointEvents, doneEvents int
	for _, ev := range evs {
		if ev.Point != nil {
			pointEvents++
		}
		if ev.Done != nil {
			doneEvents++
		}
	}
	if pointEvents != 3 || doneEvents != 1 {
		t.Fatalf("resume from=1: %d point events, %d done events", pointEvents, doneEvents)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/jobs/j5?watch=ndjson&from=0")
	if err != nil {
		t.Fatal(err)
	}
	all := readNDJSON(t, resp.Body)
	resp.Body.Close()
	// Stream framing: one job header, four points, one done.
	if len(all) != 6 || all[0].Job == nil || all[1].Point == nil {
		t.Fatalf("replay from 0: %d events, first %+v", len(all), all[0])
	}
	if string(all[1].Point.Results) != string(prerecorded.Results) {
		t.Fatalf("journaled payload not replayed verbatim: %s", all[1].Point.Results)
	}

	// /statz surfaces the recovery.
	var z Statz
	getJSON(t, ts, "/statz", &z)
	if z.Jobs.Recovered != 1 {
		t.Errorf("statz jobs.recovered = %d", z.Jobs.Recovered)
	}

	// The finished job journaled its terminal state: nothing to recover on
	// the next restart.
	recs, _ := jn.Scan()
	if len(recs) != 0 {
		t.Errorf("finished job still recoverable after restart: %d", len(recs))
	}
}

// TestServerRecoveredJobCountsForDrain: Drain waits for a recovered job the
// same way it waits for a submitted one.
func TestServerRecoveredJobCountsForDrain(t *testing.T) {
	jn := crashJournal(t, t.TempDir(), "j1", specPoints(2), nil)
	var ran atomic.Int64
	s := stubServer(Config{Workers: 2, Journal: jn}, traceRun(&ran))
	if n := s.RecoverJobs(); n != 1 {
		t.Fatal("no job recovered")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}
	if ran.Load() != 2 {
		t.Errorf("drain returned before the recovered job ran: %d", ran.Load())
	}
}

// TestReadyzReportsDegradedStore: a persistently failing disk flips the
// store memory-only; /readyz stays 200 (the server still serves) but
// carries the degraded detail, and /statz exposes the counters.
func TestReadyzReportsDegradedStore(t *testing.T) {
	fs := errfs.New(nil, 1)
	fs.FailNext(errfs.OpRead, 1000, errfs.EIO)
	d, err := results.OpenDiskOptions(t.TempDir(), results.DiskOptions{
		FS:            fs,
		FailThreshold: 2,
		Sleep:         func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := stubServer(Config{Workers: 1}, traceRun(nil))
	s.ResultStore().SetBlobs(d.Sub(".json"))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var body map[string]string
	getJSON(t, ts, "/readyz", &body)
	if body["store"] != "ok" {
		t.Fatalf("healthy readyz %v", body)
	}

	blobs := d.Sub(".json")
	blobs.Get("a")
	blobs.Get("b")

	getJSON(t, ts, "/readyz", &body)
	if body["status"] != "ready" || body["store"] != "degraded" {
		t.Fatalf("degraded readyz %v", body)
	}
	var z Statz
	getJSON(t, ts, "/statz", &z)
	if z.Results.Disk == nil || !z.Results.Disk.Degraded || z.Results.Disk.Errors == 0 {
		t.Fatalf("statz results.disk %+v", z.Results.Disk)
	}
}

// TestReadyzOmitsStoreWhenMemoryOnly: without a disk tier there is nothing
// to degrade, and the field stays absent rather than implying health.
func TestReadyzOmitsStoreWhenMemoryOnly(t *testing.T) {
	s := stubServer(Config{Workers: 1}, traceRun(nil))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var body map[string]string
	getJSON(t, ts, "/readyz", &body)
	if _, ok := body["store"]; ok {
		t.Fatalf("memory-only readyz grew a store field: %v", body)
	}
}

// getJSON fetches a URL and decodes its JSON body.
func getJSON(t *testing.T, ts *httptest.Server, path string, into any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
}
