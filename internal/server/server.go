// Package server exposes the experiment runner as a hardened HTTP JSON
// service: a bounded worker pool with admission control that sheds load
// (429 + Retry-After) when the queue cap is hit, per-request deadlines
// merged with client disconnects, panic-recovery middleware over the
// already-contained simulation entry points, health and readiness probes,
// and a graceful drain for SIGTERM — in-flight runs get a drain deadline,
// queued runs are rejected, and /readyz flips to 503 the moment the drain
// begins so load balancers stop routing here.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"idaflash"
	"idaflash/internal/experiments"
	"idaflash/internal/farm"
	"idaflash/internal/results"
	"idaflash/internal/workload"
)

// Config tunes the service.
type Config struct {
	// Workers caps concurrently-executing simulations; defaults to
	// GOMAXPROCS. Requests beyond it queue (up to QueueDepth) rather than
	// run.
	Workers int
	// QueueDepth caps requests admitted but not yet executing; beyond
	// Workers+QueueDepth the service sheds with 429. Defaults to
	// 2*Workers.
	QueueDepth int
	// DefaultTimeout bounds a run that names no timeout of its own;
	// defaults to 2 minutes.
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request timeout a client may ask for;
	// defaults to 10 minutes.
	MaxTimeout time.Duration
	// RetryAfter is the hint returned with a 429; defaults to 1s.
	RetryAfter time.Duration
	// Requests is the default per-trace request budget (see
	// experiments.Options.Requests); zero uses that package's default.
	Requests int
	// Log receives one line per completed request; nil discards.
	Log *log.Logger
	// Journal, when set, makes batch jobs durable: submissions write a
	// per-job write-ahead log under the store root, and RecoverJobs resumes
	// unfinished jobs (same ID, contiguous event log) after a restart.
	Journal *farm.Journal
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Stats are the service's lifetime counters, exposed at /v1/stats.
type Stats struct {
	Accepted  uint64 `json:"accepted"`
	Shed      uint64 `json:"shed"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	Panics    uint64 `json:"panics"`
	InFlight  int64  `json:"in_flight"`
	Draining  bool   `json:"draining"`
}

// Server is the HTTP service state. Build with New, mount Handler on an
// http.Server, and call BeginDrain/Drain on shutdown.
type Server struct {
	cfg    Config
	runner *experiments.Runner
	// run executes one simulation; the runner's memoized RunContext in
	// production, replaced by tests that need controllable latency.
	run func(context.Context, idaflash.Profile, idaflash.System) (idaflash.Results, error)
	// results memoizes canonical result payloads by the experiments memo
	// key; with a persistent blob tier attached (ResultStore().SetBlobs)
	// identical points are served byte-identical across restarts.
	results *results.Store
	// farm owns batch jobs, sharding their points across the same workers
	// channel the single-run endpoint uses.
	farm *farm.Manager

	// Two-level admission. tokens has Workers+QueueDepth slots and is
	// acquired without blocking: failure means the queue cap is hit and
	// the request is shed with 429. workers has Workers slots and is
	// acquired blocking (with the request context and drain signal), so
	// token holders beyond the worker count are the bounded queue.
	tokens  chan struct{}
	workers chan struct{}

	// Drain state. draining flips once; drainCh closes at the same
	// moment so queued waiters wake. inflight tracks admitted requests;
	// runsCtx is the parent of every run's context, cancelled when the
	// drain deadline expires.
	draining   atomic.Bool
	drainOnce  sync.Once
	drainCh    chan struct{}
	inflight   sync.WaitGroup
	runsCtx    context.Context
	cancelRuns context.CancelFunc

	accepted, shed, completed, failed, cancelled, panics atomic.Uint64
	inflightN                                            atomic.Int64
	endpoints                                            endpointCounters
}

// endpointCounters are per-endpoint request totals for /statz. Go 1.22's
// mux does not expose the matched pattern on the request, so each handler
// bumps its own counter.
type endpointCounters struct {
	run, batch, jobs, profiles, stats, statz, healthz, readyz atomic.Uint64
}

func (e *endpointCounters) snapshot() map[string]uint64 {
	return map[string]uint64{
		"run":      e.run.Load(),
		"batch":    e.batch.Load(),
		"jobs":     e.jobs.Load(),
		"profiles": e.profiles.Load(),
		"stats":    e.stats.Load(),
		"statz":    e.statz.Load(),
		"healthz":  e.healthz.Load(),
		"readyz":   e.readyz.Load(),
	}
}

// counted wraps a handler with its endpoint counter.
func counted(c *atomic.Uint64, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c.Add(1)
		h(w, r)
	}
}

// New builds a server around a fresh experiments runner.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	runner := experiments.NewRunner(experiments.Options{
		Requests: cfg.Requests,
		Parallel: cfg.Workers,
	})
	s := &Server{
		cfg:     cfg,
		runner:  runner,
		run:     runner.RunContext,
		tokens:  make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		workers: make(chan struct{}, cfg.Workers),
		drainCh: make(chan struct{}),
	}
	s.runsCtx, s.cancelRuns = context.WithCancel(context.Background())
	s.results = results.NewStore(0)
	s.farm = farm.New(farm.Config{
		Slots:    s.workers,
		Run:      s.runPoint,
		Parent:   s.runsCtx,
		Classify: classifyRunError,
		Journal:  cfg.Journal,
	})
	return s
}

// RecoverJobs resumes unfinished journaled jobs and returns how many it
// found. Call once at startup, after the result store's blob tier is
// attached (so resumed points hit warm results) and before serving traffic.
// Each recovered job counts as in-flight work for Drain, like a freshly
// submitted batch.
func (s *Server) RecoverJobs() int {
	jobs := s.farm.Recover()
	for _, job := range jobs {
		job := job
		s.inflight.Add(1)
		go func() {
			<-job.Done()
			s.inflight.Done()
		}()
		if s.cfg.Log != nil {
			st := job.Status(false)
			s.cfg.Log.Printf("recovered job %s: %d/%d points already recorded",
				job.ID, st.NextEvent, st.Total)
		}
	}
	return len(jobs)
}

// ResultStore returns the server's result cache, so startup code can attach
// the persistent blob tier of the shared -store-dir root.
func (s *Server) ResultStore() *results.Store { return s.results }

// classifyRunError maps a non-context run error onto its wire kind, the
// same split writeRunError makes for single runs.
func classifyRunError(err error) string {
	if idaflash.IsInvariantError(err) {
		return "invariant"
	}
	return "internal"
}

// runStored executes one point through the result store: the canonical memo
// key addresses both the in-memory cache and the disk blob tier, concurrent
// identical points singleflight, and a hit returns the stored payload
// byte-identical to its cold computation.
func (s *Server) runStored(ctx context.Context, p idaflash.Profile, sys idaflash.System) (json.RawMessage, bool, error) {
	key, err := experiments.Key(p, sys)
	if err != nil {
		return nil, false, err
	}
	return s.results.GetOrCompute(ctx, key, func(ctx context.Context) ([]byte, error) {
		res, err := s.run(ctx, p, sys)
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	})
}

// runPoint adapts runStored to the farm's per-point contract.
func (s *Server) runPoint(ctx context.Context, pt experiments.Point) (json.RawMessage, bool, error) {
	return s.runStored(ctx, pt.Profile, pt.System)
}

// Handler returns the service mux wrapped in the panic-recovery middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", counted(&s.endpoints.run, s.handleRun))
	mux.HandleFunc("POST /v1/batch", counted(&s.endpoints.batch, s.handleBatch))
	mux.HandleFunc("GET /v1/jobs/{id}", counted(&s.endpoints.jobs, s.handleJob))
	mux.HandleFunc("GET /v1/profiles", counted(&s.endpoints.profiles, s.handleProfiles))
	mux.HandleFunc("GET /v1/stats", counted(&s.endpoints.stats, s.handleStats))
	mux.HandleFunc("GET /statz", counted(&s.endpoints.statz, s.handleStatz))
	mux.HandleFunc("GET /healthz", counted(&s.endpoints.healthz, s.handleHealthz))
	mux.HandleFunc("GET /readyz", counted(&s.endpoints.readyz, s.handleReadyz))
	return s.recoverPanics(mux)
}

// BeginDrain flips the server into draining mode: /readyz starts answering
// 503, new and queued runs are rejected, in-flight runs continue. Safe to
// call more than once.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
	})
}

// Drain waits for the in-flight runs to finish. When ctx expires first, the
// remaining runs are cancelled (they stop within the engine's polling
// bounds) and Drain waits for them to unwind before returning ctx's error.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelRuns()
		<-done
		return ctx.Err()
	}
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted:  s.accepted.Load(),
		Shed:      s.shed.Load(),
		Completed: s.completed.Load(),
		Failed:    s.failed.Load(),
		Cancelled: s.cancelled.Load(),
		Panics:    s.panics.Load(),
		InFlight:  s.inflightN.Load(),
		Draining:  s.draining.Load(),
	}
}

// RunRequest is the POST /v1/run body.
type RunRequest struct {
	// Profile names a paper or extra workload profile (GET /v1/profiles).
	Profile string `json:"profile"`
	// Requests overrides the per-trace request budget; zero uses the
	// server default.
	Requests int `json:"requests,omitempty"`
	// System selects the simulated device configuration.
	System SystemSpec `json:"system"`
	// TimeoutMs bounds the run; zero uses the server default, and values
	// above the server maximum are clamped to it.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// SystemSpec is the wire form of the device configuration knobs the service
// exposes.
type SystemSpec struct {
	IDA         bool    `json:"ida,omitempty"`
	ErrorRate   float64 `json:"error_rate,omitempty"`
	BitsPerCell int     `json:"bits_per_cell,omitempty"`
	// Coding selects the cell coding scheme by registry name ("ida",
	// "randio", "ilwc"); empty means the default ("ida").
	Coding    string `json:"coding,omitempty"`
	Scheduler string `json:"scheduler,omitempty"`
	Devices   int    `json:"devices,omitempty"`
	StripeKB  int    `json:"stripe_kb,omitempty"`
	Parity    bool   `json:"parity,omitempty"`
	// NoSnapshot forces the run to replay its aging preamble instead of
	// restoring it from the process-wide snapshot store.
	NoSnapshot bool `json:"no_snapshot,omitempty"`
}

// RunResponse is the POST /v1/run success body.
type RunResponse struct {
	Profile   string `json:"profile"`
	System    string `json:"system"`
	ElapsedMs int64  `json:"elapsed_ms"`
	// Cached reports the run was served from the result store without
	// executing a simulation.
	Cached  bool             `json:"cached"`
	Results idaflash.Results `json:"results"`
}

// errorBody is every non-2xx JSON payload. Kind is machine-matchable:
// "invalid", "shed", "draining", "cancelled", "deadline", "invariant",
// or "internal".
type errorBody struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, kind, msg string) {
	writeJSON(w, status, errorBody{Error: msg, Kind: kind})
}

// recoverPanics is the outermost middleware: a handler panic (the exported
// simulation API never panics, so this guards the service's own code)
// becomes a 500 instead of a dead process.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.panics.Add(1)
				if s.cfg.Log != nil {
					s.cfg.Log.Printf("panic serving %s %s: %v", r.Method, r.URL.Path, v)
				}
				// Best-effort: the handler may have written already.
				writeError(w, http.StatusInternalServerError, "internal",
					fmt.Sprintf("internal error: %v", v))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports readiness for new work: 503 once draining begins, so
// a load balancer or orchestrator routes around the instance while its
// in-flight runs finish. A degraded result-store disk is reported as a
// detail field but stays 200 — the server serves traffic uncached rather
// than failing runs, and flipping readiness would turn a sick disk into an
// outage.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining", "draining")
		return
	}
	body := map[string]string{"status": "ready"}
	if h := s.results.Health(); h != nil {
		body["store"] = "ok"
		if h.Degraded {
			body["store"] = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleProfiles(w http.ResponseWriter, _ *http.Request) {
	budget := s.runner.Options().Requests
	var names []string
	for _, p := range workload.PaperProfiles(budget) {
		names = append(names, p.Name)
	}
	for _, p := range workload.ExtraProfiles(budget) {
		names = append(names, p.Name)
	}
	writeJSON(w, http.StatusOK, map[string]any{"profiles": names})
}

// parse validates the request body into a runnable (profile, system, timeout).
func (s *Server) parse(r *http.Request) (idaflash.Profile, idaflash.System, time.Duration, error) {
	var req RunRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return idaflash.Profile{}, idaflash.System{}, 0, fmt.Errorf("decoding body: %w", err)
	}
	budget := req.Requests
	if budget == 0 {
		budget = s.runner.Options().Requests
	}
	if budget < 0 {
		return idaflash.Profile{}, idaflash.System{}, 0, fmt.Errorf("requests %d must be non-negative", budget)
	}
	profile, err := idaflash.ProfileByName(req.Profile, budget)
	if err != nil {
		return idaflash.Profile{}, idaflash.System{}, 0, err
	}
	sys, err := buildSystem(req.System)
	if err != nil {
		return idaflash.Profile{}, idaflash.System{}, 0, err
	}
	return profile, sys, s.clampTimeout(req.TimeoutMs), nil
}

// buildSystem turns the wire spec into a validated device configuration;
// shared by the single-run and batch endpoints.
func buildSystem(spec SystemSpec) (idaflash.System, error) {
	sched, err := idaflash.ParseSchedulerPolicy(spec.Scheduler)
	if err != nil {
		return idaflash.System{}, err
	}
	coding, err := idaflash.ParseCoding(spec.Coding)
	if err != nil {
		return idaflash.System{}, err
	}
	sys := idaflash.Baseline()
	if spec.IDA {
		sys = idaflash.IDA(spec.ErrorRate)
	}
	sys.Coding = coding
	if coding != idaflash.CodingIDA {
		sys.Name += "-" + coding
	}
	sys.BitsPerCell = spec.BitsPerCell
	sys.Scheduler = sched
	sys.Devices = spec.Devices
	sys.StripeKB = spec.StripeKB
	sys.Parity = spec.Parity
	sys.NoSnapshot = spec.NoSnapshot
	return sys, nil
}

// clampTimeout applies the server's default and ceiling to a request's
// timeout field.
func (s *Server) clampTimeout(ms int64) time.Duration {
	timeout := s.cfg.DefaultTimeout
	if ms > 0 {
		timeout = time.Duration(ms) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return timeout
}

// handleRun is the work endpoint: admission, deadline, execution, and the
// error-to-status mapping.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	profile, sys, timeout, err := s.parse(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid", err.Error())
		return
	}

	// Level 1: the shed gate. No token free means Workers running plus
	// QueueDepth queued; adding more would only grow latency unboundedly,
	// so the request is refused now, cheaply, with a retry hint.
	select {
	case s.tokens <- struct{}{}:
	default:
		s.shed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeError(w, http.StatusTooManyRequests, "shed", "queue full, retry later")
		return
	}
	defer func() { <-s.tokens }()
	s.accepted.Add(1)
	s.inflight.Add(1)
	s.inflightN.Add(1)
	defer func() {
		s.inflightN.Add(-1)
		s.inflight.Done()
	}()

	// The run context: client disconnect or per-request deadline, plus
	// the server-wide drain-deadline cancellation.
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	stop := context.AfterFunc(s.runsCtx, cancel)
	defer stop()

	// Level 2: the worker gate. Waiting here is the bounded queue; the
	// wait ends early when the client gives up or the drain begins
	// (queued runs are rejected — only already-executing runs get the
	// drain deadline).
	select {
	case s.workers <- struct{}{}:
	case <-ctx.Done():
		s.cancelled.Add(1)
		s.writeRunError(w, ctx.Err())
		return
	case <-s.drainCh:
		s.cancelled.Add(1)
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	start := time.Now()
	payload, cached, err := func() (json.RawMessage, bool, error) {
		// The worker slot is released on every exit, including a panic
		// unwinding out of the run seam (the exported simulation API never
		// panics, but a leaked slot would wedge the pool forever, so the
		// release must not depend on that contract). A panic is counted as
		// a failure here — keeping accepted = completed+cancelled+failed —
		// and re-raised for the recovery middleware to report.
		defer func() {
			<-s.workers
			if v := recover(); v != nil {
				s.failed.Add(1)
				panic(v)
			}
		}()
		return s.runStored(ctx, profile, sys)
	}()

	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.cancelled.Add(1)
		} else {
			s.failed.Add(1)
		}
		if s.cfg.Log != nil {
			s.cfg.Log.Printf("run %s/%s failed after %v: %v", profile.Name, sys.Name, time.Since(start).Round(time.Millisecond), err)
		}
		s.writeRunError(w, err)
		return
	}
	var res idaflash.Results
	if err := json.Unmarshal(payload, &res); err != nil {
		s.failed.Add(1)
		writeError(w, http.StatusInternalServerError, "internal",
			fmt.Sprintf("decoding stored result: %v", err))
		return
	}
	s.completed.Add(1)
	if s.cfg.Log != nil {
		s.cfg.Log.Printf("ran %s/%s in %v (cached=%v)", profile.Name, sys.Name,
			time.Since(start).Round(time.Millisecond), cached)
	}
	writeJSON(w, http.StatusOK, RunResponse{
		Profile:   profile.Name,
		System:    sys.Name,
		ElapsedMs: time.Since(start).Milliseconds(),
		Cached:    cached,
		Results:   res,
	})
}

// writeRunError maps a run error onto a status and kind: deadline → 504,
// cancellation → 503 (the client is gone, or the drain deadline hit),
// contained invariant violation → 500 with the simulation position, any
// other failure → 500.
func (s *Server) writeRunError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "deadline", "run exceeded its deadline")
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "cancelled", "run cancelled")
	case idaflash.IsInvariantError(err):
		writeError(w, http.StatusInternalServerError, "invariant", err.Error())
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}
