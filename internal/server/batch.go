package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"idaflash"
	"idaflash/internal/experiments"
	"idaflash/internal/farm"
	"idaflash/internal/results"
)

// maxBatchPoints bounds one job. The largest named sweep is ~110 points;
// the cap exists so a typo'd explicit list cannot enqueue unbounded work.
const maxBatchPoints = 1024

// BatchRequest is the POST /v1/batch body: one whole sweep per request,
// either a named experiment (figure8, sensitivity, cmp) or an explicit
// point list. Exactly one of Sweep and Points must be set.
type BatchRequest struct {
	// Sweep names a predefined experiment sweep (see experiments.SweepNames).
	Sweep string `json:"sweep,omitempty"`
	// Points lists explicit (profile, system) pairs.
	Points []BatchPoint `json:"points,omitempty"`
	// Requests overrides the per-trace request budget for every point.
	Requests int `json:"requests,omitempty"`
	// TimeoutMs bounds each point (not the job); zero uses the server
	// default, values above the maximum clamp to it.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Stream selects the progress transport: "sse" (default) streams
	// Server-Sent Events, "ndjson" streams one JSON object per line for
	// clients without an SSE parser, and "none" detaches immediately —
	// the response is a 202 job snapshot to poll via GET /v1/jobs/{id}.
	Stream string `json:"stream,omitempty"`
	// Detach keeps the job running if a streaming client disconnects
	// (resume via GET /v1/jobs/{id}). The default cancels the job's
	// remaining points on disconnect.
	Detach bool `json:"detach,omitempty"`
}

// BatchPoint is one explicit sweep point.
type BatchPoint struct {
	Profile string     `json:"profile"`
	System  SystemSpec `json:"system"`
}

// Statz is the GET /statz body: the operational counters idaload and CI
// assert on, beyond the lifetime run counters of /v1/stats.
type Statz struct {
	Server    Stats              `json:"server"`
	Endpoints map[string]uint64  `json:"endpoints"`
	Jobs      farm.Gauges        `json:"jobs"`
	Results   results.Stats      `json:"results"`
	Runtime   RuntimeGauges      `json:"runtime"`
	Arena     idaflash.PoolStats `json:"arena"`
}

// RuntimeGauges are the Go runtime's memory-pressure indicators, sampled at
// request time. Together with Arena they make the effect of device pooling
// observable in production: reuse hits climbing while HeapAlloc and the GC
// counters stay flat is the run-arena working as intended.
type RuntimeGauges struct {
	// HeapAllocBytes is the live heap (runtime.MemStats.HeapAlloc).
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	// NumGC is the completed GC cycle count since process start.
	NumGC uint32 `json:"num_gc"`
	// PauseTotalNs is the cumulative stop-the-world pause time.
	PauseTotalNs uint64 `json:"pause_total_ns"`
	// Goroutines is the current goroutine count.
	Goroutines int `json:"goroutines"`
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	writeJSON(w, http.StatusOK, Statz{
		Server:    s.Stats(),
		Endpoints: s.endpoints.snapshot(),
		Jobs:      s.farm.Gauges(),
		Results:   s.results.Stats(),
		Runtime: RuntimeGauges{
			HeapAllocBytes: ms.HeapAlloc,
			NumGC:          ms.NumGC,
			PauseTotalNs:   ms.PauseTotalNs,
			Goroutines:     runtime.NumGoroutine(),
		},
		Arena: idaflash.ArenaStats(),
	})
}

// batchPoints expands the request into concrete sweep points.
func (s *Server) batchPoints(req BatchRequest) ([]experiments.Point, error) {
	budget := req.Requests
	if budget == 0 {
		budget = s.runner.Options().Requests
	}
	if budget < 0 {
		return nil, fmt.Errorf("requests %d must be non-negative", req.Requests)
	}
	switch {
	case req.Sweep != "" && len(req.Points) > 0:
		return nil, fmt.Errorf("sweep and points are mutually exclusive")
	case req.Sweep != "":
		return experiments.Sweep(req.Sweep, budget)
	case len(req.Points) == 0:
		return nil, fmt.Errorf("batch names no sweep and no points")
	case len(req.Points) > maxBatchPoints:
		return nil, fmt.Errorf("batch of %d points exceeds the cap of %d", len(req.Points), maxBatchPoints)
	}
	pts := make([]experiments.Point, 0, len(req.Points))
	for i, bp := range req.Points {
		profile, err := idaflash.ProfileByName(bp.Profile, budget)
		if err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		sys, err := buildSystem(bp.System)
		if err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		pts = append(pts, experiments.Point{Profile: profile, System: sys})
	}
	return pts, nil
}

// handleBatch admits one sweep as a farm job and streams its progress. The
// job rides the farm's own admission (active-job cap) rather than the
// request token gate: a stream held open for minutes must not starve the
// cheap single-run queue.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	var req BatchRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid", fmt.Sprintf("decoding body: %v", err))
		return
	}
	stream := req.Stream
	if stream == "" {
		stream = "sse"
	}
	if stream != "sse" && stream != "ndjson" && stream != "none" {
		writeError(w, http.StatusBadRequest, "invalid", fmt.Sprintf("unknown stream mode %q", stream))
		return
	}
	points, err := s.batchPoints(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid", err.Error())
		return
	}
	job, err := s.farm.Submit(points, farm.SubmitOptions{PointTimeout: s.clampTimeout(req.TimeoutMs)})
	switch {
	case errors.Is(err, farm.ErrBusy):
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeError(w, http.StatusTooManyRequests, "shed", "too many active jobs, retry later")
		return
	case errors.Is(err, farm.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "invalid", err.Error())
		return
	}
	// The job counts against the drain: a graceful shutdown waits for its
	// points (or cancels them at the drain deadline) before exiting.
	s.inflight.Add(1)
	go func() {
		<-job.Done()
		s.inflight.Done()
	}()
	if s.cfg.Log != nil {
		s.cfg.Log.Printf("batch %s: %d points (sweep=%q stream=%s)", job.ID, len(points), req.Sweep, stream)
	}

	if stream == "none" {
		writeJSON(w, http.StatusAccepted, job.Status(false))
		return
	}
	s.streamJob(w, r, job, 0, stream == "sse", !req.Detach)
}

// handleJob resolves a job: a JSON snapshot with every recorded point by
// default, or — with ?watch=sse|ndjson&from=N — a resumed progress stream
// starting at event offset N (a previous Status's next_event). Watchers
// never cancel the job on disconnect; only the submitting stream may.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job := s.farm.Get(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, "unknown", "no such job (never submitted, or evicted)")
		return
	}
	watch := r.URL.Query().Get("watch")
	if watch == "" {
		writeJSON(w, http.StatusOK, job.Status(true))
		return
	}
	if watch != "sse" && watch != "ndjson" {
		writeError(w, http.StatusBadRequest, "invalid", fmt.Sprintf("unknown watch mode %q", watch))
		return
	}
	from := 0
	if f := r.URL.Query().Get("from"); f != "" {
		n, err := strconv.Atoi(f)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "invalid", fmt.Sprintf("bad from offset %q", f))
			return
		}
		from = n
	}
	s.streamJob(w, r, job, from, watch == "sse", false)
}

// streamJob writes a job's progress until the job ends or the client goes
// away. SSE framing carries named events (job, point, done); the ndjson
// fallback wraps the same payloads one JSON object per line. Each event is
// flushed immediately — progress is the point of the stream.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, job *farm.Job, from int, sse, cancelOnDisconnect bool) {
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	writeEvent := func(name string, v any) {
		b, err := json.Marshal(v)
		if err != nil {
			return
		}
		if sse {
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, b)
		} else {
			fmt.Fprintf(w, "{%q:%s}\n", name, b)
		}
		_ = rc.Flush()
	}
	writeEvent("job", job.Status(false))

	events, stop := job.Subscribe(from)
	defer stop()
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return
			}
			switch {
			case ev.Point != nil:
				writeEvent("point", ev.Point)
			case ev.Done != nil:
				writeEvent("done", ev.Done)
			}
		case <-r.Context().Done():
			if cancelOnDisconnect {
				job.Cancel()
				if s.cfg.Log != nil {
					s.cfg.Log.Printf("batch %s: client disconnected, cancelling", job.ID)
				}
			}
			return
		}
	}
}
