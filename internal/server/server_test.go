package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"idaflash"
	"idaflash/internal/sim"
)

// stubServer builds a server whose run seam is replaced: the stub blocks
// until its context ends or release closes, so tests control run latency
// without simulating anything.
func stubServer(cfg Config, run func(context.Context, idaflash.Profile, idaflash.System) (idaflash.Results, error)) *Server {
	s := New(cfg)
	s.run = run
	return s
}

// blockingRun returns a run stub that parks until release closes (or the
// context ends first), counting the runs started.
func blockingRun(release <-chan struct{}, started *atomic.Int64) func(context.Context, idaflash.Profile, idaflash.System) (idaflash.Results, error) {
	return func(ctx context.Context, p idaflash.Profile, sys idaflash.System) (idaflash.Results, error) {
		if started != nil {
			started.Add(1)
		}
		select {
		case <-release:
			return idaflash.Results{Trace: p.Name}, nil
		case <-ctx.Done():
			return idaflash.Results{Trace: p.Name}, ctx.Err()
		}
	}
}

func runBody(t *testing.T, extra string) *bytes.Reader {
	t.Helper()
	return bytes.NewReader([]byte(`{"profile":"proj_3"` + extra + `}`))
}

func postRun(ts *httptest.Server, body io.Reader) (*http.Response, errorBody, error) {
	resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json", body)
	if err != nil {
		return nil, errorBody{}, err
	}
	defer resp.Body.Close()
	var eb errorBody
	b, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(b, &eb)
	return resp, eb, nil
}

func TestRunEndpointSuccess(t *testing.T) {
	s := stubServer(Config{Workers: 2}, func(ctx context.Context, p idaflash.Profile, sys idaflash.System) (idaflash.Results, error) {
		return idaflash.Results{Trace: p.Name, ReadRequests: 42}, nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _, err := postRun(ts, runBody(t, `,"system":{"ida":true,"error_rate":0.2}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var rr RunResponse
	resp2, err := ts.Client().Post(ts.URL+"/v1/run", "application/json", runBody(t, `,"system":{"ida":true,"error_rate":0.2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.Profile != "proj_3" || rr.System != "IDA-E20" || rr.Results.ReadRequests != 42 {
		t.Errorf("response = %+v", rr)
	}
	if got := s.Stats().Completed; got != 2 {
		t.Errorf("completed = %d, want 2", got)
	}
}

// TestRunEndpointCodingSelection checks the "coding" request field reaches
// the run as a validated System.Coding and shows up in the system label.
func TestRunEndpointCodingSelection(t *testing.T) {
	var gotSys idaflash.System
	s := stubServer(Config{Workers: 1}, func(ctx context.Context, p idaflash.Profile, sys idaflash.System) (idaflash.Results, error) {
		gotSys = sys
		return idaflash.Results{Trace: p.Name, Coding: sys.Coding}, nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json",
		runBody(t, `,"system":{"ida":true,"error_rate":0.2,"coding":"randio"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var rr RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if gotSys.Coding != idaflash.CodingRandIO {
		t.Errorf("run saw Coding %q, want %q", gotSys.Coding, idaflash.CodingRandIO)
	}
	if rr.System != "IDA-E20-randio" || rr.Results.Coding != idaflash.CodingRandIO {
		t.Errorf("response = %+v", rr)
	}
}

func TestRunEndpointRejectsBadRequests(t *testing.T) {
	s := stubServer(Config{Workers: 1}, blockingRun(nil, nil))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{"profile":"no-such-workload"}`,
		`{"profile":"proj_3","unknown_field":1}`,
		`{"profile":"proj_3","requests":-5}`,
		`{"profile":"proj_3","system":{"scheduler":"bogus"}}`,
		`{"profile":"proj_3","system":{"coding":"gray"}}`,
		`not json`,
	} {
		resp, eb, err := postRun(ts, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest || eb.Kind != "invalid" {
			t.Errorf("body %q: status %d kind %q, want 400 invalid", body, resp.StatusCode, eb.Kind)
		}
	}
}

// TestShedWhenSaturated fills the worker and queue slots with parked runs,
// then expects the next request to bounce with 429 and a Retry-After hint
// instead of queueing without bound.
func TestShedWhenSaturated(t *testing.T) {
	release := make(chan struct{})
	var started atomic.Int64
	s := stubServer(Config{Workers: 1, QueueDepth: 1, RetryAfter: 3 * time.Second}, blockingRun(release, &started))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Fill the single worker slot and the single queue slot.
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, _, err := postRun(ts, runBody(t, ""))
			if err != nil {
				results <- -1
				return
			}
			results <- resp.StatusCode
		}()
	}
	// Wait until one run executes and the other holds the queue token.
	deadline := time.Now().Add(2 * time.Second)
	for started.Load() < 1 || s.Stats().InFlight < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("saturation never reached: started=%d stats=%+v", started.Load(), s.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	resp, eb, err := postRun(ts, runBody(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests || eb.Kind != "shed" {
		t.Fatalf("status %d kind %q, want 429 shed", resp.StatusCode, eb.Kind)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}
	if s.Stats().Shed != 1 {
		t.Errorf("shed counter = %d", s.Stats().Shed)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("parked request %d finished with %d", i, code)
		}
	}
}

// TestClientDisconnectCancelsRun: when the client goes away, the run's
// context must end so the simulation stops burning a worker slot.
func TestClientDisconnectCancelsRun(t *testing.T) {
	runCancelled := make(chan struct{})
	s := stubServer(Config{Workers: 1}, func(ctx context.Context, p idaflash.Profile, sys idaflash.System) (idaflash.Results, error) {
		<-ctx.Done()
		close(runCancelled)
		return idaflash.Results{}, ctx.Err()
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/run", runBody(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := ts.Client().Do(req)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the request reach the stub
	cancel()
	select {
	case <-runCancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("run context never cancelled after client disconnect")
	}
	if err := <-errCh; err == nil {
		t.Error("client saw a response despite cancelling")
	}
}

// TestDeadlineExceededMapsTo504: a run that outlives its requested deadline
// comes back as 504 with kind "deadline".
func TestDeadlineExceededMapsTo504(t *testing.T) {
	s := stubServer(Config{Workers: 1}, blockingRun(nil, nil)) // parks until ctx ends
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, eb, err := postRun(ts, runBody(t, `,"timeout_ms":30`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGatewayTimeout || eb.Kind != "deadline" {
		t.Fatalf("status %d kind %q, want 504 deadline", resp.StatusCode, eb.Kind)
	}
	if s.Stats().Cancelled != 1 {
		t.Errorf("cancelled counter = %d", s.Stats().Cancelled)
	}
}

// TestInvariantErrorMapsTo500: a contained simulation invariant violation is
// a 500 with kind "invariant", not a dead process.
func TestInvariantErrorMapsTo500(t *testing.T) {
	s := stubServer(Config{Workers: 1}, func(ctx context.Context, p idaflash.Profile, sys idaflash.System) (idaflash.Results, error) {
		return idaflash.Results{}, fmt.Errorf("run failed: %w", &sim.InvariantError{Value: "injected", At: 42})
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, eb, err := postRun(ts, runBody(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError || eb.Kind != "invariant" {
		t.Fatalf("status %d kind %q, want 500 invariant", resp.StatusCode, eb.Kind)
	}
	if s.Stats().Failed != 1 {
		t.Errorf("failed counter = %d", s.Stats().Failed)
	}
}

// TestHandlerPanicRecovered: a panic in the service's own handler stack
// becomes a 500, and the process (and the next request) survives.
func TestHandlerPanicRecovered(t *testing.T) {
	s := stubServer(Config{Workers: 1}, func(ctx context.Context, p idaflash.Profile, sys idaflash.System) (idaflash.Results, error) {
		panic("handler-side bug")
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, eb, err := postRun(ts, runBody(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError || eb.Kind != "internal" {
		t.Fatalf("status %d kind %q, want 500 internal", resp.StatusCode, eb.Kind)
	}
	if s.Stats().Panics != 1 {
		t.Errorf("panics counter = %d", s.Stats().Panics)
	}
	// The pool token was returned: a healthy request still runs.
	s.run = func(ctx context.Context, p idaflash.Profile, sys idaflash.System) (idaflash.Results, error) {
		return idaflash.Results{}, nil
	}
	resp2, _, err := postRun(ts, runBody(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("request after panic: status %d", resp2.StatusCode)
	}
}

// TestReadyzFlipsOnDrain: /readyz answers 200 while serving, 503 the moment
// the drain begins; /healthz stays 200 throughout; new runs are rejected
// with kind "draining".
func TestReadyzFlipsOnDrain(t *testing.T) {
	s := stubServer(Config{Workers: 1}, blockingRun(nil, nil))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before drain = %d", code)
	}
	s.BeginDrain()
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain = %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz during drain = %d, want 200", code)
	}
	resp, eb, err := postRun(ts, runBody(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || eb.Kind != "draining" {
		t.Errorf("run during drain: status %d kind %q, want 503 draining", resp.StatusCode, eb.Kind)
	}
}

// TestDrainRejectsQueuedAndFinishesInflight: the request executing when the
// drain begins completes normally; the request waiting for a worker slot is
// rejected with 503 draining.
func TestDrainRejectsQueuedAndFinishesInflight(t *testing.T) {
	release := make(chan struct{})
	var started atomic.Int64
	s := stubServer(Config{Workers: 1, QueueDepth: 1}, blockingRun(release, &started))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type outcome struct {
		code int
		kind string
	}
	results := make(chan outcome, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, eb, err := postRun(ts, runBody(t, ""))
			if err != nil {
				results <- outcome{-1, err.Error()}
				return
			}
			results <- outcome{resp.StatusCode, eb.Kind}
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for started.Load() < 1 || s.Stats().InFlight < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("never saturated: stats=%+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	s.BeginDrain()
	// The queued request wakes on drainCh with 503; the executing one
	// still parks on release.
	first := <-results
	if first.code != http.StatusServiceUnavailable || first.kind != "draining" {
		t.Errorf("queued request: %+v, want 503 draining", first)
	}
	close(release)
	second := <-results
	if second.code != http.StatusOK {
		t.Errorf("in-flight request: %+v, want 200", second)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("Drain = %v", err)
	}
}

// TestDrainDeadlineCancelsInflight: when the drain context expires, the
// remaining runs are cancelled (their contexts end) and Drain returns after
// they unwind.
func TestDrainDeadlineCancelsInflight(t *testing.T) {
	var started atomic.Int64
	s := stubServer(Config{Workers: 1}, blockingRun(nil, &started)) // parks until ctx ends
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan outcome1, 1)
	go func() {
		resp, eb, err := postRun(ts, runBody(t, ""))
		if err != nil {
			done <- outcome1{-1, err.Error()}
			return
		}
		done <- outcome1{resp.StatusCode, eb.Kind}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for started.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("run never started")
		}
		time.Sleep(time.Millisecond)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(drainCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want context.DeadlineExceeded", err)
	}
	out := <-done
	if out.code != http.StatusServiceUnavailable || out.kind != "cancelled" {
		t.Errorf("cancelled run: %+v, want 503 cancelled", out)
	}
}

type outcome1 struct {
	code int
	kind string
}

// TestProfilesAndStatsEndpoints sanity-checks the read-only endpoints.
func TestProfilesAndStatsEndpoints(t *testing.T) {
	s := stubServer(Config{Workers: 1}, blockingRun(nil, nil))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/profiles")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var profiles struct {
		Profiles []string `json:"profiles"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&profiles); err != nil {
		t.Fatal(err)
	}
	if len(profiles.Profiles) < 11 {
		t.Errorf("only %d profiles listed", len(profiles.Profiles))
	}
	resp2, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Accepted != 0 || st.Draining {
		t.Errorf("fresh stats = %+v", st)
	}
}

// TestServerSoak hammers the service concurrently — successes, shed
// requests, one cancelling client, one deadline-bound run — and then checks
// the books balance: every accepted request reaches a terminal counter and
// nothing is left in flight. Run with -race in CI.
func TestServerSoak(t *testing.T) {
	var slow atomic.Bool
	s := stubServer(Config{Workers: 2, QueueDepth: 2, RetryAfter: time.Second},
		func(ctx context.Context, p idaflash.Profile, sys idaflash.System) (idaflash.Results, error) {
			if slow.Load() {
				select {
				case <-ctx.Done():
					return idaflash.Results{}, ctx.Err()
				case <-time.After(5 * time.Millisecond):
				}
			}
			return idaflash.Results{Trace: p.Name}, nil
		})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	var ok, shed, failed atomic.Int64
	for i := 0; i < 40; i++ {
		if i == 20 {
			slow.Store(true) // second half: runs park long enough to queue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch {
			case i%10 == 7: // a client that gives up immediately
				ctx, cancel := context.WithCancel(context.Background())
				req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/run", runBody(t, ""))
				go cancel()
				resp, err := ts.Client().Do(req)
				if err == nil {
					resp.Body.Close()
				}
			case i%10 == 3: // a run bounded by a tiny deadline
				resp, _, err := postRun(ts, runBody(t, `,"timeout_ms":1`))
				if err == nil && resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != http.StatusOK &&
					resp.StatusCode != http.StatusTooManyRequests {
					failed.Add(1)
				}
			default:
				resp, _, err := postRun(ts, runBody(t, ""))
				if err != nil {
					failed.Add(1)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusTooManyRequests:
					shed.Add(1)
				case http.StatusServiceUnavailable, http.StatusGatewayTimeout:
					// cancelled/deadline under load: accounted below
				default:
					failed.Add(1)
				}
			}
		}(i)
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Errorf("%d requests saw unexpected statuses", failed.Load())
	}
	if ok.Load() == 0 {
		t.Error("no request succeeded during the soak")
	}
	st := s.Stats()
	if st.InFlight != 0 {
		t.Errorf("in-flight = %d after the soak", st.InFlight)
	}
	if got := st.Completed + st.Cancelled + st.Failed; got != st.Accepted {
		t.Errorf("accounting leak: accepted=%d but completed+cancelled+failed=%d (%+v)", st.Accepted, got, st)
	}
}
