package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"idaflash"
	"idaflash/internal/farm"
)

// batchEvent is one parsed stream message (either framing).
type batchEvent struct {
	Job   *farm.Status      `json:"job"`
	Point *farm.PointResult `json:"point"`
	Done  *farm.Status      `json:"done"`
}

// readNDJSON parses a whole ndjson stream.
func readNDJSON(t *testing.T, body io.Reader) []batchEvent {
	t.Helper()
	var evs []batchEvent
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev batchEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad ndjson line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return evs
}

// postBatch sends a batch request and fails on transport errors.
func postBatch(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

const twoPoints = `{"stream":"ndjson","points":[
	{"profile":"usr_1","system":{"ida":true,"error_rate":0.2}},
	{"profile":"proj_3","system":{}}]}`

func traceRun(counter *atomic.Int64) func(context.Context, idaflash.Profile, idaflash.System) (idaflash.Results, error) {
	return func(_ context.Context, p idaflash.Profile, sys idaflash.System) (idaflash.Results, error) {
		if counter != nil {
			counter.Add(1)
		}
		return idaflash.Results{Trace: p.Name + "/" + sys.Name}, nil
	}
}

func TestBatchNDJSONStreamsEveryPoint(t *testing.T) {
	s := stubServer(Config{Workers: 2}, traceRun(nil))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postBatch(t, ts, twoPoints)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	evs := readNDJSON(t, resp.Body)
	if len(evs) != 4 { // job, 2 points, done
		t.Fatalf("stream carried %d events, want 4: %+v", len(evs), evs)
	}
	if evs[0].Job == nil || evs[0].Job.Total != 2 || evs[0].Job.State != farm.StateRunning {
		t.Fatalf("first event is not the job header: %+v", evs[0])
	}
	systems := map[string]bool{}
	for _, ev := range evs[1:3] {
		if ev.Point == nil || ev.Point.Error != "" {
			t.Fatalf("expected clean point event, got %+v", ev)
		}
		var res idaflash.Results
		if err := json.Unmarshal(ev.Point.Results, &res); err != nil {
			t.Fatalf("point payload: %v", err)
		}
		if res.Trace != ev.Point.Profile+"/"+ev.Point.System {
			t.Errorf("payload trace %q for point %s/%s", res.Trace, ev.Point.Profile, ev.Point.System)
		}
		systems[ev.Point.System] = true
	}
	if !systems["IDA-E20"] || !systems["Baseline"] {
		t.Errorf("systems seen: %v", systems)
	}
	done := evs[3].Done
	if done == nil || done.State != farm.StateDone || done.Completed != 2 || done.CacheHits != 0 {
		t.Fatalf("terminal event %+v", done)
	}
}

func TestBatchSSEFraming(t *testing.T) {
	s := stubServer(Config{Workers: 2}, traceRun(nil))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postBatch(t, ts, `{"points":[{"profile":"usr_1","system":{}}]}`)
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"event: job\ndata: {", "event: point\ndata: {", "event: done\ndata: {"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("stream missing %q:\n%s", want, raw)
		}
	}
}

// TestBatchRepeatServedFromCache is the tentpole contract: re-posting the
// same batch re-runs zero simulations and returns byte-identical payloads.
func TestBatchRepeatServedFromCache(t *testing.T) {
	var runs atomic.Int64
	s := stubServer(Config{Workers: 2}, traceRun(&runs))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	payloads := func() map[int]string {
		resp := postBatch(t, ts, twoPoints)
		defer resp.Body.Close()
		out := map[int]string{}
		for _, ev := range readNDJSON(t, resp.Body) {
			if ev.Point != nil {
				out[ev.Point.Index] = string(ev.Point.Results)
			}
		}
		return out
	}

	cold := payloads()
	if got := runs.Load(); got != 2 {
		t.Fatalf("cold batch ran %d simulations, want 2", got)
	}
	warm := payloads()
	if got := runs.Load(); got != 2 {
		t.Fatalf("repeat batch re-ran simulations (%d total)", got)
	}
	for idx, b := range cold {
		if warm[idx] != b {
			t.Errorf("point %d: cached payload differs from cold run:\n%s\n%s", idx, b, warm[idx])
		}
	}

	// The repeat's terminal event accounts every point as a cache hit.
	resp := postBatch(t, ts, twoPoints)
	defer resp.Body.Close()
	evs := readNDJSON(t, resp.Body)
	done := evs[len(evs)-1].Done
	if done == nil || done.CacheHits != 2 {
		t.Errorf("terminal event %+v, want 2 cache hits", done)
	}
}

// TestBatchDisconnectCancelsRemainingPoints: when the submitting SSE client
// goes away, the job's running point is cancelled, its queued points never
// start, the worker pool is released, and no goroutines leak.
func TestBatchDisconnectCancelsRemainingPoints(t *testing.T) {
	started := make(chan struct{}, 16)
	s := stubServer(Config{Workers: 1}, func(ctx context.Context, p idaflash.Profile, _ idaflash.System) (idaflash.Results, error) {
		if p.Name == "proj_3" { // the post-cancel health probe
			return idaflash.Results{Trace: p.Name}, nil
		}
		started <- struct{}{}
		<-ctx.Done()
		return idaflash.Results{}, ctx.Err()
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	body := `{"points":[
		{"profile":"usr_1","system":{}},
		{"profile":"usr_1","system":{"ida":true,"error_rate":0.2}},
		{"profile":"usr_1","system":{"ida":true,"error_rate":0.25}},
		{"profile":"usr_1","system":{"ida":true,"error_rate":0.3}}]}`
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/batch", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the job header so we can poll it after disconnecting.
	br := bufio.NewReader(resp.Body)
	var jobID string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var st farm.Status
			if err := json.Unmarshal([]byte(data), &st); err != nil {
				t.Fatal(err)
			}
			jobID = st.ID
			break
		}
	}
	<-started // the first point occupies the only worker slot
	cancel()  // client disconnects mid-batch
	resp.Body.Close()

	// The job converges to cancelled with all four points recorded and
	// none of the queued three ever started.
	deadline := time.Now().Add(5 * time.Second)
	var st farm.Status
	for {
		jr, err := ts.Client().Get(ts.URL + "/v1/jobs/" + jobID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(jr.Body).Decode(&st)
		jr.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State != farm.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never converged: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != farm.StateCancelled || st.Cancelled != 4 || len(st.Points) != 4 {
		t.Fatalf("job after disconnect: %+v", st)
	}
	if len(started) != 0 {
		t.Errorf("%d queued points started after disconnect", len(started))
	}

	// The worker slot is free again: a single run completes immediately.
	resp2, _, err := postRun(ts, runBody(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel run status %d", resp2.StatusCode)
	}

	// And nothing leaked: subscriber, job-watcher, and point goroutines all
	// unwound (the farm dispatcher predates the baseline). Keep-alive
	// connections hold read loops on both sides, so they are torn down
	// before counting.
	gDeadline := time.Now().Add(2 * time.Second)
	for {
		ts.Client().Transport.(*http.Transport).CloseIdleConnections()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(gDeadline) {
			t.Fatalf("goroutines: %d before, %d after disconnect handling", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBatchDetachedPollAndResume: stream "none" answers 202 immediately;
// the job is pollable and its stream resumable from an event offset.
func TestBatchDetachedPollAndResume(t *testing.T) {
	s := stubServer(Config{Workers: 2}, traceRun(nil))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postBatch(t, ts, `{"stream":"none","points":[
		{"profile":"usr_1","system":{}},
		{"profile":"proj_3","system":{}}]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var st farm.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatal("202 body names no job")
	}

	deadline := time.Now().Add(5 * time.Second)
	var poll farm.Status
	for {
		jr, err := ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(jr.Body).Decode(&poll); err != nil {
			t.Fatal(err)
		}
		jr.Body.Close()
		if poll.State == farm.StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", poll)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if poll.Completed != 2 || len(poll.Points) != 2 {
		t.Fatalf("poll body %+v", poll)
	}

	// Resuming from the end replays nothing but still closes with done;
	// resuming from 0 replays everything.
	jr, err := ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID + "?watch=ndjson&from=" + fmt.Sprint(poll.NextEvent))
	if err != nil {
		t.Fatal(err)
	}
	evs := readNDJSON(t, jr.Body)
	jr.Body.Close()
	points := 0
	for _, ev := range evs {
		if ev.Point != nil {
			points++
		}
	}
	if points != 0 || evs[len(evs)-1].Done == nil {
		t.Fatalf("resume-from-end stream: %+v", evs)
	}
	jr, err = ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID + "?watch=ndjson&from=0")
	if err != nil {
		t.Fatal(err)
	}
	evs = readNDJSON(t, jr.Body)
	jr.Body.Close()
	points = 0
	for _, ev := range evs {
		if ev.Point != nil {
			points++
		}
	}
	if points != 2 {
		t.Fatalf("full replay carried %d points, want 2", points)
	}
}

func TestBatchValidation(t *testing.T) {
	s := stubServer(Config{Workers: 1}, traceRun(nil))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{}`,
		`{"sweep":"no-such-sweep"}`,
		`{"sweep":"figure8","points":[{"profile":"usr_1","system":{}}]}`,
		`{"points":[{"profile":"no-such-workload","system":{}}]}`,
		`{"points":[{"profile":"usr_1","system":{"coding":"bogus"}}]}`,
		`{"stream":"telepathy","points":[{"profile":"usr_1","system":{}}]}`,
		`{"requests":-5,"points":[{"profile":"usr_1","system":{}}]}`,
	} {
		resp := postBatch(t, ts, body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/j999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestBatchJobCapSheds: submissions beyond the active-job cap bounce with
// 429 and a Retry-After hint, like the single-run shed gate.
func TestBatchJobCapSheds(t *testing.T) {
	release := make(chan struct{})
	s := stubServer(Config{Workers: 1, RetryAfter: 2 * time.Second}, blockingRun(release, nil))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	one := `{"stream":"none","points":[{"profile":"usr_1","system":{}}]}`
	for i := 0; i < 8; i++ { // the farm's default MaxJobs
		resp := postBatch(t, ts, one)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d: status %d", i, resp.StatusCode)
		}
	}
	resp := postBatch(t, ts, one)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap batch: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	close(release)
}

// TestStatzCounters: /statz carries per-endpoint request totals, farm
// gauges, and result-store hit/miss counters usable for CI assertions.
func TestStatzCounters(t *testing.T) {
	s := stubServer(Config{Workers: 2}, traceRun(nil))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	statz := func() Statz {
		resp, err := ts.Client().Get(ts.URL + "/statz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var z Statz
		if err := json.NewDecoder(resp.Body).Decode(&z); err != nil {
			t.Fatal(err)
		}
		return z
	}

	if z := statz(); z.Endpoints["statz"] != 1 || z.Endpoints["run"] != 0 {
		t.Fatalf("fresh statz: %+v", z.Endpoints)
	}

	// One cold run, one identical (cached) rerun.
	for i := 0; i < 2; i++ {
		resp, _, err := postRun(ts, runBody(t, ""))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run status %d", resp.StatusCode)
		}
	}
	resp := postBatch(t, ts, twoPoints)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	z := statz()
	if z.Endpoints["run"] != 2 || z.Endpoints["batch"] != 1 || z.Endpoints["statz"] != 2 {
		t.Errorf("endpoint counters %+v", z.Endpoints)
	}
	if z.Jobs.ActiveJobs != 0 || z.Jobs.QueuedPoints != 0 {
		t.Errorf("job gauges %+v after everything finished", z.Jobs)
	}
	// 2 distinct points computed (the single run's proj_3/Baseline is also
	// the batch's second point), 2 hits: the rerun and that shared point.
	if z.Results.Misses != 2 || z.Results.Hits != 2 {
		t.Errorf("result cache hits=%d misses=%d, want 2/2", z.Results.Hits, z.Results.Misses)
	}
	if z.Server.Completed != 2 {
		t.Errorf("server stats %+v", z.Server)
	}
	// Runtime gauges are sampled live: a serving process has a heap and at
	// least this handler's goroutine.
	if z.Runtime.HeapAllocBytes == 0 || z.Runtime.Goroutines == 0 {
		t.Errorf("runtime gauges %+v", z.Runtime)
	}
}

// TestRunCachedFlag: the second identical single run reports cached=true
// with an identical results payload.
func TestRunCachedFlag(t *testing.T) {
	var runs atomic.Int64
	s := stubServer(Config{Workers: 1}, traceRun(&runs))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func() RunResponse {
		resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json", runBody(t, ""))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rr RunResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		return rr
	}
	cold := get()
	warm := get()
	if cold.Cached || !warm.Cached {
		t.Errorf("cached flags: cold=%v warm=%v", cold.Cached, warm.Cached)
	}
	if runs.Load() != 1 {
		t.Errorf("simulation ran %d times", runs.Load())
	}
	cb, _ := json.Marshal(cold.Results)
	wb, _ := json.Marshal(warm.Results)
	if !bytes.Equal(cb, wb) {
		t.Errorf("cached run results differ:\n%s\n%s", cb, wb)
	}
}
