package flash

import (
	"testing"
)

func TestPaperTLCGeometry(t *testing.T) {
	g := PaperTLC()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.PagesPerBlock(); got != 192 {
		t.Errorf("pages/block = %d, want 192 (64 WL x TLC)", got)
	}
	if got := g.Chips(); got != 16 {
		t.Errorf("chips = %d, want 16", got)
	}
	if got := g.Planes(); got != 64 {
		t.Errorf("planes = %d, want 64", got)
	}
	if got := g.TotalBlocks(); got != 350208 {
		t.Errorf("total blocks = %d, want 350208 (paper Section III-C)", got)
	}
	// 512 GB-class capacity: 350208 blocks x 192 pages x 8 KB = 513.3 GB.
	gb := float64(g.CapacityBytes()) / 1e9
	if gb < 500 || gb > 560 {
		t.Errorf("capacity = %.1f GB, want ~512-550", gb)
	}
	if g.String() == "" {
		t.Error("String() empty")
	}
}

func TestGeometryValidate(t *testing.T) {
	bad := []func(*Geometry){
		func(g *Geometry) { g.Channels = 0 },
		func(g *Geometry) { g.ChipsPerChannel = -1 },
		func(g *Geometry) { g.DiesPerChip = 0 },
		func(g *Geometry) { g.PlanesPerDie = 0 },
		func(g *Geometry) { g.BlocksPerPlane = 0 },
		func(g *Geometry) { g.WordlinesPerBlock = 0 },
		func(g *Geometry) { g.PageSizeBytes = 0 },
		func(g *Geometry) { g.BitsPerCell = 0 },
		func(g *Geometry) { g.BitsPerCell = 9 },
	}
	for i, mutate := range bad {
		g := PaperTLC()
		mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: Validate() = nil, want error", i)
		}
	}
}

func TestPlaneCoordRoundTrip(t *testing.T) {
	g := PaperTLC()
	seen := make(map[PlaneCoord]bool)
	for p := PlaneID(0); int(p) < g.Planes(); p++ {
		c := g.Coord(p)
		if c.Channel < 0 || c.Channel >= g.Channels ||
			c.Chip < 0 || c.Chip >= g.ChipsPerChannel ||
			c.Die < 0 || c.Die >= g.DiesPerChip ||
			c.Plane < 0 || c.Plane >= g.PlanesPerDie {
			t.Fatalf("plane %d coord %+v out of range", p, c)
		}
		if seen[c] {
			t.Fatalf("plane %d coord %+v duplicated", p, c)
		}
		seen[c] = true
		if back := g.PlaneOf(c); back != p {
			t.Errorf("PlaneOf(Coord(%d)) = %d", p, back)
		}
	}
}

func TestDieAndChannelOf(t *testing.T) {
	g := PaperTLC()
	for p := PlaneID(0); int(p) < g.Planes(); p++ {
		c := g.Coord(p)
		wantDie := ((c.Channel*g.ChipsPerChannel)+c.Chip)*g.DiesPerChip + c.Die
		if got := g.DieOf(p); got != wantDie {
			t.Errorf("DieOf(%d) = %d, want %d", p, got, wantDie)
		}
		if got := g.ChannelOf(p); got != c.Channel {
			t.Errorf("ChannelOf(%d) = %d, want %d", p, got, c.Channel)
		}
	}
}

func TestAddrStrings(t *testing.T) {
	b := BlockAddr{Plane: 3, Block: 17}
	if b.String() != "p3/b17" {
		t.Errorf("BlockAddr string = %q", b.String())
	}
	p := PageAddr{BlockAddr: b, Page: 5}
	if p.String() != "p3/b17/pg5" {
		t.Errorf("PageAddr string = %q", p.String())
	}
}
