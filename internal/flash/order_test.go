package flash

import (
	"testing"

	"idaflash/internal/coding"
)

func TestProgramOrderCoversAllPagesOnce(t *testing.T) {
	for _, kind := range []OrderKind{OrderShadow, OrderSequential} {
		po := NewProgramOrder(64, 3, kind)
		if po.Len() != 192 {
			t.Fatalf("%v: len = %d, want 192", kind, po.Len())
		}
		seen := make(map[PageRef]bool)
		for i := 0; i < po.Len(); i++ {
			r := po.At(i)
			if r.WL < 0 || r.WL >= 64 || r.Type < 0 || r.Type >= 3 {
				t.Fatalf("%v: step %d out of range: %+v", kind, i, r)
			}
			if seen[r] {
				t.Fatalf("%v: page %+v programmed twice", kind, r)
			}
			seen[r] = true
			if po.StepOf(r) != i {
				t.Errorf("%v: StepOf(%+v) = %d, want %d", kind, r, po.StepOf(r), i)
			}
		}
	}
}

func TestShadowOrderStaircase(t *testing.T) {
	po := NewProgramOrder(4, 3, OrderShadow)
	// Diagonal order for a 4-WL TLC block. Within a diagonal the slower
	// page comes first: M before C before L.
	want := []PageRef{
		{0, 0},
		{0, 1}, {1, 0},
		{0, 2}, {1, 1}, {2, 0},
		{1, 2}, {2, 1}, {3, 0},
		{2, 2}, {3, 1},
		{3, 2},
	}
	if po.Len() != len(want) {
		t.Fatalf("len = %d, want %d", po.Len(), len(want))
	}
	for i, w := range want {
		if po.At(i) != w {
			t.Errorf("step %d = %+v, want %+v", i, po.At(i), w)
		}
	}
}

func TestShadowOrderFastPagesBeforeSlow(t *testing.T) {
	// Within any wordline, the fast page must be programmed before the
	// slow pages (you cannot program the CSB of a wordline whose LSB is
	// unwritten).
	po := NewProgramOrder(64, 3, OrderShadow)
	for wl := 0; wl < 64; wl++ {
		for b := 1; b < 3; b++ {
			lo := po.StepOf(PageRef{WL: wl, Type: coding.PageType(b - 1)})
			hi := po.StepOf(PageRef{WL: wl, Type: coding.PageType(b)})
			if lo >= hi {
				t.Fatalf("WL %d: page %d at step %d not before page %d at step %d", wl, b-1, lo, b, hi)
			}
		}
	}
}

func TestSequentialOrder(t *testing.T) {
	po := NewProgramOrder(2, 2, OrderSequential)
	want := []PageRef{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	for i, w := range want {
		if po.At(i) != w {
			t.Errorf("step %d = %+v, want %+v", i, po.At(i), w)
		}
	}
}

func TestOrderKindString(t *testing.T) {
	if OrderShadow.String() != "shadow" || OrderSequential.String() != "sequential" {
		t.Error("OrderKind names wrong")
	}
	if OrderKind(99).String() == "" {
		t.Error("unknown OrderKind should still render")
	}
}

func TestNewProgramOrderPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewProgramOrder(0, 3, OrderShadow) },
		func() { NewProgramOrder(4, 0, OrderShadow) },
		func() { NewProgramOrder(4, 3, OrderKind(99)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCellModel(t *testing.T) {
	m := NewCellModel(coding.NewGray(3))
	if m.Bits() != 3 {
		t.Fatalf("bits = %d", m.Bits())
	}
	if got := m.ConventionalSenses(coding.MSB); got != 4 {
		t.Errorf("conventional MSB senses = %d, want 4", got)
	}
	keep := coding.ValidMask(0).With(coding.CSB).With(coding.MSB)
	if got := m.IDASenses(keep, coding.CSB); got != 1 {
		t.Errorf("IDA CSB senses = %d, want 1", got)
	}
	if got := m.IDASenses(keep, coding.MSB); got != 2 {
		t.Errorf("IDA MSB senses = %d, want 2", got)
	}
	// Cache must return the identical object.
	if m.Merged(keep) != m.Merged(keep) {
		t.Error("Merged not cached")
	}
	// Reading a non-kept page is a logic error.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("IDASenses on merged-away page should panic")
			}
		}()
		m.IDASenses(keep, coding.LSB)
	}()
	// Plan forwards to the scheme.
	if p := m.PlanWordline(coding.MaskAll(3)); !p.Apply {
		t.Error("PlanWordline should apply for case 1")
	}
	if m.Code() == nil {
		t.Error("Code() nil")
	}
}
