package flash

import (
	"fmt"

	"idaflash/internal/coding"
)

// CellModel bundles a coding.Code with the per-page cost accounting the FTL
// charges on every program, so the hot read path can resolve "how many
// sensings does this page need right now" and the write path "how much
// charge does this program transfer" without touching the code's internals.
// Codes precompute their merge tables, so the model is a thin stateless
// adapter and safe for concurrent use.
type CellModel struct {
	code coding.Code

	// pagePower and pageCells are the code's per-wordline program cost
	// split per page: one page program accounts for 1/bits of the
	// wordline's expected charge and programmed-cell population.
	pagePower float64
	pageCells float64
}

// NewCellModel builds a model around the given code.
func NewCellModel(c coding.Code) *CellModel {
	cost := c.ProgramCost()
	bits := float64(c.Bits())
	return &CellModel{
		code:      c,
		pagePower: cost.MeanLevel / bits,
		pageCells: cost.ProgrammedFrac / bits,
	}
}

// Code returns the underlying coding scheme.
func (m *CellModel) Code() coding.Code { return m.code }

// Bits returns the bits per cell.
func (m *CellModel) Bits() int { return m.code.Bits() }

// Merged returns the precomputed merge result for a valid mask.
func (m *CellModel) Merged(mask coding.ValidMask) *coding.Merged {
	return m.code.Merge(mask)
}

// ConventionalSenses returns the sensing count for page t under the
// conventional coding.
func (m *CellModel) ConventionalSenses(t coding.PageType) int {
	return m.code.Senses(t)
}

// IDASenses returns the sensing count for page t on a wordline that was
// reprogrammed with the IDA coding keeping the pages in keep. It panics if t
// is not a kept page: reading a page that was merged away is a logic error
// in the FTL, not a recoverable condition.
func (m *CellModel) IDASenses(keep coding.ValidMask, t coding.PageType) int {
	if !keep.Has(t) {
		panic(fmt.Sprintf("flash: reading page %v of an IDA wordline that kept only %b", t, keep))
	}
	return m.code.Merge(keep).Senses(t)
}

// PlanWordline forwards to the code's Table I generalization.
func (m *CellModel) PlanWordline(mask coding.ValidMask) coding.Plan {
	return m.code.PlanWordline(mask)
}

// PageProgramPower is the power/wear proxy of one page program: the expected
// per-cell voltage level the program charges, attributed 1/bits per page.
func (m *CellModel) PageProgramPower() float64 { return m.pagePower }

// PageProgrammedCells is the expected fraction of cells one page program
// moves off the erased state, attributed 1/bits per page.
func (m *CellModel) PageProgrammedCells() float64 { return m.pageCells }

// AdjustPower is the power/wear proxy of one IDA voltage adjustment on a
// wordline whose kept pages are given by keep: the expected per-cell level
// distance the adjustment sweeps.
func (m *CellModel) AdjustPower(keep coding.ValidMask) float64 {
	return m.code.Merge(keep).MeanMove()
}
