package flash

import (
	"fmt"
	"sync"

	"idaflash/internal/coding"
)

// CellModel bundles a coding scheme with a cache of IDA merge results, so
// the hot read path can resolve "how many sensings does this page need right
// now" without recomputing merges. It is safe for concurrent use.
type CellModel struct {
	scheme *coding.Scheme

	mu     sync.Mutex
	merged map[coding.ValidMask]*coding.Merged
}

// NewCellModel builds a model around the given scheme.
func NewCellModel(s *coding.Scheme) *CellModel {
	return &CellModel{scheme: s, merged: make(map[coding.ValidMask]*coding.Merged)}
}

// Scheme returns the underlying coding scheme.
func (m *CellModel) Scheme() *coding.Scheme { return m.scheme }

// Bits returns the bits per cell.
func (m *CellModel) Bits() int { return m.scheme.Bits() }

// Merged returns the (cached) merge result for a valid mask.
func (m *CellModel) Merged(mask coding.ValidMask) *coding.Merged {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.merged[mask]; ok {
		return r
	}
	r := m.scheme.Merge(mask)
	m.merged[mask] = r
	return r
}

// ConventionalSenses returns the sensing count for page t under the
// conventional coding.
func (m *CellModel) ConventionalSenses(t coding.PageType) int {
	return m.scheme.Senses(t)
}

// IDASenses returns the sensing count for page t on a wordline that was
// reprogrammed with the IDA coding keeping the pages in keep. It panics if t
// is not a kept page: reading a page that was merged away is a logic error
// in the FTL, not a recoverable condition.
func (m *CellModel) IDASenses(keep coding.ValidMask, t coding.PageType) int {
	if !keep.Has(t) {
		panic(fmt.Sprintf("flash: reading page %v of an IDA wordline that kept only %b", t, keep))
	}
	return m.Merged(keep).Senses(t)
}

// PlanWordline forwards to the scheme's Table I generalization.
func (m *CellModel) PlanWordline(mask coding.ValidMask) coding.Plan {
	return m.scheme.PlanWordline(mask)
}
