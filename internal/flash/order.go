package flash

import (
	"fmt"

	"idaflash/internal/coding"
)

// PageRef identifies a logical page inside a block by wordline and page
// type, the two coordinates the coding model cares about.
type PageRef struct {
	WL   int
	Type coding.PageType
}

// ProgramOrder is the sequence in which a block's pages are programmed.
// Real multi-level devices never fill a wordline's pages back to back:
// they use a staircase ("shadow") schedule that programs the fast page of
// wordline n+k before the slow page of wordline n, which limits program
// interference. The schedule matters to this reproduction because it
// determines how temporally-adjacent host writes spread across page types,
// and therefore how often a wordline ends up with an invalid LSB but valid
// MSB (the paper's target scenario).
type ProgramOrder struct {
	refs  []PageRef
	index map[PageRef]int
}

// OrderKind selects the program schedule.
type OrderKind int

const (
	// OrderShadow is the staircase schedule: page (wl, type) is
	// programmed in ascending (wl+type, type) order, e.g. for TLC:
	// L0; L1, C0; L2, C1, M0; L3, C2, M1; ...
	OrderShadow OrderKind = iota
	// OrderSequential fills each wordline completely before the next:
	// L0, C0, M0; L1, C1, M1; ...
	OrderSequential
)

// String names the order kind.
func (k OrderKind) String() string {
	switch k {
	case OrderShadow:
		return "shadow"
	case OrderSequential:
		return "sequential"
	default:
		return fmt.Sprintf("OrderKind(%d)", int(k))
	}
}

// NewProgramOrder builds the program schedule for a block of the given
// shape.
func NewProgramOrder(wordlines, bits int, kind OrderKind) *ProgramOrder {
	if wordlines <= 0 || bits <= 0 {
		panic(fmt.Sprintf("flash: NewProgramOrder(%d, %d)", wordlines, bits))
	}
	po := &ProgramOrder{
		refs:  make([]PageRef, 0, wordlines*bits),
		index: make(map[PageRef]int, wordlines*bits),
	}
	switch kind {
	case OrderSequential:
		for wl := 0; wl < wordlines; wl++ {
			for b := 0; b < bits; b++ {
				po.push(PageRef{WL: wl, Type: coding.PageType(b)})
			}
		}
	case OrderShadow:
		// Diagonal sweep: key = wl + type, ties broken by the slower
		// page first so every wordline finishes as early as possible
		// once its diagonal arrives.
		maxKey := (wordlines - 1) + (bits - 1)
		for key := 0; key <= maxKey; key++ {
			for b := bits - 1; b >= 0; b-- {
				wl := key - b
				if wl >= 0 && wl < wordlines {
					po.push(PageRef{WL: wl, Type: coding.PageType(b)})
				}
			}
		}
	default:
		panic(fmt.Sprintf("flash: unknown order kind %d", kind))
	}
	return po
}

func (po *ProgramOrder) push(r PageRef) {
	po.index[r] = len(po.refs)
	po.refs = append(po.refs, r)
}

// Len returns the number of pages in the schedule (pages per block).
func (po *ProgramOrder) Len() int { return len(po.refs) }

// At returns the wordline and page type programmed at schedule step i.
func (po *ProgramOrder) At(i int) PageRef { return po.refs[i] }

// StepOf returns the schedule step at which the given page is programmed.
func (po *ProgramOrder) StepOf(r PageRef) int { return po.index[r] }
