package flash

import (
	"testing"
	"time"
)

func TestPaperTLCTimingDatapoints(t *testing.T) {
	ts := PaperTLCTiming()
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	// The Micron TLC datapoints: 50/100/150 us for 1/2/4 sensings.
	cases := map[int]time.Duration{
		1: 50 * time.Microsecond,
		2: 100 * time.Microsecond,
		4: 150 * time.Microsecond,
	}
	for n, want := range cases {
		if got := ts.ReadLatency(n); got != want {
			t.Errorf("ReadLatency(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestPaperMLCTimingDatapoints(t *testing.T) {
	ts := PaperMLCTiming()
	if got := ts.ReadLatency(1); got != 65*time.Microsecond {
		t.Errorf("MLC LSB read = %v, want 65us", got)
	}
	if got := ts.ReadLatency(2); got != 115*time.Microsecond {
		t.Errorf("MLC MSB read = %v, want 115us", got)
	}
}

func TestReadLatencyMonotone(t *testing.T) {
	ts := PaperTLCTiming()
	prev := time.Duration(0)
	for n := 1; n <= 16; n++ {
		got := ts.ReadLatency(n)
		if got < prev {
			t.Errorf("ReadLatency(%d) = %v < ReadLatency(%d) = %v", n, got, n-1, prev)
		}
		prev = got
	}
}

func TestReadLatencyPanicsOnZeroSenses(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ReadLatency(0) should panic")
		}
	}()
	PaperTLCTiming().ReadLatency(0)
}

func TestWithReadDelta(t *testing.T) {
	// Figure 9: delta-tR from 30 to 70 us with tR-LSB pinned at 50 us.
	for _, d := range []time.Duration{30, 40, 50, 60, 70} {
		ts := PaperTLCTiming().WithReadDelta(d * time.Microsecond)
		if got := ts.ReadLatency(1); got != 50*time.Microsecond {
			t.Errorf("delta %v: LSB read = %v, want 50us", d, got)
		}
		if got, want := ts.ReadLatency(4), 50*time.Microsecond+2*d*time.Microsecond; got != want {
			t.Errorf("delta %v: MSB read = %v, want %v", d, got, want)
		}
	}
}

func TestExtraSenseLatency(t *testing.T) {
	ts := PaperTLCTiming()
	if got := ts.ExtraSenseLatency(0); got != 0 {
		t.Errorf("ExtraSenseLatency(0) = %v", got)
	}
	if got := ts.ExtraSenseLatency(-2); got != 0 {
		t.Errorf("ExtraSenseLatency(-2) = %v", got)
	}
	if got := ts.ExtraSenseLatency(3); got != 150*time.Microsecond {
		t.Errorf("ExtraSenseLatency(3) = %v, want 150us", got)
	}
}

func TestTimingValidate(t *testing.T) {
	bad := []func(*TimingSpec){
		func(s *TimingSpec) { s.ReadBase = 0 },
		func(s *TimingSpec) { s.ReadDelta = -1 },
		func(s *TimingSpec) { s.Program = 0 },
		func(s *TimingSpec) { s.Erase = 0 },
		func(s *TimingSpec) { s.Transfer = 0 },
		func(s *TimingSpec) { s.ECCDecode = 0 },
		func(s *TimingSpec) { s.VoltAdjust = 0 },
	}
	for i, mutate := range bad {
		ts := PaperTLCTiming()
		mutate(&ts)
		if err := ts.Validate(); err == nil {
			t.Errorf("case %d: Validate() = nil, want error", i)
		}
	}
}
