package flash

import (
	"fmt"
	"math"
	"time"
)

// TimingSpec holds the device timing parameters of Table II. Reads are not a
// single number: the memory-access stage depends on how many times the
// wordline must be sensed, which is where the paper's entire optimization
// lives. The sensing-to-latency mapping is
//
//	tR(n) = ReadBase + ReadDelta * log2(n)
//
// which reproduces the Micron TLC datapoints (50/100/150 us for 1/2/4
// sensings with ReadBase=50us, ReadDelta=50us), the MLC datapoints
// (65/115 us with ReadBase=65us), and the paper's Figure 9 sweep, which is
// literally a sweep of ReadDelta.
type TimingSpec struct {
	ReadBase  time.Duration // memory-access latency of a 1-sensing read (tR-LSB)
	ReadDelta time.Duration // latency increment per doubling of sensings (delta-tR)
	Program   time.Duration // page program latency (the paper uses one value, 2.3 ms)
	Erase     time.Duration // block erase latency
	Transfer  time.Duration // channel transfer time for one page (48 us at 333 MT/s for 8 KB)
	ECCDecode time.Duration // ECC decoding latency per page
	// VoltAdjust is the per-wordline latency of the IDA voltage
	// adjustment. The paper argues it is about half an MSB write but
	// conservatively charges one full program latency, which is the
	// default here.
	VoltAdjust time.Duration
}

// PaperTLCTiming returns the Table II timing values: 50/100/150 us page
// reads, 2.3 ms program, 3 ms erase, 48 us/page transfer, 20 us ECC decode,
// and a voltage adjustment charged at one program latency.
func PaperTLCTiming() TimingSpec {
	return TimingSpec{
		ReadBase:   50 * time.Microsecond,
		ReadDelta:  50 * time.Microsecond,
		Program:    2300 * time.Microsecond,
		Erase:      3 * time.Millisecond,
		Transfer:   48 * time.Microsecond,
		ECCDecode:  20 * time.Microsecond,
		VoltAdjust: 2300 * time.Microsecond,
	}
}

// PaperMLCTiming returns the Section V-G MLC timing: 65 us LSB and 115 us
// MSB reads (ReadDelta 50 us), other parameters as the TLC device.
func PaperMLCTiming() TimingSpec {
	t := PaperTLCTiming()
	t.ReadBase = 65 * time.Microsecond
	return t
}

// Validate reports the first problem with the spec, or nil.
func (t TimingSpec) Validate() error {
	if t.ReadBase <= 0 {
		return fmt.Errorf("flash: ReadBase %v must be positive", t.ReadBase)
	}
	if t.ReadDelta < 0 {
		return fmt.Errorf("flash: ReadDelta %v must be non-negative", t.ReadDelta)
	}
	for _, f := range []struct {
		name string
		v    time.Duration
	}{{"Program", t.Program}, {"Erase", t.Erase}, {"Transfer", t.Transfer}, {"ECCDecode", t.ECCDecode}, {"VoltAdjust", t.VoltAdjust}} {
		if f.v <= 0 {
			return fmt.Errorf("flash: %s %v must be positive", f.name, f.v)
		}
	}
	return nil
}

// WithReadDelta returns a copy of the spec with a different delta-tR, the
// knob the paper's Figure 9 sensitivity study turns.
func (t TimingSpec) WithReadDelta(d time.Duration) TimingSpec {
	t.ReadDelta = d
	return t
}

// ReadLatency returns the memory-access latency of a page read that needs n
// wordline sensings. n must be at least 1.
func (t TimingSpec) ReadLatency(n int) time.Duration {
	if n < 1 {
		panic(fmt.Sprintf("flash: ReadLatency with %d sensings", n))
	}
	if n == 1 {
		return t.ReadBase
	}
	return t.ReadBase + time.Duration(float64(t.ReadDelta)*math.Log2(float64(n)))
}

// ExtraSenseLatency returns the additional memory-access time of re-sensing
// a wordline k more times during an LDPC read retry, charged linearly at the
// one-sensing granularity implied by ReadDelta.
func (t TimingSpec) ExtraSenseLatency(k int) time.Duration {
	if k <= 0 {
		return 0
	}
	return time.Duration(k) * t.ReadDelta
}
