// Package flash describes the physical NAND device: its geometry (channels,
// chips, dies, planes, blocks, wordlines), its timing behaviour, the order
// in which pages are programmed, and the cell model that maps wordline
// coding state to sensing counts. It is a pure description; all mutable
// device state lives in the FTL (internal/ftl) and the discrete-event
// simulator (internal/ssd).
package flash

import (
	"fmt"
)

// Geometry describes the physical organization of an SSD, following the
// hierarchy of the paper's Figure 1 and Table II: channels connect chips,
// chips contain dies, dies contain planes, planes contain blocks, and every
// block is an array of wordlines each holding BitsPerCell logical pages.
type Geometry struct {
	Channels          int // independent DDR buses
	ChipsPerChannel   int // flash chips sharing one channel
	DiesPerChip       int // independently operable dies per chip
	PlanesPerDie      int // planes per die
	BlocksPerPlane    int // erase blocks per plane
	WordlinesPerBlock int // wordlines (rows) per block
	PageSizeBytes     int // logical page size (the read/write unit)
	BitsPerCell       int // 1=SLC, 2=MLC, 3=TLC, 4=QLC
}

// PaperTLC returns the paper's Table II baseline geometry: a 512 GB SSD of
// sixteen 32 GB TLC chips on 4 channels (2 dies/chip, 2 planes/die, 5472
// blocks/plane, 192 8 KB pages per block = 64 wordlines x 3).
func PaperTLC() Geometry {
	return Geometry{
		Channels:          4,
		ChipsPerChannel:   4,
		DiesPerChip:       2,
		PlanesPerDie:      2,
		BlocksPerPlane:    5472,
		WordlinesPerBlock: 64,
		PageSizeBytes:     8 * 1024,
		BitsPerCell:       3,
	}
}

// Validate reports the first structural problem with the geometry, or nil.
func (g Geometry) Validate() error {
	checks := []struct {
		name string
		v    int
	}{
		{"Channels", g.Channels},
		{"ChipsPerChannel", g.ChipsPerChannel},
		{"DiesPerChip", g.DiesPerChip},
		{"PlanesPerDie", g.PlanesPerDie},
		{"BlocksPerPlane", g.BlocksPerPlane},
		{"WordlinesPerBlock", g.WordlinesPerBlock},
		{"PageSizeBytes", g.PageSizeBytes},
	}
	for _, c := range checks {
		if c.v <= 0 {
			return fmt.Errorf("flash: geometry %s = %d, must be positive", c.name, c.v)
		}
	}
	if g.BitsPerCell < 1 || g.BitsPerCell > 8 {
		return fmt.Errorf("flash: geometry BitsPerCell = %d, must be in [1,8]", g.BitsPerCell)
	}
	return nil
}

// PagesPerBlock returns the number of logical pages in a block.
func (g Geometry) PagesPerBlock() int { return g.WordlinesPerBlock * g.BitsPerCell }

// Chips returns the total chip count.
func (g Geometry) Chips() int { return g.Channels * g.ChipsPerChannel }

// Dies returns the total die count across the device.
func (g Geometry) Dies() int { return g.Chips() * g.DiesPerChip }

// Planes returns the total plane count across the device.
func (g Geometry) Planes() int { return g.Dies() * g.PlanesPerDie }

// TotalBlocks returns the total block count across the device.
func (g Geometry) TotalBlocks() int { return g.Planes() * g.BlocksPerPlane }

// TotalPages returns the total page count across the device.
func (g Geometry) TotalPages() int64 {
	return int64(g.TotalBlocks()) * int64(g.PagesPerBlock())
}

// CapacityBytes returns the raw device capacity.
func (g Geometry) CapacityBytes() int64 {
	return g.TotalPages() * int64(g.PageSizeBytes)
}

// String summarizes the geometry.
func (g Geometry) String() string {
	return fmt.Sprintf("%d ch x %d chip x %d die x %d plane, %d blk/plane, %d WL x %d bit, %d B pages (%.1f GB)",
		g.Channels, g.ChipsPerChannel, g.DiesPerChip, g.PlanesPerDie,
		g.BlocksPerPlane, g.WordlinesPerBlock, g.BitsPerCell, g.PageSizeBytes,
		float64(g.CapacityBytes())/(1<<30))
}

// PlaneID is a linear plane index in CWDP order: channel-major, then chip,
// then die, then plane. Consecutive PlaneIDs therefore rotate through the
// full hierarchy exactly the way the CWDP static allocator strides.
type PlaneID int

// PlaneCoord locates a plane within the device hierarchy.
type PlaneCoord struct {
	Channel, Chip, Die, Plane int
}

// Coord decomposes a PlaneID into its hierarchy coordinates.
func (g Geometry) Coord(p PlaneID) PlaneCoord {
	i := int(p)
	pl := i % g.PlanesPerDie
	i /= g.PlanesPerDie
	d := i % g.DiesPerChip
	i /= g.DiesPerChip
	ch := i % g.ChipsPerChannel
	i /= g.ChipsPerChannel
	return PlaneCoord{Channel: i, Chip: ch, Die: d, Plane: pl}
}

// PlaneOf composes a PlaneID from hierarchy coordinates.
func (g Geometry) PlaneOf(c PlaneCoord) PlaneID {
	return PlaneID(((c.Channel*g.ChipsPerChannel+c.Chip)*g.DiesPerChip+c.Die)*g.PlanesPerDie + c.Plane)
}

// DieOf returns a linear die index for the plane, used to model per-die
// occupancy (one flash command at a time per die).
func (g Geometry) DieOf(p PlaneID) int { return int(p) / g.PlanesPerDie }

// ChannelOf returns the channel index the plane's chip is attached to.
func (g Geometry) ChannelOf(p PlaneID) int {
	return int(p) / (g.PlanesPerDie * g.DiesPerChip * g.ChipsPerChannel)
}

// BlockAddr addresses one block in the device.
type BlockAddr struct {
	Plane PlaneID
	Block int
}

// String renders the address.
func (a BlockAddr) String() string { return fmt.Sprintf("p%d/b%d", a.Plane, a.Block) }

// PageAddr addresses one page in the device.
type PageAddr struct {
	BlockAddr
	Page int // page index within the block, in [0, PagesPerBlock)
}

// String renders the address.
func (a PageAddr) String() string { return fmt.Sprintf("p%d/b%d/pg%d", a.Plane, a.Block, a.Page) }
