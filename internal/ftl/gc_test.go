package ftl

import (
	"testing"

	"idaflash/internal/flash"
)

func TestGCReclaimsInvalidBlocks(t *testing.T) {
	g := tinyGeom()
	f := mustFTL(t, Options{Geometry: g, GCFreeBlocks: 3})
	// Write 36 LPNs (3 blocks) twice, then overwrite 24 of them again:
	// the old blocks become fully invalid while free blocks drain to 0.
	counts := []LPN{36, 36, 24}
	for round, n := range counts {
		for i := LPN(0); i < n; i++ {
			if _, err := f.Write(i, 0); err != nil {
				t.Fatalf("round %d write %d: %v", round, i, err)
			}
		}
	}
	if free := f.FreeBlocks(0); free >= 3 {
		t.Skipf("device did not drain below watermark (free=%d)", free)
	}
	jobs := mustCollectGC(t, f, 0)
	if len(jobs) == 0 {
		t.Fatal("GC produced no jobs below watermark")
	}
	if free := f.FreeBlocks(0); free < 3 {
		t.Errorf("free blocks after GC = %d, want >= 3", free)
	}
	// Fully-invalid victims require no moves.
	for _, j := range jobs {
		if len(j.Moves) != 0 {
			t.Errorf("victim %v moved %d pages; fully-invalid blocks should move none", j.Victim, len(j.Moves))
		}
	}
	// All data still readable.
	for i := LPN(0); i < 36; i++ {
		if _, ok := f.Read(i); !ok {
			t.Fatalf("LPN %d lost after GC", i)
		}
	}
	if f.Stats().GCJobs == 0 || f.Stats().Erases == 0 {
		t.Error("GC stats not recorded")
	}
	checkInvariants(t, f)
}

func TestGCMovesValidPages(t *testing.T) {
	g := tinyGeom()
	f := mustFTL(t, Options{Geometry: g, GCFreeBlocks: 6})
	// Fill two blocks, then invalidate most (but not all) of the first
	// block's pages by overwriting them.
	for i := LPN(0); i < 24; i++ {
		f.Write(i, 0)
	}
	for i := LPN(0); i < 10; i++ {
		f.Write(i, 0) // rewrites land in block 2+
	}
	jobs := mustCollectGC(t, f, 0)
	if len(jobs) == 0 {
		t.Fatal("no GC jobs")
	}
	// With a watermark this aggressive the plane churns: an LPN may move
	// several times across jobs. Jobs are chronological, so the last
	// recorded destination must be where reads land now.
	lastMove := make(map[LPN]flash.PageAddr)
	moved := 0
	for _, j := range jobs {
		moved += len(j.Moves)
		for _, m := range j.Moves {
			if m.From.BlockAddr != j.Victim {
				t.Errorf("move source %v not in victim %v", m.From, j.Victim)
			}
			if m.FromSenses < 1 {
				t.Errorf("move senses = %d", m.FromSenses)
			}
			lastMove[m.LPN] = m.To
		}
	}
	if moved == 0 {
		t.Error("expected at least one valid-page move")
	}
	for lpn, to := range lastMove {
		if lpn < 10 {
			// LPNs 0-9 were host-overwritten interleaved with the
			// inline GC jobs, so their recorded moves may predate
			// the final host write.
			continue
		}
		info, ok := f.Read(lpn)
		if !ok || info.Addr != to {
			t.Errorf("LPN %d reads from %v, last moved to %v", lpn, info.Addr, to)
		}
	}
	for i := LPN(0); i < 24; i++ {
		if _, ok := f.Read(i); !ok {
			t.Fatalf("LPN %d lost", i)
		}
	}
	checkInvariants(t, f)
}

func TestGCPrefersLeastValidVictim(t *testing.T) {
	g := tinyGeom()
	f := mustFTL(t, Options{Geometry: g, GCFreeBlocks: 1})
	// Block A (LPNs 0-11): invalidate 8. Block B (LPNs 12-23):
	// invalidate 2. Then force exactly one GC pass.
	for i := LPN(0); i < 24; i++ {
		f.Write(i, 0)
	}
	for i := LPN(0); i < 8; i++ {
		f.Write(i, 0)
	}
	for i := LPN(12); i < 14; i++ {
		f.Write(i, 0)
	}
	job, ok, err := f.collectPlane(flash.PlaneID(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no victim found")
	}
	// The least-valid block has 12-8=4 valid pages.
	if len(job.Moves) != 4 {
		t.Errorf("victim had %d moves, want 4 (least-valid choice)", len(job.Moves))
	}
	checkInvariants(t, f)
}

func TestGCWearTieBreak(t *testing.T) {
	g := tinyGeom()
	f := mustFTL(t, Options{Geometry: g})
	// Two fully-invalid blocks with different erase counts: the victim
	// must be the one with fewer erases.
	for i := LPN(0); i < 24; i++ {
		f.Write(i, 0)
	}
	for i := LPN(0); i < 24; i++ {
		f.Write(i, 0)
	}
	// Both original blocks now fully invalid; bump one's erase count by
	// reclaiming and refilling it... simpler: tamper directly.
	f.planes[0].blocks[0].eraseCount = 5
	job, ok, err := f.collectPlane(flash.PlaneID(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no victim")
	}
	if job.Victim.Block == 0 {
		t.Error("GC chose the higher-wear block on a tie")
	}
	checkInvariants(t, f)
}

func TestGCNothingToDo(t *testing.T) {
	f := mustFTL(t, Options{Geometry: tinyGeom()})
	if jobs := mustCollectGC(t, f, 0); jobs != nil {
		t.Errorf("GC on an empty device returned %d jobs", len(jobs))
	}
	// All-valid device: victim would gain nothing, so GC declines.
	f2 := mustFTL(t, Options{Geometry: tinyGeom(), GCFreeBlocks: 7})
	for i := LPN(0); i < 24; i++ {
		f2.Write(i, 0)
	}
	if _, ok, _ := f2.collectPlane(flash.PlaneID(0), 0); ok {
		t.Error("GC reclaimed a fully-valid block")
	}
}
