package ftl

import (
	"fmt"

	"idaflash/internal/coding"
	"idaflash/internal/flash"
)

// ReadClass categorizes a host page read the way the paper's Figure 4 does:
// by the page type read and by whether any associated faster page of the
// same wordline is already invalid (the scenarios IDA coding targets).
type ReadClass int

// Figure 4 categories. "LowerInvalid" means at least one faster page of the
// wordline is invalid while the read page is valid.
const (
	ReadLSB ReadClass = iota
	ReadCSBAllValid
	ReadCSBLowerInvalid
	ReadMSBAllValid
	ReadMSBLowerInvalid
	numReadClasses
)

// String names the class.
func (c ReadClass) String() string {
	switch c {
	case ReadLSB:
		return "LSB"
	case ReadCSBAllValid:
		return "CSB(valid)"
	case ReadCSBLowerInvalid:
		return "CSB(LSB-invalid)"
	case ReadMSBAllValid:
		return "MSB(valid)"
	case ReadMSBLowerInvalid:
		return "MSB(lower-invalid)"
	default:
		return fmt.Sprintf("ReadClass(%d)", int(c))
	}
}

// ReadInfo describes one physical page read: where it goes, how many
// sensings the memory-access stage needs under the wordline's current
// coding, and its Figure 4 classification.
type ReadInfo struct {
	Addr   flash.PageAddr
	LPN    LPN
	Type   coding.PageType
	Senses int
	Class  ReadClass
	// IDA reports whether the wordline was reprogrammed with IDA coding.
	IDA bool
}

// Read resolves a host read of the LPN. The boolean is false when the LPN
// is unmapped (never written or trimmed).
func (f *FTL) Read(lpn LPN) (ReadInfo, bool) {
	p, ok := f.l2p.get(lpn)
	if !ok {
		return ReadInfo{}, false
	}
	pl, blk, page := f.unpackPPN(p)
	b := f.planes[pl].blocks[blk]
	wl, t := f.pageCoords(page)
	info := ReadInfo{
		Addr:   f.addrOf(p),
		LPN:    lpn,
		Type:   t,
		Senses: f.sensesAt(b, page),
		IDA:    b.wlKeep[wl] != 0,
		Class:  f.classify(b, wl, t),
	}
	f.stats.HostReads++
	f.stats.ReadsByClass[info.Class]++
	if info.Senses < len(f.stats.ReadsBySenses) {
		f.stats.ReadsBySenses[info.Senses]++
	}
	if info.IDA {
		f.stats.ReadsFromIDA++
	}
	f.opts.Hooks.read(info)
	return info, true
}

// classify buckets the read for Figure 4. Pages above CSB in >3-bit cells
// fold into the MSB buckets (the paper's TLC taxonomy generalized).
func (f *FTL) classify(b *block, wl int, t coding.PageType) ReadClass {
	if t == coding.LSB {
		return ReadLSB
	}
	mask := f.wlValidMask(b, wl)
	lowerInvalid := false
	for j := coding.PageType(0); j < t; j++ {
		if !mask.Has(j) {
			lowerInvalid = true
			break
		}
	}
	if t == coding.CSB {
		if lowerInvalid {
			return ReadCSBLowerInvalid
		}
		return ReadCSBAllValid
	}
	if lowerInvalid {
		return ReadMSBLowerInvalid
	}
	return ReadMSBAllValid
}
