package ftl

import (
	"math/rand"
	"testing"
	"time"

	"idaflash/internal/sim"
)

// TestL2PTableBasics exercises the dense/sparse split directly: in-range
// LPNs land in the dense slice, out-of-range and negative LPNs fall back to
// the map, and the count tracks both sides.
func TestL2PTableBasics(t *testing.T) {
	tab := newL2P(8)
	if _, ok := tab.get(3); ok {
		t.Fatal("empty table reports LPN 3 mapped")
	}
	tab.set(3, ppn(30))
	tab.set(100, ppn(42)) // beyond capacity -> sparse side
	tab.set(-5, ppn(7))   // negative -> sparse side
	if tab.len() != 3 {
		t.Fatalf("len = %d, want 3", tab.len())
	}
	for _, tc := range []struct {
		lpn LPN
		p   ppn
	}{{3, 30}, {100, 42}, {-5, 7}} {
		got, ok := tab.get(tc.lpn)
		if !ok || got != tc.p {
			t.Fatalf("get(%d) = %v,%v want %v,true", tc.lpn, got, ok, tc.p)
		}
	}
	tab.set(3, ppn(31)) // overwrite must not double-count
	if tab.len() != 3 {
		t.Fatalf("len after overwrite = %d, want 3", tab.len())
	}
	tab.remove(3)
	tab.remove(100)
	tab.remove(100) // removing an unmapped LPN is a no-op
	if tab.len() != 1 {
		t.Fatalf("len after removes = %d, want 1", tab.len())
	}
	if _, ok := tab.get(3); ok {
		t.Fatal("removed LPN 3 still mapped")
	}
}

// TestL2PDenseSparseEquivalence drives two identically-seeded FTLs — one
// with the dense table, one forced onto the pure sparse fallback — through
// the same randomized write/trim/read/GC/refresh sequence and requires
// identical observable behavior at every step. The dense slice is a pure
// representation change; any divergence here is a correctness bug.
func TestL2PDenseSparseEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 20260806} {
		opts := Options{
			Geometry:      tinyGeom(),
			IDAEnabled:    true,
			ErrorRate:     0.2,
			RefreshPeriod: time.Hour,
			Seed:          seed,
		}
		dense := mustFTL(t, opts)
		sparse := mustFTL(t, opts)
		sparse.l2p = newL2P(0) // capacity 0 -> map-only table
		if len(dense.l2p.dense) == 0 {
			t.Fatal("dense FTL did not get a dense table")
		}

		lpns := dense.geom.TotalPages() / 2 // overwrite pressure
		rng := rand.New(rand.NewSource(seed))
		now := sim.Time(0)
		for step := 0; step < 4000; step++ {
			now += sim.Time(rng.Intn(int(time.Minute)))
			lpn := LPN(rng.Int63n(lpns))
			switch rng.Intn(10) {
			case 0: // trim
				dense.Trim(lpn)
				sparse.Trim(lpn)
			case 1, 2, 3: // read
				di, dok := dense.Read(lpn)
				si, sok := sparse.Read(lpn)
				if dok != sok || di != si {
					t.Fatalf("seed %d step %d: Read(%d) diverged: %+v,%v vs %+v,%v",
						seed, step, lpn, di, dok, si, sok)
				}
			default: // write
				dp, derr := dense.Write(lpn, now)
				sp, serr := sparse.Write(lpn, now)
				if (derr == nil) != (serr == nil) || dp != sp {
					t.Fatalf("seed %d step %d: Write(%d) diverged: %+v,%v vs %+v,%v",
						seed, step, lpn, dp, derr, sp, serr)
				}
			}
			if step%97 == 0 {
				dj := mustCollectGC(t, dense, now)
				sj := mustCollectGC(t, sparse, now)
				if len(dj) != len(sj) {
					t.Fatalf("seed %d step %d: GC job counts diverged: %d vs %d", seed, step, len(dj), len(sj))
				}
			}
			if step%523 == 0 {
				dr := mustDueRefreshes(t, dense, now)
				sr := mustDueRefreshes(t, sparse, now)
				if len(dr) != len(sr) {
					t.Fatalf("seed %d step %d: refresh job counts diverged: %d vs %d", seed, step, len(dr), len(sr))
				}
			}
			if dense.MappedPages() != sparse.MappedPages() {
				t.Fatalf("seed %d step %d: MappedPages diverged: %d vs %d",
					seed, step, dense.MappedPages(), sparse.MappedPages())
			}
		}
		if dense.Stats() != sparse.Stats() {
			t.Fatalf("seed %d: final stats diverged:\ndense:  %+v\nsparse: %+v",
				seed, dense.Stats(), sparse.Stats())
		}
		checkInvariants(t, dense)
		checkInvariants(t, sparse)
	}
}
