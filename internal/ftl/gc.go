package ftl

import (
	"fmt"

	"idaflash/internal/flash"
	"idaflash/internal/sim"
)

// MoveOp is one valid-page migration inside a GC or refresh job: a read of
// the source page (with its sensing count under the source wordline's
// coding) followed by a program of the destination page.
type MoveOp struct {
	From       flash.PageAddr
	FromSenses int
	To         flash.PageAddr
	LPN        LPN
	// FailedPrograms counts destination program attempts the fault model
	// failed before the move stuck (their pulses are still charged).
	FailedPrograms int
}

// GCJob describes one completed garbage collection: the victim block, the
// page moves performed, and the erase. All mapping state has already been
// updated; the job exists so the SSD model can charge its timing.
type GCJob struct {
	Victim flash.BlockAddr
	Moves  []MoveOp
	// VictimWasIDA reports whether the reclaimed block had been
	// reprogrammed with the IDA coding.
	VictimWasIDA bool
}

// CollectGC drains any inline collections buffered since the last call and
// then runs greedy garbage collection on every plane whose free-block count
// fell below the watermark, returning one job per reclaimed block. The
// victim is the fully-programmed block with the fewest valid pages, ties
// broken toward the lowest erase count (greedy wear-aware, after Bux &
// Iliadis). Planes with nothing reclaimable are left alone; the next write
// to them will fail instead. A non-nil error means a relocation ran out of
// space mid-collection — an undersized device — and poisons the run: the
// caller must stop the simulation, since the victim block is part-moved.
// Jobs completed before the failure are still returned so their timing can
// be charged.
func (f *FTL) CollectGC(now sim.Time) ([]GCJob, error) {
	jobs := f.pendingGC
	f.pendingGC = nil
	for pl := range f.planes {
		for len(f.planes[pl].free) < f.opts.GCFreeBlocks {
			job, ok, err := f.collectPlane(flash.PlaneID(pl), now)
			if err != nil {
				return jobs, err
			}
			if !ok {
				break
			}
			jobs = append(jobs, job)
		}
	}
	return jobs, nil
}

// ensureFree keeps a plane writable by collecting inline when its free-block
// count falls below the watermark. The jobs are buffered for the next
// CollectGC call so the simulation still charges their timing. Like
// CollectGC, a non-nil error means a mid-collection allocation failure that
// must end the run.
func (f *FTL) ensureFree(pl flash.PlaneID, now sim.Time) error {
	for len(f.planes[pl].free) < f.opts.GCFreeBlocks {
		job, ok, err := f.collectPlane(pl, now)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		f.pendingGC = append(f.pendingGC, job)
	}
	return nil
}

// collectPlane reclaims one block in the plane. It reports false when no
// victim exists or reclaiming would not gain space.
func (f *FTL) collectPlane(pl flash.PlaneID, now sim.Time) (GCJob, bool, error) {
	ps := f.planes[pl]
	victim := -1
	var vb *block
	for blk, b := range ps.blocks {
		if b == nil || blk == ps.active || b.retired || b.nextStep == 0 {
			continue // untouched, retired, erased, or still accepting programs
		}
		if f.refreshingActive && f.refreshing.Plane == pl && f.refreshing.Block == blk {
			continue // mid-refresh; the refresh flow owns this block
		}
		if vb == nil ||
			b.validCount < vb.validCount ||
			(b.validCount == vb.validCount && b.eraseCount < vb.eraseCount) {
			victim, vb = blk, b
		}
	}
	if vb == nil {
		return GCJob{}, false, nil
	}
	// Reclaiming a block whose valid pages would fill a whole new block
	// gains nothing; stop rather than churn.
	if vb.validCount >= f.order.Len() {
		return GCJob{}, false, nil
	}
	// The victim's valid pages relocate within this plane; decline when
	// they would not fit in the plane's remaining space (the plane then
	// recovers as refresh drains its blocks elsewhere).
	space := len(ps.free) * f.order.Len()
	if ps.active >= 0 {
		space += f.order.Len() - ps.blocks[ps.active].nextStep
	}
	if vb.validCount > space {
		return GCJob{}, false, nil
	}
	job := GCJob{
		Victim:       flash.BlockAddr{Plane: pl, Block: victim},
		VictimWasIDA: vb.ida,
	}
	for page := 0; page < f.geom.PagesPerBlock(); page++ {
		if !vb.valid[page] {
			continue
		}
		src := f.packPPN(pl, victim, page)
		senses := f.sensesAt(vb, page)
		prog, err := f.relocate(src, now)
		if err != nil {
			// The plane is below watermark but still has its active
			// block; running out mid-GC means the device is
			// undersized. The victim is part-moved, so the run must
			// stop here.
			return GCJob{}, false, fmt.Errorf("ftl: allocation failed during GC of p%d/b%d: %w", pl, victim, err)
		}
		job.Moves = append(job.Moves, MoveOp{
			From:           f.addrOf(src),
			FromSenses:     senses,
			To:             prog.Addr,
			LPN:            prog.LPN,
			FailedPrograms: prog.FailedPrograms,
		})
	}
	f.eraseBlock(pl, victim)
	f.stats.GCJobs++
	f.stats.GCMoves += uint64(len(job.Moves))
	if job.VictimWasIDA {
		f.stats.GCIDAVictims++
	}
	f.opts.Hooks.gc(&job)
	return job, true, nil
}
