package ftl

// Stats accumulates the FTL-level counters every experiment reads out.
// All counts are cumulative since construction.
type Stats struct {
	HostReads     uint64
	HostWrites    uint64
	Invalidations uint64
	Erases        uint64

	// ReadsByClass buckets host reads for Figure 4.
	ReadsByClass [numReadClasses]uint64
	// ReadsBySenses buckets host reads by the sensing count they needed
	// (index = sensings; index 0 unused).
	ReadsBySenses [9]uint64
	// ReadsFromIDA counts host reads served from IDA-reprogrammed
	// wordlines at reduced sensing counts.
	ReadsFromIDA uint64

	GCJobs       uint64
	GCMoves      uint64
	GCIDAVictims uint64

	Refreshes         uint64
	RefreshValidPages uint64
	RefreshMoves      uint64

	// IDA-modified refresh counters (Table IV).
	IDARefreshes       uint64
	IDAAdjustedWLs     uint64
	IDAVerifyReads     uint64
	IDACorruptedWrites uint64
	IDAKeptPages       uint64

	// Program power/wear proxies, accumulated from the coding scheme's
	// cost hooks: ProgramPower sums the expected per-cell voltage level
	// charged by every page program (including failed attempts) plus the
	// level distance swept by IDA voltage adjustments; ProgrammedCells
	// sums the expected fraction of cells each program moves off the
	// erased state. Units are per-cell voltage levels / cell fractions,
	// so schemes with identical latency but different programmed-state
	// distributions (ilwc vs ida) become comparable.
	ProgramPower    float64
	ProgrammedCells float64

	// Fault-injection recovery counters (internal/faults scenarios).
	// ProgramFailures counts failed page programs remapped to another
	// block; EraseFailures counts erases that failed outright; a block
	// leaves service (RetiredBlocks) after either kind of failure.
	ProgramFailures uint64
	EraseFailures   uint64
	RetiredBlocks   uint64
}

// Stats returns a snapshot of the counters.
func (f *FTL) Stats() Stats { return f.stats }

// Add returns the field-wise sum of two snapshots. Array drivers use it to
// merge the per-device FTLs of a striped array into one device-level view.
func (s Stats) Add(o Stats) Stats {
	s.HostReads += o.HostReads
	s.HostWrites += o.HostWrites
	s.Invalidations += o.Invalidations
	s.Erases += o.Erases
	for i := range s.ReadsByClass {
		s.ReadsByClass[i] += o.ReadsByClass[i]
	}
	for i := range s.ReadsBySenses {
		s.ReadsBySenses[i] += o.ReadsBySenses[i]
	}
	s.ReadsFromIDA += o.ReadsFromIDA
	s.GCJobs += o.GCJobs
	s.GCMoves += o.GCMoves
	s.GCIDAVictims += o.GCIDAVictims
	s.Refreshes += o.Refreshes
	s.RefreshValidPages += o.RefreshValidPages
	s.RefreshMoves += o.RefreshMoves
	s.IDARefreshes += o.IDARefreshes
	s.IDAAdjustedWLs += o.IDAAdjustedWLs
	s.IDAVerifyReads += o.IDAVerifyReads
	s.IDACorruptedWrites += o.IDACorruptedWrites
	s.IDAKeptPages += o.IDAKeptPages
	s.ProgramPower += o.ProgramPower
	s.ProgrammedCells += o.ProgrammedCells
	s.ProgramFailures += o.ProgramFailures
	s.EraseFailures += o.EraseFailures
	s.RetiredBlocks += o.RetiredBlocks
	return s
}

// ResetStats zeroes the counters. Simulation drivers call it after warmup
// so measurements cover only the timed phase.
func (f *FTL) ResetStats() { f.stats = Stats{} }

// BlockUsage is a point-in-time census of block states, backing the paper's
// Section III-C in-use block accounting.
type BlockUsage struct {
	Total     int // all blocks in the device
	Free      int // erased, on a free list
	Active    int // currently accepting programs
	InUse     int // programmed, holding at least one valid page
	Empty     int // programmed but fully invalid (awaiting GC)
	IDABlocks int // reprogrammed with the IDA coding, still in use
	// IDAValidPages counts valid pages living on IDA-reprogrammed
	// blocks — the merge-state page population the telemetry
	// time-series tracks over refresh cycles.
	IDAValidPages int
	// Retired counts grown-bad blocks permanently out of service.
	Retired int
}

// Add returns the field-wise sum of two censuses, merging a striped array's
// per-device block states into one array-level view.
func (u BlockUsage) Add(o BlockUsage) BlockUsage {
	u.Total += o.Total
	u.Free += o.Free
	u.Active += o.Active
	u.InUse += o.InUse
	u.Empty += o.Empty
	u.IDABlocks += o.IDABlocks
	u.IDAValidPages += o.IDAValidPages
	u.Retired += o.Retired
	return u
}

// Wear summarizes the erase-count distribution across all blocks, the
// quantity the greedy wear-aware GC tie-break is meant to keep flat and the
// paper's endurance discussion (Section III-B) cares about.
type Wear struct {
	MinErase  int
	MaxErase  int
	MeanErase float64
	// Spread is MaxErase - MinErase; small spreads mean even wear.
	Spread int
}

// WearStats computes the erase-count distribution.
func (f *FTL) WearStats() Wear {
	var w Wear
	first := true
	total, n := 0, 0
	for _, ps := range f.planes {
		for _, b := range ps.blocks {
			e := 0
			if b != nil {
				e = b.eraseCount
			}
			if first {
				w.MinErase, w.MaxErase = e, e
				first = false
			}
			if e < w.MinErase {
				w.MinErase = e
			}
			if e > w.MaxErase {
				w.MaxErase = e
			}
			total += e
			n++
		}
	}
	if n > 0 {
		w.MeanErase = float64(total) / float64(n)
	}
	w.Spread = w.MaxErase - w.MinErase
	return w
}

// Usage computes the census.
func (f *FTL) Usage() BlockUsage {
	var u BlockUsage
	u.Total = f.geom.TotalBlocks()
	for _, ps := range f.planes {
		u.Free += len(ps.free)
		if ps.active >= 0 {
			u.Active++
		}
		for blk, b := range ps.blocks {
			if b == nil || blk == ps.active {
				continue
			}
			if b.retired {
				u.Retired++
				continue
			}
			if b.nextStep == 0 {
				continue // erased (already counted via free list)
			}
			if b.validCount > 0 {
				u.InUse++
				if b.ida {
					u.IDABlocks++
					u.IDAValidPages += b.validCount
				}
			} else {
				u.Empty++
			}
		}
	}
	return u
}
