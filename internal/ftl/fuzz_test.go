package ftl

import (
	"math/rand"
	"testing"
	"time"

	"idaflash/internal/flash"
	"idaflash/internal/sim"
)

// TestRandomOperationsKeepInvariants drives the FTL through long random
// sequences of writes, overwrites, trims, reads, GC sweeps, and refresh
// scans, checking the structural invariants and data integrity after every
// phase. This is the workhorse robustness test: every mapping bug found
// during development would have tripped it.
func TestRandomOperationsKeepInvariants(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run("", func(t *testing.T) {
			g := flash.Geometry{
				Channels: 2, ChipsPerChannel: 1, DiesPerChip: 2, PlanesPerDie: 1,
				BlocksPerPlane: 10, WordlinesPerBlock: 4, PageSizeBytes: 8192, BitsPerCell: 3,
			}
			f := mustFTL(t, Options{
				Geometry:        g,
				IDAEnabled:      seed%2 == 0,
				ErrorRate:       0.3,
				RefreshPeriod:   time.Hour,
				MaxOpenBlockAge: 30 * time.Minute,
				RefreshStagger:  true,
				Seed:            seed,
			})
			rng := rand.New(rand.NewSource(seed))
			// Logical space sized to ~45% of the device.
			space := LPN(float64(g.TotalPages()) * 0.45)
			// shadow is the reference model: LPN -> written generation.
			shadow := make(map[LPN]int)
			gen := 0
			now := sim.Time(0)
			for step := 0; step < 4000; step++ {
				now += sim.Time(rng.Int63n(int64(time.Minute)))
				switch op := rng.Intn(100); {
				case op < 55: // write or overwrite
					lpn := LPN(rng.Int63n(int64(space)))
					gen++
					if _, err := f.Write(lpn, now); err != nil {
						t.Fatalf("seed %d step %d: write: %v", seed, step, err)
					}
					shadow[lpn] = gen
				case op < 60: // trim
					lpn := LPN(rng.Int63n(int64(space)))
					f.Trim(lpn)
					delete(shadow, lpn)
				case op < 90: // read
					lpn := LPN(rng.Int63n(int64(space)))
					info, ok := f.Read(lpn)
					_, want := shadow[lpn]
					if ok != want {
						t.Fatalf("seed %d step %d: read(%d) mapped=%v want %v", seed, step, lpn, ok, want)
					}
					if ok && (info.Senses < 1 || info.Senses > 4) {
						t.Fatalf("seed %d step %d: senses %d", seed, step, info.Senses)
					}
				case op < 95: // GC sweep
					mustCollectGC(t, f, now)
				default: // refresh scan
					mustDueRefreshes(t, f, now)
				}
				if step%500 == 0 {
					checkInvariants(t, f)
				}
			}
			checkInvariants(t, f)
			// Every shadow entry still resolves.
			for lpn := range shadow {
				if _, ok := f.Read(lpn); !ok {
					t.Fatalf("seed %d: LPN %d lost", seed, lpn)
				}
			}
			if f.MappedPages() != len(shadow) {
				t.Fatalf("seed %d: mapped %d, shadow %d", seed, f.MappedPages(), len(shadow))
			}
		})
	}
}

// TestRandomOperationsMLCAndQLC runs a shorter fuzz on 2- and 4-bit cells,
// exercising the generalized Table I planner end to end.
func TestRandomOperationsMLCAndQLC(t *testing.T) {
	for _, bits := range []int{2, 4} {
		bits := bits
		t.Run("", func(t *testing.T) {
			g := flash.Geometry{
				Channels: 1, ChipsPerChannel: 2, DiesPerChip: 1, PlanesPerDie: 1,
				BlocksPerPlane: 8, WordlinesPerBlock: 4, PageSizeBytes: 8192, BitsPerCell: bits,
			}
			f := mustFTL(t, Options{
				Geometry:        g,
				IDAEnabled:      true,
				ErrorRate:       0.2,
				RefreshPeriod:   time.Hour,
				MaxOpenBlockAge: 30 * time.Minute,
				Seed:            int64(bits),
			})
			rng := rand.New(rand.NewSource(int64(bits)))
			space := LPN(float64(g.TotalPages()) * 0.4)
			now := sim.Time(0)
			maxSenses := 1 << uint(bits-1)
			for step := 0; step < 1500; step++ {
				now += sim.Time(rng.Int63n(int64(time.Minute)))
				if rng.Intn(10) < 6 {
					if _, err := f.Write(LPN(rng.Int63n(int64(space))), now); err != nil {
						t.Fatalf("bits %d step %d: %v", bits, step, err)
					}
				} else if info, ok := f.Read(LPN(rng.Int63n(int64(space)))); ok {
					if info.Senses < 1 || info.Senses > maxSenses {
						t.Fatalf("bits %d: senses %d", bits, info.Senses)
					}
				}
				if step%250 == 0 {
					mustDueRefreshes(t, f, now)
					mustCollectGC(t, f, now)
					checkInvariants(t, f)
				}
			}
			checkInvariants(t, f)
			if f.Stats().IDARefreshes == 0 {
				t.Errorf("bits %d: IDA never engaged", bits)
			}
		})
	}
}
