package ftl

import (
	"fmt"

	"idaflash/internal/coding"
	"idaflash/internal/flash"
	"idaflash/internal/sim"
)

// PageProgram describes one physical page program the device must perform.
type PageProgram struct {
	Addr flash.PageAddr
	LPN  LPN
	// FailedPrograms counts program attempts the fault model failed before
	// this one stuck; the device model charges their wasted program pulses.
	FailedPrograms int
}

// Write maps the LPN to a fresh physical page, invalidating any previous
// copy, and returns the program operation. now stamps the block age used by
// the refresh policy. Write fails only when the device is truly out of
// space (no free block and nothing reclaimable), which indicates a mis-sized
// experiment rather than a runtime condition to retry.
func (f *FTL) Write(lpn LPN, now sim.Time) (PageProgram, error) {
	var p ppn
	var failed int
	var err error
	// CWDP striping with space-aware fallback: a transiently full plane
	// is skipped in favour of the next one with room.
	for try := 0; try < len(f.cwdp); try++ {
		pl := f.nextAllocPlane()
		if gcErr := f.ensureFree(pl, now); gcErr != nil {
			return PageProgram{}, gcErr
		}
		var n int
		p, n, err = f.claimPage(now, pl)
		failed += n
		if err == nil {
			break
		}
	}
	if err != nil {
		return PageProgram{}, err
	}
	if old, ok := f.l2p.get(lpn); ok {
		f.invalidate(old)
	}
	f.l2p.set(lpn, p)
	pl, blk, page := f.unpackPPN(p)
	b := f.planes[pl].blocks[blk]
	b.valid[page] = true
	b.rmap[page] = lpn
	b.validCount++
	f.stats.HostWrites++
	prog := PageProgram{Addr: f.addrOf(p), LPN: lpn, FailedPrograms: failed}
	f.opts.Hooks.write(prog)
	return prog, nil
}

// claimPage allocates the next page of the plane and runs the program past
// the fault model. A failed program grows the block bad: the block is closed
// immediately (no further programs land on it), it is retired at its
// eventual erase, and the write remaps to a page of a fresh block. Data
// already on a grown-bad block stays readable — program failures damage the
// page being programmed, not its neighbours — so its valid pages drain
// through the normal GC/refresh paths. The failed-attempt count is returned
// so the device model can charge the wasted program pulses.
func (f *FTL) claimPage(now sim.Time, pl flash.PlaneID) (ppn, int, error) {
	failed := 0
	for {
		p, err := f.allocate(now, pl)
		if err != nil {
			return 0, failed, err
		}
		if f.opts.Faults == nil {
			f.chargeProgram(1 + failed)
			return p, failed, nil
		}
		ps := f.planes[pl]
		_, blk, _ := f.unpackPPN(p)
		b := ps.blocks[blk]
		if !f.opts.Faults.ProgramFails(f.addrOf(p), b.eraseCount) {
			f.chargeProgram(1 + failed)
			return p, failed, nil
		}
		failed++
		f.stats.ProgramFailures++
		b.bad = true
		if ps.active == blk {
			f.closeActive(pl)
		}
	}
}

// Trim invalidates the LPN without writing a replacement.
func (f *FTL) Trim(lpn LPN) {
	if old, ok := f.l2p.get(lpn); ok {
		f.invalidate(old)
		f.l2p.remove(lpn)
	}
}

// nextAllocPlane returns the plane the next host write should land on,
// advancing the CWDP stripe cursor.
func (f *FTL) nextAllocPlane() flash.PlaneID {
	p := f.cwdp[f.allocCursor]
	f.allocCursor = (f.allocCursor + 1) % len(f.cwdp)
	return p
}

// allocate claims the next page of the plane's active block, opening a new
// block when needed. An active block that has been open longer than
// MaxOpenBlockAge is force-closed first, so its pages age toward refresh
// even when the plane fills slowly.
func (f *FTL) allocate(now sim.Time, pl flash.PlaneID) (ppn, error) {
	ps := f.planes[pl]
	// Only retire an aged active block when the plane has spare blocks:
	// closing a partial block strands its unwritten pages, which a plane
	// under space pressure cannot afford.
	if ps.active >= 0 && f.opts.MaxOpenBlockAge > 0 && len(ps.free) >= 2 {
		if b := ps.blocks[ps.active]; now-b.openedAt >= f.opts.MaxOpenBlockAge {
			f.closeActive(pl)
		}
	}
	if ps.active < 0 {
		if err := f.openBlock(now, pl); err != nil {
			return 0, err
		}
	}
	b := ps.blocks[ps.active]
	ref := f.order.At(b.nextStep)
	page := f.pageIndex(ref.WL, ref.Type)
	p := f.packPPN(pl, ps.active, page)
	b.nextStep++
	if b.nextStep == f.order.Len() {
		f.closeActive(pl)
	}
	return p, nil
}

// closeActive retires the plane's active block. The retention clock starts
// at the block's first program, which is when its oldest data was written.
func (f *FTL) closeActive(pl flash.PlaneID) {
	ps := f.planes[pl]
	b := ps.blocks[ps.active]
	b.programmedAt = b.openedAt
	ps.active = -1
}

// openBlock pops a free block and makes it the plane's active block.
func (f *FTL) openBlock(now sim.Time, pl flash.PlaneID) error {
	ps := f.planes[pl]
	if len(ps.free) == 0 {
		return fmt.Errorf("ftl: plane %d out of free blocks (undersized device or GC starved)", pl)
	}
	blk := ps.free[len(ps.free)-1]
	ps.free = ps.free[:len(ps.free)-1]
	b := f.blockAt(pl, blk)
	if b.nextStep != 0 {
		return fmt.Errorf("ftl: free block p%d/b%d not erased (step %d)", pl, blk, b.nextStep)
	}
	b.openedAt = now
	b.programmedAt = now
	ps.active = blk
	return nil
}

// invalidate clears a physical page's valid bit.
func (f *FTL) invalidate(p ppn) {
	pl, blk, page := f.unpackPPN(p)
	b := f.planes[pl].blocks[blk]
	if b == nil || !b.valid[page] {
		panic(fmt.Sprintf("ftl: invalidating already-invalid page %v", f.addrOf(p)))
	}
	b.valid[page] = false
	b.validCount--
	f.stats.Invalidations++
}

// eraseBlock wipes a block and returns it to the free list — unless the
// block is grown bad (an earlier program failed there) or the erase itself
// fails, in which case the block is retired instead.
func (f *FTL) eraseBlock(pl flash.PlaneID, blk int) {
	ps := f.planes[pl]
	b := ps.blocks[blk]
	if b == nil {
		panic(fmt.Sprintf("ftl: erasing untouched block p%d/b%d", pl, blk))
	}
	if b.validCount != 0 {
		panic(fmt.Sprintf("ftl: erasing block p%d/b%d with %d valid pages", pl, blk, b.validCount))
	}
	b.eraseCount++
	if b.bad {
		f.retireBlock(b)
		return
	}
	if f.opts.Faults != nil &&
		f.opts.Faults.EraseFails(flash.BlockAddr{Plane: pl, Block: blk}, b.eraseCount) {
		f.stats.EraseFailures++
		f.retireBlock(b)
		return
	}
	b.nextStep = 0
	b.ida = false
	b.refreshed = false
	for i := range b.valid {
		b.valid[i] = false
		b.rmap[i] = 0
	}
	for i := range b.wlKeep {
		b.wlKeep[i] = 0
	}
	ps.free = append(ps.free, blk)
	f.stats.Erases++
}

// retireBlock takes a block permanently out of service. The entry stays in
// the block table (wear stats still see it) but never rejoins the free
// list; GC, refresh, and allocation all skip it from here on.
func (f *FTL) retireBlock(b *block) {
	b.retired = true
	b.nextStep = 0
	b.ida = false
	b.refreshed = false
	for i := range b.valid {
		b.valid[i] = false
		b.rmap[i] = 0
	}
	for i := range b.wlKeep {
		b.wlKeep[i] = 0
	}
	f.stats.RetiredBlocks++
}

// chargeProgram accumulates the coding scheme's power/wear proxies for the
// given number of program pulses (the successful one plus any attempts the
// fault model failed — those transferred charge into the now-bad block too).
func (f *FTL) chargeProgram(attempts int) {
	f.stats.ProgramPower += float64(attempts) * f.cells.PageProgramPower()
	f.stats.ProgrammedCells += float64(attempts) * f.cells.PageProgrammedCells()
}

// relocate moves a valid physical page to a freshly-allocated page in the
// same plane (garbage collection relocates plane-locally, copyback-style),
// returning the destination program operation.
func (f *FTL) relocate(p ppn, now sim.Time) (PageProgram, error) {
	pl, _, _ := f.unpackPPN(p)
	return f.relocateTo(p, now, pl)
}

// relocateGlobal moves a valid physical page to the next page of the global
// CWDP write stripe, like a host write. The data refresh relocates this way:
// its pages round-trip through the controller for ECC correction anyway, so
// they re-enter the normal allocation stream and interleave with ongoing
// host writes rather than clustering into one plane's block. A transiently
// full plane is skipped in favour of the next one with space.
func (f *FTL) relocateGlobal(p ppn, now sim.Time) (PageProgram, error) {
	var err error
	for try := 0; try < len(f.cwdp); try++ {
		pl := f.nextAllocPlane()
		if gcErr := f.ensureFree(pl, now); gcErr != nil {
			return PageProgram{}, gcErr
		}
		var prog PageProgram
		prog, err = f.relocateTo(p, now, pl)
		if err == nil {
			return prog, nil
		}
	}
	return PageProgram{}, err
}

// relocateTo implements relocation into a specific plane. The destination
// is allocated before the source is invalidated, so a failed allocation
// leaves the source mapping intact.
func (f *FTL) relocateTo(p ppn, now sim.Time, target flash.PlaneID) (PageProgram, error) {
	pl, blk, page := f.unpackPPN(p)
	b := f.planes[pl].blocks[blk]
	lpn := b.rmap[page]
	dst, failed, err := f.claimPage(now, target)
	if err != nil {
		return PageProgram{}, err
	}
	f.invalidate(p)
	f.l2p.set(lpn, dst)
	dpl, dblk, dpage := f.unpackPPN(dst)
	db := f.planes[dpl].blocks[dblk]
	db.valid[dpage] = true
	db.rmap[dpage] = lpn
	db.validCount++
	return PageProgram{Addr: f.addrOf(dst), LPN: lpn, FailedPrograms: failed}, nil
}

// sensesAt returns the sensing count needed to read the given physical page
// under the wordline's current coding mode.
func (f *FTL) sensesAt(b *block, page int) int {
	wl, t := f.pageCoords(page)
	if keep := b.wlKeep[wl]; keep != 0 {
		return f.cells.IDASenses(keep, t)
	}
	return f.cells.ConventionalSenses(t)
}

// FreeBlocks returns the free-block count of a plane (for tests and
// admission logic).
func (f *FTL) FreeBlocks(pl flash.PlaneID) int { return len(f.planes[pl].free) }

// validMaskForPage is a small helper exposing sibling validity to the read
// classifier.
func (f *FTL) validMaskForPage(b *block, page int) coding.ValidMask {
	wl, _ := f.pageCoords(page)
	return f.wlValidMask(b, wl)
}
