package ftl

import (
	"testing"

	"idaflash/internal/sim"
)

// mustCollectGC and mustDueRefreshes run the background sweeps and fail the
// test on an allocation error, which on these well-sized test devices means
// a bug, not an undersized config.
func mustCollectGC(t testing.TB, f *FTL, now sim.Time) []GCJob {
	t.Helper()
	jobs, err := f.CollectGC(now)
	if err != nil {
		t.Fatalf("CollectGC: %v", err)
	}
	return jobs
}

func mustDueRefreshes(t testing.TB, f *FTL, now sim.Time) []RefreshJob {
	t.Helper()
	jobs, err := f.DueRefreshes(now)
	if err != nil {
		t.Fatalf("DueRefreshes: %v", err)
	}
	return jobs
}
