package ftl

import (
	"fmt"
	"math/rand"

	"idaflash/internal/coding"
	"idaflash/internal/flash"
	"idaflash/internal/sim"
)

// rngSeedMask decorrelates the FTL's random stream from the raw device seed.
// It is part of the snapshot contract: Restore rebuilds the stream from
// Options.Seed ^ rngSeedMask and skips forward to the recorded position.
const rngSeedMask = 0x49444146

// State is a deep, self-contained copy of everything mutable in an FTL: the
// L2P table (dense and sparse sides), every plane's block table, free list
// and active block, buffered inline GC jobs, the refresh guard, the stats
// counters, and the rng stream position. It exists so device-state snapshots
// (internal/snapshot) can serialize an aged device and later runs can
// restore it in O(state) instead of replaying the aging preamble.
//
// A State shares no memory with the FTL that produced it, and Restore
// installs fresh copies too — one cached State can seed any number of
// devices, concurrently.
type State struct {
	// Geometry is the device shape the state was captured from; Restore
	// rejects a mismatch (a mis-keyed snapshot) rather than installing
	// tables of the wrong dimensions.
	Geometry flash.Geometry

	// DenseL2P mirrors the dense mapping slice (noPPN sentinel preserved);
	// nil when the device was over the dense cap. SparseL2P carries the
	// out-of-range mappings. L2PCount is the mapped-LPN count, recomputed
	// and cross-checked on restore.
	DenseL2P  []uint64
	SparseL2P map[int64]uint64
	L2PCount  int

	Planes      []PlaneState
	AllocCursor int

	PendingGC        []GCJob
	Refreshing       flash.BlockAddr
	RefreshingActive bool

	Stats Stats

	// RNGDraws is the FTL rng's position in its seeded stream.
	RNGDraws uint64
}

// PlaneState is one plane's allocation state.
type PlaneState struct {
	Active int
	Free   []int // free block indexes, LIFO order preserved
	Blocks []BlockState
}

// BlockState is one block-status-table entry. Present distinguishes a
// lazily-unallocated entry (nil in the live table) from an allocated one, so
// a restored device's block census matches the original exactly.
type BlockState struct {
	Present      bool
	EraseCount   int
	OpenedAt     sim.Time
	ProgrammedAt sim.Time
	NextStep     int
	ValidCount   int
	Valid        []bool
	RMap         []LPN
	IDA          bool
	Refreshed    bool
	Bad          bool
	Retired      bool
	WLKeep       []coding.ValidMask
}

// Snapshot captures the FTL's full mutable state as a deep copy.
func (f *FTL) Snapshot() *State {
	st := &State{
		Geometry:         f.geom,
		L2PCount:         f.l2p.count,
		AllocCursor:      f.allocCursor,
		Refreshing:       f.refreshing,
		RefreshingActive: f.refreshingActive,
		Stats:            f.stats,
		RNGDraws:         f.rngSrc.Draws(),
	}
	if f.l2p.dense != nil {
		st.DenseL2P = make([]uint64, len(f.l2p.dense))
		for i, p := range f.l2p.dense {
			st.DenseL2P[i] = uint64(p)
		}
	}
	if len(f.l2p.sparse) > 0 {
		st.SparseL2P = make(map[int64]uint64, len(f.l2p.sparse))
		for k, v := range f.l2p.sparse {
			st.SparseL2P[int64(k)] = uint64(v)
		}
	}
	st.Planes = make([]PlaneState, len(f.planes))
	for pl, ps := range f.planes {
		out := PlaneState{
			Active: ps.active,
			Free:   append([]int(nil), ps.free...),
			Blocks: make([]BlockState, len(ps.blocks)),
		}
		for blk, b := range ps.blocks {
			if b == nil {
				continue
			}
			out.Blocks[blk] = BlockState{
				Present:      true,
				EraseCount:   b.eraseCount,
				OpenedAt:     b.openedAt,
				ProgrammedAt: b.programmedAt,
				NextStep:     b.nextStep,
				ValidCount:   b.validCount,
				Valid:        append([]bool(nil), b.valid...),
				RMap:         append([]LPN(nil), b.rmap...),
				IDA:          b.ida,
				Refreshed:    b.refreshed,
				Bad:          b.bad,
				Retired:      b.retired,
				WLKeep:       append([]coding.ValidMask(nil), b.wlKeep...),
			}
		}
		st.Planes[pl] = out
	}
	if len(f.pendingGC) > 0 {
		st.PendingGC = make([]GCJob, len(f.pendingGC))
		for i, job := range f.pendingGC {
			job.Moves = append([]MoveOp(nil), job.Moves...)
			st.PendingGC[i] = job
		}
	}
	return st
}

// Restore replaces the FTL's mutable state with a deep copy of st, as if the
// writes that produced st had just been replayed on this instance. The FTL
// must have been built with the same geometry (and, for identical subsequent
// behavior, the same seed and allocation order — the snapshot cache key pins
// those). Restore validates shapes and internal consistency and returns an
// error without touching the FTL on any mismatch, so a corrupt or mis-keyed
// snapshot degrades to an ordinary replay instead of a poisoned run.
//
// The copy lands in the FTL's existing storage: the dense L2P and block
// tables are overwritten in place (absent blocks return to the Reset pool,
// newly-present ones draw from it), so a warm run on a pooled device
// restores without a fresh deep copy. st itself is never aliased or
// mutated — one cached State can still seed any number of devices,
// concurrently.
func (f *FTL) Restore(st *State) error {
	if err := f.validateState(st); err != nil {
		return err
	}

	// Validation passed; everything below is infallible copying.
	if st.DenseL2P != nil {
		for i, v := range st.DenseL2P {
			f.l2p.dense[i] = ppn(v)
		}
	}
	f.l2p.sparse = nil
	if len(st.SparseL2P) > 0 {
		f.l2p.sparse = make(map[LPN]ppn, len(st.SparseL2P))
		for k, v := range st.SparseL2P {
			f.l2p.sparse[LPN(k)] = ppn(v)
		}
	}
	f.l2p.count = st.L2PCount

	for pl := range st.Planes {
		ps := &st.Planes[pl]
		np := f.planes[pl]
		np.active = ps.Active
		np.free = append(np.free[:0], ps.Free...)
		for blk := range ps.Blocks {
			bs := &ps.Blocks[blk]
			if !bs.Present {
				if b := np.blocks[blk]; b != nil {
					f.blockPool = append(f.blockPool, b)
					np.blocks[blk] = nil
				}
				continue
			}
			b := np.blocks[blk]
			if b == nil {
				b = f.newBlock()
				np.blocks[blk] = b
			}
			b.eraseCount = bs.EraseCount
			b.openedAt = bs.OpenedAt
			b.programmedAt = bs.ProgrammedAt
			b.nextStep = bs.NextStep
			b.validCount = bs.ValidCount
			copy(b.valid, bs.Valid)
			copy(b.rmap, bs.RMap)
			copy(b.wlKeep, bs.WLKeep)
			b.ida = bs.IDA
			b.refreshed = bs.Refreshed
			b.bad = bs.Bad
			b.retired = bs.Retired
		}
	}

	clear(f.pendingGC)
	f.pendingGC = f.pendingGC[:0]
	for _, job := range st.PendingGC {
		job.Moves = append([]MoveOp(nil), job.Moves...)
		f.pendingGC = append(f.pendingGC, job)
	}

	// Rebuild the rng at the recorded stream position. The seed is derived
	// from the FTL's own options, not stored in the snapshot: the snapshot
	// cache key includes the seed, so a state only ever restores onto a
	// device whose stream it belongs to.
	src := sim.NewCountedSource(f.opts.Seed ^ rngSeedMask)
	src.Skip(st.RNGDraws)

	f.allocCursor = st.AllocCursor
	f.refreshing = st.Refreshing
	f.refreshingActive = st.RefreshingActive
	f.stats = st.Stats
	f.rngSrc = src
	f.rng = rand.New(src)
	return nil
}

// validateState checks st against the FTL's shape without mutating either,
// so Restore's copy phase cannot fail partway through.
func (f *FTL) validateState(st *State) error {
	if st == nil {
		return fmt.Errorf("ftl: restore of nil state")
	}
	if st.Geometry != f.geom {
		return fmt.Errorf("ftl: snapshot geometry %+v does not match device %+v", st.Geometry, f.geom)
	}
	if len(st.Planes) != len(f.planes) {
		return fmt.Errorf("ftl: snapshot has %d planes, device has %d", len(st.Planes), len(f.planes))
	}
	if (f.l2p.dense != nil) != (st.DenseL2P != nil) {
		return fmt.Errorf("ftl: snapshot dense-L2P form does not match device capacity")
	}
	count := 0
	if st.DenseL2P != nil {
		if len(st.DenseL2P) != len(f.l2p.dense) {
			return fmt.Errorf("ftl: snapshot dense L2P has %d entries, device needs %d", len(st.DenseL2P), len(f.l2p.dense))
		}
		for _, v := range st.DenseL2P {
			if ppn(v) != noPPN {
				count++
			}
		}
	}
	count += len(st.SparseL2P)
	if count != st.L2PCount {
		return fmt.Errorf("ftl: snapshot L2P count %d does not match its %d entries", st.L2PCount, count)
	}
	pages := f.geom.PagesPerBlock()
	for pl := range st.Planes {
		ps := &st.Planes[pl]
		if len(ps.Blocks) != f.geom.BlocksPerPlane {
			return fmt.Errorf("ftl: snapshot plane %d has %d blocks, device has %d", pl, len(ps.Blocks), f.geom.BlocksPerPlane)
		}
		if ps.Active < -1 || ps.Active >= f.geom.BlocksPerPlane {
			return fmt.Errorf("ftl: snapshot plane %d active block %d out of range", pl, ps.Active)
		}
		for _, idx := range ps.Free {
			if idx < 0 || idx >= f.geom.BlocksPerPlane {
				return fmt.Errorf("ftl: snapshot plane %d free-list block %d out of range", pl, idx)
			}
		}
		for blk := range ps.Blocks {
			bs := &ps.Blocks[blk]
			if !bs.Present {
				continue
			}
			if len(bs.Valid) != pages || len(bs.RMap) != pages || len(bs.WLKeep) != f.geom.WordlinesPerBlock {
				return fmt.Errorf("ftl: snapshot plane %d block %d has wrong table sizes", pl, blk)
			}
			if bs.NextStep < 0 || bs.NextStep > pages {
				return fmt.Errorf("ftl: snapshot plane %d block %d next step %d out of range", pl, blk, bs.NextStep)
			}
		}
	}
	return nil
}
