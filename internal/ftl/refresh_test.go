package ftl

import (
	"testing"
	"time"

	"idaflash/internal/coding"
	"idaflash/internal/flash"
	"idaflash/internal/sim"
)

const hour = sim.Time(time.Hour)

func refreshOpts(ida bool, errRate float64) Options {
	return Options{
		Geometry:      tinyGeom(),
		Order:         flash.OrderSequential,
		IDAEnabled:    ida,
		ErrorRate:     errRate,
		RefreshPeriod: time.Duration(10 * hour),
		Seed:          1,
	}
}

func TestRefreshDisabled(t *testing.T) {
	opts := refreshOpts(false, 0)
	opts.RefreshPeriod = 0
	f := mustFTL(t, opts)
	for i := LPN(0); i < 12; i++ {
		f.Write(i, 0)
	}
	if jobs := mustDueRefreshes(t, f, 1000*hour); jobs != nil {
		t.Errorf("refresh disabled but %d jobs returned", len(jobs))
	}
}

func TestRefreshNotDueBeforePeriod(t *testing.T) {
	f := mustFTL(t, refreshOpts(false, 0))
	for i := LPN(0); i < 12; i++ {
		f.Write(i, 0)
	}
	if jobs := mustDueRefreshes(t, f, 5*hour); len(jobs) != 0 {
		t.Errorf("refresh fired %d jobs before the period", len(jobs))
	}
	if jobs := mustDueRefreshes(t, f, 11*hour); len(jobs) != 1 {
		t.Errorf("refresh fired %d jobs after the period, want 1", len(jobs))
	}
}

func TestOriginalRefreshMovesEverything(t *testing.T) {
	f := mustFTL(t, refreshOpts(false, 0))
	for i := LPN(0); i < 12; i++ {
		f.Write(i, 0)
	}
	f.Write(0, 0) // one page invalid in the target block
	jobs := mustDueRefreshes(t, f, 11*hour)
	if len(jobs) == 0 {
		t.Fatal("no refresh jobs")
	}
	// The moves may fill (and close) the destination block, making it
	// refresh-eligible in the same scan; examine the original target.
	j := jobs[0]
	if j.Target.Block != 0 {
		t.Fatalf("first refreshed block = %v, want block 0", j.Target)
	}
	if j.IDAApplied {
		t.Error("original refresh reported IDA")
	}
	if j.ValidPages != 11 || len(j.Reads) != 11 || len(j.Moves) != 11 {
		t.Errorf("job = valid %d reads %d moves %d, want 11/11/11", j.ValidPages, len(j.Reads), len(j.Moves))
	}
	if j.AdjustedWLs != 0 || len(j.VerifyReads) != 0 || len(j.CorruptedMoves) != 0 {
		t.Error("original refresh has IDA side effects")
	}
	// Target block now fully invalid.
	b := f.planes[j.Target.Plane].blocks[j.Target.Block]
	if b.validCount != 0 {
		t.Errorf("target block still has %d valid pages", b.validCount)
	}
	// Data intact.
	for i := LPN(0); i < 12; i++ {
		if _, ok := f.Read(i); !ok {
			t.Fatalf("LPN %d lost in refresh", i)
		}
	}
	// The same block must not refresh again immediately.
	if jobs := mustDueRefreshes(t, f, 11*hour); len(jobs) != 0 {
		t.Errorf("block re-refreshed %d times in one scan cycle", len(jobs))
	}
	checkInvariants(t, f)
}

func TestIDARefreshCase2Wordline(t *testing.T) {
	// Sequential order: WL w holds LPNs 3w (LSB), 3w+1 (CSB), 3w+2 (MSB).
	f := mustFTL(t, refreshOpts(true, 0))
	for i := LPN(0); i < 12; i++ {
		f.Write(i, 0)
	}
	// Invalidate the LSB of every wordline: all WLs become case 2.
	for w := LPN(0); w < 4; w++ {
		f.Write(3*w, 0)
	}
	jobs := mustDueRefreshes(t, f, 11*hour)
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	j := jobs[0]
	if !j.IDAApplied {
		t.Fatal("IDA refresh not applied")
	}
	if j.AdjustedWLs != 4 {
		t.Errorf("adjusted WLs = %d, want 4", j.AdjustedWLs)
	}
	// Case 2 moves nothing; every CSB and MSB page stays.
	if len(j.Moves) != 0 {
		t.Errorf("case-2 wordlines moved %d pages", len(j.Moves))
	}
	if len(j.VerifyReads) != 8 || j.KeptPages != 8 {
		t.Errorf("verify reads %d kept %d, want 8/8", len(j.VerifyReads), j.KeptPages)
	}
	// Post-IDA senses: CSB 1, MSB 2; verify reads already use them.
	for _, r := range j.VerifyReads {
		if r.Senses != 1 && r.Senses != 2 {
			t.Errorf("verify read senses = %d", r.Senses)
		}
	}
	// Host reads now see reduced latencies.
	for w := LPN(0); w < 4; w++ {
		csb, _ := f.Read(3*w + 1)
		if csb.Senses != 1 || !csb.IDA {
			t.Errorf("WL %d CSB after IDA: senses %d ida %v", w, csb.Senses, csb.IDA)
		}
		msb, _ := f.Read(3*w + 2)
		if msb.Senses != 2 || !msb.IDA {
			t.Errorf("WL %d MSB after IDA: senses %d ida %v", w, msb.Senses, msb.IDA)
		}
	}
	checkInvariants(t, f)
}

func TestIDARefreshCase1MovesLSB(t *testing.T) {
	f := mustFTL(t, refreshOpts(true, 0))
	for i := LPN(0); i < 12; i++ {
		f.Write(i, 0)
	}
	// All wordlines fully valid: case 1 moves each LSB and keeps CSB/MSB.
	jobs := mustDueRefreshes(t, f, 11*hour)
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	j := jobs[0]
	if !j.IDAApplied || j.AdjustedWLs != 4 {
		t.Fatalf("job = %+v", j)
	}
	if len(j.Moves) != 4 {
		t.Errorf("moves = %d, want 4 LSB relocations", len(j.Moves))
	}
	for _, m := range j.Moves {
		if m.FromSenses != 1 {
			t.Errorf("moved page senses = %d, want 1 (LSB)", m.FromSenses)
		}
		// Relocated LSBs must still be readable at their new home.
		info, ok := f.Read(m.LPN)
		if !ok || info.Addr != m.To {
			t.Errorf("moved LPN %d reads from %v, want %v", m.LPN, info.Addr, m.To)
		}
	}
	checkInvariants(t, f)
}

func TestIDARefreshCase3And4(t *testing.T) {
	f := mustFTL(t, refreshOpts(true, 0))
	for i := LPN(0); i < 12; i++ {
		f.Write(i, 0)
	}
	// WL0: invalidate CSB only (case 3). WL1: invalidate LSB+CSB (case 4).
	f.Write(1, 0)
	f.Write(3, 0)
	f.Write(4, 0)
	jobs := mustDueRefreshes(t, f, 11*hour)
	if len(jobs) == 0 {
		t.Fatal("no refresh jobs")
	}
	// MSBs of WL0 (LPN 2) and WL1 (LPN 5) must now read with 1 sensing.
	for _, lpn := range []LPN{2, 5} {
		info, ok := f.Read(lpn)
		if !ok {
			t.Fatalf("LPN %d lost", lpn)
		}
		if info.Senses != 1 || !info.IDA {
			t.Errorf("LPN %d after case 3/4: senses %d ida %v", lpn, info.Senses, info.IDA)
		}
	}
	checkInvariants(t, f)
}

func TestIDARefreshCase5To7MovesOnly(t *testing.T) {
	f := mustFTL(t, refreshOpts(true, 0))
	for i := LPN(0); i < 12; i++ {
		f.Write(i, 0)
	}
	// Invalidate every MSB: all wordlines become case 5 (MSB invalid,
	// LSB+CSB valid), so nothing is adjustable.
	for w := LPN(0); w < 4; w++ {
		f.Write(3*w+2, 0)
	}
	jobs := mustDueRefreshes(t, f, 11*hour)
	if len(jobs) == 0 {
		t.Fatal("no refresh jobs")
	}
	j := jobs[0]
	if j.Target.Block != 0 {
		t.Fatalf("first refreshed block = %v, want block 0", j.Target)
	}
	if j.IDAApplied || j.AdjustedWLs != 0 {
		t.Errorf("case-5 block applied IDA: %+v", j)
	}
	if len(j.Moves) != 8 {
		t.Errorf("moves = %d, want 8 (4 LSB + 4 CSB)", len(j.Moves))
	}
	checkInvariants(t, f)
}

func TestIDARefreshErrorRateOne(t *testing.T) {
	// E=100%: every kept page is corrupted and written back; the block
	// ends up with no valid pages despite the adjustment.
	f := mustFTL(t, refreshOpts(true, 1.0))
	for i := LPN(0); i < 12; i++ {
		f.Write(i, 0)
	}
	jobs := mustDueRefreshes(t, f, 11*hour)
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	j := jobs[0]
	if !j.IDAApplied {
		t.Fatal("IDA not applied")
	}
	if j.KeptPages != 0 {
		t.Errorf("kept pages = %d, want 0 at E=100%%", j.KeptPages)
	}
	if len(j.CorruptedMoves) != len(j.VerifyReads) {
		t.Errorf("corrupted %d != verified %d", len(j.CorruptedMoves), len(j.VerifyReads))
	}
	// All data remains readable (the error-free copies were written).
	for i := LPN(0); i < 12; i++ {
		if _, ok := f.Read(i); !ok {
			t.Fatalf("LPN %d lost", i)
		}
	}
	b := f.planes[j.Target.Plane].blocks[j.Target.Block]
	if b.validCount != 0 {
		t.Errorf("block still holds %d valid pages", b.validCount)
	}
	checkInvariants(t, f)
}

func TestIDABlockForcedReclaimNextCycle(t *testing.T) {
	f := mustFTL(t, refreshOpts(true, 0))
	for i := LPN(0); i < 12; i++ {
		f.Write(i, 0)
	}
	jobs := mustDueRefreshes(t, f, 11*hour)
	if len(jobs) != 1 || !jobs[0].IDAApplied {
		t.Fatal("first refresh should apply IDA")
	}
	target := jobs[0].Target
	// Next cycle: the IDA block must be refreshed with the original
	// flow (moved out entirely), not re-adjusted.
	jobs = mustDueRefreshes(t, f, 22*hour)
	var second *RefreshJob
	for i := range jobs {
		if jobs[i].Target == target {
			second = &jobs[i]
		}
	}
	if second == nil {
		t.Fatal("IDA block not refreshed on the next cycle")
	}
	if second.IDAApplied {
		t.Error("IDA block re-adjusted instead of reclaimed")
	}
	if len(second.Moves) != second.ValidPages {
		t.Errorf("forced reclaim moved %d of %d pages", len(second.Moves), second.ValidPages)
	}
	b := f.planes[target.Plane].blocks[target.Block]
	if b.validCount != 0 {
		t.Errorf("IDA block still holds %d valid pages after forced reclaim", b.validCount)
	}
	checkInvariants(t, f)
}

func TestRefreshDeterminism(t *testing.T) {
	run := func() []RefreshJob {
		f := mustFTL(t, refreshOpts(true, 0.5))
		for i := LPN(0); i < 24; i++ {
			f.Write(i, 0)
		}
		for i := LPN(0); i < 6; i++ {
			f.Write(i*3, 0)
		}
		return mustDueRefreshes(t, f, 11*hour)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("job counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Target != b[i].Target || a[i].KeptPages != b[i].KeptPages ||
			len(a[i].CorruptedMoves) != len(b[i].CorruptedMoves) ||
			len(a[i].Moves) != len(b[i].Moves) {
			t.Fatalf("job %d differs between identical runs", i)
		}
	}
}

func TestStaggerBlockAges(t *testing.T) {
	opts := refreshOpts(false, 0)
	opts.RefreshStagger = true
	f := mustFTL(t, opts)
	for i := LPN(0); i < 48; i++ { // four full blocks
		f.Write(i, 0)
	}
	f.StaggerBlockAges(0)
	ages := make(map[sim.Time]bool)
	for _, ps := range f.planes {
		for blk, b := range ps.blocks {
			if b == nil || blk == ps.active || b.nextStep != f.order.Len() {
				continue
			}
			if b.programmedAt > 0 || b.programmedAt < -10*hour {
				t.Errorf("staggered age %v out of range", b.programmedAt)
			}
			ages[b.programmedAt] = true
		}
	}
	if len(ages) < 2 {
		t.Error("stagger produced identical ages")
	}
	// Without the flag it is a no-op.
	f2 := mustFTL(t, refreshOpts(false, 0))
	for i := LPN(0); i < 12; i++ {
		f2.Write(i, 0)
	}
	f2.StaggerBlockAges(0)
	if f2.planes[0].blocks[0].programmedAt != 0 {
		t.Error("stagger ran without the flag")
	}
}

func TestTableIVShapeAtE20(t *testing.T) {
	// With E=20%, extra writes should be about 20% of extra reads, and
	// extra reads should be about the kept fraction of valid pages.
	f := mustFTL(t, refreshOpts(true, 0.2))
	// 4 full blocks, every wordline case 2 (LSB invalid).
	for i := LPN(0); i < 48; i++ {
		f.Write(i, 0)
	}
	for w := LPN(0); w < 16; w++ {
		f.Write(3*w, 0)
	}
	jobs := mustDueRefreshes(t, f, 11*hour)
	var verify, corrupted int
	for _, j := range jobs {
		verify += len(j.VerifyReads)
		corrupted += len(j.CorruptedMoves)
	}
	if verify == 0 {
		t.Fatal("no verify reads")
	}
	ratio := float64(corrupted) / float64(verify)
	if ratio < 0.05 || ratio > 0.40 {
		t.Errorf("corrupted/verify = %.2f, want ~0.20", ratio)
	}
	st := f.Stats()
	if st.IDAVerifyReads != uint64(verify) || st.IDACorruptedWrites != uint64(corrupted) {
		t.Error("Table IV counters inconsistent with jobs")
	}
}

func TestCoding232SchemeInFTL(t *testing.T) {
	// The FTL accepts a custom scheme; with the 2-3-2 coding the page
	// sensing counts follow that scheme.
	opts := Options{Geometry: tinyGeom(), Code: coding.Vendor232TLC(), Order: flash.OrderSequential}
	f := mustFTL(t, opts)
	for i := LPN(0); i < 3; i++ {
		f.Write(i, 0)
	}
	want := []int{2, 3, 2}
	for i := LPN(0); i < 3; i++ {
		info, _ := f.Read(i)
		if info.Senses != want[i] {
			t.Errorf("2-3-2 page %d senses = %d, want %d", i, info.Senses, want[i])
		}
	}
}

func TestIDAOnlyInvalidAblation(t *testing.T) {
	opts := refreshOpts(true, 0)
	opts.IDAOnlyInvalid = true
	f := mustFTL(t, opts)
	for i := LPN(0); i < 12; i++ {
		f.Write(i, 0)
	}
	// WL0 stays fully valid (case 1); WL1 loses its LSB (case 2).
	f.Write(3, 0)
	jobs := mustDueRefreshes(t, f, 11*hour)
	if len(jobs) == 0 {
		t.Fatal("no refresh jobs")
	}
	j := jobs[0]
	if j.Target.Block != 0 {
		t.Fatalf("first job target %v", j.Target)
	}
	if !j.IDAApplied {
		t.Fatal("case-2 wordline should still be adjusted")
	}
	// Only WL1 (and WLs 2-3, also case 1 -> moved) adjust in this mode:
	// exactly one adjusted wordline.
	if j.AdjustedWLs != 1 {
		t.Errorf("adjusted WLs = %d, want 1 (only the case-2 wordline)", j.AdjustedWLs)
	}
	// The three case-1 wordlines moved all 3 pages each (9 moves).
	if len(j.Moves) != 9 {
		t.Errorf("moves = %d, want 9 (case-1 wordlines relocated whole)", len(j.Moves))
	}
	// Case-2 kept pages read fast afterwards.
	if csb, _ := f.Read(4); csb.Senses != 1 || !csb.IDA {
		t.Errorf("case-2 CSB after ablation refresh: %+v", csb)
	}
	// Case-1 pages were relocated and stay conventional.
	if lsb, _ := f.Read(0); lsb.IDA {
		t.Error("case-1 page converted despite IDAOnlyInvalid")
	}
	checkInvariants(t, f)
}
