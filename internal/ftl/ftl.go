// Package ftl implements the flash translation layer of the simulated SSD:
// page-level logical-to-physical mapping with CWDP static allocation,
// validity tracking (the "block status table"), greedy wear-aware garbage
// collection, remapping-based data refresh, and the paper's IDA coding
// integrated into the refresh flow (Section III-C).
//
// The FTL is a pure state machine: it decides *what* physical operations
// happen and updates mapping state immediately, returning operation
// descriptions (addresses plus sensing counts) that the discrete-event SSD
// model (internal/ssd) turns into timed resource holds.
package ftl

import (
	"fmt"
	"math/rand"
	"time"

	"idaflash/internal/coding"
	"idaflash/internal/flash"
	"idaflash/internal/sim"
)

// LPN is a logical page number (host address divided by the page size).
type LPN int64

// ppn is a packed physical page number.
type ppn uint64

const noPPN = ppn(1) << 63

// FaultModel is the FTL's view of a fault injector (internal/faults): it
// answers, per physical operation, whether the medium fails it. The FTL
// owns the recovery policy — remap-on-program-failure and erase-failure
// retirement — while the model owns the failure draws, so scenarios stay
// replayable. A nil model injects nothing.
type FaultModel interface {
	// ProgramFails reports whether programming the page fails, given the
	// block's erase count (grown bad blocks appear faster on worn blocks).
	ProgramFails(addr flash.PageAddr, eraseCount int) bool
	// EraseFails reports whether erasing the block fails, given its erase
	// count after this erase.
	EraseFails(addr flash.BlockAddr, eraseCount int) bool
}

// Hooks receives notifications of FTL-level operations as they are
// decided, before their timing is charged. The telemetry layer hangs its
// activity counters here; every field is optional and a nil *Hooks (the
// default) costs one branch per operation and no allocations. Hooks must
// not mutate FTL state.
type Hooks struct {
	// Read fires for every resolved host page read.
	Read func(info ReadInfo)
	// Write fires for every host page program.
	Write func(prog PageProgram)
	// GC fires once per completed garbage-collection job.
	GC func(job *GCJob)
	// Refresh fires once per completed refresh job.
	Refresh func(job *RefreshJob)
}

// read dispatches the Read hook, tolerating nil receivers and fields.
func (h *Hooks) read(info ReadInfo) {
	if h != nil && h.Read != nil {
		h.Read(info)
	}
}

func (h *Hooks) write(prog PageProgram) {
	if h != nil && h.Write != nil {
		h.Write(prog)
	}
}

func (h *Hooks) gc(job *GCJob) {
	if h != nil && h.GC != nil {
		h.GC(job)
	}
}

func (h *Hooks) refresh(job *RefreshJob) {
	if h != nil && h.Refresh != nil {
		h.Refresh(job)
	}
}

// Options configures an FTL instance.
type Options struct {
	// Geometry is the physical device shape. Required.
	Geometry flash.Geometry
	// Code is the cell coding; defaults to the registry's default code
	// (the paper's Gray/IDA coding) matching Geometry.BitsPerCell.
	Code coding.Code
	// Order is the in-block programming schedule; defaults to the shadow
	// (staircase) order real devices use.
	Order flash.OrderKind
	// IDAEnabled turns the invalid-data-aware refresh on.
	IDAEnabled bool
	// IDAOnlyInvalid restricts the voltage adjustment to wordlines that
	// already have an invalid lower page (Table I cases 2-4), relocating
	// fully-valid wordlines like the original refresh instead of
	// converting them via case 1. This is an ablation knob: it isolates
	// how much of the benefit comes from invalid-data awareness proper
	// versus the blanket case-1 conversion.
	IDAOnlyInvalid bool
	// ErrorRate is the probability that a page kept through the voltage
	// adjustment is corrupted by program interference and must be
	// written back to the new block (the paper's E0..E80 knob).
	ErrorRate float64
	// RefreshPeriod is the age at which a fully-programmed block is
	// refreshed. Zero disables refresh.
	RefreshPeriod time.Duration
	// RefreshStagger spreads initial block ages uniformly over one
	// period so refreshes do not arrive in a storm.
	RefreshStagger bool
	// MaxOpenBlockAge force-closes a plane's active block once it has
	// been open this long, even if not full, so slowly-filling blocks
	// still become eligible for refresh (data retention is about page
	// age, not block occupancy). Zero disables forced closure.
	MaxOpenBlockAge time.Duration
	// Allocation is the static page-allocation order, a permutation of
	// the letters C (channel), W (way/chip), D (die), P (plane); the
	// first letter varies fastest across consecutive writes. The paper
	// uses "CWDP" (channel first), the default; the cited allocation
	// study (Jung & Kandemir, HotStorage'12) evaluates the others.
	Allocation string
	// GCFreeBlocks is the per-plane free-block low watermark that
	// triggers garbage collection; defaults to 2.
	GCFreeBlocks int
	// Seed drives the FTL's randomness (corruption draws, stagger).
	Seed int64
	// Hooks observes FTL operations (telemetry); nil disables.
	Hooks *Hooks
	// Faults injects media failures (program/erase); nil disables. The
	// SSD model supplies the per-device injector from its fault scenario.
	Faults FaultModel
}

func (o Options) withDefaults() (Options, error) {
	if err := o.Geometry.Validate(); err != nil {
		return o, err
	}
	if o.Code == nil {
		o.Code = coding.Default(o.Geometry.BitsPerCell)
	}
	if o.Code.Bits() != o.Geometry.BitsPerCell {
		return o, fmt.Errorf("ftl: scheme has %d bits but geometry says %d", o.Code.Bits(), o.Geometry.BitsPerCell)
	}
	if o.ErrorRate < 0 || o.ErrorRate > 1 {
		return o, fmt.Errorf("ftl: ErrorRate %v out of [0,1]", o.ErrorRate)
	}
	if o.RefreshPeriod < 0 {
		return o, fmt.Errorf("ftl: RefreshPeriod %v must be non-negative", o.RefreshPeriod)
	}
	if o.MaxOpenBlockAge < 0 {
		return o, fmt.Errorf("ftl: MaxOpenBlockAge %v must be non-negative", o.MaxOpenBlockAge)
	}
	if o.Allocation == "" {
		o.Allocation = "CWDP"
	}
	if err := validateAllocation(o.Allocation); err != nil {
		return o, err
	}
	if o.GCFreeBlocks == 0 {
		o.GCFreeBlocks = 2
	}
	if o.GCFreeBlocks < 1 {
		return o, fmt.Errorf("ftl: GCFreeBlocks %d must be at least 1", o.GCFreeBlocks)
	}
	if o.GCFreeBlocks >= o.Geometry.BlocksPerPlane {
		return o, fmt.Errorf("ftl: GCFreeBlocks %d must be below BlocksPerPlane %d", o.GCFreeBlocks, o.Geometry.BlocksPerPlane)
	}
	return o, nil
}

// block is the per-block entry of the block status table.
type block struct {
	eraseCount   int
	openedAt     sim.Time // time the block started accepting programs
	programmedAt sim.Time // retention clock start (set when the block closes)
	nextStep     int      // next program-order step; len(order) when full
	validCount   int
	valid        []bool // per page index (wl*bits + type)
	rmap         []LPN  // reverse map per page index
	ida          bool   // reprogrammed with the IDA coding
	refreshed    bool   // already refreshed once this cycle (await reclaim)
	bad          bool   // a program failed here; retire at the next erase
	retired      bool   // permanently out of service (grown bad block)
	// wlKeep[wl] is the kept-page mask of an IDA-reprogrammed wordline,
	// or 0 for a conventionally-coded wordline.
	wlKeep []coding.ValidMask
}

// plane is the per-plane allocation state.
type plane struct {
	blocks []*block
	free   []int // free block indexes (LIFO)
	active int   // block currently accepting programs; -1 if none
}

// FTL is the flash translation layer state machine. It is not safe for
// concurrent use; the simulation is single-threaded by design.
type FTL struct {
	opts  Options
	geom  flash.Geometry
	cells *flash.CellModel
	order *flash.ProgramOrder
	rng   *rand.Rand
	// rngSrc is rng's underlying source; its draw count pins the rng's
	// position in the seeded stream so Snapshot/Restore can serialize it.
	rngSrc *sim.CountedSource

	l2p    *l2pTable
	planes []*plane
	// allocCursor rotates host writes across planes in CWDP order
	// (channel first, then chip, then die, then plane).
	allocCursor int
	// cwdp[i] is the PlaneID the i-th allocation in a stripe targets.
	cwdp []flash.PlaneID

	// pendingGC buffers garbage collections the FTL had to run inline
	// (to keep a plane writable mid-write or mid-refresh) until the SSD
	// model drains them via CollectGC and charges their timing.
	pendingGC []GCJob
	// refreshing marks the block currently being refreshed; inline GC
	// must not reclaim it out from under the refresh flow.
	refreshing       flash.BlockAddr
	refreshingActive bool

	// blockPool holds block-status-table entries harvested by Reset so a
	// reused FTL repopulates its lazily-allocated block table without
	// fresh allocations. Entries keep their table slices (sized for this
	// geometry); newBlock clears them on the way out.
	blockPool []*block

	stats Stats
}

// New builds an FTL over an erased device.
func New(opts Options) (*FTL, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	g := opts.Geometry
	src := sim.NewCountedSource(opts.Seed ^ rngSeedMask)
	f := &FTL{
		opts:   opts,
		geom:   g,
		cells:  flash.NewCellModel(opts.Code),
		order:  flash.NewProgramOrder(g.WordlinesPerBlock, g.BitsPerCell, opts.Order),
		rng:    rand.New(src),
		rngSrc: src,
		l2p:    newL2P(g.TotalPages()),
	}
	f.planes = make([]*plane, g.Planes())
	for i := range f.planes {
		p := &plane{active: -1, blocks: make([]*block, g.BlocksPerPlane)}
		p.free = make([]int, 0, g.BlocksPerPlane)
		// Push free blocks in reverse so allocation starts at block 0.
		for b := g.BlocksPerPlane - 1; b >= 0; b-- {
			p.free = append(p.free, b)
		}
		f.planes[i] = p
	}
	f.cwdp = allocationStripe(g, opts.Allocation)
	return f, nil
}

// Reset returns the FTL to the erased-device state New would produce for
// opts, reusing the existing storage: the dense L2P is refilled in place,
// block-status-table entries are harvested into a pool that blockAt (and
// Restore) draws from, and the free lists and pending-GC buffer keep their
// backing arrays. The geometry must match the one the FTL was built with —
// every table is sized for it — so a pooled FTL is keyed by geometry; any
// other option may change freely. A reset FTL is indistinguishable from a
// freshly built one, including its rng stream position.
func (f *FTL) Reset(opts Options) error {
	opts, err := opts.withDefaults()
	if err != nil {
		return err
	}
	if opts.Geometry != f.geom {
		return fmt.Errorf("ftl: reset geometry %+v does not match device %+v", opts.Geometry, f.geom)
	}
	src := sim.NewCountedSource(opts.Seed ^ rngSeedMask)
	sameOrder := opts.Order == f.opts.Order
	f.opts = opts
	f.cells = flash.NewCellModel(opts.Code)
	if !sameOrder {
		f.order = flash.NewProgramOrder(f.geom.WordlinesPerBlock, f.geom.BitsPerCell, opts.Order)
	}
	f.rng = rand.New(src)
	f.rngSrc = src
	f.l2p.reset()
	for _, p := range f.planes {
		for i, b := range p.blocks {
			if b != nil {
				f.blockPool = append(f.blockPool, b)
				p.blocks[i] = nil
			}
		}
		p.free = p.free[:0]
		for b := f.geom.BlocksPerPlane - 1; b >= 0; b-- {
			p.free = append(p.free, b)
		}
		p.active = -1
	}
	f.allocCursor = 0
	f.cwdp = allocationStripe(f.geom, opts.Allocation)
	clear(f.pendingGC)
	f.pendingGC = f.pendingGC[:0]
	f.refreshing = flash.BlockAddr{}
	f.refreshingActive = false
	f.stats = Stats{}
	return nil
}

// validateAllocation checks that the order names each of C, W, D, P once.
func validateAllocation(s string) error {
	if len(s) != 4 {
		return fmt.Errorf("ftl: allocation order %q must have 4 letters", s)
	}
	seen := map[byte]bool{}
	for i := 0; i < 4; i++ {
		c := s[i]
		switch c {
		case 'C', 'W', 'D', 'P':
			if seen[c] {
				return fmt.Errorf("ftl: allocation order %q repeats %q", s, string(c))
			}
			seen[c] = true
		default:
			return fmt.Errorf("ftl: allocation order %q has invalid letter %q (want C, W, D, P)", s, string(c))
		}
	}
	return nil
}

// allocationStripe builds the plane visit order for a static allocation: the
// first letter of the order varies fastest across consecutive allocations.
func allocationStripe(g flash.Geometry, order string) []flash.PlaneID {
	limit := func(c byte) int {
		switch c {
		case 'C':
			return g.Channels
		case 'W':
			return g.ChipsPerChannel
		case 'D':
			return g.DiesPerChip
		default:
			return g.PlanesPerDie
		}
	}
	stripe := make([]flash.PlaneID, 0, g.Planes())
	idx := [4]int{} // counters for order[0..3]
	for {
		coord := flash.PlaneCoord{}
		for i := 0; i < 4; i++ {
			switch order[i] {
			case 'C':
				coord.Channel = idx[i]
			case 'W':
				coord.Chip = idx[i]
			case 'D':
				coord.Die = idx[i]
			default:
				coord.Plane = idx[i]
			}
		}
		stripe = append(stripe, g.PlaneOf(coord))
		// Odometer increment, first letter fastest.
		i := 0
		for ; i < 4; i++ {
			idx[i]++
			if idx[i] < limit(order[i]) {
				break
			}
			idx[i] = 0
		}
		if i == 4 {
			return stripe
		}
	}
}

// Geometry returns the device geometry.
func (f *FTL) Geometry() flash.Geometry { return f.geom }

// CellModel returns the shared cell model (coding plus merge cache).
func (f *FTL) CellModel() *flash.CellModel { return f.cells }

// Options returns the options the FTL was built with (after defaulting).
func (f *FTL) Options() Options { return f.opts }

// packPPN encodes a physical page address.
func (f *FTL) packPPN(pl flash.PlaneID, blk, page int) ppn {
	per := f.geom.PagesPerBlock()
	return ppn((int(pl)*f.geom.BlocksPerPlane+blk)*per + page)
}

// unpackPPN decodes a physical page address.
func (f *FTL) unpackPPN(p ppn) (flash.PlaneID, int, int) {
	per := f.geom.PagesPerBlock()
	page := int(p) % per
	rest := int(p) / per
	return flash.PlaneID(rest / f.geom.BlocksPerPlane), rest % f.geom.BlocksPerPlane, page
}

// addrOf converts a packed PPN into a flash address.
func (f *FTL) addrOf(p ppn) flash.PageAddr {
	pl, blk, page := f.unpackPPN(p)
	return flash.PageAddr{BlockAddr: flash.BlockAddr{Plane: pl, Block: blk}, Page: page}
}

// pageIndex computes the in-block page index of a wordline/page-type pair.
func (f *FTL) pageIndex(wl int, t coding.PageType) int {
	return wl*f.geom.BitsPerCell + int(t)
}

// pageCoords inverts pageIndex.
func (f *FTL) pageCoords(page int) (wl int, t coding.PageType) {
	return page / f.geom.BitsPerCell, coding.PageType(page % f.geom.BitsPerCell)
}

// blockAt returns the block entry, allocating its table lazily.
func (f *FTL) blockAt(pl flash.PlaneID, blk int) *block {
	b := f.planes[pl].blocks[blk]
	if b == nil {
		b = f.newBlock()
		f.planes[pl].blocks[blk] = b
	}
	return b
}

// newBlock returns a zeroed block entry, reusing a pooled one (tables
// cleared in place) when Reset has harvested any.
func (f *FTL) newBlock() *block {
	if n := len(f.blockPool); n > 0 {
		b := f.blockPool[n-1]
		f.blockPool[n-1] = nil
		f.blockPool = f.blockPool[:n-1]
		clear(b.valid)
		clear(b.rmap)
		clear(b.wlKeep)
		*b = block{valid: b.valid, rmap: b.rmap, wlKeep: b.wlKeep}
		return b
	}
	return &block{
		valid:  make([]bool, f.geom.PagesPerBlock()),
		rmap:   make([]LPN, f.geom.PagesPerBlock()),
		wlKeep: make([]coding.ValidMask, f.geom.WordlinesPerBlock),
	}
}

// wlValidMask returns the validity mask of a wordline.
func (f *FTL) wlValidMask(b *block, wl int) coding.ValidMask {
	var m coding.ValidMask
	for j := 0; j < f.geom.BitsPerCell; j++ {
		if b.valid[f.pageIndex(wl, coding.PageType(j))] {
			m = m.With(coding.PageType(j))
		}
	}
	return m
}

// Mapped reports whether the LPN currently has a physical page.
func (f *FTL) Mapped(lpn LPN) bool {
	_, ok := f.l2p.get(lpn)
	return ok
}

// MappedPages returns the number of mapped logical pages.
func (f *FTL) MappedPages() int { return f.l2p.len() }
