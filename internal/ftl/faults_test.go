package ftl

import (
	"testing"

	"idaflash/internal/flash"
)

// scriptedFaults is a deterministic FaultModel for tests: it fails the next
// N program draws and, optionally, every erase draw.
type scriptedFaults struct {
	failNextPrograms int
	failErases       bool
	programDraws     int
	eraseDraws       int
}

func (s *scriptedFaults) ProgramFails(_ flash.PageAddr, _ int) bool {
	s.programDraws++
	if s.failNextPrograms > 0 {
		s.failNextPrograms--
		return true
	}
	return false
}

func (s *scriptedFaults) EraseFails(_ flash.BlockAddr, _ int) bool {
	s.eraseDraws++
	return s.failErases
}

func TestProgramFailureRemapsWrite(t *testing.T) {
	fm := &scriptedFaults{failNextPrograms: 2}
	f := mustFTL(t, Options{Geometry: tinyGeom(), Faults: fm})
	prog, err := f.Write(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The first two program attempts failed; the write remapped twice and
	// landed on the third block.
	if prog.FailedPrograms != 2 {
		t.Errorf("FailedPrograms = %d, want 2", prog.FailedPrograms)
	}
	if got := f.Stats().ProgramFailures; got != 2 {
		t.Errorf("stats.ProgramFailures = %d, want 2", got)
	}
	ps := f.planes[0]
	if !ps.blocks[0].bad || !ps.blocks[1].bad {
		t.Error("failed blocks not marked grown bad")
	}
	if ps.active != 2 {
		t.Errorf("active block = %d, want 2 (remap target)", ps.active)
	}
	if _, ok := f.Read(0); !ok {
		t.Fatal("LPN 0 unreadable after remap")
	}
	checkInvariants(t, f)

	// The grown-bad blocks are empty, so GC reclaims them next — and their
	// erase retires them instead of returning them to the free list.
	f.opts.GCFreeBlocks = tinyGeom().BlocksPerPlane
	jobs := mustCollectGC(t, f, 0)
	if len(jobs) != 2 {
		t.Fatalf("GC reclaimed %d blocks, want the 2 grown-bad ones", len(jobs))
	}
	st := f.Stats()
	if st.RetiredBlocks != 2 {
		t.Errorf("stats.RetiredBlocks = %d, want 2", st.RetiredBlocks)
	}
	if st.Erases != 0 {
		t.Errorf("stats.Erases = %d; retiring erases must not count as completed", st.Erases)
	}
	if st.EraseFailures != 0 {
		t.Errorf("stats.EraseFailures = %d; bad blocks retire before the erase draw", st.EraseFailures)
	}
	if fm.eraseDraws != 0 {
		t.Errorf("erase fault drawn %d times for already-bad blocks", fm.eraseDraws)
	}
	for _, blk := range ps.free {
		if blk == 0 || blk == 1 {
			t.Fatalf("retired block %d back on the free list", blk)
		}
	}
	u := f.Usage()
	if u.Retired != 2 {
		t.Errorf("Usage().Retired = %d, want 2", u.Retired)
	}
	if _, ok := f.Read(0); !ok {
		t.Fatal("LPN 0 lost after retirement")
	}
	checkInvariants(t, f)
}

func TestEraseFailureRetires(t *testing.T) {
	fm := &scriptedFaults{failErases: true}
	f := mustFTL(t, Options{Geometry: tinyGeom(), Faults: fm})
	// Fill two blocks, then invalidate the first one completely so GC has
	// a free victim whose erase will fail.
	for i := LPN(0); i < 24; i++ {
		if _, err := f.Write(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := LPN(0); i < 12; i++ {
		if _, err := f.Write(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	f.opts.GCFreeBlocks = 6
	freeBefore := f.FreeBlocks(0)
	mustCollectGC(t, f, 0)
	st := f.Stats()
	if st.EraseFailures == 0 {
		t.Fatal("no erase failure recorded")
	}
	if st.RetiredBlocks != st.EraseFailures {
		t.Errorf("RetiredBlocks = %d, EraseFailures = %d; every failed erase must retire",
			st.RetiredBlocks, st.EraseFailures)
	}
	if st.Erases != 0 {
		t.Errorf("stats.Erases = %d with every erase failing", st.Erases)
	}
	if got := f.FreeBlocks(0); got != freeBefore {
		t.Errorf("free blocks %d -> %d; failed erases must not replenish the free list",
			freeBefore, got)
	}
	if u := f.Usage(); uint64(u.Retired) != st.RetiredBlocks {
		t.Errorf("Usage().Retired = %d, want %d", u.Retired, st.RetiredBlocks)
	}
	// Retired blocks are out of the GC candidate set: another pass finds
	// nothing new to reclaim (remaining blocks are fully valid).
	if jobs := mustCollectGC(t, f, 0); len(jobs) != 0 {
		t.Errorf("second GC pass reclaimed %d blocks, want 0", len(jobs))
	}
	for i := LPN(0); i < 24; i++ {
		if _, ok := f.Read(i); !ok {
			t.Fatalf("LPN %d lost", i)
		}
	}
	checkInvariants(t, f)
}
