package ftl

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"idaflash/internal/flash"
	"idaflash/internal/sim"
)

// ageRandomly drives the FTL through a randomized history: a skewed
// overwrite-heavy write mix (forcing inline GC), trims, out-of-range LPNs
// (exercising the sparse L2P side), refresh sweeps with the IDA corruption
// draws (advancing the rng stream), and optional stagger. It leaves whatever
// pendingGC the inline path buffered undrained, so the snapshot covers
// mid-GC state.
func ageRandomly(t *testing.T, f *FTL, seed int64, writes int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	capacity := f.Geometry().TotalPages()
	now := sim.Time(0)
	for i := 0; i < writes; i++ {
		now += sim.Time(rng.Intn(1000)) * sim.Time(time.Microsecond)
		// The total footprint (cold range + sparse overflow) stays around
		// half of capacity so GC can always find reclaimable victims.
		var lpn LPN
		switch rng.Intn(10) {
		case 0: // sparse side: address beyond device capacity
			lpn = LPN(capacity) + LPN(rng.Intn(8))
		case 1, 2: // cold spread
			lpn = LPN(rng.Int63n(capacity / 2))
		default: // hot working set, forces overwrites and GC pressure
			lpn = LPN(rng.Intn(int(capacity) / 8))
		}
		if _, err := f.Write(lpn, now); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if rng.Intn(20) == 0 {
			f.Trim(LPN(rng.Int63n(capacity)))
		}
		if rng.Intn(50) == 0 {
			if _, err := f.DueRefreshes(now); err != nil {
				t.Fatalf("refresh at write %d: %v", i, err)
			}
		}
	}
}

func snapshotOptions(g flash.Geometry, seed int64, fm FaultModel) Options {
	return Options{
		Geometry:       g,
		IDAEnabled:     true,
		ErrorRate:      0.2, // corruption draws advance the rng stream
		RefreshPeriod:  100 * time.Microsecond,
		RefreshStagger: true,
		Seed:           seed,
		Faults:         fm,
	}
}

// TestSnapshotRestoreDeepEqual round-trips randomized FTL states through
// Snapshot/Restore and requires the restored device to be structurally
// identical: re-snapshotting it must reproduce the original State exactly.
func TestSnapshotRestoreDeepEqual(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		for _, g := range []flash.Geometry{tinyGeom(), multiPlaneGeom()} {
			f := mustFTL(t, snapshotOptions(g, seed, nil))
			f.StaggerBlockAges(0) // consume rng draws before the boundary
			ageRandomly(t, f, seed, 400)
			st := f.Snapshot()

			fresh := mustFTL(t, snapshotOptions(g, seed, nil))
			if err := fresh.Restore(st); err != nil {
				t.Fatalf("seed %d: restore: %v", seed, err)
			}
			checkInvariants(t, fresh)
			if got := fresh.Snapshot(); !reflect.DeepEqual(got, st) {
				t.Fatalf("seed %d geom %+v: restored snapshot differs from original", seed, g)
			}
		}
	}
}

// TestSnapshotRestoreBehavioralEquivalence runs the same post-snapshot
// operation sequence on the original device and on a restored copy and
// requires their end states to match, including every rng-dependent decision
// (refresh corruption draws) — the restored rng must sit at the exact stream
// position the original recorded.
func TestSnapshotRestoreBehavioralEquivalence(t *testing.T) {
	const seed = 99
	g := tinyGeom()
	orig := mustFTL(t, snapshotOptions(g, seed, nil))
	ageRandomly(t, orig, seed, 300)
	st := orig.Snapshot()

	restored := mustFTL(t, snapshotOptions(g, seed, nil))
	if err := restored.Restore(st); err != nil {
		t.Fatal(err)
	}

	drive := func(f *FTL) {
		rng := rand.New(rand.NewSource(seed + 1))
		now := sim.Time(500) * sim.Time(time.Microsecond)
		for i := 0; i < 300; i++ {
			now += sim.Time(rng.Intn(1000)) * sim.Time(time.Microsecond)
			if _, err := f.Write(LPN(rng.Int63n(g.TotalPages()/2)), now); err != nil {
				t.Fatalf("write: %v", err)
			}
			if rng.Intn(25) == 0 {
				mustCollectGC(t, f, now)
			}
			if rng.Intn(40) == 0 {
				mustDueRefreshes(t, f, now)
			}
		}
	}
	drive(orig)
	drive(restored)
	checkInvariants(t, restored)
	if !reflect.DeepEqual(orig.Snapshot(), restored.Snapshot()) {
		t.Fatal("original and restored devices diverged under an identical op sequence")
	}
}

// TestSnapshotCoversRetiredBlocks pins that grown-bad and retired blocks
// survive the round trip: a device aged under media faults restores to the
// same block census.
func TestSnapshotCoversRetiredBlocks(t *testing.T) {
	fm := &scriptedFaults{failNextPrograms: 3}
	f := mustFTL(t, snapshotOptions(tinyGeom(), 5, fm))
	ageRandomly(t, f, 5, 300)
	mustCollectGC(t, f, sim.Time(time.Second)) // reclaim empties; retires bad blocks
	st := f.Snapshot()

	bad, retired := 0, 0
	for _, ps := range st.Planes {
		for _, bs := range ps.Blocks {
			if bs.Bad {
				bad++
			}
			if bs.Retired {
				retired++
			}
		}
	}
	if bad == 0 && retired == 0 {
		t.Fatal("fault scenario produced no bad or retired blocks; test is vacuous")
	}

	fresh := mustFTL(t, snapshotOptions(tinyGeom(), 5, fm))
	if err := fresh.Restore(st); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, fresh)
	if !reflect.DeepEqual(fresh.Snapshot(), st) {
		t.Fatal("restored snapshot differs from original with retired blocks")
	}
}

// TestSnapshotCoversSparseAndPending asserts the randomized aging actually
// exercised the state corners this suite exists for — sparse L2P mappings and
// buffered inline GC — so a regression that silently stops producing them
// does not hollow out the round-trip tests.
func TestSnapshotCoversSparseAndPending(t *testing.T) {
	f := mustFTL(t, snapshotOptions(tinyGeom(), 42, nil))
	ageRandomly(t, f, 42, 400)
	st := f.Snapshot()
	if len(st.SparseL2P) == 0 {
		t.Error("no sparse L2P entries in the aged state")
	}
	if st.DenseL2P == nil {
		t.Error("no dense L2P in the aged state")
	}
	if st.RNGDraws == 0 {
		t.Error("rng never drawn; behavioral equivalence would not test stream position")
	}
	if st.Stats.GCJobs == 0 {
		t.Error("no GC activity in the aged state")
	}
}

// TestRestoreRejectsMismatch verifies Restore's all-or-nothing contract: a
// state that fails validation must leave the device exactly as it was.
func TestRestoreRejectsMismatch(t *testing.T) {
	f := mustFTL(t, snapshotOptions(tinyGeom(), 3, nil))
	ageRandomly(t, f, 3, 100)
	before := f.Snapshot()

	corrupt := func(name string, mutate func(*State)) {
		donor := mustFTL(t, snapshotOptions(tinyGeom(), 3, nil))
		ageRandomly(t, donor, 4, 100)
		st := donor.Snapshot()
		mutate(st)
		if err := f.Restore(st); err == nil {
			t.Errorf("%s: restore accepted a corrupt state", name)
		}
		if !reflect.DeepEqual(f.Snapshot(), before) {
			t.Fatalf("%s: rejected restore mutated the device", name)
		}
	}

	corrupt("geometry", func(st *State) { st.Geometry.BlocksPerPlane++ })
	corrupt("l2p count", func(st *State) { st.L2PCount++ })
	corrupt("plane count", func(st *State) { st.Planes = st.Planes[:0] })
	corrupt("active range", func(st *State) { st.Planes[0].Active = 1 << 20 })
	corrupt("free range", func(st *State) { st.Planes[0].Free = append(st.Planes[0].Free, -1) })
	corrupt("next step", func(st *State) {
		for blk := range st.Planes[0].Blocks {
			if st.Planes[0].Blocks[blk].Present {
				st.Planes[0].Blocks[blk].NextStep = 1 << 20
				return
			}
		}
		t.Fatal("donor state has no present blocks")
	})
	corrupt("table sizes", func(st *State) {
		for blk := range st.Planes[0].Blocks {
			if st.Planes[0].Blocks[blk].Present {
				st.Planes[0].Blocks[blk].Valid = st.Planes[0].Blocks[blk].Valid[:1]
				return
			}
		}
		t.Fatal("donor state has no present blocks")
	})
	if err := f.Restore(nil); err == nil {
		t.Error("restore accepted nil state")
	}
}
