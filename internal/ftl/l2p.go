package ftl

// l2pTable is the logical-to-physical mapping. LPNs inside the device's
// page capacity resolve through a dense slice — one bounds-checked load per
// lookup, no hashing, no per-entry allocation — while out-of-range LPNs
// (tests and tools may address beyond capacity) fall back to a sparse map so
// the FTL stays correct for arbitrary inputs. The simulation hot path
// (reads, writes, relocations) only ever touches the dense side: the SSD
// model rejects traces whose footprint exceeds capacity before replay.
type l2pTable struct {
	dense  []ppn // indexed by LPN; noPPN marks an unmapped entry
	sparse map[LPN]ppn
	count  int
}

// maxDenseL2PEntries caps the dense side at 16M pages (128 MB of table, a
// 128 GB device at 8 KB pages). Larger devices degrade gracefully to the
// sparse map rather than pinning gigabytes of mostly-empty table.
const maxDenseL2PEntries = 1 << 24

// newL2P sizes the table for a device with the given page capacity. A
// non-positive or over-cap capacity yields a pure sparse table.
func newL2P(capacity int64) *l2pTable {
	t := &l2pTable{}
	if capacity > 0 && capacity <= maxDenseL2PEntries {
		t.dense = make([]ppn, capacity)
		for i := range t.dense {
			t.dense[i] = noPPN
		}
	}
	return t
}

// reset unmaps everything, keeping the dense slice's backing array (refilled
// with noPPN in place) so a pooled table is reusable without reallocating.
// The sparse side is dropped: it only ever holds out-of-capacity entries.
func (t *l2pTable) reset() {
	for i := range t.dense {
		t.dense[i] = noPPN
	}
	t.sparse = nil
	t.count = 0
}

// get returns the mapping for lpn, if any.
func (t *l2pTable) get(lpn LPN) (ppn, bool) {
	if lpn >= 0 && int64(lpn) < int64(len(t.dense)) {
		p := t.dense[lpn]
		return p, p != noPPN
	}
	p, ok := t.sparse[lpn]
	return p, ok
}

// set maps lpn to p, replacing any previous mapping.
func (t *l2pTable) set(lpn LPN, p ppn) {
	if lpn >= 0 && int64(lpn) < int64(len(t.dense)) {
		if t.dense[lpn] == noPPN {
			t.count++
		}
		t.dense[lpn] = p
		return
	}
	if t.sparse == nil {
		t.sparse = make(map[LPN]ppn)
	}
	if _, ok := t.sparse[lpn]; !ok {
		t.count++
	}
	t.sparse[lpn] = p
}

// remove unmaps lpn; unmapped LPNs are a no-op.
func (t *l2pTable) remove(lpn LPN) {
	if lpn >= 0 && int64(lpn) < int64(len(t.dense)) {
		if t.dense[lpn] != noPPN {
			t.dense[lpn] = noPPN
			t.count--
		}
		return
	}
	if _, ok := t.sparse[lpn]; ok {
		delete(t.sparse, lpn)
		t.count--
	}
}

// len returns the number of mapped LPNs.
func (t *l2pTable) len() int { return t.count }
