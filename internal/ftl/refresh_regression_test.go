package ftl

import (
	"testing"
)

// TestDueRefreshesReChecksAfterInlineGC is a regression test for the stale
// eligibility re-check in DueRefreshes: ensureFree's inline GC can reclaim
// the very block the scan is about to refresh, and free-list reuse can then
// reopen it, refill it with other victims' relocated pages, and close it
// again — a block full of data programmed *now*. Checking only the
// active/empty conditions on the stale loop variable let the scan emit a
// refresh for that freshly-written block; the scan must re-read the entry
// and re-check full eligibility, including age.
func TestDueRefreshesReChecksAfterInlineGC(t *testing.T) {
	opts := refreshOpts(false, 0)
	f := mustFTL(t, opts)
	// Disable inline GC while shaping the layout; the scan below re-enables
	// it so the due block's ensureFree is the first GC to run.
	f.opts.GCFreeBlocks = 0
	write := func(lo, hi LPN) {
		t.Helper()
		for i := lo; i < hi; i++ {
			if _, err := f.Write(i, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Fill b0..b6 (allocation ascends from block 0) with overwrites shaping
	// the GC victim order: b1 keeps 4 valid pages (the due block and first
	// victim), b2 keeps 10, b3 keeps 11, everything else stays fully valid.
	// b7 remains free, so the scan's ensureFree starts one below the
	// watermark of 2 and chain-collects b1, b2, then b3.
	write(0, 12)  // b0
	write(12, 24) // b1
	write(24, 36) // b2
	write(36, 48) // b3
	write(12, 20) // b4 <- b1 drops to 4 valid
	write(24, 26) // b4 <- b2 drops to 10 valid
	write(36, 37) // b4 <- b3 drops to 11 valid
	write(48, 49) // b4 full
	write(49, 61) // b5
	write(61, 73) // b6
	ps := f.planes[0]
	if len(ps.free) != 1 || ps.free[0] != 7 || ps.active != -1 {
		t.Fatalf("setup: free=%v active=%d, want only b7 free and no open block", ps.free, ps.active)
	}
	now := 11 * hour // past the 10h refresh period
	// Only b1 is due: backdating everything else isolates the scenario.
	for _, blk := range []int{0, 2, 3, 4, 5, 6} {
		ps.blocks[blk].programmedAt = now
	}
	f.opts.GCFreeBlocks = 2

	jobs := mustDueRefreshes(t, f, now)

	// Inline GC collected b1 (4 moves open b7), then b2 (10 moves close b7
	// and reopen the just-erased b1), then b3 (11 moves close b1 — now full
	// of pages programmed at `now` — and reopen b2). Refreshing b1 would
	// immediately relocate those fresh pages again.
	if len(jobs) != 0 {
		for _, j := range jobs {
			t.Logf("job target %v", j.Target)
		}
		t.Fatalf("DueRefreshes returned %d jobs, want 0 (stale re-check refreshed the refilled block)", len(jobs))
	}
	// Precondition check: if allocation internals change and the chain
	// above stops holding, the test needs a new worked-out scenario.
	if f.Stats().GCJobs != 3 || ps.active != 2 {
		t.Fatalf("scenario drifted: GCJobs=%d active=%d, want 3 inline GC jobs ending with b2 open",
			f.Stats().GCJobs, ps.active)
	}
	if b := ps.blocks[1]; b.nextStep != 12 || b.validCount != 12 || b.programmedAt != now {
		t.Fatalf("scenario drifted: b1 step=%d valid=%d, want b1 refilled and closed at now",
			b.nextStep, b.validCount)
	}
	for i := LPN(0); i < 73; i++ {
		if _, ok := f.Read(i); !ok {
			t.Fatalf("LPN %d lost", i)
		}
	}
	checkInvariants(t, f)
}

// TestRefreshIDAOnlyInvalid covers the ablation branch: with IDAOnlyInvalid
// set, a fully-valid wordline (Table I case 1) is relocated like the
// original flow, while a wordline that lost a lower page is still
// voltage-adjusted.
func TestRefreshIDAOnlyInvalid(t *testing.T) {
	opts := refreshOpts(true, 0)
	opts.IDAOnlyInvalid = true
	f := mustFTL(t, opts)
	for i := LPN(0); i < 12; i++ {
		if _, err := f.Write(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Invalidate WL0's LSB; WLs 1-3 stay fully valid.
	if _, err := f.Write(0, 0); err != nil {
		t.Fatal(err)
	}
	jobs := mustDueRefreshes(t, f, 11*hour)
	if len(jobs) != 1 {
		t.Fatalf("got %d refresh jobs, want 1", len(jobs))
	}
	job := jobs[0]
	if job.Target.Block != 0 {
		t.Fatalf("refreshed block %d, want 0", job.Target.Block)
	}
	if !job.IDAApplied || job.AdjustedWLs != 1 {
		t.Errorf("IDAApplied=%v AdjustedWLs=%d, want the invalid-LSB wordline adjusted",
			job.IDAApplied, job.AdjustedWLs)
	}
	// The three fully-valid wordlines relocate all 9 pages instead of
	// being converted; the adjusted wordline keeps its 2 valid pages.
	if len(job.Moves) != 9 {
		t.Errorf("Moves = %d, want 9 (3 fully-valid wordlines relocated)", len(job.Moves))
	}
	if job.ValidPages != 11 {
		t.Errorf("ValidPages = %d, want 11", job.ValidPages)
	}
	if len(job.VerifyReads) != 2 || job.KeptPages != 2 || len(job.CorruptedMoves) != 0 {
		t.Errorf("verify=%d kept=%d corrupted=%d, want 2/2/0 with a zero error rate",
			len(job.VerifyReads), job.KeptPages, len(job.CorruptedMoves))
	}
	if !f.planes[0].blocks[0].ida {
		t.Error("target block not marked IDA after adjustment")
	}
	for i := LPN(0); i < 12; i++ {
		if _, ok := f.Read(i); !ok {
			t.Fatalf("LPN %d lost", i)
		}
	}
	checkInvariants(t, f)
}

// TestRefreshIDAOnlyInvalidAllValid covers the AdjustedWLs == 0 early
// return: when every wordline is fully valid, the ablation mode relocates
// the whole block and the refresh completes exactly like the original flow
// — no adjustment, no verify reads, age reset.
func TestRefreshIDAOnlyInvalidAllValid(t *testing.T) {
	opts := refreshOpts(true, 0)
	opts.IDAOnlyInvalid = true
	f := mustFTL(t, opts)
	for i := LPN(0); i < 12; i++ {
		if _, err := f.Write(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	now := 11 * hour
	jobs := mustDueRefreshes(t, f, now)
	if len(jobs) != 1 {
		t.Fatalf("got %d refresh jobs, want 1", len(jobs))
	}
	job := jobs[0]
	if job.IDAApplied || job.AdjustedWLs != 0 {
		t.Errorf("IDAApplied=%v AdjustedWLs=%d, want nothing adjusted", job.IDAApplied, job.AdjustedWLs)
	}
	if len(job.Moves) != 12 {
		t.Errorf("Moves = %d, want all 12 pages relocated", len(job.Moves))
	}
	if len(job.VerifyReads) != 0 || job.KeptPages != 0 || len(job.CorruptedMoves) != 0 {
		t.Error("early return must skip the verify/write-back steps")
	}
	b := f.planes[0].blocks[0]
	if !b.refreshed || b.ida {
		t.Errorf("refreshed=%v ida=%v, want refreshed without IDA conversion", b.refreshed, b.ida)
	}
	if b.validCount != 0 {
		t.Errorf("target still holds %d valid pages", b.validCount)
	}
	if b.programmedAt != now {
		t.Error("age not reset; the emptied block would re-trigger refresh scans")
	}
	st := f.Stats()
	if st.Refreshes != 1 || st.IDARefreshes != 0 {
		t.Errorf("Refreshes=%d IDARefreshes=%d, want 1/0", st.Refreshes, st.IDARefreshes)
	}
	if jobs := mustDueRefreshes(t, f, now); len(jobs) != 0 {
		t.Errorf("second scan produced %d jobs for the emptied block", len(jobs))
	}
	checkInvariants(t, f)
}
