package ftl

import (
	"testing"
	"time"

	"idaflash/internal/coding"
	"idaflash/internal/flash"
	"idaflash/internal/sim"
)

// tinyGeom returns a deliberately small TLC device: 1 plane, 8 blocks of 4
// wordlines (12 pages each), 96 pages total.
func tinyGeom() flash.Geometry {
	return flash.Geometry{
		Channels: 1, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1,
		BlocksPerPlane: 8, WordlinesPerBlock: 4, PageSizeBytes: 8192, BitsPerCell: 3,
	}
}

// multiPlaneGeom returns a 2x2x2x2 = 16-plane device for striping tests.
func multiPlaneGeom() flash.Geometry {
	return flash.Geometry{
		Channels: 2, ChipsPerChannel: 2, DiesPerChip: 2, PlanesPerDie: 2,
		BlocksPerPlane: 6, WordlinesPerBlock: 4, PageSizeBytes: 8192, BitsPerCell: 3,
	}
}

func mustFTL(t *testing.T, opts Options) *FTL {
	t.Helper()
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// checkInvariants verifies the structural consistency of the FTL: valid
// counts match valid bitmaps, every mapping points at a valid page whose
// reverse map points back, and the global valid-page count equals the
// mapped LPN count.
func checkInvariants(t *testing.T, f *FTL) {
	t.Helper()
	totalValid := 0
	for pl, ps := range f.planes {
		seenFree := make(map[int]bool)
		for _, blk := range ps.free {
			if seenFree[blk] {
				t.Fatalf("plane %d: block %d on free list twice", pl, blk)
			}
			seenFree[blk] = true
			if b := ps.blocks[blk]; b != nil && b.nextStep != 0 {
				t.Fatalf("plane %d: free block %d not erased", pl, blk)
			}
		}
		for blk, b := range ps.blocks {
			if b == nil {
				continue
			}
			n := 0
			for page, v := range b.valid {
				if !v {
					continue
				}
				n++
				lpn := b.rmap[page]
				p, ok := f.l2p.get(lpn)
				if !ok {
					t.Fatalf("plane %d block %d page %d valid but LPN %d unmapped", pl, blk, page, lpn)
				}
				gpl, gblk, gpage := f.unpackPPN(p)
				if int(gpl) != pl || gblk != blk || gpage != page {
					t.Fatalf("LPN %d maps to %v but valid at p%d/b%d/pg%d", lpn, f.addrOf(p), pl, blk, page)
				}
			}
			if n != b.validCount {
				t.Fatalf("plane %d block %d validCount %d but %d valid bits", pl, blk, b.validCount, n)
			}
			totalValid += n
		}
	}
	if totalValid != f.l2p.len() {
		t.Fatalf("%d valid pages but %d mapped LPNs", totalValid, f.l2p.len())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := mustFTL(t, Options{Geometry: tinyGeom()})
	prog, err := f.Write(42, 0)
	if err != nil {
		t.Fatal(err)
	}
	info, ok := f.Read(42)
	if !ok {
		t.Fatal("read of written LPN failed")
	}
	if info.Addr != prog.Addr {
		t.Errorf("read addr %v != write addr %v", info.Addr, prog.Addr)
	}
	if info.LPN != 42 {
		t.Errorf("read LPN = %d", info.LPN)
	}
	// First page programmed under shadow order is the LSB of WL 0.
	if info.Type != coding.LSB || info.Senses != 1 || info.Class != ReadLSB {
		t.Errorf("first page info = %+v", info)
	}
	if _, ok := f.Read(7); ok {
		t.Error("read of unwritten LPN should miss")
	}
	checkInvariants(t, f)
}

func TestOverwriteInvalidates(t *testing.T) {
	f := mustFTL(t, Options{Geometry: tinyGeom()})
	first, _ := f.Write(1, 0)
	second, err := f.Write(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if first.Addr == second.Addr {
		t.Error("overwrite reused the same physical page")
	}
	info, _ := f.Read(1)
	if info.Addr != second.Addr {
		t.Errorf("read returned stale address %v", info.Addr)
	}
	if got := f.Stats().Invalidations; got != 1 {
		t.Errorf("invalidations = %d", got)
	}
	checkInvariants(t, f)
}

func TestTrim(t *testing.T) {
	f := mustFTL(t, Options{Geometry: tinyGeom()})
	f.Write(5, 0)
	f.Trim(5)
	if _, ok := f.Read(5); ok {
		t.Error("trimmed LPN still readable")
	}
	f.Trim(5) // double trim is a no-op
	if f.MappedPages() != 0 {
		t.Errorf("mapped pages = %d", f.MappedPages())
	}
	checkInvariants(t, f)
}

func TestPageTypeSensesConventional(t *testing.T) {
	f := mustFTL(t, Options{Geometry: tinyGeom()})
	// Fill one block: 12 writes. Under shadow order every page type
	// appears; senses must be 1/2/4 for LSB/CSB/MSB.
	for i := LPN(0); i < 12; i++ {
		if _, err := f.Write(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	wantSenses := map[coding.PageType]int{coding.LSB: 1, coding.CSB: 2, coding.MSB: 4}
	seen := map[coding.PageType]int{}
	for i := LPN(0); i < 12; i++ {
		info, ok := f.Read(i)
		if !ok {
			t.Fatalf("LPN %d unmapped", i)
		}
		if info.Senses != wantSenses[info.Type] {
			t.Errorf("LPN %d type %v senses %d", i, info.Type, info.Senses)
		}
		seen[info.Type]++
	}
	if seen[coding.LSB] != 4 || seen[coding.CSB] != 4 || seen[coding.MSB] != 4 {
		t.Errorf("page type distribution = %v", seen)
	}
}

func TestReadClassification(t *testing.T) {
	f := mustFTL(t, Options{Geometry: tinyGeom(), Order: flash.OrderSequential})
	// Sequential order: LPNs 0,1,2 land on WL0 as LSB, CSB, MSB.
	for i := LPN(0); i < 3; i++ {
		f.Write(i, 0)
	}
	if info, _ := f.Read(2); info.Class != ReadMSBAllValid {
		t.Errorf("MSB class with all valid = %v", info.Class)
	}
	if info, _ := f.Read(1); info.Class != ReadCSBAllValid {
		t.Errorf("CSB class with all valid = %v", info.Class)
	}
	// Overwrite the LSB (LPN 0): its WL0 copy goes invalid.
	f.Write(0, 0)
	if info, _ := f.Read(2); info.Class != ReadMSBLowerInvalid {
		t.Errorf("MSB class with LSB invalid = %v", info.Class)
	}
	if info, _ := f.Read(1); info.Class != ReadCSBLowerInvalid {
		t.Errorf("CSB class with LSB invalid = %v", info.Class)
	}
	// The relocated LPN 0 is an LSB read again somewhere else.
	if info, _ := f.Read(0); info.Class != ReadLSB {
		t.Errorf("LSB class = %v", info.Class)
	}
	st := f.Stats()
	if st.ReadsByClass[ReadMSBLowerInvalid] != 1 || st.ReadsByClass[ReadCSBLowerInvalid] != 1 {
		t.Errorf("class counters = %v", st.ReadsByClass)
	}
	checkInvariants(t, f)
}

func TestCWDPStriping(t *testing.T) {
	g := multiPlaneGeom()
	f := mustFTL(t, Options{Geometry: g})
	// The first Planes() writes must each land on a distinct plane, and
	// consecutive writes must alternate channels first (CWDP).
	seen := make(map[flash.PlaneID]bool)
	var prevChannel = -1
	for i := 0; i < g.Planes(); i++ {
		prog, err := f.Write(LPN(i), 0)
		if err != nil {
			t.Fatal(err)
		}
		if seen[prog.Addr.Plane] {
			t.Fatalf("write %d reused plane %d", i, prog.Addr.Plane)
		}
		seen[prog.Addr.Plane] = true
		ch := g.ChannelOf(prog.Addr.Plane)
		if prevChannel >= 0 && i%g.Channels != 0 && ch == prevChannel {
			t.Errorf("write %d stayed on channel %d; CWDP should stripe channels first", i, ch)
		}
		prevChannel = ch
	}
	// First stripe of writes: channel must vary fastest.
	f2 := mustFTL(t, Options{Geometry: g})
	var channels []int
	for i := 0; i < 4; i++ {
		prog, _ := f2.Write(LPN(i), 0)
		channels = append(channels, g.ChannelOf(prog.Addr.Plane))
	}
	if channels[0] == channels[1] {
		t.Errorf("first two writes on channels %v; want distinct", channels)
	}
}

func TestWriteFailsWhenFull(t *testing.T) {
	g := tinyGeom()
	f := mustFTL(t, Options{Geometry: g, GCFreeBlocks: 1})
	// Fill the whole device with distinct LPNs (no invalid pages, so GC
	// cannot help).
	total := g.TotalBlocks() * g.PagesPerBlock()
	var err error
	for i := 0; i < total+1; i++ {
		if _, err = f.Write(LPN(i), 0); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("writing past device capacity should fail")
	}
}

func TestOptionsValidation(t *testing.T) {
	good := tinyGeom()
	cases := []Options{
		{},
		{Geometry: good, ErrorRate: -0.1},
		{Geometry: good, ErrorRate: 1.1},
		{Geometry: good, RefreshPeriod: -time.Second},
		{Geometry: good, GCFreeBlocks: -1},
		{Geometry: good, GCFreeBlocks: 8},
		{Geometry: good, Code: coding.NewGray(2)},
	}
	for i, o := range cases {
		if _, err := New(o); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestMappedAndUsage(t *testing.T) {
	f := mustFTL(t, Options{Geometry: tinyGeom()})
	if f.Mapped(3) {
		t.Error("unmapped LPN reported mapped")
	}
	for i := LPN(0); i < 12; i++ {
		f.Write(i, 0)
	}
	if !f.Mapped(3) || f.MappedPages() != 12 {
		t.Error("mapping census wrong")
	}
	u := f.Usage()
	if u.Total != 8 {
		t.Errorf("total blocks = %d", u.Total)
	}
	// One block fully programmed (12 pages), no active block remains
	// open, seven free.
	if u.InUse != 1 || u.Free != 7 {
		t.Errorf("usage = %+v", u)
	}
	var _ sim.Time // keep the import honest in minimal builds
}

func TestWearStats(t *testing.T) {
	f := mustFTL(t, Options{Geometry: tinyGeom()})
	w := f.WearStats()
	if w.MinErase != 0 || w.MaxErase != 0 || w.Spread != 0 || w.MeanErase != 0 {
		t.Errorf("fresh device wear = %+v", w)
	}
	// Churn the device: repeated overwrites force GC-driven erases.
	for round := 0; round < 12; round++ {
		for i := LPN(0); i < 24; i++ {
			if _, err := f.Write(i, 0); err != nil {
				t.Fatal(err)
			}
		}
		mustCollectGC(t, f, 0)
	}
	w = f.WearStats()
	if w.MaxErase == 0 {
		t.Fatal("no erases after churn")
	}
	if w.MinErase > w.MaxErase || w.Spread != w.MaxErase-w.MinErase {
		t.Errorf("inconsistent wear: %+v", w)
	}
	if w.MeanErase <= 0 || w.MeanErase > float64(w.MaxErase) {
		t.Errorf("mean erase %v out of range", w.MeanErase)
	}
	// The greedy wear-aware tie-break keeps the spread modest: no block
	// should carry more than a few times the mean wear.
	if float64(w.MaxErase) > 6*(w.MeanErase+1) {
		t.Errorf("wear badly skewed: %+v", w)
	}
}

func TestAllocationOrders(t *testing.T) {
	g := multiPlaneGeom() // 2 channels x 2 chips x 2 dies x 2 planes
	// Every valid permutation must visit all planes exactly once per
	// stripe pass, with the first letter varying fastest.
	for _, order := range []string{"CWDP", "WDPC", "PDWC", "DCWP"} {
		f := mustFTL(t, Options{Geometry: g, Allocation: order})
		seen := make(map[flash.PlaneID]bool)
		var coords []flash.PlaneCoord
		for i := 0; i < g.Planes(); i++ {
			prog, err := f.Write(LPN(i), 0)
			if err != nil {
				t.Fatal(err)
			}
			if seen[prog.Addr.Plane] {
				t.Fatalf("%s: plane %d revisited within one stripe", order, prog.Addr.Plane)
			}
			seen[prog.Addr.Plane] = true
			coords = append(coords, g.Coord(prog.Addr.Plane))
		}
		// The first two allocations must differ in the first letter's
		// dimension only.
		a, b := coords[0], coords[1]
		var fastDiffers bool
		switch order[0] {
		case 'C':
			fastDiffers = a.Channel != b.Channel && a.Chip == b.Chip && a.Die == b.Die && a.Plane == b.Plane
		case 'W':
			fastDiffers = a.Chip != b.Chip && a.Channel == b.Channel && a.Die == b.Die && a.Plane == b.Plane
		case 'D':
			fastDiffers = a.Die != b.Die && a.Channel == b.Channel && a.Chip == b.Chip && a.Plane == b.Plane
		case 'P':
			fastDiffers = a.Plane != b.Plane && a.Channel == b.Channel && a.Chip == b.Chip && a.Die == b.Die
		}
		if !fastDiffers {
			t.Errorf("%s: first step did not vary the fastest dimension: %+v -> %+v", order, a, b)
		}
	}
	// Invalid orders are rejected.
	for _, bad := range []string{"CWD", "CCDP", "CWDX", "CWDPP"} {
		if _, err := New(Options{Geometry: g, Allocation: bad}); err == nil {
			t.Errorf("allocation %q accepted", bad)
		}
	}
}

// TestHooksObserveOperations drives writes, reads, GC, and refresh with
// hooks installed and checks the callbacks agree with the stats counters.
func TestHooksObserveOperations(t *testing.T) {
	var reads, writes, gcJobs, gcMoves, refreshes int
	hooks := &Hooks{
		Read:    func(info ReadInfo) { reads++ },
		Write:   func(prog PageProgram) { writes++ },
		GC:      func(job *GCJob) { gcJobs++; gcMoves += len(job.Moves) },
		Refresh: func(job *RefreshJob) { refreshes++ },
	}
	f := mustFTL(t, Options{
		Geometry:      tinyGeom(),
		RefreshPeriod: time.Minute,
		Hooks:         hooks,
	})
	// Overwrite a small working set until GC has to run.
	for i := 0; i < 200; i++ {
		if _, err := f.Write(LPN(i%20), sim.Time(i)); err != nil {
			t.Fatal(err)
		}
		mustCollectGC(t, f, sim.Time(i))
	}
	for i := 0; i < 20; i++ {
		if _, ok := f.Read(LPN(i)); !ok {
			t.Fatalf("LPN %d unmapped", i)
		}
	}
	f.CloseActiveBlocks()
	mustDueRefreshes(t, f, sim.Time(2*time.Minute))

	s := f.Stats()
	if uint64(writes) != s.HostWrites {
		t.Errorf("write hooks = %d, stats = %d", writes, s.HostWrites)
	}
	if uint64(reads) != s.HostReads {
		t.Errorf("read hooks = %d, stats = %d", reads, s.HostReads)
	}
	if uint64(gcJobs) != s.GCJobs || uint64(gcMoves) != s.GCMoves {
		t.Errorf("gc hooks = %d jobs/%d moves, stats = %d/%d", gcJobs, gcMoves, s.GCJobs, s.GCMoves)
	}
	if gcJobs == 0 {
		t.Error("workload never triggered GC; test is vacuous")
	}
	if uint64(refreshes) != s.Refreshes || refreshes == 0 {
		t.Errorf("refresh hooks = %d, stats = %d", refreshes, s.Refreshes)
	}
	checkInvariants(t, f)
}

// TestUsageCountsIDAValidPages checks the merge-state page census.
func TestUsageCountsIDAValidPages(t *testing.T) {
	f := mustFTL(t, Options{
		Geometry:      tinyGeom(),
		IDAEnabled:    true,
		RefreshPeriod: time.Minute,
	})
	// Fill a block, invalidate some LSBs so refresh has IDA work, age it,
	// refresh.
	for i := 0; i < 24; i++ {
		if _, err := f.Write(LPN(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	f.CloseActiveBlocks()
	mustDueRefreshes(t, f, sim.Time(2*time.Minute))
	u := f.Usage()
	if u.IDABlocks == 0 {
		t.Fatal("no IDA blocks after an IDA refresh; test is vacuous")
	}
	if u.IDAValidPages == 0 {
		t.Error("IDA blocks present but IDAValidPages = 0")
	}
	// The census sums exactly the valid counts of IDA blocks.
	want := 0
	for _, ps := range f.planes {
		for blk, b := range ps.blocks {
			if b != nil && blk != ps.active && b.nextStep > 0 && b.validCount > 0 && b.ida {
				want += b.validCount
			}
		}
	}
	if u.IDAValidPages != want {
		t.Errorf("IDAValidPages = %d, want %d", u.IDAValidPages, want)
	}
	// Merging two censuses sums the field.
	if got := u.Add(u).IDAValidPages; got != 2*want {
		t.Errorf("Add: IDAValidPages = %d, want %d", got, 2*want)
	}
}
