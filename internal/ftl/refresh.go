package ftl

import (
	"fmt"

	"idaflash/internal/coding"
	"idaflash/internal/flash"
	"idaflash/internal/sim"
)

// ReadOp is one physical page read inside a background job.
type ReadOp struct {
	Addr   flash.PageAddr
	Senses int
}

// RefreshJob describes one completed data refresh of a block, in the shape
// of the paper's Figure 7. All mapping state has already been updated; the
// SSD model charges the timing of the listed operations.
type RefreshJob struct {
	Target flash.BlockAddr
	// IDAApplied reports whether this refresh used the modified flow
	// (Figure 7b): at least one wordline was voltage-adjusted.
	IDAApplied bool
	// ValidPages is the number of valid pages at the start of refresh
	// (Table IV column 2): they are all read and ECC-decoded.
	ValidPages int
	// Reads lists those initial page reads with pre-refresh sensing
	// counts.
	Reads []ReadOp
	// Moves lists pages relocated to a new block: all valid pages in the
	// original flow; the non-beneficial pages (Table I) in the modified
	// flow.
	Moves []MoveOp
	// AdjustedWLs counts voltage-adjusted wordlines; each costs one
	// VoltAdjust latency on the die.
	AdjustedWLs int
	// VerifyReads lists the post-adjustment integrity reads of kept
	// pages (Table IV "# of Reads"), at post-IDA sensing counts.
	VerifyReads []ReadOp
	// CorruptedMoves lists kept pages the adjustment corrupted, written
	// back to the new block (Table IV "# of Writes").
	CorruptedMoves []MoveOp
	// KeptPages is the number of pages that stayed in the target block
	// (still valid there after corruption write-backs).
	KeptPages int
}

// DueRefreshes refreshes every fully-programmed block whose age exceeds the
// refresh period, returning one job per block. With a zero refresh period
// it returns nil. Blocks already reprogrammed with the IDA coding are
// force-reclaimed with the original flow on their next cycle, as Section
// III-C requires. A non-nil error means a relocation ran out of space
// mid-refresh (or mid-inline-GC) — an undersized device — and poisons the
// run; jobs completed before the failure are still returned so their timing
// can be charged.
func (f *FTL) DueRefreshes(now sim.Time) ([]RefreshJob, error) {
	if f.opts.RefreshPeriod == 0 {
		return nil, nil
	}
	var jobs []RefreshJob
	for pl := range f.planes {
		ps := f.planes[pl]
		// Retire an active block whose oldest data has aged past the
		// open-age limit, so slowly-filling planes still refresh.
		// Skipped under space pressure (see allocate).
		if ps.active >= 0 && f.opts.MaxOpenBlockAge > 0 && len(ps.free) >= 2 {
			if b := ps.blocks[ps.active]; b.nextStep > 0 && now-b.openedAt >= f.opts.MaxOpenBlockAge {
				f.closeActive(flash.PlaneID(pl))
			}
		}
		for blk, b := range ps.blocks {
			if b == nil || blk == ps.active || b.nextStep == 0 {
				continue
			}
			if b.validCount == 0 {
				continue // nothing to preserve; GC will reclaim
			}
			if now-b.programmedAt < f.opts.RefreshPeriod {
				continue
			}
			// Keep enough free space in the plane for the moves
			// this refresh will make. The inline GC may reclaim
			// this very block — and free-list reuse may reopen and
			// refill it — so re-read the entry and re-check full
			// eligibility (including age) afterwards; the loop
			// variable b is stale once GC has run.
			if err := f.ensureFree(flash.PlaneID(pl), now); err != nil {
				return jobs, err
			}
			b = ps.blocks[blk]
			if b == nil || blk == ps.active || b.retired || b.nextStep == 0 ||
				b.validCount == 0 || now-b.programmedAt < f.opts.RefreshPeriod {
				continue
			}
			job, err := f.refreshBlock(flash.PlaneID(pl), blk, now)
			if err != nil {
				return jobs, err
			}
			jobs = append(jobs, job)
		}
	}
	return jobs, nil
}

// CloseActiveBlocks retires every plane's open block so warmup-era data
// enters the refresh rotation. Simulation drivers call it once, after
// warmup: an aged device would not have tens of half-open blocks of old
// data.
func (f *FTL) CloseActiveBlocks() {
	for pl, ps := range f.planes {
		if ps.active >= 0 && ps.blocks[ps.active].nextStep > 0 {
			f.closeActive(flash.PlaneID(pl))
		}
	}
}

// StaggerBlockAges spreads the apparent ages of all fully-programmed blocks
// uniformly over one refresh period, so a freshly-prefilled device does not
// refresh everything at once. Call it once, after warmup.
func (f *FTL) StaggerBlockAges(now sim.Time) {
	if f.opts.RefreshPeriod == 0 || !f.opts.RefreshStagger {
		return
	}
	for _, ps := range f.planes {
		for blk, b := range ps.blocks {
			if b == nil || blk == ps.active || b.nextStep == 0 {
				continue
			}
			age := sim.Time(f.rng.Int63n(int64(f.opts.RefreshPeriod)))
			b.programmedAt = now - age
		}
	}
}

// refreshBlock refreshes one block, choosing the original or IDA-modified
// flow.
func (f *FTL) refreshBlock(pl flash.PlaneID, blk int, now sim.Time) (RefreshJob, error) {
	b := f.planes[pl].blocks[blk]
	job := RefreshJob{
		Target:     flash.BlockAddr{Plane: pl, Block: blk},
		ValidPages: b.validCount,
	}
	// Protect the target from inline GC while its pages are in flight.
	f.refreshing = job.Target
	f.refreshingActive = true
	defer func() { f.refreshingActive = false }()
	// Step 1-2 (both flows): read and decode every valid page.
	for page := 0; page < f.geom.PagesPerBlock(); page++ {
		if b.valid[page] {
			job.Reads = append(job.Reads, ReadOp{
				Addr:   f.addrOf(f.packPPN(pl, blk, page)),
				Senses: f.sensesAt(b, page),
			})
		}
	}

	useIDA := f.opts.IDAEnabled && !b.ida && !b.refreshed
	var err error
	if !useIDA {
		err = f.refreshOriginal(pl, blk, now, &job)
	} else {
		err = f.refreshIDA(pl, blk, now, &job)
	}
	if err != nil {
		return RefreshJob{}, err
	}

	f.stats.Refreshes++
	f.stats.RefreshValidPages += uint64(job.ValidPages)
	f.stats.RefreshMoves += uint64(len(job.Moves))
	if job.IDAApplied {
		f.stats.IDARefreshes++
		f.stats.IDAAdjustedWLs += uint64(job.AdjustedWLs)
		f.stats.IDAVerifyReads += uint64(len(job.VerifyReads))
		f.stats.IDACorruptedWrites += uint64(len(job.CorruptedMoves))
		f.stats.IDAKeptPages += uint64(job.KeptPages)
	}
	f.opts.Hooks.refresh(&job)
	return job, nil
}

// refreshOriginal implements Figure 7a: move every valid page to a new
// block. The emptied target block is reclaimed by GC later.
func (f *FTL) refreshOriginal(pl flash.PlaneID, blk int, now sim.Time, job *RefreshJob) error {
	b := f.planes[pl].blocks[blk]
	for page := 0; page < f.geom.PagesPerBlock(); page++ {
		if !b.valid[page] {
			continue
		}
		src := f.packPPN(pl, blk, page)
		senses := f.sensesAt(b, page)
		prog, err := f.relocateGlobal(src, now)
		if err != nil {
			return fmt.Errorf("ftl: allocation failed during refresh of p%d/b%d: %w", pl, blk, err)
		}
		job.Moves = append(job.Moves, MoveOp{From: f.addrOf(src), FromSenses: senses, To: prog.Addr, LPN: prog.LPN})
	}
	// Reset the age so an empty block lingering before GC reclaim does
	// not re-trigger refresh scans.
	b.programmedAt = now
	b.refreshed = true
	return nil
}

// refreshIDA implements Figure 7b: relocate only the non-beneficial pages,
// voltage-adjust the beneficial wordlines, verify the kept pages, and write
// back any pages the adjustment corrupted.
func (f *FTL) refreshIDA(pl flash.PlaneID, blk int, now sim.Time, job *RefreshJob) error {
	b := f.planes[pl].blocks[blk]
	type keptPage struct {
		page   int
		senses int // post-adjustment sensing count
	}
	var kept []keptPage

	// Step 3: per-wordline Table I decision. Moves happen first (they
	// need the pre-adjustment data), then the adjustment.
	for wl := 0; wl < f.geom.WordlinesPerBlock; wl++ {
		mask := f.wlValidMask(b, wl)
		if mask == 0 {
			continue // case 8
		}
		if f.opts.IDAOnlyInvalid && mask == coding.MaskAll(f.geom.BitsPerCell) {
			// Ablation mode: fully-valid wordlines (case 1) are
			// relocated like the original refresh instead of being
			// converted.
			for t := coding.PageType(0); int(t) < f.geom.BitsPerCell; t++ {
				page := f.pageIndex(wl, t)
				src := f.packPPN(pl, blk, page)
				senses := f.sensesAt(b, page)
				prog, err := f.relocateGlobal(src, now)
				if err != nil {
					return fmt.Errorf("ftl: allocation failed during IDA refresh of p%d/b%d: %w", pl, blk, err)
				}
				job.Moves = append(job.Moves, MoveOp{From: f.addrOf(src), FromSenses: senses, To: prog.Addr, LPN: prog.LPN})
			}
			continue
		}
		plan := f.cells.PlanWordline(mask)
		for _, t := range plan.Move {
			page := f.pageIndex(wl, t)
			src := f.packPPN(pl, blk, page)
			senses := f.sensesAt(b, page)
			prog, err := f.relocateGlobal(src, now)
			if err != nil {
				return fmt.Errorf("ftl: allocation failed during IDA refresh of p%d/b%d: %w", pl, blk, err)
			}
			job.Moves = append(job.Moves, MoveOp{From: f.addrOf(src), FromSenses: senses, To: prog.Addr, LPN: prog.LPN})
		}
		if !plan.Apply {
			continue
		}
		// Step 4: the wordline is reprogrammed; record its new coding.
		// The adjustment's ISPP sweep transfers charge too: its power
		// proxy is the expected per-cell level distance of the merge.
		b.wlKeep[wl] = plan.Keep
		job.AdjustedWLs++
		f.stats.ProgramPower += f.cells.AdjustPower(plan.Keep)
		// Walk page types in order (not the KeptSenses map) so the
		// corruption draws below consume randomness deterministically.
		for t := coding.PageType(0); int(t) < f.geom.BitsPerCell; t++ {
			if !plan.Keep.Has(t) {
				continue
			}
			page := f.pageIndex(wl, t)
			if b.valid[page] {
				kept = append(kept, keptPage{page: page, senses: plan.KeptSenses[t]})
			}
		}
	}

	if job.AdjustedWLs == 0 {
		// Nothing was worth adjusting (every wordline was cases 5-8);
		// the block emptied exactly like an original refresh.
		b.programmedAt = now
		b.refreshed = true
		return nil
	}

	// Steps 5-8: verify-read every kept page; corrupted ones are written
	// back to the new block.
	for _, kp := range kept {
		job.VerifyReads = append(job.VerifyReads, ReadOp{
			Addr:   f.addrOf(f.packPPN(pl, blk, kp.page)),
			Senses: kp.senses,
		})
		if f.opts.ErrorRate > 0 && f.rng.Float64() < f.opts.ErrorRate {
			src := f.packPPN(pl, blk, kp.page)
			prog, err := f.relocateGlobal(src, now)
			if err != nil {
				return fmt.Errorf("ftl: allocation failed during IDA write-back of p%d/b%d: %w", pl, blk, err)
			}
			job.CorruptedMoves = append(job.CorruptedMoves, MoveOp{From: f.addrOf(src), FromSenses: kp.senses, To: prog.Addr, LPN: prog.LPN})
		} else {
			job.KeptPages++
		}
	}

	b.ida = true
	b.refreshed = true
	b.programmedAt = now // reclaimed on the next refresh cycle
	job.IDAApplied = true
	return nil
}
