package array

import (
	"fmt"
	"sync"

	"idaflash/internal/ssd"
	"idaflash/internal/workload"
)

// RAID-5-style parity striping and degraded-mode reconstruction.
//
// Layout: the host address space is cut into stripe units; N-1 consecutive
// units form a parity row. Every unit of row r — the N-1 data units and the
// parity unit — lives at the same device-local offset r*unit, one unit per
// device, with the parity unit rotating across devices (parityDev(r) =
// r mod N). Because a row occupies the same local extent on every device,
// reconstructing a failed read is a read of the *same* local extent on the
// N-1 peers.
//
// Writes update parity in place: each host write row adds one write
// sub-request on the row's parity device covering the written span (the
// read-old-data/read-old-parity halves of a true read-modify-write are not
// charged — the model under-counts parity-update reads, which is noted in
// DESIGN.md). Reads touch only the owning data device unless recovery
// kicks in.

// parityDev returns the device holding row r's parity unit.
func parityDev(row int64, devices int) int { return int(row % int64(devices)) }

// dataDev returns the device holding data unit k (0-based within the row)
// of row r: the rotation skips the parity device.
func dataDev(row, k int64, devices int) int {
	if p := int64(parityDev(row, devices)); k >= p {
		k++
	}
	return int(k)
}

// SplitParity deals a host trace across devices in the rotated-parity
// layout, adding the parity-update writes. Sub-requests inherit the host
// arrival time; per-device extents are coalesced when contiguous.
func SplitParity(tr *workload.Trace, devices int, unitBytes int64) []*workload.Trace {
	out := make([]*workload.Trace, devices)
	for d := range out {
		out[d] = &workload.Trace{Name: fmt.Sprintf("%s@dev%d", tr.Name, d)}
	}
	data := int64(devices - 1)
	for _, r := range tr.Requests {
		r := r
		add := func(dev int, off, end int64) {
			reqs := out[dev].Requests
			if n := len(reqs); n > 0 {
				last := &out[dev].Requests[n-1]
				if last.At == r.At && last.Read == r.Read && last.End() == off {
					last.Size += int(end - off)
					return
				}
			}
			out[dev].Requests = append(out[dev].Requests, workload.Request{
				At: r.At, Offset: off, Size: int(end - off), Read: r.Read,
			})
		}
		s0 := r.Offset / unitBytes
		s1 := (r.End() - 1) / unitBytes
		// pStart/pEnd accumulate the written intra-unit span of the
		// current row; flushed as one parity write per row.
		row := s0 / data
		pStart, pEnd := int64(-1), int64(-1)
		flushParity := func(row int64) {
			if r.Read || pStart < 0 {
				return
			}
			add(parityDev(row, devices), row*unitBytes+pStart, row*unitBytes+pEnd)
			pStart, pEnd = -1, -1
		}
		for s := s0; s <= s1; s++ {
			if rr := s / data; rr != row {
				flushParity(row)
				row = rr
			}
			in0 := int64(0)
			if s == s0 {
				in0 = r.Offset - s*unitBytes
			}
			in1 := unitBytes
			if s == s1 {
				in1 = r.End() - s*unitBytes
			}
			add(dataDev(row, s%data, devices), row*unitBytes+in0, row*unitBytes+in1)
			if !r.Read {
				if pStart < 0 || in0 < pStart {
					pStart = in0
				}
				if in1 > pEnd {
					pEnd = in1
				}
			}
		}
		flushParity(row)
	}
	return out
}

// DegradedStats accounts the post-run parity reconstruction of failed
// reads.
type DegradedStats struct {
	// DegradedExtents counts failed read extents successfully rebuilt
	// from the peer devices (degraded-mode reads).
	DegradedExtents uint64
	// ReconRequests counts the peer read requests issued to rebuild them
	// (the rebuild traffic).
	ReconRequests uint64
	// LostExtents counts extents that could not be rebuilt because a
	// peer's share of the row failed too (or the peer never ran). Zero
	// means no host data was lost despite the faults.
	LostExtents uint64
}

// reconstruct runs the degraded-mode recovery pass: every device's failed
// read extents are re-read — at the same local offsets — on all its peers,
// whose units of the same parity rows suffice to rebuild the data. Peer
// replays run through RunMore on the peers' own engines, so rebuild traffic
// is simulated (and can itself fail under the active fault scenario). An
// extent is lost only when some peer's share also fails.
func (a *Array) reconstruct(failed [][]ssd.FailedExtent, deg *DegradedStats) {
	recon := make([]*workload.Trace, len(a.devs))
	for q := range a.devs {
		t := &workload.Trace{Name: fmt.Sprintf("recon@dev%d", q)}
		for d, exts := range failed {
			if d == q {
				continue
			}
			for _, e := range exts {
				t.Requests = append(t.Requests, workload.Request{
					Offset: e.Offset, Size: e.Size, Read: true,
				})
			}
		}
		recon[q] = t
	}
	type reconOut struct {
		res    ssd.Results
		failed []ssd.FailedExtent
		err    error
	}
	outs := make([]reconOut, len(a.devs))
	var wg sync.WaitGroup
	for q := range a.devs {
		if len(recon[q].Requests) == 0 {
			continue
		}
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			res, err := a.devs[q].RunMore(recon[q])
			outs[q] = reconOut{res: res, err: err}
			if err == nil {
				outs[q].failed = a.devs[q].FailedReadExtents()
			}
		}(q)
	}
	wg.Wait()
	for q := range outs {
		deg.ReconRequests += outs[q].res.ReadRequests
	}
	overlaps := func(exts []ssd.FailedExtent, e ssd.FailedExtent) bool {
		for _, f := range exts {
			if f.Offset < e.Offset+int64(e.Size) && e.Offset < f.Offset+int64(f.Size) {
				return true
			}
		}
		return false
	}
	for d, exts := range failed {
		for _, e := range exts {
			lost := false
			for q := range a.devs {
				if q == d || len(recon[q].Requests) == 0 {
					continue
				}
				if outs[q].err != nil || overlaps(outs[q].failed, e) {
					lost = true
					break
				}
			}
			if lost {
				deg.LostExtents++
			} else {
				deg.DegradedExtents++
			}
		}
	}
}
