package array

import (
	"bytes"
	"testing"
	"time"

	"idaflash/internal/flash"
	"idaflash/internal/ftl"
	"idaflash/internal/ssd"
	"idaflash/internal/stats"
	"idaflash/internal/telemetry"
	"idaflash/internal/workload"
)

func deviceConfig() ssd.Config {
	return ssd.Config{
		Geometry: flash.Geometry{
			Channels: 2, ChipsPerChannel: 1, DiesPerChip: 2, PlanesPerDie: 1,
			BlocksPerPlane: 24, WordlinesPerBlock: 4, PageSizeBytes: 8192, BitsPerCell: 3,
		},
		Timing: flash.PaperTLCTiming(),
		FTL: ftl.Options{
			RefreshPeriod:  20 * time.Minute,
			RefreshStagger: true,
			Seed:           7,
		},
		RefreshScanInterval: time.Minute,
		Seed:                7,
	}
}

// parallelTrace builds a read-heavy stream of large aligned requests that
// stripe across every device: bursts of 256 KB reads over a 3 MB footprint.
func parallelTrace(name string, requests int) *workload.Trace {
	tr := &workload.Trace{Name: name}
	const footprint = 3 << 20
	const size = 256 << 10
	for i := 0; i < requests; i++ {
		r := workload.Request{
			At:     time.Duration(i/8) * 300 * time.Microsecond, // bursts of 8
			Offset: int64(i*size) % footprint,
			Size:   size,
			Read:   i%10 != 0, // 90% reads
		}
		tr.Requests = append(tr.Requests, r)
	}
	return tr
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Devices: 0, Device: deviceConfig()}); err == nil {
		t.Error("zero devices accepted")
	}
	if _, err := New(Config{Devices: 2, StripeKB: -1, Device: deviceConfig()}); err == nil {
		t.Error("negative stripe accepted")
	}
	if _, err := New(Config{Devices: 2, Device: ssd.Config{}}); err == nil {
		t.Error("invalid device template accepted")
	}
	a, err := New(Config{Devices: 2, Device: deviceConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if a.StripeBytes() != DefaultStripeKB*1024 {
		t.Errorf("default stripe = %d bytes", a.StripeBytes())
	}
	if a.Devices() != 2 || a.Device(0) == nil || a.Device(1) == nil {
		t.Error("devices not built")
	}
}

func TestSplitCoversEveryByteExactlyOnce(t *testing.T) {
	const unit = 64 << 10
	tr := &workload.Trace{Name: "split", Requests: []workload.Request{
		{At: 0, Offset: 0, Size: 4096, Read: true},                    // within one stripe
		{At: 1, Offset: unit - 100, Size: 200, Read: false},           // straddles a boundary
		{At: 2, Offset: unit / 2, Size: 4 * unit, Read: true},         // spans > devices stripes
		{At: 3, Offset: 7 * unit, Size: unit, Read: true},             // exactly one stripe
		{At: 4, Offset: 3*unit + 123, Size: 6*unit + 45, Read: false}, // unaligned both ends
	}}
	for _, devices := range []int{2, 3, 4} {
		subs := Split(tr, devices, unit)
		if len(subs) != devices {
			t.Fatalf("devices=%d: %d sub-traces", devices, len(subs))
		}
		var total int64
		var want int64
		for _, r := range tr.Requests {
			want += int64(r.Size)
		}
		for d, sub := range subs {
			if err := sub.Validate(); err != nil {
				t.Fatalf("devices=%d dev%d: %v", devices, d, err)
			}
			for _, r := range sub.Requests {
				total += int64(r.Size)
				// Every sub-request must fit inside the device-space
				// image of the host extents: reconstruct the host
				// bytes it covers and check the stripe arithmetic.
				if r.Size <= 0 {
					t.Fatalf("devices=%d dev%d: empty sub-request", devices, d)
				}
			}
		}
		if total != want {
			t.Errorf("devices=%d: split moved %d bytes, host trace has %d", devices, total, want)
		}
	}
}

func TestSplitRoundTripsBytes(t *testing.T) {
	// Map every sub-request back to host addresses and mark the bytes;
	// each host byte must be covered exactly once.
	const unit = 4096
	const devices = 3
	tr := &workload.Trace{Name: "rt", Requests: []workload.Request{
		{At: 0, Offset: 1000, Size: 30000, Read: true},
	}}
	covered := make(map[int64]int)
	subs := Split(tr, devices, unit)
	for d, sub := range subs {
		for _, r := range sub.Requests {
			for b := r.Offset; b < r.End(); b++ {
				stripe := b / unit
				host := (stripe*devices+int64(d))*unit + b%unit
				covered[host]++
			}
		}
	}
	r := tr.Requests[0]
	for b := r.Offset; b < r.End(); b++ {
		if covered[b] != 1 {
			t.Fatalf("host byte %d covered %d times", b, covered[b])
		}
	}
	if int64(len(covered)) != int64(r.Size) {
		t.Fatalf("covered %d bytes, want %d", len(covered), r.Size)
	}
}

func TestSingleDevicePassThrough(t *testing.T) {
	tr := parallelTrace("pass", 400)
	subs := Split(tr, 1, 64<<10)
	if len(subs) != 1 || len(subs[0].Requests) != len(tr.Requests) {
		t.Fatal("single-device split must pass the trace through")
	}
}

func TestArrayRunMergesAndScalesThroughput(t *testing.T) {
	tr := parallelTrace("scale", 1200)

	single, err := ssd.New(deviceConfig())
	if err != nil {
		t.Fatal(err)
	}
	sres, err := single.Run(tr, ssd.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	arr, err := New(Config{Devices: 4, StripeKB: 64, Device: deviceConfig()})
	if err != nil {
		t.Fatal(err)
	}
	ares, err := arr.Run(tr, ssd.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if len(ares.PerDevice) != 4 {
		t.Fatalf("per-device results = %d", len(ares.PerDevice))
	}
	for d, r := range ares.PerDevice {
		if r.ReadRequests == 0 {
			t.Errorf("device %d served no reads: striping is uneven", d)
		}
	}
	// The acceptance bar: a 4-device array on a parallel-friendly trace
	// must deliver materially higher aggregate throughput.
	if ares.Combined.ThroughputMBps < 1.5*sres.ThroughputMBps {
		t.Errorf("array throughput %.1f MB/s not materially above single device %.1f MB/s",
			ares.Combined.ThroughputMBps, sres.ThroughputMBps)
	}
	if ares.Combined.MeanReadResponse <= 0 || ares.Combined.Makespan <= 0 {
		t.Errorf("merged metrics empty: %+v", ares.Combined)
	}
	// Merged counters must equal the per-device sums.
	var reads uint64
	for _, r := range ares.PerDevice {
		reads += r.ReadRequests
	}
	if ares.Combined.ReadRequests != reads {
		t.Errorf("merged reads %d != sum %d", ares.Combined.ReadRequests, reads)
	}
}

func TestArrayRunDeterministic(t *testing.T) {
	tr := parallelTrace("det", 600)
	run := func() Results {
		arr, err := New(Config{Devices: 3, StripeKB: 64, Device: deviceConfig()})
		if err != nil {
			t.Fatal(err)
		}
		res, err := arr.Run(tr, ssd.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Combined.Scalars() != b.Combined.Scalars() {
		t.Errorf("array runs diverged:\n%+v\n%+v", a.Combined, b.Combined)
	}
	for d := range a.PerDevice {
		if a.PerDevice[d].Scalars() != b.PerDevice[d].Scalars() {
			t.Errorf("device %d diverged across runs", d)
		}
	}
}

// The merged P99 must be the quantile of the pooled per-device populations,
// not the worst device's own P99: one outlier on an otherwise-fast device
// should not set the whole array's tail.
func TestMergePoolsPercentiles(t *testing.T) {
	hist := func(ds ...time.Duration) *stats.LatencyHist {
		h := &stats.LatencyHist{}
		for _, d := range ds {
			h.Add(d)
		}
		return h
	}
	fast := make([]time.Duration, 100)
	for i := range fast {
		fast[i] = time.Millisecond
	}
	dev0 := ssd.Results{ReadRequests: 100, ReadHist: hist(fast...)}
	slowTail := append(append([]time.Duration{}, fast[:9]...), 100*time.Millisecond)
	dev1 := ssd.Results{ReadRequests: 10, ReadHist: hist(slowTail...)}

	m := Merge("pool", []ssd.Results{dev0, dev1})
	// Pooled: 109 of 110 reads are ~1ms, so the 99th percentile sits in
	// the 1ms bucket. The worst device's own P99 would be ~100ms.
	if m.P99ReadResponse > 2*time.Millisecond {
		t.Errorf("pooled P99 = %v, want ~1ms (worst-device P99 leaked through)", m.P99ReadResponse)
	}
	if m.ReadHist == nil || m.ReadHist.N() != 110 {
		t.Errorf("merged histogram missing or wrong population: %+v", m.ReadHist)
	}
	// Hand-built results without histograms still merge via the fallback.
	f := Merge("fallback", []ssd.Results{
		{ReadRequests: 1, MeanReadResponse: time.Millisecond, P99ReadResponse: time.Millisecond},
		{ReadRequests: 1, MeanReadResponse: 3 * time.Millisecond, P99ReadResponse: 5 * time.Millisecond},
	})
	if f.MeanReadResponse != 2*time.Millisecond || f.P99ReadResponse != 5*time.Millisecond {
		t.Errorf("histogram-free fallback broke: mean %v p99 %v", f.MeanReadResponse, f.P99ReadResponse)
	}
}

// An array with telemetry enabled tags each device's stream and merges them
// into one deterministic export.
func TestArrayTelemetryMergesStreams(t *testing.T) {
	tr := parallelTrace("tel", 600)
	run := func() *telemetry.Export {
		dc := deviceConfig()
		dc.Telemetry = &telemetry.Config{MetricsInterval: 50 * time.Millisecond}
		arr, err := New(Config{Devices: 3, StripeKB: 64, Device: dc})
		if err != nil {
			t.Fatal(err)
		}
		res, err := arr.Run(tr, ssd.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Combined.Telemetry
	}
	e := run()
	if e == nil {
		t.Fatal("array telemetry export is nil")
	}
	if e.Device != -1 {
		t.Errorf("merged export device tag = %d, want -1", e.Device)
	}
	devs := map[int]bool{}
	for i := range e.Spans {
		devs[e.Spans[i].Device] = true
	}
	for d := 0; d < 3; d++ {
		if !devs[d] {
			t.Errorf("no spans from device %d in merged export", d)
		}
	}
	for i := 1; i < len(e.Samples); i++ {
		a, b := &e.Samples[i-1], &e.Samples[i]
		if a.At > b.At || (a.At == b.At && a.Device >= b.Device) {
			t.Fatalf("samples not in (At, Device) order at %d", i)
		}
	}
	// Despite per-device goroutines, the merged export must serialize
	// identically across runs.
	var c1, c2 bytes.Buffer
	if err := e.WriteCSV(&c1); err != nil {
		t.Fatal(err)
	}
	if err := run().WriteCSV(&c2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Error("array telemetry CSV not deterministic across runs")
	}
}

func TestMergeEmptyAndZeroDevices(t *testing.T) {
	m := Merge("empty", nil)
	if m.ReadRequests != 0 || m.ThroughputMBps != 0 {
		t.Errorf("merge of nothing = %+v", m)
	}
	// A device that never ran contributes nothing, including to the
	// utilization average.
	m = Merge("partial", []ssd.Results{{}, {Events: 10, MeanDieUtilization: 0.5, MeanChannelUtilization: 0.25}})
	if m.MeanDieUtilization != 0.5 || m.MeanChannelUtilization != 0.25 {
		t.Errorf("idle device skewed utilization: %+v", m)
	}
}
