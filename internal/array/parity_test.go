package array

import (
	"testing"
	"time"

	"idaflash/internal/faults"
	"idaflash/internal/ssd"
	"idaflash/internal/workload"
)

func TestParityDevRotation(t *testing.T) {
	const devices = 4
	for row := int64(0); row < 8; row++ {
		p := parityDev(row, devices)
		if p != int(row%devices) {
			t.Fatalf("row %d: parity on device %d", row, p)
		}
		seen := map[int]bool{p: true}
		for k := int64(0); k < devices-1; k++ {
			d := dataDev(row, k, devices)
			if seen[d] {
				t.Fatalf("row %d: device %d assigned twice", row, d)
			}
			seen[d] = true
		}
		if len(seen) != devices {
			t.Fatalf("row %d: %d devices used, want all %d", row, len(seen), devices)
		}
	}
}

func TestSplitParityLayout(t *testing.T) {
	const unit = 4096
	const devices = 3
	// One read (row 0) and one write spanning rows 0 and 1.
	tr := &workload.Trace{Name: "lay", Requests: []workload.Request{
		{At: 0, Offset: 0, Size: unit, Read: true},
		{At: time.Millisecond, Offset: 0, Size: 3 * unit, Read: false},
	}}
	subs := SplitParity(tr, devices, unit)

	// The read of data unit 0 (row 0, parity on dev 0) touches only dev 1.
	var reads []workload.Request
	for d, sub := range subs {
		for _, r := range sub.Requests {
			if r.Read {
				if d != 1 {
					t.Errorf("read sub-request on device %d: %+v", d, r)
				}
				reads = append(reads, r)
			}
		}
	}
	if len(reads) != 1 || reads[0].Offset != 0 || reads[0].Size != unit {
		t.Fatalf("read split wrong: %+v", reads)
	}

	// The write covers data units 0,1 (row 0 -> devs 1,2) and unit 2
	// (row 1, parity dev 1 -> data dev 0), all at local offset row*unit,
	// plus one parity write per row: row 0 on dev 0 at [0,unit), row 1 on
	// dev 1 at [unit, 2*unit).
	type ext struct {
		dev  int
		off  int64
		size int
	}
	var writes []ext
	for d, sub := range subs {
		for _, r := range sub.Requests {
			if !r.Read {
				writes = append(writes, ext{d, r.Offset, r.Size})
			}
		}
	}
	var total int64
	for _, w := range writes {
		total += int64(w.size)
	}
	// 3 data units + 2 parity units.
	if total != 5*unit {
		t.Errorf("write bytes dealt = %d, want %d (3 data + 2 parity units)", total, 5*unit)
	}
	// Per-device totals pin the rotation: dev0 = row-0 parity + row-1 data,
	// dev1 = row-0 data + row-1 parity, dev2 = row-0 data.
	perDev := map[int]int64{}
	for _, w := range writes {
		perDev[w.dev] += int64(w.size)
	}
	if perDev[0] != 2*unit || perDev[1] != 2*unit || perDev[2] != unit {
		t.Errorf("per-device write bytes = %v, want dev0=%d dev1=%d dev2=%d",
			perDev, 2*unit, 2*unit, unit)
	}
}

// TestSplitParityRoundTripsBytes maps every data sub-request back to host
// addresses: each host byte must be covered exactly once, and parity writes
// must cover exactly the written span of each touched row.
func TestSplitParityRoundTripsBytes(t *testing.T) {
	const unit = 4096
	const devices = 3
	const data = devices - 1
	tr := &workload.Trace{Name: "rt", Requests: []workload.Request{
		{At: 0, Offset: 1000, Size: 30000, Read: false},
	}}
	subs := SplitParity(tr, devices, unit)
	covered := make(map[int64]int)
	var parityBytes int64
	for d, sub := range subs {
		for _, r := range sub.Requests {
			for b := r.Offset; b < r.End(); b++ {
				row := b / unit
				if parityDev(row, devices) == d {
					parityBytes++
					continue
				}
				// Invert dataDev: device d holds data unit k of this row.
				k := int64(d)
				if d > parityDev(row, devices) {
					k--
				}
				host := (row*data+k)*unit + b%unit
				covered[host]++
			}
		}
	}
	r := tr.Requests[0]
	for b := r.Offset; b < r.End(); b++ {
		if covered[b] != 1 {
			t.Fatalf("host byte %d covered %d times", b, covered[b])
		}
	}
	if int64(len(covered)) != int64(r.Size) {
		t.Fatalf("covered %d bytes, want %d", len(covered), r.Size)
	}
	// Rows touched: host units 0..7 -> rows 0..3, written spans sum to the
	// union of intra-unit spans per row; with a dense request every touched
	// row's parity covers its full written span. The exact value matters
	// less than parity being present and bounded by one unit per row.
	if parityBytes == 0 {
		t.Fatal("no parity writes emitted")
	}
	rows := (r.End()-1)/(unit*data) - r.Offset/(unit*data) + 1
	if parityBytes > rows*unit {
		t.Errorf("parity bytes %d exceed one unit per touched row (%d rows)", parityBytes, rows)
	}
}

func degradedScenario(after time.Duration) *faults.Scenario {
	return &faults.Scenario{
		Seed:  21,
		Dies:  []faults.Outage{{Device: 1, Unit: 0, After: faults.Duration(after)}},
		Retry: faults.Retry{Max: 2, Backoff: faults.Duration(25 * time.Microsecond)},
	}
}

// TestParityDegradedRecovery is the acceptance scenario: a die on one array
// member fails permanently mid-run; with parity enabled every failed read is
// rebuilt from the peers and no host data is lost.
func TestParityDegradedRecovery(t *testing.T) {
	dc := deviceConfig()
	dc.Faults = degradedScenario(2 * time.Millisecond)
	a, err := New(Config{Devices: 4, Device: dc, Parity: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run(parallelTrace("degraded", 400), ssd.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Parity {
		t.Error("results not flagged as parity run")
	}
	if res.Combined.Faults.FailedReadPages == 0 {
		t.Fatal("outage never failed a read; move the outage earlier")
	}
	if res.Degraded.DegradedExtents == 0 || res.Degraded.ReconRequests == 0 {
		t.Fatalf("no degraded reads rebuilt: %+v", res.Degraded)
	}
	if res.Degraded.LostExtents != 0 {
		t.Fatalf("%d extents lost despite healthy peers: %+v", res.Degraded.LostExtents, res.Degraded)
	}
}

// TestNoParityLosesFailedReads: the same outage without parity completes
// (no hangs) but reports the failed reads with no reconstruction.
func TestNoParityLosesFailedReads(t *testing.T) {
	dc := deviceConfig()
	dc.Faults = degradedScenario(2 * time.Millisecond)
	a, err := New(Config{Devices: 4, Device: dc})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run(parallelTrace("no-parity", 400), ssd.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parity {
		t.Error("results flagged as parity run")
	}
	if res.Combined.Faults.FailedReadPages == 0 || res.Combined.Faults.FailedReadRequests == 0 {
		t.Fatalf("no failed reads surfaced: %+v", res.Combined.Faults)
	}
	if res.Degraded != (DegradedStats{}) {
		t.Errorf("reconstruction ran without parity: %+v", res.Degraded)
	}
}

// TestParityRunDeterministic: two identical parity arrays under the same
// fault scenario produce identical merged scalars and degraded accounting.
func TestParityRunDeterministic(t *testing.T) {
	run := func() Results {
		dc := deviceConfig()
		dc.Faults = degradedScenario(2 * time.Millisecond)
		a, err := New(Config{Devices: 4, Device: dc, Parity: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Run(parallelTrace("det", 300), ssd.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Combined.Scalars() != b.Combined.Scalars() {
		t.Errorf("combined results diverged:\n%+v\n%+v", a.Combined.Scalars(), b.Combined.Scalars())
	}
	if a.Degraded != b.Degraded {
		t.Errorf("degraded accounting diverged: %+v vs %+v", a.Degraded, b.Degraded)
	}
	for d := range a.PerDevice {
		if a.PerDevice[d].Scalars() != b.PerDevice[d].Scalars() {
			t.Errorf("device %d diverged", d)
		}
	}
}
