// Package array implements a RAID-0-style striped array of independent
// simulated SSDs, the scale-out layer above internal/ssd. Host requests are
// split at a fixed stripe unit across N devices; each device runs its own
// deterministic discrete-event engine on its own goroutine, and a merge
// step combines the per-device measurements into array-level latency and
// throughput metrics.
//
// Determinism: each device's simulation is bit-for-bit reproducible on its
// own (the engines share nothing), and the merge is a pure function of the
// per-device results, so a whole array run is reproducible too — the
// goroutines only buy wall-clock speed.
package array

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"idaflash/internal/ssd"
	"idaflash/internal/stats"
	"idaflash/internal/telemetry"
	"idaflash/internal/workload"
)

// DefaultStripeKB is the stripe unit used when Config.StripeKB is zero.
const DefaultStripeKB = 64

// seedStep decorrelates per-device randomness: device i runs with the
// template seed offset by i*seedStep.
const seedStep = 0x9E3779B9

// Config describes a striped array.
type Config struct {
	// Devices is the number of independent SSDs. Must be at least 1.
	Devices int
	// StripeKB is the stripe unit in KiB; requests are dealt across
	// devices in chunks of this size. Zero means DefaultStripeKB. It
	// should be a multiple of the device page size for aligned splits.
	StripeKB int
	// Parity rotates a RAID-5-style parity stripe across the devices
	// (see parity.go): N-1 data units per row plus one parity unit, so
	// reads of a failed device are reconstructed from its peers in
	// degraded mode after the run. Requires at least 3 devices.
	Parity bool
	// Device is the per-device configuration template. Each device gets
	// a decorrelated Seed (and FTL seed) derived from it.
	Device ssd.Config
	// Pool, when non-nil, supplies the member devices (runpool.Arena
	// satisfies it): New checks devices out instead of building them, and
	// Release parks them again after a clean run. Nil builds fresh
	// devices, as before.
	Pool DevicePool
}

// DevicePool is the device-reuse seam: a geometry-keyed pool of idle
// simulation devices. Get returns a device configured per the config
// (reset in place or freshly built); Put parks a cleanly finished device.
type DevicePool interface {
	Get(cfg ssd.Config) (*ssd.SSD, error)
	Put(dev *ssd.SSD)
}

func (c Config) withDefaults() (Config, error) {
	if c.Devices < 1 {
		return c, fmt.Errorf("array: Devices %d must be at least 1", c.Devices)
	}
	if c.StripeKB < 0 {
		return c, fmt.Errorf("array: StripeKB %d must be non-negative", c.StripeKB)
	}
	if c.StripeKB == 0 {
		c.StripeKB = DefaultStripeKB
	}
	if c.Parity && c.Devices < 3 {
		return c, fmt.Errorf("array: Parity needs at least 3 devices, have %d", c.Devices)
	}
	return c, nil
}

// Array is a striped set of simulated SSDs.
type Array struct {
	cfg  Config
	unit int64 // stripe unit in bytes
	devs []*ssd.SSD
}

// New builds the array: Devices independent SSD instances from the config
// template, each with its own decorrelated seed.
func New(cfg Config) (*Array, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	a := &Array{cfg: cfg, unit: int64(cfg.StripeKB) * 1024}
	a.devs = make([]*ssd.SSD, cfg.Devices)
	for i := range a.devs {
		dc := cfg.Device
		dc.Seed += int64(i) * seedStep
		dc.FTL.Seed += int64(i) * seedStep
		if dc.Faults != nil {
			// Outage filtering is by array member index, so each device
			// must know which member it is.
			dc.FaultDevice = i
		}
		if cfg.Device.Telemetry != nil {
			// Each device records into its own stream, tagged with the
			// member index; Merge interleaves them deterministically.
			tc := *cfg.Device.Telemetry
			tc.Device = i
			dc.Telemetry = &tc
		}
		var dev *ssd.SSD
		var err error
		if cfg.Pool != nil {
			dev, err = cfg.Pool.Get(dc)
		} else {
			dev, err = ssd.New(dc)
		}
		if err != nil {
			return nil, fmt.Errorf("array: device %d: %w", i, err)
		}
		a.devs[i] = dev
	}
	return a, nil
}

// Release parks the member devices back in the configured pool. Call it
// only after a cleanly completed run (the merged results share no memory
// with the devices), and use neither the array nor its devices afterwards.
// Without a pool, or on a second call, it is a no-op.
func (a *Array) Release() {
	if a.cfg.Pool == nil {
		return
	}
	for i, dev := range a.devs {
		if dev != nil {
			a.cfg.Pool.Put(dev)
			a.devs[i] = nil
		}
	}
}

// Devices returns the number of devices.
func (a *Array) Devices() int { return a.cfg.Devices }

// StripeBytes returns the stripe unit in bytes.
func (a *Array) StripeBytes() int64 { return a.unit }

// Device exposes one member SSD (tests and diagnostics).
func (a *Array) Device(i int) *ssd.SSD { return a.devs[i] }

// Split deals a host trace across devices at the given stripe unit. Each
// request maps to at most one sub-request per device: the stripes a device
// owns within one host extent are consecutive in that device's address
// space, so the per-device extent is contiguous. Sub-requests inherit the
// host arrival time.
func Split(tr *workload.Trace, devices int, unitBytes int64) []*workload.Trace {
	out := make([]*workload.Trace, devices)
	for d := range out {
		out[d] = &workload.Trace{Name: fmt.Sprintf("%s@dev%d", tr.Name, d)}
	}
	if devices == 1 {
		out[0].Requests = tr.Requests
		return out
	}
	n := int64(devices)
	for _, r := range tr.Requests {
		s0 := r.Offset / unitBytes
		s1 := (r.End() - 1) / unitBytes
		for d := int64(0); d < n; d++ {
			// First and last stripe of device d inside [s0, s1].
			k0 := s0 + ((d-s0%n)+n)%n
			if k0 > s1 {
				continue
			}
			k1 := k0 + (s1-k0)/n*n
			start := k0 / n * unitBytes
			if k0 == s0 {
				start += r.Offset - s0*unitBytes
			}
			end := k1/n*unitBytes + unitBytes
			if k1 == s1 {
				end = k1/n*unitBytes + (r.End() - s1*unitBytes)
			}
			out[d].Requests = append(out[d].Requests, workload.Request{
				At: r.At, Offset: start, Size: int(end - start), Read: r.Read,
			})
		}
	}
	return out
}

// Results combines the array-level view with the per-device measurements.
type Results struct {
	// Combined is the merged array-level view. Request counts sum the
	// per-device sub-requests (a host request striped over k devices
	// counts k times); response-time means and quantiles come from the
	// merged per-device latency histograms, so the P99 is the true 99th
	// percentile of the pooled sub-request population rather than the
	// worst device's P99. Still slightly optimistic for host-visible
	// latency, since a striped host request only completes when its
	// slowest sub-request does.
	Combined ssd.Results
	// PerDevice holds each member device's own measurements; devices a
	// trace never touched report a zero value.
	PerDevice []ssd.Results
	// Devices and StripeKB echo the topology that produced the results.
	Devices  int
	StripeKB int
	// Parity reports whether the array ran with the rotated parity
	// stripe; Degraded accounts its post-run reconstruction of failed
	// reads (zero without parity or without faults).
	Parity   bool
	Degraded DegradedStats
}

// Run splits the trace (and any preamble) across the devices, runs every
// member concurrently — each on its own goroutine, each deterministic in
// isolation — and merges the measurements. Like ssd.Run it may be called
// once per array.
func (a *Array) Run(tr *workload.Trace, opts ssd.RunOptions) (Results, error) {
	return a.RunContext(context.Background(), tr, opts)
}

// RunContext is Run with cooperative cancellation and failure isolation.
// Cancelling ctx stops every member within the engine polling bounds. When
// one member fails on its own (an invariant violation, an undersized
// device), its siblings are cancelled rather than left to run to completion
// for a result that can no longer be used; the member's own error — not the
// sibling cancellations it caused — is what RunContext returns. Either way
// the merged partial per-device stats accompany the error. Member panics
// are contained inside ssd.RunContext, which matters doubly here: an
// uncontained panic on a device goroutine would kill the whole process, not
// just unwind one call stack.
func (a *Array) RunContext(ctx context.Context, tr *workload.Trace, opts ssd.RunOptions) (Results, error) {
	if err := tr.Validate(); err != nil {
		return Results{}, err
	}
	split := Split
	if a.cfg.Parity {
		split = SplitParity
	}
	subs := split(tr, a.cfg.Devices, a.unit)
	var pres []*workload.Trace
	if opts.Preamble != nil {
		pres = split(opts.Preamble, a.cfg.Devices, a.unit)
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	per := make([]ssd.Results, len(a.devs))
	errs := make([]error, len(a.devs))
	var wg sync.WaitGroup
	for d := range a.devs {
		if len(subs[d].Requests) == 0 {
			per[d] = ssd.Results{Trace: subs[d].Name}
			continue
		}
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			o := opts
			if pres != nil {
				o.Preamble = pres[d]
			}
			if o.SnapshotKey != "" {
				// Each member ages differently: it replays its own split
				// of the trace with its own decorrelated seeds, so the
				// aged state is per (member, topology), not per profile.
				o.SnapshotKey = fmt.Sprintf("%s|array:dev=%d/%d,stripe=%d,parity=%t",
					opts.SnapshotKey, d, a.cfg.Devices, a.cfg.StripeKB, a.cfg.Parity)
			}
			res, err := a.devs[d].RunContext(runCtx, subs[d], o)
			per[d] = res // partial stats survive a failed member
			if err != nil {
				errs[d] = fmt.Errorf("array: device %d: %w", d, err)
				cancel()
			}
		}(d)
	}
	wg.Wait()
	if err := joinRunErrors(ctx, errs); err != nil {
		return Results{
			Combined:  Merge(tr.Name, per),
			PerDevice: per,
			Devices:   a.cfg.Devices,
			StripeKB:  a.cfg.StripeKB,
			Parity:    a.cfg.Parity,
		}, err
	}
	res := Results{
		Combined:  Merge(tr.Name, per),
		PerDevice: per,
		Devices:   a.cfg.Devices,
		StripeKB:  a.cfg.StripeKB,
		Parity:    a.cfg.Parity,
	}
	// Degraded-mode recovery: with parity enabled, reads the fault
	// scenario failed outright are rebuilt from the peers' shares of the
	// same rows. The pass runs after the measured phase (per-device
	// metrics above are already snapshotted) and is itself deterministic.
	if a.cfg.Parity {
		failed := make([][]ssd.FailedExtent, len(a.devs))
		any := false
		for d := range a.devs {
			failed[d] = a.devs[d].FailedReadExtents()
			any = any || len(failed[d]) > 0
		}
		if any {
			a.reconstruct(failed, &res.Degraded)
		}
	}
	return res, nil
}

// joinRunErrors reduces the per-device errors of one array run. Real
// failures (invariant violations, sizing errors) outrank the context
// cancellations they triggered on their siblings; pure cancellations — the
// caller's ctx, or its deadline — collapse to the caller-visible context
// error so errors.Is(err, context.Canceled) works on the result.
func joinRunErrors(ctx context.Context, errs []error) error {
	var real []error
	var ctxErr error
	for _, e := range errs {
		if e == nil {
			continue
		}
		if errors.Is(e, context.Canceled) || errors.Is(e, context.DeadlineExceeded) {
			if ctxErr == nil {
				ctxErr = e
			}
			continue
		}
		real = append(real, e)
	}
	if len(real) > 0 {
		return errors.Join(real...)
	}
	if ctxErr != nil {
		// Report the caller's own context error when it is the cause.
		if err := ctx.Err(); err != nil {
			return err
		}
		return ctxErr
	}
	return nil
}

// Merge combines per-device results into one array-level ssd.Results (see
// Results.Combined for the metric semantics). Counters and busy times sum;
// response-time statistics come from the merged per-device histograms
// (with a count-weighted fallback for results built without histograms);
// spans take the slowest device; throughput is total bytes moved per second
// of the longest device busy span. Per-device telemetry exports merge into
// one multi-stream export.
func Merge(name string, per []ssd.Results) ssd.Results {
	c := ssd.Results{Trace: name}
	readHist, writeHist := &stats.LatencyHist{}, &stats.LatencyHist{}
	tels := make([]*telemetry.Export, 0, len(per))
	var readW, writeW float64   // weighted response-time accumulators, ns
	var worstP99 time.Duration  // fallback when histograms are absent
	var bytesMB, readMB float64 // total host MB moved, from per-device rates
	var utilDevs int
	var totalBlocks int
	for _, r := range per {
		// All members run the same coding scheme, so the name copies.
		c.Coding = r.Coding
		// Wear pools across members: extremes widen, means weight by
		// each device's block count.
		if totalBlocks == 0 || r.Wear.MinErase < c.Wear.MinErase {
			c.Wear.MinErase = r.Wear.MinErase
		}
		if r.Wear.MaxErase > c.Wear.MaxErase {
			c.Wear.MaxErase = r.Wear.MaxErase
		}
		c.Wear.MeanErase += r.Wear.MeanErase * float64(r.Usage.Total)
		totalBlocks += r.Usage.Total
		c.ReadRequests += r.ReadRequests
		c.WriteRequests += r.WriteRequests
		readHist.Merge(r.ReadHist)
		writeHist.Merge(r.WriteHist)
		tels = append(tels, r.Telemetry)
		readW += float64(r.MeanReadResponse) * float64(r.ReadRequests)
		writeW += float64(r.MeanWriteResponse) * float64(r.WriteRequests)
		if r.P99ReadResponse > worstP99 {
			worstP99 = r.P99ReadResponse
		}
		if r.Makespan > c.Makespan {
			c.Makespan = r.Makespan
		}
		if r.BusySpan > c.BusySpan {
			c.BusySpan = r.BusySpan
		}
		bytesMB += r.ThroughputMBps * r.BusySpan.Seconds()
		readMB += r.ReadMBps * r.BusySpan.Seconds()
		c.UnmappedReads += r.UnmappedReads
		c.FTL = c.FTL.Add(r.FTL)
		c.Usage = c.Usage.Add(r.Usage)
		c.PeakInUse += r.PeakInUse
		c.PeakIDA += r.PeakIDA
		c.GCBusy += r.GCBusy
		c.RefreshBusy += r.RefreshBusy
		c.Stages = c.Stages.Add(r.Stages)
		c.Faults = c.Faults.Add(r.Faults)
		c.Events += r.Events
		if r.Events > 0 {
			c.MeanDieUtilization += r.MeanDieUtilization
			c.MeanChannelUtilization += r.MeanChannelUtilization
			utilDevs++
		}
	}
	// True pooled statistics when the devices carried their histograms;
	// the pre-histogram approximations (count-weighted mean, worst-device
	// P99) otherwise.
	if readHist.N() > 0 {
		c.MeanReadResponse = readHist.Mean()
		c.P99ReadResponse = readHist.Quantile(0.99)
		c.ReadHist = readHist
	} else {
		c.P99ReadResponse = worstP99
		if c.ReadRequests > 0 {
			c.MeanReadResponse = time.Duration(readW / float64(c.ReadRequests))
		}
	}
	if writeHist.N() > 0 {
		c.MeanWriteResponse = writeHist.Mean()
		c.WriteHist = writeHist
	} else if c.WriteRequests > 0 {
		c.MeanWriteResponse = time.Duration(writeW / float64(c.WriteRequests))
	}
	c.Telemetry = telemetry.MergeExports(tels...)
	if utilDevs > 0 {
		c.MeanDieUtilization /= float64(utilDevs)
		c.MeanChannelUtilization /= float64(utilDevs)
	}
	if secs := c.BusySpan.Seconds(); secs > 0 {
		c.ThroughputMBps = bytesMB / secs
		c.ReadMBps = readMB / secs
	}
	if totalBlocks > 0 {
		c.Wear.MeanErase /= float64(totalBlocks)
	}
	c.Wear.Spread = c.Wear.MaxErase - c.Wear.MinErase
	c.PowerProxy = c.FTL.ProgramPower
	if hw := c.FTL.HostWrites; hw > 0 {
		total := hw + c.FTL.GCMoves + c.FTL.RefreshMoves + c.FTL.IDACorruptedWrites
		c.WriteAmplification = float64(total) / float64(hw)
		if programs := total + c.FTL.ProgramFailures; programs > 0 {
			c.MeanProgramPower = c.PowerProxy / float64(programs)
		}
	}
	return c
}
