package array

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"idaflash/internal/sim"
	"idaflash/internal/ssd"
)

func fourDeviceArray(t *testing.T) *Array {
	t.Helper()
	a, err := New(Config{Devices: 4, StripeKB: 64, Device: deviceConfig()})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestArrayRunContextCancelMidRun cancels a 4-device run at a simulated
// instant on one member and expects every member to stop within the engine
// polling bounds, with the caller seeing its own context error and the
// merged partial stats.
func TestArrayRunContextCancelMidRun(t *testing.T) {
	a := fourDeviceArray(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const cancelAt = sim.Time(2 * time.Millisecond)
	a.Device(0).Engine().At(cancelAt, cancel)

	res, err := a.RunContext(ctx, parallelTrace("arr-cancel", 2000), ssd.RunOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Only device 0's clock relates deterministically to the cancel
	// instant (the siblings run their own timelines at wall speed and may
	// be anywhere when the cancellation lands); it must stop within the
	// 10ms simulated bound.
	if now := a.Device(0).Engine().Now(); now > cancelAt+sim.Time(10*time.Millisecond) {
		t.Errorf("device 0 ran to %v, more than 10ms of simulated time past the cancel at %v", now, cancelAt)
	}
	// Every sibling engine stopped: cancelled mid-run or fully drained.
	for d := 0; d < a.Devices(); d++ {
		eng := a.Device(d).Engine()
		if eng.Err() == nil && eng.Pending() > 0 {
			t.Errorf("device %d still has %d events queued with no stop error", d, eng.Pending())
		}
	}
	if len(res.PerDevice) != 4 {
		t.Fatalf("partial results carry %d devices, want 4", len(res.PerDevice))
	}
	if res.Combined.Trace != "arr-cancel" {
		t.Errorf("merged partial results lost the trace name: %q", res.Combined.Trace)
	}
}

// TestArrayRunContextDeadline runs a 4-device array under an
// already-expired wall-clock deadline.
func TestArrayRunContextDeadline(t *testing.T) {
	a := fourDeviceArray(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	if _, err := a.RunContext(ctx, parallelTrace("arr-deadline", 4000), ssd.RunOptions{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestArrayInvariantDoesNotKillSiblings injects a panic into one member's
// engine. The panic must come back as a typed *sim.InvariantError naming the
// failing device — not kill the process (device goroutine panics would, were
// they not contained inside ssd.RunContext) and not be masked by the sibling
// cancellations it triggers.
func TestArrayInvariantDoesNotKillSiblings(t *testing.T) {
	a := fourDeviceArray(t)
	const at = sim.Time(2 * time.Millisecond)
	a.Device(2).Engine().At(at, func() { panic("injected corruption") })

	res, err := a.RunContext(context.Background(), parallelTrace("arr-invariant", 2000), ssd.RunOptions{})
	var ie *sim.InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *sim.InvariantError", err, err)
	}
	if ie.At != at {
		t.Errorf("InvariantError.At = %v, want %v", ie.At, at)
	}
	if errors.Is(err, context.Canceled) {
		t.Error("the member's own failure was reported as a sibling cancellation")
	}
	// The panicking device stopped exactly at the injected event.
	if now := a.Device(2).Engine().Now(); now != at {
		t.Errorf("device 2 stopped at %v, want the injection point %v", now, at)
	}
	// The siblings were cancelled, not abandoned: their partial stats are
	// in the merged result and their engines are stopped or drained.
	if len(res.PerDevice) != 4 {
		t.Fatalf("partial results carry %d devices, want 4", len(res.PerDevice))
	}
	for d := 0; d < a.Devices(); d++ {
		eng := a.Device(d).Engine()
		if d != 2 && eng.Err() == nil && eng.Pending() > 0 {
			t.Errorf("device %d still has %d events queued with no stop error", d, eng.Pending())
		}
	}
}

// TestArrayCancelLeaksNoGoroutines pins the unwind: after cancelled array
// runs every device goroutine has exited. (goleak is unavailable, so this
// polls the runtime's goroutine count against the pre-test baseline.)
func TestArrayCancelLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		a := fourDeviceArray(t)
		ctx, cancel := context.WithCancel(context.Background())
		a.Device(0).Engine().At(sim.Time(time.Millisecond), cancel)
		if _, err := a.RunContext(ctx, parallelTrace("arr-leak", 2000), ssd.RunOptions{}); !errors.Is(err, context.Canceled) {
			t.Fatalf("run %d: err = %v, want context.Canceled", i, err)
		}
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d two seconds after cancelled runs", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
