// Package sim provides a small deterministic discrete-event simulation
// engine: a virtual clock, an event queue, and single-server resources with
// priority scheduling. It is the substrate the SSD model (internal/ssd) runs
// on, standing in for the DiskSim engine the paper used.
package sim

import (
	"context"
	"fmt"
	"time"
)

// Time is an absolute instant on the simulated clock, measured as an offset
// from the simulation start. Durations and instants share time.Duration's
// nanosecond resolution.
type Time = time.Duration

// Action is a pre-allocated callback: a state object whose Run method is the
// event body. Scheduling a pointer-backed Action stores the interface value
// inline in the event queue, so — unlike a fresh closure — it costs no
// allocation per event. The simulation hot path (resource completions,
// pooled page operations) schedules Actions; cold paths keep using func()
// callbacks.
type Action interface {
	Run()
}

// event is one scheduled callback: either a closure (fn) or a pre-allocated
// Action (op). Exactly one of the two is set.
type event struct {
	at  Time
	seq uint64 // insertion order, for deterministic FIFO tie-breaking
	fn  func()
	op  Action
}

// Engine is a deterministic discrete-event scheduler. It is not safe for
// concurrent use: the whole simulation runs on one goroutine, which is what
// makes runs bit-for-bit reproducible.
//
// The event queue is an inlined index-based binary min-heap over []event,
// ordered by (at, seq). Inlining (instead of container/heap) keeps events
// out of interface{} boxes: pushing and popping moves struct values within
// one backing array and never allocates beyond the amortized append growth.
type Engine struct {
	now       Time
	events    []event
	seq       uint64
	processed uint64

	// Cooperative cancellation. ctx is nil unless SetContext installed a
	// cancellable context; the run loops poll it at most every
	// cancelCheckEvents events or cancelCheckSim of simulated progress,
	// whichever comes first, so the amortized cost is two integer compares
	// per event. stopErr is the sticky reason the run loops stopped early —
	// a context error, or whatever a callback passed to Stop.
	ctx         context.Context
	stopErr     error
	sinceCheck  uint32
	nextCheckAt Time
}

// Cancellation polling bounds: poll the context at least once per this many
// events and at least once per this much simulated progress. The simulated
// bound keeps cancellation latency under 10 ms of simulated-event progress
// even for sparse event streams; the event bound keeps wall-clock latency in
// the microseconds for dense ones.
const (
	cancelCheckEvents = 4096
	cancelCheckSim    = time.Millisecond
)

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Reset returns the engine to its as-constructed state — clock at zero, no
// pending events, no context, no sticky stop error — while keeping the event
// heap's backing array, so a pooled engine starts its next run without
// reallocating the queue. Pending events are dropped (and zeroed, so their
// callbacks are not retained); callers reset only between runs, when the
// queue has drained anyway.
func (e *Engine) Reset() {
	clear(e.events)
	e.events = e.events[:0]
	e.now = 0
	e.seq = 0
	e.processed = 0
	e.ctx = nil
	e.stopErr = nil
	e.sinceCheck = 0
	e.nextCheckAt = 0
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// eventLess orders the heap by timestamp, breaking ties by insertion order
// so equal-time events run FIFO.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts an event and restores the heap by sifting it up.
func (e *Engine) push(ev event) {
	e.events = append(e.events, ev)
	h := e.events
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the earliest event, zeroing the vacated slot so
// the backing array does not retain callback references.
func (e *Engine) pop() event {
	h := e.events
	root := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	e.events = h
	// Sift the relocated element down.
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && eventLess(&h[r], &h[l]) {
			child = r
		}
		if !eventLess(&h[child], &h[i]) {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
	return root
}

// schedule validates the timestamp and enqueues the event.
func (e *Engine) schedule(t Time, fn func(), op Action) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn, op: op})
}

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past is a programming error and panics: allowing it would silently
// reorder causality.
func (e *Engine) At(t Time, fn func()) {
	e.schedule(t, fn, nil)
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d time.Duration, fn func()) {
	e.schedule(e.now+d, fn, nil)
}

// AtAction schedules a pre-allocated Action at absolute time t. It is the
// allocation-free counterpart of At.
func (e *Engine) AtAction(t Time, a Action) {
	e.schedule(t, nil, a)
}

// AfterAction schedules a pre-allocated Action d after the current time. It
// is the allocation-free counterpart of After.
func (e *Engine) AfterAction(d time.Duration, a Action) {
	e.schedule(e.now+d, nil, a)
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.processed++
	if ev.op != nil {
		ev.op.Run()
	} else {
		ev.fn()
	}
	return true
}

// SetContext installs a context the run loops poll cooperatively: once it is
// cancelled, Run/RunUntil stop (leaving remaining events queued) and return
// its error. A nil context — or one that can never be cancelled, like
// context.Background() — disables polling entirely, keeping the hot loop at
// a single nil check per event.
func (e *Engine) SetContext(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		e.ctx = nil
		return
	}
	e.ctx = ctx
	e.sinceCheck = 0
	e.nextCheckAt = e.now + cancelCheckSim
}

// Stop aborts the current run loop after the event in flight: Run/RunUntil
// return err, and further calls keep returning it. Callbacks use it to turn
// a mid-simulation failure (e.g. an FTL allocation error during background
// GC) into a failed run instead of a panic. A nil err is ignored, as is any
// Stop after the first.
func (e *Engine) Stop(err error) {
	if e.stopErr == nil && err != nil {
		e.stopErr = err
	}
}

// Err returns the error that stopped the engine, if any.
func (e *Engine) Err() error { return e.stopErr }

// checkCancel polls the installed context on the amortized schedule.
func (e *Engine) checkCancel() {
	if e.ctx == nil {
		return
	}
	e.sinceCheck++
	if e.sinceCheck < cancelCheckEvents && e.now < e.nextCheckAt {
		return
	}
	e.sinceCheck = 0
	e.nextCheckAt = e.now + cancelCheckSim
	if err := e.ctx.Err(); err != nil && e.stopErr == nil {
		e.stopErr = err
	}
}

// jumpCancel polls the context before an event that would advance the clock
// past the polling horizon. The post-step poll alone bounds detection only
// in dense stretches; a sparse tail (say, an idle device whose next event is
// a background scan a simulated minute away) would otherwise leap minutes
// past a cancellation in a single step. Returns true when the run must stop.
func (e *Engine) jumpCancel() bool {
	if e.ctx == nil || len(e.events) == 0 || e.events[0].at <= e.nextCheckAt {
		return false
	}
	e.sinceCheck = 0
	e.nextCheckAt = e.events[0].at + cancelCheckSim
	if err := e.ctx.Err(); err != nil {
		if e.stopErr == nil {
			e.stopErr = err
		}
		return true
	}
	return false
}

// Run executes events until the queue is empty, the installed context is
// cancelled, or a callback calls Stop. It returns nil on a full drain and
// the stopping error otherwise.
func (e *Engine) Run() error {
	for e.stopErr == nil {
		if e.jumpCancel() || !e.Step() {
			break
		}
		e.checkCancel()
	}
	return e.stopErr
}

// RunUntil executes events with timestamps at or before t, then advances the
// clock to exactly t. Events scheduled later stay queued. Like Run it stops
// early on cancellation or Stop, returning the stopping error (and leaving
// the clock wherever the last event put it).
func (e *Engine) RunUntil(t Time) error {
	for e.stopErr == nil && len(e.events) > 0 && e.events[0].at <= t {
		if e.jumpCancel() {
			break
		}
		e.Step()
		e.checkCancel()
	}
	if e.stopErr != nil {
		return e.stopErr
	}
	if t > e.now {
		e.now = t
	}
	return nil
}

// Pulse schedules fn at fixed intervals starting one interval from now,
// re-arming only while other events remain pending: when a pulse fires and
// finds the queue otherwise empty, it does not re-arm, so a finished
// simulation drains instead of ticking forever. Telemetry samplers hang
// off this. A non-positive interval panics.
func (e *Engine) Pulse(interval time.Duration, fn func(now Time)) {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: pulse interval %v must be positive", interval))
	}
	var tick func()
	tick = func() {
		fn(e.now)
		if len(e.events) > 0 {
			e.After(interval, tick)
		}
	}
	e.After(interval, tick)
}
