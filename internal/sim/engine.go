// Package sim provides a small deterministic discrete-event simulation
// engine: a virtual clock, an event queue, and single-server resources with
// priority scheduling. It is the substrate the SSD model (internal/ssd) runs
// on, standing in for the DiskSim engine the paper used.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an absolute instant on the simulated clock, measured as an offset
// from the simulation start. Durations and instants share time.Duration's
// nanosecond resolution.
type Time = time.Duration

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64 // insertion order, for deterministic FIFO tie-breaking
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event scheduler. It is not safe for
// concurrent use: the whole simulation runs on one goroutine, which is what
// makes runs bit-for-bit reproducible.
type Engine struct {
	now       Time
	events    eventHeap
	seq       uint64
	processed uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past is a programming error and panics: allowing it would silently
// reorder causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d time.Duration, fn func()) {
	e.At(e.now+d, fn)
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps at or before t, then advances the
// clock to exactly t. Events scheduled later stay queued.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Pulse schedules fn at fixed intervals starting one interval from now,
// re-arming only while other events remain pending: when a pulse fires and
// finds the queue otherwise empty, it does not re-arm, so a finished
// simulation drains instead of ticking forever. Telemetry samplers hang
// off this. A non-positive interval panics.
func (e *Engine) Pulse(interval time.Duration, fn func(now Time)) {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: pulse interval %v must be positive", interval))
	}
	var tick func()
	tick = func() {
		fn(e.now)
		if len(e.events) > 0 {
			e.After(interval, tick)
		}
	}
	e.After(interval, tick)
}
