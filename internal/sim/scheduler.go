package sim

import (
	"fmt"
	"time"
)

// Policy names a resource scheduling discipline. The zero value selects
// read-first, the paper's policy.
type Policy string

// Built-in policies.
const (
	// PolicyReadFirst serves the highest priority class first and FIFO
	// within a class: host reads overtake host writes, both overtake
	// background work. This is the paper's discipline and the default.
	PolicyReadFirst Policy = "read-first"
	// PolicyFIFO serves strictly in arrival order, ignoring class.
	PolicyFIFO Policy = "fifo"
	// PolicyAgeAware behaves like read-first but promotes a lower-class
	// waiter once it has aged past a bound, so reads cannot starve writes
	// (or background work) indefinitely while writes still cannot make a
	// read wait behind a whole burst of them.
	PolicyAgeAware Policy = "age-aware"
)

// ParsePolicy validates a policy name; the empty string means read-first.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case "", PolicyReadFirst:
		return PolicyReadFirst, nil
	case PolicyFIFO:
		return PolicyFIFO, nil
	case PolicyAgeAware:
		return PolicyAgeAware, nil
	}
	return "", fmt.Errorf("sim: unknown scheduling policy %q (want %q, %q or %q)",
		s, PolicyReadFirst, PolicyFIFO, PolicyAgeAware)
}

// Policies lists the built-in policy names.
func Policies() []Policy {
	return []Policy{PolicyReadFirst, PolicyFIFO, PolicyAgeAware}
}

// Waiter is one queued acquisition as a Scheduler sees it: the service
// class, the enqueue instant, and an opaque payload the Resource round-trips
// (the hold duration and completion callback — a closure or a pre-allocated
// Action, whichever the acquirer supplied).
type Waiter struct {
	Prio     Priority
	Enqueued Time
	seq      uint64
	hold     time.Duration
	then     func()
	op       Action
}

// complete invokes the waiter's completion callback, if any.
func (w *Waiter) complete() {
	if w.op != nil {
		w.op.Run()
	} else if w.then != nil {
		w.then()
	}
}

// Scheduler orders the waiters of one Resource. Implementations are
// per-resource and single-goroutine, like the engine itself; they must be
// deterministic (no map iteration, no wall-clock reads) so simulations stay
// bit-for-bit reproducible.
type Scheduler interface {
	// Push enqueues a waiter that could not be served immediately.
	Push(w Waiter)
	// Pop removes and returns the waiter to serve next at instant now.
	// ok is false when no waiter is queued.
	Pop(now Time) (w Waiter, ok bool)
	// Len returns the number of queued waiters.
	Len() int
	// Policy names the discipline, for diagnostics.
	Policy() Policy
	// Reset empties the queues for reuse, keeping their backing storage so
	// a pooled resource starts its next run without reallocating rings.
	Reset()
}

// SchedulerConfig selects and parameterizes a policy.
type SchedulerConfig struct {
	// Policy is the discipline; empty means read-first.
	Policy Policy
	// MaxWait bounds lower-class queueing delay under the age-aware
	// policy: once the oldest non-read waiter has waited this long it is
	// served before any read. Zero defaults to 10 ms (a few program
	// latencies). Ignored by the other policies.
	MaxWait time.Duration
}

// DefaultAgeAwareMaxWait is the starvation bound used when
// SchedulerConfig.MaxWait is zero: about four page programs.
const DefaultAgeAwareMaxWait = 10 * time.Millisecond

// Validate checks the config.
func (c SchedulerConfig) Validate() error {
	if _, err := ParsePolicy(string(c.Policy)); err != nil {
		return err
	}
	if c.MaxWait < 0 {
		return fmt.Errorf("sim: scheduler MaxWait %v must be non-negative", c.MaxWait)
	}
	return nil
}

// New builds a fresh scheduler instance. Each Resource needs its own
// instance, since schedulers hold the queue state. An unknown policy is a
// config error, returned rather than panicked so a service embedding the
// simulator can reject a bad request instead of dying; device constructors
// (ssd.New) validate the config up-front and surface this before any
// resource is built.
func (c SchedulerConfig) New() (Scheduler, error) {
	p, err := ParsePolicy(string(c.Policy))
	if err != nil {
		return nil, err
	}
	switch p {
	case PolicyFIFO:
		return &fifoScheduler{}, nil
	case PolicyAgeAware:
		maxWait := c.MaxWait
		if maxWait == 0 {
			maxWait = DefaultAgeAwareMaxWait
		}
		return &ageAwareScheduler{maxWait: maxWait}, nil
	default:
		return &readFirstScheduler{}, nil
	}
}

// readFirstScheduler keeps one FIFO queue per priority class and always
// serves the highest non-empty class, reproducing the original hard-wired
// discipline bit for bit.
type readFirstScheduler struct {
	queues [numPriorities]waiterQueue
}

func (s *readFirstScheduler) Policy() Policy { return PolicyReadFirst }

func (s *readFirstScheduler) Push(w Waiter) {
	s.queues[w.Prio].Push(w)
}

func (s *readFirstScheduler) Pop(Time) (Waiter, bool) {
	for p := Priority(0); p < numPriorities; p++ {
		if s.queues[p].Len() > 0 {
			return s.queues[p].Pop(), true
		}
	}
	return Waiter{}, false
}

func (s *readFirstScheduler) Len() int {
	n := 0
	for i := range s.queues {
		n += s.queues[i].Len()
	}
	return n
}

func (s *readFirstScheduler) Reset() {
	for i := range s.queues {
		s.queues[i].reset()
	}
}

// fifoScheduler serves strictly in arrival order.
type fifoScheduler struct {
	queue waiterQueue
}

func (s *fifoScheduler) Policy() Policy { return PolicyFIFO }
func (s *fifoScheduler) Push(w Waiter)  { s.queue.Push(w) }
func (s *fifoScheduler) Len() int       { return s.queue.Len() }
func (s *fifoScheduler) Reset()         { s.queue.reset() }

func (s *fifoScheduler) Pop(Time) (Waiter, bool) {
	if s.queue.Len() == 0 {
		return Waiter{}, false
	}
	return s.queue.Pop(), true
}

// ageAwareScheduler is read-first with a starvation bound: when the oldest
// waiter of a lower class (host write or background) has been queued longer
// than maxWait, that waiter is served before any read. Among over-age
// waiters the oldest wins, ties going to the higher class, which keeps the
// pick deterministic.
type ageAwareScheduler struct {
	queues  [numPriorities]waiterQueue
	maxWait time.Duration
}

func (s *ageAwareScheduler) Policy() Policy { return PolicyAgeAware }

func (s *ageAwareScheduler) Push(w Waiter) {
	s.queues[w.Prio].Push(w)
}

func (s *ageAwareScheduler) Pop(now Time) (Waiter, bool) {
	// Heads of each class queue are the oldest of their class; an aged
	// head preempts the read-first order.
	aged := Priority(-1)
	for p := PrioHostWrite; p < numPriorities; p++ {
		if s.queues[p].Len() == 0 {
			continue
		}
		head := s.queues[p].Front()
		if now-head.Enqueued < s.maxWait {
			continue
		}
		if aged < 0 || head.Enqueued < s.queues[aged].Front().Enqueued {
			aged = p
		}
	}
	if aged >= 0 {
		return s.queues[aged].Pop(), true
	}
	for p := Priority(0); p < numPriorities; p++ {
		if s.queues[p].Len() > 0 {
			return s.queues[p].Pop(), true
		}
	}
	return Waiter{}, false
}

func (s *ageAwareScheduler) Len() int {
	n := 0
	for i := range s.queues {
		n += s.queues[i].Len()
	}
	return n
}

func (s *ageAwareScheduler) Reset() {
	for i := range s.queues {
		s.queues[i].reset()
	}
}
