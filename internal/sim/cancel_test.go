package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestEngineCancelStopsWithinSimBound: once the context is cancelled, the
// run loop must notice within cancelCheckSim of simulated progress even when
// the event stream is too sparse to hit the event-count bound.
func TestEngineCancelStopsWithinSimBound(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	e.SetContext(ctx)
	var tick func()
	fired := 0
	tick = func() {
		fired++
		if fired == 3 {
			cancel()
		}
		e.After(100*time.Microsecond, tick)
	}
	e.After(100*time.Microsecond, tick)
	err := e.Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run() = %v, want context.Canceled", err)
	}
	if e.Err() == nil {
		t.Fatal("Err() not sticky after cancellation")
	}
	// Cancellation happened at t=300us; the poll must land within the
	// simulated check interval plus one event spacing.
	limit := 300*time.Microsecond + cancelCheckSim + 100*time.Microsecond
	if e.Now() > limit {
		t.Fatalf("engine ran to %v after cancel at 300us (bound %v)", e.Now(), limit)
	}
	if e.Pending() == 0 {
		t.Fatal("cancelled run should leave the pending event queued")
	}
}

// TestEngineCancelStopsWithinEventBound: a dense stream of same-instant
// events must still observe cancellation via the event-count bound.
func TestEngineCancelStopsWithinEventBound(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the run even starts
	e.SetContext(ctx)
	var tick func()
	tick = func() { e.After(1, tick) } // zero simulated progress per many events? 1ns each
	e.After(1, tick)
	if err := e.Run(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run() = %v, want context.Canceled", err)
	}
	if e.Processed() > cancelCheckEvents+1 {
		t.Fatalf("processed %d events after pre-cancelled context (bound %d)", e.Processed(), cancelCheckEvents)
	}
}

func TestEngineDeadlineExceeded(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	e.SetContext(ctx)
	var tick func()
	tick = func() {
		time.Sleep(100 * time.Microsecond) // burn wall clock toward the deadline
		e.After(time.Microsecond, tick)
	}
	e.After(time.Microsecond, tick)
	if err := e.Run(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run() = %v, want context.DeadlineExceeded", err)
	}
}

// TestEngineBackgroundContextIsFree: Background (and nil) disable polling
// entirely — the run drains fully and returns nil.
func TestEngineBackgroundContextIsFree(t *testing.T) {
	e := NewEngine()
	e.SetContext(context.Background())
	if e.ctx != nil {
		t.Fatal("Background context should disable polling")
	}
	e.At(time.Microsecond, func() {})
	if err := e.Run(); err != nil {
		t.Fatalf("Run() = %v", err)
	}
}

func TestEngineStopFromCallback(t *testing.T) {
	e := NewEngine()
	boom := errors.New("boom")
	ran := 0
	e.At(1, func() { ran++ })
	e.At(2, func() { ran++; e.Stop(boom) })
	e.At(3, func() { ran++ })
	if err := e.Run(); !errors.Is(err, boom) {
		t.Fatalf("Run() = %v, want boom", err)
	}
	if ran != 2 {
		t.Fatalf("ran %d events, want 2 (stop after the stopping event)", ran)
	}
	// Stop is first-error-wins and sticky.
	e.Stop(errors.New("later"))
	if !errors.Is(e.Err(), boom) {
		t.Fatalf("Err() = %v, want the first error", e.Err())
	}
	if err := e.Run(); !errors.Is(err, boom) {
		t.Fatalf("re-Run() = %v, want sticky boom", err)
	}
}

func TestRunUntilObservesStop(t *testing.T) {
	e := NewEngine()
	boom := errors.New("boom")
	e.At(1, func() { e.Stop(boom) })
	e.At(2, func() { t.Error("event after Stop ran") })
	if err := e.RunUntil(10); !errors.Is(err, boom) {
		t.Fatalf("RunUntil = %v, want boom", err)
	}
}

func TestCapturePanicWrapsAndPassesThrough(t *testing.T) {
	e := NewEngine()
	e.At(42*time.Microsecond, func() {})
	e.Run()
	ie := CapturePanic("exploded", e)
	if ie.At != 42*time.Microsecond || ie.Events != 1 {
		t.Errorf("captured position = (%v, %d), want (42us, 1)", ie.At, ie.Events)
	}
	if len(ie.Stack) == 0 {
		t.Error("no stack captured")
	}
	if ie.Error() == "" {
		t.Error("empty error text")
	}
	// An already-captured invariant passes through unchanged.
	if again := CapturePanic(ie, nil); again != ie {
		t.Error("CapturePanic re-wrapped an InvariantError")
	}
}

// TestEngineCancelBeforeSparseJump: a cancellation set between the last
// amortized poll and a far-future event must be observed before the clock
// takes the jump — the idle tail of a run (background scans minutes apart)
// must not outrun a cancellation by minutes of simulated time.
func TestEngineCancelBeforeSparseJump(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	e.SetContext(ctx)
	e.At(Time(time.Millisecond), func() {})               // resets the poll horizon
	e.At(Time(3*time.Millisecond)/2, func() { cancel() }) // inside the horizon: not polled here
	e.At(Time(time.Hour), func() { t.Error("event an hour out ran after cancellation") })
	if err := e.Run(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run() = %v, want context.Canceled", err)
	}
	if e.Now() > Time(2*time.Millisecond) {
		t.Errorf("clock advanced to %v; the sparse jump outran the cancellation", e.Now())
	}
}
