package sim

import (
	"fmt"
	"runtime/debug"
)

// InvariantError is a hot-path invariant violation (an "impossible" state
// the simulation asserts against, like invalidating an already-invalid page)
// captured at a run boundary instead of killing the process. The simulation
// and FTL keep panicking at the violation site — the state there is by
// definition corrupt, and unwinding is the only safe move — but the run
// entry points (ssd.Run, array.Run, the idaflash facade) recover the panic
// into one of these, so one poisoned run fails alone: sibling runs in the
// same process, which share no mutable state with it, keep going.
//
// The capture records where the simulation was (engine time, events
// processed) and the stack of the violation, so a failed run is diagnosable
// from its error alone.
type InvariantError struct {
	// Value is the recovered panic value.
	Value any
	// At is the simulated time when the violation was captured.
	At Time
	// Events is the number of events the engine had processed.
	Events uint64
	// Stack is the goroutine stack at capture, as debug.Stack formats it.
	Stack []byte
}

// Error summarizes the violation; the stack is available on the struct.
func (e *InvariantError) Error() string {
	return fmt.Sprintf("sim: invariant violated at t=%v after %d events: %v", e.At, e.Events, e.Value)
}

// CapturePanic converts a recovered panic value into an *InvariantError,
// stamping it with the engine's position (engine may be nil). A value that
// already is an *InvariantError passes through unchanged, so nested run
// boundaries do not re-wrap.
func CapturePanic(v any, e *Engine) *InvariantError {
	if ie, ok := v.(*InvariantError); ok {
		return ie
	}
	ie := &InvariantError{Value: v, Stack: debug.Stack()}
	if e != nil {
		ie.At = e.now
		ie.Events = e.processed
	}
	return ie
}
