package sim

import (
	"testing"
	"time"
)

func TestParsePolicy(t *testing.T) {
	for _, s := range []string{"", "read-first", "fifo", "age-aware"} {
		if _, err := ParsePolicy(s); err != nil {
			t.Errorf("ParsePolicy(%q): %v", s, err)
		}
	}
	if _, err := ParsePolicy("round-robin"); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := (SchedulerConfig{MaxWait: -time.Second}).Validate(); err == nil {
		t.Error("negative MaxWait accepted")
	}
	if err := (SchedulerConfig{Policy: "bogus"}).Validate(); err == nil {
		t.Error("bogus policy accepted")
	}
	if _, err := (SchedulerConfig{Policy: "bogus"}).New(); err == nil {
		t.Error("New built a scheduler for a bogus policy")
	}
}

// mustNew builds a scheduler from the config, failing the test on a config
// error (the production path surfaces it from ssd.New instead).
func mustNew(t *testing.T, cfg SchedulerConfig) Scheduler {
	t.Helper()
	s, err := cfg.New()
	if err != nil {
		t.Fatalf("SchedulerConfig%+v.New(): %v", cfg, err)
	}
	return s
}

// order runs one resource under the scheduler and returns the order in which
// queued acquisitions were served. The resource is first occupied by a
// long-running hold so every later Acquire queues.
func order(t *testing.T, sched Scheduler, submit func(r *Resource, record func(id string) func())) []string {
	t.Helper()
	e := NewEngine()
	r := NewResourceScheduled(e, "srv", sched)
	var got []string
	record := func(id string) func() {
		return func() { got = append(got, id) }
	}
	e.At(0, func() {
		r.Acquire(PrioBackground, time.Millisecond, nil) // occupy the server
		submit(r, record)
	})
	e.Run()
	return got
}

func TestReadFirstOrdersClasses(t *testing.T) {
	got := order(t, mustNew(t, SchedulerConfig{}), func(r *Resource, rec func(string) func()) {
		r.Acquire(PrioBackground, time.Microsecond, rec("bg"))
		r.Acquire(PrioHostWrite, time.Microsecond, rec("w1"))
		r.Acquire(PrioHostRead, time.Microsecond, rec("r1"))
		r.Acquire(PrioHostWrite, time.Microsecond, rec("w2"))
		r.Acquire(PrioHostRead, time.Microsecond, rec("r2"))
	})
	want := []string{"r1", "r2", "w1", "w2", "bg"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("read-first order = %v, want %v", got, want)
		}
	}
}

func TestFIFOKeepsArrivalOrder(t *testing.T) {
	got := order(t, mustNew(t, SchedulerConfig{Policy: PolicyFIFO}), func(r *Resource, rec func(string) func()) {
		r.Acquire(PrioBackground, time.Microsecond, rec("bg"))
		r.Acquire(PrioHostWrite, time.Microsecond, rec("w1"))
		r.Acquire(PrioHostRead, time.Microsecond, rec("r1"))
		r.Acquire(PrioHostWrite, time.Microsecond, rec("w2"))
	})
	want := []string{"bg", "w1", "r1", "w2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fifo order = %v, want %v", got, want)
		}
	}
}

func TestAgeAwarePromotesStarvedWrite(t *testing.T) {
	// The server is held for 1 ms; a write queues at t=0, reads keep
	// arriving. With MaxWait 500 us the write is over age when the first
	// hold expires, so it is served before the queued reads.
	sched := mustNew(t, SchedulerConfig{Policy: PolicyAgeAware, MaxWait: 500 * time.Microsecond})
	got := order(t, sched, func(r *Resource, rec func(string) func()) {
		r.Acquire(PrioHostWrite, time.Microsecond, rec("w1"))
		r.Acquire(PrioHostRead, time.Microsecond, rec("r1"))
		r.Acquire(PrioHostRead, time.Microsecond, rec("r2"))
	})
	want := []string{"w1", "r1", "r2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("age-aware order = %v, want %v", got, want)
		}
	}
}

func TestAgeAwareFreshWritesStillYieldToReads(t *testing.T) {
	// With a large MaxWait nothing is over age, so the discipline matches
	// read-first exactly.
	sched := mustNew(t, SchedulerConfig{Policy: PolicyAgeAware, MaxWait: time.Hour})
	got := order(t, sched, func(r *Resource, rec func(string) func()) {
		r.Acquire(PrioHostWrite, time.Microsecond, rec("w1"))
		r.Acquire(PrioHostRead, time.Microsecond, rec("r1"))
		r.Acquire(PrioBackground, time.Microsecond, rec("bg"))
		r.Acquire(PrioHostRead, time.Microsecond, rec("r2"))
	})
	want := []string{"r1", "r2", "w1", "bg"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("age-aware (fresh) order = %v, want %v", got, want)
		}
	}
}

func TestAgeAwareOldestAgedWinsAcrossClasses(t *testing.T) {
	// A background waiter older than an aged write is served first; ties
	// go to the higher class. Holds are long enough that both are over
	// age at the first dispatch.
	e := NewEngine()
	sched := mustNew(t, SchedulerConfig{Policy: PolicyAgeAware, MaxWait: time.Microsecond})
	r := NewResourceScheduled(e, "srv", sched)
	var got []string
	rec := func(id string) func() { return func() { got = append(got, id) } }
	e.At(0, func() {
		r.Acquire(PrioHostRead, time.Millisecond, nil) // occupy
		r.Acquire(PrioBackground, time.Microsecond, rec("bg"))
	})
	e.At(500*time.Microsecond, func() {
		r.Acquire(PrioHostWrite, time.Microsecond, rec("w"))
		r.Acquire(PrioHostRead, time.Microsecond, rec("r"))
	})
	e.Run()
	want := []string{"bg", "w", "r"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSchedulerLenAndPolicyNames(t *testing.T) {
	for _, cfg := range []SchedulerConfig{{}, {Policy: PolicyFIFO}, {Policy: PolicyAgeAware}} {
		s := mustNew(t, cfg)
		if s.Len() != 0 {
			t.Errorf("%s: fresh Len = %d", s.Policy(), s.Len())
		}
		s.Push(Waiter{Prio: PrioHostRead})
		s.Push(Waiter{Prio: PrioHostWrite})
		if s.Len() != 2 {
			t.Errorf("%s: Len = %d, want 2", s.Policy(), s.Len())
		}
		if _, ok := s.Pop(0); !ok {
			t.Errorf("%s: Pop failed", s.Policy())
		}
		if s.Len() != 1 {
			t.Errorf("%s: Len after pop = %d, want 1", s.Policy(), s.Len())
		}
	}
	found := map[Policy]bool{}
	for _, p := range Policies() {
		found[p] = true
	}
	if !found[PolicyReadFirst] || !found[PolicyFIFO] || !found[PolicyAgeAware] {
		t.Errorf("Policies() = %v incomplete", Policies())
	}
}
