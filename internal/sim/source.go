package sim

import "math/rand"

// CountedSource is a math/rand Source64 that counts how many source-level
// draws have been consumed. Every math/rand.Rand method — Int63, Uint64,
// Float64, the rejection-sampling Int63n, all of them — funnels through the
// source one step at a time, so the count is an exact position in the
// underlying stream regardless of which Rand methods consumed it. That makes
// the position serializable: a snapshot records Draws(), and a restore
// rebuilds the source from the same seed and Skip()s forward to the recorded
// position, after which the stream continues bit-for-bit identically to the
// run that was snapshotted. (math/rand exposes no way to capture its internal
// state directly; counting draws is the deterministic equivalent.)
//
// Wrapping changes nothing about the sequence: all methods delegate to the
// standard source, so code that switches from rand.NewSource to
// NewCountedSource reproduces its previous streams exactly.
type CountedSource struct {
	src rand.Source64
	n   uint64
}

// NewCountedSource returns a counting source seeded like rand.NewSource.
func NewCountedSource(seed int64) *CountedSource {
	// rand.NewSource's concrete type has implemented Source64 since Go 1.8;
	// the assertion cannot fail on any supported toolchain.
	return &CountedSource{src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 draws one value, counting it.
func (c *CountedSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

// Uint64 draws one value, counting it. The standard source advances by the
// same one step for Uint64 as for Int63 (Int63 is Uint64 masked), so Skip
// can replay any mix of draws with Uint64 alone.
func (c *CountedSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

// Seed reseeds the underlying source and resets the draw count.
func (c *CountedSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// Draws returns the number of source-level draws consumed so far.
func (c *CountedSource) Draws() uint64 { return c.n }

// Skip advances the stream by n draws, discarding the values.
func (c *CountedSource) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.src.Uint64()
	}
	c.n += n
}
