package sim

import (
	"testing"
	"time"
)

func TestResourceSerializesHolds(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "die0")
	var done []Time
	for i := 0; i < 3; i++ {
		r.Acquire(PrioHostRead, 100*time.Microsecond, func() {
			done = append(done, e.Now())
		})
	}
	e.Run()
	want := []Time{100 * time.Microsecond, 200 * time.Microsecond, 300 * time.Microsecond}
	if len(done) != 3 {
		t.Fatalf("completions = %d", len(done))
	}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("completion %d at %v, want %v", i, done[i], want[i])
		}
	}
}

func TestResourceReadFirstScheduling(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "die0")
	var order []string
	// Occupy the server, then enqueue background, write, read in that
	// arrival order; they must be served read, write, background.
	r.Acquire(PrioHostRead, 10*time.Microsecond, func() { order = append(order, "first") })
	r.Acquire(PrioBackground, 10*time.Microsecond, func() { order = append(order, "bg") })
	r.Acquire(PrioHostWrite, 10*time.Microsecond, func() { order = append(order, "write") })
	r.Acquire(PrioHostRead, 10*time.Microsecond, func() { order = append(order, "read") })
	e.Run()
	want := []string{"first", "read", "write", "bg"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestResourceFIFOWithinClass(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "ch")
	var order []int
	r.Acquire(PrioHostRead, time.Microsecond, nil)
	for i := 0; i < 5; i++ {
		i := i
		r.Acquire(PrioHostRead, time.Microsecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("within-class order = %v", order)
		}
	}
}

func TestResourceIdleServesImmediately(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "die")
	served := false
	r.Acquire(PrioBackground, 50*time.Microsecond, func() { served = true })
	e.Run()
	if !served {
		t.Error("idle resource never served")
	}
	if e.Now() != 50*time.Microsecond {
		t.Errorf("clock = %v, want 50us", e.Now())
	}
}

func TestResourceZeroHold(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "die")
	n := 0
	r.Acquire(PrioHostRead, 0, func() { n++ })
	r.Acquire(PrioHostRead, 0, func() { n++ })
	e.Run()
	if n != 2 {
		t.Errorf("served %d, want 2", n)
	}
}

func TestResourceStats(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "die")
	r.Acquire(PrioHostRead, 100*time.Microsecond, nil)
	r.Acquire(PrioHostWrite, 50*time.Microsecond, nil)
	e.Run()
	st := r.Stats()
	if st.BusyTime != 150*time.Microsecond {
		t.Errorf("busy = %v", st.BusyTime)
	}
	if st.Grants[PrioHostRead] != 1 || st.Grants[PrioHostWrite] != 1 {
		t.Errorf("grants = %v", st.Grants)
	}
	if st.WaitTime[PrioHostWrite] != 100*time.Microsecond {
		t.Errorf("write wait = %v, want 100us", st.WaitTime[PrioHostWrite])
	}
	if got := r.Utilization(); got != 1.0 {
		t.Errorf("utilization = %v, want 1.0", got)
	}
	if r.Name() != "die" {
		t.Errorf("name = %q", r.Name())
	}
}

func TestResourceChainedReacquire(t *testing.T) {
	// A completion callback that immediately re-acquires must not starve
	// already-queued waiters of equal priority... it goes to the back.
	e := NewEngine()
	r := NewResource(e, "die")
	var order []string
	r.Acquire(PrioHostRead, 10*time.Microsecond, func() {
		r.Acquire(PrioHostRead, 10*time.Microsecond, func() { order = append(order, "chain") })
	})
	r.Acquire(PrioHostRead, 10*time.Microsecond, func() { order = append(order, "queued") })
	e.Run()
	if len(order) != 2 || order[0] != "queued" || order[1] != "chain" {
		t.Errorf("order = %v, want [queued chain]", order)
	}
}

func TestResourcePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "die")
	for _, fn := range []func(){
		func() { r.Acquire(Priority(-1), time.Microsecond, nil) },
		func() { r.Acquire(numPriorities, time.Microsecond, nil) },
		func() { r.Acquire(PrioHostRead, -time.Microsecond, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPriorityString(t *testing.T) {
	names := map[Priority]string{PrioHostRead: "host-read", PrioHostWrite: "host-write", PrioBackground: "background"}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q", int(p), p.String())
		}
	}
	if Priority(42).String() == "" {
		t.Error("unknown priority should render")
	}
}

func TestResourceQueueLenAndBusy(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "die")
	r.Acquire(PrioHostRead, 10*time.Microsecond, nil)
	r.Acquire(PrioHostRead, 10*time.Microsecond, nil)
	r.Acquire(PrioBackground, 10*time.Microsecond, nil)
	if !r.Busy() {
		t.Error("resource should be busy")
	}
	if r.QueueLen() != 2 {
		t.Errorf("queue len = %d, want 2", r.QueueLen())
	}
	e.Run()
	if r.Busy() || r.QueueLen() != 0 {
		t.Error("resource should be idle and drained")
	}
	if r.Stats().MaxQueue != 2 {
		t.Errorf("max queue = %d, want 2", r.Stats().MaxQueue)
	}
}

// hookLog records ResourceHook callbacks for inspection.
type hookLog struct {
	enqueued []int // queue depths
	grants   []struct {
		p          Priority
		wait, hold time.Duration
	}
}

func (h *hookLog) ResourceEnqueued(r *Resource, p Priority, depth int) {
	h.enqueued = append(h.enqueued, depth)
}

func (h *hookLog) ResourceGranted(r *Resource, p Priority, wait, hold time.Duration) {
	h.grants = append(h.grants, struct {
		p          Priority
		wait, hold time.Duration
	}{p, wait, hold})
}

func TestResourceHookSeesQueueingAndGrants(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "die")
	h := &hookLog{}
	r.SetHook(h)
	r.Acquire(PrioHostRead, 10*time.Microsecond, nil)  // served immediately
	r.Acquire(PrioHostWrite, 5*time.Microsecond, nil)  // queued at depth 1
	r.Acquire(PrioBackground, 2*time.Microsecond, nil) // queued at depth 2
	e.Run()
	if len(h.enqueued) != 2 || h.enqueued[0] != 1 || h.enqueued[1] != 2 {
		t.Fatalf("enqueue depths = %v, want [1 2]", h.enqueued)
	}
	if len(h.grants) != 3 {
		t.Fatalf("grants = %d, want 3", len(h.grants))
	}
	first := h.grants[0]
	if first.p != PrioHostRead || first.wait != 0 || first.hold != 10*time.Microsecond {
		t.Errorf("first grant = %+v, want immediate read for 10us", first)
	}
	// The write waited the read's full hold; the background waiter both.
	if h.grants[1].wait != 10*time.Microsecond {
		t.Errorf("write wait = %v, want 10us", h.grants[1].wait)
	}
	if h.grants[2].wait != 15*time.Microsecond {
		t.Errorf("background wait = %v, want 15us", h.grants[2].wait)
	}
}
