package sim

import (
	"fmt"
	"time"
)

// Priority orders service classes on a Resource. Lower values are served
// first under the default read-first policy. The three classes model the
// paper's "read-first" scheduling: host reads overtake host writes, and both
// overtake background work (garbage collection and data refresh).
type Priority int

// Service classes, highest priority first.
const (
	PrioHostRead Priority = iota
	PrioHostWrite
	PrioBackground
	numPriorities
)

// String names the priority class.
func (p Priority) String() string {
	switch p {
	case PrioHostRead:
		return "host-read"
	case PrioHostWrite:
		return "host-write"
	case PrioBackground:
		return "background"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// ResourceStats aggregates the utilization of a resource.
type ResourceStats struct {
	BusyTime   time.Duration // total time the server was held
	Grants     [numPriorities]uint64
	WaitTime   [numPriorities]time.Duration // queueing delay before service
	MaxQueue   int
	LastIdleAt Time
}

// ResourceHook observes waiter lifecycle events on a resource; telemetry
// recorders implement it to see queue growth and grant waits as they
// happen rather than only at sampling instants. A nil hook (the default)
// costs one branch per event and no allocations.
type ResourceHook interface {
	// ResourceEnqueued fires when a waiter queues behind a busy server;
	// depth is the queue length including the new waiter.
	ResourceEnqueued(r *Resource, p Priority, depth int)
	// ResourceGranted fires when a waiter enters service, with its
	// queueing delay and the hold it was granted.
	ResourceGranted(r *Resource, p Priority, wait, hold time.Duration)
}

// Resource is a single non-preemptive server: a die (one flash command at a
// time) or a channel (one transfer at a time). Acquisitions specify how long
// the server is held; when the hold expires, the completion callback runs
// and the scheduler picks the next waiter. Which waiter that is depends on
// the scheduling policy — read-first by default, see Scheduler.
type Resource struct {
	name   string
	engine *Engine
	busy   bool
	sched  Scheduler
	seq    uint64
	stats  ResourceStats
	hook   ResourceHook
	// current is the waiter in service. The resource itself is the
	// engine Action for its completion (Run), so serving a waiter
	// schedules no closure: the single-server discipline guarantees at
	// most one hold is in flight per resource at a time.
	current Waiter
}

// NewResource creates a resource bound to the engine with the default
// read-first scheduler.
func NewResource(e *Engine, name string) *Resource {
	return NewResourceScheduled(e, name, nil)
}

// NewResourceScheduled creates a resource served by the given scheduler.
// The scheduler must be exclusive to this resource (it holds the queue
// state); nil gets a fresh read-first scheduler.
func NewResourceScheduled(e *Engine, name string, sched Scheduler) *Resource {
	if sched == nil {
		sched = &readFirstScheduler{}
	}
	return &Resource{name: name, engine: e, sched: sched}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Reset returns the resource to its as-constructed state for reuse: idle,
// empty queues, zeroed statistics. The scheduler keeps its grown ring
// capacity. The engine must not hold a pending completion event for this
// resource (reset only between runs, after the engine has drained).
func (r *Resource) Reset() {
	r.busy = false
	r.seq = 0
	r.stats = ResourceStats{}
	r.hook = nil
	r.current = Waiter{}
	r.sched.Reset()
}

// Policy names the scheduling discipline serving this resource.
func (r *Resource) Policy() Policy { return r.sched.Policy() }

// Stats returns a snapshot of the accumulated statistics.
func (r *Resource) Stats() ResourceStats { return r.stats }

// SetHook installs a lifecycle observer (nil removes it).
func (r *Resource) SetHook(h ResourceHook) { r.hook = h }

// Busy reports whether the server is currently held.
func (r *Resource) Busy() bool { return r.busy }

// QueueLen returns the number of waiters across all priority classes.
func (r *Resource) QueueLen() int { return r.sched.Len() }

// Acquire requests the server for hold duration at priority p. When service
// completes, then (which may be nil) runs at the completion instant. Holds
// must be non-negative; a zero hold still round-trips through the queue so
// ordering stays consistent.
func (r *Resource) Acquire(p Priority, hold time.Duration, then func()) {
	r.acquire(Waiter{Prio: p, hold: hold, then: then})
}

// AcquireAction is the allocation-free counterpart of Acquire: the
// completion callback is a pre-allocated Action (typically a pooled
// operation struct), so neither queueing nor service allocates.
func (r *Resource) AcquireAction(p Priority, hold time.Duration, a Action) {
	r.acquire(Waiter{Prio: p, hold: hold, op: a})
}

func (r *Resource) acquire(w Waiter) {
	if w.Prio < 0 || w.Prio >= numPriorities {
		panic(fmt.Sprintf("sim: resource %s acquire with priority %d", r.name, w.Prio))
	}
	if w.hold < 0 {
		panic(fmt.Sprintf("sim: resource %s acquire with negative hold %v", r.name, w.hold))
	}
	r.seq++
	w.Enqueued = r.engine.Now()
	w.seq = r.seq
	if r.busy {
		r.sched.Push(w)
		q := r.sched.Len()
		if q > r.stats.MaxQueue {
			r.stats.MaxQueue = q
		}
		if r.hook != nil {
			r.hook.ResourceEnqueued(r, w.Prio, q)
		}
		return
	}
	r.serve(w)
}

// serve starts service of w immediately.
func (r *Resource) serve(w Waiter) {
	r.busy = true
	r.stats.Grants[w.Prio]++
	wait := r.engine.Now() - w.Enqueued
	r.stats.WaitTime[w.Prio] += wait
	r.stats.BusyTime += w.hold
	if r.hook != nil {
		r.hook.ResourceGranted(r, w.Prio, wait, w.hold)
	}
	r.current = w
	r.engine.AfterAction(w.hold, r)
}

// Run completes the hold of the waiter in service; the engine invokes it at
// the completion instant. The completion callback runs while the server is
// still marked busy, so a callback that immediately re-acquires (e.g. a
// chained refresh step) queues behind already-waiting work rather than
// cutting the line.
func (r *Resource) Run() {
	w := r.current
	r.current = Waiter{} // drop callback references before running them
	w.complete()
	r.busy = false
	r.stats.LastIdleAt = r.engine.Now()
	r.next()
}

// next asks the scheduler for the waiter to dispatch, if any.
func (r *Resource) next() {
	if w, ok := r.sched.Pop(r.engine.Now()); ok {
		r.serve(w)
	}
}

// Utilization returns the fraction of simulated time (up to now) the server
// was busy. It returns 0 before any time has passed.
func (r *Resource) Utilization() float64 {
	now := r.engine.Now()
	if now <= 0 {
		return 0
	}
	return float64(r.stats.BusyTime) / float64(now)
}
