package sim

import (
	"fmt"
	"time"
)

// Priority orders service classes on a Resource. Lower values are served
// first. The three classes model the paper's "read-first" scheduling: host
// reads overtake host writes, and both overtake background work (garbage
// collection and data refresh).
type Priority int

// Service classes, highest priority first.
const (
	PrioHostRead Priority = iota
	PrioHostWrite
	PrioBackground
	numPriorities
)

// String names the priority class.
func (p Priority) String() string {
	switch p {
	case PrioHostRead:
		return "host-read"
	case PrioHostWrite:
		return "host-write"
	case PrioBackground:
		return "background"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// waiter is one queued acquisition.
type waiter struct {
	hold     time.Duration
	enqueued Time
	then     func()
}

// ResourceStats aggregates the utilization of a resource.
type ResourceStats struct {
	BusyTime   time.Duration // total time the server was held
	Grants     [numPriorities]uint64
	WaitTime   [numPriorities]time.Duration // queueing delay before service
	MaxQueue   int
	LastIdleAt Time
}

// Resource is a single non-preemptive server with one FIFO queue per
// priority class: a die (one flash command at a time) or a channel (one
// transfer at a time). Acquisitions specify how long the server is held;
// when the hold expires, the completion callback runs and the next waiter
// (highest priority class first, FIFO within a class) is served.
type Resource struct {
	name   string
	engine *Engine
	busy   bool
	queues [numPriorities][]waiter
	stats  ResourceStats
}

// NewResource creates a resource bound to the engine.
func NewResource(e *Engine, name string) *Resource {
	return &Resource{name: name, engine: e}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Stats returns a snapshot of the accumulated statistics.
func (r *Resource) Stats() ResourceStats { return r.stats }

// Busy reports whether the server is currently held.
func (r *Resource) Busy() bool { return r.busy }

// QueueLen returns the number of waiters across all priority classes.
func (r *Resource) QueueLen() int {
	n := 0
	for _, q := range r.queues {
		n += len(q)
	}
	return n
}

// Acquire requests the server for hold duration at priority p. When service
// completes, then (which may be nil) runs at the completion instant. Holds
// must be non-negative; a zero hold still round-trips through the queue so
// ordering stays consistent.
func (r *Resource) Acquire(p Priority, hold time.Duration, then func()) {
	if p < 0 || p >= numPriorities {
		panic(fmt.Sprintf("sim: resource %s acquire with priority %d", r.name, p))
	}
	if hold < 0 {
		panic(fmt.Sprintf("sim: resource %s acquire with negative hold %v", r.name, hold))
	}
	w := waiter{hold: hold, enqueued: r.engine.Now(), then: then}
	if r.busy {
		r.queues[p] = append(r.queues[p], w)
		if q := r.QueueLen(); q > r.stats.MaxQueue {
			r.stats.MaxQueue = q
		}
		return
	}
	r.serve(p, w)
}

// serve starts service of w immediately.
func (r *Resource) serve(p Priority, w waiter) {
	r.busy = true
	r.stats.Grants[p]++
	r.stats.WaitTime[p] += r.engine.Now() - w.enqueued
	r.stats.BusyTime += w.hold
	r.engine.After(w.hold, func() {
		// Run the completion callback while the server is still
		// marked busy, so a callback that immediately re-acquires
		// (e.g. a chained refresh step) queues behind already-waiting
		// work rather than cutting the line.
		if w.then != nil {
			w.then()
		}
		r.busy = false
		r.stats.LastIdleAt = r.engine.Now()
		r.next()
	})
}

// next dispatches the highest-priority waiter, if any.
func (r *Resource) next() {
	for p := Priority(0); p < numPriorities; p++ {
		if len(r.queues[p]) > 0 {
			w := r.queues[p][0]
			// Shift rather than reslice forever; these queues stay
			// short, and copying keeps memory bounded.
			copy(r.queues[p], r.queues[p][1:])
			r.queues[p] = r.queues[p][:len(r.queues[p])-1]
			r.serve(p, w)
			return
		}
	}
}

// Utilization returns the fraction of simulated time (up to now) the server
// was busy. It returns 0 before any time has passed.
func (r *Resource) Utilization() float64 {
	now := r.engine.Now()
	if now <= 0 {
		return 0
	}
	return float64(r.stats.BusyTime) / float64(now)
}
