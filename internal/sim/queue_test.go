package sim

import (
	"math/rand"
	"testing"
)

// TestWaiterQueueFIFO checks ordering across wrap-around: interleaved pushes
// and pops that repeatedly cross the ring boundary must still come out in
// insertion order.
func TestWaiterQueueFIFO(t *testing.T) {
	var q waiterQueue
	next, expect := 0, 0
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 5000; step++ {
		if q.Len() == 0 || rng.Intn(2) == 0 {
			q.Push(Waiter{seq: uint64(next)})
			next++
		} else {
			if got := q.Front().seq; got != uint64(expect) {
				t.Fatalf("step %d: Front seq = %d, want %d", step, got, expect)
			}
			if got := q.Pop().seq; got != uint64(expect) {
				t.Fatalf("step %d: popped seq = %d, want %d", step, got, expect)
			}
			expect++
		}
	}
	for q.Len() > 0 {
		if got := q.Pop().seq; got != uint64(expect) {
			t.Fatalf("drain: popped seq = %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d waiters, pushed %d", expect, next)
	}
}

// TestWaiterQueueBoundedGrowth is the regression test for the old
// head-shifting queue: under sustained push/pop churn at a bounded depth,
// the backing array must stop growing once it covers the peak depth, instead
// of reallocating or shifting forever.
func TestWaiterQueueBoundedGrowth(t *testing.T) {
	var q waiterQueue
	const depth = 5
	for i := 0; i < depth; i++ {
		q.Push(Waiter{})
	}
	capAfterPeak := q.Cap()
	for i := 0; i < 100000; i++ {
		q.Push(Waiter{})
		q.Pop()
	}
	if q.Cap() != capAfterPeak {
		t.Fatalf("backing array grew under churn: cap %d -> %d", capAfterPeak, q.Cap())
	}
	if q.Len() != depth {
		t.Fatalf("queue depth drifted: %d, want %d", q.Len(), depth)
	}
}

// TestWaiterQueuePopZeroesSlot guards against retaining completed callbacks
// in vacated ring slots.
func TestWaiterQueuePopZeroesSlot(t *testing.T) {
	var q waiterQueue
	q.Push(Waiter{then: func() {}})
	q.Pop()
	for i := range q.buf {
		if q.buf[i].then != nil || q.buf[i].op != nil {
			t.Fatalf("slot %d retains a callback after Pop", i)
		}
	}
}
