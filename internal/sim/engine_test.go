package sim

import (
	"testing"
	"time"
)

func TestEngineRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30*time.Microsecond, func() { got = append(got, 3) })
	e.At(10*time.Microsecond, func() { got = append(got, 1) })
	e.At(20*time.Microsecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order = %v", got)
	}
	if e.Now() != 30*time.Microsecond {
		t.Errorf("clock = %v, want 30us", e.Now())
	}
	if e.Processed() != 3 {
		t.Errorf("processed = %d", e.Processed())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Microsecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of insertion order: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.At(0, func() {
		trace = append(trace, "a")
		e.After(5*time.Microsecond, func() {
			trace = append(trace, "c")
		})
	})
	e.At(2*time.Microsecond, func() { trace = append(trace, "b") })
	e.Run()
	want := "abc"
	s := ""
	for _, x := range trace {
		s += x
	}
	if s != want {
		t.Errorf("trace = %q, want %q", s, want)
	}
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	e := NewEngine()
	e.At(10*time.Microsecond, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	e.At(5*time.Microsecond, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := make(map[int]bool)
	e.At(10*time.Microsecond, func() { fired[10] = true })
	e.At(20*time.Microsecond, func() { fired[20] = true })
	e.At(30*time.Microsecond, func() { fired[30] = true })
	e.RunUntil(20 * time.Microsecond)
	if !fired[10] || !fired[20] || fired[30] {
		t.Errorf("fired = %v", fired)
	}
	if e.Now() != 20*time.Microsecond {
		t.Errorf("clock = %v, want 20us", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	// RunUntil with an empty horizon still advances the clock.
	e.Run()
	e.RunUntil(100 * time.Microsecond)
	if e.Now() != 100*time.Microsecond {
		t.Errorf("clock = %v, want 100us", e.Now())
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty queue should return false")
	}
}

func TestPulseFiresOnIntervalBoundaries(t *testing.T) {
	e := NewEngine()
	// Work spread over 95us keeps the queue non-empty through nine ticks.
	for i := 1; i <= 19; i++ {
		e.At(time.Duration(i)*5*time.Microsecond, func() {})
	}
	var ticks []Time
	e.Pulse(10*time.Microsecond, func(now Time) { ticks = append(ticks, now) })
	e.Run()
	// Ticks at exactly 10, 20, ..., 100us; the 100us tick finds the
	// queue empty and stops the chain.
	if len(ticks) != 10 {
		t.Fatalf("ticks = %d (%v), want 10", len(ticks), ticks)
	}
	for i, at := range ticks {
		if want := time.Duration(i+1) * 10 * time.Microsecond; at != want {
			t.Errorf("tick %d at %v, want exact boundary %v", i, at, want)
		}
	}
}

func TestPulseStopsWhenQueueDrains(t *testing.T) {
	e := NewEngine()
	e.At(time.Microsecond, func() {})
	fired := 0
	e.Pulse(10*time.Microsecond, func(Time) { fired++ })
	e.Run()
	// The only pulse fires after the lone event, finds nothing pending,
	// and does not re-arm: Run terminates.
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after Run", e.Pending())
	}
}

func TestPulseRejectsNonPositiveInterval(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("zero pulse interval should panic")
		}
	}()
	e.Pulse(0, func(Time) {})
}
