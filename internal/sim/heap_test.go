package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// refEvent / refHeap is a container/heap reference implementation of the
// event queue with the same (at, seq) ordering contract as the engine's
// inlined heap. The property test below drives both through identical
// randomized schedules and requires identical execution orders.
type refEvent struct {
	at  Time
	seq uint64
	fn  func()
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// refEngine is a minimal scheduler built on container/heap, used only as a
// test oracle.
type refEngine struct {
	now Time
	h   refHeap
	seq uint64
}

func (e *refEngine) At(t Time, fn func()) {
	if t < e.now {
		panic("refEngine: scheduling in the past")
	}
	e.seq++
	heap.Push(&e.h, &refEvent{at: t, seq: e.seq, fn: fn})
}

func (e *refEngine) After(d time.Duration, fn func()) { e.At(e.now+d, fn) }

func (e *refEngine) Run() error {
	for len(e.h) > 0 {
		ev := heap.Pop(&e.h).(*refEvent)
		e.now = ev.at
		ev.fn()
	}
	return nil
}

// simClock abstracts the two engines so the same random script can drive
// both.
type simClock interface {
	At(t Time, fn func())
	After(d time.Duration, fn func())
	Now() Time
	Run() error
}

func (e *refEngine) Now() Time { return e.now }

// trace records one executed event: its label and the clock when it ran.
type traceEntry struct {
	label int
	at    Time
}

// actionFunc adapts a func() to the Action interface so the script can
// exercise the engine's AtAction path alongside At.
type actionFunc struct{ f func() }

func (a *actionFunc) Run() { a.f() }

// runScript drives a scheduler through a deterministic randomized workload:
// root events at random times (with deliberate time collisions to stress the
// FIFO tie-break), callbacks that schedule further events from within the
// run, including zero-delay children. useActions routes even-numbered
// labels through the Action path when the scheduler is the real Engine.
func runScript(c simClock, seed int64, useActions bool) []traceEntry {
	rng := rand.New(rand.NewSource(seed))
	var got []traceEntry
	nextLabel := 0
	eng, _ := c.(*Engine)

	var spawn func(depth int) func()
	schedule := func(t Time, fn func(), label int) {
		if useActions && eng != nil && label%2 == 0 {
			eng.AtAction(t, &actionFunc{f: fn})
		} else {
			c.At(t, fn)
		}
	}
	spawn = func(depth int) func() {
		label := nextLabel
		nextLabel++
		return func() {
			got = append(got, traceEntry{label: label, at: c.Now()})
			if depth >= 4 {
				return
			}
			for i, n := 0, rng.Intn(3); i < n; i++ {
				// Quantized delays (including zero) force equal-time
				// events, exercising the (at, seq) tie-break.
				d := time.Duration(rng.Intn(4)) * 10 * time.Microsecond
				child := spawn(depth + 1)
				childLabel := nextLabel - 1
				schedule(c.Now()+d, child, childLabel)
			}
		}
	}
	for i := 0; i < 50; i++ {
		t := time.Duration(rng.Intn(20)) * 10 * time.Microsecond
		root := spawn(0)
		schedule(t, root, nextLabel-1)
	}
	c.Run()
	return got
}

// TestHeapMatchesContainerHeapReference is the event-heap property test: for
// many seeds, the inlined heap must execute the exact same events at the
// exact same times in the exact same order as a container/heap reference,
// including FIFO ordering of equal-time events and events scheduled from
// within callbacks.
func TestHeapMatchesContainerHeapReference(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		want := runScript(&refEngine{}, seed, false)
		got := runScript(NewEngine(), seed, false)
		gotActs := runScript(NewEngine(), seed, true)
		if len(got) == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
		for name, g := range map[string][]traceEntry{"closures": got, "actions": gotActs} {
			if len(g) != len(want) {
				t.Fatalf("seed %d (%s): executed %d events, reference executed %d", seed, name, len(g), len(want))
			}
			for i := range want {
				if g[i] != want[i] {
					t.Fatalf("seed %d (%s): event %d = %+v, reference %+v", seed, name, i, g[i], want[i])
				}
			}
		}
	}
}

// TestHeapPopZeroesSlot guards the no-retention property: after events run,
// the heap's backing array must not keep callback references alive.
func TestHeapPopZeroesSlot(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 16; i++ {
		e.At(time.Duration(i)*time.Microsecond, func() {})
	}
	grown := e.events[:cap(e.events)]
	e.Run()
	for i := range grown {
		if grown[i].fn != nil || grown[i].op != nil {
			t.Fatalf("slot %d retains a callback after drain: %+v", i, grown[i])
		}
	}
}

// TestHeapPastSchedulingPanics pins the causality guard.
func TestHeapPastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(10*time.Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling before now did not panic")
			}
		}()
		e.At(5*time.Microsecond, func() {})
	})
	e.Run()
}
