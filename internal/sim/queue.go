package sim

// waiterQueue is a FIFO ring buffer of waiters. It replaces the earlier
// head-shifting []Waiter queues: popping moves a head index instead of
// copying the tail down, zeroes the vacated slot so completed callbacks are
// not retained, and reuses the backing array, so sustained queueing churns
// no memory at all once the buffer has grown to the peak depth.
type waiterQueue struct {
	buf  []Waiter
	head int
	size int
}

// Len returns the number of queued waiters.
func (q *waiterQueue) Len() int { return q.size }

// Cap returns the backing array length (tests assert it stays bounded).
func (q *waiterQueue) Cap() int { return len(q.buf) }

// Push appends a waiter at the tail, growing the ring when full.
func (q *waiterQueue) Push(w Waiter) {
	if q.size == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.size)%len(q.buf)] = w
	q.size++
}

// Pop removes and returns the head waiter. Popping an empty queue panics
// (callers check Len first).
func (q *waiterQueue) Pop() Waiter {
	w := q.buf[q.head]
	q.buf[q.head] = Waiter{}
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return w
}

// Front returns the head waiter without removing it. Calling Front on an
// empty queue panics.
func (q *waiterQueue) Front() *Waiter {
	if q.size == 0 {
		panic("sim: Front on empty waiterQueue")
	}
	return &q.buf[q.head]
}

// reset empties the ring for reuse, zeroing the occupied slots so callback
// references are not retained, while keeping the backing array at its grown
// capacity.
func (q *waiterQueue) reset() {
	for i := 0; i < q.size; i++ {
		q.buf[(q.head+i)%len(q.buf)] = Waiter{}
	}
	q.head, q.size = 0, 0
}

// grow doubles the ring, unwrapping the elements into index order.
func (q *waiterQueue) grow() {
	n := len(q.buf) * 2
	if n == 0 {
		n = 8
	}
	buf := make([]Waiter, n)
	for i := 0; i < q.size; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}
