package idaflash_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"idaflash"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/default_path_golden.json from the current code")

// goldenRun is the refactor-stable subset of one run's measurements: every
// field below existed before the coding-scheme refactor, so the golden file
// captured against the pre-refactor tree proves the default IDA path still
// computes exactly the same simulation, event for event, even as Results
// grows new fields around it.
type goldenRun struct {
	System              string
	ReadRequests        uint64
	WriteRequests       uint64
	MeanReadResponseNs  int64
	P99ReadResponseNs   int64
	MeanWriteResponseNs int64
	MakespanNs          int64
	Events              uint64
	WriteAmplification  float64

	HostReads     uint64
	HostWrites    uint64
	Invalidations uint64
	Erases        uint64
	ReadsByClass  [5]uint64
	ReadsBySenses [9]uint64
	ReadsFromIDA  uint64
	GCJobs        uint64
	GCMoves       uint64

	Refreshes          uint64
	RefreshMoves       uint64
	IDARefreshes       uint64
	IDAAdjustedWLs     uint64
	IDAVerifyReads     uint64
	IDACorruptedWrites uint64
	IDAKeptPages       uint64
}

func goldenFromResults(sys string, r idaflash.Results) goldenRun {
	g := goldenRun{
		System:              sys,
		ReadRequests:        r.ReadRequests,
		WriteRequests:       r.WriteRequests,
		MeanReadResponseNs:  r.MeanReadResponse.Nanoseconds(),
		P99ReadResponseNs:   r.P99ReadResponse.Nanoseconds(),
		MeanWriteResponseNs: r.MeanWriteResponse.Nanoseconds(),
		MakespanNs:          r.Makespan.Nanoseconds(),
		Events:              r.Events,
		WriteAmplification:  r.WriteAmplification,
		HostReads:           r.FTL.HostReads,
		HostWrites:          r.FTL.HostWrites,
		Invalidations:       r.FTL.Invalidations,
		Erases:              r.FTL.Erases,
		ReadsFromIDA:        r.FTL.ReadsFromIDA,
		GCJobs:              r.FTL.GCJobs,
		GCMoves:             r.FTL.GCMoves,
		Refreshes:           r.FTL.Refreshes,
		RefreshMoves:        r.FTL.RefreshMoves,
		IDARefreshes:        r.FTL.IDARefreshes,
		IDAAdjustedWLs:      r.FTL.IDAAdjustedWLs,
		IDAVerifyReads:      r.FTL.IDAVerifyReads,
		IDACorruptedWrites:  r.FTL.IDACorruptedWrites,
		IDAKeptPages:        r.FTL.IDAKeptPages,
	}
	copy(g.ReadsByClass[:], r.FTL.ReadsByClass[:])
	copy(g.ReadsBySenses[:], r.FTL.ReadsBySenses[:])
	return g
}

// goldenSystems are the default-path configurations frozen by the golden:
// the baseline, the paper's headline IDA-E20, and IDA on the vendor 2-3-2
// coding (the alternative state map that must also survive the refactor).
func goldenSystems() []idaflash.System {
	v := idaflash.IDA(0.20)
	v.Name = "IDA-E20-232"
	v.Vendor232 = true
	return []idaflash.System{idaflash.Baseline(), idaflash.IDA(0.20), v}
}

// TestDefaultPathGolden replays a small deterministic workload under the
// frozen configurations and compares every pre-refactor measurement against
// testdata/default_path_golden.json, captured before the coding-scheme
// refactor. A mismatch means the default IDA path no longer produces
// byte-identical simulations.
func TestDefaultPathGolden(t *testing.T) {
	p, err := idaflash.ProfileByName("hm_1", 3000)
	if err != nil {
		t.Fatal(err)
	}
	var got []goldenRun
	for _, sys := range goldenSystems() {
		res, err := idaflash.RunWorkload(p, sys)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		got = append(got, goldenFromResults(sys.Name, res))
	}

	path := filepath.Join("testdata", "default_path_golden.json")
	if *updateGolden {
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to regenerate): %v", err)
	}
	var want []goldenRun
	if err := json.Unmarshal(b, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("golden has %d runs, got %d", len(want), len(got))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%s diverged from the pre-refactor golden:\ngot  %+v\nwant %+v", got[i].System, got[i], want[i])
		}
	}
}
