#!/usr/bin/env bash
# bench.sh — run the repo's key microbenchmarks and emit a JSON snapshot.
#
# Usage: scripts/bench.sh [label] [count]
#
#   label   snapshot name; output goes to BENCH_<label>.json (default: HEAD
#           short hash)
#   count   -count passed to `go test` (default: 5)
#
# The snapshot records per-benchmark mean ns/op, B/op, and allocs/op so a PR
# can commit a BENCH_<pr>.json marker and reviewers can diff hot-path cost
# without rerunning anything. CI's benchmark job still does the
# authoritative benchstat comparison against the merge base; this file is
# the human-readable record.
set -euo pipefail

cd "$(dirname "$0")/.."

label="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo local)}"
count="${2:-5}"
out="BENCH_${label}.json"

benches='BenchmarkEngine$|BenchmarkSingleRun$|BenchmarkSingleRunIDA$|BenchmarkCodingMerge$|BenchmarkCodingPlan$|BenchmarkTraceGeneration$|BenchmarkSnapshotRestore$|BenchmarkFigure8Snapshotted$|BenchmarkFarmThroughput$'

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "running: $benches (count=$count)" >&2
go test -run '^$' -bench "$benches" -benchmem -count "$count" . | tee "$raw" >&2

awk -v label="$label" '
  # Pick metrics by unit token, not column position: benchmarks that
  # ReportMetric extra values (FarmThroughput reports runs/s) shift the
  # B/op and allocs/op columns.
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    for (i = 3; i < NF; i++) {
      if ($(i + 1) == "ns/op") ns[name] += $i
      else if ($(i + 1) == "B/op") b[name] += $i
      else if ($(i + 1) == "allocs/op") allocs[name] += $i
    }
    cnt[name]++
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
  }
  END {
    printf "{\n  \"label\": \"%s\",\n  \"goos\": \"%s\",\n  \"benchmarks\": {\n", label, ENVIRON["GOOS"] != "" ? ENVIRON["GOOS"] : "local"
    for (i = 1; i <= n; i++) {
      name = order[i]
      printf "    \"%s\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.1f}%s\n", \
        name, ns[name] / cnt[name], b[name] / cnt[name], allocs[name] / cnt[name], i < n ? "," : ""
    }
    printf "  }\n}\n"
  }
' "$raw" > "$out"

echo "wrote $out" >&2
cat "$out"

# Diff against the committed PR baselines when they exist: a per-benchmark
# delta table so the snapshot is self-explaining next to the history.
for baseline in BENCH_PR4.json BENCH_PR7.json; do
  if [[ -f "$baseline" && "$out" != "$baseline" ]]; then
    echo >&2
    echo "delta vs $baseline (ns/op):" >&2
    python3 - "$baseline" "$out" >&2 <<'PY' || true
import json, sys
base = json.load(open(sys.argv[1]))["benchmarks"]
cur = json.load(open(sys.argv[2]))["benchmarks"]
width = max(len(n) for n in cur)
for name, c in cur.items():
    b = base.get(name)
    if b is None:
        print(f"  {name:<{width}}  {c['ns_per_op']:>14.1f}  (new)")
        continue
    delta = (c["ns_per_op"] - b["ns_per_op"]) / b["ns_per_op"] * 100
    print(f"  {name:<{width}}  {b['ns_per_op']:>14.1f} -> {c['ns_per_op']:>14.1f}  {delta:+6.1f}%")
PY
  fi
done
